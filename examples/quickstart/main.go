// Quickstart: generate a small synthetic Internet, run MAP-IT over its
// traceroute data, and check a few inferences against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mapit"
)

func main() {
	// A small world: ~60 ASes, a few hundred links, 6 vantage points.
	world := mapit.GenerateWorld(mapit.SmallWorldConfig())
	fmt.Println("generated:", world)

	// Run the traceroute engine (Paris-style, with realistic artifacts).
	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = 500
	traces := world.GenTraces(tc)
	fmt.Printf("collected %d traces\n", len(traces.Traces))

	// MAP-IT needs a BGP origin table; sibling/relationship/IXP data
	// are optional but improve accuracy. Here we use the noisy public
	// view a real measurement study would have.
	orgs, rels, ixps := world.PublicInputs(mapit.DefaultMetaNoise())
	result, err := mapit.Infer(traces, mapit.Config{
		IP2AS: world.Table(),
		Orgs:  orgs,
		Rels:  rels,
		IXP:   ixps,
		F:     0.5,
	})
	if err != nil {
		panic(err)
	}

	high := result.HighConfidence()
	fmt.Printf("\ninferred %d inter-AS link interfaces (%d uncertain, %d via stub heuristic)\n",
		len(high), len(result.Uncertain()), result.Diag.StubInferences)

	// Spot-check the first few against the generator's ground truth.
	truth := world.Truth()
	fmt.Println("\nfirst inferences vs ground truth:")
	shown := 0
	for _, inf := range high {
		t, ok := truth[inf.Addr]
		verdict := "NOT AN INTERFACE"
		if ok {
			switch {
			case !t.InterAS:
				verdict = "WRONG (internal interface)"
			case matches(inf, t):
				verdict = "CORRECT"
			default:
				verdict = fmt.Sprintf("WRONG PAIR (true: %v<->%v)", t.RouterAS, t.ConnectedASes)
			}
		}
		fmt.Printf("  %-15v %-8v %v <-> %v   %s\n",
			inf.Addr, inf.Dir, inf.Local, inf.Connected, verdict)
		shown++
		if shown == 10 {
			break
		}
	}

	// Aggregate into AS-level links.
	links := result.Links()
	fmt.Printf("\n%d distinct AS-pair links evidenced; e.g.\n", len(links))
	for i, l := range links {
		if i == 5 {
			break
		}
		fmt.Printf("  %v <-> %v via %d interface(s)\n", l.A, l.B, len(l.Addrs))
	}
}

// matches reports whether the inference names the true AS pair.
func matches(inf mapit.Inference, t mapit.IfaceTruth) bool {
	a, b := inf.Link()
	for _, c := range t.ConnectedASes {
		x, y := t.RouterAS, c
		if x > y {
			x, y = y, x
		}
		if a == x && b == y {
			return true
		}
	}
	return false
}
