// Congestion-monitoring example: the paper's first motivation (§1, after
// Luckie et al.'s interdomain-congestion work) is that measuring
// congestion on peering links requires knowing the exact interface
// addresses at AS boundaries — those are what you probe for latency
// ramps. This example uses MAP-IT to build the probe list for one
// target ISP: every inferred border interface, the neighbour it
// connects, and the relationship class (congestion on settlement-free
// peerings being the contentious case).
//
//	go run ./examples/congestion
package main

import (
	"cmp"
	"fmt"
	"slices"

	"mapit"
)

func main() {
	world := mapit.GenerateWorld(mapit.SmallWorldConfig())
	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = 800
	traces := world.GenTraces(tc)

	orgs, rels, ixps := world.PublicInputs(mapit.DefaultMetaNoise())
	result, err := mapit.Infer(traces, mapit.Config{
		IP2AS: world.Table(), Orgs: orgs, Rels: rels, IXP: ixps, F: 0.5,
	})
	if err != nil {
		panic(err)
	}

	// Target: the large research-and-education network of the world.
	target := world.Special[mapit.SpecialREN]
	fmt.Printf("building a congestion probe list for %v (%s)\n\n", target.ASN, target.Org)

	type probe struct {
		addr      mapit.Addr
		otherSide mapit.Addr
		neighbour mapit.ASN
		rel       string
	}
	var probes []probe
	for _, inf := range result.HighConfidence() {
		a, b := inf.Link()
		var neighbour mapit.ASN
		switch {
		case orgs.SameOrg(a, target.ASN):
			neighbour = b
		case orgs.SameOrg(b, target.ASN):
			neighbour = a
		default:
			continue
		}
		probes = append(probes, probe{
			addr:      inf.Addr,
			otherSide: inf.OtherSide,
			neighbour: neighbour,
			rel:       rels.Rel(target.ASN, neighbour).String(),
		})
	}
	slices.SortFunc(probes, func(x, y probe) int {
		if n := cmp.Compare(x.rel, y.rel); n != 0 {
			return n
		}
		return cmp.Compare(x.addr, y.addr)
	})

	fmt.Printf("%-15s %-15s %-10s %s\n", "interface", "far side", "neighbour", "relationship")
	peerings := 0
	for _, p := range probes {
		rel := p.rel
		if rel == "none" {
			rel = "unknown (stub?)"
		}
		if p.rel == "peer" {
			peerings++
		}
		fmt.Printf("%-15v %-15v %-10v %s\n", p.addr, p.otherSide, p.neighbour, rel)
	}
	fmt.Printf("\n%d border interfaces total, %d on settlement-free peerings — "+
		"probe both sides of each for queueing-delay ramps.\n", len(probes), peerings)
}
