// IXP discovery example: §3.3 observes that virtual interconnections
// across exchange-point fabrics look like point-to-point inter-AS links
// to traceroute — the switching fabric is invisible at layer 3. MAP-IT
// inferences landing on addresses inside known IXP peering LANs therefore
// reveal which networks interconnect at which exchange. This example
// builds that map.
//
//	go run ./examples/ixpdiscovery
package main

import (
	"fmt"
	"slices"

	"mapit"
)

func main() {
	gen := mapit.SmallWorldConfig()
	gen.IXPPeeringFrac = 0.5 // busy exchanges for the demo
	world := mapit.GenerateWorld(gen)

	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = 800
	traces := world.GenTraces(tc)

	orgs, rels, ixps := world.PublicInputs(mapit.DefaultMetaNoise())
	result, err := mapit.Infer(traces, mapit.Config{
		IP2AS: world.Table(), Orgs: orgs, Rels: rels, IXP: ixps, F: 0.5,
	})
	if err != nil {
		panic(err)
	}

	// Group inferences on exchange-LAN addresses by IXP. A forward
	// inference on an IXP address places the address's router in the
	// connected AS: that AS is present at the exchange.
	participants := make(map[string]map[mapit.ASN][]mapit.Addr)
	for _, inf := range result.HighConfidence() {
		name, ok := ixps.IXPOf(inf.Addr)
		if !ok {
			continue
		}
		member := inf.Connected
		if inf.Dir == mapit.Backward {
			continue // backward evidence names the previous AS, not the owner
		}
		if participants[name] == nil {
			participants[name] = make(map[mapit.ASN][]mapit.Addr)
		}
		participants[name][member] = append(participants[name][member], inf.Addr)
	}

	if len(participants) == 0 {
		fmt.Println("no interconnections observed across known exchanges " +
			"(traces may not have crossed an IXP-listed LAN)")
		return
	}
	names := make([]string, 0, len(participants))
	for n := range participants {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, name := range names {
		members := participants[name]
		asns := make([]mapit.ASN, 0, len(members))
		for a := range members {
			asns = append(asns, a)
		}
		slices.Sort(asns)
		fmt.Printf("%s: %d members observed peering across the fabric\n", name, len(asns))
		for _, a := range asns {
			fmt.Printf("  %-8v via LAN address(es) %v\n", a, members[a])
		}
	}
}
