// AS-path annotation example: the paper's Fig 1 motivation. A naive
// BGP-prefix lookup over traceroute hops mis-attributes the interfaces
// at AS boundaries (the link prefix belongs to only one of the two
// connected ASes), producing AS paths with false or missing hops. MAP-IT
// inferences pin down which router each boundary interface really sits
// on, letting us correct the traceroute-derived AS path.
//
//	go run ./examples/aspath
package main

import (
	"fmt"

	"mapit"
)

func main() {
	world := mapit.GenerateWorld(mapit.SmallWorldConfig())
	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = 800
	traces := world.GenTraces(tc)

	table := world.Table()
	orgs, rels, ixps := world.PublicInputs(mapit.DefaultMetaNoise())
	result, err := mapit.Infer(traces, mapit.Config{
		IP2AS: table, Orgs: orgs, Rels: rels, IXP: ixps, F: 0.5,
	})
	if err != nil {
		panic(err)
	}

	// Build the correction map: which AS owns the router behind each
	// inferred boundary interface. A forward inference means the
	// interface's neighbours-ahead are the connected AS — the router
	// itself is in the connected AS (§3.1); a backward inference means
	// the router is in the interface's own (local) AS.
	routerAS := make(map[mapit.Addr]mapit.ASN)
	for _, inf := range result.HighConfidence() {
		if inf.Indirect {
			continue
		}
		if inf.Dir == mapit.Forward {
			routerAS[inf.Addr] = inf.Connected
		} else if !inf.Local.IsZero() {
			routerAS[inf.Addr] = inf.Local
		}
	}
	fmt.Printf("corrections available for %d boundary interfaces\n\n", len(routerAS))

	hopAS := func(a mapit.Addr) mapit.ASN {
		if asn, ok := routerAS[a]; ok {
			return asn
		}
		asn, _ := table.Lookup(a)
		return asn
	}
	naiveAS := func(a mapit.Addr) mapit.ASN {
		asn, _ := table.Lookup(a)
		return asn
	}

	// Compare naive and corrected AS paths; show the first few traces
	// where the correction changes the story.
	changed, total, shown := 0, 0, 0
	for _, tr := range traces.Traces {
		naive := asPath(tr, naiveAS)
		fixed := asPath(tr, hopAS)
		if len(naive) < 2 {
			continue
		}
		total++
		if equal(naive, fixed) {
			continue
		}
		changed++
		if shown < 5 {
			shown++
			fmt.Printf("trace %s -> %v\n", tr.Monitor, tr.Dst)
			fmt.Printf("  naive:     %v\n", naive)
			fmt.Printf("  corrected: %v\n", fixed)
		}
	}
	fmt.Printf("\n%d of %d multi-AS traces had their AS path corrected (%.1f%%)\n",
		changed, total, 100*float64(changed)/float64(total))
}

// asPath collapses a trace's hops into the AS-level path under the given
// hop-to-AS mapping, skipping unresponsive and unmapped hops.
func asPath(tr mapit.Trace, lookup func(mapit.Addr) mapit.ASN) []mapit.ASN {
	var path []mapit.ASN
	for _, h := range tr.Hops {
		if !h.Responded() {
			continue
		}
		asn := lookup(h.Addr)
		if asn.IsZero() {
			continue
		}
		if len(path) == 0 || path[len(path)-1] != asn {
			path = append(path, asn)
		}
	}
	return path
}

func equal(a, b []mapit.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
