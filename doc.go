// Package mapit implements MAP-IT (Multipass Accurate Passive Inferences
// from Traceroute; Marder & Smith, IMC 2016): an algorithm that infers,
// from existing traceroute data alone, the exact interface addresses used
// on point-to-point inter-AS links and the pair of ASes each link
// connects.
//
// # Why this is hard
//
// The two interfaces of a point-to-point link are numbered from one /30
// or /31 prefix, which belongs to only one of the two connected ASes, so
// a BGP-based IP-to-AS lookup mis-attributes one side of every inter-AS
// link. Traceroute artifacts — third-party replies, load balancing,
// unresponsive routers — further distort single traces. MAP-IT therefore
// aggregates evidence across traces: it splits every interface into two
// halves (forward- and backward-looking), finds halves whose neighbour
// set is dominated by a different AS than the interface's own, and then
// refines those inferences over multiple passes, updating its IP-to-AS
// view as it learns.
//
// # Quick start
//
//	ds, _ := mapit.ReadTraces(tracesFile)
//	table, _ := mapit.ReadRIB(ribFile)
//	result, _ := mapit.Infer(ds, mapit.Config{IP2AS: table, F: 0.5})
//	for _, inf := range result.HighConfidence() {
//	    fmt.Printf("%v connects %v and %v\n", inf.Addr, inf.Local, inf.Connected)
//	}
//
// Sibling (AS-to-organisation), AS-relationship and IXP-prefix datasets
// are optional inputs that improve accuracy; see Config.
//
// # Repository layout
//
// The algorithm lives in internal/core; substrates (BGP origin tables,
// relationship/sibling/IXP datasets, the traceroute data model, a
// synthetic Internet generator with a traceroute engine, alias-resolution
// simulation, baseline heuristics, and the full evaluation harness for
// every table and figure of the paper) live in sibling internal packages.
// This package is the stable public surface over them.
package mapit
