package mapit_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// Benchmark{Table1,Fig6,Fig7,Fig8,DatasetStats} times the experiment
// behind the corresponding exhibit and reports the headline quality
// numbers as custom metrics; the BenchmarkAblation* family quantifies
// the design choices DESIGN.md calls out; the remaining benchmarks are
// micro-benchmarks of the hot paths.

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mapit"
	"mapit/internal/baseline"
	"mapit/internal/eval"
	"mapit/internal/inet"
	"mapit/internal/iptrie"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

var (
	envOnce sync.Once
	benchE  *eval.Env
)

// benchEnv builds the shared default environment once.
func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	envOnce.Do(func() { benchE = eval.NewEnv(eval.DefaultEnvConfig()) })
	return benchE
}

// reportQuality attaches precision/recall custom metrics for every
// evaluation network.
func reportQuality(b *testing.B, e *eval.Env, infs []mapit.Inference) {
	for _, key := range eval.NetworkKeys {
		m := e.Verifiers[key].Score(infs).Total
		b.ReportMetric(100*m.Precision(), eval.NetworkLabel(key)+"-P%")
		b.ReportMetric(100*m.Recall(), eval.NetworkLabel(key)+"-R%")
	}
}

// BenchmarkTable1 regenerates Table 1 (MAP-IT at f=0.5, scored per
// relationship class on all three networks).
func BenchmarkTable1(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, r, err := eval.Table1(e, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*scores[topo.SpecialREN].Total.Precision(), "I2*-precision%")
			b.ReportMetric(100*scores[topo.SpecialT1A].Total.Precision(), "L3*-precision%")
			b.ReportMetric(100*scores[topo.SpecialT1B].Total.Precision(), "TS*-precision%")
			_ = r
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (the 11-point f sweep).
func BenchmarkFig6(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := eval.Fig6(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			pts := series[topo.SpecialREN]
			b.ReportMetric(100*pts[5].Precision, "I2*-precision%@f=0.5")
			b.ReportMetric(100*pts[10].Recall, "I2*-recall%@f=1.0")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (per-stage snapshots).
func BenchmarkFig7(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stages, err := eval.Fig7(e, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			first := stages[0].ByNetwork[topo.SpecialT1B]
			last := stages[len(stages)-1].ByNetwork[topo.SpecialT1B]
			b.ReportMetric(100*first.Precision(), "TS*-precision%-initial")
			b.ReportMetric(100*last.Precision(), "TS*-precision%-final")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (baseline comparison).
func BenchmarkFig8(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := eval.Fig8(e, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*cmp["MAP-IT"][topo.SpecialREN].Precision(), "MAP-IT-I2*-precision%")
			b.ReportMetric(100*cmp["ITDK-MIDAR"][topo.SpecialREN].Precision(), "ITDK-I2*-precision%")
		}
	}
}

// BenchmarkReprobe times the §5.4 targeted re-probing loop (suggest →
// probe → rerun → rescore).
func BenchmarkReprobe(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := eval.Reprobe(e, 0.5, 6, 200)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rr.Resolved), "boundaries-resolved")
			b.ReportMetric(100*rr.GlobalAfter.Precision(), "global-precision%")
		}
	}
}

// BenchmarkDatasetStats times the §4.1 sanitisation plus statistics over
// the full trace corpus.
func BenchmarkDatasetStats(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := e.Dataset.Sanitize()
		if s.Stats.TotalTraces == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// runAblation executes MAP-IT with a modified configuration and reports
// the REN quality delta.
func runAblation(b *testing.B, mutate func(*mapit.Config)) {
	e := benchEnv(b)
	b.ResetTimer()
	var infs []mapit.Inference
	for i := 0; i < b.N; i++ {
		cfg := e.Config(0.5)
		mutate(&cfg)
		r, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		infs = r.Inferences
	}
	reportQuality(b, e, infs)
}

// BenchmarkAblationBaseline is the unmodified algorithm, for reference.
func BenchmarkAblationBaseline(b *testing.B) {
	runAblation(b, func(*mapit.Config) {})
}

// BenchmarkAblationSinglePass disables the multipass refinement.
func BenchmarkAblationSinglePass(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.SinglePass = true })
}

// BenchmarkAblationNoRemove disables the §4.5 remove step.
func BenchmarkAblationNoRemove(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.DisableRemoveStep = true })
}

// BenchmarkAblationNoInverse disables the §4.4.4 inverse resolution.
func BenchmarkAblationNoInverse(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.DisableInverseResolution = true })
}

// BenchmarkAblationNoDual disables the §4.4.3 dual-inference fix.
func BenchmarkAblationNoDual(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.DisableDualResolution = true })
}

// BenchmarkAblationNoSiblings drops the AS-to-organisation data (§4.9).
func BenchmarkAblationNoSiblings(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.Orgs = nil })
}

// BenchmarkAblationNoStub disables the §4.8 stub heuristic.
func BenchmarkAblationNoStub(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.DisableStubHeuristic = true })
}

// BenchmarkAblationWholeInterface applies IP2AS updates to whole
// interfaces instead of halves (§3.2/§4.4.1 argue per-half is required).
func BenchmarkAblationWholeInterface(b *testing.B) {
	runAblation(b, func(c *mapit.Config) { c.WholeInterfaceUpdates = true })
}

// BenchmarkInfer times one full MAP-IT run on the default corpus
// (sanitisation excluded; that is BenchmarkDatasetStats).
func BenchmarkInfer(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(e.Config(0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferSmall times MAP-IT on the small world.
func BenchmarkInferSmall(b *testing.B) {
	w := mapit.GenerateWorld(mapit.SmallWorldConfig())
	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = 400
	s := w.GenTraces(tc).Sanitize()
	cfg := mapit.Config{IP2AS: w.Table(), Orgs: w.Orgs, Rels: w.Rels, IXP: w.Directory, F: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapit.InferSanitized(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateWorld times synthetic Internet generation.
func BenchmarkGenerateWorld(b *testing.B) {
	cfg := mapit.DefaultWorldConfig()
	for i := 0; i < b.N; i++ {
		w := mapit.GenerateWorld(cfg)
		if len(w.ASes) == 0 {
			b.Fatal("empty world")
		}
	}
}

// BenchmarkGenTraces times the traceroute engine.
func BenchmarkGenTraces(b *testing.B) {
	w := mapit.GenerateWorld(mapit.DefaultWorldConfig())
	tc := mapit.DefaultTraceConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := w.GenTraces(tc)
		b.SetBytes(int64(len(ds.Traces)))
	}
}

// BenchmarkBaselineSimple times the Simple heuristic over the corpus.
func BenchmarkBaselineSimple(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if infs := baseline.Simple(e.Sanitized, e.Table); len(infs) == 0 {
			b.Fatal("no claims")
		}
	}
}

// BenchmarkBaselineITDK times the router-graph pipeline.
func BenchmarkBaselineITDK(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if infs := baseline.ITDK(e.World, e.Sanitized, e.Table, baseline.ITDKMidar, 11); len(infs) == 0 {
			b.Fatal("no claims")
		}
	}
}

// BenchmarkLPMLookup measures the longest-prefix-match trie.
func BenchmarkLPMLookup(b *testing.B) {
	e := benchEnv(b)
	addrs := make([]inet.Addr, 0, 4096)
	for a := range e.Sanitized.AllAddrs {
		addrs = append(addrs, a)
		if len(addrs) == cap(addrs) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Table.Lookup(addrs[i%len(addrs)]); !ok {
			// Some addresses are deliberately unannounced.
			continue
		}
	}
}

// lookupOnlyTable hides the origin table's Freeze method behind a
// Lookup-only wrapper, so the run's auto-freeze type assertion misses
// and every resolution walks the pointer trie. It is the reference
// point for the compiled-LPM ingest speedup.
type lookupOnlyTable struct{ t *mapit.OriginTable }

func (l lookupOnlyTable) Lookup(a inet.Addr) (inet.ASN, bool) { return l.t.Lookup(a) }

// BenchmarkIngestCompiled times a full run (state build + fixpoint)
// resolving against the frozen multibit table — the default path.
func BenchmarkIngestCompiled(b *testing.B) {
	e := benchEnv(b)
	cfg := e.Config(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapit.InferSanitized(e.Sanitized, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestTrie is the same run with the compiled engine held
// out: the table is wrapped so it cannot freeze and every lookup
// descends the binary trie. Compare against BenchmarkIngestCompiled.
func BenchmarkIngestTrie(b *testing.B) {
	e := benchEnv(b)
	cfg := e.Config(0.5)
	cfg.IP2AS = lookupOnlyTable{t: e.World.Table()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapit.InferSanitized(e.Sanitized, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrieInsert measures trie construction.
func BenchmarkTrieInsert(b *testing.B) {
	prefixes := make([]inet.Prefix, 1024)
	for i := range prefixes {
		prefixes[i] = inet.PrefixFrom(inet.Addr(uint32(i)*2654435761), 8+i%25)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := iptrie.New[int]()
		for j, p := range prefixes {
			tr.Insert(p, j)
		}
	}
}

// BenchmarkSanitizeTrace measures per-trace sanitisation (§4.1).
func BenchmarkSanitizeTrace(b *testing.B) {
	e := benchEnv(b)
	traces := e.Dataset.Traces
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := trace.Sanitize(traces[i%len(traces)])
		_ = res
	}
}

// ingestWorkerSweep is the worker-count axis of the parallel-ingest
// benchmarks; on an N-core machine throughput should scale until the
// sweep passes N, with identical outputs at every point.
var ingestWorkerSweep = []int{1, 2, 4, 8}

// BenchmarkCollectorParallel measures the sharded streaming collector
// (sanitise → dedup → sorted evidence) across worker counts, with the
// serial Collector as the reference point.
func BenchmarkCollectorParallel(b *testing.B) {
	e := benchEnv(b)
	traces := e.Dataset.Traces
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(traces)))
		for i := 0; i < b.N; i++ {
			c := mapit.NewCollector()
			for _, t := range traces {
				c.Add(t)
			}
			if ev := c.Evidence(); len(ev.Adjacencies) == 0 {
				b.Fatal("no evidence")
			}
		}
	})
	for _, w := range ingestWorkerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(traces)))
			for i := 0; i < b.N; i++ {
				c := mapit.NewParallelCollector(w)
				for _, t := range traces {
					c.Add(t)
				}
				if ev := c.Evidence(); len(ev.Adjacencies) == 0 {
					b.Fatal("no evidence")
				}
			}
		})
	}
}

// BenchmarkSanitizeParallel measures chunked §4.1 sanitisation of the
// full corpus across worker counts (workers=1 is the serial path).
func BenchmarkSanitizeParallel(b *testing.B) {
	e := benchEnv(b)
	for _, w := range ingestWorkerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(e.Dataset.Traces)))
			for i := 0; i < b.N; i++ {
				if s := e.Dataset.SanitizeParallel(w); s.Stats.TotalTraces == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkBinaryDecodeParallel measures block-format (v3) binary decode
// across worker counts.
func BenchmarkBinaryDecodeParallel(b *testing.B) {
	e := benchEnv(b)
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocks(&buf, e.Dataset, 0); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, w := range ingestWorkerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				back, err := mapit.ReadTracesBinaryParallel(bytes.NewReader(data), w)
				if err != nil || len(back.Traces) != len(e.Dataset.Traces) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestSpill is the out-of-core ingest path end to end: a
// 10M-trace corpus streams straight from the traceroute engine into a
// spilling parallel collector under a 64 MiB evidence budget, and the
// segment files are merged back into evidence. A sampler goroutine
// tracks peak heap throughout; the benchmark fails if it crosses the
// 512 MiB ceiling — the bound that makes corpus size irrelevant to
// ingest memory. CI runs this with -benchtime=1x into BENCH_oocore.json
// (bytes/op ≈ traces per iteration, so MB/s reads as Mtraces/s).
func BenchmarkIngestSpill(b *testing.B) {
	const (
		targetTraces = 10_000_000
		budget       = 64 << 20
		heapCeiling  = 512 << 20
	)
	w := mapit.GenerateWorld(mapit.DefaultWorldConfig())
	tc := mapit.DefaultTraceConfig()
	tc.DestsPerMonitor = (targetTraces + len(w.Monitors) - 1) / len(w.Monitors)

	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak.Load() {
			peak.Store(ms.HeapAlloc)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	var n int64
	var st mapit.SpillStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mapit.NewParallelCollectorSpill(0, mapit.SpillConfig{
			Dir: b.TempDir(), MemBudget: budget,
		})
		n = 0
		w.StreamTraces(tc, func(t mapit.Trace) bool {
			c.Add(t)
			n++
			return true
		})
		ev, err := c.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if len(ev.Adjacencies) == 0 {
			b.Fatal("no evidence collected")
		}
		sample() // catch the merge's working set before it is released
		st = c.SpillStats()
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	if n < targetTraces {
		b.Fatalf("engine produced %d traces, want >= %d", n, targetTraces)
	}
	if st.SpilledEntries == 0 {
		b.Fatalf("nothing spilled under a %d B budget: %+v", int64(budget), st)
	}
	if p := peak.Load(); p > heapCeiling {
		b.Fatalf("peak heap %d B exceeds the %d B ceiling", p, int64(heapCeiling))
	}
	b.ReportMetric(float64(peak.Load()), "peak-heap-B")
	b.ReportMetric(float64(st.SpilledBytes), "spilled-B")
	b.ReportMetric(float64(st.Files), "spill-files")
}

// BenchmarkBinaryCodec measures binary trace decode throughput.
func BenchmarkBinaryCodec(b *testing.B) {
	e := benchEnv(b)
	ds := &trace.Dataset{Traces: e.Dataset.Traces[:5000]}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, ds); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil || len(back.Traces) != len(ds.Traces) {
			b.Fatal(err)
		}
	}
}
