package mapit_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mapit"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileReaders(t *testing.T) {
	tracesPath := writeTemp(t, "traces.txt", testTraces)
	ribPath := writeTemp(t, "rib.txt", testRIB)
	orgsPath := writeTemp(t, "orgs.txt", "as|1|A\nas|2|A\n")
	relsPath := writeTemp(t, "rels.txt", "1|2|-1\n")
	ixpPath := writeTemp(t, "ixp.txt", "prefix|80.249.208.0/21|AMS-IX\n")

	ds, err := mapit.ReadTracesFile(tracesPath)
	if err != nil || len(ds.Traces) != 5 {
		t.Fatalf("ReadTracesFile: %v, %d traces", err, len(ds.Traces))
	}
	if _, err := mapit.ReadRIBFile(ribPath); err != nil {
		t.Fatal(err)
	}
	orgs, err := mapit.ReadOrgsFile(orgsPath)
	if err != nil || !orgs.SameOrg(1, 2) {
		t.Fatalf("ReadOrgsFile: %v", err)
	}
	rels, err := mapit.ReadRelationshipsFile(relsPath)
	if err != nil || !rels.Known(1) {
		t.Fatalf("ReadRelationshipsFile: %v", err)
	}
	dir, err := mapit.ReadIXPFile(ixpPath)
	if err != nil || dir.NumPrefixes() != 1 {
		t.Fatalf("ReadIXPFile: %v", err)
	}

	// Missing files error.
	for _, fn := range []func(string) (any, error){
		func(p string) (any, error) { return mapit.ReadTracesFile(p) },
		func(p string) (any, error) { return mapit.ReadRIBFile(p) },
		func(p string) (any, error) { return mapit.ReadOrgsFile(p) },
		func(p string) (any, error) { return mapit.ReadRelationshipsFile(p) },
		func(p string) (any, error) { return mapit.ReadIXPFile(p) },
	} {
		if _, err := fn(filepath.Join(t.TempDir(), "missing")); err == nil {
			t.Error("missing file accepted")
		}
	}
}

func TestTraceFormatAutodetect(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}

	// JSONL.
	var jbuf bytes.Buffer
	if err := mapit.WriteTracesJSON(&jbuf, ds); err != nil {
		t.Fatal(err)
	}
	jsonPath := writeTemp(t, "traces.jsonl", jbuf.String())
	back, err := mapit.ReadTracesFile(jsonPath)
	if err != nil || len(back.Traces) != len(ds.Traces) {
		t.Fatalf("JSONL autodetect: %v, %d traces", err, len(back.Traces))
	}

	// Binary.
	var bbuf bytes.Buffer
	if err := mapit.WriteTracesBinary(&bbuf, ds); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(t.TempDir(), "traces.bin")
	if err := os.WriteFile(binPath, bbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back2, err := mapit.ReadTracesFile(binPath)
	if err != nil || len(back2.Traces) != len(ds.Traces) {
		t.Fatalf("binary autodetect: %v, %d traces", err, len(back2.Traces))
	}

	// Binary stream API.
	stream, err := mapit.NewTraceStream(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	first, err := stream.Next()
	if err != nil || first.Monitor != ds.Traces[0].Monitor {
		t.Fatalf("stream Next: %v, %+v", err, first)
	}

	// The three decoders agree hop-for-hop.
	for i := range ds.Traces {
		a, b, c := ds.Traces[i], back.Traces[i], back2.Traces[i]
		if a.Dst != b.Dst || a.Dst != c.Dst || len(a.Hops) != len(b.Hops) || len(a.Hops) != len(c.Hops) {
			t.Fatalf("codec divergence at trace %d", i)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] || a.Hops[j] != c.Hops[j] {
				t.Fatalf("codec divergence at trace %d hop %d", i, j)
			}
		}
	}
}

func TestReadRIBBad(t *testing.T) {
	if _, err := mapit.ReadRIB(strings.NewReader("broken")); err == nil {
		t.Error("broken RIB accepted")
	}
}
