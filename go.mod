module mapit

go 1.22
