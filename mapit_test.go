package mapit_test

import (
	"bytes"
	"strings"
	"testing"

	"mapit"
)

const testTraces = `# Fig 2 style scenario
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
ark3|109.105.200.1|109.105.98.9 109.105.80.1
`

const testRIB = `rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
rc01|199.109.0.0/16|3754
`

func TestInferEndToEnd(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	table, err := mapit.ReadRIB(strings.NewReader(testRIB))
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapit.Infer(ds, mapit.Config{IP2AS: table, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high := res.HighConfidence()
	if len(high) != 2 {
		t.Fatalf("high confidence = %v", high)
	}
	found := false
	for _, inf := range high {
		if inf.Addr.String() == "109.105.98.10" && inf.Dir == mapit.Forward {
			found = true
			a, b := inf.Link()
			if a != 2603 || b != 11537 {
				t.Errorf("link = %v<->%v", a, b)
			}
		}
	}
	if !found {
		t.Error("expected inference on 109.105.98.10")
	}
	links := res.Links()
	if len(links) != 2 {
		t.Errorf("links = %v", links)
	}
}

func TestInferValidation(t *testing.T) {
	ds := &mapit.Dataset{}
	if _, err := mapit.Infer(ds, mapit.Config{}); err == nil {
		t.Error("missing IP2AS accepted")
	}
	if _, err := mapit.Infer(ds, mapit.Config{IP2AS: mapit.EmptyOriginTable(), F: 2}); err == nil {
		t.Error("bad f accepted")
	}
}

func TestRoundTripWriters(t *testing.T) {
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mapit.WriteTraces(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := mapit.ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != len(ds.Traces) {
		t.Error("trace round trip length mismatch")
	}
}

func TestParsers(t *testing.T) {
	if a, err := mapit.ParseAddr("8.8.8.8"); err != nil || a.String() != "8.8.8.8" {
		t.Error("ParseAddr")
	}
	if p, err := mapit.ParsePrefix("10.0.0.0/8"); err != nil || p.String() != "10.0.0.0/8" {
		t.Error("ParsePrefix")
	}
	if n, err := mapit.ParseASN("AS15169"); err != nil || n != 15169 {
		t.Error("ParseASN")
	}
	if _, err := mapit.ReadOrgs(strings.NewReader("as|1|ORG\nas|2|ORG\n")); err != nil {
		t.Error("ReadOrgs", err)
	}
	if _, err := mapit.ReadRelationships(strings.NewReader("1|2|-1\n")); err != nil {
		t.Error("ReadRelationships", err)
	}
	if _, err := mapit.ReadIXP(strings.NewReader("prefix|80.249.208.0/21|AMS-IX\n")); err != nil {
		t.Error("ReadIXP", err)
	}
}

func TestOriginChain(t *testing.T) {
	primary := mapit.EmptyOriginTable()
	primary.Add(mustPrefix(t, "10.0.0.0/8"), 100)
	fallback := mapit.EmptyOriginTable()
	fallback.Add(mustPrefix(t, "11.0.0.0/8"), 200)
	chain := mapit.OriginChain{primary, fallback}
	if asn, ok := chain.Lookup(mustAddr(t, "11.1.1.1")); !ok || asn != 200 {
		t.Errorf("chain lookup = %v, %v", asn, ok)
	}
}

func mustPrefix(t *testing.T, s string) mapit.Prefix {
	t.Helper()
	p, err := mapit.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAddr(t *testing.T, s string) mapit.Addr {
	t.Helper()
	a, err := mapit.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSimulatorAPI(t *testing.T) {
	w := mapit.GenerateWorld(mapit.SmallWorldConfig())
	if w.Special[mapit.SpecialREN] == nil {
		t.Fatal("special networks missing")
	}
	cfg := mapit.DefaultTraceConfig()
	cfg.DestsPerMonitor = 50
	ds := w.GenTraces(cfg)
	if len(ds.Traces) == 0 {
		t.Fatal("no traces")
	}
	res, err := mapit.Infer(ds, mapit.Config{IP2AS: w.Table(), Orgs: w.Orgs, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inferences) == 0 {
		t.Error("no inferences on simulated world")
	}
	noise := mapit.DefaultMetaNoise()
	orgs, rels, dir := w.PublicInputs(noise)
	if orgs == nil || rels == nil || dir == nil {
		t.Error("public inputs missing")
	}
}

func TestStageHookPublicAPI(t *testing.T) {
	ds, _ := mapit.ReadTraces(strings.NewReader(testTraces))
	table, _ := mapit.ReadRIB(strings.NewReader(testRIB))
	var stages []mapit.Stage
	_, err := mapit.Infer(ds, mapit.Config{
		IP2AS: table, F: 0.5,
		OnStage: func(s mapit.Stage, iter int, snap *mapit.StageSnapshot) {
			stages = append(stages, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 || stages[0] != mapit.StageDirect || stages[len(stages)-1] != mapit.StageStub {
		t.Errorf("stages = %v", stages)
	}
}
