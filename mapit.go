package mapit

import (
	"mapit/internal/as2org"
	"mapit/internal/audit"
	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
	"mapit/internal/snapshot"
	"mapit/internal/trace"
)

// Core value types, aliased from the internal packages so they can be
// used by importers of this package.
type (
	// Addr is an IPv4 address.
	Addr = inet.Addr
	// ASN is an autonomous system number.
	ASN = inet.ASN
	// Prefix is an IPv4 CIDR prefix.
	Prefix = inet.Prefix

	// Hop is one reply within a trace.
	Hop = trace.Hop
	// Trace is one traceroute.
	Trace = trace.Trace
	// Dataset is a traceroute collection.
	Dataset = trace.Dataset
	// Sanitized is a dataset after §4.1 sanitisation.
	Sanitized = trace.Sanitized

	// OriginTable is a longest-prefix-match BGP origin table.
	OriginTable = bgp.Table
	// Announcement is one collector's view of one prefix.
	Announcement = bgp.Announcement

	// Orgs is the sibling (AS-to-organisation) dataset.
	Orgs = as2org.Orgs
	// Relationships is the AS relationship dataset.
	Relationships = relation.Dataset
	// IXPDirectory is the exchange-point prefix/ASN directory.
	IXPDirectory = ixp.Directory

	// Config carries the inputs and knobs of a run.
	Config = core.Config
	// Result is the output of a run.
	Result = core.Result
	// Inference is one inferred inter-AS link interface.
	Inference = core.Inference
	// Diagnostics carries run statistics.
	Diagnostics = core.Diagnostics
	// Direction selects an interface half.
	Direction = core.Direction
	// ASLink is an aggregated AS-pair link.
	ASLink = core.ASLink
	// Stage identifies an algorithm snapshot point.
	Stage = core.Stage
	// StageSnapshot is the lazy snapshot handed to Config.OnStage.
	StageSnapshot = core.StageSnapshot
	// PartitionInfo describes the component schedule of the partitioned
	// fixpoint (Result.Partition).
	PartitionInfo = core.PartitionInfo

	// AuditChecker configures the runtime invariant auditor (set it as
	// Config.Audit to cross-check the incremental machinery against
	// first principles at every fixpoint step boundary).
	AuditChecker = audit.Checker
	// AuditMode selects how much of each structure the auditor samples.
	AuditMode = audit.Mode
	// AuditReport is the structured audit outcome (Result.Audit).
	AuditReport = audit.Report
	// AuditViolation is one failed invariant check.
	AuditViolation = audit.Violation
)

// Direction values.
const (
	Forward  = core.Forward
	Backward = core.Backward
)

// Stage values, in firing order (see Config.OnStage).
const (
	StageDirect       = core.StageDirect
	StageP2P          = core.StageP2P
	StageInverse      = core.StageInverse
	StageAddConverged = core.StageAddConverged
	StageIteration    = core.StageIteration
	StageStub         = core.StageStub
)

// Audit modes.
const (
	AuditOff        = audit.Off
	AuditSampled    = audit.Sampled
	AuditExhaustive = audit.Exhaustive
)

// ParseAuditMode parses "off", "sampled", or "exhaustive".
func ParseAuditMode(s string) (AuditMode, error) { return audit.ParseMode(s) }

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return inet.ParseAddr(s) }

// ParsePrefix parses CIDR notation.
func ParsePrefix(s string) (Prefix, error) { return inet.ParsePrefix(s) }

// ParseASN parses "64500" or "AS64500".
func ParseASN(s string) (ASN, error) { return inet.ParseASN(s) }

// Infer runs MAP-IT over a raw trace dataset: it sanitises the traces
// (§4.1, parallelised across cfg.Workers) and executes the multipass
// algorithm (§4.2–§4.8).
func Infer(ds *Dataset, cfg Config) (*Result, error) {
	return core.Run(ds.SanitizeParallel(cfg.Workers), cfg)
}

// InferSanitized runs MAP-IT over an already-sanitised dataset, for
// callers that need the sanitisation statistics or reuse the dataset
// across configurations (parameter sweeps).
func InferSanitized(s *Sanitized, cfg Config) (*Result, error) {
	return core.Run(s, cfg)
}

// Streaming ingestion: month-scale corpora (the paper processes 733M
// traces) cannot be memory-resident, but their *evidence* — unique
// adjacencies and observed addresses — can. Feed traces to a Collector
// one at a time and run MAP-IT over the collected Evidence.
type (
	// Collector accumulates evidence incrementally without retaining
	// traces.
	Collector = core.Collector
	// ParallelCollector is a sharded Collector that sanitises and
	// deduplicates across worker goroutines with byte-identical output.
	ParallelCollector = core.ParallelCollector
	// Evidence is the distilled algorithm input.
	Evidence = core.Evidence
	// SpillConfig bounds collector memory for out-of-core ingest:
	// evidence over the budget spills to sorted columnar segment files
	// and finalisation runs a bounded-memory external merge. The zero
	// value keeps everything in memory.
	SpillConfig = core.SpillConfig
	// SpillStats counts out-of-core ingest activity (segment files,
	// spilled runs/entries/bytes, external merges).
	SpillStats = core.SpillStats
)

// NewCollector returns an empty streaming collector.
func NewCollector() *Collector { return core.NewCollector() }

// NewParallelCollector returns an empty sharded streaming collector;
// workers < 1 means runtime.GOMAXPROCS(0).
func NewParallelCollector(workers int) *ParallelCollector {
	return core.NewParallelCollector(workers)
}

// NewCollectorSpill returns a streaming collector that spills evidence
// past cfg's memory budget to disk. Output is byte-identical to the
// in-memory collector; call Finish (not Evidence) to observe spill I/O
// errors, and Close to remove the segment files.
func NewCollectorSpill(cfg SpillConfig) *Collector { return core.NewCollectorSpill(cfg) }

// NewParallelCollectorSpill is NewParallelCollector with an out-of-core
// spill budget (see NewCollectorSpill).
func NewParallelCollectorSpill(workers int, cfg SpillConfig) *ParallelCollector {
	return core.NewParallelCollectorSpill(workers, cfg)
}

// InferEvidence runs MAP-IT over collected evidence.
func InferEvidence(ev *Evidence, cfg Config) (*Result, error) {
	return core.RunEvidence(ev, cfg)
}

// EvidenceFrom distils an already-sanitised dataset into algorithm
// evidence, for callers that want both the evidence (e.g. to compile a
// query snapshot with a monitor index) and the inference result —
// InferEvidence(EvidenceFrom(s), cfg) is identical to
// InferSanitized(s, cfg).
func EvidenceFrom(s *Sanitized) *Evidence { return core.EvidenceFrom(s) }

// Serving: repeated queries against a finished (or converging) run go
// through a compiled snapshot — an immutable columnar view with
// zero-allocation concurrent address, AS-pair and monitor lookups.
type (
	// Snapshot is the compiled read-optimised view of a Result.
	Snapshot = snapshot.Snapshot
	// SnapshotRows is a zero-copy run of records sharing an address.
	SnapshotRows = snapshot.Rows
	// SnapshotLink is a zero-copy view of one AS pair's interfaces.
	SnapshotLink = snapshot.Link
	// SnapshotMonitor is a zero-copy view of one monitor's evidence.
	SnapshotMonitor = snapshot.Monitor
	// SnapshotHandle is an atomic copy-on-write publication point.
	SnapshotHandle = snapshot.Handle
	// MonitorEvidence is one monitor's contribution to the evidence
	// (collected only when the collector had TrackMonitors enabled).
	MonitorEvidence = core.MonitorEvidence
)

// BuildSnapshot compiles a result (and optionally its evidence, for the
// monitor index; ev may be nil) into an immutable query snapshot.
func BuildSnapshot(res *Result, ev *Evidence) *Snapshot { return snapshot.Build(res, ev) }

// PublishSnapshots returns a Config.OnStage hook that compiles and
// publishes a snapshot into h at every iteration boundary and after the
// final stage, so readers can query a converging run without blocking
// it.
func PublishSnapshots(h *SnapshotHandle, ev *Evidence) func(Stage, int, *StageSnapshot) {
	return snapshot.PublishOnStage(h, ev)
}

// NewOriginTable elects per-prefix origins from multi-collector
// announcements and builds the LPM table.
func NewOriginTable(anns []Announcement) *OriginTable { return bgp.NewTable(anns) }

// EmptyOriginTable returns a table to fill via Add (e.g. a Team Cymru
// style fallback).
func EmptyOriginTable() *OriginTable { return bgp.EmptyTable() }

// OriginChain chains origin tables; the first table that resolves an
// address wins (the paper chains collectors ahead of Team Cymru).
type OriginChain = bgp.Chain
