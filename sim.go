package mapit

import (
	"mapit/internal/topo"
)

// Simulator access: the paper evaluates on CAIDA Ark data, which is not
// redistributable; this module ships a synthetic-Internet generator and
// traceroute engine instead, with exact ground truth, so every
// experiment reproduces offline. The same types also back the examples.
type (
	// World is a generated Internet.
	World = topo.World
	// WorldConfig parameterises generation.
	WorldConfig = topo.GenConfig
	// TraceConfig parameterises the traceroute engine.
	TraceConfig = topo.TraceConfig
	// MetaNoise degrades the true metadata into realistic public inputs.
	MetaNoise = topo.NoiseConfig
	// IfaceTruth is per-interface ground truth.
	IfaceTruth = topo.IfaceTruth
	// SimAS is one autonomous system of a generated world.
	SimAS = topo.AS
	// Monitor is a traceroute vantage point.
	Monitor = topo.Monitor
)

// Designated evaluation networks of a generated world (keys into
// World.Special).
const (
	SpecialREN = topo.SpecialREN
	SpecialT1A = topo.SpecialT1A
	SpecialT1B = topo.SpecialT1B
)

// DefaultWorldConfig is the experiment suite's standard world.
func DefaultWorldConfig() WorldConfig { return topo.DefaultGenConfig() }

// SmallWorldConfig is a fast world for tests and demos.
func SmallWorldConfig() WorldConfig { return topo.SmallGenConfig() }

// DefaultTraceConfig is the experiment suite's trace workload.
func DefaultTraceConfig() TraceConfig { return topo.DefaultTraceConfig() }

// DefaultMetaNoise matches the experiment suite.
func DefaultMetaNoise() MetaNoise { return topo.DefaultNoiseConfig() }

// GenerateWorld builds a synthetic Internet; deterministic in cfg.
func GenerateWorld(cfg WorldConfig) *World { return topo.Generate(cfg) }
