package mapit

import "mapit/internal/core"

// Unified ingest: the mapit CLI and the mapitd daemon share one
// sniffing ingest pipeline — any supported trace format, streamed
// through the parallel (optionally spilling) collector, reusable for
// incremental corpus growth.
type (
	// Ingestor reads trace corpora (text, JSONL, binary MTRC v2/v3 —
	// sniffed, no seeking) into one retained collector; Finish may be
	// called repeatedly as more batches arrive.
	Ingestor = core.Ingestor
	// IngestOptions configures an Ingestor (workers, strictness, spill
	// budget, monitor attribution).
	IngestOptions = core.IngestOptions
)

// NewIngestor returns an empty ingest pipeline.
func NewIngestor(opt IngestOptions) *Ingestor { return core.NewIngestor(opt) }
