package mapit

import (
	"errors"
	"fmt"
	"io"
	"time"

	"mapit/internal/core"
	"mapit/internal/trace"
)

// Unified ingest: the mapit CLI and the mapitd daemon share one
// sniffing ingest pipeline — any supported trace format, streamed
// through the parallel (optionally spilling) collector, reusable for
// incremental corpus growth.
type (
	// Ingestor reads trace corpora (text, JSONL, binary MTRC v2/v3/v4 —
	// sniffed, no seeking) into one retained collector; Finish may be
	// called repeatedly as more batches arrive.
	Ingestor = core.Ingestor
	// IngestOptions configures an Ingestor (workers, strictness, spill
	// budget, monitor attribution).
	IngestOptions = core.IngestOptions
)

// NewIngestor returns an empty ingest pipeline.
func NewIngestor(opt IngestOptions) *Ingestor { return core.NewIngestor(opt) }

// Sliding-window streaming inference: traces carry timestamps (MTRC v4
// or JSONL "time"), a Window retains only those inside a trailing span,
// and Advance re-runs the inference over the residents — batch-identical
// at every position (see the internal/audit/meta DiffWindow oracle).
type (
	// Window is the sliding-window inference engine.
	Window = core.Window
	// WindowOptions configures a Window (span length, inference config,
	// monitor attribution).
	WindowOptions = core.WindowOptions
	// WindowStats carries the window's lifetime and churn counters.
	WindowStats = core.WindowStats
)

// NewWindow returns an empty sliding window.
func NewWindow(opt WindowOptions) (*Window, error) { return core.NewWindow(opt) }

// DecodeTraces sniffs the trace format of r (text, JSONL, or binary
// MTRC v2/v3/v4) and delivers every decoded trace to fn in stream
// order — the decode loop under both the batch Ingestor and the
// windowed replay paths.
func DecodeTraces(r io.Reader, opt trace.DecodeOptions, fn func(trace.Trace) error) (int, error) {
	return core.DecodeTraces(r, opt, fn)
}

// WindowReplay streams a timestamped corpus through a sliding window:
// every trace is observed, and whenever a trace's timestamp first
// reaches or passes the next step boundary the window advances there
// and emit is called with the boundary and the result. A final advance
// covers the tail. Traces must arrive in non-decreasing time order
// (MTRC v4 guarantees it; gentopo -timestamps writes sorted corpora) —
// a regression is an error. step is in seconds.
func WindowReplay(r io.Reader, w *Window, opt trace.DecodeOptions, step int64,
	emit func(now int64, res *Result) error) error {

	if step <= 0 {
		return errors.New("window replay: step must be positive")
	}
	var next, last int64
	started := false
	_, err := core.DecodeTraces(r, opt, func(t trace.Trace) error {
		if !started {
			next = t.Time + step
			started = true
		} else if t.Time < last {
			return fmt.Errorf("window replay: corpus is not sorted by time (%d after %d)", t.Time, last)
		}
		last = t.Time
		for t.Time >= next {
			res, err := w.Advance(next)
			if err != nil {
				return err
			}
			if err := emit(next, res); err != nil {
				return err
			}
			next += step
		}
		w.Observe(t)
		return nil
	})
	if err != nil {
		return err
	}
	if !started {
		return nil
	}
	res, err := w.Advance(next)
	if err != nil {
		return err
	}
	return emit(next, res)
}

// WindowLength converts a seconds count to the duration WindowOptions
// expects, for callers that parse window sizes from flags.
func WindowLength(seconds int64) time.Duration { return time.Duration(seconds) * time.Second }
