package mapit

import (
	"bufio"
	"io"
	"os"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/ixp"
	"mapit/internal/relation"
	"mapit/internal/trace"
)

// ReadTraces parses a traceroute dataset in the repository's text format
// ("monitor|dst|hop hop ...", hops are dotted quads, "*", or
// "addr!q<ttl>" for anomalous quoted TTLs).
func ReadTraces(r io.Reader) (*Dataset, error) { return trace.Read(r) }

// ReadTracesFile reads a trace dataset from disk, auto-detecting the
// text, JSONL and binary formats.
func ReadTracesFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if head, err := br.Peek(5); err == nil {
		switch {
		case string(head) == "MTRC\x02" || string(head) == "MTRC\x03":
			return trace.ReadBinary(br)
		case head[0] == '{':
			return trace.ReadJSON(br)
		}
	}
	return trace.Read(br)
}

// WriteTraces emits a dataset in the format ReadTraces parses.
func WriteTraces(w io.Writer, ds *Dataset) error { return trace.Write(w, ds) }

// ReadTracesJSON parses a JSONL trace dataset
// ({"monitor":...,"dst":...,"hops":[...]} per line).
func ReadTracesJSON(r io.Reader) (*Dataset, error) { return trace.ReadJSON(r) }

// WriteTracesJSON emits a dataset as JSONL.
func WriteTracesJSON(w io.Writer, ds *Dataset) error { return trace.WriteJSON(w, ds) }

// ReadTracesBinary reads the compact binary trace format (either
// version) on one core.
func ReadTracesBinary(r io.Reader) (*Dataset, error) { return trace.ReadBinary(r) }

// ReadTracesBinaryParallel reads the compact binary trace format,
// decoding block-format (v3) streams across the given number of worker
// goroutines. Flat v2 streams fall back to the serial decode. The
// resulting dataset is identical to ReadTracesBinary's.
func ReadTracesBinaryParallel(r io.Reader, workers int) (*Dataset, error) {
	return trace.ReadBinaryParallel(r, workers)
}

// Corrupt-input handling: the binary decoders validate every length
// field, count, and interned index they read, and report failures as
// *CorruptError with byte-offset context. Permissive decoding
// additionally survives corrupt v3 blocks by skipping them.
type (
	// CorruptError is a structured binary decode failure (byte offset,
	// block index, record kind, failure class).
	CorruptError = trace.CorruptError
	// DecodeStats aggregates decode-health counters across one ingest.
	DecodeStats = trace.DecodeStats
	// DecodeOptions selects strict (zero value) or permissive decoding
	// and optionally collects DecodeStats.
	DecodeOptions = trace.DecodeOptions
)

// ReadTracesBinaryOpts is ReadTracesBinary with explicit corrupt-input
// handling options.
func ReadTracesBinaryOpts(r io.Reader, opt DecodeOptions) (*Dataset, error) {
	return trace.ReadBinaryOpts(r, opt)
}

// ReadTracesBinaryParallelOpts is ReadTracesBinaryParallel with
// explicit corrupt-input handling options. In permissive mode the
// result holds exactly the traces of the blocks that decoded cleanly,
// in stream order.
func ReadTracesBinaryParallelOpts(r io.Reader, workers int, opt DecodeOptions) (*Dataset, error) {
	return trace.ReadBinaryParallelOpts(r, workers, opt)
}

// WriteTracesBinary emits the compact binary trace format (~5 bytes per
// hop with interned monitor names — the right choice for month-scale
// corpora).
func WriteTracesBinary(w io.Writer, ds *Dataset) error { return trace.WriteBinary(w, ds) }

// WriteTracesBinaryBlocks emits the block-framed binary trace format
// (v3), which ReadTracesBinaryParallel can decode across cores.
// tracesPerBlock <= 0 selects the default block size.
func WriteTracesBinaryBlocks(w io.Writer, ds *Dataset, tracesPerBlock int) error {
	return trace.WriteBinaryBlocks(w, ds, tracesPerBlock)
}

// WriteTracesBinaryBlocksV4 emits the timestamped block-framed binary
// format (v4): v3 framing plus a delta-compressed per-block timestamp
// column. Traces must be in non-decreasing Time order. tracesPerBlock
// <= 0 selects the default block size.
func WriteTracesBinaryBlocksV4(w io.Writer, ds *Dataset, tracesPerBlock int) error {
	return trace.WriteBinaryBlocksV4(w, ds, tracesPerBlock)
}

// TraceStream reads binary-format traces one at a time; pair it with a
// Collector to process corpora larger than memory.
type TraceStream = trace.BinaryReader

// NewTraceStream opens a binary trace stream with strict decoding.
func NewTraceStream(r io.Reader) (*TraceStream, error) { return trace.NewBinaryReader(r) }

// NewTraceStreamOpts opens a binary trace stream with explicit
// corrupt-input handling options (permissive block skipping,
// decode-health counters).
func NewTraceStreamOpts(r io.Reader, opt DecodeOptions) (*TraceStream, error) {
	return trace.NewBinaryReaderOpts(r, opt)
}

// ReadRIB parses RIB dumps ("collector|prefix|as-path" lines) and builds
// the merged origin table.
func ReadRIB(r io.Reader) (*OriginTable, error) {
	anns, err := bgp.ParseRIB(r)
	if err != nil {
		return nil, err
	}
	return bgp.NewTable(anns), nil
}

// ReadRIBFile is ReadRIB over a file path.
func ReadRIBFile(path string) (*OriginTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRIB(f)
}

// ReadOrgs parses a sibling dataset ("as|<asn>|<org>" and
// "sibling|<asn>|<asn>" lines).
func ReadOrgs(r io.Reader) (*Orgs, error) { return as2org.Parse(r) }

// ReadOrgsFile is ReadOrgs over a file path.
func ReadOrgsFile(path string) (*Orgs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return as2org.Parse(f)
}

// ReadRelationships parses a CAIDA serial-1 relationship file
// ("provider|customer|-1", "peer|peer|0").
func ReadRelationships(r io.Reader) (*Relationships, error) { return relation.Parse(r) }

// ReadRelationshipsFile is ReadRelationships over a file path.
func ReadRelationshipsFile(path string) (*Relationships, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.Parse(f)
}

// ReadIXP parses an IXP directory ("prefix|<cidr>|<name>",
// "asn|<asn>|<name>").
func ReadIXP(r io.Reader) (*IXPDirectory, error) { return ixp.Parse(r) }

// ReadIXPFile is ReadIXP over a file path.
func ReadIXPFile(path string) (*IXPDirectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ixp.Parse(f)
}
