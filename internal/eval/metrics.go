// Package eval reproduces the paper's evaluation machinery (§5):
// verification datasets (exact Internet2-style ground truth and
// DNS-hostname-derived approximate ground truth), the §5.2
// precision/recall scoring rules, the Table 1 relationship breakdown,
// and the experiment drivers behind every table and figure.
package eval

import (
	"fmt"

	"mapit/internal/relation"
)

// Metrics is one precision/recall cell.
type Metrics struct {
	TP int
	FP int
	FN int
}

// Precision is TP/(TP+FP); 1 when nothing was inferred (no evidence of
// error).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP/(TP+FN); 1 when nothing was inferable.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 is the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates another cell into m.
func (m *Metrics) Add(o Metrics) {
	m.TP += o.TP
	m.FP += o.FP
	m.FN += o.FN
}

// String renders the cell in Table 1 style.
func (m Metrics) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d P=%.1f%% R=%.1f%%",
		m.TP, m.FP, m.FN, 100*m.Precision(), 100*m.Recall())
}

// Breakdown is a Table 1 row group: metrics per relationship class plus
// the total.
type Breakdown struct {
	ByClass map[relation.LinkClass]Metrics
	Total   Metrics
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{ByClass: make(map[relation.LinkClass]Metrics)}
}

func (b *Breakdown) add(class relation.LinkClass, delta Metrics) {
	cell := b.ByClass[class]
	cell.Add(delta)
	b.ByClass[class] = cell
	b.Total.Add(delta)
}

// Classes lists the Table 1 row order.
var Classes = []relation.LinkClass{relation.ISPTransit, relation.PeerLink, relation.StubTransit}
