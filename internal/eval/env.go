package eval

import (
	"mapit/internal/as2org"
	"mapit/internal/audit"
	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/hostnames"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// Env is a fully prepared experiment environment: one generated world,
// its traceroute dataset, the noisy public metadata MAP-IT consumes, and
// a verifier per evaluation network — exact ground truth for the R&E
// network (the Internet2 analogue) and DNS-approximate ground truth for
// the two Tier 1s (the Level 3 / TeliaSonera analogues).
type Env struct {
	World     *topo.World
	Dataset   *trace.Dataset
	Sanitized *trace.Sanitized

	// Public inputs (what MAP-IT sees).
	Table *bgp.Table
	Orgs  *as2org.Orgs
	Rels  *relation.Dataset
	IXP   *ixp.Directory

	// Verifiers keyed by topo.SpecialREN / SpecialT1A / SpecialT1B.
	Verifiers map[string]Verifier
	// Networks maps the same keys to the evaluation ASes.
	Networks map[string]*topo.AS

	cfg EnvConfig
}

// EnvConfig bundles every generation knob.
type EnvConfig struct {
	Gen   topo.GenConfig
	Trace topo.TraceConfig
	Meta  topo.NoiseConfig
	DNS   hostnames.NoiseConfig

	// Workers parallelises environment construction (sanitisation) and
	// is forwarded to core.Config by Env.Config. Results are identical
	// for any value; zero or one means serial.
	Workers int

	// Audit, when set, is forwarded to core.Config by Env.Config so
	// experiment runs execute under the runtime invariant auditor.
	Audit *audit.Checker
}

// DefaultEnvConfig is the experiment suite's standard environment.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{
		Gen:   topo.DefaultGenConfig(),
		Trace: topo.DefaultTraceConfig(),
		Meta:  topo.DefaultNoiseConfig(),
		DNS:   hostnames.DefaultNoiseConfig(),
	}
}

// SmallEnvConfig is a fast environment for tests.
func SmallEnvConfig() EnvConfig {
	c := DefaultEnvConfig()
	c.Gen = topo.SmallGenConfig()
	c.Trace.DestsPerMonitor = 400
	return c
}

// LargeEnvConfig is the headline experiment environment: a bigger world
// and a deeper probe sweep, so the evaluation networks accumulate
// hundreds of verifiable links.
func LargeEnvConfig() EnvConfig {
	c := DefaultEnvConfig()
	c.Gen = topo.LargeGenConfig()
	c.Trace.DestsPerMonitor = 4000
	return c
}

// NewEnv generates the world, runs the trace engine, derives public
// inputs and builds the verifiers. Deterministic in cfg.
func NewEnv(cfg EnvConfig) *Env {
	w := topo.Generate(cfg.Gen)
	ds := w.GenTraces(cfg.Trace)
	s := ds.SanitizeParallel(cfg.Workers)
	orgs, rels, dir := w.PublicInputs(cfg.Meta)
	e := &Env{
		World:     w,
		Dataset:   ds,
		Sanitized: s,
		Table:     w.Table(),
		Orgs:      orgs,
		Rels:      rels,
		IXP:       dir,
		Verifiers: make(map[string]Verifier),
		Networks:  make(map[string]*topo.AS),
		cfg:       cfg,
	}
	// Freeze the lookup sources into their compiled multibit form up
	// front: the verifiers below, every baseline pass, and each core run
	// over this environment resolve against the same table, so one
	// compile amortises across the whole experiment.
	e.Table.Freeze()
	e.IXP.Freeze()
	truth := w.Truth()
	for key, as := range w.Special {
		e.Networks[key] = as
		if key == topo.SpecialREN {
			e.Verifiers[key] = NewExactVerifier(w, as, s, rels)
			continue
		}
		recs := hostnameRecords(w, truth, as, cfg.DNS)
		e.Verifiers[key] = NewApproxVerifier(as.ASN, recs, s, e.Table, orgs, rels)
	}
	return e
}

// hostnameRecords builds the DNS records the approximate verifier parses:
// the target's own interfaces plus the far sides of its point-to-point
// inter-AS links (the paper resolves dataset interfaces "along with their
// inferred other side").
func hostnameRecords(w *topo.World, truth map[inet.Addr]topo.IfaceTruth,
	target *topo.AS, cfg hostnames.NoiseConfig) []hostnames.Record {

	targetOrg := w.Orgs.Canonical(target.ASN)
	perOwner := make(map[inet.ASN][]hostnames.IfaceInfo)
	seen := make(map[inet.Addr]bool)
	addIface := func(addr inet.Addr) {
		if seen[addr] {
			return
		}
		seen[addr] = true
		t := truth[addr]
		info := hostnames.IfaceInfo{Addr: addr, Fabric: t.IXP}
		if t.InterAS && !t.IXP {
			info.External = true
			info.Peer = t.ConnectedASes[0]
		}
		perOwner[t.RouterAS] = append(perOwner[t.RouterAS], info)
	}
	for addr, t := range truth {
		if w.Orgs.Canonical(t.RouterAS) == targetOrg {
			addIface(addr)
			if t.InterAS && !t.OtherSide.IsZero() {
				addIface(t.OtherSide)
			}
		}
	}
	var neighbours []inet.ASN
	for _, p := range append(append(target.Providers(), target.Peers()...), target.Customers()...) {
		neighbours = append(neighbours, p.ASN)
	}
	var out []hostnames.Record
	for owner, infos := range perOwner {
		out = append(out, hostnames.Generate(owner, infos, neighbours, cfg)...)
	}
	return out
}

// Config assembles the core.Config for a run over this environment.
func (e *Env) Config(f float64) core.Config {
	return core.Config{
		IP2AS:   e.Table,
		Orgs:    e.Orgs,
		Rels:    e.Rels,
		IXP:     e.IXP,
		F:       f,
		Workers: e.cfg.Workers,
		Audit:   e.cfg.Audit,
	}
}

// Run executes MAP-IT over the environment.
func (e *Env) Run(cfg core.Config) (*core.Result, error) {
	return core.Run(e.Sanitized, cfg)
}

// ScoreAll scores an inference set against every verifier.
func (e *Env) ScoreAll(infs []core.Inference) map[string]*Breakdown {
	out := make(map[string]*Breakdown, len(e.Verifiers))
	for key, v := range e.Verifiers {
		out[key] = v.Score(infs)
	}
	return out
}
