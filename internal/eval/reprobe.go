package eval

import (
	"fmt"
	"io"
	"slices"

	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

// ReprobeResult quantifies the §5.4 remedy: MAP-IT's probe suggestions
// drive a targeted re-measurement, and recall is re-scored against the
// *original* verification universe so the deltas are apples-to-apples.
type ReprobeResult struct {
	// Suggestions is how many starving boundaries the first run flagged.
	Suggestions int
	// TargetASes is how many distinct ASes were re-probed.
	TargetASes int
	// ExtraTraces is the size of the targeted measurement.
	ExtraTraces int
	// Before and After are per-network totals.
	Before, After map[string]Metrics
	// GlobalBefore/GlobalAfter score every inference against exact
	// world truth (correct = real inter-AS interface with the right AS
	// pair), since targeted probing mostly helps boundaries outside the
	// three verified networks.
	GlobalBefore, GlobalAfter GlobalScore
	// Resolved counts suggested boundaries that carry a correct
	// inference after re-probing.
	Resolved int
}

// GlobalScore is a whole-world accuracy summary.
type GlobalScore struct {
	Inferences int
	Correct    int
}

// Precision is the fraction of inferences that are correct.
func (g GlobalScore) Precision() float64 {
	if g.Inferences == 0 {
		return 1
	}
	return float64(g.Correct) / float64(g.Inferences)
}

// Reprobe runs MAP-IT, re-probes the suggested boundaries' far ASes with
// destsPerAS extra destinations per monitor, reruns over the combined
// corpus, and scores both rounds.
func Reprobe(e *Env, f float64, destsPerAS, maxTargets int) (*ReprobeResult, error) {
	r1, err := e.Run(e.Config(f))
	if err != nil {
		return nil, err
	}
	out := &ReprobeResult{
		Suggestions: len(r1.ProbeSuggestions),
		Before:      make(map[string]Metrics),
		After:       make(map[string]Metrics),
	}
	for key, v := range e.Verifiers {
		out.Before[key] = v.Score(r1.Inferences).Total
	}

	// Target the far AS of each starving boundary, deduplicated.
	seen := make(map[inet.ASN]bool)
	var targets []inet.ASN
	for _, sug := range r1.ProbeSuggestions {
		for _, asn := range [2]inet.ASN{sug.NeighborAS, sug.LocalAS} {
			if !seen[asn] {
				seen[asn] = true
				targets = append(targets, asn)
			}
		}
	}
	slices.Sort(targets)
	if maxTargets > 0 && len(targets) > maxTargets {
		targets = targets[:maxTargets]
	}
	out.TargetASes = len(targets)

	tc := e.cfg.Trace
	extra := e.World.GenTargetedTraces(targets, destsPerAS, tc)
	out.ExtraTraces = len(extra.Traces)

	combined := &trace.Dataset{
		Traces: append(append([]trace.Trace(nil), e.Dataset.Traces...), extra.Traces...),
	}
	cfg := e.Config(f)
	r2, err := core.Run(combined.Sanitize(), cfg)
	if err != nil {
		return nil, err
	}
	for key, v := range e.Verifiers {
		out.After[key] = v.Score(r2.Inferences).Total
	}

	truth := e.World.Truth()
	orgs := e.World.Orgs
	correct := func(inf core.Inference) bool {
		t, ok := truth[inf.Addr]
		if !ok || !t.InterAS || inf.Local.IsZero() || inf.Connected.IsZero() {
			return false
		}
		cl, cc := orgs.Canonical(inf.Local), orgs.Canonical(inf.Connected)
		routerOrg := orgs.Canonical(t.RouterAS)
		for _, c := range t.ConnectedASes {
			if pairMatch([2]inet.ASN{routerOrg, orgs.Canonical(c)}, cl, cc) {
				return true
			}
		}
		return false
	}
	score := func(infs []core.Inference) GlobalScore {
		var g GlobalScore
		for _, inf := range infs {
			if inf.Uncertain {
				continue
			}
			g.Inferences++
			if correct(inf) {
				g.Correct++
			}
		}
		return g
	}
	out.GlobalBefore = score(r1.Inferences)
	out.GlobalAfter = score(r2.Inferences)
	correctByAddr := make(map[inet.Addr]bool)
	for _, inf := range r2.Inferences {
		if !inf.Uncertain && correct(inf) {
			correctByAddr[inf.Addr] = true
		}
	}
	for _, sug := range r1.ProbeSuggestions {
		if t, ok := truth[sug.Addr]; ok && correctByAddr[sug.Addr] {
			_ = t
			out.Resolved++
		}
	}
	return out, nil
}

// WriteReprobe renders the before/after comparison.
func WriteReprobe(w io.Writer, r *ReprobeResult) {
	fmt.Fprintf(w, "probe suggestions: %d boundaries, %d target ASes, %d extra traces\n",
		r.Suggestions, r.TargetASes, r.ExtraTraces)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "net", "P-before", "P-after", "R-before", "R-after")
	for _, key := range NetworkKeys {
		b, a := r.Before[key], r.After[key]
		fmt.Fprintf(w, "%-6s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			NetworkLabel(key), 100*b.Precision(), 100*a.Precision(), 100*b.Recall(), 100*a.Recall())
	}
	fmt.Fprintf(w, "global: %d correct of %d inferences (%.1f%%) -> %d of %d (%.1f%%); %d of %d suggested boundaries resolved\n",
		r.GlobalBefore.Correct, r.GlobalBefore.Inferences, 100*r.GlobalBefore.Precision(),
		r.GlobalAfter.Correct, r.GlobalAfter.Inferences, 100*r.GlobalAfter.Precision(),
		r.Resolved, r.Suggestions)
}
