package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestReprobe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := env(t)
	rr, err := Reprobe(e, 0.5, 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Suggestions == 0 {
		t.Fatal("no probe suggestions in the default world")
	}
	if rr.TargetASes == 0 || rr.ExtraTraces == 0 {
		t.Fatalf("no targeted probing happened: %+v", rr)
	}
	// Re-probing must never hurt the verified networks.
	for _, key := range NetworkKeys {
		b, a := rr.Before[key], rr.After[key]
		if a.Recall() < b.Recall()-1e-9 {
			t.Errorf("%s: recall degraded %.3f -> %.3f", key, b.Recall(), a.Recall())
		}
	}
	// Globally it must gain correct inferences without collapsing
	// precision.
	if rr.GlobalAfter.Correct < rr.GlobalBefore.Correct {
		t.Errorf("global correct count fell: %d -> %d",
			rr.GlobalBefore.Correct, rr.GlobalAfter.Correct)
	}
	if rr.GlobalAfter.Precision() < rr.GlobalBefore.Precision()-0.02 {
		t.Errorf("global precision fell: %.3f -> %.3f",
			rr.GlobalBefore.Precision(), rr.GlobalAfter.Precision())
	}
	if rr.Resolved == 0 {
		t.Error("no suggested boundaries resolved")
	}
	t.Logf("suggestions=%d targets=%d extra=%d resolved=%d global %d/%d -> %d/%d",
		rr.Suggestions, rr.TargetASes, rr.ExtraTraces, rr.Resolved,
		rr.GlobalBefore.Correct, rr.GlobalBefore.Inferences,
		rr.GlobalAfter.Correct, rr.GlobalAfter.Inferences)

	var buf bytes.Buffer
	WriteReprobe(&buf, rr)
	if !strings.Contains(buf.String(), "suggested boundaries resolved") {
		t.Error("rendering incomplete")
	}
}

func TestGlobalScoreMath(t *testing.T) {
	g := GlobalScore{Inferences: 10, Correct: 9}
	if g.Precision() != 0.9 {
		t.Errorf("precision = %v", g.Precision())
	}
	var empty GlobalScore
	if empty.Precision() != 1 {
		t.Error("empty score should be perfect")
	}
}
