package eval

import (
	"bytes"
	"strings"
	"testing"
)

// TestCrossSeedStability guards against tuning the algorithm (or the
// simulator) to a single lucky topology: the headline quality bounds
// must hold on worlds never used during development of either.
func TestCrossSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seeds := []int64{11, 23, 57}
	summaries, err := MultiSeed(DefaultEnvConfig(), seeds, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range NetworkKeys {
		s := summaries[key]
		if len(s.PerSeed) != len(seeds) {
			t.Fatalf("%s: %d seeds scored", key, len(s.PerSeed))
		}
		if p := s.MeanPrecision(); p < 0.85 {
			t.Errorf("%s: mean precision %.3f < 0.85", key, p)
		}
		if r := s.MeanRecall(); r < 0.85 {
			t.Errorf("%s: mean recall %.3f < 0.85", key, r)
		}
		if p := s.MinPrecision(); p < 0.75 {
			t.Errorf("%s: worst-seed precision %.3f < 0.75", key, p)
		}
		t.Logf("%s: meanP=%.1f%% minP=%.1f%% meanR=%.1f%% minR=%.1f%%", s.Network,
			100*s.MeanPrecision(), 100*s.MinPrecision(), 100*s.MeanRecall(), 100*s.MinRecall())
	}
	var buf bytes.Buffer
	WriteMultiSeed(&buf, summaries, seeds)
	if !strings.Contains(buf.String(), "meanP%") {
		t.Error("rendering incomplete")
	}
}

func TestSeedSummaryMath(t *testing.T) {
	s := SeedSummary{PerSeed: []Metrics{
		{TP: 9, FP: 1},        // P=0.9 R=1
		{TP: 8, FP: 2, FN: 2}, // P=0.8 R=0.8
	}}
	if p := s.MeanPrecision(); p < 0.849 || p > 0.851 {
		t.Errorf("mean precision = %v", p)
	}
	if p := s.MinPrecision(); p != 0.8 {
		t.Errorf("min precision = %v", p)
	}
	if r := s.MinRecall(); r != 0.8 {
		t.Errorf("min recall = %v", r)
	}
	var empty SeedSummary
	if empty.MeanPrecision() != 0 || empty.MinPrecision() != 1 {
		t.Error("empty summary math")
	}
}
