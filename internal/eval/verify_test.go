package eval

import (
	"fmt"
	"testing"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/hostnames"
	"mapit/internal/inet"
	"mapit/internal/relation"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

// findRENLink locates a point-to-point inter-AS link of the REN in a
// small world, plus the far-side AS, for hand-built scoring tests.
func findRENLink(t *testing.T, w *topo.World) (*topo.Link, *topo.AS) {
	t.Helper()
	ren := w.Special[topo.SpecialREN]
	for _, l := range w.Links {
		if l.Kind != topo.InterLink {
			continue
		}
		if l.A.Router.AS == ren && !w.Orgs.SameOrg(l.B.Router.AS.ASN, ren.ASN) {
			return l, l.B.Router.AS
		}
		if l.B.Router.AS == ren && !w.Orgs.SameOrg(l.A.Router.AS.ASN, ren.ASN) {
			return l, l.A.Router.AS
		}
	}
	t.Fatal("no REN inter-AS link found")
	return nil, nil
}

func TestExactVerifierManual(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	ren := w.Special[topo.SpecialREN]
	link, far := findRENLink(t, w)

	// A dataset containing just the link's two addresses so the link is
	// seen; an address of the far AS adjacent keeps it qualified.
	farAddr := far.HostAddr(1)
	ds := &trace.Dataset{Traces: []trace.Trace{
		trace.NewTrace("m", farAddr, link.A.Addr, link.B.Addr, farAddr),
	}}
	s := ds.Sanitize()
	v := NewExactVerifier(w, ren, s, w.Rels)

	correct := core.Inference{
		Addr:      link.A.Addr,
		Local:     link.A.Router.AS.ASN,
		Connected: link.B.Router.AS.ASN,
	}
	wrongPair := correct
	wrongPair.Connected = 424242

	b := v.Score([]core.Inference{correct})
	if b.Total.TP != 1 || b.Total.FP != 0 {
		t.Fatalf("correct inference scored %s", b.Total)
	}
	b = v.Score([]core.Inference{wrongPair})
	if b.Total.TP != 0 || b.Total.FP != 1 {
		t.Fatalf("wrong pair scored %s", b.Total)
	}
	// Uncertain inferences are not scored.
	unc := correct
	unc.Uncertain = true
	b = v.Score([]core.Inference{unc})
	if b.Total.TP != 0 {
		t.Fatalf("uncertain inference scored %s", b.Total)
	}
	// An inference involving the REN on a non-interface address is an
	// error (the Internet2 rule).
	ghost := core.Inference{Addr: ip("203.0.112.1"), Local: ren.ASN, Connected: far.ASN}
	b = v.Score([]core.Inference{ghost})
	if b.Total.FP != 1 {
		t.Fatalf("ghost inference scored %s", b.Total)
	}
	// Inferences not involving the target and outside its dataset are
	// ignored entirely.
	other := core.Inference{Addr: ip("203.0.112.1"), Local: 424242, Connected: 424243}
	b = v.Score([]core.Inference{other})
	if b.Total.FP != 0 {
		t.Fatalf("out-of-scope inference scored %s", b.Total)
	}
	// No inferences: the qualified link becomes a FN.
	b = v.Score(nil)
	if b.Total.FN < 1 {
		t.Fatalf("missing inference not counted: %s", b.Total)
	}
	if v.QualifiedLinks() < 1 {
		t.Error("link should be qualified")
	}
}

func TestExactVerifierSiblingTolerance(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	ren := w.Special[topo.SpecialREN]
	link, far := findRENLink(t, w)
	// Find a sibling of the far AS, if any; otherwise plant one.
	w.Orgs.AddSiblingPair(far.ASN, 65000)
	ds := &trace.Dataset{Traces: []trace.Trace{
		trace.NewTrace("m", far.HostAddr(1), link.A.Addr, link.B.Addr, far.HostAddr(1)),
	}}
	v := NewExactVerifier(w, ren, ds.Sanitize(), w.Rels)
	// Claiming the sibling instead of the true AS still counts (§5.2:
	// "the ASes, or their sibling ASes, involved").
	inf := core.Inference{
		Addr:      link.A.Addr,
		Local:     link.A.Router.AS.ASN,
		Connected: 65000,
	}
	if link.A.Router.AS != ren {
		inf.Local = 65000
		inf.Connected = link.A.Router.AS.ASN
		// The sibling substitution must be on the far side.
		if w.Orgs.SameOrg(link.A.Router.AS.ASN, far.ASN) {
			inf = core.Inference{Addr: link.A.Addr, Local: 65000, Connected: ren.ASN}
		}
	}
	b := v.Score([]core.Inference{inf})
	if b.Total.TP != 1 || b.Total.FP != 0 {
		t.Fatalf("sibling claim scored %s", b.Total)
	}
}

func TestApproxVerifierManual(t *testing.T) {
	// Target AS1299 with one external interface (to AS174), its other
	// side, and one internal pair.
	ext := ip("62.115.0.1")   // on AS1299's router, /30 other side .2
	extOS := ip("62.115.0.2") // far side, on AS174's router
	internal := ip("62.115.9.1")

	records := []hostnames.Record{
		{Addr: ext, Name: "as174-ic-1.br1.as1299.sim"},
		{Addr: extOS, Name: "as1299-ic-9.br4.as174.sim"},
		{Addr: internal, Name: "ae-1-1.cr1.as1299.sim"},
	}
	// Traces: the link is observed, with an AS174 address adjacent.
	ds := &trace.Dataset{Traces: []trace.Trace{
		trace.NewTrace("m", ip("154.0.0.9"), internal, ext, extOS, ip("154.0.0.9")),
	}}
	s := ds.Sanitize()
	tbl := bgp.EmptyTable()
	tbl.Add(inet.MustParsePrefix("62.115.0.0/16"), 1299)
	tbl.Add(inet.MustParsePrefix("154.0.0.0/8"), 174)
	orgs := as2org.New()
	rels := relation.New()
	rels.AddPeering(1299, 174)

	v := NewApproxVerifier(1299, records, s, tbl, orgs, rels)
	if v.QualifiedLinks() != 1 {
		t.Fatalf("qualified = %d", v.QualifiedLinks())
	}

	correct := core.Inference{Addr: ext, Local: 1299, Connected: 174}
	b := v.Score([]core.Inference{correct})
	if b.Total.TP != 1 || b.Total.FP != 0 || b.Total.FN != 0 {
		t.Fatalf("correct scored %s", b.Total)
	}
	// The same link proven from the far side counts once.
	farClaim := core.Inference{Addr: extOS, Local: 174, Connected: 1299}
	b = v.Score([]core.Inference{correct, farClaim})
	if b.Total.TP != 1 {
		t.Fatalf("double-sided claim scored %s", b.Total)
	}
	// A wrong pair on a tagged interface is an error.
	wrong := core.Inference{Addr: ext, Local: 1299, Connected: 999}
	b = v.Score([]core.Inference{wrong})
	if b.Total.FP != 1 {
		t.Fatalf("wrong pair scored %s", b.Total)
	}
	// An inference on a verified-internal interface is an error.
	onInternal := core.Inference{Addr: internal, Local: 1299, Connected: 174}
	b = v.Score([]core.Inference{onInternal})
	if b.Total.FP != 1 {
		t.Fatalf("internal inference scored %s", b.Total)
	}
	// The adjacent-interface rule: claiming the dataset pair on the
	// next interface into the connected AS is an error.
	beyond := core.Inference{Addr: ip("154.0.0.9"), Local: 174, Connected: 1299}
	b = v.Score([]core.Inference{beyond})
	if b.Total.FP != 1 {
		t.Fatalf("adjacent-beyond inference scored %s", b.Total)
	}
	// Unverifiable inferences elsewhere are ignored.
	elsewhere := core.Inference{Addr: ip("9.9.9.9"), Local: 555, Connected: 666}
	b = v.Score([]core.Inference{elsewhere})
	if b.Total.FP != 0 {
		t.Fatalf("unverifiable inference scored %s", b.Total)
	}
	// Nothing inferred: FN.
	b = v.Score(nil)
	if b.Total.FN != 1 {
		t.Fatalf("FN not counted: %s", b.Total)
	}
}

func TestApproxVerifierStaleTag(t *testing.T) {
	// A stale tag makes even the true inference count as an error —
	// the noise source the paper accepts in §5.1.2.
	ext := ip("62.115.0.1")
	records := []hostnames.Record{
		{Addr: ext, Name: "as999-ic-1.br1.as1299.sim"}, // stale: really AS174
	}
	ds := &trace.Dataset{Traces: []trace.Trace{
		trace.NewTrace("m", ip("154.0.0.9"), ext, ip("154.0.0.9")),
	}}
	tbl := bgp.EmptyTable()
	tbl.Add(inet.MustParsePrefix("62.115.0.0/16"), 1299)
	tbl.Add(inet.MustParsePrefix("154.0.0.0/8"), 174)
	v := NewApproxVerifier(1299, records, ds.Sanitize(), tbl, as2org.New(), relation.New())
	truth := core.Inference{Addr: ext, Local: 1299, Connected: 174}
	b := v.Score([]core.Inference{truth})
	if b.Total.FP != 1 || b.Total.TP != 0 {
		t.Fatalf("stale tag should produce FP: %s", b.Total)
	}
}

func TestBuildAdjIndex(t *testing.T) {
	ds := &trace.Dataset{Traces: []trace.Trace{
		trace.NewTrace("m", ip("3.3.3.3"), ip("1.1.1.1"), ip("2.2.2.2"), ip("3.3.3.3")),
	}}
	idx := buildAdjIndex(ds.Sanitize())
	if len(idx[ip("2.2.2.2")]) != 2 {
		t.Errorf("adjacency of middle hop = %v", idx[ip("2.2.2.2")])
	}
	if len(idx[ip("1.1.1.1")]) != 1 || idx[ip("1.1.1.1")][0] != ip("2.2.2.2") {
		t.Errorf("adjacency of first hop = %v", idx[ip("1.1.1.1")])
	}
}

func TestNetworkLabel(t *testing.T) {
	for key, want := range map[string]string{
		topo.SpecialREN: "I2*", topo.SpecialT1A: "L3*", topo.SpecialT1B: "TS*", "X": "X",
	} {
		if got := NetworkLabel(key); got != want {
			t.Errorf("NetworkLabel(%s) = %s", key, got)
		}
	}
	_ = fmt.Sprintf
}
