package eval

import (
	"bytes"
	"strings"
	"testing"

	"mapit/internal/topo"
)

// sharedEnv builds one default environment for the experiment tests.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	if sharedEnv == nil {
		sharedEnv = NewEnv(DefaultEnvConfig())
	}
	return sharedEnv
}

func TestTable1Shape(t *testing.T) {
	e := env(t)
	scores, r, err := Table1(e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HighConfidence()) == 0 {
		t.Fatal("no inferences")
	}
	// The exact-ground-truth network must be near-perfect at f=0.5
	// (paper: 100% precision).
	ren := scores[topo.SpecialREN].Total
	if ren.Precision() < 0.97 {
		t.Errorf("REN precision %.3f", ren.Precision())
	}
	// Every network hits >85%% precision and >75%% recall.
	for _, key := range NetworkKeys {
		m := scores[key].Total
		if m.Precision() < 0.85 || m.Recall() < 0.75 {
			t.Errorf("%s: %s out of paper-shape bounds", key, m)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, scores)
	if !strings.Contains(buf.String(), "Stub Transit") || !strings.Contains(buf.String(), "Total") {
		t.Error("Table 1 rendering incomplete")
	}
}

func TestFig6Shape(t *testing.T) {
	e := env(t)
	series, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range NetworkKeys {
		pts := series[key]
		if len(pts) != 11 {
			t.Fatalf("%s: %d points", key, len(pts))
		}
		// Recall must collapse at high f relative to f=0.5 (paper §5.3:
		// "recall ... sharply decreases for higher values").
		if pts[10].Recall >= pts[5].Recall {
			t.Errorf("%s: recall at f=1 (%.3f) not below f=0.5 (%.3f)",
				key, pts[10].Recall, pts[5].Recall)
		}
		// Precision at moderate f must not be worse than at f=0
		// by more than noise (paper: improves or holds).
		if pts[5].Precision < pts[0].Precision-0.05 {
			t.Errorf("%s: precision degrades from f=0 (%.3f) to f=0.5 (%.3f)",
				key, pts[0].Precision, pts[5].Precision)
		}
	}
	var buf bytes.Buffer
	WriteFig6(&buf, series)
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 12 {
		t.Error("Fig 6 rendering incomplete")
	}
}

func TestFig7Shape(t *testing.T) {
	e := env(t)
	stages, err := Fig7(e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 6 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Stage != "direct" || stages[len(stages)-1].Stage != "stub-heuristic" {
		t.Errorf("stage order: first=%s last=%s", stages[0].Stage, stages[len(stages)-1].Stage)
	}
	first := stages[0]
	last := stages[len(stages)-1]
	for _, key := range NetworkKeys {
		// Refinement must not hurt precision, and the stub heuristic
		// must lift recall for the Tier 1s (paper §5.5).
		if last.ByNetwork[key].Precision() < first.ByNetwork[key].Precision()-1e-9 {
			t.Errorf("%s: final precision below initial", key)
		}
	}
	beforeStub := stages[len(stages)-2]
	gained := false
	for _, key := range []string{topo.SpecialT1A, topo.SpecialT1B} {
		if last.ByNetwork[key].Recall() > beforeStub.ByNetwork[key].Recall() {
			gained = true
		}
	}
	if !gained {
		t.Error("stub heuristic did not improve Tier 1 recall")
	}
	var buf bytes.Buffer
	WriteFig7(&buf, stages)
	if !strings.Contains(buf.String(), "add-converged") {
		t.Error("Fig 7 rendering incomplete")
	}
}

func TestFig8Shape(t *testing.T) {
	e := env(t)
	cmp, err := Fig8(e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range Fig8Methods {
		if _, ok := cmp[method]; !ok {
			t.Fatalf("method %s missing", method)
		}
	}
	// MAP-IT must dominate every baseline on precision for every
	// network, by a wide margin on the exact-ground-truth network
	// (paper: 52.2%% best baseline vs 100%% for I2).
	for _, key := range NetworkKeys {
		mapit := cmp["MAP-IT"][key]
		for _, method := range Fig8Methods[:4] {
			b := cmp[method][key]
			if b.Precision() >= mapit.Precision() {
				t.Errorf("%s: %s precision %.3f >= MAP-IT %.3f",
					key, method, b.Precision(), mapit.Precision())
			}
		}
		best := 0.0
		for _, method := range Fig8Methods[:4] {
			if p := cmp[method][key].Precision(); p > best {
				best = p
			}
		}
		if key == topo.SpecialREN && best > mapit.Precision()/1.4 {
			t.Errorf("REN: best baseline %.3f too close to MAP-IT %.3f", best, mapit.Precision())
		}
	}
	var buf bytes.Buffer
	WriteFig8(&buf, cmp)
	if !strings.Contains(buf.String(), "ITDK-MIDAR") {
		t.Error("Fig 8 rendering incomplete")
	}
}

func TestStats(t *testing.T) {
	e := env(t)
	r, err := e.Run(e.Config(0.5))
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(e, r)
	if s.TotalTraces == 0 || s.DistinctAddrs == 0 {
		t.Fatal("empty stats")
	}
	if s.RetainedTraceFrac < 0.95 || s.RetainedTraceFrac > 1 {
		t.Errorf("retained trace frac %.3f", s.RetainedTraceFrac)
	}
	if s.IP2ASCoverage < 0.9 {
		t.Errorf("IP2AS coverage %.3f", s.IP2ASCoverage)
	}
	if s.Slash31Frac < 0.3 || s.Slash31Frac > 0.6 {
		t.Errorf("/31 frac %.3f vs paper 0.404", s.Slash31Frac)
	}
	var buf bytes.Buffer
	WriteStats(&buf, s)
	if !strings.Contains(buf.String(), "40.4%") {
		t.Error("stats rendering incomplete")
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 9, FP: 1, FN: 3}
	if p := m.Precision(); p != 0.9 {
		t.Errorf("precision = %v", p)
	}
	if r := m.Recall(); r != 0.75 {
		t.Errorf("recall = %v", r)
	}
	if f := m.F1(); f < 0.81 || f > 0.82 {
		t.Errorf("f1 = %v", f)
	}
	var zero Metrics
	if zero.Precision() != 1 || zero.Recall() != 1 || zero.F1() != 1 {
		t.Error("empty metrics should be perfect (no evidence of error)")
	}
	m2 := Metrics{TP: 1}
	m2.Add(m)
	if m2.TP != 10 || m2.FP != 1 || m2.FN != 3 {
		t.Errorf("Add = %+v", m2)
	}
	if !strings.Contains(m.String(), "TP=9") {
		t.Error("Metrics.String")
	}
	b := NewBreakdown()
	b.add(Classes[0], Metrics{TP: 2})
	b.add(Classes[1], Metrics{FP: 1})
	if b.Total.TP != 2 || b.Total.FP != 1 {
		t.Errorf("breakdown total = %+v", b.Total)
	}
}

func TestBdrmapComparison(t *testing.T) {
	e := env(t)
	bc, err := Bdrmap(e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bc.BdrmapClaims == 0 {
		t.Fatal("no bdrmap claims")
	}
	// The structural result from §2: MAP-IT covers far more than the
	// monitor network's own borders, at better precision on it.
	if bc.MAPITInferences <= bc.BdrmapClaims {
		t.Errorf("MAP-IT output (%d) not larger than bdrmap's (%d)",
			bc.MAPITInferences, bc.BdrmapClaims)
	}
	if bc.MAPIT.Precision() < bc.Bdrmap.Precision() {
		t.Errorf("MAP-IT precision %.3f below bdrmap-lite %.3f",
			bc.MAPIT.Precision(), bc.Bdrmap.Precision())
	}
	var buf bytes.Buffer
	WriteBdrmap(&buf, bc)
	if !strings.Contains(buf.String(), "bdrmap-lite") {
		t.Error("rendering incomplete")
	}
}
