package eval

import (
	"testing"

	"mapit/internal/topo"
)

// TestPipelineSmall exercises the full pipeline on the fast world.
func TestPipelineSmall(t *testing.T) {
	e := NewEnv(SmallEnvConfig())
	r, err := e.Run(e.Config(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HighConfidence()) == 0 {
		t.Fatal("no inferences on small world")
	}
	scores := e.ScoreAll(r.Inferences)
	for key, b := range scores {
		if b.Total.TP == 0 {
			t.Errorf("%s: no true positives", key)
		}
	}
}

// TestPipelinePaperShape checks that the standard environment reproduces
// the paper's headline result shape (§5.4 Table 1): near-perfect
// precision on the exact-ground-truth R&E network and >85% precision
// with high-but-lower recall on the DNS-verified Tier 1s.
func TestPipelinePaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := NewEnv(DefaultEnvConfig())
	r, err := e.Run(e.Config(0.5))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		key        string
		minP, minR float64
	}{
		{topo.SpecialREN, 0.97, 0.90},
		{topo.SpecialT1A, 0.85, 0.75},
		{topo.SpecialT1B, 0.85, 0.70},
	}
	for _, c := range checks {
		b := e.Verifiers[c.key].Score(r.Inferences)
		t.Logf("%s: %s (qualified=%d)", c.key, b.Total.String(), e.Verifiers[c.key].QualifiedLinks())
		if p := b.Total.Precision(); p < c.minP {
			t.Errorf("%s precision %.3f < %.3f", c.key, p, c.minP)
		}
		if rec := b.Total.Recall(); rec < c.minR {
			t.Errorf("%s recall %.3f < %.3f", c.key, rec, c.minR)
		}
		if b.Total.TP < 10 {
			t.Errorf("%s too few TPs (%d) for a meaningful comparison", c.key, b.Total.TP)
		}
	}
	// Dataset statistics in the vicinity of the paper's (§4.1, §4.2).
	if f := e.Sanitized.Stats.RetainedTraceFraction(); f < 0.95 {
		t.Errorf("retained trace fraction %.3f", f)
	}
	if f := r.Diag.Slash31Fraction; f < 0.3 || f > 0.6 {
		t.Errorf("slash31 fraction %.3f outside [0.3, 0.6]", f)
	}
	if r.Diag.Iterations < 2 || r.Diag.Iterations > 10 {
		t.Errorf("iterations = %d; paper converges in ~3", r.Diag.Iterations)
	}
}
