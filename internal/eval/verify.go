package eval

import (
	"slices"

	"mapit/internal/as2org"
	"mapit/internal/core"
	"mapit/internal/hostnames"
	"mapit/internal/inet"
	"mapit/internal/relation"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// Verifier scores an inference set against one target network's ground
// truth. ExactVerifier and ApproxVerifier implement it.
type Verifier interface {
	// Score evaluates the inferences per §5.2.
	Score(infs []core.Inference) *Breakdown
	// QualifiedLinks returns how many target links count toward recall.
	QualifiedLinks() int
}

// linkRec is one ground-truth inter-AS link involving the target.
type linkRec struct {
	id        int
	addrs     []inet.Addr // endpoint addresses present in the truth
	pair      [2]inet.ASN // canonical orgs of the two ends
	reprASNs  [2]inet.ASN // representative concrete ASNs (for Classify)
	qualified bool
	class     relation.LinkClass
}

// adjIndex maps an address to the unique addresses seen adjacent to it
// (either direction) in the sanitised traces.
type adjIndex map[inet.Addr][]inet.Addr

func buildAdjIndex(s *trace.Sanitized) adjIndex {
	idx := make(adjIndex)
	add := func(a, b inet.Addr) {
		for _, x := range idx[a] {
			if x == b {
				return
			}
		}
		idx[a] = append(idx[a], b)
	}
	for _, adj := range s.Adjacencies() {
		add(adj.First, adj.Second)
		add(adj.Second, adj.First)
	}
	return idx
}

func pairMatch(p [2]inet.ASN, a, b inet.ASN) bool {
	return (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a)
}

// classify buckets a claimed AS pair per Table 1 (§5.4); zero endpoints
// count as "not in the relationship dataset" → Stub Transit.
func classify(rels *relation.Dataset, orgs *as2org.Orgs, a, b inet.ASN) relation.LinkClass {
	if a.IsZero() || b.IsZero() {
		return relation.StubTransit
	}
	return rels.Classify(a, b, orgs)
}

// ExactVerifier scores against complete per-interface ground truth — the
// Internet2 mode of §5.1.1: every interface of the target is known, so
// inferences involving the target on interfaces outside the dataset are
// errors too.
type ExactVerifier struct {
	target inet.ASN // canonical org
	orgs   *as2org.Orgs
	rels   *relation.Dataset
	truth  map[inet.Addr]topo.IfaceTruth
	// universe marks addresses belonging to the target's ground truth
	// (its interfaces and the far sides of its links).
	universe    map[inet.Addr]bool
	links       []*linkRec
	linksByAddr map[inet.Addr][]*linkRec

	// Debug, when set, is invoked for every in-scope inference with its
	// correctness verdict (diagnostics only).
	Debug func(inf core.Inference, correct bool)
}

// NewExactVerifier builds the Internet2-style verifier for target from
// the world's ground truth and the sanitised trace dataset (needed for
// the §5.2 inferability qualification). rels is the (public) relationship
// dataset used for the Table 1 breakdown.
func NewExactVerifier(w *topo.World, target *topo.AS, s *trace.Sanitized, rels *relation.Dataset) *ExactVerifier {
	orgs := w.Orgs
	v := &ExactVerifier{
		target:      orgs.Canonical(target.ASN),
		orgs:        orgs,
		rels:        rels,
		truth:       w.Truth(),
		universe:    make(map[inet.Addr]bool),
		linksByAddr: make(map[inet.Addr][]*linkRec),
	}
	adj := buildAdjIndex(s)
	spaceOrg := func(a inet.Addr) inet.ASN {
		if i, ok := w.Ifaces[a]; ok {
			return orgs.Canonical(i.SpaceAS)
		}
		if as := w.ASOf(a); as != nil {
			return orgs.Canonical(as.ASN)
		}
		return 0
	}
	adjacentHasOrg := func(a inet.Addr, org inet.ASN) bool {
		for _, n := range adj[a] {
			if spaceOrg(n) == org {
				return true
			}
		}
		return false
	}

	for addr, t := range v.truth {
		if t.IXP {
			continue // exchange-fabric interfaces are excluded (§5.1.2)
		}
		if orgs.Canonical(t.RouterAS) == v.target {
			v.universe[addr] = true
			continue
		}
		for _, c := range t.ConnectedASes {
			if orgs.Canonical(c) == v.target {
				v.universe[addr] = true
				break
			}
		}
	}

	for _, l := range w.Links {
		if l.Kind != topo.InterLink {
			// Intra links are internal; IXP fabric links are excluded
			// from verification, as in the paper's dataset cleaning.
			continue
		}
		orgA := orgs.Canonical(l.A.Router.AS.ASN)
		orgB := orgs.Canonical(l.B.Router.AS.ASN)
		if orgA == orgB {
			continue // sibling interconnection: not an inter-AS link at the org level
		}
		if orgA != v.target && orgB != v.target {
			continue
		}
		farIface, nearIface := l.B, l.A
		if orgB == v.target {
			farIface, nearIface = l.A, l.B
		}
		farOrg := orgs.Canonical(farIface.Router.AS.ASN)
		rec := &linkRec{
			id:       len(v.links),
			addrs:    []inet.Addr{l.A.Addr, l.B.Addr},
			pair:     [2]inet.ASN{orgs.Canonical(nearIface.Router.AS.ASN), farOrg},
			reprASNs: [2]inet.ASN{nearIface.Router.AS.ASN, farIface.Router.AS.ASN},
		}
		rec.class = classify(rels, orgs, rec.reprASNs[0], rec.reprASNs[1])
		seen := s.AllAddrs.Contains(l.A.Addr) || s.AllAddrs.Contains(l.B.Addr)
		prefixFromFar := l.PrefixOwner != nil && orgs.Canonical(l.PrefixOwner.ASN) == farOrg
		rec.qualified = seen && (prefixFromFar ||
			adjacentHasOrg(l.A.Addr, farOrg) || adjacentHasOrg(l.B.Addr, farOrg))
		v.links = append(v.links, rec)
		v.linksByAddr[l.A.Addr] = append(v.linksByAddr[l.A.Addr], rec)
		v.linksByAddr[l.B.Addr] = append(v.linksByAddr[l.B.Addr], rec)
	}
	return v
}

// QualifiedLinks implements Verifier.
func (v *ExactVerifier) QualifiedLinks() int {
	n := 0
	for _, l := range v.links {
		if l.qualified {
			n++
		}
	}
	return n
}

// Score implements Verifier: §5.2 with the Internet2 extensions — any
// inference involving the target on an interface outside its dataset is
// an error, as are inferences on its internal interfaces and inferences
// naming the wrong AS pair.
func (v *ExactVerifier) Score(infs []core.Inference) *Breakdown {
	b := NewBreakdown()
	covered := make(map[int]bool)
	fpSeen := make(map[inet.Addr]bool)
	for _, inf := range infs {
		if inf.Uncertain {
			continue
		}
		cl := inet.ASN(0)
		if !inf.Local.IsZero() {
			cl = v.orgs.Canonical(inf.Local)
		}
		cc := inet.ASN(0)
		if !inf.Connected.IsZero() {
			cc = v.orgs.Canonical(inf.Connected)
		}
		involves := cl == v.target || cc == v.target
		inUniverse := v.universe[inf.Addr]
		if !involves && !inUniverse {
			continue
		}
		t, inTruth := v.truth[inf.Addr]
		if inTruth && t.IXP {
			continue // fabric interfaces are outside the verification set
		}
		correct := false
		if inTruth && t.InterAS && !cl.IsZero() && !cc.IsZero() {
			routerOrg := v.orgs.Canonical(t.RouterAS)
			for _, c := range t.ConnectedASes {
				if pairMatch([2]inet.ASN{routerOrg, v.orgs.Canonical(c)}, cl, cc) {
					correct = true
					break
				}
			}
		}
		if v.Debug != nil {
			v.Debug(inf, correct)
		}
		if correct {
			for _, rec := range v.linksByAddr[inf.Addr] {
				if pairMatch(rec.pair, cl, cc) {
					covered[rec.id] = true
				}
			}
			continue
		}
		if fpSeen[inf.Addr] {
			continue
		}
		fpSeen[inf.Addr] = true
		b.add(classify(v.rels, v.orgs, inf.Local, inf.Connected), Metrics{FP: 1})
	}
	for _, rec := range v.links {
		switch {
		case covered[rec.id]:
			b.add(rec.class, Metrics{TP: 1})
		case rec.qualified:
			b.add(rec.class, Metrics{FN: 1})
		}
	}
	return b
}

// ApproxVerifier scores against DNS-hostname-derived approximate ground
// truth — the Level 3 / TeliaSonera mode of §5.1.2. Only interfaces with
// interpretable hostnames are verifiable; inferences involving the target
// on an interface adjacent to a dataset link and numbered from the
// connected AS count as errors (§5.2).
type ApproxVerifier struct {
	target    inet.ASN
	orgs      *as2org.Orgs
	rels      *relation.Dataset
	ip2as     core.IP2AS
	tag       map[inet.Addr]inet.ASN // external iface -> tagged far AS
	owner     map[inet.Addr]inet.ASN // external iface -> operator (from domain)
	internal  map[inet.Addr]bool
	adj       adjIndex
	links     []*linkRec
	byAddr    map[inet.Addr][]*linkRec
	otherSide map[inet.Addr]inet.Addr
}

// NewApproxVerifier builds the DNS-mode verifier for target from
// generated hostname records.
func NewApproxVerifier(target inet.ASN, records []hostnames.Record, s *trace.Sanitized,
	ip2as core.IP2AS, orgs *as2org.Orgs, rels *relation.Dataset) *ApproxVerifier {

	// The verifier resolves every tagged interface during construction
	// and again per scored inference; memoise so each address costs one
	// trie (or compiled-table) descent for the verifier's lifetime.
	ip2as = core.MemoIP2AS(ip2as)

	otherSides := make(map[inet.Addr]inet.Addr, len(s.AllAddrs))
	for a := range s.AllAddrs {
		otherSides[a] = inet.InferOtherSide(a, s.AllAddrs).Other
	}
	ds := hostnames.BuildDataset(records, otherSides)

	v := &ApproxVerifier{
		target:    orgs.Canonical(target),
		orgs:      orgs,
		rels:      rels,
		ip2as:     ip2as,
		tag:       ds.ExternalIf,
		owner:     make(map[inet.Addr]inet.ASN),
		internal:  ds.InternalIf,
		adj:       buildAdjIndex(s),
		byAddr:    make(map[inet.Addr][]*linkRec),
		otherSide: otherSides,
	}
	for _, r := range records {
		if o, ok := hostnames.ParseOwner(r.Name); ok {
			v.owner[r.Addr] = o
		}
	}

	spaceOrg := func(a inet.Addr) inet.ASN {
		asn, ok := ip2as.Lookup(a)
		if !ok {
			return 0
		}
		return orgs.Canonical(asn)
	}

	// One link per external interface pair (the interface and, when also
	// tagged, its inferred other side).
	addrs := make([]inet.Addr, 0, len(v.tag))
	for a := range v.tag {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	linkOf := make(map[inet.Addr]*linkRec)
	for _, a := range addrs {
		if linkOf[a] != nil {
			continue
		}
		farASN := v.tag[a]
		ownerASN := v.owner[a]
		rec := &linkRec{
			id:       len(v.links),
			addrs:    []inet.Addr{a},
			pair:     [2]inet.ASN{orgs.Canonical(ownerASN), orgs.Canonical(farASN)},
			reprASNs: [2]inet.ASN{ownerASN, farASN},
		}
		if os, ok := v.otherSide[a]; ok {
			if _, tagged := v.tag[os]; tagged {
				rec.addrs = append(rec.addrs, os)
				linkOf[os] = rec
			}
		}
		linkOf[a] = rec
		rec.class = classify(rels, orgs, rec.reprASNs[0], rec.reprASNs[1])
		// The §5.2 inferability qualification is relative to the target
		// network: the "connected AS" is the far side of the link from
		// the target, and the link only counts toward recall when it is
		// numbered from that AS's space or an address of that AS was
		// seen adjacent.
		farOrg := orgs.Canonical(farASN)
		if farOrg == v.target {
			farOrg = orgs.Canonical(ownerASN)
		}
		evidence := false
		observed := false
		for _, e := range rec.addrs {
			if s.AllAddrs.Contains(e) {
				observed = true
			}
			if os, ok := v.otherSide[e]; ok && s.AllAddrs.Contains(os) {
				observed = true
			}
			if spaceOrg(e) == farOrg {
				evidence = true // link numbered from the connected AS
			}
			for _, n := range v.adj[e] {
				if spaceOrg(n) == farOrg {
					evidence = true
				}
			}
		}
		// §5.2: the interface or its other side must appear in the
		// traceroute dataset, and the connected AS must be visible via
		// the link prefix or an adjacent address.
		rec.qualified = observed && evidence
		v.links = append(v.links, rec)
		for _, e := range rec.addrs {
			v.byAddr[e] = append(v.byAddr[e], rec)
		}
	}
	return v
}

// QualifiedLinks implements Verifier.
func (v *ApproxVerifier) QualifiedLinks() int {
	n := 0
	for _, l := range v.links {
		if l.qualified {
			n++
		}
	}
	return n
}

// Score implements Verifier.
func (v *ApproxVerifier) Score(infs []core.Inference) *Breakdown {
	b := NewBreakdown()
	covered := make(map[int]bool)
	fpSeen := make(map[inet.Addr]bool)
	spaceOrg := func(a inet.Addr) inet.ASN {
		asn, ok := v.ip2as.Lookup(a)
		if !ok {
			return 0
		}
		return v.orgs.Canonical(asn)
	}
	markFP := func(inf core.Inference) {
		if fpSeen[inf.Addr] {
			return
		}
		fpSeen[inf.Addr] = true
		b.add(classify(v.rels, v.orgs, inf.Local, inf.Connected), Metrics{FP: 1})
	}
	for _, inf := range infs {
		if inf.Uncertain {
			continue
		}
		cl := inet.ASN(0)
		if !inf.Local.IsZero() {
			cl = v.orgs.Canonical(inf.Local)
		}
		cc := inet.ASN(0)
		if !inf.Connected.IsZero() {
			cc = v.orgs.Canonical(inf.Connected)
		}
		if tagged, ok := v.tag[inf.Addr]; ok {
			ownerOrg := v.orgs.Canonical(v.owner[inf.Addr])
			tagOrg := v.orgs.Canonical(tagged)
			if !cl.IsZero() && !cc.IsZero() && pairMatch([2]inet.ASN{ownerOrg, tagOrg}, cl, cc) {
				for _, rec := range v.byAddr[inf.Addr] {
					covered[rec.id] = true
				}
			} else if cl == v.target || cc == v.target || ownerOrg == v.target {
				markFP(inf)
			}
			continue
		}
		if v.internal[inf.Addr] {
			markFP(inf) // inference on a hostname-verified internal interface
			continue
		}
		// The paper verifies dataset interfaces "along with their
		// inferred other side": a matching inference on the far side of
		// a tagged interface's link proves the link too.
		if os, ok := v.otherSide[inf.Addr]; ok {
			if tagged, isTagged := v.tag[os]; isTagged {
				ownerOrg := v.orgs.Canonical(v.owner[os])
				tagOrg := v.orgs.Canonical(tagged)
				if !cl.IsZero() && !cc.IsZero() && pairMatch([2]inet.ASN{ownerOrg, tagOrg}, cl, cc) {
					for _, rec := range v.byAddr[os] {
						covered[rec.id] = true
					}
					continue
				}
			}
		}
		// Adjacent-interface error rule: an inference claiming a dataset
		// link's AS pair, made on an interface beyond the link in the
		// connected AS's space.
		if cl != v.target && cc != v.target {
			continue
		}
		far := cl
		if cl == v.target {
			far = cc
		}
		if far.IsZero() || spaceOrg(inf.Addr) != far {
			continue
		}
		for _, n := range v.adj[inf.Addr] {
			tagged, ok := v.tag[n]
			if !ok {
				continue
			}
			pair := [2]inet.ASN{v.orgs.Canonical(v.owner[n]), v.orgs.Canonical(tagged)}
			if pairMatch(pair, cl, cc) {
				markFP(inf)
				break
			}
		}
	}
	for _, rec := range v.links {
		switch {
		case covered[rec.id]:
			b.add(rec.class, Metrics{TP: 1})
		case rec.qualified:
			b.add(rec.class, Metrics{FN: 1})
		}
	}
	return b
}
