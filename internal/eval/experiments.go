package eval

import (
	"cmp"
	"fmt"
	"io"
	"slices"

	"mapit/internal/baseline"
	"mapit/internal/core"
	"mapit/internal/topo"
)

// NetworkKeys is the presentation order of the evaluation networks,
// mirroring the paper's I2 / L3 / TS columns.
var NetworkKeys = []string{topo.SpecialREN, topo.SpecialT1A, topo.SpecialT1B}

// NetworkLabel maps the internal network keys to the labels used in the
// paper's tables.
func NetworkLabel(key string) string {
	switch key {
	case topo.SpecialREN:
		return "I2*"
	case topo.SpecialT1A:
		return "L3*"
	case topo.SpecialT1B:
		return "TS*"
	}
	return key
}

// Table1 reproduces Table 1: MAP-IT at f=0.5, TP/FP/FN + precision and
// recall broken down by the relationship between the linked ASes, for
// each evaluation network.
func Table1(e *Env, f float64) (map[string]*Breakdown, *core.Result, error) {
	r, err := e.Run(e.Config(f))
	if err != nil {
		return nil, nil, err
	}
	return e.ScoreAll(r.Inferences), r, nil
}

// WriteTable1 renders a Table 1 style text table.
func WriteTable1(w io.Writer, scores map[string]*Breakdown) {
	fmt.Fprintf(w, "%-14s %-4s %6s %6s %6s %11s %8s\n",
		"class", "net", "TP", "FP", "FN", "Precision%", "Recall%")
	row := func(class, net string, m Metrics) {
		fmt.Fprintf(w, "%-14s %-4s %6d %6d %6d %11.1f %8.1f\n",
			class, net, m.TP, m.FP, m.FN, 100*m.Precision(), 100*m.Recall())
	}
	for _, class := range Classes {
		for _, key := range NetworkKeys {
			row(class.String(), NetworkLabel(key), scores[key].ByClass[class])
		}
	}
	for _, key := range NetworkKeys {
		row("Total", NetworkLabel(key), scores[key].Total)
	}
}

// FPoint is one point of the Fig 6 sweep.
type FPoint struct {
	F         float64
	Precision float64
	Recall    float64
}

// Fig6 reproduces Figure 6: precision and recall per network for
// f ∈ {0, 0.1, …, 1}.
func Fig6(e *Env) (map[string][]FPoint, error) {
	out := make(map[string][]FPoint)
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		r, err := e.Run(e.Config(f))
		if err != nil {
			return nil, err
		}
		for key, v := range e.Verifiers {
			b := v.Score(r.Inferences)
			out[key] = append(out[key], FPoint{F: f, Precision: b.Total.Precision(), Recall: b.Total.Recall()})
		}
	}
	for key := range out {
		slices.SortFunc(out[key], func(a, b FPoint) int { return cmp.Compare(a.F, b.F) })
	}
	return out, nil
}

// WriteFig6 renders the Fig 6 series.
func WriteFig6(w io.Writer, series map[string][]FPoint) {
	fmt.Fprintf(w, "%4s", "f")
	for _, key := range NetworkKeys {
		fmt.Fprintf(w, "  %6s-P %6s-R", NetworkLabel(key), NetworkLabel(key))
	}
	fmt.Fprintln(w)
	if len(series[NetworkKeys[0]]) == 0 {
		return
	}
	for i := range series[NetworkKeys[0]] {
		fmt.Fprintf(w, "%4.1f", series[NetworkKeys[0]][i].F)
		for _, key := range NetworkKeys {
			p := series[key][i]
			fmt.Fprintf(w, "  %8.1f %8.1f", 100*p.Precision, 100*p.Recall)
		}
		fmt.Fprintln(w)
	}
}

// StageResult is one Fig 7 snapshot: metrics per network after a named
// algorithm stage.
type StageResult struct {
	Stage     string
	ByNetwork map[string]Metrics
}

// Fig7 reproduces Figure 7: the impact of each step — snapshots after
// the initial direct pass, the point-to-point fix, the inverse fix, add
// convergence, each iteration, and the stub heuristic.
func Fig7(e *Env, f float64) ([]StageResult, error) {
	var stages []StageResult
	snapshot := func(name string, r *core.Result) {
		sr := StageResult{Stage: name, ByNetwork: make(map[string]Metrics)}
		for key, v := range e.Verifiers {
			sr.ByNetwork[key] = v.Score(r.Inferences).Total
		}
		stages = append(stages, sr)
	}
	cfg := e.Config(f)
	cfg.OnStage = func(stage core.Stage, iteration int, s *core.StageSnapshot) {
		r := s.Result()
		switch stage {
		case core.StageDirect:
			snapshot("direct", r)
		case core.StageP2P:
			snapshot("p2p-fix", r)
		case core.StageInverse:
			snapshot("inverse-fix", r)
		case core.StageAddConverged:
			snapshot("add-converged", r)
		case core.StageIteration:
			snapshot(fmt.Sprintf("iteration-%d", iteration), r)
		case core.StageStub:
			snapshot("stub-heuristic", r)
		}
	}
	if _, err := e.Run(cfg); err != nil {
		return nil, err
	}
	return stages, nil
}

// WriteFig7 renders the Fig 7 series.
func WriteFig7(w io.Writer, stages []StageResult) {
	fmt.Fprintf(w, "%-16s", "stage")
	for _, key := range NetworkKeys {
		fmt.Fprintf(w, "  %6s-P %6s-R", NetworkLabel(key), NetworkLabel(key))
	}
	fmt.Fprintln(w)
	for _, sr := range stages {
		fmt.Fprintf(w, "%-16s", sr.Stage)
		for _, key := range NetworkKeys {
			m := sr.ByNetwork[key]
			fmt.Fprintf(w, "  %8.1f %8.1f", 100*m.Precision(), 100*m.Recall())
		}
		fmt.Fprintln(w)
	}
}

// Fig8Methods is the presentation order of the Fig 8 comparison.
var Fig8Methods = []string{"Simple", "Convention", "ITDK-Kapar", "ITDK-MIDAR", "MAP-IT"}

// Fig8 reproduces Figures 8a/8b: recall and precision of the Simple and
// Convention heuristics and the two ITDK router-graph variants against
// MAP-IT at f=0.5.
func Fig8(e *Env, f float64) (map[string]map[string]Metrics, error) {
	out := make(map[string]map[string]Metrics)
	score := func(method string, infs []core.Inference) {
		out[method] = make(map[string]Metrics)
		for key, v := range e.Verifiers {
			out[method][key] = v.Score(infs).Total
		}
	}
	score("Simple", baseline.Simple(e.Sanitized, e.Table))
	score("Convention", baseline.Convention(e.Sanitized, e.Table, e.Rels, e.Orgs))
	score("ITDK-Kapar", baseline.ITDK(e.World, e.Sanitized, e.Table, baseline.ITDKKapar, 11))
	score("ITDK-MIDAR", baseline.ITDK(e.World, e.Sanitized, e.Table, baseline.ITDKMidar, 11))
	r, err := e.Run(e.Config(f))
	if err != nil {
		return nil, err
	}
	score("MAP-IT", r.Inferences)
	return out, nil
}

// WriteFig8 renders the comparison.
func WriteFig8(w io.Writer, cmp map[string]map[string]Metrics) {
	fmt.Fprintf(w, "%-12s", "method")
	for _, key := range NetworkKeys {
		fmt.Fprintf(w, "  %6s-P %6s-R", NetworkLabel(key), NetworkLabel(key))
	}
	fmt.Fprintln(w)
	for _, method := range Fig8Methods {
		fmt.Fprintf(w, "%-12s", method)
		for _, key := range NetworkKeys {
			m := cmp[method][key]
			fmt.Fprintf(w, "  %8.1f %8.1f", 100*m.Precision(), 100*m.Recall())
		}
		fmt.Fprintln(w)
	}
}

// BdrmapComparison is the §6 future-work head-to-head: bdrmap-style
// border mapping for the one network hosting a vantage point versus
// MAP-IT on the same corpus.
type BdrmapComparison struct {
	// Network is the monitor-hosting network (the REN).
	Network string
	// Bdrmap and MAPIT are the verified totals for that network.
	Bdrmap, MAPIT Metrics
	// BdrmapClaims / MAPITInferences compare output sizes: bdrmap can
	// only speak about the monitor network's own borders.
	BdrmapClaims, MAPITInferences int
}

// Bdrmap runs the comparison. Only the REN hosts a monitor in the
// generated worlds, matching the paper's situation ("Of the three
// networks we verify against, only one has a monitor", §2).
func Bdrmap(e *Env, f float64) (*BdrmapComparison, error) {
	ren := e.Networks[topo.SpecialREN]
	monitors := make(map[string]bool)
	for _, m := range e.World.Monitors {
		if m.AS == ren {
			monitors[m.Name] = true
		}
	}
	claims := baseline.BdrmapLite(ren.ASN, monitors, e.Sanitized, e.Table, e.Rels, e.Orgs)
	r, err := e.Run(e.Config(f))
	if err != nil {
		return nil, err
	}
	v := e.Verifiers[topo.SpecialREN]
	return &BdrmapComparison{
		Network:         NetworkLabel(topo.SpecialREN),
		Bdrmap:          v.Score(claims).Total,
		MAPIT:           v.Score(r.Inferences).Total,
		BdrmapClaims:    len(claims),
		MAPITInferences: len(r.HighConfidence()),
	}, nil
}

// WriteBdrmap renders the comparison.
func WriteBdrmap(w io.Writer, c *BdrmapComparison) {
	fmt.Fprintf(w, "%-12s %10s %8s %8s %8s\n", "method", "claims", "P%", "R%", "scope")
	fmt.Fprintf(w, "%-12s %10d %8.1f %8.1f %s\n", "bdrmap-lite", c.BdrmapClaims,
		100*c.Bdrmap.Precision(), 100*c.Bdrmap.Recall(), "monitor network only")
	fmt.Fprintf(w, "%-12s %10d %8.1f %8.1f %s\n", "MAP-IT", c.MAPITInferences,
		100*c.MAPIT.Precision(), 100*c.MAPIT.Recall(), "all networks in the traces")
}

// DatasetStats aggregates the prose statistics of §4.1–§4.3 and §5.
type DatasetStats struct {
	TotalTraces       int
	DiscardedTraces   int
	RetainedTraceFrac float64
	DistinctAddrs     int
	RetainedAddrFrac  float64
	Slash31Frac       float64
	Interfaces        int
	EligibleForward   int
	EligibleBackward  int
	BothNsOverlapFrac float64
	IP2ASCoverage     float64
	Iterations        int
	Divergent         int
	UncertainCount    int
}

// Stats computes the dataset statistics for the environment (requires
// one MAP-IT run for the algorithm-side numbers).
func Stats(e *Env, r *core.Result) DatasetStats {
	s := DatasetStats{
		TotalTraces:       e.Sanitized.Stats.TotalTraces,
		DiscardedTraces:   e.Sanitized.Stats.DiscardedTraces,
		RetainedTraceFrac: e.Sanitized.Stats.RetainedTraceFraction(),
		DistinctAddrs:     e.Sanitized.Stats.DistinctAddrs,
		RetainedAddrFrac:  e.Sanitized.Stats.RetainedAddrFraction(),
		Slash31Frac:       r.Diag.Slash31Fraction,
		Interfaces:        r.Diag.Interfaces,
		EligibleForward:   r.Diag.EligibleForward,
		EligibleBackward:  r.Diag.EligibleBackward,
		Iterations:        r.Diag.Iterations,
		Divergent:         r.Diag.DivergentOtherSides,
		UncertainCount:    len(r.Uncertain()),
	}
	if r.Diag.Interfaces > 0 {
		s.BothNsOverlapFrac = float64(r.Diag.BothNsOverlap) / float64(r.Diag.Interfaces)
	}
	n, covered := 0, 0
	for a := range e.Sanitized.AllAddrs {
		n++
		if _, ok := e.Table.Lookup(a); ok {
			covered++
		}
	}
	if n > 0 {
		s.IP2ASCoverage = float64(covered) / float64(n)
	}
	return s
}

// WriteStats renders the statistics with the paper's reference values.
func WriteStats(w io.Writer, s DatasetStats) {
	fmt.Fprintf(w, "traces                  %d (discarded %d, retained %.1f%%; paper retains 97.3%%)\n",
		s.TotalTraces, s.DiscardedTraces, 100*s.RetainedTraceFrac)
	fmt.Fprintf(w, "distinct addresses      %d (retained %.1f%%; paper retains 89.1%%)\n",
		s.DistinctAddrs, 100*s.RetainedAddrFrac)
	fmt.Fprintf(w, "/31 fraction            %.1f%% (paper: 40.4%%)\n", 100*s.Slash31Frac)
	fmt.Fprintf(w, "interfaces w/ neighbour %d (|N_F|>=2: %d, |N_B|>=2: %d)\n",
		s.Interfaces, s.EligibleForward, s.EligibleBackward)
	fmt.Fprintf(w, "both-Ns overlap         %.2f%% of interfaces (paper: 0.3%%)\n", 100*s.BothNsOverlapFrac)
	fmt.Fprintf(w, "IP2AS coverage          %.1f%% (paper: 99.2%%)\n", 100*s.IP2ASCoverage)
	fmt.Fprintf(w, "iterations to converge  %d (paper: 3)\n", s.Iterations)
	fmt.Fprintf(w, "divergent other sides   %d (paper: 90)\n", s.Divergent)
	fmt.Fprintf(w, "uncertain inferences    %d\n", s.UncertainCount)
}
