package eval

import (
	"fmt"
	"io"
)

// SeedSummary aggregates Table 1 totals for one network across seeds.
type SeedSummary struct {
	Network string
	// PerSeed holds the total metrics for each seed, in seed order.
	PerSeed []Metrics
}

// MeanPrecision averages precision across seeds.
func (s SeedSummary) MeanPrecision() float64 { return s.mean(Metrics.Precision) }

// MeanRecall averages recall across seeds.
func (s SeedSummary) MeanRecall() float64 { return s.mean(Metrics.Recall) }

// MinPrecision is the worst-seed precision.
func (s SeedSummary) MinPrecision() float64 { return s.min(Metrics.Precision) }

// MinRecall is the worst-seed recall.
func (s SeedSummary) MinRecall() float64 { return s.min(Metrics.Recall) }

func (s SeedSummary) mean(f func(Metrics) float64) float64 {
	if len(s.PerSeed) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range s.PerSeed {
		sum += f(m)
	}
	return sum / float64(len(s.PerSeed))
}

func (s SeedSummary) min(f func(Metrics) float64) float64 {
	out := 1.0
	for _, m := range s.PerSeed {
		if v := f(m); v < out {
			out = v
		}
	}
	return out
}

// MultiSeed runs the Table 1 experiment over several independently
// generated worlds — the robustness check the paper cannot do (it has
// one Internet) but a simulator can: results must not depend on one
// lucky topology.
func MultiSeed(base EnvConfig, seeds []int64, f float64) (map[string]*SeedSummary, error) {
	out := make(map[string]*SeedSummary)
	for _, key := range NetworkKeys {
		out[key] = &SeedSummary{Network: NetworkLabel(key)}
	}
	for _, seed := range seeds {
		cfg := base
		cfg.Gen.Seed = seed
		e := NewEnv(cfg)
		scores, _, err := Table1(e, f)
		if err != nil {
			return nil, err
		}
		for _, key := range NetworkKeys {
			out[key].PerSeed = append(out[key].PerSeed, scores[key].Total)
		}
	}
	return out, nil
}

// WriteMultiSeed renders the cross-seed summary.
func WriteMultiSeed(w io.Writer, summaries map[string]*SeedSummary, seeds []int64) {
	fmt.Fprintf(w, "seeds: %v\n", seeds)
	fmt.Fprintf(w, "%-6s %8s %8s %8s %8s\n", "net", "meanP%", "minP%", "meanR%", "minR%")
	for _, key := range NetworkKeys {
		s := summaries[key]
		fmt.Fprintf(w, "%-6s %8.1f %8.1f %8.1f %8.1f\n", s.Network,
			100*s.MeanPrecision(), 100*s.MinPrecision(),
			100*s.MeanRecall(), 100*s.MinRecall())
	}
}
