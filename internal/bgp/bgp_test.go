package bgp

import (
	"bytes"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"mapit/internal/inet"
)

const sampleRIB = `# two collectors, one MOAS prefix
rv-eqix|10.0.0.0/8|701 3356 100
ris-rrc00|10.0.0.0/8|1299 100
rv-eqix|10.1.0.0/16|701 200
ris-rrc00|10.1.0.0/16|1299 201
i2-ndb7|10.1.0.0/16|11537 201
rv-eqix|192.0.2.0/24|64500
`

func mustParse(t *testing.T, s string) []Announcement {
	t.Helper()
	anns, err := ParseRIB(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return anns
}

func TestParseRIB(t *testing.T) {
	anns := mustParse(t, sampleRIB)
	if len(anns) != 6 {
		t.Fatalf("got %d announcements", len(anns))
	}
	if anns[0].Collector != "rv-eqix" || anns[0].Origin() != 100 {
		t.Errorf("first announcement wrong: %+v", anns[0])
	}
	if got := anns[5].Origin(); got != 64500 {
		t.Errorf("single-hop path origin = %v", got)
	}
}

func TestParseRIBErrors(t *testing.T) {
	bad := []string{
		"onlyonefield",
		"c|10.0.0.0/8",
		"c|10.0.0.0/40|100",
		"c|10.0.0.0/8|notanasn",
		"c|10.0.0.0/8|",
	}
	for _, s := range bad {
		if _, err := ParseRIB(strings.NewReader(s)); err == nil {
			t.Errorf("ParseRIB(%q) succeeded; want error", s)
		}
	}
}

func TestWriteRIBRoundTrip(t *testing.T) {
	anns := mustParse(t, sampleRIB)
	var buf bytes.Buffer
	if err := WriteRIB(&buf, anns); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(anns) {
		t.Fatalf("round trip length %d != %d", len(back), len(anns))
	}
	for i := range anns {
		if anns[i].Collector != back[i].Collector || anns[i].Prefix != back[i].Prefix ||
			anns[i].Origin() != back[i].Origin() || len(anns[i].Path) != len(back[i].Path) {
			t.Errorf("announcement %d differs: %+v vs %+v", i, anns[i], back[i])
		}
	}
}

func TestTableElection(t *testing.T) {
	table := NewTable(mustParse(t, sampleRIB))
	// 10.1.0.0/16 is MOAS: origin 201 seen at 2 collectors, 200 at 1.
	asn, ok := table.Lookup(inet.MustParseAddr("10.1.5.5"))
	if !ok || asn != 201 {
		t.Errorf("MOAS election = %v, %v; want 201", asn, ok)
	}
	po, _ := table.LookupPrefix(inet.MustParseAddr("10.1.5.5"))
	if len(po.MOAS) != 2 || po.MOAS[0] != 200 || po.MOAS[1] != 201 {
		t.Errorf("MOAS list = %v", po.MOAS)
	}
	// Longest match wins over the covering /8.
	asn, _ = table.Lookup(inet.MustParseAddr("10.2.0.1"))
	if asn != 100 {
		t.Errorf("covering /8 lookup = %v; want 100", asn)
	}
	if got := len(table.MOASPrefixes()); got != 1 {
		t.Errorf("MOASPrefixes = %d; want 1", got)
	}
	if table.Len() != 3 {
		t.Errorf("Len = %d; want 3", table.Len())
	}
}

func TestTableElectionTieBreak(t *testing.T) {
	// One collector each: tie broken by lowest ASN.
	anns := mustParse(t, "a|198.51.100.0/24|9\nb|198.51.100.0/24|5\n")
	table := NewTable(anns)
	asn, _ := table.Lookup(inet.MustParseAddr("198.51.100.1"))
	if asn != 5 {
		t.Errorf("tie break = %v; want AS5", asn)
	}
}

func TestChainFallback(t *testing.T) {
	primary := NewTable(mustParse(t, "c|10.0.0.0/8|100\n"))
	fallback := EmptyTable()
	fallback.Add(inet.MustParsePrefix("10.0.0.0/8"), 999) // shadowed by primary
	fallback.Add(inet.MustParsePrefix("172.32.0.0/16"), 200)
	chain := Chain{primary, fallback}

	asn, ok := chain.Lookup(inet.MustParseAddr("10.1.1.1"))
	if !ok || asn != 100 {
		t.Errorf("primary lookup = %v, %v", asn, ok)
	}
	asn, ok = chain.Lookup(inet.MustParseAddr("172.32.1.1"))
	if !ok || asn != 200 {
		t.Errorf("fallback lookup = %v, %v", asn, ok)
	}
	if _, ok := chain.Lookup(inet.MustParseAddr("9.9.9.9")); ok {
		t.Error("unannounced address resolved")
	}

	cov := chain.Coverage([]inet.Addr{
		inet.MustParseAddr("10.1.1.1"),
		inet.MustParseAddr("172.32.1.1"),
		inet.MustParseAddr("9.9.9.9"),
		inet.MustParseAddr("11.0.0.1"),
	})
	if cov != 0.5 {
		t.Errorf("coverage = %v; want 0.5", cov)
	}
	if Chain(nil).Coverage(nil) != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestParseASNForms(t *testing.T) {
	for _, s := range []string{"64500", "AS64500", "as64500", " 64500 "} {
		// ParseASN lives in inet but its primary consumer is this package.
		got, err := inet.ParseASN(s)
		if err != nil || got != 64500 {
			t.Errorf("ParseASN(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "AS", "4294967296", "-1", "12x"} {
		if _, err := inet.ParseASN(s); err == nil {
			t.Errorf("ParseASN(%q) succeeded", s)
		}
	}
	if inet.ASN(15169).String() != "AS15169" {
		t.Error("ASN.String format")
	}
}

func TestEmptyPathAndPrefixes(t *testing.T) {
	if (Announcement{}).Origin() != 0 {
		t.Error("empty path origin should be 0")
	}
	// Announcements with empty paths never make it through ParseRIB,
	// but NewTable must tolerate them from direct construction.
	table := NewTable([]Announcement{{Prefix: inet.MustParsePrefix("10.0.0.0/8")}})
	if table.Len() != 0 {
		t.Error("zero-origin announcement stored")
	}
	t2 := NewTable(mustParse(t, sampleRIB))
	ps := t2.Prefixes()
	if len(ps) != 3 {
		t.Fatalf("Prefixes = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Base < ps[i-1].Base {
			t.Fatal("Prefixes not sorted")
		}
	}
}

func TestAddMergesMOAS(t *testing.T) {
	table := EmptyTable()
	p := inet.MustParsePrefix("198.51.100.0/24")
	table.Add(p, 100)
	table.Add(p, 200) // second sighting must not clobber the first
	table.Add(p, 100) // duplicate origin must not duplicate the entry

	po, ok := table.LookupPrefix(inet.MustParseAddr("198.51.100.7"))
	if !ok {
		t.Fatal("prefix did not resolve")
	}
	if po.Origin != 100 {
		t.Errorf("elected origin = %v; want the first-added AS100", po.Origin)
	}
	if len(po.MOAS) != 2 || po.MOAS[0] != 100 || po.MOAS[1] != 200 {
		t.Errorf("MOAS = %v; want [100 200]", po.MOAS)
	}
	if got := len(table.MOASPrefixes()); got != 1 {
		t.Errorf("MOASPrefixes = %d; want 1", got)
	}
	if table.Len() != 1 {
		t.Errorf("Len = %d; want 1", table.Len())
	}
}

func TestAddThawsFrozenTable(t *testing.T) {
	table := EmptyTable()
	table.Add(inet.MustParsePrefix("10.0.0.0/8"), 100)
	table.Freeze()
	if !table.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	table.Add(inet.MustParsePrefix("11.0.0.0/8"), 200)
	if table.Frozen() {
		t.Fatal("Add left the table frozen")
	}
	// The post-thaw addition must be visible.
	if asn, ok := table.Lookup(inet.MustParseAddr("11.1.1.1")); !ok || asn != 200 {
		t.Errorf("post-thaw lookup = %v, %v; want 200", asn, ok)
	}
}

// chainFixture builds the §5 two-table chain: collectors ahead of a
// Cymru-style fallback, with one prefix claimed by both.
func chainFixture(t *testing.T) Chain {
	t.Helper()
	collectors := NewTable(mustParse(t, sampleRIB))
	cymru := EmptyTable()
	cymru.Add(inet.MustParsePrefix("10.0.0.0/8"), 999)    // shadowed by collectors
	cymru.Add(inet.MustParsePrefix("172.32.0.0/16"), 300) // fallback-only
	return Chain{collectors, cymru}
}

// TestChainPrecedence pins the §5 chain-order semantics: the collector
// table answers every address it covers, the fallback only fills the
// gaps — identically on the thawed and frozen paths.
func TestChainPrecedence(t *testing.T) {
	for _, frozen := range []bool{false, true} {
		name := "thawed"
		if frozen {
			name = "frozen"
		}
		t.Run(name, func(t *testing.T) {
			chain := chainFixture(t)
			if frozen {
				chain.Freeze()
				for i, tb := range chain {
					if !tb.Frozen() {
						t.Fatalf("table %d not frozen", i)
					}
				}
			}
			cases := []struct {
				addr string
				want inet.ASN
			}{
				{"10.2.3.4", 100},   // collector /8 beats fallback's claim on the same prefix
				{"10.1.5.5", 201},   // collector longest match (the MOAS /16)
				{"172.32.1.1", 300}, // only the fallback knows it
				{"192.0.2.9", 64500},
			}
			for _, c := range cases {
				asn, ok := chain.Lookup(inet.MustParseAddr(c.addr))
				if !ok || asn != c.want {
					t.Errorf("Lookup(%s) = %v, %v; want %v", c.addr, asn, ok, c.want)
				}
			}
			if _, ok := chain.Lookup(inet.MustParseAddr("9.9.9.9")); ok {
				t.Error("unannounced address resolved")
			}
		})
	}
}

// TestChainCoverage exercises Coverage over every outcome mix, frozen
// and thawed, plus the degenerate inputs.
func TestChainCoverage(t *testing.T) {
	addrs := []inet.Addr{
		inet.MustParseAddr("10.1.5.5"),   // collector hit
		inet.MustParseAddr("172.32.0.1"), // fallback hit
		inet.MustParseAddr("9.9.9.9"),    // miss
		inet.MustParseAddr("203.0.113.1"),
	}
	chain := chainFixture(t)
	if cov := chain.Coverage(addrs); cov != 0.5 {
		t.Errorf("thawed coverage = %v; want 0.5", cov)
	}
	chain.Freeze()
	if cov := chain.Coverage(addrs); cov != 0.5 {
		t.Errorf("frozen coverage = %v; want 0.5", cov)
	}
	if cov := chain.Coverage(addrs[:2]); cov != 1 {
		t.Errorf("all-hit coverage = %v; want 1", cov)
	}
	if cov := chain.Coverage(addrs[2:]); cov != 0 {
		t.Errorf("all-miss coverage = %v; want 0", cov)
	}
	if chain.Coverage(nil) != 0 {
		t.Error("empty address list coverage should be 0")
	}
	if Chain(nil).Coverage(addrs) != 0 {
		t.Error("nil chain resolved something")
	}
}

// TestFrozenEquivalenceRandom proves frozen lookups are byte-identical
// to the trie path over randomized tables: MOAS records, covering and
// covered prefixes, a default route, and unannounced probes.
func TestFrozenEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var anns []Announcement
		if trial%4 == 0 {
			anns = append(anns, Announcement{Collector: "c0",
				Prefix: inet.MustParsePrefix("0.0.0.0/0"), Path: []inet.ASN{65000}})
		}
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			p := inet.PrefixFrom(inet.Addr(rng.Uint32()), 8+rng.Intn(25))
			// A second announcement of the same prefix from another
			// collector half the time, often with a different origin —
			// that is what makes MOAS records.
			anns = append(anns, Announcement{Collector: "c1", Prefix: p,
				Path: []inet.ASN{inet.ASN(1 + rng.Intn(50))}})
			if rng.Intn(2) == 0 {
				anns = append(anns, Announcement{Collector: "c2", Prefix: p,
					Path: []inet.ASN{inet.ASN(1 + rng.Intn(50))}})
			}
		}
		thawed := NewTable(anns)
		frozen := NewTable(anns)
		frozen.Freeze()
		for i := 0; i < 2000; i++ {
			a := inet.Addr(rng.Uint32())
			if rng.Intn(2) == 0 {
				an := anns[rng.Intn(len(anns))]
				if an.Prefix.Len > 0 {
					a = an.Prefix.Base + inet.Addr(rng.Uint32())%inet.Addr(an.Prefix.NumAddrs())
				}
			}
			wantASN, wantOK := thawed.Lookup(a)
			gotASN, gotOK := frozen.Lookup(a)
			if wantOK != gotOK || wantASN != gotASN {
				t.Fatalf("trial %d Lookup(%v): thawed (%v,%v) frozen (%v,%v)",
					trial, a, wantASN, wantOK, gotASN, gotOK)
			}
			wantPO, wantOK := thawed.LookupPrefix(a)
			gotPO, gotOK := frozen.LookupPrefix(a)
			if wantOK != gotOK || wantPO.Prefix != gotPO.Prefix || wantPO.Origin != gotPO.Origin ||
				!slices.Equal(wantPO.MOAS, gotPO.MOAS) {
				t.Fatalf("trial %d LookupPrefix(%v): thawed %+v frozen %+v",
					trial, a, wantPO, gotPO)
			}
		}
	}
}
