// Package bgp models the BGP-derived IP-to-AS mapping that MAP-IT
// bootstraps from (§5): prefix announcements observed at multiple route
// collectors, merged into a single longest-prefix-match origin table.
//
// The paper merges RIBs from 40 collectors (RouteViews, RIPE RIS,
// Internet2) so that regionally aggregated or regionally invisible
// prefixes still resolve, and falls back to a Team Cymru style table for
// prefixes absent from all collectors. Table reproduces the merge
// (plurality origin election with MOAS tracking); Chain reproduces the
// fallback.
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync/atomic"

	"mapit/internal/inet"
	"mapit/internal/iptrie"
)

// Announcement is one prefix announcement as seen at one collector. Origin
// is the last AS on the path (the network that injected the prefix).
type Announcement struct {
	Collector string
	Prefix    inet.Prefix
	Path      []inet.ASN
}

// Origin returns the originating AS of the announcement (last path hop),
// or 0 for an empty path.
func (an Announcement) Origin() inet.ASN {
	if len(an.Path) == 0 {
		return 0
	}
	return an.Path[len(an.Path)-1]
}

// ParseRIB reads a RIB dump in the repository's line format:
//
//	# comment
//	collector|prefix|as-path
//
// where as-path is a space-separated ASN list ("701 3356 15169"). Path
// prepending is preserved; AS-sets are not supported (collectors in this
// repository never emit them).
func ParseRIB(r io.Reader) ([]Announcement, error) {
	var out []Announcement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bgp: line %d: want 3 fields, got %d", lineno, len(parts))
		}
		p, err := inet.ParsePrefix(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %v", lineno, err)
		}
		var path []inet.ASN
		for _, f := range strings.Fields(parts[2]) {
			asn, err := inet.ParseASN(f)
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: %v", lineno, err)
			}
			path = append(path, asn)
		}
		if len(path) == 0 {
			return nil, fmt.Errorf("bgp: line %d: empty AS path", lineno)
		}
		out = append(out, Announcement{Collector: parts[0], Prefix: p, Path: path})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRIB writes announcements in the format ParseRIB reads.
func WriteRIB(w io.Writer, anns []Announcement) error {
	bw := bufio.NewWriter(w)
	for _, an := range anns {
		if _, err := fmt.Fprintf(bw, "%s|%s|", an.Collector, an.Prefix); err != nil {
			return err
		}
		for i, asn := range an.Path {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", uint32(asn)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PrefixOrigin is the merged view of one prefix across all collectors.
type PrefixOrigin struct {
	Prefix inet.Prefix
	// Origin is the elected origin: the AS originating the prefix at the
	// most collectors, ties broken by lowest ASN for determinism.
	Origin inet.ASN
	// MOAS lists every distinct origin seen (sorted), length > 1 for
	// multi-origin prefixes.
	MOAS []inet.ASN
}

// Table is a longest-prefix-match origin table merged from announcements.
//
// A table is built once (NewTable, or EmptyTable plus Add calls) and
// then queried many times; Freeze marks the end of the build phase by
// compiling the trie into the flat multibit form every subsequent
// lookup runs against. Lookups — frozen or not — are safe for
// concurrent use; Add is not safe concurrently with anything.
type Table struct {
	trie *iptrie.Trie[PrefixOrigin]
	// compiled is the frozen lookup engine, nil while thawed. Atomic so
	// concurrent runs sharing one table may race Freeze against Lookup:
	// the losing compiler's work is discarded, and both build identical
	// tables from the same trie.
	compiled atomic.Pointer[iptrie.Compiled[PrefixOrigin]]
}

// NewTable elects an origin per prefix from the announcements and builds
// the LPM table.
func NewTable(anns []Announcement) *Table {
	type tally struct {
		votes map[inet.ASN]int
	}
	byPrefix := make(map[inet.Prefix]*tally)
	for _, an := range anns {
		o := an.Origin()
		if o.IsZero() {
			continue
		}
		tl := byPrefix[an.Prefix]
		if tl == nil {
			tl = &tally{votes: make(map[inet.ASN]int)}
			byPrefix[an.Prefix] = tl
		}
		tl.votes[o]++
	}
	t := &Table{trie: iptrie.New[PrefixOrigin]()}
	for p, tl := range byPrefix {
		po := PrefixOrigin{Prefix: p}
		for asn := range tl.votes {
			po.MOAS = append(po.MOAS, asn)
		}
		slices.Sort(po.MOAS)
		best, bestVotes := inet.ASN(0), -1
		for _, asn := range po.MOAS {
			if v := tl.votes[asn]; v > bestVotes {
				best, bestVotes = asn, v
			}
		}
		po.Origin = best
		t.trie.Insert(p, po)
	}
	return t
}

// Freeze compiles the table into its read-only multibit form (see
// iptrie.Compiled): every later Lookup/LookupPrefix resolves in at most
// three flat array reads instead of a pointer walk. Idempotent, safe to
// call from multiple goroutines, and a no-op on an already frozen
// table. Add thaws the table again.
func (t *Table) Freeze() {
	if t.compiled.Load() == nil {
		c := t.trie.Compile()
		// CompareAndSwap keeps the first published engine if another
		// goroutine won the race; both are built from the same trie.
		t.compiled.CompareAndSwap(nil, c)
	}
}

// Frozen reports whether the table currently has a compiled engine.
func (t *Table) Frozen() bool { return t.compiled.Load() != nil }

// EmptyTable returns a table with no prefixes (useful as a chain tail).
func EmptyTable() *Table { return &Table{trie: iptrie.New[PrefixOrigin]()} }

// Add records a prefix→origin mapping, the build primitive of fallback
// tables (the Team Cymru analogue is assembled one Add at a time).
// Re-adding a prefix merges rather than replaces: the new origin joins
// the MOAS list and the elected origin stays with the first Add — the
// fallback source listed the prefix under that origin first, and a
// later sighting is extra evidence of multi-origin, not a retraction.
// Add thaws a frozen table; Freeze again after the build phase.
func (t *Table) Add(p inet.Prefix, origin inet.ASN) {
	po, ok := t.trie.Get(p)
	if !ok {
		po = PrefixOrigin{Prefix: p, Origin: origin}
	}
	if i, found := slices.BinarySearch(po.MOAS, origin); !found {
		po.MOAS = slices.Insert(po.MOAS, i, origin)
	}
	t.trie.Insert(p, po)
	t.compiled.Store(nil)
}

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.trie.Len() }

// Lookup returns the elected origin AS of the longest prefix containing a.
func (t *Table) Lookup(a inet.Addr) (inet.ASN, bool) {
	po, ok := t.LookupPrefix(a)
	if !ok {
		return 0, false
	}
	return po.Origin, true
}

// LookupPrefix returns the longest matching prefix record for a.
func (t *Table) LookupPrefix(a inet.Addr) (PrefixOrigin, bool) {
	if c := t.compiled.Load(); c != nil {
		return c.Lookup(a)
	}
	return t.trie.Lookup(a)
}

// Prefixes returns all prefixes in the table, sorted.
func (t *Table) Prefixes() []inet.Prefix { return t.trie.Prefixes() }

// MOASPrefixes returns the records with more than one distinct origin.
func (t *Table) MOASPrefixes() []PrefixOrigin {
	var out []PrefixOrigin
	t.trie.Walk(func(_ inet.Prefix, po PrefixOrigin) bool {
		if len(po.MOAS) > 1 {
			out = append(out, po)
		}
		return true
	})
	return out
}

// Chain is an ordered IP-to-AS lookup chain: the first table that resolves
// an address wins. The paper chains the merged collector table ahead of
// the Team Cymru table (§5).
type Chain []*Table

// Freeze compiles every table in the chain (see Table.Freeze). The
// chain order — and therefore which table answers an address claimed
// by several — is unchanged.
func (c Chain) Freeze() {
	for _, t := range c {
		t.Freeze()
	}
}

// Lookup resolves a through the chain.
func (c Chain) Lookup(a inet.Addr) (inet.ASN, bool) {
	for _, t := range c {
		if asn, ok := t.Lookup(a); ok {
			return asn, true
		}
	}
	return 0, false
}

// Coverage reports the fraction of the given addresses the chain can
// resolve. The paper reports 99.2% coverage of usable interfaces (§5).
func (c Chain) Coverage(addrs []inet.Addr) float64 {
	if len(addrs) == 0 {
		return 0
	}
	n := 0
	for _, a := range addrs {
		if _, ok := c.Lookup(a); ok {
			n++
		}
	}
	return float64(n) / float64(len(addrs))
}
