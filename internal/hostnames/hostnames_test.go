package hostnames

import (
	"testing"

	"mapit/internal/inet"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

func TestParse(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		peer inet.ASN
	}{
		{"as174-ic-12.br3.as1299.sim", External, 174},
		{"ae-41-41.cr1.as3356.sim", Internal, 0},
		{"fab-dc3.as3356.sim", Fabric, 0},
		{"cust-9.as3356.sim", Ambiguous, 0},
		{"", Missing, 0},
		{"something-else.net", Ambiguous, 0},
		{"asxyz.br1.as1.sim", Ambiguous, 0},
	}
	for _, c := range cases {
		k, p := Parse(c.name)
		if k != c.kind || p != c.peer {
			t.Errorf("Parse(%q) = %v, %v; want %v, %v", c.name, k, p, c.kind, c.peer)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Missing: "missing", External: "external", Internal: "internal",
		Ambiguous: "ambiguous", Fabric: "fabric",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q; want %q", k, got, want)
		}
	}
}

func TestParseOwner(t *testing.T) {
	cases := []struct {
		name string
		want inet.ASN
		ok   bool
	}{
		{"as174-ic-12.br3.as1299.sim", 1299, true},
		{"ae-1-1.cr1.as3356.sim", 3356, true},
		{"fab-dc1.as100.sim", 100, true},
		{"something.level3.net", 0, false},
		{"as174-ic-1.br1.asxyz.sim", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseOwner(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseOwner(%q) = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	ifaces := []IfaceInfo{
		{Addr: ip("4.68.0.1"), External: true, Peer: 174},
		{Addr: ip("4.68.0.5"), External: false},
		{Addr: ip("4.68.0.9"), External: true, Peer: 701},
		{Addr: ip("4.68.0.13"), Fabric: true},
	}
	recs := Generate(3356, ifaces, []inet.ASN{9999}, NoiseConfig{}) // no noise
	if len(recs) != len(ifaces) {
		t.Fatalf("records = %d", len(recs))
	}
	byAddr := map[inet.Addr]Record{}
	for _, r := range recs {
		byAddr[r.Addr] = r
	}
	if k, p := Parse(byAddr[ip("4.68.0.1")].Name); k != External || p != 174 {
		t.Errorf("external record parse = %v %v", k, p)
	}
	if k, _ := Parse(byAddr[ip("4.68.0.5")].Name); k != Internal {
		t.Errorf("internal record parse = %v", k)
	}
	if k, _ := Parse(byAddr[ip("4.68.0.13")].Name); k != Fabric {
		t.Errorf("fabric record parse = %v", k)
	}
}

func TestGenerateNoiseDeterministic(t *testing.T) {
	var ifaces []IfaceInfo
	for i := 0; i < 500; i++ {
		ifaces = append(ifaces, IfaceInfo{
			Addr: inet.Addr(0x0a000000 + i*4), External: i%2 == 0, Peer: inet.ASN(100 + i%7),
		})
	}
	cfg := DefaultNoiseConfig()
	a := Generate(1299, ifaces, []inet.ASN{1, 2, 3}, cfg)
	b := Generate(1299, ifaces, []inet.ASN{1, 2, 3}, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic")
		}
	}
	kinds := map[Kind]int{}
	stale := 0
	for i, r := range a {
		kinds[r.Kind]++
		if r.Kind == External && ifaces[sortedIndex(ifaces, r.Addr)].Peer != r.Peer {
			_ = i
			stale++
		}
	}
	if kinds[Missing] == 0 || kinds[External] == 0 || kinds[Internal] == 0 {
		t.Errorf("noise kinds missing: %v", kinds)
	}
	if stale == 0 {
		t.Error("expected some stale tags at 2% over 250 externals")
	}
}

func sortedIndex(ifaces []IfaceInfo, a inet.Addr) int {
	for i, x := range ifaces {
		if x.Addr == a {
			return i
		}
	}
	return -1
}

func TestBuildDataset(t *testing.T) {
	records := []Record{
		{Addr: ip("4.69.201.118"), Name: "ae-41-41.cr1.as3356.sim"},
		{Addr: ip("4.69.201.117"), Name: "ae-41-41.cr2.as3356.sim"},
		{Addr: ip("4.68.0.1"), Name: "as174-ic-1.br1.as3356.sim"},
		{Addr: ip("4.68.0.2"), Name: "ae-1-1.cr3.as3356.sim"}, // other side of an external
		{Addr: ip("4.68.0.9"), Name: "cust-4.as3356.sim"},
		{Addr: ip("4.68.0.13"), Name: "fab-dc1.as3356.sim"},
		{Addr: ip("4.68.0.17"), Kind: Missing},
	}
	otherSide := map[inet.Addr]inet.Addr{
		ip("4.69.201.118"): ip("4.69.201.117"),
		ip("4.69.201.117"): ip("4.69.201.118"),
		ip("4.68.0.2"):     ip("4.68.0.1"),
		ip("4.68.0.1"):     ip("4.68.0.2"),
	}
	d := BuildDataset(records, otherSide)
	if got := d.ExternalIf[ip("4.68.0.1")]; got != 174 {
		t.Errorf("external = %v", got)
	}
	// Paper's example: both ebr1/ebr2 level3 names -> internal.
	if !d.InternalIf[ip("4.69.201.118")] || !d.InternalIf[ip("4.69.201.117")] {
		t.Error("backbone pair should be internal")
	}
	// The other side of an external-tagged interface is not internal.
	if d.InternalIf[ip("4.68.0.2")] {
		t.Error("far side of an interconnection must not be classified internal")
	}
	// Ambiguous/fabric/missing excluded entirely.
	for _, a := range []string{"4.68.0.9", "4.68.0.13", "4.68.0.17"} {
		if _, ok := d.ExternalIf[ip(a)]; ok || d.InternalIf[ip(a)] {
			t.Errorf("%s should be excluded", a)
		}
	}
}
