package hostnames

import (
	"slices"
	"testing"

	"mapit/internal/inet"
)

// TestParseEdgeCases pins the classifier on names at the boundary of
// each convention.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		hostname string
		kind     Kind
		peer     inet.ASN
	}{
		{"empty resolves missing", "", Missing, 0},
		{"as prefix without ic tag", "as77.br1.as1.sim", Ambiguous, 0},
		{"as prefix with non-numeric asn", "asx-ic-3.br0.as1.sim", Ambiguous, 0},
		{"ic tag with empty rest", "as9-ic-", Ambiguous, 0},
		{"well-formed external", "as1299-ic-42.br3.as100.sim", External, 1299},
		{"fabric tag", "fab-dc3.as100.sim", Fabric, 0},
		{"ambiguous customer tag", "cust-17.as100.sim", Ambiguous, 0},
		{"internal aggregate", "ae-41-41.cr1.as100.sim", Internal, 0},
		{"unrecognised convention", "loopback0.example.net", Ambiguous, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind, peer := Parse(tc.hostname)
			if kind != tc.kind || peer != tc.peer {
				t.Fatalf("Parse(%q) = %v/%v, want %v/%v",
					tc.hostname, kind, peer, tc.kind, tc.peer)
			}
		})
	}
}

// TestParseOwnerEdgeCases drives the domain-suffix extraction through
// malformed and nested suffixes.
func TestParseOwnerEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		hostname string
		want     inet.ASN
		ok       bool
	}{
		{"plain owner", "ae-1-1.cr0.as100.sim", 100, true},
		{"no sim suffix", "ae-1-1.cr0.as100.net", 0, false},
		{"no as component", "ae-1-1.cr0.sim", 0, false},
		{"non-numeric owner", "x.asfoo.sim", 0, false},
		{"nested as components take the last", "db.as7.junk.as55.sim", 55, true},
		{"external name keeps owner not peer", "as9-ic-1.br0.as100.sim", 100, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseOwner(tc.hostname)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseOwner(%q) = %v/%v, want %v/%v",
					tc.hostname, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestGenerateNoiseExtremes: all-or-nothing noise fractions force every
// branch deterministically, independent of the RNG stream.
func TestGenerateNoiseExtremes(t *testing.T) {
	ifaces := []IfaceInfo{
		{Addr: inet.MustParseAddr("1.0.0.2"), External: true, Peer: 20},
		{Addr: inet.MustParseAddr("1.0.0.1"), External: false},
		{Addr: inet.MustParseAddr("1.0.0.3"), Fabric: true},
	}
	t.Run("all missing", func(t *testing.T) {
		recs := Generate(5, ifaces, nil, NoiseConfig{MissingFrac: 1})
		if len(recs) != len(ifaces) {
			t.Fatalf("got %d records, want %d", len(recs), len(ifaces))
		}
		for _, r := range recs {
			if r.Kind != Missing || r.Name != "" {
				t.Fatalf("record %v not missing", r)
			}
		}
	})
	t.Run("noise free", func(t *testing.T) {
		recs := Generate(5, ifaces, nil, NoiseConfig{})
		if !slices.IsSortedFunc(recs, func(a, b Record) int {
			return int(int64(a.Addr) - int64(b.Addr))
		}) {
			t.Fatal("records not sorted by address")
		}
		wantKinds := map[inet.Addr]Kind{
			inet.MustParseAddr("1.0.0.1"): Internal,
			inet.MustParseAddr("1.0.0.2"): External,
			inet.MustParseAddr("1.0.0.3"): Fabric,
		}
		for _, r := range recs {
			if r.Kind != wantKinds[r.Addr] {
				t.Fatalf("%v: kind %v, want %v", r.Addr, r.Kind, wantKinds[r.Addr])
			}
			if r.Kind == External && r.Peer != 20 {
				t.Fatalf("external peer %v, want true neighbour 20", r.Peer)
			}
		}
	})
	t.Run("stale needs candidate neighbours", func(t *testing.T) {
		// StaleFrac 1 with no otherASNs cannot re-tag: the true peer
		// must survive.
		recs := Generate(5, ifaces, nil, NoiseConfig{StaleFrac: 1})
		for _, r := range recs {
			if r.Kind == External && r.Peer != 20 {
				t.Fatalf("stale tag invented neighbour %v from empty candidate set", r.Peer)
			}
		}
		// With candidates supplied, the tag must move off the true peer.
		recs = Generate(5, ifaces, []inet.ASN{99}, NoiseConfig{StaleFrac: 1})
		for _, r := range recs {
			if r.Kind == External && r.Peer != 99 {
				t.Fatalf("stale tag kept %v, want forced re-tag to 99", r.Peer)
			}
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if recs := Generate(5, nil, nil, DefaultNoiseConfig()); len(recs) != 0 {
			t.Fatalf("no interfaces produced %d records", len(recs))
		}
	})
}

// TestBuildDatasetEdgeCases: the internal-interface filter depends on
// what is known about the far side of the link.
func TestBuildDatasetEdgeCases(t *testing.T) {
	in := inet.MustParseAddr("1.0.0.1")
	far := inet.MustParseAddr("1.0.0.2")
	internalName := "ae-1-1.cr0.as100.sim"
	cases := []struct {
		name         string
		records      []Record
		otherSide    map[inet.Addr]inet.Addr
		wantInternal bool
	}{
		{
			name:         "far side external, dropped",
			records:      []Record{{Addr: in, Name: internalName}, {Addr: far, Name: "as100-ic-0.br0.as20.sim"}},
			otherSide:    map[inet.Addr]inet.Addr{in: far},
			wantInternal: false,
		},
		{
			name:         "far side internal, kept",
			records:      []Record{{Addr: in, Name: internalName}, {Addr: far, Name: "ae-2-2.cr1.as20.sim"}},
			otherSide:    map[inet.Addr]inet.Addr{in: far},
			wantInternal: true,
		},
		{
			name:         "far side unknown address, kept",
			records:      []Record{{Addr: in, Name: internalName}},
			otherSide:    map[inet.Addr]inet.Addr{in: far},
			wantInternal: true,
		},
		{
			name:         "no other-side mapping, kept",
			records:      []Record{{Addr: in, Name: internalName}},
			wantInternal: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := BuildDataset(tc.records, tc.otherSide)
			if got := d.InternalIf[in]; got != tc.wantInternal {
				t.Fatalf("InternalIf[%v] = %v, want %v", in, got, tc.wantInternal)
			}
		})
	}

	t.Run("noise kinds excluded entirely", func(t *testing.T) {
		recs := []Record{
			{Addr: inet.MustParseAddr("2.0.0.1"), Name: ""},                   // missing
			{Addr: inet.MustParseAddr("2.0.0.2"), Name: "cust-1.as100.sim"},   // ambiguous
			{Addr: inet.MustParseAddr("2.0.0.3"), Name: "fab-dc1.as100.sim"},  // fabric
			{Addr: inet.MustParseAddr("2.0.0.4"), Name: "as9-ic-2.as100.sim"}, // external
		}
		d := BuildDataset(recs, nil)
		if len(d.InternalIf) != 0 {
			t.Fatalf("noise records leaked into InternalIf: %v", d.InternalIf)
		}
		if len(d.ExternalIf) != 1 || d.ExternalIf[inet.MustParseAddr("2.0.0.4")] != 9 {
			t.Fatalf("ExternalIf = %v, want only 2.0.0.4→9", d.ExternalIf)
		}
	})
}
