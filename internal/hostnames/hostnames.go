// Package hostnames models the DNS naming conventions the paper mines
// for approximate ground truth (§5.1.2): operators like Level 3 and
// TeliaSonera tag interfaces on interconnection links with the name of
// the connected network (e.g. cogent-ic-309423-den-b1.c.telia.net), while
// internal backbone links carry purely internal names (ae-41-41.ebr1.
// berlin1.level3.net).
//
// The package both generates such names from ground truth — with the
// noise sources the paper describes: missing records, stale tags after
// re-provisioning, ambiguous tags, switch-fabric tags — and parses them
// back into an approximate verification dataset, reproducing the paper's
// manual classification pipeline.
package hostnames

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"mapit/internal/inet"
)

// Kind classifies a parsed hostname.
type Kind uint8

const (
	// Missing means the interface resolves to no hostname.
	Missing Kind = iota
	// External carries an interconnection tag naming the far network.
	External
	// Internal is a backbone-link name with no interconnection tag.
	Internal
	// Ambiguous carries a tag that cannot be resolved to a network
	// (the paper removes these interfaces from the dataset).
	Ambiguous
	// Fabric tags the switching fabric (data centre / IXP name) rather
	// than the connected network; the paper removes these too.
	Fabric
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case External:
		return "external"
	case Internal:
		return "internal"
	case Ambiguous:
		return "ambiguous"
	case Fabric:
		return "fabric"
	default:
		return "missing"
	}
}

// Record is one interface's DNS entry.
type Record struct {
	Addr inet.Addr
	Name string
	Kind Kind
	// Peer is the tagged far network for External records. It reflects
	// what the *hostname* says, which may be stale.
	Peer inet.ASN
}

// NoiseConfig mirrors the paper's noise sources.
type NoiseConfig struct {
	Seed int64
	// MissingFrac drops records entirely (many interfaces lack PTR).
	MissingFrac float64
	// StaleFrac re-tags an external interface with a wrong neighbour
	// (hostnames not updated after re-provisioning, §5.1.2).
	StaleFrac float64
	// AmbiguousFrac yields uninterpretable tags.
	AmbiguousFrac float64
	// FabricFrac tags the switching fabric instead of the network.
	FabricFrac float64
}

// DefaultNoiseConfig matches the experiment suite.
func DefaultNoiseConfig() NoiseConfig {
	return NoiseConfig{
		Seed:          4,
		MissingFrac:   0.12,
		StaleFrac:     0.02,
		AmbiguousFrac: 0.04,
		FabricFrac:    0.02,
	}
}

// IfaceInfo is the generator's view of one interface of the target
// network.
type IfaceInfo struct {
	Addr inet.Addr
	// External reports a true inter-AS link interface.
	External bool
	// Peer is the true connected AS (external only).
	Peer inet.ASN
	// Fabric reports an exchange/switch-fabric interface.
	Fabric bool
}

// Generate produces DNS records for the target network asn from ground
// truth, applying the configured noise. otherASNs supplies plausible
// wrong neighbours for stale tags. Output is sorted by address and
// deterministic.
func Generate(asn inet.ASN, ifaces []IfaceInfo, otherASNs []inet.ASN, cfg NoiseConfig) []Record {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(asn)<<20))
	sorted := append([]IfaceInfo(nil), ifaces...)
	slices.SortFunc(sorted, func(a, b IfaceInfo) int { return cmp.Compare(a.Addr, b.Addr) })
	var out []Record
	for i, info := range sorted {
		rec := Record{Addr: info.Addr}
		switch {
		case rng.Float64() < cfg.MissingFrac:
			rec.Kind = Missing
		case info.Fabric || rng.Float64() < cfg.FabricFrac:
			rec.Kind = Fabric
			rec.Name = fmt.Sprintf("fab-dc%d.%s", i%7, domain(asn))
		case !info.External:
			rec.Kind = Internal
			rec.Name = fmt.Sprintf("ae-%d-%d.cr%d.%s", i%64, i%8, i%9, domain(asn))
		case rng.Float64() < cfg.AmbiguousFrac:
			rec.Kind = Ambiguous
			rec.Name = fmt.Sprintf("cust-%d.%s", i, domain(asn))
		default:
			peer := info.Peer
			if len(otherASNs) > 0 && rng.Float64() < cfg.StaleFrac {
				peer = otherASNs[rng.Intn(len(otherASNs))]
			}
			rec.Kind = External
			rec.Peer = peer
			rec.Name = fmt.Sprintf("as%d-ic-%d.br%d.%s", uint32(peer), i, i%9, domain(asn))
		}
		out = append(out, rec)
	}
	return out
}

func domain(asn inet.ASN) string {
	return fmt.Sprintf("as%d.sim", uint32(asn))
}

// Parse classifies a hostname by the conventions Generate uses —
// standing in for the paper's manual interpretation of Level 3 / Telia
// names. It returns the kind and, for external names, the tagged peer.
func Parse(name string) (Kind, inet.ASN) {
	switch {
	case name == "":
		return Missing, 0
	case strings.HasPrefix(name, "fab-"):
		return Fabric, 0
	case strings.HasPrefix(name, "cust-"):
		return Ambiguous, 0
	case strings.HasPrefix(name, "as"):
		var peer uint32
		var rest string
		if n, err := fmt.Sscanf(name, "as%d-ic-%s", &peer, &rest); err == nil && n == 2 {
			return External, inet.ASN(peer)
		}
		return Ambiguous, 0
	case strings.HasPrefix(name, "ae-"):
		return Internal, 0
	default:
		return Ambiguous, 0
	}
}

// ParseOwner extracts the operating network from a hostname's domain
// suffix ("...as1299.sim" → AS1299), the way the paper reads the operator
// off level3.net / telia.net domains.
func ParseOwner(name string) (inet.ASN, bool) {
	i := strings.LastIndex(name, ".as")
	if i < 0 || !strings.HasSuffix(name, ".sim") {
		return 0, false
	}
	asn, err := inet.ParseASN(name[i+3 : len(name)-len(".sim")])
	if err != nil {
		return 0, false
	}
	return asn, true
}

// Dataset is the parsed approximate ground truth for one network: the
// paper's §5.1.2 classification output.
type Dataset struct {
	// ExternalIf maps inter-AS link interface addresses to the tagged
	// connected AS.
	ExternalIf map[inet.Addr]inet.ASN
	// InternalIf lists interfaces whose names (and their other sides')
	// indicate internal links.
	InternalIf map[inet.Addr]bool
}

// BuildDataset interprets records into a verification dataset,
// dropping Missing/Ambiguous/Fabric interfaces as the paper does. An
// interface counts as internal only when its own name is internal and
// the other side's name (when supplied via otherSide and present in the
// record set) is not external.
func BuildDataset(records []Record, otherSide map[inet.Addr]inet.Addr) *Dataset {
	byAddr := make(map[inet.Addr]Record, len(records))
	for _, r := range records {
		byAddr[r.Addr] = r
	}
	d := &Dataset{
		ExternalIf: make(map[inet.Addr]inet.ASN),
		InternalIf: make(map[inet.Addr]bool),
	}
	for _, r := range records {
		kind, peer := Parse(r.Name) // empty names parse as Missing
		switch kind {
		case External:
			d.ExternalIf[r.Addr] = peer
		case Internal:
			if os, ok := otherSide[r.Addr]; ok {
				if o, seen := byAddr[os]; seen {
					if k, _ := Parse(o.Name); k == External {
						continue // far side tags an interconnection
					}
				}
			}
			d.InternalIf[r.Addr] = true
		}
	}
	return d
}
