package inet

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.168.1.2", 0xc0a80102, true},
		{"8.8.8.8", 0x08080808, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"1..2.3", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"1.2.3.4 ", 0, false},
		{"-1.2.3.4", 0, false},
		{"01.2.3.4", 0x01020304, true}, // leading zeros accepted as decimal
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded (%v); want error", c.in, got)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixParseAndContains(t *testing.T) {
	p := MustParsePrefix("10.1.2.128/25")
	if p.String() != "10.1.2.128/25" {
		t.Fatalf("String = %q", p.String())
	}
	if !p.Contains(MustParseAddr("10.1.2.129")) {
		t.Error("should contain 10.1.2.129")
	}
	if p.Contains(MustParseAddr("10.1.2.127")) {
		t.Error("should not contain 10.1.2.127")
	}
	// Base is masked.
	q := MustParsePrefix("10.1.2.200/25")
	if q.Base != p.Base {
		t.Errorf("base not masked: %v", q.Base)
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Error("length 33 accepted")
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Error("missing slash accepted")
	}
	if _, err := ParsePrefix("10.0.0.0/x"); err == nil {
		t.Error("bad length accepted")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.200.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix should overlap itself")
	}
}

func TestPrefixNumAddrsLast(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/30")
	if p.NumAddrs() != 4 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.Last() != MustParseAddr("192.0.2.3") {
		t.Errorf("Last = %v", p.Last())
	}
	all := MustParsePrefix("0.0.0.0/0")
	if all.NumAddrs() != 1<<32 {
		t.Errorf("0/0 NumAddrs = %d", all.NumAddrs())
	}
}

func TestMaskProperties(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		length := int(l % 33)
		m := Addr(a).Mask(length)
		// Masking is idempotent and only clears bits.
		return m.Mask(length) == m && m&Addr(a) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsValid(t *testing.T) {
	if !(Prefix{Base: 0, Len: 0}).IsValid() {
		t.Error("0/0 should be valid")
	}
	if (Prefix{Base: 1, Len: 24}).IsValid() {
		t.Error("unmasked base should be invalid")
	}
	if (Prefix{Base: 0, Len: 40}).IsValid() {
		t.Error("length 40 should be invalid")
	}
}

func TestZeroValues(t *testing.T) {
	if !Addr(0).IsZero() || Addr(1).IsZero() {
		t.Error("Addr.IsZero")
	}
	if !ASN(0).IsZero() || ASN(1).IsZero() {
		t.Error("ASN.IsZero")
	}
	if MustParseASN("AS99") != 99 {
		t.Error("MustParseASN")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseASN should panic on garbage")
		}
	}()
	MustParseASN("zzz")
}

func TestAddrSetAdd(t *testing.T) {
	s := make(AddrSet)
	s.Add(5)
	if !s.Contains(5) || s.Contains(6) {
		t.Error("AddrSet.Add/Contains")
	}
}
