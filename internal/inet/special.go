package inet

// Special-purpose address registry (RFC 6890). The paper excludes
// private/shared addresses from neighbour sets and never draws inferences
// on them (§3.1 fn2, §4.3): they are not globally unique, so adjacency to
// them carries no AS information.

// specialPrefixes lists the IPv4 special-purpose registries from RFC 6890
// (plus 0.0.0.0/8 and the class-E block) that must never be treated as
// globally routable interface addresses.
var specialPrefixes = []Prefix{
	MustParsePrefix("0.0.0.0/8"),       // "this host on this network"
	MustParsePrefix("10.0.0.0/8"),      // private-use
	MustParsePrefix("100.64.0.0/10"),   // shared address space (CGN)
	MustParsePrefix("127.0.0.0/8"),     // loopback
	MustParsePrefix("169.254.0.0/16"),  // link local
	MustParsePrefix("172.16.0.0/12"),   // private-use
	MustParsePrefix("192.0.0.0/24"),    // IETF protocol assignments
	MustParsePrefix("192.0.2.0/24"),    // TEST-NET-1
	MustParsePrefix("192.88.99.0/24"),  // 6to4 relay anycast
	MustParsePrefix("192.168.0.0/16"),  // private-use
	MustParsePrefix("198.18.0.0/15"),   // benchmarking
	MustParsePrefix("198.51.100.0/24"), // TEST-NET-2
	MustParsePrefix("203.0.113.0/24"),  // TEST-NET-3
	MustParsePrefix("224.0.0.0/4"),     // multicast
	MustParsePrefix("240.0.0.0/4"),     // reserved (incl. broadcast)
}

// specialMask is a quick reject table indexed by the top octet: a bit map
// of which first octets can possibly be special. Lookup falls back to the
// prefix list only for those octets.
var specialOctets [256]bool

func init() {
	for _, p := range specialPrefixes {
		first := int(p.Base >> 24)
		last := int(p.Last() >> 24)
		for o := first; o <= last; o++ {
			specialOctets[o] = true
		}
	}
}

// IsSpecial reports whether a falls in any RFC 6890 special-purpose block
// (private, shared/CGN, loopback, link-local, test, multicast, reserved).
func IsSpecial(a Addr) bool {
	if !specialOctets[a>>24] {
		return false
	}
	for _, p := range specialPrefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// SpecialPrefixes returns a copy of the registry, for callers that want to
// seed their own tries (e.g. the IP2AS chain marks them unroutable).
func SpecialPrefixes() []Prefix {
	out := make([]Prefix, len(specialPrefixes))
	copy(out, specialPrefixes)
	return out
}
