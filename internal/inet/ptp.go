package inet

// Point-to-point link addressing (paper §3, §4.2).
//
// The two interfaces on a layer-3 point-to-point link are numbered out of
// the same /30 or /31 prefix. In a /30 only the middle two addresses are
// usable hosts (base and broadcast are reserved); RFC 3021 allows both
// addresses of a /31 to be hosts. The other-side heuristic below is the
// paper's §4.2 verbatim: given the set of all addresses observed in a
// dataset (including discarded traces), decide for each address whether it
// was numbered from a /30 or a /31 and return its putative other side.

// Slash31Other returns the other host address if a is numbered from a /31.
func Slash31Other(a Addr) Addr { return a ^ 1 }

// Slash30Other returns the other host address if a is numbered from a /30.
// It is only meaningful when a is a valid /30 host (IsSlash30Host).
func Slash30Other(a Addr) Addr { return a ^ 3 }

// IsSlash30Host reports whether a could be a host address in its /30,
// i.e. it is one of the two middle addresses.
func IsSlash30Host(a Addr) bool {
	low := a & 3
	return low == 1 || low == 2
}

// Slash30Reserved returns the two reserved (network and broadcast)
// addresses of a's /30 prefix.
func Slash30Reserved(a Addr) (network, broadcast Addr) {
	base := a &^ 3
	return base, base | 3
}

// PtPKind classifies how an observed address was numbered.
type PtPKind uint8

const (
	// PtP30 means the address is treated as a /30 host.
	PtP30 PtPKind = iota
	// PtP31 means the address is treated as a /31 host.
	PtP31
)

// OtherSide is the result of the §4.2 heuristic for a single address.
type OtherSide struct {
	Addr  Addr
	Other Addr
	Kind  PtPKind
}

// AddrSet is a set of observed interface addresses.
type AddrSet map[Addr]struct{}

// NewAddrSet builds a set from a slice of addresses.
func NewAddrSet(addrs []Addr) AddrSet {
	s := make(AddrSet, len(addrs))
	for _, a := range addrs {
		s[a] = struct{}{}
	}
	return s
}

// Contains reports set membership.
func (s AddrSet) Contains(a Addr) bool {
	_, ok := s[a]
	return ok
}

// Add inserts an address.
func (s AddrSet) Add(a Addr) { s[a] = struct{}{} }

// InferOtherSide applies the paper's §4.2 heuristic to a single address
// given the full set of addresses seen anywhere in the dataset:
//
//   - a non-host address in a /30 (the /30's network or broadcast address)
//     must have been numbered from a /31, so its other side is from its
//     /31 prefix;
//   - a valid /30 host whose /30 network or broadcast address was itself
//     observed in the dataset must also come from a /31 (a /30 numbering
//     would leave those addresses unused);
//   - otherwise the address is assumed to come from a /30.
func InferOtherSide(a Addr, seen AddrSet) OtherSide {
	if !IsSlash30Host(a) {
		return OtherSide{Addr: a, Other: Slash31Other(a), Kind: PtP31}
	}
	network, broadcast := Slash30Reserved(a)
	if seen.Contains(network) || seen.Contains(broadcast) {
		return OtherSide{Addr: a, Other: Slash31Other(a), Kind: PtP31}
	}
	return OtherSide{Addr: a, Other: Slash30Other(a), Kind: PtP30}
}

// OtherSides runs InferOtherSide over every address in the set and returns
// the mapping address → other side. The returned map is keyed by the
// observed address only (the other side is added as a key only if it was
// itself observed).
func OtherSides(seen AddrSet) map[Addr]OtherSide {
	out := make(map[Addr]OtherSide, len(seen))
	for a := range seen {
		out[a] = InferOtherSide(a, seen)
	}
	return out
}

// Slash31Fraction reports the fraction of addresses in the set that the
// heuristic classifies as /31-numbered. The paper reports 40.4% for its
// October 2015 Ark dataset (§4.2).
func Slash31Fraction(seen AddrSet) float64 {
	if len(seen) == 0 {
		return 0
	}
	n31 := 0
	for a := range seen {
		if InferOtherSide(a, seen).Kind == PtP31 {
			n31++
		}
	}
	return float64(n31) / float64(len(seen))
}
