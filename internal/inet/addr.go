// Package inet provides the IPv4 address and prefix primitives that the
// rest of the repository is built on: compact 32-bit addresses, CIDR
// prefixes, the /30–/31 point-to-point arithmetic from RFC 3021 that the
// paper's other-side heuristic (§4.2) depends on, and the special-purpose
// address registry from RFC 6890 used to exclude private/shared addresses
// from neighbour sets (§4.3).
package inet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored in host byte order. The zero value is
// 0.0.0.0, which is never a valid interface address in this repository and
// doubles as "no address".
type Addr uint32

// ParseAddr parses dotted-quad notation. It rejects anything net.ParseIP
// would accept but that is not a plain IPv4 dotted quad (no octal, no
// shorthand, no IPv6).
func ParseAddr(s string) (Addr, error) {
	var a uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val == -1 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("inet: octet out of range in %q", s)
			}
		case c == '.':
			if val == -1 || part == 3 {
				return 0, fmt.Errorf("inet: malformed address %q", s)
			}
			a = a<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("inet: invalid character %q in %q", c, s)
		}
	}
	if part != 3 || val == -1 {
		return 0, fmt.Errorf("inet: malformed address %q", s)
	}
	a = a<<8 | uint32(val)
	return Addr(a), nil
}

// MustParseAddr is ParseAddr for tests and tables of constants; it panics
// on malformed input.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	var b [15]byte
	return string(a.appendTo(b[:0]))
}

func (a Addr) appendTo(b []byte) []byte {
	for shift := 24; shift >= 0; shift -= 8 {
		b = strconv.AppendUint(b, uint64(a>>shift)&0xff, 10)
		if shift > 0 {
			b = append(b, '.')
		}
	}
	return b
}

// IsZero reports whether a is the zero (absent) address.
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is an IPv4 CIDR prefix. Bits beyond Len are zero by construction
// for any Prefix produced by this package.
type Prefix struct {
	Base Addr
	Len  int
}

// ParsePrefix parses "a.b.c.d/len". The base address is masked to the
// prefix length so that equal prefixes compare equal.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("inet: prefix %q missing '/'", s)
	}
	base, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("inet: bad prefix length in %q", s)
	}
	return PrefixFrom(base, n), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFrom builds a prefix from an address and length, masking the
// address down to the prefix base.
func PrefixFrom(a Addr, length int) Prefix {
	return Prefix{Base: a.Mask(length), Len: length}
}

// Mask zeroes the host bits of a for the given prefix length.
func (a Addr) Mask(length int) Addr {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return a
	}
	return a &^ (1<<(32-uint(length)) - 1)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a.Mask(p.Len) == p.Base }

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Len > q.Len {
		p, q = q, p
	}
	return q.Base.Mask(p.Len) == p.Base
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.Len)) }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Base + Addr(p.NumAddrs()-1) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	var b [18]byte
	out := p.Base.appendTo(b[:0])
	out = append(out, '/')
	out = strconv.AppendInt(out, int64(p.Len), 10)
	return string(out)
}

// IsValid reports whether the prefix length is in range and the base is
// properly masked.
func (p Prefix) IsValid() bool {
	return p.Len >= 0 && p.Len <= 32 && p.Base.Mask(p.Len) == p.Base
}
