package inet

import (
	"testing"
	"testing/quick"
)

func TestSlash30Host(t *testing.T) {
	base := MustParseAddr("198.71.46.180") // low bits 180&3 == 0
	if IsSlash30Host(base) {
		t.Error(".180 (x.0 in /30) should not be a /30 host")
	}
	if !IsSlash30Host(base+1) || !IsSlash30Host(base+2) {
		t.Error("middle addresses should be /30 hosts")
	}
	if IsSlash30Host(base + 3) {
		t.Error("broadcast should not be a /30 host")
	}
}

func TestOtherSideHeuristic(t *testing.T) {
	// Paper example (§3.2): the other side of 198.71.46.180 in a /31 is
	// 198.71.46.181. .180 is a /30 network address, so it must be /31.
	a := MustParseAddr("198.71.46.180")
	seen := NewAddrSet([]Addr{a})
	os := InferOtherSide(a, seen)
	if os.Kind != PtP31 || os.Other != MustParseAddr("198.71.46.181") {
		t.Fatalf("got %+v; want /31 other .181", os)
	}

	// A valid /30 host with no reserved addresses observed -> /30.
	b := MustParseAddr("109.105.98.10") // 10&3 == 2, valid host
	seen = NewAddrSet([]Addr{b})
	os = InferOtherSide(b, seen)
	if os.Kind != PtP30 || os.Other != MustParseAddr("109.105.98.9") {
		t.Fatalf("got %+v; want /30 other .9", os)
	}

	// Same host address, but its /30 network address appears in the
	// dataset -> must be /31-numbered.
	seen = NewAddrSet([]Addr{b, MustParseAddr("109.105.98.8")})
	os = InferOtherSide(b, seen)
	if os.Kind != PtP31 || os.Other != MustParseAddr("109.105.98.11") {
		t.Fatalf("got %+v; want /31 other .11", os)
	}

	// Broadcast observed also forces /31.
	c := MustParseAddr("4.69.201.117") // 117&3 == 1
	seen = NewAddrSet([]Addr{c, MustParseAddr("4.69.201.119")})
	os = InferOtherSide(c, seen)
	if os.Kind != PtP31 || os.Other != MustParseAddr("4.69.201.116") {
		t.Fatalf("got %+v; want /31 other .116", os)
	}
}

func TestOtherSideInvolution(t *testing.T) {
	// For any address, applying the /31 (resp. /30) other-side function
	// twice returns the original address.
	f := func(a uint32) bool {
		x := Addr(a)
		return Slash31Other(Slash31Other(x)) == x && Slash30Other(Slash30Other(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOtherSidePairConsistency(t *testing.T) {
	// If both sides of a link appear in the dataset and both are /30
	// hosts of the same /30 with no reserved address present, the
	// heuristic must pair them with each other.
	a := MustParseAddr("109.105.98.9")
	b := MustParseAddr("109.105.98.10")
	seen := NewAddrSet([]Addr{a, b})
	if InferOtherSide(a, seen).Other != b || InferOtherSide(b, seen).Other != a {
		t.Fatal("consistent /30 pair not mutually matched")
	}
}

func TestOtherSidesAndFraction(t *testing.T) {
	seen := NewAddrSet([]Addr{
		MustParseAddr("10.0.0.1"), // /30 host, alone -> /30
		MustParseAddr("10.0.1.0"), // /30 network -> /31
		MustParseAddr("10.0.2.3"), // /30 broadcast -> /31
	})
	m := OtherSides(seen)
	if len(m) != 3 {
		t.Fatalf("len = %d", len(m))
	}
	got := Slash31Fraction(seen)
	want := 2.0 / 3.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Slash31Fraction = %v; want %v", got, want)
	}
	if Slash31Fraction(AddrSet{}) != 0 {
		t.Error("empty set fraction should be 0")
	}
}

func TestIsSpecial(t *testing.T) {
	special := []string{
		"10.1.2.3", "172.16.0.1", "172.31.255.255", "192.168.100.1",
		"100.64.0.1", "100.127.255.254", "127.0.0.1", "169.254.10.10",
		"224.0.0.5", "240.0.0.1", "255.255.255.255", "0.1.2.3",
		"192.0.2.17", "198.51.100.9", "203.0.113.200", "198.18.5.5",
	}
	for _, s := range special {
		if !IsSpecial(MustParseAddr(s)) {
			t.Errorf("%s should be special", s)
		}
	}
	public := []string{
		"8.8.8.8", "1.1.1.1", "172.32.0.1", "100.128.0.1", "11.0.0.1",
		"128.91.238.222", "192.0.3.1", "198.20.0.1", "198.52.100.1",
		"9.255.255.255", "223.255.255.255",
	}
	for _, s := range public {
		if IsSpecial(MustParseAddr(s)) {
			t.Errorf("%s should not be special", s)
		}
	}
}

func TestSpecialPrefixesCopy(t *testing.T) {
	p := SpecialPrefixes()
	if len(p) == 0 {
		t.Fatal("registry empty")
	}
	p[0] = Prefix{}
	if SpecialPrefixes()[0] == (Prefix{}) {
		t.Error("SpecialPrefixes must return a copy")
	}
}
