package inet

import (
	"fmt"
	"strconv"
	"strings"
)

// ASN is an autonomous system number. 0 is "no AS" throughout the
// repository (never a valid origin).
type ASN uint32

// String renders the ASN in the conventional "AS64500" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// IsZero reports whether the ASN is the absent value.
func (a ASN) IsZero() bool { return a == 0 }

// ParseASN accepts "64500", "AS64500" or "as64500".
func ParseASN(s string) (ASN, error) {
	t := s
	if len(t) >= 2 && (t[0] == 'A' || t[0] == 'a') && (t[1] == 'S' || t[1] == 's') {
		t = t[2:]
	}
	n, err := strconv.ParseUint(strings.TrimSpace(t), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("inet: bad ASN %q", s)
	}
	return ASN(n), nil
}

// MustParseASN is ParseASN that panics on malformed input.
func MustParseASN(s string) ASN {
	a, err := ParseASN(s)
	if err != nil {
		panic(err)
	}
	return a
}
