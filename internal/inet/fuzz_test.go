package inet

import "testing"

// Fuzzing guards the parsers against panics and round-trip corruption;
// `go test` runs the seed corpus, `go test -fuzz=FuzzParseAddr` explores.

func FuzzParseAddr(f *testing.F) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "1.2.3.4", "999.1.1.1", "..", "1.2.3.4.5", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip broke: %q -> %v -> %v (%v)", s, a, back, err)
		}
	})
}

func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "1.2.3.4/32", "1.2.3.4/33", "x/8", "1.2.3.4/"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if !p.IsValid() {
			t.Fatalf("accepted invalid prefix %q -> %v", s, p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip broke: %q -> %v -> %v (%v)", s, p, back, err)
		}
	})
}

func FuzzParseASN(f *testing.F) {
	for _, s := range []string{"0", "AS1", "as4294967295", "4294967296", "-1", "ASx"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseASN(s)
		if err != nil {
			return
		}
		back, err := ParseASN(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip broke: %q -> %v -> %v (%v)", s, a, back, err)
		}
	})
}
