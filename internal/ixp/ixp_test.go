package ixp

import (
	"bytes"
	"strings"
	"testing"

	"mapit/internal/inet"
)

const sample = `# merged PeeringDB + PCH style directory
prefix|80.249.208.0/21|AMS-IX
prefix|206.126.236.0/22|Equinix-Ashburn
asn|6777|AMS-IX
`

func parse(t *testing.T, s string) *Directory {
	t.Helper()
	d, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMembership(t *testing.T) {
	d := parse(t, sample)
	if !d.IsIXPAddr(inet.MustParseAddr("80.249.209.1")) {
		t.Error("AMS-IX address not recognised")
	}
	if d.IsIXPAddr(inet.MustParseAddr("80.249.216.1")) {
		t.Error("address outside /21 recognised")
	}
	name, ok := d.IXPOf(inet.MustParseAddr("206.126.237.9"))
	if !ok || name != "Equinix-Ashburn" {
		t.Errorf("IXPOf = %q, %v", name, ok)
	}
	if !d.IsIXPASN(6777) || d.IsIXPASN(3356) {
		t.Error("ASN membership wrong")
	}
	if d.NumPrefixes() != 2 || d.NumASNs() != 1 {
		t.Errorf("counts = %d, %d", d.NumPrefixes(), d.NumASNs())
	}
}

func TestNilDirectory(t *testing.T) {
	var d *Directory
	if d.IsIXPAddr(inet.MustParseAddr("80.249.209.1")) || d.IsIXPASN(6777) {
		t.Error("nil directory must report nothing")
	}
	if _, ok := d.IXPOf(inet.MustParseAddr("80.249.209.1")); ok {
		t.Error("nil IXPOf")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d := parse(t, sample)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPrefixes() != 2 || back.NumASNs() != 1 {
		t.Errorf("round trip counts = %d, %d", back.NumPrefixes(), back.NumASNs())
	}
	if !back.IsIXPAddr(inet.MustParseAddr("80.249.209.1")) {
		t.Error("round trip lost prefix")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"prefix|nope|X", "asn|nope|X", "what|1|2", "prefix|1.2.3.4/8"}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestFreeze(t *testing.T) {
	d := parse(t, sample)
	d.Freeze()
	if !d.IsIXPAddr(inet.MustParseAddr("80.249.209.1")) {
		t.Error("frozen lookup lost a prefix")
	}
	if name, ok := d.IXPOf(inet.MustParseAddr("80.249.209.1")); !ok || name == "" {
		t.Errorf("frozen IXPOf = %q, %v", name, ok)
	}
	if d.IsIXPAddr(inet.MustParseAddr("9.9.9.9")) {
		t.Error("frozen lookup resolved non-IXP space")
	}
	// AddPrefix thaws; the addition must be visible immediately.
	d.AddPrefix(inet.MustParsePrefix("203.0.113.0/24"), "NEW-IX")
	if name, ok := d.IXPOf(inet.MustParseAddr("203.0.113.5")); !ok || name != "NEW-IX" {
		t.Errorf("post-thaw IXPOf = %q, %v", name, ok)
	}
	d.Freeze()
	if name, _ := d.IXPOf(inet.MustParseAddr("203.0.113.5")); name != "NEW-IX" {
		t.Error("refreeze lost the added prefix")
	}
	// Freeze is nil-safe like every query.
	var nilDir *Directory
	nilDir.Freeze()
}
