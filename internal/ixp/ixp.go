// Package ixp tracks Internet-exchange-point address space, reproducing
// the PeeringDB + Packet Clearing House prefix lists the paper combines
// (§5). MAP-IT uses IXP knowledge two ways: IXP peering-LAN addresses are
// multipoint (not /30–/31), so inferences on them must not trigger
// other-side IP2AS updates (§4.4.2 fn7); and IXP route-server ASNs never
// count as evidence of an AS switch.
package ixp

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync/atomic"

	"mapit/internal/inet"
	"mapit/internal/iptrie"
)

// Directory is the merged IXP knowledge base. Like bgp.Table it is
// built once and queried many times: Freeze compiles the prefix trie
// into the flat multibit form, AddPrefix thaws it again. Queries are
// safe for concurrent use; mutation is not.
type Directory struct {
	prefixes *iptrie.Trie[string] // prefix -> IXP name
	asns     map[inet.ASN]string  // route-server / IXP ASN -> IXP name
	compiled atomic.Pointer[iptrie.Compiled[string]]
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		prefixes: iptrie.New[string](),
		asns:     make(map[inet.ASN]string),
	}
}

// Parse reads the repository's IXP line format:
//
//	prefix|<cidr>|<ixp name>
//	asn|<asn>|<ixp name>
func Parse(r io.Reader) (*Directory, error) {
	d := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("ixp: line %d: want 3 fields", lineno)
		}
		switch parts[0] {
		case "prefix":
			p, err := inet.ParsePrefix(parts[1])
			if err != nil {
				return nil, fmt.Errorf("ixp: line %d: %v", lineno, err)
			}
			d.AddPrefix(p, parts[2])
		case "asn":
			a, err := inet.ParseASN(parts[1])
			if err != nil {
				return nil, fmt.Errorf("ixp: line %d: %v", lineno, err)
			}
			d.AddASN(a, parts[2])
		default:
			return nil, fmt.Errorf("ixp: line %d: unrecognised record %q", lineno, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Write emits the directory in the format Parse reads.
func (d *Directory) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	d.prefixes.Walk(func(p inet.Prefix, name string) bool {
		_, err = fmt.Fprintf(bw, "prefix|%s|%s\n", p, name)
		return err == nil
	})
	if err != nil {
		return err
	}
	for a, name := range d.asns {
		if _, err := fmt.Fprintf(bw, "asn|%d|%s\n", uint32(a), name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AddPrefix registers an IXP peering-LAN prefix. It thaws a frozen
// directory; Freeze again after the build phase.
func (d *Directory) AddPrefix(p inet.Prefix, name string) {
	d.prefixes.Insert(p, name)
	d.compiled.Store(nil)
}

// AddASN registers an IXP-operated ASN (route server etc).
func (d *Directory) AddASN(a inet.ASN, name string) { d.asns[a] = name }

// Freeze compiles the prefix trie into its read-only multibit form
// (see iptrie.Compiled). Idempotent and race-safe the same way as
// bgp.Table.Freeze; nil-safe like the query methods.
func (d *Directory) Freeze() {
	if d == nil || d.compiled.Load() != nil {
		return
	}
	d.compiled.CompareAndSwap(nil, d.prefixes.Compile())
}

// IsIXPAddr reports whether the address falls in a known IXP prefix.
func (d *Directory) IsIXPAddr(a inet.Addr) bool {
	_, ok := d.IXPOf(a)
	return ok
}

// IXPOf returns the IXP name owning the address, if any.
func (d *Directory) IXPOf(a inet.Addr) (string, bool) {
	if d == nil {
		return "", false
	}
	if c := d.compiled.Load(); c != nil {
		return c.Lookup(a)
	}
	return d.prefixes.Lookup(a)
}

// IsIXPASN reports whether the ASN belongs to an IXP operator.
func (d *Directory) IsIXPASN(a inet.ASN) bool {
	if d == nil {
		return false
	}
	_, ok := d.asns[a]
	return ok
}

// NumPrefixes returns the number of registered prefixes.
func (d *Directory) NumPrefixes() int { return d.prefixes.Len() }

// NumASNs returns the number of registered ASNs.
func (d *Directory) NumASNs() int { return len(d.asns) }

// WalkPrefixes visits every registered (prefix, IXP name) pair in trie
// order, stopping early if fn returns false. Nil-safe.
func (d *Directory) WalkPrefixes(fn func(p inet.Prefix, name string) bool) {
	if d == nil {
		return
	}
	d.prefixes.Walk(fn)
}

// ASNs returns the registered IXP-operated ASNs in ascending order.
// Nil-safe.
func (d *Directory) ASNs() []inet.ASN {
	if d == nil {
		return nil
	}
	out := make([]inet.ASN, 0, len(d.asns))
	for a := range d.asns {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// ASNName returns the IXP name an ASN is registered under.
func (d *Directory) ASNName(a inet.ASN) (string, bool) {
	if d == nil {
		return "", false
	}
	name, ok := d.asns[a]
	return name, ok
}
