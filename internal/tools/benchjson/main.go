// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result:
//
//	go test -bench=Fixpoint -benchmem ./internal/core |
//	    go run ./internal/tools/benchjson > BENCH_fixpoint.json
//
// Each object carries name (with the -GOMAXPROCS suffix stripped),
// iterations, ns_per_op, and — when -benchmem was set — bytes_per_op
// and allocs_per_op. Context lines (goos, goarch, pkg, cpu) become
// top-level metadata so snapshots record the machine they ran on.
// Non-benchmark lines (PASS, ok, test output) are ignored.
//
// With -check FILE the command instead validates a committed snapshot:
// the file must decode into the report schema and carry at least one
// result. CI runs it against every BENCH_*.json so a hand-edited or
// truncated snapshot fails the build. -require KEY[,KEY...] tightens
// -check: each named extra metric (a b.ReportMetric unit string, e.g.
// "lookups/s") must appear in at least one result with a positive
// finite value, so a snapshot that silently lost its headline metric —
// the serving snapshot's lookups/s column, say — fails the build too.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra carries b.ReportMetric custom metrics (and MB/s), keyed by
	// their unit string — e.g. "peak-heap-B" from the spill-ingest
	// benchmark, or "I2*-precision%" from the evaluation suite.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// report is the full document: run context plus every result.
type report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	checkPath := flag.String("check", "", "validate a committed snapshot file instead of converting stdin")
	requireKeys := flag.String("require", "", "with -check: comma-separated extra metric keys that must be present with positive finite values")
	flag.Parse()
	if *checkPath != "" {
		if err := check(*checkPath, splitKeys(*requireKeys)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		return
	}
	if *requireKeys != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -require is only meaningful with -check")
		os.Exit(2)
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// splitKeys parses the -require list; empty input means no requirement.
func splitKeys(s string) []string {
	if s == "" {
		return nil
	}
	keys := strings.Split(s, ",")
	for i := range keys {
		keys[i] = strings.TrimSpace(keys[i])
	}
	return keys
}

// check validates that path holds a well-formed snapshot: strict
// report-schema JSON with at least one result, each with a name and a
// positive ns/op. Each required key must additionally appear as an
// extra metric with a positive finite value in at least one result.
func check(path string, require []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rep report
	if err := dec.Decode(&rep); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after report document")
	}
	if len(rep.Results) == 0 {
		return errors.New("no benchmark results")
	}
	for i, r := range rep.Results {
		if r.Name == "" {
			return fmt.Errorf("result %d: empty name", i)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("result %d (%s): ns_per_op %v not positive", i, r.Name, r.NsPerOp)
		}
	}
	for _, key := range require {
		if key == "" {
			return errors.New("-require: empty metric key")
		}
		found := false
		for _, r := range rep.Results {
			v, ok := r.Extra[key]
			if !ok {
				continue
			}
			if !(v > 0) || math.IsInf(v, 1) {
				return fmt.Errorf("result %s: required metric %q = %v not positive finite", r.Name, key, v)
			}
			found = true
		}
		if !found {
			return fmt.Errorf("required metric %q missing from every result", key)
		}
	}
	return nil
}

func parse(r io.Reader) (*report, error) {
	rep := &report{Results: []result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. a "Benchmark...: log output" test line
			}
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFixpointIncremental-4  842  1279764 ns/op  81448 B/op  59 allocs/op
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return result{}, false
	}
	var res result
	res.Name = fields[0]
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	var err error
	if res.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return result{}, false
	}
	if res.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return result{}, false
	}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			// Custom b.ReportMetric columns and MB/s throughput.
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[fields[i+1]] = v
		}
	}
	return res, true
}
