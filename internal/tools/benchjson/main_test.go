package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mapit/internal/core
cpu: AMD EPYC 7B13
BenchmarkFixpointFull-4          	     391	   2905128 ns/op	  115368 B/op	      67 allocs/op
BenchmarkFixpointIncremental-4   	     842	   1279764 ns/op	   81448 B/op	      59 allocs/op
BenchmarkStateHash       	   12000	     98000 ns/op
PASS
ok  	mapit/internal/core	5.123s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" ||
		rep.Pkg != "mapit/internal/core" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("metadata = %q %q %q %q", rep.Goos, rep.Goarch, rep.Pkg, rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	full := rep.Results[0]
	if full.Name != "BenchmarkFixpointFull" || full.Procs != 4 ||
		full.Iterations != 391 || full.NsPerOp != 2905128 ||
		full.BytesPerOp != 115368 || full.AllocsPerOp != 67 {
		t.Errorf("full = %+v", full)
	}
	inc := rep.Results[1]
	if inc.Name != "BenchmarkFixpointIncremental" || inc.AllocsPerOp != 59 {
		t.Errorf("inc = %+v", inc)
	}
	// No -benchmem columns: bytes/allocs stay zero, no -procs suffix.
	sh := rep.Results[2]
	if sh.Name != "BenchmarkStateHash" || sh.Procs != 0 ||
		sh.NsPerOp != 98000 || sh.BytesPerOp != 0 || sh.AllocsPerOp != 0 {
		t.Errorf("statehash = %+v", sh)
	}
}

func TestCheck(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		path := t.TempDir() + "/bench.json"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// A round-trip through parse + encode must validate: this is the
	// exact shape of the committed BENCH_*.json snapshots.
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := check(write(t, string(blob))); err != nil {
		t.Errorf("round-tripped report failed check: %v", err)
	}

	bad := map[string]string{
		"empty results":  `{"results": []}`,
		"not json":       `PASS`,
		"unknown field":  `{"bogus": 1, "results": [{"name": "B", "iterations": 1, "ns_per_op": 5}]}`,
		"missing name":   `{"results": [{"iterations": 1, "ns_per_op": 5}]}`,
		"zero ns_per_op": `{"results": [{"name": "B", "iterations": 1, "ns_per_op": 0}]}`,
		"trailing data":  `{"results": [{"name": "B", "iterations": 1, "ns_per_op": 5}]} {}`,
	}
	for name, body := range bad {
		if err := check(write(t, body)); err == nil {
			t.Errorf("%s: check accepted invalid snapshot", name)
		}
	}
	if err := check(t.TempDir() + "/missing.json"); err == nil {
		t.Error("check accepted a missing file")
	}
}

func TestParseIgnoresJunk(t *testing.T) {
	rep, err := parse(strings.NewReader("random line\nBenchmarkBroken abc def\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("got %d results, want 0", len(rep.Results))
	}
}
