package main

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mapit/internal/core
cpu: AMD EPYC 7B13
BenchmarkFixpointFull-4          	     391	   2905128 ns/op	  115368 B/op	      67 allocs/op
BenchmarkFixpointIncremental-4   	     842	   1279764 ns/op	   81448 B/op	      59 allocs/op
BenchmarkStateHash       	   12000	     98000 ns/op
PASS
ok  	mapit/internal/core	5.123s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" ||
		rep.Pkg != "mapit/internal/core" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("metadata = %q %q %q %q", rep.Goos, rep.Goarch, rep.Pkg, rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	full := rep.Results[0]
	if full.Name != "BenchmarkFixpointFull" || full.Procs != 4 ||
		full.Iterations != 391 || full.NsPerOp != 2905128 ||
		full.BytesPerOp != 115368 || full.AllocsPerOp != 67 {
		t.Errorf("full = %+v", full)
	}
	inc := rep.Results[1]
	if inc.Name != "BenchmarkFixpointIncremental" || inc.AllocsPerOp != 59 {
		t.Errorf("inc = %+v", inc)
	}
	// No -benchmem columns: bytes/allocs stay zero, no -procs suffix.
	sh := rep.Results[2]
	if sh.Name != "BenchmarkStateHash" || sh.Procs != 0 ||
		sh.NsPerOp != 98000 || sh.BytesPerOp != 0 || sh.AllocsPerOp != 0 {
		t.Errorf("statehash = %+v", sh)
	}
}

func TestCheck(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		path := t.TempDir() + "/bench.json"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// A round-trip through parse + encode must validate: this is the
	// exact shape of the committed BENCH_*.json snapshots.
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := check(write(t, string(blob)), nil); err != nil {
		t.Errorf("round-tripped report failed check: %v", err)
	}

	bad := map[string]string{
		"empty results":  `{"results": []}`,
		"not json":       `PASS`,
		"unknown field":  `{"bogus": 1, "results": [{"name": "B", "iterations": 1, "ns_per_op": 5}]}`,
		"missing name":   `{"results": [{"iterations": 1, "ns_per_op": 5}]}`,
		"zero ns_per_op": `{"results": [{"name": "B", "iterations": 1, "ns_per_op": 0}]}`,
		"trailing data":  `{"results": [{"name": "B", "iterations": 1, "ns_per_op": 5}]} {}`,
	}
	for name, body := range bad {
		if err := check(write(t, body), nil); err == nil {
			t.Errorf("%s: check accepted invalid snapshot", name)
		}
	}
	if err := check(t.TempDir()+"/missing.json", nil); err == nil {
		t.Error("check accepted a missing file")
	}
}

func TestParseIgnoresJunk(t *testing.T) {
	rep, err := parse(strings.NewReader("random line\nBenchmarkBroken abc def\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("got %d results, want 0", len(rep.Results))
	}
}

// TestParseBenchLineEdges pins the single-line parser's rejection and
// tolerance behaviour field by field.
func TestParseBenchLineEdges(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
		want result
	}{
		{
			name: "too few fields",
			line: "BenchmarkX 100",
			ok:   false,
		},
		{
			name: "unit in wrong column",
			line: "BenchmarkX 100 B/op 55",
			ok:   false,
		},
		{
			name: "non-numeric iterations",
			line: "BenchmarkX abc 500 ns/op",
			ok:   false,
		},
		{
			name: "non-numeric ns per op",
			line: "BenchmarkX 100 fast ns/op",
			ok:   false,
		},
		{
			name: "scientific notation ns per op",
			line: "BenchmarkX-8 2 1.5e+09 ns/op",
			ok:   true,
			want: result{Name: "BenchmarkX", Procs: 8, Iterations: 2, NsPerOp: 1.5e9},
		},
		{
			name: "non-numeric procs suffix kept in name",
			line: "BenchmarkX-fast 100 500 ns/op",
			ok:   true,
			want: result{Name: "BenchmarkX-fast", Iterations: 100, NsPerOp: 500},
		},
		{
			name: "non-standard unit lands in Extra",
			line: "BenchmarkX 100 500 ns/op 12 MB/s",
			ok:   true,
			want: result{Name: "BenchmarkX", Iterations: 100, NsPerOp: 500,
				Extra: map[string]float64{"MB/s": 12}},
		},
		{
			name: "non-numeric memory column skipped",
			line: "BenchmarkX 100 500 ns/op oops B/op 7 allocs/op",
			ok:   true,
			want: result{Name: "BenchmarkX", Iterations: 100, NsPerOp: 500, AllocsPerOp: 7},
		},
		{
			name: "dangling value without unit ignored",
			line: "BenchmarkX 100 500 ns/op 99",
			ok:   true,
			want: result{Name: "BenchmarkX", Iterations: 100, NsPerOp: 500},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBenchLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestParseRejectsOversizedLine: the scanner caps lines at 1 MiB; a
// longer line must surface as an error, not silent truncation.
func TestParseRejectsOversizedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("Benchmark" + strings.Repeat("x", 2*1024*1024))); err == nil {
		t.Fatal("oversized line accepted")
	}
}

// TestParseEmptyInputEncodesEmptyResults: an empty run still produces a
// document whose results field is [], not null — check() then rejects
// it, which is the contract CI relies on.
func TestParseEmptyInputEncodesEmptyResults(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"results":[]`) {
		t.Errorf("empty report marshals as %s, want explicit empty results array", blob)
	}
	path := t.TempDir() + "/empty.json"
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(path, nil); err == nil {
		t.Error("check accepted a result-free snapshot")
	}
}

// TestParseCustomMetrics: b.ReportMetric columns and MB/s land in
// Extra, keyed by unit, without disturbing the standard columns.
func TestParseCustomMetrics(t *testing.T) {
	line := "BenchmarkIngestSpill-4   1  41234567890 ns/op  245.1 MB/s  " +
		"214748364 peak-heap-B  1234567 spilled-B  99.5 I2*-precision%  8 B/op  2 allocs/op"
	res, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Name != "BenchmarkIngestSpill" || res.Procs != 4 || res.BytesPerOp != 8 || res.AllocsPerOp != 2 {
		t.Errorf("standard columns wrong: %+v", res)
	}
	want := map[string]float64{
		"MB/s": 245.1, "peak-heap-B": 214748364, "spilled-B": 1234567, "I2*-precision%": 99.5,
	}
	for k, v := range want {
		if res.Extra[k] != v {
			t.Errorf("Extra[%q] = %v, want %v", k, res.Extra[k], v)
		}
	}
	if len(res.Extra) != len(want) {
		t.Errorf("Extra = %v, want exactly %v", res.Extra, want)
	}

	// Snapshots carrying Extra must pass -check.
	rep := &report{Results: []result{res}}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(path, nil); err != nil {
		t.Errorf("snapshot with Extra failed check: %v", err)
	}
}

func TestCheckRequire(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		path := t.TempDir() + "/bench.json"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	snapshot := `{"results": [
		{"name": "BenchmarkServe", "iterations": 10, "ns_per_op": 15,
		 "extra": {"lookups/s": 68000000}},
		{"name": "BenchmarkSnapshotBuild", "iterations": 5, "ns_per_op": 120000}
	]}`
	path := write(t, snapshot)
	for _, req := range [][]string{nil, {"lookups/s"}} {
		if err := check(path, req); err != nil {
			t.Errorf("require %v: %v", req, err)
		}
	}
	for name, tc := range map[string]struct {
		body    string
		require []string
	}{
		"missing metric": {snapshot, []string{"no-such-metric"}},
		"empty key":      {snapshot, []string{""}},
		"zero value": {`{"results": [{"name": "B", "iterations": 1, "ns_per_op": 5,
			"extra": {"lookups/s": 0}}]}`, []string{"lookups/s"}},
		"negative value": {`{"results": [{"name": "B", "iterations": 1, "ns_per_op": 5,
			"extra": {"lookups/s": -3}}]}`, []string{"lookups/s"}},
	} {
		if err := check(write(t, tc.body), tc.require); err == nil {
			t.Errorf("%s: check accepted the snapshot", name)
		}
	}
	// A required metric present in one result satisfies the requirement
	// even though other results lack it (the build bench has no
	// lookups/s column) — but every listed key must be satisfied.
	if err := check(path, []string{"lookups/s", "absent"}); err == nil {
		t.Error("check accepted a partially satisfied -require list")
	}
}

func TestSplitKeys(t *testing.T) {
	if got := splitKeys(""); got != nil {
		t.Errorf("splitKeys(\"\") = %v", got)
	}
	if got := splitKeys("lookups/s, peak-heap-B"); !reflect.DeepEqual(got, []string{"lookups/s", "peak-heap-B"}) {
		t.Errorf("splitKeys = %v", got)
	}
}
