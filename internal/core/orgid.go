package core

import (
	"slices"

	"mapit/internal/inet"
)

// internIndex is the dense-ID view of a run's state, built once after
// the neighbour sets: interned ASNs and organisations, the flat
// neighbour index the §4.4.1 election iterates, and the reverse
// dependency index the dirty-set engine marks through. All IDs are
// int32; -1 means "absent" (unannounced mapping, IXP neighbour, address
// outside the interface universe).
//
// Identifier spaces:
//   - addrIdx: position of an address in the sorted addrs slice.
//   - halfIdx: addrIdx*2 + Dir, so sorting half indexes sorts by
//     (address, direction) — exactly halfCmp order.
//   - asnID: index into asnOf. The initial universe is every distinct
//     announced base mapping; committed overrides only ever carry ASNs
//     elected out of neighbour tallies over that universe, so the
//     interner is closed under the algorithm (internASN still appends
//     defensively, in deterministic commit order).
//   - orgID: dense organisation id. orgOfASN maps asnID → orgID, so the
//     election's sibling pooling (§4.9) is one array load per neighbour
//     instead of a union-find walk.
type internIndex struct {
	idxOfAddr map[inet.Addr]int32
	asnOf     []inet.ASN         // asnID → ASN
	idOfASN   map[inet.ASN]int32 // ASN → asnID
	orgOfASN  []int32            // asnID → orgID
	orgIDOf   map[inet.ASN]int32 // canonical ASN → orgID
	orgCount  int

	baseID []int32 // addrIdx → asnID of the base mapping (-1 unannounced)
	mapID  []int32 // halfIdx → asnID of the committed mapping (-1 unannounced)

	// Flat neighbour index: for an eligible half h,
	// nbrFlat[nbrOff[h]:nbrOff[h+1]] holds one entry per member of N(h):
	// the halfIdx its mapping is read at ({n, h.Dir.Opposite()}, §3.2).
	// IXP-numbered neighbours, which count toward |N| but never toward
	// an AS (§4.4.2 fn7), are stored bit-complemented (^halfIdx, always
	// negative): elections skip every negative entry, while the §4.4.4
	// resolution can recover the half with another complement.
	// Non-eligible halves get an empty range, which doubles as the
	// eligibility test.
	nbrOff  []int32
	nbrFlat []int32

	// Reverse dependency index: depFlat[depOff[h]:depOff[h+1]] lists the
	// eligible halves whose election reads half h's committed mapping.
	// Empty for IXP-numbered addresses — elections skip their mappings.
	depOff  []int32
	depFlat []int32

	// halvesIdx is st.halves as half indexes — the full-pass scan list.
	halvesIdx []int32

	// Flat topology mirrors for the per-pass resolution loops:
	// otherIdx[a] is the addrIdx of a's §4.2 other side (-1 when it has
	// none or the other side never appeared adjacent to anything, in
	// which case no inference can exist on it); ixpA[a] mirrors
	// st.ixpAddr; soleFwdNbr[a] is the addrIdx of the single member of
	// N_F(a) when |N_F(a)| == 1 — the §4.8 stub candidate precondition —
	// and -1 otherwise.
	otherIdx   []int32
	ixpA       []bool
	soleFwdNbr []int32

	// Election memo: electCache[h] holds h's last election result and
	// stays valid until a committed mapping some neighbour of h carries
	// changes (markDirtyReaders invalidates alongside marking dirty).
	// Used only by the incremental engine; the full-rescan engine
	// re-elects from scratch every time. Scan workers fill disjoint
	// entries (each half appears on one worker's chunk), commits
	// invalidate serially between passes.
	electCache []countResult
	electValid []bool
}

// halfIdx returns h's dense index, or -1 when h's address is outside the
// interface universe (putative other sides never seen adjacent to
// anything). Such halves can hold overrides, but no election ever reads
// them.
func (st *runState) halfIdx(h Half) int32 {
	i, ok := st.idx.idxOfAddr[h.Addr]
	if !ok {
		return -1
	}
	return halfSlot(i, h.Dir)
}

// halfAt inverts halfIdx.
func (st *runState) halfAt(idx int32) Half {
	return Half{Addr: st.addrs[idx>>1], Dir: Direction(idx & 1)}
}

// internASN returns the dense id for asn, appending a new one (and its
// organisation) if unseen. Appends only happen from serial commit code,
// in deterministic order.
func (st *runState) internASN(asn inet.ASN) int32 {
	if asn.IsZero() {
		return -1
	}
	if id, ok := st.idx.idOfASN[asn]; ok {
		return id
	}
	id := int32(len(st.idx.asnOf))
	st.idx.asnOf = append(st.idx.asnOf, asn)
	st.idx.idOfASN[asn] = id
	st.idx.orgOfASN = append(st.idx.orgOfASN, st.internOrg(st.cfg.Orgs.Canonical(asn)))
	return id
}

func (st *runState) internOrg(canonical inet.ASN) int32 {
	if id, ok := st.idx.orgIDOf[canonical]; ok {
		return id
	}
	id := int32(st.idx.orgCount)
	st.idx.orgIDOf[canonical] = id
	st.idx.orgCount++
	return id
}

// buildIndex constructs the intern index after addrs, neighbour sets,
// base mappings, and IXP flags are final. The neighbour and dependency
// flattening is pure per-address work, so it shards across workers into
// per-chunk partials concatenated in chunk order.
func (st *runState) buildIndex() {
	ix := &st.idx
	n := len(st.addrs)
	ix.idxOfAddr = make(map[inet.Addr]int32, n)
	for i, a := range st.addrs {
		ix.idxOfAddr[a] = int32(i)
	}

	// Intern the announced base-mapping universe in sorted order, so the
	// initial asnID order matches ASN order.
	ix.idOfASN = make(map[inet.ASN]int32)
	ix.orgIDOf = make(map[inet.ASN]int32)
	seen := make(map[inet.ASN]bool, len(st.baseAS))
	for _, asn := range st.baseAS {
		if !asn.IsZero() {
			seen[asn] = true
		}
	}
	universe := make([]inet.ASN, 0, len(seen))
	for asn := range seen {
		universe = append(universe, asn)
	}
	slices.Sort(universe)
	for _, asn := range universe {
		st.internASN(asn)
	}

	ix.baseID = make([]int32, n)
	ix.mapID = make([]int32, 2*n)
	for i, a := range st.addrs {
		id := int32(-1)
		if asn := st.baseAS[a]; !asn.IsZero() {
			id = ix.idOfASN[asn]
		}
		ix.baseID[i] = id
		ix.mapID[2*i] = id
		ix.mapID[2*i+1] = id
	}

	// Flatten neighbour lists and reverse dependencies. For half
	// (a, d) both views walk the same list — N_F(a) forward, N_B(a)
	// backward — and record the opposite-direction half of each member:
	// the election reads that half's mapping, and symmetrically that
	// half's election (when eligible) reads (a, d)'s.
	workers := st.cfg.workers()
	ix.otherIdx = make([]int32, n)
	ix.ixpA = make([]bool, n)
	ix.soleFwdNbr = make([]int32, n)
	for i := range ix.otherIdx {
		ix.otherIdx[i] = -1
		ix.soleFwdNbr[i] = -1
	}
	type part struct {
		nbrFlat, depFlat []int32
		nbrCnt, depCnt   []int32 // per half within the chunk
	}
	parts := make([]part, numChunks(n, workers))
	parallelChunks(n, workers, func(w, lo, hi int) {
		p := &parts[w]
		p.nbrCnt = make([]int32, 2*(hi-lo))
		p.depCnt = make([]int32, 2*(hi-lo))
		for i := lo; i < hi; i++ {
			a := st.addrs[i]
			ix.ixpA[i] = st.ixpAddr[a]
			if o, ok := st.otherSide[a]; ok {
				if oi, ok := ix.idxOfAddr[o]; ok {
					ix.otherIdx[i] = oi
				}
			}
			for _, d := range [2]Direction{Forward, Backward} {
				var nbrs []inet.Addr
				if d == Forward {
					nbrs = st.nbrF[a]
				} else {
					nbrs = st.nbrB[a]
				}
				slot := 2*(i-lo) + int(d)
				if len(nbrs) >= 2 { // eligible: election operand
					for _, nb := range nbrs {
						ni := halfSlot(ix.idxOfAddr[nb], d.Opposite())
						if st.ixpAddr[nb] {
							ni = ^ni // negative: no AS vote, half recoverable
						}
						p.nbrFlat = append(p.nbrFlat, ni)
					}
					p.nbrCnt[slot] = int32(len(nbrs))
				}
				if d == Forward && len(nbrs) == 1 {
					ix.soleFwdNbr[i] = ix.idxOfAddr[nbrs[0]]
				}
				if st.ixpAddr[a] {
					continue // elections never read IXP mappings
				}
				for _, nb := range nbrs {
					// The reader half is eligible iff its own
					// neighbour list (opposite side of nb) has ≥ 2
					// members.
					var readerNbrs []inet.Addr
					if d == Forward {
						readerNbrs = st.nbrB[nb]
					} else {
						readerNbrs = st.nbrF[nb]
					}
					if len(readerNbrs) >= 2 {
						p.depFlat = append(p.depFlat, halfSlot(ix.idxOfAddr[nb], d.Opposite()))
						p.depCnt[slot]++
					}
				}
			}
		}
	})
	totalNbr, totalDep := 0, 0
	for _, p := range parts {
		totalNbr += len(p.nbrFlat)
		totalDep += len(p.depFlat)
	}
	ix.nbrOff = make([]int32, 2*n+1)
	ix.depOff = make([]int32, 2*n+1)
	ix.nbrFlat = make([]int32, 0, totalNbr)
	ix.depFlat = make([]int32, 0, totalDep)
	slot := 0
	for _, p := range parts {
		for j := range p.nbrCnt {
			ix.nbrOff[slot+1] = ix.nbrOff[slot] + p.nbrCnt[j]
			ix.depOff[slot+1] = ix.depOff[slot] + p.depCnt[j]
			slot++
		}
		ix.nbrFlat = append(ix.nbrFlat, p.nbrFlat...)
		ix.depFlat = append(ix.depFlat, p.depFlat...)
	}

	ix.halvesIdx = make([]int32, len(st.halves))
	for i, h := range st.halves {
		ix.halvesIdx[i] = halfSlot(ix.idxOfAddr[h.Addr], h.Dir)
	}
	ix.electCache = make([]countResult, 2*n)
	ix.electValid = make([]bool, 2*n)

	// Mutable flat mirrors of the inference state (see state.go) and the
	// dirty set, sized and preallocated here so pass-time work never
	// allocates: the dirty set can only ever hold eligible halves.
	st.dirConnID = make([]int32, 2*n)
	st.dirLocalID = make([]int32, 2*n)
	st.indirectSrc = make([]int32, 2*n)
	for i := range st.dirConnID {
		st.dirConnID[i] = -1
		st.dirLocalID[i] = -1
		st.indirectSrc[i] = -1
	}
	st.dirStub = make([]bool, 2*n)
	st.dirUnc = make([]bool, 2*n)
	st.severedIdx = make([]bool, n)
	st.inferredOnce = make([]bool, 2*n)
	st.dirty.mark = make([]bool, 2*n)
	st.dirty.list = make([]int32, 0, len(st.halves))
	st.dirty.scratch = make([]int32, 0, len(st.halves))
	st.electScr = make([]electScratch, workers)
	for w := range st.electScr {
		st.electScr[w].ensure(ix.orgCount, len(ix.asnOf))
	}
	st.infBlock = make([]directInf, 0, infSlabBlock)
	st.demoteBuf = make([]int32, 0, 64)
	st.purgeBuf = make([]Half, 0, 64)
	// Re-make the inference maps with real capacity now that the
	// eligible-half count is known: direct inferences land only on
	// eligible halves, and overrides track inferences plus their other
	// sides. Sizing up front keeps incremental rehashes out of the
	// fixpoint loop.
	st.direct = make(map[Half]*directInf, len(st.halves)/2+16)
	st.indirect = make(map[Half]Half, len(st.halves)/2+16)
	st.overrides = make(map[Half]inet.ASN, len(st.halves)+16)
	if !st.cfg.DisableIncremental {
		// Double buffers of the maintained direct index (sortedDirectIdxs
		// swaps them); direct inferences only land on eligible halves.
		st.directIdxs = make([]int32, 0, len(st.halves))
		st.directMerge = make([]int32, 0, len(st.halves))
	}
}

// electScratch is the per-worker reusable state of electNeighborAS:
// dense vote counters plus touched lists so resets cost O(distinct)
// rather than O(universe).
type electScratch struct {
	orgVotes, asnVotes       []int32
	touchedOrgs, touchedASNs []int32
}

func (sc *electScratch) ensure(orgs, asns int) {
	for len(sc.orgVotes) < orgs {
		sc.orgVotes = append(sc.orgVotes, 0)
	}
	for len(sc.asnVotes) < asns {
		sc.asnVotes = append(sc.asnVotes, 0)
	}
}

// countResult is the §4.4.1 neighbour election for one half.
type countResult struct {
	// winnerOrg is the dense id of the organisation that appears more
	// than every other; -1 when no strict plurality exists.
	winnerOrg int32
	// connected is the most frequent concrete sibling ASN within the
	// winning organisation (ties to the lowest ASN), with its intern id.
	connected   inet.ASN
	connectedID int32
	// votes is the winning organisation's address count.
	votes int
	// total is |N| (including unmapped and IXP addresses).
	total int
}

// electCached returns the half's election, reusing the memoised result
// when no neighbour mapping changed since it was computed (the same
// funnel that feeds the dirty set invalidates the memo, so a valid
// entry is exactly what a fresh election would return). The full-rescan
// engine never consults the memo: its contract is to recount
// everything, every pass.
func (st *runState) electCached(hi int32, sc *electScratch) countResult {
	if st.cfg.DisableIncremental {
		return st.electNeighborAS(hi, sc)
	}
	ix := &st.idx
	if ix.electValid[hi] {
		return ix.electCache[hi]
	}
	res := st.electNeighborAS(hi, sc)
	ix.electCache[hi] = res
	ix.electValid[hi] = true
	return res
}

// electNeighborAS tallies the half's neighbour set under the committed
// IP2AS view: each neighbour address is looked up as its opposite-
// direction half (members of N_F are backward halves and vice versa,
// §3.2), sibling ASes pool their counts (§4.4.1), and unannounced or
// IXP addresses count toward |N| but toward no AS. The loop is a pure
// counting scan over the flat indexes — no maps, no allocation — so it
// is safe to run from many workers at once, each with its own scratch.
func (st *runState) electNeighborAS(hi int32, sc *electScratch) countResult {
	ix := &st.idx
	nbrs := ix.nbrFlat[ix.nbrOff[hi]:ix.nbrOff[hi+1]]
	res := countResult{winnerOrg: -1, connectedID: -1, total: len(nbrs)}
	if len(nbrs) == 0 {
		return res
	}
	sc.ensure(ix.orgCount, len(ix.asnOf))
	for _, ni := range nbrs {
		if ni < 0 {
			continue // IXP neighbour
		}
		aid := ix.mapID[ni]
		if aid < 0 {
			continue // unannounced
		}
		oid := ix.orgOfASN[aid]
		if sc.orgVotes[oid] == 0 {
			sc.touchedOrgs = append(sc.touchedOrgs, oid)
		}
		sc.orgVotes[oid]++
		if sc.asnVotes[aid] == 0 {
			sc.touchedASNs = append(sc.touchedASNs, aid)
		}
		sc.asnVotes[aid]++
	}
	// Strict plurality via max / second-max; order-independent, so the
	// touched list's insertion order never shows in the result.
	var bestOrg int32 = -1
	var best, second int32
	for _, oid := range sc.touchedOrgs {
		switch v := sc.orgVotes[oid]; {
		case v > best:
			second = best
			best, bestOrg = v, oid
		case v > second:
			second = v
		}
	}
	if best > 0 && best != second {
		res.winnerOrg = bestOrg
		res.votes = int(best)
		// Most frequent concrete sibling, ties to the lowest ASN.
		var bestAID int32 = -1
		var bestCnt int32
		for _, aid := range sc.touchedASNs {
			if ix.orgOfASN[aid] != bestOrg {
				continue
			}
			c := sc.asnVotes[aid]
			if c > bestCnt || (c == bestCnt && ix.asnOf[aid] < ix.asnOf[bestAID]) {
				bestAID, bestCnt = aid, c
			}
		}
		res.connected, res.connectedID = ix.asnOf[bestAID], bestAID
	}
	for _, oid := range sc.touchedOrgs {
		sc.orgVotes[oid] = 0
	}
	for _, aid := range sc.touchedASNs {
		sc.asnVotes[aid] = 0
	}
	sc.touchedOrgs = sc.touchedOrgs[:0]
	sc.touchedASNs = sc.touchedASNs[:0]
	return res
}
