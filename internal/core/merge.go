package core

// Bounded-memory k-way merge for the out-of-core evidence store
// (DESIGN.md §11). Spilled runs come back as streaming cursors; the
// merge must interleave k of them (plus the in-memory residue) into one
// globally sorted, duplicate-free stream while holding only one head
// element per source. A loser tree does that with ⌈log₂k⌉ comparisons
// per output element — versus k for the linear min-scan the in-memory
// merge used — and both the spill and in-memory paths now share it, so
// the merge order (and therefore the output bytes) cannot diverge
// between them.

// mergeSource pulls the next element of one sorted run: it returns
// (element, true, nil) while the run lasts, (zero, false, nil) at a
// clean end, and a non-nil error on a corrupt or unreadable run.
type mergeSource[T any] func() (T, bool, error)

// sliceSource adapts an in-memory sorted run.
func sliceSource[T any](run []T) mergeSource[T] {
	i := 0
	return func() (T, bool, error) {
		if i >= len(run) {
			var zero T
			return zero, false, nil
		}
		v := run[i]
		i++
		return v, true, nil
	}
}

// loserTree is a tournament tree over k sources. tree[0] holds the
// overall winner; tree[1..k-1] hold the losers along each winner's path,
// so replacing the winner replays exactly one leaf-to-root path.
// Sources that error are surfaced immediately; exhausted sources lose
// every comparison. Ties break toward the lower source index, making
// the merge deterministic for overlapping runs.
type loserTree[T any] struct {
	cmp   func(a, b T) int
	srcs  []mergeSource[T]
	heads []T
	live  []bool
	tree  []int
	k     int
}

// newLoserTree primes every source and builds the tournament.
func newLoserTree[T any](srcs []mergeSource[T], cmp func(a, b T) int) (*loserTree[T], error) {
	k := len(srcs)
	lt := &loserTree[T]{
		cmp:   cmp,
		srcs:  srcs,
		heads: make([]T, k),
		live:  make([]bool, k),
		tree:  make([]int, max(k, 1)),
		k:     k,
	}
	for i, src := range srcs {
		v, ok, err := src()
		if err != nil {
			return nil, err
		}
		lt.heads[i], lt.live[i] = v, ok
	}
	for i := range lt.tree {
		lt.tree[i] = -1
	}
	for i := 0; i < k; i++ {
		lt.replay(i)
	}
	return lt, nil
}

// beats reports whether contender a wins against b and keeps climbing.
// The -1 sentinel exists only during construction: it wins every climb,
// so each real index gets deposited as a loser exactly once and the
// sentinels are fully displaced once all k leaves have been played.
func (lt *loserTree[T]) beats(a, b int) bool {
	if a == -1 {
		return true
	}
	if b == -1 {
		return false
	}
	if !lt.live[a] || !lt.live[b] {
		if lt.live[a] != lt.live[b] {
			return lt.live[a]
		}
		return a < b
	}
	if c := lt.cmp(lt.heads[a], lt.heads[b]); c != 0 {
		return c < 0
	}
	return a < b
}

// replay plays leaf i's path to the root, storing losers on the way.
func (lt *loserTree[T]) replay(i int) {
	w := i
	for t := (i + lt.k) / 2; t > 0; t /= 2 {
		if lt.beats(lt.tree[t], w) {
			w, lt.tree[t] = lt.tree[t], w
		}
	}
	lt.tree[0] = w
}

// next pops the smallest head across all live sources.
func (lt *loserTree[T]) next() (T, bool, error) {
	var zero T
	w := lt.tree[0]
	if w < 0 || !lt.live[w] {
		return zero, false, nil
	}
	v := lt.heads[w]
	nv, ok, err := lt.srcs[w]()
	if err != nil {
		return zero, false, err
	}
	lt.heads[w], lt.live[w] = nv, ok
	lt.replay(w)
	return v, true, nil
}

// mergeDedup streams the merged union of sorted runs to yield, dropping
// duplicates. Each run must itself be sorted and duplicate-free (they
// are snapshots of dedup maps); duplicates across runs collapse because
// equal elements exit the tree consecutively (ties break by source
// index, and every source is strictly increasing). Memory is O(k) heads
// regardless of run sizes.
func mergeDedup[T comparable](srcs []mergeSource[T], cmp func(a, b T) int, yield func(T)) error {
	lt, err := newLoserTree(srcs, cmp)
	if err != nil {
		return err
	}
	var last T
	first := true
	for {
		v, ok, err := lt.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if first || v != last {
			yield(v)
			last, first = v, false
		}
	}
}
