package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// synthTraces builds a deterministic corpus large enough to exercise the
// batching and sharding paths: a mix of clean traces, quoted-TTL-0 hops,
// null hops, immediate repeats and interface cycles.
func synthTraces(n int) []trace.Trace {
	rng := rand.New(rand.NewSource(42))
	addr := func() inet.Addr { return inet.Addr(0x08000000 + rng.Intn(1<<16)) }
	traces := make([]trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		hops := make([]trace.Hop, 0, 8)
		for j := 0; j < 3+rng.Intn(6); j++ {
			h := trace.Hop{Addr: addr(), QuotedTTL: 1}
			switch rng.Intn(12) {
			case 0:
				h.Addr = 0 // null hop
			case 1:
				h.QuotedTTL = 0 // buggy forwarder, removed by §4.1
			case 2:
				if len(hops) > 0 {
					h.Addr = hops[len(hops)-1].Addr // immediate repeat
				}
			case 3:
				if len(hops) > 1 {
					h.Addr = hops[0].Addr // likely interface cycle
				}
			}
			hops = append(hops, h)
		}
		traces = append(traces, trace.Trace{
			Monitor: fmt.Sprintf("mon-%d", rng.Intn(8)),
			Dst:     addr(),
			Hops:    hops,
		})
	}
	return traces
}

// The sharded collector must produce byte-identical evidence to the
// serial collector for any worker count.
func TestParallelCollectorEquivalence(t *testing.T) {
	traces := synthTraces(3000)
	serial := NewCollector()
	for _, tc := range traces {
		serial.Add(tc)
	}
	want := serial.Evidence()
	for _, workers := range []int{1, 2, 3, 8} {
		par := NewParallelCollector(workers)
		for _, tc := range traces {
			par.Add(tc)
		}
		if par.Traces() != len(traces) {
			t.Fatalf("workers=%d: Traces() = %d, want %d", workers, par.Traces(), len(traces))
		}
		got := par.Evidence()
		if !reflect.DeepEqual(want.Adjacencies, got.Adjacencies) {
			t.Fatalf("workers=%d: adjacency slices differ (%d vs %d entries)",
				workers, len(want.Adjacencies), len(got.Adjacencies))
		}
		if want.Stats != got.Stats {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, want.Stats, got.Stats)
		}
		if !reflect.DeepEqual(want.AllAddrs, got.AllAddrs) {
			t.Fatalf("workers=%d: address sets differ", workers)
		}
	}
}

// Like the serial collector, the sharded collector stays usable after
// Evidence: the pipeline restarts and later snapshots include both the
// old and the new traces.
func TestParallelCollectorIncremental(t *testing.T) {
	traces := synthTraces(1200)
	par := NewParallelCollector(4)
	serial := NewCollector()
	for _, tc := range traces[:600] {
		par.Add(tc)
		serial.Add(tc)
	}
	first := par.Evidence()
	if want := serial.Evidence(); !reflect.DeepEqual(want.Adjacencies, first.Adjacencies) {
		t.Fatal("first snapshot diverges from serial")
	}
	for _, tc := range traces[600:] {
		par.Add(tc)
		serial.Add(tc)
	}
	second := par.Evidence()
	want := serial.Evidence()
	if !reflect.DeepEqual(want.Adjacencies, second.Adjacencies) || want.Stats != second.Stats {
		t.Fatal("second snapshot diverges from serial")
	}
	if len(first.Adjacencies) >= len(second.Adjacencies) {
		t.Fatalf("second snapshot (%d adjacencies) should extend the first (%d)",
			len(second.Adjacencies), len(first.Adjacencies))
	}
}

// Evidence snapshots must be insulated from later Adds: the returned
// address set is a copy, not a view of the live collector (regression
// test for the AllAddrs aliasing bug).
func TestEvidenceSnapshotIsolation(t *testing.T) {
	c := NewCollector()
	c.Add(tr("1.1.1.1", "2.2.2.2"))
	ev := c.Evidence()
	before := len(ev.AllAddrs)
	c.Add(tr("3.3.3.3", "4.4.4.4"))
	if len(ev.AllAddrs) != before {
		t.Fatalf("snapshot AllAddrs grew from %d to %d after a later Add", before, len(ev.AllAddrs))
	}
	if ev.AllAddrs.Contains(inet.MustParseAddr("3.3.3.3")) {
		t.Fatal("snapshot AllAddrs sees addresses added after Evidence()")
	}

	p := NewParallelCollector(2)
	p.Add(tr("1.1.1.1", "2.2.2.2"))
	pev := p.Evidence()
	before = len(pev.AllAddrs)
	p.Add(tr("3.3.3.3", "4.4.4.4"))
	p.Evidence()
	if len(pev.AllAddrs) != before {
		t.Fatal("parallel snapshot AllAddrs mutated by a later Add")
	}
}
