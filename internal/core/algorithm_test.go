package core

import (
	"strings"
	"testing"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
	"mapit/internal/trace"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

// table builds an IP2AS mapping from "prefix=asn" entries.
func table(entries ...string) *bgp.Table {
	t := bgp.EmptyTable()
	for _, e := range entries {
		parts := strings.SplitN(e, "=", 2)
		t.Add(inet.MustParsePrefix(parts[0]), inet.MustParseASN(parts[1]))
	}
	return t
}

// sanitized wraps traces into the Sanitize output core consumes.
func sanitized(traces ...trace.Trace) *trace.Sanitized {
	d := &trace.Dataset{Traces: traces}
	return d.Sanitize()
}

// tr builds a trace from addresses.
func tr(addrs ...string) trace.Trace {
	ips := make([]inet.Addr, len(addrs))
	for i, a := range addrs {
		ips[i] = ip(a)
	}
	return trace.NewTrace("m", ip("192.0.3.255"), ips...)
}

// findDirect returns the direct inference on (addr, dir) if present.
func findDirect(r *Result, addr string, dir Direction) (Inference, bool) {
	for _, inf := range r.Inferences {
		if inf.Addr == ip(addr) && inf.Dir == dir && !inf.Indirect {
			return inf, true
		}
	}
	return Inference{}, false
}

// The §3.1/Fig 2 scenario: 109.105.98.10 is numbered from AS2603
// (NORDUnet) but sits on an AS11537 (Internet2) router; its N_F is
// dominated by AS11537, yielding a forward inference. 199.109.5.1
// (AS3754, NYSERNet) initially has no plurality in its N_B; the pass-1
// update of 109.105.98.10_f to AS11537 unlocks the backward inference on
// the second pass — the multipass mechanism the paper is named for.
func TestFig2Multipass(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", // NORDUnet
		"198.71.0.0/16=11537", // Internet2
		"64.57.0.0/16=11537",  // Internet2 (second block)
		"199.109.0.0/16=3754", // NYSERNet
	)
	s := sanitized(
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
		// A reverse-direction observation of the far side 109.105.98.9
		// (other-side records are only emitted for observed addresses).
		tr("109.105.98.9", "109.105.80.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	fwd, ok := findDirect(r, "109.105.98.10", Forward)
	if !ok {
		t.Fatal("no forward inference on 109.105.98.10")
	}
	if fwd.Local != 2603 || fwd.Connected != 11537 {
		t.Errorf("109.105.98.10_f link = %v<->%v; want 2603<->11537", fwd.Local, fwd.Connected)
	}
	if fwd.OtherSide != ip("109.105.98.9") {
		t.Errorf("other side = %v; want 109.105.98.9", fwd.OtherSide)
	}

	back, ok := findDirect(r, "199.109.5.1", Backward)
	if !ok {
		t.Fatal("no backward inference on 199.109.5.1 (multipass refinement failed)")
	}
	if back.Local != 3754 || back.Connected != 11537 {
		t.Errorf("199.109.5.1_b link = %v<->%v; want 3754<->11537", back.Local, back.Connected)
	}

	// The far sides are reported as indirect records connecting the
	// same AS pairs.
	var foundIndirect bool
	for _, inf := range r.Inferences {
		if inf.Addr == ip("109.105.98.9") && inf.Indirect {
			foundIndirect = true
			if a, b := inf.Link(); a != 2603 || b != 11537 {
				t.Errorf("indirect link = %v<->%v", a, b)
			}
		}
	}
	if !foundIndirect {
		t.Error("no indirect record for 109.105.98.9")
	}

	// No inferences on internal Internet2 interfaces.
	if _, ok := findDirect(r, "198.71.45.2", Backward); ok {
		t.Error("spurious inference on internal interface")
	}
	if got := len(r.HighConfidence()); got != 2 {
		t.Errorf("high confidence count = %d; want 2", got)
	}
}

// Without the multipass refinement (SinglePass ablation) the 199.109.5.1
// inference is unreachable.
func TestSinglePassMissesSecondOrderInference(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
	)
	s := sanitized(
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r, "109.105.98.10", Forward); !ok {
		t.Error("first-order inference should survive single pass")
	}
	if _, ok := findDirect(r, "199.109.5.1", Backward); ok {
		t.Error("second-order inference should not appear in single pass")
	}
}

// The §4.4.3/Fig 4 scenario: a third-party address (router replying via
// its outgoing interface) produces inferences on both halves of the same
// interface toward different ASes; the forward inference is correct and
// the backward one must be dropped.
func TestFig4DualInference(t *testing.T) {
	ip2as := table(
		"62.115.0.0/16=1299", // TeliaSonera
		"4.68.0.0/16=3356",   // Level 3
		"91.200.0.0/16=51159",
	)
	x := "4.68.110.186"
	s := sanitized(
		tr("62.115.0.1", x, "91.200.0.1"),
		tr("62.115.0.5", x, "91.200.0.5"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fwd, ok := findDirect(r, x, Forward)
	if !ok {
		t.Fatal("forward inference missing")
	}
	if fwd.Local != 3356 || fwd.Connected != 51159 {
		t.Errorf("forward link = %v<->%v; want 3356<->51159", fwd.Local, fwd.Connected)
	}
	if _, ok := findDirect(r, x, Backward); ok {
		t.Error("backward (third-party) inference should have been dropped")
	}
	// The dropped backward inference is re-made and re-dropped once more
	// before the repeated-state rule fires (§4.6), so the counter can
	// exceed one; what matters is that the oscillation terminated with
	// the forward inference only.
	if r.Diag.DualResolved < 1 {
		t.Errorf("DualResolved = %d; want >= 1", r.Diag.DualResolved)
	}

	// Ablation: with dual resolution disabled, both survive.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0.5, DisableDualResolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r2, x, Backward); !ok {
		t.Error("ablation: backward inference should survive")
	}
}

// Dual inferences toward the same organisation are retained (§4.4.3).
func TestDualInferenceSameOrgRetained(t *testing.T) {
	ip2as := table(
		"62.115.0.0/16=1299",
		"4.68.0.0/16=3356",
	)
	x := "4.68.110.186"
	// Both directions dominated by AS1299 (per-packet load balancing
	// pattern): the link claim is the same either way.
	s := sanitized(
		tr("62.115.0.1", x, "62.115.9.1"),
		tr("62.115.0.5", x, "62.115.9.5"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r, x, Forward); !ok {
		t.Error("forward inference missing")
	}
	if _, ok := findDirect(r, x, Backward); !ok {
		t.Error("same-org backward inference should be retained")
	}
	if r.Diag.DualSameAS == 0 {
		t.Error("DualSameAS not counted")
	}
	if r.Diag.DualResolved != 0 {
		t.Error("same-org dual must not be resolved away")
	}
}

// The §4.4.4/Fig 5 scenario: correct forward inferences on Internet2
// interfaces plus mistaken backward (inverse) inferences on the Montana
// side; the backward ones are farther from the monitors and get dropped.
func TestFig5InverseInferences(t *testing.T) {
	ip2as := table(
		"198.71.0.0/16=11537",
		"192.73.48.0/24=3807", // University of Montana
	)
	a1, a2 := "198.71.46.196", "198.71.46.217"
	b1, b2 := "192.73.48.124", "192.73.48.120"
	s := sanitized(
		tr("198.71.45.1", a1, b1),
		tr("198.71.45.2", a1, b2),
		tr("198.71.45.3", a2, b1),
		tr("198.71.45.4", a2, b2),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{a1, a2} {
		inf, ok := findDirect(r, a, Forward)
		if !ok || inf.Uncertain {
			t.Errorf("%s_f: confident forward inference expected (got %+v, %v)", a, inf, ok)
		}
	}
	for _, b := range []string{b1, b2} {
		if _, ok := findDirect(r, b, Backward); ok {
			t.Errorf("%s_b: inverse inference should be discarded", b)
		}
	}
	if r.Diag.InverseDiscarded != 2 {
		t.Errorf("InverseDiscarded = %d; want 2", r.Diag.InverseDiscarded)
	}

	// Ablation: with inverse resolution off the mistake survives the add
	// step; the remove step must also be off because the forward
	// inference's IP2AS update independently erodes the backward
	// inference's support in this small topology.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0.5,
		DisableInverseResolution: true, DisableRemoveStep: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r2, b1, Backward); !ok {
		t.Error("ablation: inverse inference should survive")
	}
}

// When the other side of the backward IH carries its own direct
// inference, neither claim is topologically nearer: both are demoted to
// uncertain rather than discarded (§4.4.4).
func TestInverseUncertain(t *testing.T) {
	ip2as := table(
		"198.71.0.0/16=11537",
		"192.73.48.0/24=3807",
	)
	a1 := "198.71.46.196"
	b1 := "192.73.48.124" // /31 other side is .125
	ob1 := "192.73.48.125"
	s := sanitized(
		// Forward evidence for a1 (four AS3807 successors) and inverse
		// backward evidence for b1 (four AS11537 predecessors); the
		// extra neighbours keep both inferences majority-supported so
		// the remove step does not independently retract them.
		tr("198.71.45.1", a1, b1),
		tr("198.71.45.2", a1, "192.73.48.120"),
		tr("198.71.45.5", a1, "192.73.48.130"),
		tr("198.71.45.6", a1, "192.73.48.134"),
		tr("198.71.45.3", "198.71.46.217", b1),
		tr("198.71.45.7", "198.71.46.221", b1),
		tr("198.71.45.8", "198.71.46.225", b1),
		// Reverse-direction traffic gives ob1 a direct forward
		// inference of its own (monitor inside AS3807), corroborating
		// b1's backward claim.
		tr(ob1, "198.71.44.1"),
		tr(ob1, "198.71.44.2"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ai, ok := findDirect(r, a1, Forward)
	if !ok {
		t.Fatal("a1 forward inference missing")
	}
	bi, ok := findDirect(r, b1, Backward)
	if !ok {
		t.Fatal("b1 backward inference missing (should be uncertain, not dropped)")
	}
	if !ai.Uncertain || !bi.Uncertain {
		t.Errorf("expected both uncertain; got a1=%v b1=%v", ai.Uncertain, bi.Uncertain)
	}
	if r.Diag.UncertainPairs == 0 {
		t.Error("UncertainPairs not counted")
	}
	if len(r.Uncertain()) < 2 {
		t.Errorf("Uncertain list = %d entries", len(r.Uncertain()))
	}
}

// The §4.5 remove step: an early inference whose supporting neighbours
// are re-mapped by later inferences must be demoted and discarded.
func TestRemoveStepRetractsStaleInference(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
		"20.102.0.0/16=201",
		"20.103.0.0/16=300",
	)
	i := "20.100.0.9"
	n1, n2 := "20.103.1.1", "20.103.2.1" // AS300 space
	s := sanitized(
		// i's forward neighbours are n1, n2 (both AS300 initially).
		tr(i, n1),
		tr(i, n2),
		// n1's backward set is dominated by AS200 -> n1_b re-mapped.
		tr("20.101.0.1", n1),
		tr("20.101.0.2", n1),
		// n2's backward set is dominated by AS201 -> n2_b re-mapped.
		tr("20.102.0.1", n2),
		tr("20.102.0.2", n2),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if inf, ok := findDirect(r, i, Forward); ok {
		t.Errorf("stale inference on %s survived: %+v", i, inf)
	}
	if r.Diag.Demoted == 0 {
		t.Error("Demoted not counted")
	}
	// The re-mappings themselves are legitimate inferences.
	if _, ok := findDirect(r, n1, Backward); !ok {
		t.Error("n1_b inference missing")
	}
	// Ablation: without the remove step the stale inference persists.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0.5, DisableRemoveStep: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r2, i, Forward); !ok {
		t.Error("ablation: stale inference should persist without remove step")
	}
}

// The §4.8 stub heuristic: a forward half with a single neighbour in a
// stub AS yields an inference; the same pattern toward an ISP does not.
func TestStubHeuristic(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100", // provider ISP
		"20.104.0.0/16=500", // stub (customer of 100)
		"20.105.0.0/16=600", // ISP (has customer 700)
	)
	rels := relation.New()
	rels.AddTransit(100, 500)
	rels.AddTransit(600, 700)

	s := sanitized(
		tr("20.100.1.1", "20.104.0.1"), // single neighbour, stub AS
		tr("20.100.2.1", "20.105.0.1"), // single neighbour, ISP AS
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Rels: rels})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := findDirect(r, "20.100.1.1", Forward)
	if !ok {
		t.Fatal("stub inference missing")
	}
	if !inf.Stub || inf.Local != 100 || inf.Connected != 500 {
		t.Errorf("stub inference = %+v", inf)
	}
	if _, ok := findDirect(r, "20.100.2.1", Forward); ok {
		t.Error("single ISP neighbour must not trigger the stub heuristic")
	}
	if r.Diag.StubInferences != 1 {
		t.Errorf("StubInferences = %d; want 1", r.Diag.StubInferences)
	}

	// Disabled: no stub inferences.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Rels: rels, DisableStubHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.HighConfidence()) != 0 {
		t.Error("stub heuristic ran while disabled")
	}
	// Without relationship data the heuristic cannot run at all.
	r3, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.HighConfidence()) != 0 {
		t.Error("stub heuristic ran without relationship data")
	}
}

// Sibling ASes pool their neighbour counts and never form links between
// themselves (§4.4.1, §4.9).
func TestSiblingHandling(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
		"20.102.0.0/16=201", // sibling of 200
		"20.103.0.0/16=300",
	)
	orgs := as2org.New()
	orgs.AddSiblingPair(200, 201)

	i := "20.100.0.9"
	// N_F(i) = one AS200 address, one AS201 address, one AS300 address:
	// individually no plurality, pooled the 200/201 org wins.
	s := sanitized(
		tr(i, "20.101.5.1"),
		tr(i, "20.102.5.1"),
		tr(i, "20.103.5.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Orgs: orgs})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := findDirect(r, i, Forward)
	if !ok {
		t.Fatal("sibling-pooled inference missing")
	}
	// Concrete sibling choice: tie between 200 and 201 -> lowest.
	if inf.Connected != 200 {
		t.Errorf("Connected = %v; want 200 (most frequent / lowest sibling)", inf.Connected)
	}
	// Without the org data there is no plurality and no inference.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r2, i, Forward); ok {
		t.Error("inference without sibling pooling should not exist")
	}

	// No links between siblings: an AS201-space interface whose
	// neighbours are AS200 is an internal (organisation) interface.
	s3 := sanitized(
		tr("20.102.9.9", "20.101.1.1"),
		tr("20.102.9.9", "20.101.2.1"),
	)
	// Backward direction evidence.
	s3b := sanitized(
		tr("20.101.1.1", "20.102.9.9"),
		tr("20.101.2.1", "20.102.9.9"),
	)
	for _, sd := range []*trace.Sanitized{s3, s3b} {
		r3, err := Run(sd, Config{IP2AS: ip2as, F: 0.5, Orgs: orgs})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(r3.HighConfidence()); got != 0 {
			t.Errorf("sibling boundary produced %d inferences", got)
		}
	}
}

// The f parameter gates inferences on the winning AS's share of the
// neighbour set (§4.4.1, §5.3).
func TestFThreshold(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
	)
	i := "20.100.0.9"
	// N_F(i): two AS200 addresses and two unannounced addresses.
	s := sanitized(
		tr(i, "20.101.1.1"),
		tr(i, "20.101.2.1"),
		tr(i, "21.0.0.1"),
		tr(i, "21.0.1.1"),
	)
	for _, c := range []struct {
		f    float64
		want bool
	}{{0, true}, {0.5, true}, {0.6, false}, {1, false}} {
		r, err := Run(s, Config{IP2AS: ip2as, F: c.f})
		if err != nil {
			t.Fatal(err)
		}
		_, got := findDirect(r, i, Forward)
		if got != c.want {
			t.Errorf("f=%v: inference=%v; want %v", c.f, got, c.want)
		}
	}
}

// IXP peering-LAN addresses neither vote in elections nor receive
// other-side updates (§4.4.2 fn7, §4.9).
func TestIXPHandling(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
		"80.249.208.0/21=6777", // IXP LAN, announced by route server AS
	)
	dir := ixp.New()
	dir.AddPrefix(inet.MustParsePrefix("80.249.208.0/21"), "AMS-IX")

	i := "20.100.0.9"
	// Neighbour set: two IXP addresses and one AS200 address. Without
	// IXP knowledge AS6777 would win; with it the AS200 single vote
	// wins the plurality but fails f=0.5 (1 of 3).
	s := sanitized(
		tr(i, "80.249.208.1"),
		tr(i, "80.249.209.1"),
		tr(i, "20.101.1.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, IXP: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r, i, Forward); ok {
		t.Error("IXP addresses must not produce an AS6777 inference")
	}
	// f=0: the single AS200 vote suffices.
	r2, err := Run(s, Config{IP2AS: ip2as, F: 0, IXP: dir})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := findDirect(r2, i, Forward)
	if !ok || inf.Connected != 200 {
		t.Errorf("f=0 inference = %+v, %v; want connected 200", inf, ok)
	}
	// Without the directory, AS6777 wins.
	r3, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if inf, ok := findDirect(r3, i, Forward); !ok || inf.Connected != 6777 {
		t.Errorf("without IXP data inference = %+v, %v", inf, ok)
	}

	// An inference on an IXP-numbered interface gets no indirect
	// other-side record.
	x := "80.249.208.77"
	s2 := sanitized(
		tr("20.101.3.1", x, "20.100.1.1"),
		tr("20.101.3.1", x, "20.100.2.1"),
	)
	r4, err := Run(s2, Config{IP2AS: ip2as, F: 0.5, IXP: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r4, x, Forward); !ok {
		t.Fatal("inference on IXP interface itself should be allowed")
	}
	for _, inf := range r4.Inferences {
		if inf.Indirect && inf.OtherSide == ip(x) {
			t.Errorf("IXP interface produced other-side record: %+v", inf)
		}
	}
}
