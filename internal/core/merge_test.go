package core

import (
	"cmp"
	"errors"
	"math/rand/v2"
	"slices"
	"testing"
)

// collect runs mergeDedup over int slices.
func collectMerge(t *testing.T, runs [][]int) []int {
	t.Helper()
	srcs := make([]mergeSource[int], len(runs))
	for i, r := range runs {
		srcs[i] = sliceSource(r)
	}
	var out []int
	if err := mergeDedup(srcs, cmp.Compare, func(v int) { out = append(out, v) }); err != nil {
		t.Fatalf("mergeDedup: %v", err)
	}
	return out
}

func TestMergeDedupBasic(t *testing.T) {
	cases := []struct {
		name string
		runs [][]int
		want []int
	}{
		{"empty", nil, nil},
		{"one-empty-run", [][]int{{}}, nil},
		{"single", [][]int{{1, 2, 3}}, []int{1, 2, 3}},
		{"disjoint", [][]int{{1, 4}, {2, 5}, {3, 6}}, []int{1, 2, 3, 4, 5, 6}},
		{"overlapping", [][]int{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}, []int{1, 2, 3, 4, 5}},
		{"identical", [][]int{{7, 8}, {7, 8}, {7, 8}}, []int{7, 8}},
		{"mixed-empty", [][]int{{}, {1}, {}, {1, 2}, {}}, []int{1, 2}},
		{"skewed", [][]int{{1, 2, 3, 4, 5, 6, 7, 8, 9}, {5}}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	for _, tc := range cases {
		if got := collectMerge(t, tc.runs); !slices.Equal(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergeDedupRandom cross-checks the loser tree against a sort+compact
// oracle over random run shapes, including k=1 and heavily duplicated
// values.
func TestMergeDedupRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc0ffee, 6))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.IntN(9)
		runs := make([][]int, k)
		var all []int
		for i := range runs {
			n := rng.IntN(50)
			seen := make(map[int]struct{}, n)
			for len(seen) < n {
				seen[rng.IntN(120)] = struct{}{}
			}
			run := make([]int, 0, n)
			for v := range seen {
				run = append(run, v)
			}
			slices.Sort(run)
			runs[i] = run
			all = append(all, run...)
		}
		slices.Sort(all)
		want := slices.Compact(all)
		if len(want) == 0 {
			want = nil
		}
		if got := collectMerge(t, runs); !slices.Equal(got, want) {
			t.Fatalf("iter %d (k=%d): got %v, want %v", iter, k, got, want)
		}
	}
}

// TestMergeSourceError checks source errors abort the merge, both during
// priming and mid-stream.
func TestMergeSourceError(t *testing.T) {
	boom := errors.New("boom")
	bad := func() (int, bool, error) { return 0, false, boom }
	err := mergeDedup([]mergeSource[int]{sliceSource([]int{1}), bad}, cmp.Compare, func(int) {})
	if !errors.Is(err, boom) {
		t.Fatalf("priming error not surfaced: %v", err)
	}

	n := 0
	failLater := func() (int, bool, error) {
		n++
		if n > 2 {
			return 0, false, boom
		}
		return n, true, nil
	}
	var got []int
	err = mergeDedup([]mergeSource[int]{failLater, sliceSource([]int{10})}, cmp.Compare,
		func(v int) { got = append(got, v) })
	if !errors.Is(err, boom) {
		t.Fatalf("mid-stream error not surfaced: %v", err)
	}
	if len(got) == 0 || got[len(got)-1] > 2 {
		t.Fatalf("merge emitted past the failure point: %v", got)
	}
}
