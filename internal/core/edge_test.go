package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// MAP-IT must be deterministic regardless of input order (§4.4.5): the
// double-buffered updates make inferences independent of the order in
// which halves are visited, and trace order must not matter either.
func TestDeterminismUnderPermutation(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
		"192.73.48.0/24=3807", "62.115.0.0/16=1299",
	)
	traces := []trace.Trace{
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
		tr("198.71.45.1", "198.71.46.196", "192.73.48.124"),
		tr("198.71.45.2", "198.71.46.196", "192.73.48.120"),
		tr("62.115.0.1", "198.71.46.44", "64.57.28.30"),
		tr("62.115.0.2", "198.71.46.44", "64.57.29.30"),
	}
	run := func(ts []trace.Trace) *Result {
		r, err := Run(sanitized(ts...), Config{IP2AS: ip2as, F: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run(traces)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]trace.Trace(nil), traces...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := run(shuffled)
		if !reflect.DeepEqual(got.Inferences, want.Inferences) {
			t.Fatalf("trial %d: inference set differs under permutation\n got: %v\nwant: %v",
				trial, got.Inferences, want.Inferences)
		}
	}
}

// Repeated runs on identical input are byte-identical.
func TestDeterminismRepeatedRuns(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200")
	s := sanitized(
		tr("20.100.0.9", "20.101.1.1"),
		tr("20.100.0.9", "20.101.2.1"),
	)
	first, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatal("non-deterministic result")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	s := sanitized(tr("20.100.0.9", "20.101.1.1"))
	if _, err := Run(s, Config{F: 0.5}); err == nil {
		t.Error("missing IP2AS accepted")
	}
	ip2as := table("20.100.0.0/16=100")
	if _, err := Run(s, Config{IP2AS: ip2as, F: -0.1}); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := Run(s, Config{IP2AS: ip2as, F: 1.1}); err == nil {
		t.Error("f > 1 accepted")
	}
}

func TestEmptyDataset(t *testing.T) {
	r, err := Run(sanitized(), Config{IP2AS: table(), F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Inferences) != 0 {
		t.Errorf("inferences on empty dataset: %v", r.Inferences)
	}
	if r.Diag.Iterations < 1 {
		t.Error("at least one iteration expected")
	}
}

// Divergent other sides: direct inferences on both ends of a putative
// point-to-point link naming different connected ASes sever the pairing
// (§4.4.3) and are counted.
func TestDivergentOtherSides(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
		"20.102.0.0/16=300",
		"20.103.0.0/16=400",
	)
	// x (.1) and y (.2) look like a /30 pair in AS100 space. x's
	// backward set says AS200; y's backward set says AS300 — they
	// cannot share one link.
	x, y := "20.100.7.1", "20.100.7.2"
	s := sanitized(
		tr("20.101.0.1", x),
		tr("20.101.0.2", x),
		tr("20.102.0.1", y),
		tr("20.102.0.2", y),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	xi, okx := findDirect(r, x, Backward)
	yi, oky := findDirect(r, y, Backward)
	if !okx || !oky {
		t.Fatalf("both direct inferences should stand: %v %v", okx, oky)
	}
	if xi.Connected != 200 || yi.Connected != 300 {
		t.Errorf("connected = %v, %v", xi.Connected, yi.Connected)
	}
	if r.Diag.DivergentOtherSides != 1 {
		t.Errorf("DivergentOtherSides = %d; want 1", r.Diag.DivergentOtherSides)
	}
	// Severed pairing: no indirect record may cross x<->y.
	for _, inf := range r.Inferences {
		if inf.Indirect && (inf.Addr == ip(x) || inf.Addr == ip(y)) {
			t.Errorf("indirect record across severed pairing: %+v", inf)
		}
	}
}

// Stage hooks fire in the documented order with monotone snapshots.
func TestStageHooks(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
	)
	s := sanitized(
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
	)
	var stages []Stage
	var iterations []int
	_, err := Run(s, Config{IP2AS: ip2as, F: 0.5,
		OnStage: func(st Stage, iter int, s *StageSnapshot) {
			stages = append(stages, st)
			iterations = append(iterations, iter)
			if s.Result() == nil {
				t.Error("nil snapshot")
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 6 {
		t.Fatalf("stages = %v", stages)
	}
	if stages[0] != StageDirect || stages[1] != StageP2P || stages[2] != StageInverse ||
		stages[3] != StageAddConverged {
		t.Errorf("initial stage order = %v", stages[:4])
	}
	if stages[len(stages)-1] != StageStub {
		t.Errorf("last stage = %v", stages[len(stages)-1])
	}
	sawIter := false
	for i, st := range stages {
		if st == StageIteration {
			sawIter = true
			if iterations[i] < 1 {
				t.Errorf("iteration number = %d", iterations[i])
			}
		}
	}
	if !sawIter {
		t.Error("no iteration stage fired")
	}
}

// The whole-interface ablation leaks updates across halves, which blocks
// the very inference the per-half design enables (paper's 199.109.5.1
// argument in §4.4.1).
func TestWholeInterfaceAblation(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
		"20.200.0.0/16=20965",
	)
	// 198.71.45.236_b gets an inference to AS20965; with whole-interface
	// updates its forward half is also re-mapped, corrupting the
	// forward-direction election for neighbours that see 45.236 in N_B.
	s := sanitized(
		tr("20.200.0.1", "198.71.45.236"),
		tr("20.200.0.2", "198.71.45.236"),
		tr("198.71.45.236", "199.109.5.1"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
	)
	base, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(base, "199.109.5.1", Backward); !ok {
		t.Fatal("per-half run should infer 199.109.5.1_b")
	}
	abl, err := Run(s, Config{IP2AS: ip2as, F: 0.5, WholeInterfaceUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(abl, "199.109.5.1", Backward); ok {
		t.Error("whole-interface ablation should corrupt the 199.109.5.1_b election")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Inferences: []Inference{
		{Addr: ip("1.1.1.1"), Dir: Forward, Local: 10, Connected: 20, OtherSide: ip("1.1.1.2")},
		{Addr: ip("1.1.1.2"), Dir: Backward, Local: 20, Connected: 10, Indirect: true},
		{Addr: ip("2.2.2.2"), Dir: Backward, Local: 30, Connected: 10, Uncertain: true},
		{Addr: ip("3.3.3.3"), Dir: Forward, Local: 10, Connected: 20},
	}}
	if got := len(r.HighConfidence()); got != 2 {
		t.Errorf("HighConfidence = %d", got)
	}
	if got := len(r.Uncertain()); got != 1 {
		t.Errorf("Uncertain = %d", got)
	}
	if got := len(r.ByAddr(ip("1.1.1.1"))); got != 1 {
		t.Errorf("ByAddr = %d", got)
	}
	links := r.Links()
	if len(links) != 1 {
		t.Fatalf("Links = %v", links)
	}
	if links[0].A != 10 || links[0].B != 20 || len(links[0].Addrs) != 2 {
		t.Errorf("link = %+v", links[0])
	}
	a, b := (Inference{Local: 30, Connected: 10}).Link()
	if a != 10 || b != 30 {
		t.Errorf("Link() = %v, %v", a, b)
	}
}

func TestHalfHelpers(t *testing.T) {
	h := Half{Addr: ip("198.71.46.180"), Dir: Forward}
	if h.String() != "198.71.46.180_f" {
		t.Errorf("String = %q", h.String())
	}
	if h.Opposite().Dir != Backward || h.Opposite().String() != "198.71.46.180_b" {
		t.Error("Opposite broken")
	}
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("Direction.String broken")
	}
	if !halfLess(Half{Addr: 1, Dir: Backward}, Half{Addr: 2, Dir: Forward}) {
		t.Error("halfLess address ordering")
	}
	if !halfLess(Half{Addr: 1, Dir: Forward}, Half{Addr: 1, Dir: Backward}) {
		t.Error("halfLess direction ordering")
	}
}

// Unannounced interfaces can still carry inferences (local side zero),
// and zero-endpoint inferences are excluded from Links().
func TestUnannouncedInterface(t *testing.T) {
	ip2as := table("20.101.0.0/16=200")
	i := "21.0.0.9" // unannounced
	s := sanitized(
		tr(i, "20.101.1.1"),
		tr(i, "20.101.2.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := findDirect(r, i, Forward)
	if !ok {
		t.Fatal("inference on unannounced interface missing")
	}
	if !inf.Local.IsZero() || inf.Connected != 200 {
		t.Errorf("inference = %+v", inf)
	}
	if len(r.Links()) != 0 {
		t.Errorf("zero-endpoint inference leaked into Links: %v", r.Links())
	}
}

// Diagnostics surface the dataset shape statistics.
func TestDiagnosticsCounts(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200")
	s := sanitized(
		tr("20.100.0.9", "20.101.1.1"),
		tr("20.100.0.9", "20.101.2.1"),
		tr("20.101.1.1", "20.100.0.9"), // puts 20.101.1.1 in both Ns of nothing; gives 20.100.0.9 a backward neighbour
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d := r.Diag
	if d.Interfaces != 3 {
		t.Errorf("Interfaces = %d", d.Interfaces)
	}
	if d.EligibleForward != 1 || d.EligibleBackward != 0 {
		t.Errorf("eligible = %d fwd / %d back", d.EligibleForward, d.EligibleBackward)
	}
	// All three addresses are /30 hosts with no reserved address seen.
	if d.Slash31Fraction != 0 {
		t.Errorf("Slash31Fraction = %v; want 0", d.Slash31Fraction)
	}
	if d.Iterations < 1 || d.AddPasses < d.Iterations {
		t.Errorf("iterations=%d addpasses=%d", d.Iterations, d.AddPasses)
	}
	// 20.101.1.1 is in both Ns of 20.100.0.9, and 20.100.0.9 is in both
	// Ns of 20.101.1.1.
	if d.BothNsOverlap != 2 {
		t.Errorf("BothNsOverlap = %d", d.BothNsOverlap)
	}
}

// quick-check style invariant: for random small worlds the algorithm
// terminates, is deterministic, and never reports an inference whose two
// halves claim the same organisation on both ends.
func TestRandomWorldsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		// Random IP2AS over four /16s.
		entries := []string{
			"20.100.0.0/16=100", "20.101.0.0/16=200",
			"20.102.0.0/16=300", "20.103.0.0/16=400",
		}
		pool := []string{"20.100", "20.101", "20.102", "20.103"}
		var traces []trace.Trace
		for i := 0; i < 30; i++ {
			n := 2 + rng.Intn(4)
			addrs := make([]inet.Addr, n)
			for j := range addrs {
				addrs[j] = ip(pool[rng.Intn(len(pool))] + "." +
					itoa(rng.Intn(4)) + "." + itoa(1+rng.Intn(6)))
			}
			traces = append(traces, trace.NewTrace("m", ip("192.0.3.255"), addrs...))
		}
		s := sanitized(traces...)
		r1, err := Run(s, Config{IP2AS: table(entries...), F: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(s, Config{IP2AS: table(entries...), F: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Inferences, r2.Inferences) {
			t.Fatalf("trial %d: nondeterministic", trial)
		}
		for _, inf := range r1.Inferences {
			if !inf.Local.IsZero() && inf.Local == inf.Connected {
				t.Fatalf("trial %d: self-link inference %+v", trial, inf)
			}
		}
		if r1.Diag.Iterations > 49 {
			t.Fatalf("trial %d: did not converge (%d iterations)", trial, r1.Diag.Iterations)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
