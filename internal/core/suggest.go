package core

import (
	"cmp"
	"slices"

	"mapit/internal/inet"
)

// ProbeSuggestion marks an interface half that looks like an inter-AS
// boundary but lacks the evidence MAP-IT requires: its single neighbour
// belongs to a different organisation, yet |N| < 2 blocks a direct
// inference and the ISP guard blocks the stub heuristic. The paper's
// §5.4 names the remedy — "to try to expose more interface addresses by
// targeting the links with additional traces" — and these records are
// the targeting list: probe destinations beyond the interface (forward
// halves) or sources feeding it (backward halves) to raise |N|.
type ProbeSuggestion struct {
	// Addr and Dir identify the starving half.
	Addr inet.Addr
	Dir  Direction
	// Neighbor is the lone adjacent address.
	Neighbor inet.Addr
	// LocalAS and NeighborAS are the committed mappings on each side of
	// the suspected boundary.
	LocalAS, NeighborAS inet.ASN
}

// suggestProbes scans for single-neighbour halves whose lone neighbour
// crosses an organisation boundary and that carry no inference.
func (st *runState) suggestProbes() []ProbeSuggestion {
	var out []ProbeSuggestion
	for _, a := range st.addrs {
		if st.ixpAddr[a] {
			continue
		}
		for _, dir := range [2]Direction{Forward, Backward} {
			h := Half{Addr: a, Dir: dir}
			nbrs := st.neighbors(h)
			if len(nbrs) != 1 {
				continue
			}
			if st.hasInference(h) || st.hasInference(h.Opposite()) {
				continue
			}
			n := nbrs[0]
			if st.ixpAddr[n] {
				continue
			}
			nh := Half{Addr: n, Dir: dir.Opposite()}
			localAS := st.mapping(h)
			nbrAS := st.mapping(nh)
			if localAS.IsZero() || nbrAS.IsZero() {
				continue
			}
			if st.cfg.Orgs.SameOrg(localAS, nbrAS) {
				continue
			}
			if st.hasInference(nh) {
				continue // the boundary is already pinned from the far side
			}
			out = append(out, ProbeSuggestion{
				Addr: a, Dir: dir, Neighbor: n,
				LocalAS: localAS, NeighborAS: nbrAS,
			})
		}
	}
	slices.SortFunc(out, probeCmp)
	return out
}

// probeCmp is the output order of Result.ProbeSuggestions, shared with
// the partitioned engine's merge.
func probeCmp(a, b ProbeSuggestion) int {
	if c := cmp.Compare(a.Addr, b.Addr); c != 0 {
		return c
	}
	return cmp.Compare(a.Dir, b.Dir)
}
