package core

import (
	"slices"

	"mapit/internal/inet"
)

// addStep runs §4.4 to fixpoint: repeated passes of direct inference +
// other-side updates + contradiction resolution, each pass reading only
// the state committed by the previous pass. first selects whether the
// Fig 7 stage hooks fire (they describe the *initial* add step only).
func (st *runState) addStep(first bool) {
	firstPass := true
	for {
		st.diag.AddPasses++
		added := st.directPass()
		if first && firstPass {
			st.fireStage(StageDirect, 0)
		}
		changedDual := st.resolveDualInferences()
		changedDivergent := st.resolveDivergentOtherSides()
		if first && firstPass {
			st.fireStage(StageP2P, 0)
		}
		changedInverse := st.resolveInverseInferences()
		if first && firstPass {
			st.fireStage(StageInverse, 0)
		}
		firstPass = false
		if st.cfg.SinglePass {
			return
		}
		if added == 0 && !changedDual && !changedDivergent && !changedInverse {
			return
		}
	}
}

// countResult is the §4.4.1 neighbour election for one half.
type countResult struct {
	// winner is the canonical (org representative) AS that appears more
	// than every other; zero when no strict plurality exists.
	winner inet.ASN
	// connected is the most frequent concrete sibling ASN within the
	// winning organisation.
	connected inet.ASN
	// votes is the winning organisation's address count.
	votes int
	// total is |N| (including unmapped and IXP addresses).
	total int
}

// electNeighborAS tallies the half's neighbour set under the committed
// IP2AS view: each neighbour address is looked up as its opposite-
// direction half (members of N_F are backward halves and vice versa,
// §3.2), sibling ASes pool their counts (§4.4.1), and unannounced or
// IXP addresses count toward |N| but toward no AS.
func (st *runState) electNeighborAS(h Half) countResult {
	nbrs := st.neighbors(h)
	res := countResult{total: len(nbrs)}
	if len(nbrs) == 0 {
		return res
	}
	nbrDir := h.Dir.Opposite()
	type tally struct {
		votes int
		// per concrete ASN counts to pick the reported sibling
		asns map[inet.ASN]int
	}
	byOrg := make(map[inet.ASN]*tally, 4)
	for _, n := range nbrs {
		if st.ixpAddr[n] {
			continue
		}
		asn := st.mapping(Half{Addr: n, Dir: nbrDir})
		if asn.IsZero() {
			continue
		}
		org := st.cfg.Orgs.Canonical(asn)
		tl := byOrg[org]
		if tl == nil {
			tl = &tally{asns: make(map[inet.ASN]int, 1)}
			byOrg[org] = tl
		}
		tl.votes++
		tl.asns[asn]++
	}
	var bestOrg inet.ASN
	best, second := 0, 0
	// Deterministic selection: iterate orgs in sorted order.
	orgKeys := make([]inet.ASN, 0, len(byOrg))
	for org := range byOrg {
		orgKeys = append(orgKeys, org)
	}
	slices.Sort(orgKeys)
	for _, org := range orgKeys {
		v := byOrg[org].votes
		switch {
		case v > best:
			second = best
			best, bestOrg = v, org
		case v > second:
			second = v
		}
	}
	if best == 0 || best == second {
		return res // no AS appears more than all others
	}
	res.winner = bestOrg
	res.votes = best
	// Most frequent concrete sibling, ties to the lowest ASN.
	tl := byOrg[bestOrg]
	asns := make([]inet.ASN, 0, len(tl.asns))
	for a := range tl.asns {
		asns = append(asns, a)
	}
	slices.Sort(asns)
	bestASN, bestCount := inet.ASN(0), 0
	for _, a := range asns {
		if c := tl.asns[a]; c > bestCount {
			bestASN, bestCount = a, c
		}
	}
	res.connected = bestASN
	return res
}

// directPass is Alg 2: one pass over the eligible halves making direct
// inferences against the committed mappings, then committing the new
// inferences and their other-side (indirect) updates so they become
// visible to the next pass. Returns the number of inferences added.
//
// The scan reads only committed state, so it shards across
// cfg.Workers goroutines; per-shard results are concatenated in shard
// order, keeping the commit order — and therefore the run — identical
// to the serial execution.
func (st *runState) directPass() int {
	scan := func(h Half) (directInf, bool) {
		if _, ok := st.direct[h]; ok {
			return directInf{}, false
		}
		if st.inferredOnce[h] {
			return directInf{}, false
		}
		elect := st.electNeighborAS(h)
		if elect.winner.IsZero() {
			return directInf{}, false
		}
		if float64(elect.votes) < st.cfg.F*float64(elect.total) {
			return directInf{}, false
		}
		cur := st.mapping(h)
		if !cur.IsZero() && st.cfg.Orgs.SameOrg(cur, elect.connected) {
			return directInf{}, false // no AS switch: internal or sibling boundary (§4.9)
		}
		return directInf{local: cur, connected: elect.connected}, true
	}

	type pending struct {
		h Half
		d directInf
	}
	shards := make([][]pending, numChunks(len(st.halves), st.cfg.workers()))
	parallelChunks(len(st.halves), st.cfg.workers(), func(w, lo, hi int) {
		for _, h := range st.halves[lo:hi] {
			if d, ok := scan(h); ok {
				shards[w] = append(shards[w], pending{h: h, d: d})
			}
		}
	})
	var adds []pending
	for _, s := range shards {
		adds = append(adds, s...)
	}
	// Commit: new inferences and updates become visible next pass.
	for _, p := range adds {
		d := p.d
		st.direct[p.h] = &d
		st.inferredOnce[p.h] = true
		st.overrides[p.h] = d.connected
		if st.cfg.WholeInterfaceUpdates { // ablation only
			st.overrides[p.h.Opposite()] = d.connected
		}
		// §4.4.2: update the other side of the link, unless the
		// interface is IXP-numbered (multipoint peering LANs have no
		// meaningful /30-/31 other side, fn7) or the pairing was severed.
		if st.ixpAddr[p.h.Addr] {
			continue
		}
		if oh, ok := st.otherHalf(p.h); ok {
			if _, selfDirect := st.direct[oh]; !selfDirect {
				st.indirect[oh] = p.h
				st.overrides[oh] = d.connected
			} else {
				st.indirect[oh] = p.h
			}
		}
	}
	return len(adds)
}

// resolveDualInferences applies the §4.4.3 dual-inference rule: when both
// halves of one interface carry direct inferences toward *different*
// organisations, the backward one is the artifact (third-party address:
// the router replied via its outgoing interface) and is discarded.
// Interfaces without a base IP2AS mapping are left alone, as are duals
// toward the same organisation. Reports whether anything changed.
func (st *runState) resolveDualInferences() bool {
	if st.cfg.DisableDualResolution {
		return false
	}
	changed := false
	var toDrop []Half
	for h, d := range st.direct {
		if h.Dir != Backward {
			continue
		}
		fwd, ok := st.direct[h.Opposite()]
		if !ok {
			continue
		}
		if st.baseAS[h.Addr].IsZero() {
			continue // unannounced: do not fix (§4.4.3)
		}
		if st.cfg.Orgs.SameOrg(d.connected, fwd.connected) {
			st.diag.DualSameAS++
			continue // same AS both ways: retain both
		}
		toDrop = append(toDrop, h)
	}
	slices.SortFunc(toDrop, halfCmp)
	for _, h := range toDrop {
		st.discardDirect(h)
		st.inferredOnce[h] = true // cannot be re-made this add step
		st.diag.DualResolved++
		changed = true
	}
	return changed
}

// resolveDivergentOtherSides applies the second §4.4.3 rule: direct
// inferences on both endpoints of a putative /30-/31 link that name
// different connected organisations mean the other-side pairing itself is
// wrong. The pairing is severed (no more indirect updates across it) and
// both direct inferences stand. Reports whether anything changed.
func (st *runState) resolveDivergentOtherSides() bool {
	changed := false
	var toSever []inet.Addr
	for h, d := range st.direct {
		if st.severed[h.Addr] || st.ixpAddr[h.Addr] {
			continue // IXP LANs are multipoint: no /30-/31 other side (fn7)
		}
		other, ok := st.otherSide[h.Addr]
		if !ok || st.ixpAddr[other] {
			continue
		}
		if st.baseAS[h.Addr].IsZero() || st.baseAS[other].IsZero() {
			continue // unannounced: do not fix (§4.4.3)
		}
		// The paper's rule is about the two *interfaces*: a direct
		// inference on either half of the other side naming a
		// different connected organisation diverges.
		for _, dir := range [2]Direction{Forward, Backward} {
			od, ok := st.direct[Half{Addr: other, Dir: dir}]
			if !ok {
				continue
			}
			if !st.cfg.Orgs.SameOrg(d.connected, od.connected) {
				toSever = append(toSever, h.Addr)
				break
			}
		}
	}
	slices.Sort(toSever)
	for _, a := range toSever {
		if st.severed[a] {
			continue // already severed via the partner
		}
		other := st.otherSide[a]
		st.severed[a] = true
		st.severed[other] = true
		st.diag.DivergentOtherSides++
		// Drop any indirect couplings between the two interfaces.
		for _, h := range [4]Half{
			{Addr: a, Dir: Forward}, {Addr: a, Dir: Backward},
			{Addr: other, Dir: Forward}, {Addr: other, Dir: Backward},
		} {
			if src, ok := st.indirect[h]; ok && (src.Addr == a || src.Addr == other) {
				delete(st.indirect, h)
				st.recomputeOverride(h)
			}
		}
		changed = true
	}
	return changed
}

// resolveInverseInferences applies §4.4.4: a forward inference on h
// (link h.AS ↔ AS_B) combined with a backward inference on a member n of
// N_F(h) claiming the inverse link (AS_B ↔ h.AS) cannot both be right.
// The forward inference is topologically nearer to the monitors, so the
// backward one is discarded — unless the backward IH's other side
// carries its own direct inference, in which case neither is nearer and
// both become uncertain. Reports whether anything changed.
func (st *runState) resolveInverseInferences() bool {
	if st.cfg.DisableInverseResolution {
		return false
	}
	changed := false
	var fwdHalves []Half
	for h, d := range st.direct {
		if h.Dir == Forward && !d.uncertain {
			fwdHalves = append(fwdHalves, h)
		}
	}
	slices.SortFunc(fwdHalves, halfCmp)
	for _, h := range fwdHalves {
		d, ok := st.direct[h]
		if !ok {
			continue // discarded earlier in this resolution
		}
		for _, n := range st.nbrF[h.Addr] {
			nb := Half{Addr: n, Dir: Backward}
			bd, ok := st.direct[nb]
			if !ok {
				continue
			}
			// Inverse means the ASes swap roles across the two claims.
			if !st.sameOrgOrZero(d.local, bd.connected) || !st.sameOrgOrZero(d.connected, bd.local) {
				continue
			}
			// Corroboration: a direct inference on the other side of
			// the backward IH means neither claim is nearer (§4.4.4).
			corroborated := false
			if onb, ok := st.otherHalf(nb); ok {
				if _, ok := st.direct[Half{Addr: onb.Addr, Dir: Forward}]; ok {
					corroborated = true
				}
			}
			if corroborated {
				if !d.uncertain || !bd.uncertain {
					d.uncertain = true
					bd.uncertain = true
					st.diag.UncertainPairs++
					changed = true
				}
				continue
			}
			st.discardDirect(nb)
			st.inferredOnce[nb] = true
			st.diag.InverseDiscarded++
			changed = true
		}
	}
	return changed
}

// sameOrgOrZero compares two ASes at the organisation level; zero
// (unannounced) endpoints match nothing.
func (st *runState) sameOrgOrZero(a, b inet.ASN) bool {
	if a.IsZero() || b.IsZero() {
		return false
	}
	return st.cfg.Orgs.SameOrg(a, b)
}
