package core

import (
	"mapit/internal/inet"
)

// addStep runs §4.4 to fixpoint: repeated passes of direct inference +
// other-side updates + contradiction resolution, each pass reading only
// the state committed by the previous pass. first selects whether the
// Fig 7 stage hooks fire (they describe the *initial* add step only).
//
// The first pass scans every eligible half — that is what gives each
// add step its committed-state §4.4.5 semantics regardless of what the
// previous step left behind. Every later pass scans only the dirty
// set: halves whose election inputs changed since they were last
// scanned (see dirty.go for the invariant). With DisableIncremental
// every pass scans everything, which is the pre-incremental behaviour;
// both modes produce byte-identical state.
func (st *runState) addStep(first bool) {
	st.dirty.clear()
	st.lastPassDual = 0
	firstPass := true
	for {
		st.diag.AddPasses++
		passDual := st.diag.DualSameAS
		var scanList []int32
		if firstPass || st.cfg.DisableIncremental {
			st.dirty.clear()
			scanList = st.idx.halvesIdx
		} else {
			scanList = st.takeDirty()
		}
		added := st.directPass(scanList)
		if first && firstPass {
			st.fireStage(StageDirect, 0)
		}
		changedDual := st.resolveDualInferences()
		changedDivergent := st.resolveDivergentOtherSides()
		if first && firstPass {
			st.fireStage(StageP2P, 0)
		}
		changedInverse := st.resolveInverseInferences()
		if first && firstPass {
			st.fireStage(StageInverse, 0)
		}
		// The final pass's delta is the stable same-organisation dual
		// count (nothing changes in a quiet pass), which the partitioned
		// engine's diagnostics reconstruction reads (see iterRec).
		st.lastPassDual = st.diag.DualSameAS - passDual
		firstPass = false
		if st.cfg.SinglePass {
			return
		}
		if added == 0 && !changedDual && !changedDivergent && !changedInverse {
			return
		}
	}
}

// scanHalf applies the Alg 2 direct-inference test to one half against
// the committed mappings. Read-only; safe from scan workers.
func (st *runState) scanHalf(hi int32, sc *electScratch) (directInf, bool) {
	if st.dirConnID[hi] >= 0 {
		return directInf{}, false
	}
	if st.inferredOnce[hi] {
		return directInf{}, false
	}
	return st.scanHalfElect(hi, st.electCached(hi, sc))
}

// scanHalfElect is the election-consuming tail of scanHalf, split out so
// the auditor can re-run the §4.4.1 tests against a from-scratch
// election instead of the memoised one.
func (st *runState) scanHalfElect(hi int32, elect countResult) (directInf, bool) {
	if elect.winnerOrg < 0 {
		return directInf{}, false
	}
	if float64(elect.votes) < st.cfg.F*float64(elect.total) {
		return directInf{}, false
	}
	curID := st.idx.mapID[hi]
	if curID >= 0 && st.idx.orgOfASN[curID] == elect.winnerOrg {
		return directInf{}, false // no AS switch: internal or sibling boundary (§4.9)
	}
	var cur inet.ASN
	if curID >= 0 {
		cur = st.idx.asnOf[curID]
	}
	return directInf{local: cur, localID: curID,
		connected: elect.connected, connectedID: elect.connectedID}, true
}

// pendingAdd is one scan survivor awaiting commit.
type pendingAdd struct {
	hi int32
	d  directInf
}

// directPass is Alg 2: one pass over scanList making direct inferences
// against the committed mappings, then committing the new inferences
// and their other-side (indirect) updates so they become visible to the
// next pass. scanList must be sorted (half indexes order exactly like
// halfCmp): the full halvesIdx list for a full pass, the drained dirty
// set otherwise. Returns the number of inferences added.
//
// The scan reads only committed state, so it shards across cfg.Workers
// goroutines; per-shard results are concatenated in shard order,
// keeping the commit order — and therefore the run — identical to the
// serial execution. Shard buffers and the merged adds slice persist on
// the runState and are reused across passes.
func (st *runState) directPass(scanList []int32) int {
	shards := resetShards(&st.addShards, numChunks(len(scanList), st.cfg.workers()))
	parallelChunks(len(scanList), st.cfg.workers(), func(w, lo, hi int) {
		sc := &st.electScr[w]
		for _, hidx := range scanList[lo:hi] {
			if d, ok := st.scanHalf(hidx, sc); ok {
				shards[w] = append(shards[w], pendingAdd{hi: hidx, d: d})
			}
		}
	})
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if cap(st.addsBuf) < total {
		st.addsBuf = make([]pendingAdd, 0, total)
	}
	adds := st.addsBuf[:0]
	for _, s := range shards {
		adds = append(adds, s...)
	}
	st.addsBuf = adds
	// Commit: new inferences and updates become visible next pass.
	for i := range adds {
		p := &adds[i]
		h := st.halfAt(p.hi)
		// Copy out of the reused scan buffer: direct holds pointers.
		st.setDirect(h, p.hi, st.newDirectInf(p.d))
		st.inferredOnce[p.hi] = true
		st.setOverrideIdx(h, p.hi, p.d.connected, p.d.connectedID)
		if st.cfg.WholeInterfaceUpdates { // ablation only
			st.setOverrideIdx(h.Opposite(), p.hi^1, p.d.connected, p.d.connectedID)
		}
		// §4.4.2: update the other side of the link, unless the
		// interface is IXP-numbered (multipoint peering LANs have no
		// meaningful /30-/31 other side, fn7) or the pairing was severed.
		ai := p.hi >> 1
		if st.idx.ixpA[ai] {
			continue
		}
		// Indexed other side: the flat mirrors answer the severed and
		// self-direct tests without touching a map. Unindexed (or absent)
		// other sides fall back to the Half-keyed path.
		if oi := st.idx.otherIdx[ai]; oi >= 0 {
			if st.severedIdx[ai] {
				continue
			}
			oh := Half{Addr: st.addrs[oi], Dir: h.Dir.Opposite()}
			ohIdx := halfSlot(oi, oh.Dir)
			st.setIndirectIdx(oh, ohIdx, h, p.hi)
			if st.dirConnID[ohIdx] < 0 {
				st.setOverrideIdx(oh, ohIdx, p.d.connected, p.d.connectedID)
			}
		} else if oh, ok := st.otherHalf(h); ok {
			st.setIndirect(oh, h)
			if _, selfDirect := st.direct[oh]; !selfDirect {
				st.setOverride(oh, p.d.connected)
			}
		}
	}
	return len(adds)
}

// resolveDualInferences applies the §4.4.3 dual-inference rule: when both
// halves of one interface carry direct inferences toward *different*
// organisations, the backward one is the artifact (third-party address:
// the router replied via its outgoing interface) and is discarded.
// Interfaces without a base IP2AS mapping are left alone, as are duals
// toward the same organisation. Reports whether anything changed.
func (st *runState) resolveDualInferences() bool {
	if st.cfg.DisableDualResolution {
		return false
	}
	ix := &st.idx
	changed := false
	var toDrop []int32 // sorted: collected in sorted iteration order
	for _, hi := range st.directScan() {
		if hi&1 == 0 {
			continue // backward halves drive the rule
		}
		connB := st.dirConnID[hi]
		connF := st.dirConnID[hi^1] // forward half of the same interface
		if connF < 0 {
			continue
		}
		if ix.baseID[hi>>1] < 0 {
			continue // unannounced: do not fix (§4.4.3)
		}
		if ix.orgOfASN[connB] == ix.orgOfASN[connF] {
			st.diag.DualSameAS++
			continue // same AS both ways: retain both
		}
		toDrop = append(toDrop, hi)
	}
	for _, hi := range toDrop {
		st.discardDirect(st.halfAt(hi))
		st.inferredOnce[hi] = true // cannot be re-made this add step
		st.diag.DualResolved++
		changed = true
	}
	return changed
}

// resolveDivergentOtherSides applies the second §4.4.3 rule: direct
// inferences on both endpoints of a putative /30-/31 link that name
// different connected organisations mean the other-side pairing itself is
// wrong. The pairing is severed (no more indirect updates across it) and
// both direct inferences stand. Reports whether anything changed.
func (st *runState) resolveDivergentOtherSides() bool {
	ix := &st.idx
	changed := false
	var toSever []int32 // addrIdx, sorted (adjacent duplicates possible)
	for _, hi := range st.directScan() {
		ai := hi >> 1
		if st.severedIdx[ai] || ix.ixpA[ai] {
			continue // IXP LANs are multipoint: no /30-/31 other side (fn7)
		}
		oi := ix.otherIdx[ai]
		if oi < 0 || ix.ixpA[oi] {
			continue
		}
		if ix.baseID[ai] < 0 || ix.baseID[oi] < 0 {
			continue // unannounced: do not fix (§4.4.3)
		}
		// The paper's rule is about the two *interfaces*: a direct
		// inference on either half of the other side naming a
		// different connected organisation diverges.
		myOrg := ix.orgOfASN[st.dirConnID[hi]]
		for _, od := range [2]int32{halfSlot(oi, Forward), halfSlot(oi, Backward)} {
			oc := st.dirConnID[od]
			if oc < 0 {
				continue
			}
			if ix.orgOfASN[oc] != myOrg {
				toSever = append(toSever, ai)
				break
			}
		}
	}
	for _, ai := range toSever {
		a := st.addrs[ai]
		if st.severed[a] {
			continue // already severed via the partner
		}
		other := st.otherSide[a]
		st.severed[a] = true
		st.severedIdx[ai] = true
		st.severed[other] = true
		if oi := ix.otherIdx[ai]; oi >= 0 {
			st.severedIdx[oi] = true
		}
		st.diag.DivergentOtherSides++
		// Drop any indirect couplings between the two interfaces.
		for _, h := range [4]Half{
			{Addr: a, Dir: Forward}, {Addr: a, Dir: Backward},
			{Addr: other, Dir: Forward}, {Addr: other, Dir: Backward},
		} {
			if src, ok := st.indirect[h]; ok && (src.Addr == a || src.Addr == other) {
				st.unsetIndirect(h)
				st.recomputeOverride(h)
			}
		}
		changed = true
	}
	return changed
}

// resolveInverseInferences applies §4.4.4: a forward inference on h
// (link h.AS ↔ AS_B) combined with a backward inference on a member n of
// N_F(h) claiming the inverse link (AS_B ↔ h.AS) cannot both be right.
// The forward inference is topologically nearer to the monitors, so the
// backward one is discarded — unless the backward IH's other side
// carries its own direct inference, in which case neither is nearer and
// both become uncertain. Reports whether anything changed.
func (st *runState) resolveInverseInferences() bool {
	if st.cfg.DisableInverseResolution {
		return false
	}
	ix := &st.idx
	changed := false
	fwd := st.resolveScratch[:0]
	for _, hi := range st.directScan() {
		if hi&1 == 0 && !st.dirUnc[hi] {
			fwd = append(fwd, hi)
		}
	}
	st.resolveScratch = fwd
	for _, hi := range fwd {
		dc := st.dirConnID[hi]
		if dc < 0 {
			continue // discarded earlier in this resolution
		}
		dl := st.dirLocalID[hi]
		// Forward halves are eligible, so the flat neighbour range is
		// exactly N_F; entries are the backward halves of the members
		// (IXP members bit-complemented — recover them, they can carry
		// inferences even though they never vote).
		for _, ni := range ix.nbrFlat[ix.nbrOff[hi]:ix.nbrOff[hi+1]] {
			if ni < 0 {
				ni = ^ni
			}
			bdConn := st.dirConnID[ni]
			if bdConn < 0 {
				continue
			}
			// Inverse means the ASes swap roles across the two claims;
			// unannounced (absent) endpoints match nothing.
			bl := st.dirLocalID[ni]
			if dl < 0 || bl < 0 ||
				ix.orgOfASN[dl] != ix.orgOfASN[bdConn] ||
				ix.orgOfASN[dc] != ix.orgOfASN[bl] {
				continue
			}
			// Corroboration: a direct inference on the other side of
			// the backward IH means neither claim is nearer (§4.4.4).
			corroborated := false
			nai := ni >> 1
			if oi := ix.otherIdx[nai]; oi >= 0 && !st.severedIdx[nai] {
				corroborated = st.dirConnID[halfSlot(oi, Forward)] >= 0
			}
			if corroborated {
				if !st.dirUnc[hi] || !st.dirUnc[ni] {
					st.setUncertain(hi)
					st.setUncertain(ni)
					st.diag.UncertainPairs++
					changed = true
				}
				continue
			}
			st.discardDirect(st.halfAt(ni))
			st.inferredOnce[ni] = true
			st.diag.InverseDiscarded++
			changed = true
		}
	}
	return changed
}
