package core

import (
	"cmp"
	"slices"

	"mapit/internal/audit"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Inference is one inferred inter-AS link interface.
type Inference struct {
	// Addr is the interface address the inference was made on.
	Addr inet.Addr
	// Dir is the half that carried the evidence (forward: the AS switch
	// shows in N_F; backward: in N_B).
	Dir Direction
	// Local is the IP2AS mapping of the half at the moment the
	// inference was made — one endpoint AS of the link. Zero when the
	// address was unannounced.
	Local inet.ASN
	// Connected is the AS on the other end of the link (the plurality
	// AS of the neighbour set, or the stub AS for §4.8 inferences).
	Connected inet.ASN
	// OtherSide is the putative address of the far interface on the
	// same /30 or /31 link (§4.2).
	OtherSide inet.Addr
	// Uncertain marks inferences the §4.4.4 inverse resolution could
	// not adjudicate; they are reported separately from the high
	// confidence list.
	Uncertain bool
	// Stub marks inferences produced by the §4.8 stub heuristic.
	Stub bool
	// Indirect marks records derived purely from the other side of a
	// direct inference (§4.4.2): the far interface of an inferred link.
	Indirect bool
}

// Link reports the unordered AS pair the inference claims the interface
// connects.
func (inf Inference) Link() (a, b inet.ASN) {
	if inf.Local <= inf.Connected {
		return inf.Local, inf.Connected
	}
	return inf.Connected, inf.Local
}

// Diagnostics aggregates the run statistics the paper reports alongside
// its results.
type Diagnostics struct {
	// Iterations is the number of outer add/remove iterations executed
	// before the state repeated (3 in the paper's experiments, §4.6).
	Iterations int
	// AddPasses is the total number of direct-inference passes.
	AddPasses int
	// RemovePasses is the total number of §4.5 remove-step passes.
	// Identical for the incremental and full-rescan engines — the
	// dirty set changes how much of a pass is scanned, never how many
	// passes run.
	RemovePasses int
	// Interfaces counts interface addresses that appeared adjacent to
	// at least one other address.
	Interfaces int
	// EligibleForward / EligibleBackward count halves with |N| ≥ 2,
	// the precondition for a direct inference (§4.3).
	EligibleForward, EligibleBackward int
	// BothNsOverlap counts interfaces with some address in both N_F and
	// N_B (0.3% of interfaces in the paper, §3.2 fn3).
	BothNsOverlap int
	// Slash31Fraction is the share of addresses the §4.2 heuristic
	// deems /31-numbered (40.4% in the paper).
	Slash31Fraction float64
	// DualResolved counts §4.4.3 dual inferences resolved by dropping
	// the backward half.
	DualResolved int
	// DualSameAS counts dual inferences retained because both
	// directions involve the same organisation.
	DualSameAS int
	// DivergentOtherSides counts §4.4.3 divergent-other-side pairs (90
	// in the paper's final results).
	DivergentOtherSides int
	// InverseDiscarded counts backward inferences dropped by §4.4.4.
	InverseDiscarded int
	// UncertainPairs counts inference pairs demoted to uncertain.
	UncertainPairs int
	// Demoted counts direct inferences demoted during remove steps.
	Demoted int
	// StubInferences counts §4.8 inferences.
	StubInferences int
	// Decode carries the ingest decode-health counters (corrupt blocks
	// skipped, traces dropped, errors by class) when the run was fed
	// from a binary corpus with Config.DecodeStats set; zero otherwise.
	Decode trace.DecodeStats
	// Spill carries the out-of-core ingest counters (segment files,
	// spilled runs and bytes, external merges) when the run was fed
	// from a spilling collector with Config.SpillStats set; zero
	// otherwise.
	Spill SpillStats
	// AuditViolations counts invariant violations the runtime auditor
	// detected, including ones past the report's retention cap; zero
	// when auditing was off or every check passed. The full structured
	// report is Result.Audit. Kept as a counter so Diagnostics stays
	// comparable with ==.
	AuditViolations int
	// Window carries the sliding-window engine's lifetime and churn
	// counters when the run came from a Window.Advance; zero for batch
	// runs. Plain values, so Diagnostics stays comparable.
	Window WindowStats
}

// Result is the output of a MAP-IT run.
type Result struct {
	// Inferences holds every inferred inter-AS link interface, sorted
	// by (address, direction). Direct inferences come with Uncertain
	// and Stub flags; records with Indirect=true are the far sides of
	// direct inferences.
	Inferences []Inference
	// ProbeSuggestions lists suspected boundaries starved of evidence —
	// the targets for the §5.4 remedy of collecting additional traces.
	ProbeSuggestions []ProbeSuggestion
	// Diag carries run statistics.
	Diag Diagnostics
	// Audit is the runtime invariant auditor's report; nil unless
	// Config.Audit enabled auditing for the run.
	Audit *audit.Report
	// Partition describes the component schedule of the partitioned
	// fixpoint (component count, sizes, per-component iteration counts,
	// replays), or records why the run fell back to the monolithic
	// loop. Purely observational: excluded from differential result
	// comparison, since partitioning never changes the output.
	Partition *PartitionInfo
}

// HighConfidence returns the non-uncertain direct inferences — the
// paper's headline output list. The slice is sized by a counted pass, so
// the call costs exactly one allocation; callers that query repeatedly
// should compile the result into a snapshot (internal/snapshot), whose
// prebuilt HighConfidence view costs none.
func (r *Result) HighConfidence() []Inference {
	return filterInferences(r.Inferences, func(inf *Inference) bool {
		return !inf.Indirect && !inf.Uncertain
	})
}

// Uncertain returns the uncertain direct inferences (the "much smaller
// list", §4.4.4).
func (r *Result) Uncertain() []Inference {
	return filterInferences(r.Inferences, func(inf *Inference) bool {
		return !inf.Indirect && inf.Uncertain
	})
}

// filterInferences copies the records keep selects into a slice sized by
// a counted first pass — one exact allocation instead of append-doubling
// through the whole list.
func filterInferences(infs []Inference, keep func(*Inference) bool) []Inference {
	n := 0
	for i := range infs {
		if keep(&infs[i]) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Inference, 0, n)
	for i := range infs {
		if keep(&infs[i]) {
			out = append(out, infs[i])
		}
	}
	return out
}

// ByAddr returns all inference records for an address.
func (r *Result) ByAddr(a inet.Addr) []Inference {
	var out []Inference
	for _, inf := range r.Inferences {
		if inf.Addr == a {
			out = append(out, inf)
		}
	}
	return out
}

// ASLink is an inferred link between two organisations with the
// interface addresses that evidence it.
type ASLink struct {
	A, B  inet.ASN // A <= B
	Addrs []inet.Addr
}

// Links aggregates the high confidence inferences into distinct AS-pair
// links. Inferences with an unknown (zero) endpoint are skipped.
func (r *Result) Links() []ASLink {
	type key struct{ a, b inet.ASN }
	agg := make(map[key][]inet.Addr)
	for _, inf := range r.Inferences {
		if inf.Indirect || inf.Uncertain || inf.Local.IsZero() || inf.Connected.IsZero() {
			continue
		}
		a, b := inf.Link()
		agg[key{a, b}] = append(agg[key{a, b}], inf.Addr)
	}
	out := make([]ASLink, 0, len(agg))
	for k, addrs := range agg {
		slices.Sort(addrs)
		out = append(out, ASLink{A: k.a, B: k.b, Addrs: addrs})
	}
	slices.SortFunc(out, func(x, y ASLink) int {
		if c := cmp.Compare(x.A, y.A); c != 0 {
			return c
		}
		return cmp.Compare(x.B, y.B)
	})
	return out
}
