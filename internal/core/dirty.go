package core

import (
	"slices"

	"mapit/internal/inet"
)

// dirtySet tracks halves whose §4.4.1 election inputs may have changed
// since they were last scanned. The invariant the incremental engine
// maintains (see DESIGN.md §6): at every pass boundary,
//
//	dirty ⊇ { eligible halves whose election inputs changed since
//	          that half's most recent scan }
//
// Every commit that changes a committed mapping marks the readers of
// the changed half plus the half itself; takeDirty clears marks exactly
// for the halves it hands to the next scan; a full pass (the first of
// every add or remove step) clears everything because it rescans
// everything. Marking only ever happens from serial commit code.
type dirtySet struct {
	mark    []bool
	list    []int32
	scratch []int32
}

func (ds *dirtySet) add(idx int32) {
	if !ds.mark[idx] {
		ds.mark[idx] = true
		ds.list = append(ds.list, idx)
	}
}

// clear empties the set without draining it (used before a full pass,
// which subsumes any pending marks).
func (ds *dirtySet) clear() {
	for _, idx := range ds.list {
		ds.mark[idx] = false
	}
	ds.list = ds.list[:0]
}

// takeDirty drains the set in halfCmp order — half indexes sort exactly
// like (address, direction) — into a scratch slice reused across
// passes. The copy matters: commits during the pass that consumes the
// returned list append fresh marks to ds.list, so the two cannot share
// a backing array.
func (st *runState) takeDirty() []int32 {
	ds := &st.dirty
	slices.Sort(ds.list)
	out := ds.scratch[:0]
	for _, idx := range ds.list {
		ds.mark[idx] = false
		out = append(out, idx)
	}
	ds.list = ds.list[:0]
	ds.scratch = out
	return out
}

// markDirtyReaders records that half idx's committed mapping changed:
// every eligible half whose election reads it (the reverse dependency
// index) must be rescanned — and its memoised election result is now
// stale — plus idx itself when eligible: a half's own mapping feeds the
// §4.9 same-organisation guard of its scan, though not its tally, so
// its memo stays valid.
func (st *runState) markDirtyReaders(idx int32) {
	if st.cfg.DisableIncremental {
		return
	}
	ix := &st.idx
	for _, dep := range ix.depFlat[ix.depOff[idx]:ix.depOff[idx+1]] {
		st.dirty.add(dep)
		ix.electValid[dep] = false
	}
	if ix.nbrOff[idx+1] > ix.nbrOff[idx] { // eligible itself
		st.dirty.add(idx)
	}
}

// setOverride commits an IP2AS override for h, keeping the overrides
// map (authoritative for mapping(), stateHash, and the result) and the
// flat mapID view (authoritative for elections) in lockstep, and
// marking the readers of h dirty when the committed value actually
// changes. Every override write in the algorithm goes through here or
// clearOverride — that single funnel is what makes the dirty-set
// invariant checkable.
func (st *runState) setOverride(h Half, asn inet.ASN) {
	if old, ok := st.overrides[h]; ok {
		if old == asn {
			return
		}
		st.hashSum -= entryHash(4, h, uint32(old))
	}
	st.hashSum += entryHash(4, h, uint32(asn))
	st.overrides[h] = asn
	if idx := st.halfIdx(h); idx >= 0 {
		id := st.internASN(asn)
		if st.idx.mapID[idx] != id {
			st.idx.mapID[idx] = id
			st.markDirtyReaders(idx)
		}
	}
}

// setOverrideIdx is setOverride for commit paths that already hold h's
// half index (≥ 0) and asn's intern id, skipping both lookups.
func (st *runState) setOverrideIdx(h Half, idx int32, asn inet.ASN, id int32) {
	if old, ok := st.overrides[h]; ok {
		if old == asn {
			return
		}
		st.hashSum -= entryHash(4, h, uint32(old))
	}
	st.hashSum += entryHash(4, h, uint32(asn))
	st.overrides[h] = asn
	if st.idx.mapID[idx] != id {
		st.idx.mapID[idx] = id
		st.markDirtyReaders(idx)
	}
}

// clearOverride removes h's override, restoring the base mapping as the
// committed view.
func (st *runState) clearOverride(h Half) {
	old, ok := st.overrides[h]
	if !ok {
		return
	}
	st.hashSum -= entryHash(4, h, uint32(old))
	delete(st.overrides, h)
	if idx := st.halfIdx(h); idx >= 0 {
		id := st.idx.baseID[idx>>1]
		if st.idx.mapID[idx] != id {
			st.idx.mapID[idx] = id
			st.markDirtyReaders(idx)
		}
	}
}
