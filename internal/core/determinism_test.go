package core

import (
	"reflect"
	"testing"

	"mapit/internal/topo"
	"mapit/internal/trace"
)

// TestParallelPipelineDeterminism runs the full ingest + inference
// pipeline serially and with Workers=8 on the default evaluation world
// and asserts every intermediate and final artefact is identical: the
// Evidence adjacency slice, the per-iteration stateHash, and the
// Result. Run under -race in CI, this is both the determinism proof and
// the data-race canary for the sharded pipeline.
func TestParallelPipelineDeterminism(t *testing.T) {
	gen := topo.DefaultGenConfig()
	tc := topo.DefaultTraceConfig()
	if testing.Short() {
		gen = topo.SmallGenConfig()
		tc.DestsPerMonitor = 400
	}
	w := topo.Generate(gen)
	ds := w.GenTraces(tc)
	orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())

	// Ingest: serial collector vs sharded collector vs parallel sanitise.
	serial := NewCollector()
	for _, tr := range ds.Traces {
		serial.Add(tr)
	}
	evS := serial.Evidence()
	par := NewParallelCollector(8)
	for _, tr := range ds.Traces {
		par.Add(tr)
	}
	evP := par.Evidence()
	if !reflect.DeepEqual(evS.Adjacencies, evP.Adjacencies) {
		t.Fatalf("sharded collector adjacency slice diverges (%d vs %d)",
			len(evS.Adjacencies), len(evP.Adjacencies))
	}
	if evS.Stats != evP.Stats {
		t.Fatalf("sharded collector stats diverge: %+v vs %+v", evS.Stats, evP.Stats)
	}
	if !reflect.DeepEqual(evS.AllAddrs, evP.AllAddrs) {
		t.Fatal("sharded collector address set diverges")
	}
	sanP := ds.SanitizeParallel(8)
	if sanS := ds.Sanitize(); !reflect.DeepEqual(sanS.Retained, sanP.Retained) ||
		sanS.Stats != sanP.Stats {
		t.Fatal("parallel sanitise diverges from serial")
	}
	if evSan := EvidenceFrom(sanP); !reflect.DeepEqual(evS.Adjacencies, evSan.Adjacencies) {
		t.Fatal("evidence from parallel sanitise diverges from streaming evidence")
	}

	// State build + algorithm: per-iteration state hashes must agree.
	cfgS := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir, F: 0.5, Workers: 1}
	cfgP := cfgS
	cfgP.Workers = 8
	stS := newRunState(&cfgS, evS)
	stP := newRunState(&cfgP, evP)
	if hS, hP := stS.stateHash(), stP.stateHash(); hS != hP {
		t.Fatalf("initial stateHash diverges: %x vs %x", hS, hP)
	}
	for iter := 1; iter <= 3; iter++ {
		stS.resetInferredOnce()
		stP.resetInferredOnce()
		stS.addStep(iter == 1)
		stP.addStep(iter == 1)
		stS.removeStep()
		stP.removeStep()
		if hS, hP := stS.stateHash(), stP.stateHash(); hS != hP {
			t.Fatalf("stateHash diverges after iteration %d: %x vs %x", iter, hS, hP)
		}
	}

	// Full runs end to end.
	rS, err := RunEvidence(evS, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := RunEvidence(evP, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rS.Inferences, rP.Inferences) {
		t.Fatalf("inferences diverge (%d vs %d)", len(rS.Inferences), len(rP.Inferences))
	}
	if rS.Diag != rP.Diag {
		t.Fatalf("diagnostics diverge: %+v vs %+v", rS.Diag, rP.Diag)
	}
	if !reflect.DeepEqual(rS.ProbeSuggestions, rP.ProbeSuggestions) {
		t.Fatal("probe suggestions diverge")
	}
}

// BenchmarkStateHash measures the from-scratch §4.6 fingerprint
// rebuild on a converged run state (the maintained stateHash itself is
// a field read; the recompute is what verification pays).
func BenchmarkStateHash(b *testing.B) {
	w := topo.Generate(topo.SmallGenConfig())
	tc := topo.DefaultTraceConfig()
	tc.DestsPerMonitor = 400
	ds := w.GenTraces(tc)
	orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
	cfg := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir, F: 0.5}
	var _ = trace.Stats{} // keep the trace import alongside topo
	st := newRunState(&cfg, EvidenceFrom(ds.Sanitize()))
	st.resetInferredOnce()
	st.addStep(true)
	st.removeStep()
	if st.stateHash() != st.stateHashRecompute() {
		b.Fatal("maintained fingerprint diverges from recompute")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.stateHashRecompute() == 0 {
			b.Fatal("degenerate hash")
		}
	}
}
