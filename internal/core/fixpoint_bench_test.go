package core

import (
	"runtime"
	"testing"

	"mapit/internal/topo"
)

// BenchmarkFixpointFull / BenchmarkFixpointIncremental time the
// §4.4–§4.6 fixpoint loop alone (evidence collection and state build
// excluded via StopTimer) on small and medium synthetic topologies,
// with the dirty-set engine off and on. Both engines produce identical
// results (TestIncrementalEquivalenceTopo); the delta is pure scan
// savings: the full engine re-elects every eligible half on every pass
// of every add step and every direct inference on every pass of every
// remove step, the incremental engine re-elects only halves whose
// election inputs changed after the first pass of each step.
//
// CI runs these with -benchtime=1x as a smoke test and snapshots the
// numbers to BENCH_fixpoint.json (see internal/tools/benchjson).

func BenchmarkFixpointFull(b *testing.B)        { benchFixpoint(b, true) }
func BenchmarkFixpointIncremental(b *testing.B) { benchFixpoint(b, false) }

func benchFixpoint(b *testing.B, disableIncremental bool) {
	sizes := []struct {
		name  string
		gen   topo.GenConfig
		dests int
	}{
		{"small", topo.SmallGenConfig(), 400},
		{"medium", topo.DefaultGenConfig(), 0},
	}
	for _, size := range sizes {
		b.Run(size.name, func(b *testing.B) {
			w := topo.Generate(size.gen)
			tc := topo.DefaultTraceConfig()
			if size.dests > 0 {
				tc.DestsPerMonitor = size.dests
			}
			ds := w.GenTraces(tc)
			orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
			cfg := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir,
				F: 0.5, Workers: runtime.GOMAXPROCS(0),
				DisableIncremental: disableIncremental}
			ev := EvidenceFrom(ds.SanitizeParallel(cfg.Workers))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := newRunState(&cfg, ev)
				b.StartTimer()
				st.fixpoint()
			}
		})
	}
}
