package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"mapit/internal/inet"
)

// countingIP2AS wraps a map-backed resolver and counts source hits.
// The counter is atomic because primeParallel consults the source from
// several workers at once.
type countingIP2AS struct {
	m     map[inet.Addr]inet.ASN
	calls atomic.Int64
}

func (c *countingIP2AS) Lookup(a inet.Addr) (inet.ASN, bool) {
	c.calls.Add(1)
	asn, ok := c.m[a]
	return asn, ok
}

func TestMemoIP2AS(t *testing.T) {
	src := &countingIP2AS{m: map[inet.Addr]inet.ASN{
		inet.MustParseAddr("10.0.0.1"): 100,
		inet.MustParseAddr("10.0.0.2"): 200,
	}}
	memo := newMemoIP2AS(src)
	probe := func(s string, wantASN inet.ASN, wantOK bool) {
		t.Helper()
		asn, ok := memo.Lookup(inet.MustParseAddr(s))
		if asn != wantASN || ok != wantOK {
			t.Errorf("Lookup(%s) = %v, %v; want %v, %v", s, asn, ok, wantASN, wantOK)
		}
	}
	// Hits, misses, and repeats of both.
	probe("10.0.0.1", 100, true)
	probe("9.9.9.9", 0, false)
	probe("10.0.0.1", 100, true)
	probe("9.9.9.9", 0, false) // the miss must be cached too
	probe("10.0.0.2", 200, true)
	if n := src.calls.Load(); n != 3 {
		t.Errorf("source consulted %d times; want 3 (one per distinct address)", n)
	}
}

// TestMemoPrimeParallel checks the parallel prime resolves the worklist
// identically for any worker count and leaves every answer cached.
func TestMemoPrimeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := &countingIP2AS{m: make(map[inet.Addr]inet.ASN)}
	addrs := make([]inet.Addr, 500)
	for i := range addrs {
		addrs[i] = inet.Addr(rng.Uint32())
		if i%3 != 0 { // two thirds announced
			src.m[addrs[i]] = inet.ASN(1 + i)
		}
	}
	want := newMemoIP2AS(src).primeParallel(addrs, 1)
	for _, workers := range []int{2, 4, 7} {
		memo := newMemoIP2AS(src)
		got := memo.primeParallel(addrs, workers)
		for i := range addrs {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: asns[%d] = %v; want %v", workers, i, got[i], want[i])
			}
		}
		before := src.calls.Load()
		for _, a := range addrs {
			memo.Lookup(a)
		}
		if after := src.calls.Load(); after != before {
			t.Errorf("workers=%d: primed memo consulted the source %d more times",
				workers, after-before)
		}
	}
}

// TestMemoIP2ASExported exercises the exported constructor the
// baselines and verifiers use.
func TestMemoIP2ASExported(t *testing.T) {
	src := &countingIP2AS{m: map[inet.Addr]inet.ASN{inet.MustParseAddr("10.0.0.1"): 7}}
	m := MemoIP2AS(src)
	for i := 0; i < 10; i++ {
		if asn, ok := m.Lookup(inet.MustParseAddr("10.0.0.1")); !ok || asn != 7 {
			t.Fatalf("Lookup = %v, %v", asn, ok)
		}
	}
	if n := src.calls.Load(); n != 1 {
		t.Errorf("source consulted %d times; want 1", n)
	}
}
