package core

import (
	"testing"

	"mapit/internal/relation"
)

func TestProbeSuggestions(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.105.0.0/16=600", // ISP with a customer
	)
	rels := relation.New()
	rels.AddTransit(600, 700)
	// A single-neighbour boundary toward an ISP: blocked for the stub
	// heuristic (§4.8 requires a stub), so it becomes a suggestion —
	// exactly the §5.4 case ("we do not trust a single address
	// belonging to an ISP").
	s := sanitized(
		tr("20.100.2.1", "20.105.0.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Rels: rels})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HighConfidence()) != 0 {
		t.Fatalf("unexpected inferences: %v", r.HighConfidence())
	}
	var found bool
	for _, sug := range r.ProbeSuggestions {
		if sug.Addr == ip("20.100.2.1") && sug.Dir == Forward {
			found = true
			if sug.Neighbor != ip("20.105.0.1") || sug.LocalAS != 100 || sug.NeighborAS != 600 {
				t.Errorf("suggestion = %+v", sug)
			}
		}
	}
	if !found {
		t.Fatalf("missing suggestion; got %v", r.ProbeSuggestions)
	}
}

func TestProbeSuggestionsSkipInferred(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.104.0.0/16=500",
	)
	rels := relation.New()
	rels.AddTransit(100, 500) // 500 is a stub: the heuristic fires
	s := sanitized(
		tr("20.100.1.1", "20.104.0.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Rels: rels})
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag.StubInferences != 1 {
		t.Fatal("stub inference expected")
	}
	for _, sug := range r.ProbeSuggestions {
		if sug.Addr == ip("20.100.1.1") {
			t.Errorf("inferred boundary still suggested: %+v", sug)
		}
	}
}

func TestProbeSuggestionsSkipSameOrg(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=100", // same AS both sides
	)
	s := sanitized(tr("20.100.2.1", "20.101.0.1"))
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProbeSuggestions) != 0 {
		t.Errorf("same-org adjacency suggested: %v", r.ProbeSuggestions)
	}
}
