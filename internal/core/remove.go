package core

import "slices"

// removeStep is Alg 3 (§4.5): repeated passes demoting direct inferences
// that would no longer be made — the connected organisation must still
// account for more than half of the half's neighbour set under the
// committed mappings. A demoted inference survives only as an indirect
// inference backed by a direct inference on its other side; at the end
// of each pass every indirect inference without a surviving associated
// direct inference is discarded along with its IP2AS update. Each pass
// reads only the previous pass's committed state.
func (st *runState) removeStep() {
	if st.cfg.DisableRemoveStep {
		return
	}
	for {
		// Phase 1: find direct inferences that no longer hold, against
		// the committed (previous-pass) state.
		var demote []Half
		for h, d := range st.direct {
			if d.stub {
				continue // §4.8 inferences are made after convergence
			}
			if !st.stillSupported(h, d) {
				demote = append(demote, h)
			}
		}
		slices.SortFunc(demote, halfCmp)

		// Phase 2: demote them to indirect (retaining the IP2AS
		// mapping for now), associated with their other side.
		for _, h := range demote {
			delete(st.direct, h)
			st.diag.Demoted++
			if oh, ok := st.otherHalf(h); ok {
				// The inference survives iff the other side's direct
				// inference stands; record the association. The
				// existing override is retained pending the purge.
				if _, ok := st.indirect[h]; !ok {
					st.indirect[h] = oh
				}
			} else if _, ok := st.indirect[h]; !ok {
				// No other side: nothing can back it; synthesise a
				// dangling association so the purge below drops it.
				st.indirect[h] = h
			}
		}

		// Phase 3: purge indirect inferences whose associated direct
		// inference is gone, removing their updates.
		var purge []Half
		for h, src := range st.indirect {
			if _, ok := st.direct[src]; !ok {
				purge = append(purge, h)
			}
		}
		slices.SortFunc(purge, halfCmp)
		for _, h := range purge {
			delete(st.indirect, h)
			st.recomputeOverride(h)
		}

		if len(demote) == 0 && len(purge) == 0 {
			return
		}
	}
}

// stillSupported checks the §4.5 retention criterion for a direct
// inference — Alg 3's "if the inference would no longer be made": the
// connected organisation must still win the strict plurality of the
// half's neighbour set under the committed mappings and still clear the
// f threshold. (The §4.5 prose paraphrases this as the connected AS
// "accounting for more than half" of N; we implement the algorithm's own
// rule so add and remove stay symmetric at every f.)
func (st *runState) stillSupported(h Half, d *directInf) bool {
	elect := st.electNeighborAS(h)
	if elect.winner.IsZero() || elect.winner != st.cfg.Orgs.Canonical(d.connected) {
		return false
	}
	return float64(elect.votes) >= st.cfg.F*float64(elect.total)
}
