package core

import "slices"

// removeStep is Alg 3 (§4.5): repeated passes demoting direct inferences
// that would no longer be made — the connected organisation must still
// account for more than half of the half's neighbour set under the
// committed mappings. A demoted inference survives only as an indirect
// inference backed by a direct inference on its other side; at the end
// of each pass every indirect inference without a surviving associated
// direct inference is discarded along with its IP2AS update. Each pass
// reads only the previous pass's committed state.
//
// Like the add step, the first pass re-elects every direct inference
// (the add step just changed an unknown number of mappings) and later
// passes re-elect only the dirty set: inferences whose election inputs
// changed when an earlier pass removed an update. The phase-1 scan is
// read-only against committed state, so it shards across cfg.Workers
// exactly as directPass does; chunk-ordered concatenation over a sorted
// scan list keeps the demote order identical to the serial scan.
func (st *runState) removeStep() {
	if st.cfg.DisableRemoveStep {
		return
	}
	st.dirty.clear()
	firstPass := true
	for {
		st.diag.RemovePasses++
		// Phase 1: find direct inferences that no longer hold, against
		// the committed (previous-pass) state.
		var scanList []int32
		if firstPass || st.cfg.DisableIncremental {
			st.dirty.clear()
			scanList = st.directScan()
		} else {
			scanList = st.takeDirty()
		}
		firstPass = false
		shards := resetShards(&st.demoteShards, numChunks(len(scanList), st.cfg.workers()))
		parallelChunks(len(scanList), st.cfg.workers(), func(w, lo, hi int) {
			sc := &st.electScr[w]
			for _, hidx := range scanList[lo:hi] {
				connID := st.dirConnID[hidx]
				if connID < 0 || st.dirStub[hidx] {
					continue // no direct here; §4.8 inferences are made after convergence
				}
				if !st.stillSupported(hidx, connID, sc) {
					shards[w] = append(shards[w], hidx)
				}
			}
		})
		demote := st.demoteBuf[:0]
		for _, s := range shards {
			demote = append(demote, s...)
		}
		st.demoteBuf = demote

		// Phase 2: demote them to indirect (retaining the IP2AS
		// mapping for now), associated with their other side.
		for _, hidx := range demote {
			h := st.halfAt(hidx)
			st.unsetDirectIdx(h, hidx)
			st.diag.Demoted++
			if st.cfg.WholeInterfaceUpdates {
				// The mirrored opposite-half override loses its
				// backing direct inference with the demotion.
				st.recomputeOverride(h.Opposite())
			}
			if oi := st.idx.otherIdx[hidx>>1]; oi >= 0 && !st.severedIdx[hidx>>1] {
				// Indexed other side, pairing intact: the inference
				// survives iff the other side's direct inference
				// stands; record the association. The existing
				// override is retained pending the purge.
				if _, ok := st.indirect[h]; !ok {
					oh := Half{Addr: st.addrs[oi], Dir: h.Dir.Opposite()}
					st.setIndirectIdx(h, hidx, oh, halfSlot(oi, oh.Dir))
				}
			} else if oh, ok := st.otherHalf(h); ok {
				if _, ok := st.indirect[h]; !ok {
					st.setIndirect(h, oh)
				}
			} else if _, ok := st.indirect[h]; !ok {
				// No other side: nothing can back it; synthesise a
				// dangling association so the purge below drops it.
				st.setIndirect(h, h)
			}
		}

		// Phase 3: purge indirect inferences whose associated direct
		// inference is gone, removing their updates. The association
		// source is an unindexed other-side half exactly when a phase-2
		// demotion had nothing indexed to point at — such a half can
		// never carry a direct inference, so it purges.
		purge := st.purgeBuf[:0]
		for h, src := range st.indirect {
			if si := st.halfIdx(src); si < 0 || st.dirConnID[si] < 0 {
				purge = append(purge, h)
			}
		}
		st.purgeBuf = purge
		slices.SortFunc(purge, halfCmp)
		for _, h := range purge {
			st.unsetIndirect(h)
			st.recomputeOverride(h)
		}

		if len(demote) == 0 && len(purge) == 0 {
			return
		}
	}
}

// stillSupported checks the §4.5 retention criterion for a direct
// inference — Alg 3's "if the inference would no longer be made": the
// connected organisation must still win the strict plurality of the
// half's neighbour set under the committed mappings and still clear the
// f threshold. (The §4.5 prose paraphrases this as the connected AS
// "accounting for more than half" of N; we implement the algorithm's own
// rule so add and remove stay symmetric at every f.) connID is the
// inference's interned connected ASN.
func (st *runState) stillSupported(hi, connID int32, sc *electScratch) bool {
	return st.stillSupportedElect(st.electCached(hi, sc), connID)
}

// stillSupportedElect is the election-consuming tail of stillSupported,
// split out so the auditor can recheck retention against a from-scratch
// election instead of the memoised one.
func (st *runState) stillSupportedElect(elect countResult, connID int32) bool {
	if elect.winnerOrg < 0 || elect.winnerOrg != st.idx.orgOfASN[connID] {
		return false
	}
	return float64(elect.votes) >= st.cfg.F*float64(elect.total)
}
