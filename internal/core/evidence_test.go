package core

import (
	"reflect"
	"testing"

	"mapit/internal/trace"
)

// The streaming collector must produce exactly the evidence — and
// therefore exactly the result — of the in-memory path.
func TestCollectorEquivalence(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
	)
	traces := []trace.Trace{
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
		tr("1.1.1.1", "2.2.2.2", "1.1.1.1"), // cycle, discarded
	}
	// In-memory path.
	s := sanitized(traces...)
	want, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming path.
	c := NewCollector()
	retained := 0
	for _, tc := range traces {
		if c.Add(tc) {
			retained++
		}
	}
	if retained != 4 || c.Traces() != 5 {
		t.Fatalf("retained=%d traces=%d", retained, c.Traces())
	}
	ev := c.Evidence()
	if ev.Stats.DiscardedTraces != 1 || ev.Stats.DistinctAddrs != len(ev.AllAddrs) {
		t.Fatalf("stats = %+v", ev.Stats)
	}
	got, err := RunEvidence(ev, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Inferences, got.Inferences) {
		t.Fatalf("streaming path diverges:\n want %v\n got  %v", want.Inferences, got.Inferences)
	}
}

// Duplicate adjacencies collapse: feeding the same trace many times
// yields identical evidence (the paper's Ns are sets, §3.2).
func TestCollectorDedup(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Add(tr("1.1.1.1", "2.2.2.2"))
	}
	ev := c.Evidence()
	if len(ev.Adjacencies) != 1 {
		t.Fatalf("adjacencies = %d", len(ev.Adjacencies))
	}
	if ev.Stats.TotalTraces != 100 {
		t.Fatalf("stats = %+v", ev.Stats)
	}
}

// Monitor attribution: opt-in, retained-traces only, deduplicated per
// monitor, identical between serial and parallel collectors, and absent
// when tracking is off.
func TestCollectorTrackMonitors(t *testing.T) {
	traces := []trace.Trace{
		trace.NewTrace("ark1", ip("192.0.3.255"), ip("1.1.1.1"), ip("2.2.2.2")),
		trace.NewTrace("ark1", ip("192.0.3.255"), ip("1.1.1.1"), ip("2.2.2.2")), // duplicate adjacency
		trace.NewTrace("ark1", ip("192.0.3.255"), ip("2.2.2.2"), ip("3.3.3.3")),
		trace.NewTrace("ark2", ip("192.0.3.255"), ip("1.1.1.1"), ip("2.2.2.2")),
		trace.NewTrace("ark2", ip("192.0.3.255"), ip("4.4.4.4"), ip("5.5.5.5"), ip("4.4.4.4")), // cycle: discarded
	}

	c := NewCollector()
	c.TrackMonitors()
	for _, tc := range traces {
		c.Add(tc)
	}
	ev := c.Evidence()
	want := []MonitorEvidence{
		{Monitor: "ark1", Traces: 3, Adjacencies: []trace.Adjacency{
			{First: ip("1.1.1.1"), Second: ip("2.2.2.2")},
			{First: ip("2.2.2.2"), Second: ip("3.3.3.3")},
		}},
		{Monitor: "ark2", Traces: 1, Adjacencies: []trace.Adjacency{
			{First: ip("1.1.1.1"), Second: ip("2.2.2.2")},
		}},
	}
	if !reflect.DeepEqual(ev.Monitors, want) {
		t.Fatalf("serial monitors:\n got  %+v\n want %+v", ev.Monitors, want)
	}

	for _, workers := range []int{1, 2, 8} {
		pc := NewParallelCollector(workers)
		pc.TrackMonitors()
		for _, tc := range traces {
			pc.Add(tc)
		}
		pev := pc.Evidence()
		if !reflect.DeepEqual(pev.Monitors, want) {
			t.Fatalf("parallel workers=%d monitors:\n got  %+v\n want %+v", workers, pev.Monitors, want)
		}
	}

	// addSanitized path (EvidenceFrom-style): retained counts match.
	cs := NewCollector()
	cs.TrackMonitors()
	cs.addSanitized(sanitized(traces...))
	if !reflect.DeepEqual(cs.Evidence().Monitors, want) {
		t.Fatalf("sanitized-path monitors diverge")
	}

	// Off by default.
	off := NewCollector()
	for _, tc := range traces {
		off.Add(tc)
	}
	if off.Evidence().Monitors != nil {
		t.Fatal("monitors tracked without TrackMonitors")
	}
}

// Workers must not change results: the parallel scan is a pure
// optimisation (§4.4.5 determinism).
func TestWorkersDeterminism(t *testing.T) {
	ip2as := table(
		"109.105.0.0/16=2603", "198.71.0.0/16=11537",
		"64.57.0.0/16=11537", "199.109.0.0/16=3754",
		"192.73.48.0/24=3807", "62.115.0.0/16=1299",
		"4.68.0.0/16=3356", "91.200.0.0/16=51159",
	)
	s := sanitized(
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
		tr("198.71.45.1", "198.71.46.196", "192.73.48.124"),
		tr("198.71.45.2", "198.71.46.196", "192.73.48.120"),
		tr("62.115.0.1", "4.68.110.186", "91.200.0.1"),
		tr("62.115.0.5", "4.68.110.186", "91.200.0.5"),
	)
	want, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		got, err := Run(s, Config{IP2AS: ip2as, F: 0.5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Inferences, got.Inferences) {
			t.Fatalf("Workers=%d diverges", workers)
		}
		if want.Diag != got.Diag {
			t.Fatalf("Workers=%d diagnostics diverge: %+v vs %+v", workers, want.Diag, got.Diag)
		}
	}
}
