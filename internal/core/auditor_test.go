package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mapit/internal/audit"
	"mapit/internal/topo"
)

// Tests for the runtime invariant auditor: clean runs stay clean (and
// byte-identical to unaudited runs), sampling covers less than
// exhaustive auditing, and deliberately corrupted state is detected by
// the check responsible for it.

func exhaustiveChecker() *audit.Checker {
	return &audit.Checker{Mode: audit.Exhaustive}
}

// TestAuditCleanTopoSweep: exhaustive audits over synthetic worlds pass
// every check, and the audited Result is identical to the unaudited one
// apart from the attached report.
func TestAuditCleanTopoSweep(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		gen := topo.SmallGenConfig()
		gen.Seed = seed
		w := topo.Generate(gen)
		tc := topo.DefaultTraceConfig()
		tc.DestsPerMonitor = 400
		ds := w.GenTraces(tc)
		orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
		ev := EvidenceFrom(ds.Sanitize())
		cfg := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir,
			F: 0.5, Workers: 4}
		plain, err := RunEvidence(ev, cfg)
		if err != nil {
			t.Fatalf("seed %d: unaudited run: %v", seed, err)
		}
		cfg.Audit = exhaustiveChecker()
		audited, err := RunEvidence(ev, cfg)
		if err != nil {
			t.Fatalf("seed %d: audited run: %v", seed, err)
		}
		rep := audited.Audit
		if rep == nil {
			t.Fatalf("seed %d: audited run carries no report", seed)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: audit found violations:\n%s\n%v", seed, rep, rep.Violations)
		}
		if rep.Steps == 0 || rep.Checks == 0 {
			t.Fatalf("seed %d: audit ran no checks (%s)", seed, rep)
		}
		if audited.Diag.AuditViolations != 0 {
			t.Fatalf("seed %d: clean run reports %d violations in Diag",
				seed, audited.Diag.AuditViolations)
		}
		if plain.Audit != nil {
			t.Fatalf("seed %d: unaudited run grew a report", seed)
		}
		if !reflect.DeepEqual(plain.Inferences, audited.Inferences) ||
			plain.Diag != audited.Diag ||
			!reflect.DeepEqual(plain.ProbeSuggestions, audited.ProbeSuggestions) {
			t.Fatalf("seed %d: auditing changed the result", seed)
		}
	}
}

// TestAuditQuickCleanAblations: exhaustive audits stay clean on
// arbitrary random evidence across the ablation grid the checks
// special-case (SinglePass, WholeInterfaceUpdates, DisableIncremental,
// DisableRemoveStep, the f sweep).
func TestAuditQuickCleanAblations(t *testing.T) {
	f := func(hops []uint16, fRaw uint8, wiu, single, noInc, noRemove bool) bool {
		s := randEvidence(hops)
		r, err := Run(s, Config{
			IP2AS:                 quickIP2AS(),
			F:                     float64(fRaw%11) / 10,
			WholeInterfaceUpdates: wiu,
			SinglePass:            single,
			DisableIncremental:    noInc,
			DisableRemoveStep:     noRemove,
			Audit:                 exhaustiveChecker(),
		})
		if err != nil {
			return false
		}
		if !r.Audit.Ok() {
			t.Logf("violations: %v", r.Audit.Violations)
			return false
		}
		return r.Diag.AuditViolations == 0
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// TestAuditSampledMode: Sampled mode audits the same checkpoints with
// strictly fewer checks than Exhaustive, and stays clean.
func TestAuditSampledMode(t *testing.T) {
	gen := topo.SmallGenConfig()
	gen.Seed = 7
	w := topo.Generate(gen)
	tc := topo.DefaultTraceConfig()
	tc.DestsPerMonitor = 400
	ds := w.GenTraces(tc)
	orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
	ev := EvidenceFrom(ds.Sanitize())
	base := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir, F: 0.5}

	run := func(c *audit.Checker) *audit.Report {
		cfg := base
		cfg.Audit = c
		r, err := RunEvidence(ev, cfg)
		if err != nil {
			t.Fatalf("%v: %v", c.Mode, err)
		}
		if r.Audit == nil || !r.Audit.Ok() {
			t.Fatalf("%v: audit not clean: %v", c.Mode, r.Audit)
		}
		return r.Audit
	}
	ex := run(exhaustiveChecker())
	sm := run(&audit.Checker{Mode: audit.Sampled, SampleStride: 8})
	if sm.Steps != ex.Steps {
		t.Fatalf("checkpoint counts diverge: sampled %d, exhaustive %d", sm.Steps, ex.Steps)
	}
	if sm.Checks >= ex.Checks {
		t.Fatalf("sampling did not reduce work: sampled %d checks, exhaustive %d",
			sm.Checks, ex.Checks)
	}
}

// auditFixture builds a converged runState with exhaustive auditing that
// carries at least one direct inference, one override, and a warm
// election memo — the raw material the injection tests corrupt.
func auditFixture(t *testing.T) *runState {
	t.Helper()
	ip2as := table(
		"62.115.0.0/16=1299",
		"4.68.0.0/16=3356",
		"91.200.0.0/16=51159",
	)
	s := sanitized(
		tr("62.115.0.1", "4.68.110.186", "91.200.0.1"),
		tr("62.115.0.5", "4.68.110.186", "91.200.0.5"),
		tr("62.115.0.9", "4.68.110.186", "91.200.0.9"),
	)
	cfg := &Config{IP2AS: ip2as, F: 0.5, Audit: exhaustiveChecker()}
	st := newRunState(cfg, EvidenceFrom(s))
	st.fixpoint()
	if !st.auditor.report.Ok() {
		t.Fatalf("fixture not clean before corruption: %v", st.auditor.report.Violations)
	}
	if len(st.direct) == 0 || len(st.overrides) == 0 {
		t.Fatalf("fixture carries no inference state (direct=%d overrides=%d)",
			len(st.direct), len(st.overrides))
	}
	return st
}

func hasViolation(r *audit.Report, check string) bool {
	for _, v := range r.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}

// TestAuditDetectsCorruption: each corruption of the incremental
// machinery is caught by the check built for it. The checkpoint runs at
// the "final" stage, whose checks do not depend on step-boundary
// conditions the manual corruption would also disturb.
func TestAuditDetectsCorruption(t *testing.T) {
	cases := []struct {
		check   string
		corrupt func(t *testing.T, st *runState)
	}{
		{"state-hash", func(t *testing.T, st *runState) {
			st.hashSum ^= 0xdeadbeef
		}},
		{"mirror", func(t *testing.T, st *runState) {
			for hi := range st.dirConnID {
				if st.dirConnID[hi] >= 0 {
					st.dirConnID[hi] = -1
					return
				}
			}
			t.Fatal("no direct mirror to corrupt")
		}},
		{"ip2as-memo", func(t *testing.T, st *runState) {
			for a, hit := range st.ip2as.m {
				hit.asn++
				st.ip2as.m[a] = hit
				return
			}
			t.Fatal("no memo entry to corrupt")
		}},
		{"election-memo", func(t *testing.T, st *runState) {
			for hi, ok := range st.idx.electValid {
				if ok {
					st.idx.electCache[hi].votes += 1000
					return
				}
			}
			t.Fatal("no valid election memo entry to corrupt")
		}},
		{"backing", func(t *testing.T, st *runState) {
			for hi := range st.dirConnID {
				h := st.halfAt(int32(hi))
				_, d := st.direct[h]
				_, i := st.indirect[h]
				_, o := st.overrides[h]
				if !d && !i && !o {
					st.overrides[h] = 65000
					return
				}
			}
			t.Fatal("no inference-free half to plant an override on")
		}},
		{"dirty-set", func(t *testing.T, st *runState) {
			st.dirty.list = append(st.dirty.list, 0)
		}},
		{"interning", func(t *testing.T, st *runState) {
			st.idx.asnOf[0]++
		}},
	}
	for _, c := range cases {
		t.Run(c.check, func(t *testing.T) {
			st := auditFixture(t)
			before := st.auditor.report.Total()
			c.corrupt(t, st)
			st.auditCheckpoint(auditStageFinal, 9)
			rep := st.auditor.report
			if rep.Total() == before {
				t.Fatalf("corruption went undetected")
			}
			if !hasViolation(rep, c.check) {
				t.Fatalf("expected a %q violation, got %v", c.check, rep.Violations)
			}
			st.auditFinish()
			if st.diag.AuditViolations != rep.Total() {
				t.Fatalf("Diag.AuditViolations=%d, report total %d",
					st.diag.AuditViolations, rep.Total())
			}
		})
	}
}

// TestAuditBoundaryChecks: the add-fixpoint and retention checks fire
// when inference state contradicts a from-scratch election at the step
// boundaries they guard.
func TestAuditBoundaryChecks(t *testing.T) {
	t.Run("retention", func(t *testing.T) {
		st := auditFixture(t)
		// Swap a live direct inference's connected AS for one the
		// election cannot possibly return.
		var hi int32 = -1
		for i := range st.dirConnID {
			if st.dirConnID[i] >= 0 && !st.dirStub[i] {
				hi = int32(i)
				break
			}
		}
		if hi < 0 {
			t.Fatal("no direct inference to corrupt")
		}
		cur := st.dirConnID[hi]
		st.dirConnID[hi] = (cur + 1) % int32(len(st.idx.asnOf))
		st.direct[st.halfAt(hi)].connectedID = st.dirConnID[hi]
		st.auditCheckpoint(auditStageRemove, 9)
		if !hasViolation(st.auditor.report, "retention") {
			t.Fatalf("expected a retention violation, got %v", st.auditor.report.Violations)
		}
	})
	t.Run("add-fixpoint", func(t *testing.T) {
		st := auditFixture(t)
		// Erase a direct inference through the real funnels (so every
		// mirror and the fingerprint stay coherent) without latching
		// its half: the from-scratch election still passes, so the add
		// step "missed" it.
		var h Half
		var hi int32 = -1
		for i := range st.dirConnID {
			if st.dirConnID[i] >= 0 && !st.dirStub[i] {
				hi = int32(i)
				h = st.halfAt(hi)
				break
			}
		}
		if hi < 0 {
			t.Fatal("no direct inference to erase")
		}
		st.unsetDirectIdx(h, hi)
		st.recomputeOverride(h)
		st.inferredOnce[hi] = false
		st.dirty.clear()
		st.auditCheckpoint(auditStageAdd, 9)
		if !hasViolation(st.auditor.report, "add-fixpoint") {
			t.Fatalf("expected an add-fixpoint violation, got %v", st.auditor.report.Violations)
		}
	})
}

// TestAuditReportString: the one-line summary carries the headline
// numbers (drive-by coverage for the cmd-level -stats print).
func TestAuditReportString(t *testing.T) {
	st := auditFixture(t)
	rep := st.auditor.report
	s := rep.String()
	for _, want := range []string{"exhaustive", fmt.Sprint(rep.Steps), "ok"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string %q missing %q", s, want)
		}
	}
}
