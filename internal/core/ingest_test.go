package core

import (
	"bytes"
	"errors"
	"slices"
	"strings"
	"testing"

	"mapit/internal/trace"
)

// ingestDataset builds a tiny timestamped corpus that survives
// sanitisation, for exercising every encoding the sniffing decoder
// accepts.
func ingestDataset() *trace.Dataset {
	t1 := trace.NewTrace("m", 0x08080808, 0x01010101, 0, 0x02020202)
	t1.Time = 1_700_000_000
	t2 := trace.NewTrace("n", 0x08080404, 0x01010102, 0x03030303)
	t2.Time = 1_700_000_060
	return &trace.Dataset{Traces: []trace.Trace{t1, t2}}
}

// TestDecodeTracesSniffing round-trips the corpus through every wire
// format and checks the sniffing loop delivers the same traces in
// stream order. Timestamps survive exactly where the format carries
// them (JSONL and MTRC v4) and come back zero elsewhere.
func TestDecodeTracesSniffing(t *testing.T) {
	ds := ingestDataset()
	encode := func(f func(*bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name  string
		data  []byte
		times bool // format carries timestamps
	}{
		{"text", encode(func(b *bytes.Buffer) error { return trace.Write(b, ds) }), false},
		{"jsonl", encode(func(b *bytes.Buffer) error { return trace.WriteJSON(b, ds) }), true},
		{"binary v2", encode(func(b *bytes.Buffer) error { return trace.WriteBinary(b, ds) }), false},
		{"binary v3", encode(func(b *bytes.Buffer) error { return trace.WriteBinaryBlocks(b, ds, 1) }), false},
		{"binary v4", encode(func(b *bytes.Buffer) error { return trace.WriteBinaryBlocksV4(b, ds, 1) }), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []trace.Trace
			n, err := DecodeTraces(bytes.NewReader(tc.data), trace.DecodeOptions{}, func(tr trace.Trace) error {
				got = append(got, tr)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != len(ds.Traces) || len(got) != len(ds.Traces) {
				t.Fatalf("decoded %d traces (callback saw %d), want %d", n, len(got), len(ds.Traces))
			}
			for i, tr := range got {
				want := ds.Traces[i]
				if tr.Monitor != want.Monitor || tr.Dst != want.Dst || !slices.Equal(tr.Hops, want.Hops) {
					t.Fatalf("trace %d: got %+v want %+v", i, tr, want)
				}
				wantTime := want.Time
				if !tc.times {
					wantTime = 0
				}
				if tr.Time != wantTime {
					t.Fatalf("trace %d: time %d, want %d", i, tr.Time, wantTime)
				}
			}
		})
	}
}

// TestDecodeTracesEmptyAndMalformed pins the sniffer's edge behaviour:
// inputs shorter than a magic fall through to the text parser, an
// empty stream is a valid empty corpus, and each branch surfaces its
// parser's error.
func TestDecodeTracesEmptyAndMalformed(t *testing.T) {
	n, err := DecodeTraces(strings.NewReader(""), trace.DecodeOptions{}, func(trace.Trace) error {
		t.Fatal("callback on empty input")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("empty input: n=%d err=%v", n, err)
	}
	if _, err := DecodeTraces(strings.NewReader("not|a|trace"), trace.DecodeOptions{}, nopTrace); err == nil {
		t.Fatal("malformed text accepted")
	}
	if _, err := DecodeTraces(strings.NewReader("{\"bad\": json"), trace.DecodeOptions{}, nopTrace); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
}

func nopTrace(trace.Trace) error { return nil }

// TestDecodeTracesCallbackError pins that a callback error aborts the
// decode on both the streaming (binary) and whole-dataset (text)
// paths, is returned verbatim, and the count reflects deliveries.
func TestDecodeTracesCallbackError(t *testing.T) {
	ds := ingestDataset()
	boom := errors.New("boom")
	var v4 bytes.Buffer
	if err := trace.WriteBinaryBlocksV4(&v4, ds, 0); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := trace.Write(&text, ds); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{{"binary", v4.Bytes()}, {"text", text.Bytes()}} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			n, err := DecodeTraces(bytes.NewReader(tc.data), trace.DecodeOptions{}, func(trace.Trace) error {
				calls++
				if calls == 2 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			if n != 1 || calls != 2 {
				t.Fatalf("n=%d calls=%d, want 1 delivered before the failing call", n, calls)
			}
		})
	}
}

// corruptV3Stream returns a two-block v3 stream with one payload byte
// flipped such that strict decodes fail with a typed corruption error
// while permissive decodes skip exactly one block and keep the other
// trace. The flip position is found by search so the helper stays
// valid if the encoding shifts.
func corruptV3Stream(t *testing.T) ([]byte, int) {
	t.Helper()
	ds := ingestDataset()
	var buf bytes.Buffer
	if err := trace.WriteBinaryBlocks(&buf, ds, 1); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for pos := 5; pos < len(clean); pos++ {
		data := bytes.Clone(clean)
		data[pos] ^= 0xa5
		var ce *trace.CorruptError
		if _, err := trace.ReadBinaryOpts(bytes.NewReader(data), trace.DecodeOptions{}); !errors.As(err, &ce) {
			continue
		}
		var stats trace.DecodeStats
		got, err := trace.ReadBinaryOpts(bytes.NewReader(data), trace.DecodeOptions{Permissive: true, Stats: &stats})
		if err == nil && stats.BlocksSkipped == 1 && len(got.Traces) == len(ds.Traces)-1 {
			return data, len(ds.Traces)
		}
	}
	t.Fatal("no byte flip produced a skippable corrupt block")
	return nil, 0
}

// TestDecodeTracesCorruption pins strict-vs-permissive behaviour of
// the binary branch: strict surfaces a typed *trace.CorruptError;
// permissive skips the bad block, counts it in the caller's stats, and
// still delivers the clean remainder.
func TestDecodeTracesCorruption(t *testing.T) {
	data, total := corruptV3Stream(t)
	_, err := DecodeTraces(bytes.NewReader(data), trace.DecodeOptions{}, nopTrace)
	var ce *trace.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("strict: err = %v (%T), want *trace.CorruptError", err, err)
	}
	var stats trace.DecodeStats
	n, err := DecodeTraces(bytes.NewReader(data), trace.DecodeOptions{Permissive: true, Stats: &stats}, nopTrace)
	if err != nil {
		t.Fatalf("permissive: %v", err)
	}
	if n != total-1 {
		t.Fatalf("permissive delivered %d traces, want %d (one block skipped)", n, total-1)
	}
	if stats.BlocksSkipped != 1 || stats.TotalErrors() == 0 {
		t.Fatalf("permissive stats: %+v", stats)
	}
}

// TestIngestorLifecycle drives the full pipeline: mixed-format
// incremental ingest, monitor tracking, repeated finalisation over the
// growing union, decode-health accounting, and close.
func TestIngestorLifecycle(t *testing.T) {
	g := NewIngestor(IngestOptions{Workers: 2, TrackMonitors: true})
	defer g.Close()

	ds := ingestDataset()
	var text bytes.Buffer
	if err := trace.Write(&text, ds); err != nil {
		t.Fatal(err)
	}
	if n, err := g.Ingest(&text); err != nil || n != len(ds.Traces) {
		t.Fatalf("text ingest: n=%d err=%v", n, err)
	}
	ev, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stats.TotalTraces != len(ds.Traces) {
		t.Fatalf("evidence covers %d traces, want %d", ev.Stats.TotalTraces, len(ds.Traces))
	}
	if len(ev.Monitors) == 0 {
		t.Fatal("TrackMonitors produced no monitor evidence")
	}

	// The ingestor stays usable after Finish: a second, binary batch
	// accumulates and the next Finish covers the union. A corrupt block
	// in permissive mode is skipped, not fatal, and lands in the
	// cumulative decode stats.
	data, total := corruptV3Stream(t)
	if n, err := g.Ingest(bytes.NewReader(data)); err != nil || n != total-1 {
		t.Fatalf("binary ingest: n=%d err=%v", n, err)
	}
	if g.Traces() != len(ds.Traces)+total-1 {
		t.Fatalf("Traces() = %d, want %d", g.Traces(), len(ds.Traces)+total-1)
	}
	ev2, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Stats.TotalTraces != g.Traces() {
		t.Fatalf("second finish covers %d traces, want %d", ev2.Stats.TotalTraces, g.Traces())
	}
	if st := g.DecodeStats(); st.BlocksSkipped != 1 || st.TotalErrors() == 0 {
		t.Fatalf("decode stats: %+v", *st)
	}
	if sp := g.SpillStats(); sp != (SpillStats{}) {
		t.Fatalf("in-memory ingest reported spill activity: %+v", sp)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestorStrict pins that strict mode turns block corruption into
// an ingest error while leaving previously collected evidence intact.
func TestIngestorStrict(t *testing.T) {
	g := NewIngestor(IngestOptions{Strict: true})
	defer g.Close()
	ds := ingestDataset()
	var v4 bytes.Buffer
	if err := trace.WriteBinaryBlocksV4(&v4, ds, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := g.Ingest(&v4); err != nil || n != len(ds.Traces) {
		t.Fatalf("clean ingest: n=%d err=%v", n, err)
	}
	data, _ := corruptV3Stream(t)
	if _, err := g.Ingest(bytes.NewReader(data)); err == nil {
		t.Fatal("strict ingest accepted corrupt stream")
	}
	ev, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stats.TotalTraces < len(ds.Traces) {
		t.Fatalf("failed batch corrupted earlier evidence: %+v", ev.Stats)
	}
}
