package core

import (
	"fmt"
	"io"
	"os"
	"slices"
	"sync"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Out-of-core evidence store (DESIGN.md §11). The collectors' dedup
// structures — the adjacency set and the two address sets — are the
// only ingest state that grows with corpus size. When a memory budget
// is configured, a collector flushes each structure as a sorted,
// duplicate-free *run* into a columnar spill segment (trace.Segment*)
// whenever its estimated resident cost crosses the budget, and
// finalisation k-way merges the spilled runs with the in-memory residue
// (mergeDedup) into evidence byte-identical to the in-memory path: the
// output is the sorted union of the runs, and the union is determined
// by the traces alone — never by where the run boundaries fell.

// SpillConfig bounds a collector's resident ingest state.
// The zero value disables spilling entirely.
type SpillConfig struct {
	// Dir is where spill segment files are created; empty means the
	// system temporary directory. Segments are ordinary temp files,
	// removed by Close.
	Dir string
	// MemBudget is the target ceiling, in bytes, for the estimated
	// resident cost of the collector's dedup structures (see
	// adjEntryCost / addrEntryCost). Crossing it flushes the structures
	// to disk. <= 0 means no byte budget.
	MemBudget int64
	// RunEntries, when > 0, overrides the byte budget with a per-
	// structure entry threshold: a structure flushes as soon as it holds
	// this many entries. Primarily a testing knob for forcing many tiny
	// runs; byte-identical output is guaranteed for every value.
	RunEntries int
}

// enabled reports whether the configuration asks for spilling at all.
func (c SpillConfig) enabled() bool { return c.MemBudget > 0 || c.RunEntries > 0 }

// Estimated resident bytes per entry of the dedup structures: a
// map[Adjacency]struct{} entry (8-byte key plus bucket overhead) and an
// AddrSet entry (4-byte key plus overhead). Deliberately rough — the
// budget is a ceiling on an estimate, and the benchmark asserts the
// real heap stays under the configured ceiling end to end.
const (
	adjEntryCost  = 56
	addrEntryCost = 48
)

// SpillStats counts out-of-core activity for one collector. All fields
// are plain values so the struct is comparable and can travel inside
// Diagnostics.
type SpillStats struct {
	// Files is the number of spill segment files created.
	Files int
	// AdjRuns / AddrRuns count spilled runs by kind.
	AdjRuns, AddrRuns int
	// SpilledEntries counts entries written across all runs (an entry
	// may be spilled more than once if it is re-observed after a flush).
	SpilledEntries int64
	// SpilledBytes counts encoded bytes written across all runs.
	SpilledBytes int64
	// Merges counts spill-path finalisations (external merges).
	Merges int
}

// String renders the counters as a compact key=value line (the shape
// cmd/mapit -stats prints).
func (s SpillStats) String() string {
	return fmt.Sprintf("files=%d adj_runs=%d addr_runs=%d spilled_entries=%d spilled_bytes=%d merges=%d",
		s.Files, s.AdjRuns, s.AddrRuns, s.SpilledEntries, s.SpilledBytes, s.Merges)
}

// spillSink is the shared spill state of one collector: configuration,
// the file registry, counters, and the sticky first error. Individual
// segment files are written by exactly one party (the serial collector,
// one shard owner, or one worker) without locking; only the registry,
// counters and error go through the mutex.
type spillSink struct {
	cfg SpillConfig

	mu    sync.Mutex
	files []*spillFile
	stats SpillStats
	err   error
}

func newSpillSink(cfg SpillConfig) *spillSink {
	if cfg.Dir == "" {
		cfg.Dir = os.TempDir()
	}
	return &spillSink{cfg: cfg}
}

// fail records the first spill error; once set, all further spilling
// stops (data stays in memory) and finalisation reports it.
func (s *spillSink) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// failed returns the sticky error, if any.
func (s *spillSink) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats snapshots the counters.
func (s *spillSink) Stats() SpillStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// newFile creates and registers one spill segment file.
func (s *spillSink) newFile() (*spillFile, error) {
	f, err := os.CreateTemp(s.cfg.Dir, "mapit-spill-*.seg")
	if err != nil {
		s.fail(err)
		return nil, err
	}
	sw, err := trace.NewSegmentWriter(f)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		s.fail(err)
		return nil, err
	}
	sf := &spillFile{f: f, sw: sw}
	s.mu.Lock()
	s.files = append(s.files, sf)
	s.stats.Files++
	s.mu.Unlock()
	return sf, nil
}

// noteRun tallies one spilled run.
func (s *spillSink) noteRun(run trace.SegmentRun) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if run.Kind == trace.AdjRunKind {
		s.stats.AdjRuns++
	} else {
		s.stats.AddrRuns++
	}
	s.stats.SpilledEntries += int64(run.Count)
	s.stats.SpilledBytes += run.Size
}

// spilled reports whether any run has been written.
func (s *spillSink) spilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.AdjRuns+s.stats.AddrRuns > 0
}

// close closes and removes every spill file. The sink is unusable
// afterwards.
func (s *spillSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sf := range s.files {
		if err := sf.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(sf.f.Name()); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// spill streams: which run list of a spillFile a run lands in.
const (
	streamAdj = iota // adjacency set
	streamAll        // all observed addresses
	streamRet        // addresses on retained traces
	numStreams
)

// spillFile is one spill segment plus the locations of the runs inside
// it, by stream. Written by one party; read (via ReaderAt) only after
// the writing party has retired and the writer flushed.
type spillFile struct {
	f    *os.File
	sw   *trace.SegmentWriter
	runs [numStreams][]trace.SegmentRun
}

// spiller is one spilling party's handle: it lazily opens the party's
// file and owns the reusable flush scratch.
type spiller struct {
	sink *spillSink
	file *spillFile
	// adjScratch / addrScratch are the reusable sort buffers runs are
	// staged through; nothing retains them past the Append call.
	adjScratch  []trace.Adjacency
	addrScratch []inet.Addr
}

func newSpiller(sink *spillSink) *spiller { return &spiller{sink: sink} }

// ensureFile opens the party's segment on first use.
func (sp *spiller) ensureFile() (*spillFile, error) {
	if sp.file != nil {
		return sp.file, nil
	}
	sf, err := sp.sink.newFile()
	if err != nil {
		return nil, err
	}
	sp.file = sf
	return sf, nil
}

// flushAdjSet writes the set as one sorted adjacency run and reports
// whether it was spilled (the caller must then discard the set). A set
// that is empty, or any write failure, leaves the set untouched in
// memory — earlier runs in the file remain valid either way.
func (sp *spiller) flushAdjSet(set map[trace.Adjacency]struct{}) bool {
	if len(set) == 0 || sp.sink.failed() != nil {
		return false
	}
	sf, err := sp.ensureFile()
	if err != nil {
		return false
	}
	sp.adjScratch = sp.adjScratch[:0]
	for adj := range set {
		sp.adjScratch = append(sp.adjScratch, adj)
	}
	slices.SortFunc(sp.adjScratch, adjacencyCmp)
	run, err := sf.sw.AppendAdjacencyRun(sp.adjScratch)
	if err != nil {
		sp.sink.fail(err)
		return false
	}
	sf.runs[streamAdj] = append(sf.runs[streamAdj], run)
	sp.sink.noteRun(run)
	return true
}

// flushAddrSet writes the set as one sorted address run into the given
// stream, reporting whether it was spilled.
func (sp *spiller) flushAddrSet(set inet.AddrSet, stream int) bool {
	if len(set) == 0 || sp.sink.failed() != nil {
		return false
	}
	sf, err := sp.ensureFile()
	if err != nil {
		return false
	}
	sp.addrScratch = sp.addrScratch[:0]
	for a := range set {
		sp.addrScratch = append(sp.addrScratch, a)
	}
	slices.Sort(sp.addrScratch)
	run, err := sf.sw.AppendAddrRun(sp.addrScratch)
	if err != nil {
		sp.sink.fail(err)
		return false
	}
	sf.runs[stream] = append(sf.runs[stream], run)
	sp.sink.noteRun(run)
	return true
}

// adjCursorSource adapts a spilled adjacency run to the merge.
func adjCursorSource(f *os.File, run trace.SegmentRun) (mergeSource[trace.Adjacency], error) {
	cur, err := trace.OpenAdjacencyRun(f, run)
	if err != nil {
		return nil, err
	}
	return func() (trace.Adjacency, bool, error) {
		a, err := cur.Next()
		if err == io.EOF {
			return trace.Adjacency{}, false, nil
		}
		if err != nil {
			return trace.Adjacency{}, false, err
		}
		return a, true, nil
	}, nil
}

// addrCursorSource adapts a spilled address run to the merge.
func addrCursorSource(f *os.File, run trace.SegmentRun) (mergeSource[inet.Addr], error) {
	cur, err := trace.OpenAddrRun(f, run)
	if err != nil {
		return nil, err
	}
	return func() (inet.Addr, bool, error) {
		a, err := cur.Next()
		if err == io.EOF {
			return 0, false, nil
		}
		if err != nil {
			return 0, false, err
		}
		return a, true, nil
	}, nil
}

// mergeEvidence finalises a spilled collector: every spilled run joins
// the in-memory residues (already sorted, duplicate-free slices) in one
// bounded-memory k-way merge per stream. stats must carry the ingest
// counters; the distinct/retained address counts come out of the merge.
// Peak extra memory is one page buffer per open cursor plus the final
// evidence itself.
func (s *spillSink) mergeEvidence(adjRes [][]trace.Adjacency, allRes, retRes [][]inet.Addr,
	stats trace.Stats) (*Evidence, error) {
	if err := s.failed(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	files := slices.Clone(s.files)
	s.mu.Unlock()
	for _, sf := range files {
		if err := sf.sw.Flush(); err != nil {
			s.fail(err)
			return nil, err
		}
	}

	// Adjacency stream: cursors over every spilled run + residue slices.
	var adjSrcs []mergeSource[trace.Adjacency]
	adjBound := 0
	for _, sf := range files {
		for _, run := range sf.runs[streamAdj] {
			src, err := adjCursorSource(sf.f, run)
			if err != nil {
				return nil, err
			}
			adjSrcs = append(adjSrcs, src)
			adjBound += run.Count
		}
	}
	for _, res := range adjRes {
		if len(res) > 0 {
			adjSrcs = append(adjSrcs, sliceSource(res))
			adjBound += len(res)
		}
	}
	adjs := make([]trace.Adjacency, 0, adjBound)
	err := mergeDedup(adjSrcs, adjacencyCmp, func(a trace.Adjacency) { adjs = append(adjs, a) })
	if err != nil {
		return nil, err
	}

	// Address streams: rebuild the AllAddrs set (pre-sized from the run
	// counts) and take the unique counts the Stats report.
	mergeAddrs := func(stream int, res [][]inet.Addr) ([]mergeSource[inet.Addr], int, error) {
		var srcs []mergeSource[inet.Addr]
		bound := 0
		for _, sf := range files {
			for _, run := range sf.runs[stream] {
				src, err := addrCursorSource(sf.f, run)
				if err != nil {
					return nil, 0, err
				}
				srcs = append(srcs, src)
				bound += run.Count
			}
		}
		for _, r := range res {
			if len(r) > 0 {
				srcs = append(srcs, sliceSource(r))
				bound += len(r)
			}
		}
		return srcs, bound, nil
	}
	allSrcs, allBound, err := mergeAddrs(streamAll, allRes)
	if err != nil {
		return nil, err
	}
	allAddrs := make(inet.AddrSet, allBound)
	if err := mergeDedup(allSrcs, addrCmp,
		func(a inet.Addr) { allAddrs[a] = struct{}{} }); err != nil {
		return nil, err
	}
	retSrcs, _, err := mergeAddrs(streamRet, retRes)
	if err != nil {
		return nil, err
	}
	retained := 0
	if err := mergeDedup(retSrcs, addrCmp,
		func(inet.Addr) { retained++ }); err != nil {
		return nil, err
	}

	stats.DistinctAddrs = len(allAddrs)
	stats.RetainedAddrs = retained
	s.mu.Lock()
	s.stats.Merges++
	s.mu.Unlock()
	return &Evidence{AllAddrs: allAddrs, Adjacencies: adjs, Stats: stats}, nil
}

// sortedAddrs extracts and sorts a set's keys (a merge residue).
func sortedAddrs(set inet.AddrSet) []inet.Addr {
	out := make([]inet.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
