package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Property tests over randomly generated evidence: structural invariants
// of the algorithm's output that must hold for ANY input.

// randEvidence builds a small random trace set from the generator's
// values: a list of (prefix-bucket, low-bits) hop selectors.
func randEvidence(hops []uint16) *trace.Sanitized {
	buckets := []inet.Addr{
		inet.MustParseAddr("20.100.0.0"),
		inet.MustParseAddr("20.101.0.0"),
		inet.MustParseAddr("20.102.0.0"),
		inet.MustParseAddr("21.0.0.0"), // unannounced
	}
	var traces []trace.Trace
	var cur []inet.Addr
	flush := func() {
		if len(cur) >= 2 {
			traces = append(traces, trace.NewTrace("m", inet.MustParseAddr("192.0.3.255"), cur...))
		}
		cur = nil
	}
	for _, h := range hops {
		if h%11 == 0 { // trace break
			flush()
			continue
		}
		b := buckets[int(h>>8)%len(buckets)]
		cur = append(cur, b+inet.Addr(h%97)+1)
	}
	flush()
	d := &trace.Dataset{Traces: traces}
	return d.Sanitize()
}

func quickIP2AS() IP2AS {
	return table("20.100.0.0/16=100", "20.101.0.0/16=200", "20.102.0.0/16=300")
}

// TestQuickOutputInvariants: for any input, the output is sorted, free of
// duplicate direct records, only contains observed addresses, never
// claims a link between one organisation and itself, and terminates
// within the iteration cap.
func TestQuickOutputInvariants(t *testing.T) {
	f := func(hops []uint16, fRaw uint8) bool {
		s := randEvidence(hops)
		fv := float64(fRaw%11) / 10
		r, err := Run(s, Config{IP2AS: quickIP2AS(), F: fv})
		if err != nil {
			return false
		}
		seenDirect := map[Half]bool{}
		for i, inf := range r.Inferences {
			if i > 0 {
				prev := r.Inferences[i-1]
				if inf.Addr < prev.Addr {
					return false // unsorted
				}
			}
			if !s.AllAddrs.Contains(inf.Addr) {
				return false // unobserved address reported
			}
			if !inf.Indirect {
				h := Half{Addr: inf.Addr, Dir: inf.Dir}
				if seenDirect[h] {
					return false // duplicate direct record
				}
				seenDirect[h] = true
			}
			if !inf.Local.IsZero() && inf.Local == inf.Connected {
				return false // self link
			}
		}
		return r.Diag.Iterations <= defaultMaxIterations
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneF: raising f can only shrink (or keep) the set of
// addresses with direct inferences... which is NOT guaranteed in general
// because refinement interacts with f; what IS guaranteed — and checked —
// is that f=1 never yields more direct inferences than f=0 on artifact-
// free single-source evidence where every neighbour set is homogeneous.
func TestQuickMonotoneF(t *testing.T) {
	f := func(hops []uint16) bool {
		s := randEvidence(hops)
		r0, err := Run(s, Config{IP2AS: quickIP2AS(), F: 0})
		if err != nil {
			return false
		}
		r1, err := Run(s, Config{IP2AS: quickIP2AS(), F: 1})
		if err != nil {
			return false
		}
		count := func(r *Result) int {
			n := 0
			for _, inf := range r.Inferences {
				if !inf.Indirect {
					n++
				}
			}
			return n
		}
		return count(r1) <= count(r0)
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCollectorOrderIndependence: evidence collection commutes with
// trace order.
func TestQuickCollectorOrderIndependence(t *testing.T) {
	f := func(hops []uint16, swap bool) bool {
		s := randEvidence(hops)
		traces := make([]trace.Trace, len(s.Retained))
		copy(traces, s.Retained)
		c1 := NewCollector()
		for _, tr := range traces {
			c1.Add(tr)
		}
		if swap {
			for i, j := 0, len(traces)-1; i < j; i, j = i+1, j-1 {
				traces[i], traces[j] = traces[j], traces[i]
			}
		}
		c2 := NewCollector()
		for _, tr := range traces {
			c2.Add(tr)
		}
		e1, e2 := c1.Evidence(), c2.Evidence()
		if len(e1.Adjacencies) != len(e2.Adjacencies) || len(e1.AllAddrs) != len(e2.AllAddrs) {
			return false
		}
		for i := range e1.Adjacencies {
			if e1.Adjacencies[i] != e2.Adjacencies[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// quickCfg pins the property-test RNG so runs are reproducible (the
// default testing/quick source is time-seeded).
func quickCfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(1234))}
}
