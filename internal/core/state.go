package core

import (
	"hash/fnv"
	"slices"

	"mapit/internal/inet"
)

// directInf is a direct inference record on one half (§4.4.1).
type directInf struct {
	local     inet.ASN // committed mapping of the half when inferred
	connected inet.ASN // AS_N
	uncertain bool
	stub      bool
}

// runState is the full mutable state of a MAP-IT run.
type runState struct {
	cfg *Config

	// Immutable after build.
	observed  inet.AddrSet              // every address seen in any trace
	otherSide map[inet.Addr]inet.Addr   // §4.2 pairing
	nbrF      map[inet.Addr][]inet.Addr // N_F, sorted unique
	nbrB      map[inet.Addr][]inet.Addr // N_B, sorted unique
	baseAS    map[inet.Addr]inet.ASN    // original IP2AS (0 = unannounced)
	ixpAddr   map[inet.Addr]bool
	halves    []Half // |N| ≥ 2 halves in deterministic order
	addrs     []inet.Addr

	// Inference state. overrides is the committed per-half IP2AS view;
	// mutations during a pass are buffered and applied at pass end so
	// every pass reads the previous pass's state (§4.4.5).
	direct    map[Half]*directInf
	indirect  map[Half]Half // half with indirect inference -> source half
	overrides map[Half]inet.ASN
	// severed marks addresses whose other-side pairing was dismissed as
	// incorrect by the divergent-other-sides rule (§4.4.3).
	severed map[inet.Addr]bool
	// inferredOnce suppresses re-inference on a half within one add
	// step: a direct inference can only be made once per add step,
	// which is what makes the add step converge (§4.4.5). Reset at the
	// start of every add step.
	inferredOnce map[Half]bool

	// hashScratch is reused across stateHash calls (§4.6 runs one per
	// iteration) to avoid re-allocating the sort buffers.
	hashScratch []Half

	diag Diagnostics
}

func newRunState(cfg *Config, ev *Evidence) *runState {
	st := &runState{
		cfg:          cfg,
		nbrF:         make(map[inet.Addr][]inet.Addr),
		nbrB:         make(map[inet.Addr][]inet.Addr),
		baseAS:       make(map[inet.Addr]inet.ASN),
		ixpAddr:      make(map[inet.Addr]bool),
		direct:       make(map[Half]*directInf),
		indirect:     make(map[Half]Half),
		overrides:    make(map[Half]inet.ASN),
		severed:      make(map[inet.Addr]bool),
		inferredOnce: make(map[Half]bool),
	}
	workers := cfg.workers()
	st.observed = ev.AllAddrs
	st.otherSide = make(map[inet.Addr]inet.Addr, len(ev.AllAddrs))

	// §4.2 other sides. The per-address heuristic is pure, so it shards
	// over a snapshot of the address set into index-aligned slices (each
	// worker writes a disjoint range — no locking) and the map fill stays
	// serial. The map and the /31 count are order-independent, so the
	// outcome is identical to the serial loop.
	observed := make([]inet.Addr, 0, len(ev.AllAddrs))
	for a := range ev.AllAddrs {
		observed = append(observed, a)
	}
	others := make([]inet.Addr, len(observed))
	is31 := make([]bool, len(observed))
	parallelChunks(len(observed), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			os := inet.InferOtherSide(observed[i], ev.AllAddrs)
			others[i] = os.Other
			is31[i] = os.Kind == inet.PtP31
		}
	})
	n31 := 0
	for i, a := range observed {
		st.otherSide[a] = others[i]
		if is31[i] {
			n31++
		}
	}
	if len(ev.AllAddrs) > 0 {
		st.diag.Slash31Fraction = float64(n31) / float64(len(ev.AllAddrs))
	}

	// Neighbour sets from the unique adjacencies (§4.3); Evidence
	// adjacencies arrive sorted and deduplicated, so the per-address
	// lists inherit both properties.
	for _, adj := range ev.Adjacencies {
		st.nbrF[adj.First] = append(st.nbrF[adj.First], adj.Second)
		st.nbrB[adj.Second] = append(st.nbrB[adj.Second], adj.First)
	}
	// nbrF inherits (First, Second) order; nbrB needs a re-sort on the
	// first element's partner. The lists are independent, so they sort
	// in place in parallel.
	backLists := make([][]inet.Addr, 0, len(st.nbrB))
	for _, list := range st.nbrB {
		backLists = append(backLists, list)
	}
	parallelChunks(len(backLists), workers, func(_, lo, hi int) {
		for _, list := range backLists[lo:hi] {
			slices.Sort(list)
		}
	})

	// Interface universe: every address with a neighbour on either side.
	seen := make(map[inet.Addr]bool, len(st.nbrF)+len(st.nbrB))
	addAddr := func(a inet.Addr) {
		if !seen[a] {
			seen[a] = true
			st.addrs = append(st.addrs, a)
		}
	}
	for a := range st.nbrF {
		addAddr(a)
	}
	for a := range st.nbrB {
		addAddr(a)
	}
	// Neighbour members also need base mappings: each interface address
	// plus its putative other side. The LPM and IXP lookups are read-only
	// and dominate this phase, so they shard over a deduplicated
	// worklist into aligned slices; the map fill stays serial.
	work := make([]inet.Addr, 0, 2*len(st.addrs))
	queued := make(map[inet.Addr]bool, 2*len(st.addrs))
	enqueue := func(a inet.Addr) {
		if !queued[a] {
			queued[a] = true
			work = append(work, a)
		}
	}
	for _, a := range st.addrs {
		enqueue(a)
		if ov, ok := st.otherSide[a]; ok {
			enqueue(ov)
		}
	}
	asns := make([]inet.ASN, len(work))
	isIXP := make([]bool, len(work))
	parallelChunks(len(work), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			asn, _ := cfg.IP2AS.Lookup(work[i])
			asns[i] = asn
			isIXP[i] = cfg.IXP.IsIXPAddr(work[i]) || cfg.IXP.IsIXPASN(asn)
		}
	})
	for i, a := range work {
		st.baseAS[a] = asns[i]
		if isIXP[i] {
			st.ixpAddr[a] = true
		}
	}
	slices.Sort(st.addrs)
	st.diag.Interfaces = len(st.addrs)

	// Eligible halves and the both-Ns overlap statistic. Chunks scan
	// disjoint ranges of the sorted address slice and are concatenated
	// in chunk order, so the halves emerge exactly as the serial
	// left-to-right scan produces them; the diagnostics are sums.
	type eligiblePartial struct {
		halves                  []Half
		fwd, back, bothOverlaps int
	}
	parts := make([]eligiblePartial, numChunks(len(st.addrs), workers))
	parallelChunks(len(st.addrs), workers, func(w, lo, hi int) {
		p := &parts[w]
		for _, a := range st.addrs[lo:hi] {
			f, b := st.nbrF[a], st.nbrB[a]
			if len(f) >= 2 {
				p.halves = append(p.halves, Half{Addr: a, Dir: Forward})
				p.fwd++
			}
			if len(b) >= 2 {
				p.halves = append(p.halves, Half{Addr: a, Dir: Backward})
				p.back++
			}
			if len(f) > 0 && len(b) > 0 && sortedIntersect(f, b) {
				p.bothOverlaps++
			}
		}
	})
	for _, p := range parts {
		st.halves = append(st.halves, p.halves...)
		st.diag.EligibleForward += p.fwd
		st.diag.EligibleBackward += p.back
		st.diag.BothNsOverlap += p.bothOverlaps
	}
	slices.SortFunc(st.halves, halfCmp)
	return st
}

func sortedIntersect(a, b []inet.Addr) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// neighbors returns the half's neighbour set.
func (st *runState) neighbors(h Half) []inet.Addr {
	if h.Dir == Forward {
		return st.nbrF[h.Addr]
	}
	return st.nbrB[h.Addr]
}

// mapping returns the committed IP2AS view of a half: override if one is
// in force, otherwise the base BGP mapping. Zero means unannounced.
func (st *runState) mapping(h Half) inet.ASN {
	if asn, ok := st.overrides[h]; ok {
		return asn
	}
	return st.baseAS[h.Addr]
}

// otherHalf returns the opposite-direction half of the other side of h:
// the half that shares h's link and looks the same way along it (§3.2).
func (st *runState) otherHalf(h Half) (Half, bool) {
	o, ok := st.otherSide[h.Addr]
	if !ok || st.severed[h.Addr] {
		return Half{}, false
	}
	return Half{Addr: o, Dir: h.Dir.Opposite()}, true
}

// recomputeOverride re-derives the committed override for h from its
// surviving inference records (its own direct inference, else the direct
// inference on its other side that made it indirect).
func (st *runState) recomputeOverride(h Half) {
	if d, ok := st.direct[h]; ok {
		st.overrides[h] = d.connected
		return
	}
	if src, ok := st.indirect[h]; ok {
		if d, ok := st.direct[src]; ok {
			st.overrides[h] = d.connected
			return
		}
	}
	delete(st.overrides, h)
}

// discardDirect removes a direct inference and everything hanging off it:
// its IP2AS update and the indirect inference it induced on its other
// side (§4.4.2: "If the associated direct inference is discarded, the
// indirect inference is also discarded").
func (st *runState) discardDirect(h Half) {
	if _, ok := st.direct[h]; !ok {
		return
	}
	delete(st.direct, h)
	st.recomputeOverride(h)
	if oh, ok := st.otherHalf(h); ok {
		if src, ok := st.indirect[oh]; ok && src == h {
			delete(st.indirect, oh)
			st.recomputeOverride(oh)
		}
	}
}

// stateHash fingerprints the full inference state for the §4.6
// repeated-state stopping rule.
func (st *runState) stateHash() uint64 {
	hsh := fnv.New64a()
	var buf [16]byte
	writeHalf := func(h Half, extra inet.ASN, tag byte) {
		buf[0] = tag
		buf[1] = byte(h.Dir)
		buf[2] = byte(h.Addr >> 24)
		buf[3] = byte(h.Addr >> 16)
		buf[4] = byte(h.Addr >> 8)
		buf[5] = byte(h.Addr)
		buf[6] = byte(extra >> 24)
		buf[7] = byte(extra >> 16)
		buf[8] = byte(extra >> 8)
		buf[9] = byte(extra)
		hsh.Write(buf[:10])
	}
	// Deterministic order: collect and sort, reusing one scratch buffer
	// across the three collections and across calls.
	halves := st.hashScratch[:0]
	for h := range st.direct {
		halves = append(halves, h)
	}
	slices.SortFunc(halves, halfCmp)
	for _, h := range halves {
		d := st.direct[h]
		tag := byte(1)
		if d.uncertain {
			tag = 2
		}
		writeHalf(h, d.connected, tag)
	}
	halves = halves[:0]
	for h := range st.indirect {
		halves = append(halves, h)
	}
	slices.SortFunc(halves, halfCmp)
	for _, h := range halves {
		writeHalf(h, inet.ASN(st.indirect[h].Addr), 3)
	}
	halves = halves[:0]
	for h := range st.overrides {
		halves = append(halves, h)
	}
	slices.SortFunc(halves, halfCmp)
	for _, h := range halves {
		writeHalf(h, st.overrides[h], 4)
	}
	st.hashScratch = halves
	return hsh.Sum64()
}

// result builds the output snapshot from the current state.
func (st *runState) result() *Result {
	r := &Result{Diag: st.diag}
	out := make([]Inference, 0, len(st.direct)*2)
	indirectSeen := make(map[Half]bool)
	halves := make([]Half, 0, len(st.direct))
	for h := range st.direct {
		halves = append(halves, h)
	}
	slices.SortFunc(halves, halfCmp)
	for _, h := range halves {
		d := st.direct[h]
		inf := Inference{
			Addr:      h.Addr,
			Dir:       h.Dir,
			Local:     d.local,
			Connected: d.connected,
			OtherSide: st.otherSide[h.Addr],
			Uncertain: d.uncertain,
			Stub:      d.stub,
		}
		out = append(out, inf)
		// The far side of the link is also an inter-AS link interface
		// connecting the same pair (§3.1, §4.4.2) — emit it as an
		// indirect record unless it carries its own direct inference.
		// Putative other sides that never appeared in any trace are
		// internal bookkeeping only: with the /30-vs-/31 heuristic
		// unconfirmed there is no observed interface to report.
		if oh, ok := st.otherHalf(h); ok && st.observed.Contains(oh.Addr) {
			if _, hasDirect := st.direct[oh]; !hasDirect && !indirectSeen[oh] && !st.ixpAddr[h.Addr] {
				indirectSeen[oh] = true
				out = append(out, Inference{
					Addr:      oh.Addr,
					Dir:       oh.Dir,
					Local:     d.connected,
					Connected: d.local,
					OtherSide: h.Addr,
					Uncertain: d.uncertain,
					Stub:      d.stub,
					Indirect:  true,
				})
			}
		}
	}
	slices.SortFunc(out, func(a, b Inference) int {
		if c := halfCmp(Half{Addr: a.Addr, Dir: a.Dir}, Half{Addr: b.Addr, Dir: b.Dir}); c != 0 {
			return c
		}
		switch {
		case a.Indirect == b.Indirect:
			return 0
		case b.Indirect:
			return -1
		default:
			return 1
		}
	})
	r.Inferences = out
	return r
}
