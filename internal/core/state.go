package core

import (
	"hash/fnv"
	"sort"

	"mapit/internal/inet"
)

// directInf is a direct inference record on one half (§4.4.1).
type directInf struct {
	local     inet.ASN // committed mapping of the half when inferred
	connected inet.ASN // AS_N
	uncertain bool
	stub      bool
}

// runState is the full mutable state of a MAP-IT run.
type runState struct {
	cfg *Config

	// Immutable after build.
	observed  inet.AddrSet              // every address seen in any trace
	otherSide map[inet.Addr]inet.Addr   // §4.2 pairing
	nbrF      map[inet.Addr][]inet.Addr // N_F, sorted unique
	nbrB      map[inet.Addr][]inet.Addr // N_B, sorted unique
	baseAS    map[inet.Addr]inet.ASN    // original IP2AS (0 = unannounced)
	ixpAddr   map[inet.Addr]bool
	halves    []Half // |N| ≥ 2 halves in deterministic order
	addrs     []inet.Addr

	// Inference state. overrides is the committed per-half IP2AS view;
	// mutations during a pass are buffered and applied at pass end so
	// every pass reads the previous pass's state (§4.4.5).
	direct    map[Half]*directInf
	indirect  map[Half]Half // half with indirect inference -> source half
	overrides map[Half]inet.ASN
	// severed marks addresses whose other-side pairing was dismissed as
	// incorrect by the divergent-other-sides rule (§4.4.3).
	severed map[inet.Addr]bool
	// inferredOnce suppresses re-inference on a half within one add
	// step: a direct inference can only be made once per add step,
	// which is what makes the add step converge (§4.4.5). Reset at the
	// start of every add step.
	inferredOnce map[Half]bool

	diag Diagnostics
}

func newRunState(cfg *Config, ev *Evidence) *runState {
	st := &runState{
		cfg:          cfg,
		nbrF:         make(map[inet.Addr][]inet.Addr),
		nbrB:         make(map[inet.Addr][]inet.Addr),
		baseAS:       make(map[inet.Addr]inet.ASN),
		ixpAddr:      make(map[inet.Addr]bool),
		direct:       make(map[Half]*directInf),
		indirect:     make(map[Half]Half),
		overrides:    make(map[Half]inet.ASN),
		severed:      make(map[inet.Addr]bool),
		inferredOnce: make(map[Half]bool),
	}
	st.observed = ev.AllAddrs
	st.otherSide = make(map[inet.Addr]inet.Addr, len(ev.AllAddrs))
	n31 := 0
	for a := range ev.AllAddrs {
		os := inet.InferOtherSide(a, ev.AllAddrs)
		st.otherSide[a] = os.Other
		if os.Kind == inet.PtP31 {
			n31++
		}
	}
	if len(ev.AllAddrs) > 0 {
		st.diag.Slash31Fraction = float64(n31) / float64(len(ev.AllAddrs))
	}

	// Neighbour sets from the unique adjacencies (§4.3); Evidence
	// adjacencies arrive sorted and deduplicated, so the per-address
	// lists inherit both properties.
	for _, adj := range ev.Adjacencies {
		st.nbrF[adj.First] = append(st.nbrF[adj.First], adj.Second)
		st.nbrB[adj.Second] = append(st.nbrB[adj.Second], adj.First)
	}
	for a, list := range st.nbrB {
		// nbrF inherits (First, Second) order; nbrB needs a re-sort on
		// the first element's partner.
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		st.nbrB[a] = list
	}

	// Interface universe: every address with a neighbour on either side.
	seen := make(map[inet.Addr]bool, len(st.nbrF)+len(st.nbrB))
	addAddr := func(a inet.Addr) {
		if !seen[a] {
			seen[a] = true
			st.addrs = append(st.addrs, a)
		}
	}
	for a := range st.nbrF {
		addAddr(a)
	}
	for a := range st.nbrB {
		addAddr(a)
	}
	// Neighbour members also need base mappings.
	resolve := func(a inet.Addr) {
		if _, ok := st.baseAS[a]; ok {
			return
		}
		asn, _ := cfg.IP2AS.Lookup(a)
		if cfg.IXP.IsIXPAddr(a) || cfg.IXP.IsIXPASN(asn) {
			st.ixpAddr[a] = true
		}
		st.baseAS[a] = asn
	}
	for _, a := range st.addrs {
		resolve(a)
		if ov, ok := st.otherSide[a]; ok {
			resolve(ov)
		}
	}
	sort.Slice(st.addrs, func(i, j int) bool { return st.addrs[i] < st.addrs[j] })
	st.diag.Interfaces = len(st.addrs)

	// Eligible halves and the both-Ns overlap statistic.
	for _, a := range st.addrs {
		f, b := st.nbrF[a], st.nbrB[a]
		if len(f) >= 2 {
			st.halves = append(st.halves, Half{Addr: a, Dir: Forward})
			st.diag.EligibleForward++
		}
		if len(b) >= 2 {
			st.halves = append(st.halves, Half{Addr: a, Dir: Backward})
			st.diag.EligibleBackward++
		}
		if len(f) > 0 && len(b) > 0 && sortedIntersect(f, b) {
			st.diag.BothNsOverlap++
		}
	}
	sort.Slice(st.halves, func(i, j int) bool { return halfLess(st.halves[i], st.halves[j]) })
	return st
}

func sortedIntersect(a, b []inet.Addr) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// neighbors returns the half's neighbour set.
func (st *runState) neighbors(h Half) []inet.Addr {
	if h.Dir == Forward {
		return st.nbrF[h.Addr]
	}
	return st.nbrB[h.Addr]
}

// mapping returns the committed IP2AS view of a half: override if one is
// in force, otherwise the base BGP mapping. Zero means unannounced.
func (st *runState) mapping(h Half) inet.ASN {
	if asn, ok := st.overrides[h]; ok {
		return asn
	}
	return st.baseAS[h.Addr]
}

// otherHalf returns the opposite-direction half of the other side of h:
// the half that shares h's link and looks the same way along it (§3.2).
func (st *runState) otherHalf(h Half) (Half, bool) {
	o, ok := st.otherSide[h.Addr]
	if !ok || st.severed[h.Addr] {
		return Half{}, false
	}
	return Half{Addr: o, Dir: h.Dir.Opposite()}, true
}

// recomputeOverride re-derives the committed override for h from its
// surviving inference records (its own direct inference, else the direct
// inference on its other side that made it indirect).
func (st *runState) recomputeOverride(h Half) {
	if d, ok := st.direct[h]; ok {
		st.overrides[h] = d.connected
		return
	}
	if src, ok := st.indirect[h]; ok {
		if d, ok := st.direct[src]; ok {
			st.overrides[h] = d.connected
			return
		}
	}
	delete(st.overrides, h)
}

// discardDirect removes a direct inference and everything hanging off it:
// its IP2AS update and the indirect inference it induced on its other
// side (§4.4.2: "If the associated direct inference is discarded, the
// indirect inference is also discarded").
func (st *runState) discardDirect(h Half) {
	if _, ok := st.direct[h]; !ok {
		return
	}
	delete(st.direct, h)
	st.recomputeOverride(h)
	if oh, ok := st.otherHalf(h); ok {
		if src, ok := st.indirect[oh]; ok && src == h {
			delete(st.indirect, oh)
			st.recomputeOverride(oh)
		}
	}
}

// stateHash fingerprints the full inference state for the §4.6
// repeated-state stopping rule.
func (st *runState) stateHash() uint64 {
	hsh := fnv.New64a()
	var buf [16]byte
	writeHalf := func(h Half, extra inet.ASN, tag byte) {
		buf[0] = tag
		buf[1] = byte(h.Dir)
		buf[2] = byte(h.Addr >> 24)
		buf[3] = byte(h.Addr >> 16)
		buf[4] = byte(h.Addr >> 8)
		buf[5] = byte(h.Addr)
		buf[6] = byte(extra >> 24)
		buf[7] = byte(extra >> 16)
		buf[8] = byte(extra >> 8)
		buf[9] = byte(extra)
		hsh.Write(buf[:10])
	}
	// Deterministic order: collect and sort.
	halves := make([]Half, 0, len(st.direct)+len(st.indirect)+len(st.overrides))
	for h := range st.direct {
		halves = append(halves, h)
	}
	sort.Slice(halves, func(i, j int) bool { return halfLess(halves[i], halves[j]) })
	for _, h := range halves {
		d := st.direct[h]
		tag := byte(1)
		if d.uncertain {
			tag = 2
		}
		writeHalf(h, d.connected, tag)
	}
	halves = halves[:0]
	for h := range st.indirect {
		halves = append(halves, h)
	}
	sort.Slice(halves, func(i, j int) bool { return halfLess(halves[i], halves[j]) })
	for _, h := range halves {
		writeHalf(h, inet.ASN(st.indirect[h].Addr), 3)
	}
	halves = halves[:0]
	for h := range st.overrides {
		halves = append(halves, h)
	}
	sort.Slice(halves, func(i, j int) bool { return halfLess(halves[i], halves[j]) })
	for _, h := range halves {
		writeHalf(h, st.overrides[h], 4)
	}
	return hsh.Sum64()
}

// result builds the output snapshot from the current state.
func (st *runState) result() *Result {
	r := &Result{Diag: st.diag}
	out := make([]Inference, 0, len(st.direct)*2)
	indirectSeen := make(map[Half]bool)
	halves := make([]Half, 0, len(st.direct))
	for h := range st.direct {
		halves = append(halves, h)
	}
	sort.Slice(halves, func(i, j int) bool { return halfLess(halves[i], halves[j]) })
	for _, h := range halves {
		d := st.direct[h]
		inf := Inference{
			Addr:      h.Addr,
			Dir:       h.Dir,
			Local:     d.local,
			Connected: d.connected,
			OtherSide: st.otherSide[h.Addr],
			Uncertain: d.uncertain,
			Stub:      d.stub,
		}
		out = append(out, inf)
		// The far side of the link is also an inter-AS link interface
		// connecting the same pair (§3.1, §4.4.2) — emit it as an
		// indirect record unless it carries its own direct inference.
		// Putative other sides that never appeared in any trace are
		// internal bookkeeping only: with the /30-vs-/31 heuristic
		// unconfirmed there is no observed interface to report.
		if oh, ok := st.otherHalf(h); ok && st.observed.Contains(oh.Addr) {
			if _, hasDirect := st.direct[oh]; !hasDirect && !indirectSeen[oh] && !st.ixpAddr[h.Addr] {
				indirectSeen[oh] = true
				out = append(out, Inference{
					Addr:      oh.Addr,
					Dir:       oh.Dir,
					Local:     d.connected,
					Connected: d.local,
					OtherSide: h.Addr,
					Uncertain: d.uncertain,
					Stub:      d.stub,
					Indirect:  true,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		if out[i].Dir != out[j].Dir {
			return out[i].Dir < out[j].Dir
		}
		return !out[i].Indirect && out[j].Indirect
	})
	r.Inferences = out
	return r
}
