package core

import (
	"slices"

	"mapit/internal/inet"
)

// directInf is a direct inference record on one half (§4.4.1).
type directInf struct {
	local     inet.ASN // committed mapping of the half when inferred
	connected inet.ASN // AS_N
	// connectedID and localID are the intern ids of connected and local
	// (see internIndex; localID is -1 when unannounced), captured at
	// inference time so the §4.5 retention check and the §4.4.3/§4.4.4
	// resolutions compare dense org ids instead of walking the
	// union-find.
	connectedID int32
	localID     int32
	uncertain   bool
	stub        bool
}

// runState is the full mutable state of a MAP-IT run.
type runState struct {
	cfg *Config

	// ip2as is the run's memoised view of cfg.IP2AS: every resolution
	// site in the run goes through it, so each distinct address hits
	// the LPM engine at most once per run (see memoIP2AS).
	ip2as *memoIP2AS

	// Immutable after build.
	observed  inet.AddrSet              // every address seen in any trace
	otherSide map[inet.Addr]inet.Addr   // §4.2 pairing
	nbrF      map[inet.Addr][]inet.Addr // N_F, sorted unique
	nbrB      map[inet.Addr][]inet.Addr // N_B, sorted unique
	baseAS    map[inet.Addr]inet.ASN    // original IP2AS (0 = unannounced)
	ixpAddr   map[inet.Addr]bool
	halves    []Half // |N| ≥ 2 halves in deterministic order
	addrs     []inet.Addr

	// Inference state. overrides is the committed per-half IP2AS view;
	// mutations during a pass are buffered and applied at pass end so
	// every pass reads the previous pass's state (§4.4.5).
	direct    map[Half]*directInf
	indirect  map[Half]Half // half with indirect inference -> source half
	overrides map[Half]inet.ASN
	// severed marks addresses whose other-side pairing was dismissed as
	// incorrect by the divergent-other-sides rule (§4.4.3).
	severed map[inet.Addr]bool
	// inferredOnce suppresses re-inference on a half within one add
	// step: a direct inference can only be made once per add step,
	// which is what makes the add step converge (§4.4.5). Indexed by
	// halfIdx (inferences only ever land on eligible, indexed halves);
	// cleared by resetInferredOnce at the start of every iteration.
	inferredOnce []bool

	// hashSum is the §4.6 state fingerprint, maintained incrementally:
	// an order-independent sum (mod 2^64) of one strong per-entry hash
	// for every direct inference, indirect association, and override.
	// Addition forms a group, so every state-mutating funnel subtracts
	// the entry hash it replaces and adds the new one, and stateHash is
	// O(1) instead of three sorted map walks per iteration.
	// stateHashRecompute rebuilds it from scratch for verification.
	hashSum uint64

	// seenSet indexes the visited fingerprints for the §4.6 stopping
	// rule's O(1) membership test, so the rule costs O(iterations)
	// total instead of O(iterations²) when MaxIterations is raised for
	// long-running sweeps. Reused across fixpoint calls on one state.
	// (The visit-order slice that once shadowed it is gone: nothing
	// read it — membership is the whole test.)
	seenSet map[uint64]struct{}

	// n31 is the integer §4.2 /31 count behind diag.Slash31Fraction,
	// kept so a partitioned run can recompose the global fraction from
	// exact per-component numerators (floats do not sum).
	n31 int

	// lastPassDual is the DualSameAS delta of the most recent add
	// step's final (quiet) pass — the stable same-organisation dual
	// count the partitioned engine needs to reconstruct monolithic
	// diagnostics (see mergeDiagnostics).
	lastPassDual int

	// snapHash/snapSevered/snapInf memoise the last stage snapshot's
	// inference list (see StageSnapshot): consecutive hooks between
	// which neither the state fingerprint nor the severed set moved
	// reuse the list instead of rebuilding it.
	snapHash    uint64
	snapSevered int
	snapInf     []Inference

	// Incremental fixpoint machinery (see orgid.go / dirty.go): the
	// dense intern index elections run on, the dirty set the add and
	// remove steps drain, per-worker election scratch, and the reusable
	// pass buffers of directPass and removeStep.
	idx      internIndex
	dirty    dirtySet
	electScr []electScratch

	// Flat mirrors of the inference state above, indexed by halfIdx and
	// kept in lockstep by the setDirect/unsetDirect and
	// setIndirect/unsetIndirect funnels, so the per-pass scan and
	// resolution loops read arrays instead of hashing Half keys.
	// dirConnID[h] ≥ 0 iff h carries a direct inference (connected is
	// never unannounced); dirLocalID/dirStub/dirUnc mirror the record's
	// other fields. indirectSrc[h] is the halfIdx of the direct
	// inference backing h's indirect record (-1 when none; source
	// halves are always indexed even when the indirect key is not).
	// severedIdx mirrors st.severed by addrIdx.
	dirConnID   []int32
	dirLocalID  []int32
	dirStub     []bool
	dirUnc      []bool
	indirectSrc []int32
	severedIdx  []bool

	// directIdxs is the sorted halfIdx view of st.direct, maintained
	// incrementally: commits append (in sorted batches) to
	// directPending, removals flag directStale, and sortedDirectIdxs
	// compacts and merges on demand.
	directIdxs    []int32
	directPending []int32
	directMerge   []int32
	directStale   bool

	addShards      [][]pendingAdd
	addsBuf        []pendingAdd
	demoteShards   [][]int32
	demoteBuf      []int32
	purgeBuf       []Half
	resolveScratch []int32

	// infBlock is the live slab directInf records are carved from:
	// commits take the next slot instead of boxing a record per add,
	// which was the dominant in-fixpoint allocation. Records removed by
	// the remove step or resolutions are simply abandoned in place —
	// the waste is bounded by the total adds of one run, and the whole
	// slab dies with the runState.
	infBlock []directInf

	// auditor runs the runtime invariant audit at fixpoint step
	// boundaries; nil unless Config.Audit enabled auditing.
	auditor *runAuditor

	diag Diagnostics
}

// infSlabBlock is the slab granularity: appends never move live
// records because a full block is retired and a fresh one started.
const infSlabBlock = 512

// newDirectInf copies d into the slab and returns a stable pointer.
func (st *runState) newDirectInf(d directInf) *directInf {
	if len(st.infBlock) == cap(st.infBlock) {
		st.infBlock = make([]directInf, 0, infSlabBlock)
	}
	st.infBlock = append(st.infBlock, d)
	return &st.infBlock[len(st.infBlock)-1]
}

func newRunState(cfg *Config, ev *Evidence) *runState {
	st := &runState{
		cfg:       cfg,
		nbrF:      make(map[inet.Addr][]inet.Addr),
		nbrB:      make(map[inet.Addr][]inet.Addr),
		baseAS:    make(map[inet.Addr]inet.ASN),
		ixpAddr:   make(map[inet.Addr]bool),
		direct:    make(map[Half]*directInf),
		indirect:  make(map[Half]Half),
		overrides: make(map[Half]inet.ASN),
		severed:   make(map[inet.Addr]bool),
	}
	workers := cfg.workers()
	st.observed = ev.AllAddrs
	st.otherSide = make(map[inet.Addr]inet.Addr, len(ev.AllAddrs))

	// §4.2 other sides. The per-address heuristic is pure, so it shards
	// over a snapshot of the address set into index-aligned slices (each
	// worker writes a disjoint range — no locking) and the map fill stays
	// serial. The map and the /31 count are order-independent, so the
	// outcome is identical to the serial loop.
	observed := make([]inet.Addr, 0, len(ev.AllAddrs))
	for a := range ev.AllAddrs {
		observed = append(observed, a)
	}
	others := make([]inet.Addr, len(observed))
	is31 := make([]bool, len(observed))
	parallelChunks(len(observed), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			os := inet.InferOtherSide(observed[i], ev.AllAddrs)
			others[i] = os.Other
			is31[i] = os.Kind == inet.PtP31
		}
	})
	n31 := 0
	for i, a := range observed {
		st.otherSide[a] = others[i]
		if is31[i] {
			n31++
		}
	}
	st.n31 = n31
	if len(ev.AllAddrs) > 0 {
		st.diag.Slash31Fraction = float64(n31) / float64(len(ev.AllAddrs))
	}

	// Neighbour sets from the unique adjacencies (§4.3); Evidence
	// adjacencies arrive sorted and deduplicated, so the per-address
	// lists inherit both properties.
	for _, adj := range ev.Adjacencies {
		st.nbrF[adj.First] = append(st.nbrF[adj.First], adj.Second)
		st.nbrB[adj.Second] = append(st.nbrB[adj.Second], adj.First)
	}
	// nbrF inherits (First, Second) order; nbrB needs a re-sort on the
	// first element's partner. The lists are independent, so they sort
	// in place in parallel.
	backLists := make([][]inet.Addr, 0, len(st.nbrB))
	for _, list := range st.nbrB {
		backLists = append(backLists, list)
	}
	parallelChunks(len(backLists), workers, func(_, lo, hi int) {
		for _, list := range backLists[lo:hi] {
			slices.Sort(list)
		}
	})

	// Interface universe: every address with a neighbour on either side.
	seen := make(map[inet.Addr]bool, len(st.nbrF)+len(st.nbrB))
	addAddr := func(a inet.Addr) {
		if !seen[a] {
			seen[a] = true
			st.addrs = append(st.addrs, a)
		}
	}
	for a := range st.nbrF {
		addAddr(a)
	}
	for a := range st.nbrB {
		addAddr(a)
	}
	// Neighbour members also need base mappings: each interface address
	// plus its putative other side. The LPM and IXP lookups are
	// read-only (the sources are frozen by RunEvidence) and dominate
	// this phase, so they shard over a deduplicated worklist into
	// aligned slices; the map fill — and the memo commit — stays
	// serial.
	work := make([]inet.Addr, 0, 2*len(st.addrs))
	queued := make(map[inet.Addr]bool, 2*len(st.addrs))
	enqueue := func(a inet.Addr) {
		if !queued[a] {
			queued[a] = true
			work = append(work, a)
		}
	}
	for _, a := range st.addrs {
		enqueue(a)
		if ov, ok := st.otherSide[a]; ok {
			enqueue(ov)
		}
	}
	st.ip2as = newMemoIP2AS(cfg.IP2AS)
	asns := st.ip2as.primeParallel(work, workers)
	isIXP := make([]bool, len(work))
	parallelChunks(len(work), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			isIXP[i] = cfg.IXP.IsIXPAddr(work[i]) || cfg.IXP.IsIXPASN(asns[i])
		}
	})
	for i, a := range work {
		st.baseAS[a] = asns[i]
		if isIXP[i] {
			st.ixpAddr[a] = true
		}
	}
	slices.Sort(st.addrs)
	st.diag.Interfaces = len(st.addrs)

	// Eligible halves and the both-Ns overlap statistic. Chunks scan
	// disjoint ranges of the sorted address slice and are concatenated
	// in chunk order, so the halves emerge exactly as the serial
	// left-to-right scan produces them; the diagnostics are sums.
	type eligiblePartial struct {
		halves                  []Half
		fwd, back, bothOverlaps int
	}
	parts := make([]eligiblePartial, numChunks(len(st.addrs), workers))
	parallelChunks(len(st.addrs), workers, func(w, lo, hi int) {
		p := &parts[w]
		for _, a := range st.addrs[lo:hi] {
			f, b := st.nbrF[a], st.nbrB[a]
			if len(f) >= 2 {
				p.halves = append(p.halves, Half{Addr: a, Dir: Forward})
				p.fwd++
			}
			if len(b) >= 2 {
				p.halves = append(p.halves, Half{Addr: a, Dir: Backward})
				p.back++
			}
			if len(f) > 0 && len(b) > 0 && sortedIntersect(f, b) {
				p.bothOverlaps++
			}
		}
	})
	for _, p := range parts {
		st.halves = append(st.halves, p.halves...)
		st.diag.EligibleForward += p.fwd
		st.diag.EligibleBackward += p.back
		st.diag.BothNsOverlap += p.bothOverlaps
	}
	slices.SortFunc(st.halves, halfCmp)
	st.buildIndex()
	if cfg.Audit.Enabled() {
		st.auditor = newRunAuditor(cfg.Audit)
	}
	return st
}

func sortedIntersect(a, b []inet.Addr) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// neighbors returns the half's neighbour set.
func (st *runState) neighbors(h Half) []inet.Addr {
	if h.Dir == Forward {
		return st.nbrF[h.Addr]
	}
	return st.nbrB[h.Addr]
}

// mapping returns the committed IP2AS view of a half: override if one is
// in force, otherwise the base BGP mapping. Zero means unannounced.
func (st *runState) mapping(h Half) inet.ASN {
	if asn, ok := st.overrides[h]; ok {
		return asn
	}
	return st.baseAS[h.Addr]
}

// otherHalf returns the opposite-direction half of the other side of h:
// the half that shares h's link and looks the same way along it (§3.2).
func (st *runState) otherHalf(h Half) (Half, bool) {
	o, ok := st.otherSide[h.Addr]
	if !ok || st.severed[h.Addr] {
		return Half{}, false
	}
	return Half{Addr: o, Dir: h.Dir.Opposite()}, true
}

// mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// output bits all depend on all input bits. Composing two rounds over
// the packed entry fields gives each (tag, half, payload) tuple an
// effectively independent 64-bit hash, which is what makes the
// order-independent sum in hashSum collision-safe in practice.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// entryHash fingerprints one state entry for hashSum. Tags keep the
// three record kinds (and the uncertain flag on direct inferences)
// from colliding: 1 = direct, 2 = direct uncertain, 3 = indirect
// (payload is the source address), 4 = override (payload is the ASN).
func entryHash(tag byte, h Half, payload uint32) uint64 {
	k := uint64(h.Addr)<<2 | uint64(h.Dir)<<1 | uint64(tag)<<40
	return mix64(mix64(k) + uint64(payload)*0x9e3779b97f4a7c15)
}

func directTag(uncertain bool) byte {
	if uncertain {
		return 2
	}
	return 1
}

// setDirect commits a direct inference, keeping the Half-keyed map
// (authoritative for hasInference and the result), the flat mirrors
// (what the scan and resolution loops read), and the hashSum
// fingerprint in lockstep. hi must be h's halfIdx; every inference
// lands on an eligible — therefore indexed — half.
func (st *runState) setDirect(h Half, hi int32, d *directInf) {
	if old, ok := st.direct[h]; ok {
		st.hashSum -= entryHash(directTag(old.uncertain), h, uint32(old.connected))
	}
	st.hashSum += entryHash(directTag(d.uncertain), h, uint32(d.connected))
	st.direct[h] = d
	st.dirConnID[hi] = d.connectedID
	st.dirLocalID[hi] = d.localID
	st.dirStub[hi] = d.stub
	st.dirUnc[hi] = d.uncertain
	if !st.cfg.DisableIncremental {
		st.directPending = append(st.directPending, hi)
	}
}

// unsetDirect removes a direct inference from the map and the mirrors.
func (st *runState) unsetDirect(h Half) {
	st.unsetDirectIdx(h, st.halfIdx(h))
}

// unsetDirectIdx is unsetDirect for callers that already hold h's index.
func (st *runState) unsetDirectIdx(h Half, hi int32) {
	old, ok := st.direct[h]
	if !ok {
		return
	}
	st.hashSum -= entryHash(directTag(old.uncertain), h, uint32(old.connected))
	delete(st.direct, h)
	if hi >= 0 {
		st.dirConnID[hi] = -1
		st.dirLocalID[hi] = -1
		st.dirStub[hi] = false
		st.dirUnc[hi] = false
		if !st.cfg.DisableIncremental {
			st.directStale = true
		}
	}
}

// setUncertain flips the §4.4.4 uncertain flag on hi's direct record,
// keeping the mirror and the fingerprint consistent. No-op when the
// flag is already set.
func (st *runState) setUncertain(hi int32) {
	if st.dirUnc[hi] {
		return
	}
	h := st.halfAt(hi)
	d := st.direct[h]
	st.hashSum -= entryHash(directTag(false), h, uint32(d.connected))
	st.hashSum += entryHash(directTag(true), h, uint32(d.connected))
	d.uncertain = true
	st.dirUnc[hi] = true
}

// setIndirect records an indirect inference association. The key half
// may be unindexed (a putative other side never seen adjacent to
// anything); the source is always an indexed direct-inference half.
func (st *runState) setIndirect(h, src Half) {
	st.setIndirectIdx(h, st.halfIdx(h), src, st.halfIdx(src))
}

// setIndirectIdx is setIndirect for callers that already hold the two
// half indexes (hi may be -1 for an unindexed key).
func (st *runState) setIndirectIdx(h Half, hi int32, src Half, srcIdx int32) {
	if old, ok := st.indirect[h]; ok {
		if old == src {
			return
		}
		st.hashSum -= entryHash(3, h, uint32(old.Addr))
	}
	st.hashSum += entryHash(3, h, uint32(src.Addr))
	st.indirect[h] = src
	if hi >= 0 {
		st.indirectSrc[hi] = srcIdx
	}
}

func (st *runState) unsetIndirect(h Half) {
	old, ok := st.indirect[h]
	if !ok {
		return
	}
	st.hashSum -= entryHash(3, h, uint32(old.Addr))
	delete(st.indirect, h)
	if hi := st.halfIdx(h); hi >= 0 {
		st.indirectSrc[hi] = -1
	}
}

// directScan returns the halves carrying direct inferences in halfCmp
// order — the iteration base of the §4.4.3/§4.4.4 resolutions and the
// remove step's full pass. The incremental engine reads the maintained
// index; with DisableIncremental the list is derived from the
// authoritative map on every call — a collection, sort, and allocation
// each time, which is exactly the cost profile of the pre-incremental
// engine the escape hatch preserves (and one of the costs the
// maintained index exists to remove).
func (st *runState) directScan() []int32 {
	if !st.cfg.DisableIncremental {
		return st.sortedDirectIdxs()
	}
	idxs := make([]int32, 0, len(st.direct))
	for h := range st.direct {
		idxs = append(idxs, st.halfIdx(h))
	}
	slices.Sort(idxs)
	return idxs
}

// sortedDirectIdxs returns the halves carrying direct inferences in
// halfCmp order. Removals since the last call are swept out (entries
// whose mirror went -1), then the pending additions — one sorted batch,
// because every committer appends in scan order and the next resolution
// stage drains before another batch starts — are merged in. A swept
// entry that was re-added in the same window survives via the merge
// dedup, never duplicated.
func (st *runState) sortedDirectIdxs() []int32 {
	if st.directStale {
		out := st.directIdxs[:0]
		for _, hi := range st.directIdxs {
			if st.dirConnID[hi] >= 0 {
				out = append(out, hi)
			}
		}
		st.directIdxs = out
		st.directStale = false
	}
	if len(st.directPending) > 0 {
		merged := st.directMerge[:0]
		a, b := st.directIdxs, st.directPending
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				merged = append(merged, a[i])
				i++
			case b[j] < a[i]:
				merged = append(merged, b[j])
				j++
			default:
				merged = append(merged, a[i])
				i++
				j++
			}
		}
		merged = append(merged, a[i:]...)
		merged = append(merged, b[j:]...)
		st.directMerge = st.directIdxs[:0]
		st.directIdxs = merged
		st.directPending = st.directPending[:0]
	}
	return st.directIdxs
}

// resetInferredOnce clears the once-per-add-step latch (§4.4.5); called
// at the top of every outer iteration.
func (st *runState) resetInferredOnce() {
	clear(st.inferredOnce)
}

// hasInferenceIdx is hasInference over the flat mirrors, for the loops
// that already hold a halfIdx.
func (st *runState) hasInferenceIdx(hi int32) bool {
	if st.dirConnID[hi] >= 0 {
		return true
	}
	src := st.indirectSrc[hi]
	return src >= 0 && st.dirConnID[src] >= 0
}

// recomputeOverride re-derives the committed override for h from its
// surviving inference records: its own direct inference, else the direct
// inference on its other side that made it indirect, else — under the
// WholeInterfaceUpdates ablation, whose commits mirror every direct
// update onto the opposite half — the direct inference on its opposite
// half. With no surviving source the override is cleared.
func (st *runState) recomputeOverride(h Half) {
	if d, ok := st.direct[h]; ok {
		st.setOverride(h, d.connected)
		return
	}
	if src, ok := st.indirect[h]; ok {
		if d, ok := st.direct[src]; ok {
			st.setOverride(h, d.connected)
			return
		}
	}
	if st.cfg.WholeInterfaceUpdates {
		if d, ok := st.direct[h.Opposite()]; ok {
			st.setOverride(h, d.connected)
			return
		}
	}
	st.clearOverride(h)
}

// discardDirect removes a direct inference and everything hanging off it:
// its IP2AS update, the indirect inference it induced on its other side
// (§4.4.2: "If the associated direct inference is discarded, the
// indirect inference is also discarded"), and — under the ablation that
// mirrors updates onto whole interfaces — the opposite half's mirrored
// override.
func (st *runState) discardDirect(h Half) {
	if _, ok := st.direct[h]; !ok {
		return
	}
	st.unsetDirect(h)
	st.recomputeOverride(h)
	if st.cfg.WholeInterfaceUpdates {
		st.recomputeOverride(h.Opposite())
	}
	if oh, ok := st.otherHalf(h); ok {
		if src, ok := st.indirect[oh]; ok && src == h {
			st.unsetIndirect(oh)
			st.recomputeOverride(oh)
		}
	}
}

// stateHash fingerprints the full inference state for the §4.6
// repeated-state stopping rule. The fingerprint is maintained by the
// mutation funnels (see hashSum), so reading it is free; the sum is
// order-independent, so serial and sharded runs — which commit in the
// same order anyway — and both fixpoint engines agree exactly.
func (st *runState) stateHash() uint64 {
	return st.hashSum
}

// stateHashRecompute rebuilds the fingerprint from the authoritative
// maps. Test hook: asserting it equals stateHash() after a run proves
// every mutation path kept hashSum in lockstep.
func (st *runState) stateHashRecompute() uint64 {
	var sum uint64
	for h, d := range st.direct {
		sum += entryHash(directTag(d.uncertain), h, uint32(d.connected))
	}
	for h, src := range st.indirect {
		sum += entryHash(3, h, uint32(src.Addr))
	}
	for h, asn := range st.overrides {
		sum += entryHash(4, h, uint32(asn))
	}
	return sum
}

// result builds the output snapshot from the current state.
func (st *runState) result() *Result {
	r := &Result{Diag: st.diag}
	out := make([]Inference, 0, len(st.direct)*2)
	indirectSeen := make(map[Half]bool)
	halves := make([]Half, 0, len(st.direct))
	for h := range st.direct {
		halves = append(halves, h)
	}
	slices.SortFunc(halves, halfCmp)
	for _, h := range halves {
		d := st.direct[h]
		inf := Inference{
			Addr:      h.Addr,
			Dir:       h.Dir,
			Local:     d.local,
			Connected: d.connected,
			OtherSide: st.otherSide[h.Addr],
			Uncertain: d.uncertain,
			Stub:      d.stub,
		}
		out = append(out, inf)
		// The far side of the link is also an inter-AS link interface
		// connecting the same pair (§3.1, §4.4.2) — emit it as an
		// indirect record unless it carries its own direct inference.
		// Putative other sides that never appeared in any trace are
		// internal bookkeeping only: with the /30-vs-/31 heuristic
		// unconfirmed there is no observed interface to report.
		if oh, ok := st.otherHalf(h); ok && st.observed.Contains(oh.Addr) {
			if _, hasDirect := st.direct[oh]; !hasDirect && !indirectSeen[oh] && !st.ixpAddr[h.Addr] {
				indirectSeen[oh] = true
				out = append(out, Inference{
					Addr:      oh.Addr,
					Dir:       oh.Dir,
					Local:     d.connected,
					Connected: d.local,
					OtherSide: h.Addr,
					Uncertain: d.uncertain,
					Stub:      d.stub,
					Indirect:  true,
				})
			}
		}
	}
	slices.SortFunc(out, inferenceCmp)
	r.Inferences = out
	return r
}

// inferenceCmp is the output order of Result.Inferences: by half, the
// direct record before its indirect counterpart. Shared by result()
// and the partitioned engine's merge (component address sets are
// disjoint, so the order is total over any concatenation).
func inferenceCmp(a, b Inference) int {
	if c := halfCmp(Half{Addr: a.Addr, Dir: a.Dir}, Half{Addr: b.Addr, Dir: b.Dir}); c != 0 {
		return c
	}
	switch {
	case a.Indirect == b.Indirect:
		return 0
	case b.Indirect:
		return -1
	default:
		return 1
	}
}
