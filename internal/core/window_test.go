package core

import (
	"fmt"
	"reflect"
	"slices"
	"strings"
	"testing"
	"time"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Window tests: the refcounted evidence must equal a fresh collector
// over exactly the resident traces at every position (the in-package
// half of the DiffWindow oracle), the expiry wheel must survive its
// edge cases, and the churn counters must track link and interface
// life cycles.

// windowConfig returns an inference config covering both trace sets
// the window tests use.
func windowConfig() Config {
	return Config{
		IP2AS: table(
			"109.105.0.0/16=2603",
			"198.71.0.0/16=11537",
			"64.57.0.0/16=11537",
			"199.109.0.0/16=3754",
			"20.1.0.0/16=100",
			"20.2.0.0/16=200",
		),
		F: 0.5,
	}
}

// setA is the Fig 2 corpus; setB an independent AS100–AS200 boundary.
func setA(at int64) []trace.Trace {
	ts := []trace.Trace{
		tr("109.105.98.10", "198.71.45.2"),
		tr("109.105.98.10", "198.71.46.180"),
		tr("109.105.98.10", "199.109.5.1"),
		tr("64.57.28.1", "199.109.5.1"),
		tr("109.105.98.9", "109.105.80.1"),
	}
	for i := range ts {
		ts[i].Time = at
	}
	return ts
}

func setB(at int64) []trace.Trace {
	ts := []trace.Trace{
		tr("20.1.0.1", "20.2.0.2"),
		tr("20.1.0.1", "20.2.0.3"),
	}
	for i := range ts {
		ts[i].Time = at
	}
	return ts
}

// batchOver runs a fresh collector + batch inference over exactly the
// given traces — the reference every window position must match.
func batchOver(t *testing.T, traces []trace.Trace, cfg Config, trackMon bool) (*Evidence, *Result) {
	t.Helper()
	c := NewCollector()
	if trackMon {
		c.TrackMonitors()
	}
	for _, tc := range traces {
		c.Add(tc)
	}
	ev := c.Evidence()
	res, err := RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev, res
}

// sameWindowResult asserts a windowed result is byte-identical to the
// batch reference, modulo the Diag.Window stamp.
func sameWindowResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !slices.Equal(got.Inferences, want.Inferences) {
		t.Fatalf("%s: inferences diverge: %d vs %d records", label, len(got.Inferences), len(want.Inferences))
	}
	if !reflect.DeepEqual(got.ProbeSuggestions, want.ProbeSuggestions) {
		t.Fatalf("%s: probe suggestions diverge", label)
	}
	gd := got.Diag
	gd.Window = WindowStats{}
	if gd != want.Diag {
		t.Fatalf("%s: diagnostics diverge:\n  windowed %+v\n  batch    %+v", label, gd, want.Diag)
	}
}

// sameEvidence asserts two evidences are identical in content.
func sameEvidence(t *testing.T, label string, got, want *Evidence) {
	t.Helper()
	if !reflect.DeepEqual(got.AllAddrs, want.AllAddrs) {
		t.Fatalf("%s: AllAddrs diverge (%d vs %d)", label, len(got.AllAddrs), len(want.AllAddrs))
	}
	if !reflect.DeepEqual(got.Adjacencies, want.Adjacencies) {
		t.Fatalf("%s: adjacencies diverge (%d vs %d)", label, len(got.Adjacencies), len(want.Adjacencies))
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats diverge: %+v vs %+v", label, got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Monitors, want.Monitors) {
		t.Fatalf("%s: monitor attribution diverges", label)
	}
}

// TestWindowMatchesBatchEveryPosition drives a mixed timeline through a
// 60s window and checks, at every advance, evidence and result equal a
// from-scratch batch run over exactly the resident traces.
func TestWindowMatchesBatchEveryPosition(t *testing.T) {
	cfg := windowConfig()
	for _, trackMon := range []bool{false, true} {
		w, err := NewWindow(WindowOptions{Length: 60 * time.Second, Config: cfg, TrackMonitors: trackMon})
		if err != nil {
			t.Fatal(err)
		}
		a := setA(100)
		b := setB(130)
		a2 := setA(310)

		type step struct {
			arrive  []trace.Trace
			now     int64
			want    []trace.Trace // resident after the advance
			changed bool          // whether this advance must recompute
		}
		steps := []step{
			{arrive: append(append([]trace.Trace{}, a...), b...), now: 130,
				want: append(append([]trace.Trace{}, a...), b...), changed: true},
			{now: 170, want: b, changed: true},              // A (t=100) expired: 170-60=110 ≥ 100
			{now: 300, want: nil, changed: true},            // everything expired
			{arrive: a2, now: 310, want: a2, changed: true}, // A returns
			{now: 310, want: a2},                            // no-op advance
		}

		recomputes := 0
		for i, st := range steps {
			for _, tc := range st.arrive {
				w.Observe(tc)
			}
			res, err := w.Advance(st.now)
			if err != nil {
				t.Fatal(err)
			}
			wantEv, wantRes := batchOver(t, st.want, cfg, trackMon)
			label := fmt.Sprintf("trackMon=%v step=%d", trackMon, i)
			sameEvidence(t, label, w.Evidence(), wantEv)
			sameWindowResult(t, label, res, wantRes)
			if res.Diag.Window.TracesActive != len(st.want) {
				t.Fatalf("%s: TracesActive=%d want %d", label, res.Diag.Window.TracesActive, len(st.want))
			}
			if st.changed {
				recomputes++
			}
			if got := res.Diag.Window.Recomputes; got != recomputes {
				t.Fatalf("%s: Recomputes=%d want %d", label, got, recomputes)
			}
		}
	}
}

// TestWindowEdges is the expiry-wheel edge table: empty window, window
// smaller than one step, all-evidence-expires-at-once, duplicate
// timestamps straddling a boundary, and the Remove of a trace that was
// never Added (a late arrival).
func TestWindowEdges(t *testing.T) {
	cfg := windowConfig()
	newW := func(length time.Duration) *Window {
		w, err := NewWindow(WindowOptions{Length: length, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	t.Run("empty window", func(t *testing.T) {
		w := newW(60 * time.Second)
		res, err := w.Advance(1000)
		if err != nil {
			t.Fatal(err)
		}
		_, want := batchOver(t, nil, cfg, false)
		sameWindowResult(t, "empty", res, want)
		if res.Diag.Window.Advances != 1 || res.Diag.Window.Recomputes != 1 {
			t.Fatalf("stats: %+v", res.Diag.Window)
		}
	})

	t.Run("window smaller than one step", func(t *testing.T) {
		// 10s window advanced in 100s steps: every advance expires the
		// entire previous contents.
		w := newW(10 * time.Second)
		for _, tc := range setA(100) {
			w.Observe(tc)
		}
		if _, err := w.Advance(105); err != nil {
			t.Fatal(err)
		}
		if w.Traces() != len(setA(100)) {
			t.Fatalf("resident %d", w.Traces())
		}
		for _, tc := range setB(200) {
			w.Observe(tc)
		}
		res, err := w.Advance(205)
		if err != nil {
			t.Fatal(err)
		}
		_, want := batchOver(t, setB(200), cfg, false)
		sameWindowResult(t, "step>window", res, want)
		if res.Diag.Window.TracesExpired != int64(len(setA(100))) {
			t.Fatalf("expired %d", res.Diag.Window.TracesExpired)
		}
	})

	t.Run("all evidence expires at once", func(t *testing.T) {
		w := newW(60 * time.Second)
		for _, tc := range append(setA(100), setB(100)...) {
			w.Observe(tc)
		}
		if _, err := w.Advance(120); err != nil {
			t.Fatal(err)
		}
		res, err := w.Advance(160) // 160-60=100 ≥ 100: everything goes
		if err != nil {
			t.Fatal(err)
		}
		_, want := batchOver(t, nil, cfg, false)
		sameWindowResult(t, "mass expiry", res, want)
		if w.Traces() != 0 {
			t.Fatalf("resident %d after mass expiry", w.Traces())
		}
	})

	t.Run("duplicate timestamps straddling a boundary", func(t *testing.T) {
		// Entries sharing t=100 and t=101: an advance whose cutoff lands
		// exactly on 100 must expire all of the former and none of the
		// latter.
		w := newW(60 * time.Second)
		dup := append(setA(100), setB(100)...)
		edge := setB(101)
		for _, tc := range append(append([]trace.Trace{}, dup...), edge...) {
			w.Observe(tc)
		}
		res, err := w.Advance(160) // cutoff 100: expires ≤100
		if err != nil {
			t.Fatal(err)
		}
		_, want := batchOver(t, edge, cfg, false)
		sameWindowResult(t, "boundary", res, want)
		if res.Diag.Window.TracesExpired != int64(len(dup)) {
			t.Fatalf("expired %d want %d", res.Diag.Window.TracesExpired, len(dup))
		}
	})

	t.Run("remove of a trace never added", func(t *testing.T) {
		w := newW(60 * time.Second)
		if _, err := w.Advance(1000); err != nil {
			t.Fatal(err)
		}
		late := setA(940) // 940 ≤ 1000-60: already expired on arrival
		for _, tc := range late {
			if w.Observe(tc) {
				t.Fatal("late trace accepted")
			}
		}
		res, err := w.Advance(1001)
		if err != nil {
			t.Fatal(err)
		}
		_, want := batchOver(t, nil, cfg, false)
		sameWindowResult(t, "late", res, want)
		st := res.Diag.Window
		if st.TracesLate != int64(len(late)) || st.TracesObserved != int64(len(late)) || st.TracesExpired != 0 {
			t.Fatalf("stats: %+v", st)
		}
	})

	t.Run("advance backwards", func(t *testing.T) {
		w := newW(60 * time.Second)
		if _, err := w.Advance(100); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Advance(99); err == nil {
			t.Fatal("backwards advance accepted")
		}
	})
}

// TestWindowChurn walks links and interfaces through birth, death and
// rebirth and checks the counters, deriving the expected values from
// the batch reference runs rather than hard-coding topology knowledge.
func TestWindowChurn(t *testing.T) {
	cfg := windowConfig()
	w, err := NewWindow(WindowOptions{Length: 60 * time.Second, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	linkSet := func(res *Result) map[[2]inet.ASN]struct{} {
		out := make(map[[2]inet.ASN]struct{})
		for _, l := range res.Links() {
			out[[2]inet.ASN{l.A, l.B}] = struct{}{}
		}
		return out
	}
	ifaceSet := func(res *Result) map[inet.Addr]struct{} {
		out := make(map[inet.Addr]struct{})
		for _, inf := range res.Inferences {
			if !inf.Indirect && !inf.Uncertain {
				out[inf.Addr] = struct{}{}
			}
		}
		return out
	}

	_, resAB := batchOver(t, append(setA(0), setB(0)...), cfg, false)
	_, resB := batchOver(t, setB(0), cfg, false)
	_, resA := batchOver(t, setA(0), cfg, false)
	linksAB, linksB, linksA := linkSet(resAB), linkSet(resB), linkSet(resA)
	if len(linksAB) < 2 || len(linksB) == 0 || len(linksA) == 0 {
		t.Fatalf("fixture too weak: links AB=%d B=%d A=%d", len(linksAB), len(linksB), len(linksA))
	}

	// Phase 1: A+B live.
	for _, tc := range append(setA(100), setB(130)...) {
		w.Observe(tc)
	}
	res, err := w.Advance(130)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Diag.Window
	if st.LinkBirths != len(linksAB) || st.LinkDeaths != 0 || st.ActiveLinks != len(linksAB) {
		t.Fatalf("phase 1: %+v (want %d births)", st, len(linksAB))
	}

	// Phase 2: A expires.
	res, err = w.Advance(170)
	if err != nil {
		t.Fatal(err)
	}
	st = res.Diag.Window
	wantDeaths := len(linksAB) - len(linksB)
	if st.LinkDeaths != wantDeaths || st.ActiveLinks != len(linksB) {
		t.Fatalf("phase 2: %+v (want %d deaths)", st, wantDeaths)
	}
	if st.IfaceFlaps != 0 {
		t.Fatalf("phase 2: premature flaps: %+v", st)
	}

	// Phase 3: everything expires; phase 4: A returns — every interface
	// of A that was inferred in phase 1 has now flapped.
	if _, err := w.Advance(300); err != nil {
		t.Fatal(err)
	}
	for _, tc := range setA(310) {
		w.Observe(tc)
	}
	res, err = w.Advance(310)
	if err != nil {
		t.Fatal(err)
	}
	st = res.Diag.Window
	if st.LinkBirths != len(linksAB)+len(linksA) {
		t.Fatalf("phase 4 births: %+v (want %d)", st, len(linksAB)+len(linksA))
	}
	if st.LinkDeaths != len(linksAB) {
		t.Fatalf("phase 4 deaths: %+v (want %d)", st, len(linksAB))
	}
	wantFlaps := len(ifaceSet(resA))
	if st.IfaceFlaps != wantFlaps {
		t.Fatalf("phase 4 flaps: %+v (want %d)", st, wantFlaps)
	}
	if st.FlapRate != float64(st.IfaceFlaps)/float64(st.Advances) {
		t.Fatalf("flap rate: %+v", st)
	}
	if !strings.Contains(st.String(), "iface_flaps=") {
		t.Fatalf("String(): %q", st.String())
	}
}

// TestWindowValidation pins the constructor's contract.
func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(WindowOptions{Length: 0, Config: windowConfig()}); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := NewWindow(WindowOptions{Length: 500 * time.Millisecond, Config: windowConfig()}); err == nil {
		t.Fatal("sub-second length accepted")
	}
	if _, err := NewWindow(WindowOptions{Length: time.Minute}); err == nil {
		t.Fatal("missing IP2AS accepted")
	}
	w, err := NewWindow(WindowOptions{Length: time.Minute, Config: windowConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if w.Now() != 0 || w.Traces() != 0 {
		t.Fatalf("fresh window: now=%d traces=%d", w.Now(), w.Traces())
	}
	if st := w.Stats(); st != (WindowStats{}) {
		t.Fatalf("fresh window stats not zero: %+v", st)
	}
	for _, tc := range setA(50) {
		w.Observe(tc)
	}
	if st := w.Stats(); st.TracesActive != w.Traces() || st.TracesObserved != int64(len(setA(50))) {
		t.Fatalf("stats snapshot inconsistent: %+v (traces=%d)", st, w.Traces())
	}
}

// TestWindowNoRecomputeSharesResult pins that a contentless advance
// reuses the cached result (same backing arrays, fresh Diag stamp).
func TestWindowNoRecomputeSharesResult(t *testing.T) {
	cfg := windowConfig()
	w, err := NewWindow(WindowOptions{Length: time.Hour, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range setA(100) {
		w.Observe(tc)
	}
	r1, err := w.Advance(100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Advance(101)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Diag.Window.Recomputes != r1.Diag.Window.Recomputes {
		t.Fatalf("no-op advance recomputed: %+v", r2.Diag.Window)
	}
	if r2.Diag.Window.Advances != r1.Diag.Window.Advances+1 {
		t.Fatalf("advance not counted: %+v", r2.Diag.Window)
	}
	if len(r1.Inferences) > 0 && &r1.Inferences[0] != &r2.Inferences[0] {
		t.Fatal("no-op advance did not share the cached inference slice")
	}
}
