package core

import "mapit/internal/inet"

// Freezer is implemented by lookup sources that can compile themselves
// into an immutable, read-optimised form — bgp.Table, bgp.Chain and
// ixp.Directory all do. Run freezes the configured sources once, before
// the parallel state build, so every scan worker resolves against the
// compiled engine instead of walking a pointer trie.
type Freezer interface {
	Freeze()
}

// freeze compiles cfg's lookup sources if they know how. Freeze
// implementations are idempotent and race-safe, so repeated runs over a
// shared Config (parameter sweeps) pay the compile cost once.
func (c *Config) freeze() {
	if f, ok := c.IP2AS.(Freezer); ok {
		f.Freeze()
	}
	c.IXP.Freeze()
}

// memoHit is one cached resolution, including the miss flag: an
// unannounced address is as cacheable as an announced one.
type memoHit struct {
	asn inet.ASN
	ok  bool
}

// memoIP2AS caches every resolution of the wrapped source. Traceroute
// datasets reuse addresses heavily — the same interface appears in one
// adjacency per trace that crosses it — so resolving each distinct
// address once and serving the rest from a flat map beats even the
// compiled LPM engine for repeated hits. The memo is per run (per
// baseline invocation, per verifier), never shared: it pins the
// source's answers at creation time, and IP2AS sources can thaw and
// mutate between runs.
//
// Not safe for concurrent use. Parallel phases resolve through the
// source directly into index-aligned slices (see primeParallel) and
// commit into the memo serially, matching the repository's
// parallel-compute/serial-commit rule.
type memoIP2AS struct {
	src IP2AS
	m   map[inet.Addr]memoHit
}

func newMemoIP2AS(src IP2AS) *memoIP2AS {
	return &memoIP2AS{src: src, m: make(map[inet.Addr]memoHit)}
}

// Lookup resolves a through the memo, consulting the source only on
// the first sighting of an address.
func (m *memoIP2AS) Lookup(a inet.Addr) (inet.ASN, bool) {
	if h, ok := m.m[a]; ok {
		return h.asn, h.ok
	}
	asn, ok := m.src.Lookup(a)
	m.m[a] = memoHit{asn: asn, ok: ok}
	return asn, ok
}

// primeParallel resolves a deduplicated address worklist through the
// source across workers goroutines (each writes a disjoint slice range
// — no locks, deterministic output), then commits the results into the
// memo serially. Returns the resolved ASNs index-aligned with addrs;
// zero means unannounced.
func (m *memoIP2AS) primeParallel(addrs []inet.Addr, workers int) []inet.ASN {
	asns := make([]inet.ASN, len(addrs))
	oks := make([]bool, len(addrs))
	parallelChunks(len(addrs), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			asns[i], oks[i] = m.src.Lookup(addrs[i])
		}
	})
	for i, a := range addrs {
		m.m[a] = memoHit{asn: asns[i], ok: oks[i]}
	}
	return asns
}

// MemoIP2AS wraps src with a single-use resolution cache (see
// memoIP2AS). The baselines and verifiers resolve addresses per
// adjacency or per inference — the same interface address hundreds of
// times per corpus — and the memo collapses all but the first into a
// map hit. Create one per pass and discard it; the memo never
// invalidates. Not safe for concurrent use.
func MemoIP2AS(src IP2AS) IP2AS {
	return newMemoIP2AS(src)
}
