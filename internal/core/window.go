package core

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"time"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Sliding-window streaming inference (DESIGN.md §15). A Window holds
// the evidence of the traces whose timestamps fall inside a moving
// span: arrivals fold in through Observe, Advance(now) expires
// everything at or before now-Length and reruns inference when the
// contents changed. The incremental layer is refcounted evidence
// maintenance — each trace's deduped contributions (addresses seen,
// retained addresses, adjacencies, sanitisation outcomes) are counted
// in and counted out symmetrically, so the materialised Evidence at any
// position is exactly what a fresh Collector fed only the window's
// traces would produce, and the recomputed Result is byte-identical to
// a from-scratch batch run (the DiffWindow oracle in internal/audit/
// meta proves this at every window position). Inference itself re-runs
// over the materialised evidence — RunEvidence is already incremental
// inside (dirty-set fixpoint, partitioning, compiled lookups) — and an
// Advance over unchanged contents reuses the previous Result without
// recomputing.

// WindowOptions configures a sliding inference window.
type WindowOptions struct {
	// Length is the window span, at seconds granularity (trace
	// timestamps are Unix seconds). After Advance(now) the window holds
	// exactly the observed traces with Time in (now-Length, now] — plus
	// any arrivals stamped later than now, which enter the evidence
	// immediately and expire on schedule once the window passes them.
	// Required; must be at least one second.
	Length time.Duration
	// Config carries the inference inputs used at every recompute
	// (IP2AS required, as in a batch run). The audit checker, decode
	// and spill stat pointers all behave as in RunEvidence.
	Config Config
	// TrackMonitors maintains per-vantage-point attribution in the
	// materialised evidence (Evidence.Monitors), matching a collector
	// with TrackMonitors enabled — the input of the snapshot package's
	// monitor→evidence index.
	TrackMonitors bool
}

// WindowStats reports a window's lifetime and churn counters. All
// fields are plain values so the struct is comparable and travels
// inside Diagnostics.
type WindowStats struct {
	// Advances counts Advance calls; Recomputes counts the ones that
	// actually reran inference (contents changed since the last run).
	Advances   int `json:"advances"`
	Recomputes int `json:"recomputes"`
	// TracesObserved counts every trace handed to Observe;
	// TracesLate the ones dropped for arriving already expired
	// (Time at or before now-Length); TracesExpired the ones removed
	// by window movement. TracesActive is the current resident count.
	TracesObserved int64 `json:"traces_observed"`
	TracesLate     int64 `json:"traces_late"`
	TracesExpired  int64 `json:"traces_expired"`
	TracesActive   int   `json:"traces_active"`
	// LinkBirths and LinkDeaths count distinct high-confidence AS-pair
	// links appearing in and vanishing from consecutive recomputes;
	// ActiveLinks is the current count.
	LinkBirths  int `json:"link_births"`
	LinkDeaths  int `json:"link_deaths"`
	ActiveLinks int `json:"active_links"`
	// IfaceFlaps counts interface rebirths — an address that carried a
	// high-confidence inference, lost it in a later recompute, and
	// regained it in a still-later one. FlapRate is IfaceFlaps per
	// Advance.
	IfaceFlaps int     `json:"iface_flaps"`
	FlapRate   float64 `json:"flap_rate"`
}

// String renders the counters as a compact key=value line (the shape
// cmd/mapit -stats prints).
func (s WindowStats) String() string {
	return fmt.Sprintf("advances=%d recomputes=%d observed=%d late=%d expired=%d active=%d "+
		"link_births=%d link_deaths=%d active_links=%d iface_flaps=%d flap_rate=%.3f",
		s.Advances, s.Recomputes, s.TracesObserved, s.TracesLate, s.TracesExpired,
		s.TracesActive, s.LinkBirths, s.LinkDeaths, s.ActiveLinks, s.IfaceFlaps, s.FlapRate)
}

// windowEntry is one observed trace's deduplicatable contributions —
// everything apply needs to count the trace in or out of the evidence.
// The trace itself is not retained.
type windowEntry struct {
	monitor     string
	discarded   bool
	removedHops int
	// allAddrs are the responding addresses before sanitisation,
	// retAddrs the ones of the retained (sanitised) trace, adjs its
	// adjacencies. Multiplicity is harmless: apply counts each slice in
	// and out with the same entries, so refcounts stay consistent.
	allAddrs, retAddrs []inet.Addr
	adjs               []trace.Adjacency
}

// monWindow is one monitor's refcounted attribution.
type monWindow struct {
	traces int
	adjs   map[trace.Adjacency]int
}

// Window is a sliding-window streaming inference engine. Not safe for
// concurrent use; callers serialise (mapitd holds its ingest lock).
type Window struct {
	opt    WindowOptions
	length int64 // seconds
	now    int64 // right edge of the last Advance

	// buckets is the expiry wheel: observed entries keyed by their
	// trace timestamp, removed wholesale when the window passes them.
	buckets map[int64][]windowEntry

	// Refcounted evidence of the current contents.
	adjCount                      map[trace.Adjacency]int
	allCount                      map[inet.Addr]int
	retCount                      map[inet.Addr]int
	mon                           map[string]*monWindow
	total, discarded, removedHops int

	// dirty marks contents changed since the last recompute; last is
	// the cached Result reused by no-op Advances.
	dirty bool
	last  *Result

	wstats WindowStats
	// links and iface state feed the churn counters: links present at
	// the last recompute, interfaces currently inferred, and interfaces
	// that lost an inference and would flap by regaining one.
	links        map[uint64]struct{}
	ifacePresent map[inet.Addr]struct{}
	ifaceDied    map[inet.Addr]struct{}
}

// NewWindow validates the options and returns an empty window
// positioned at now=0 (the first Advance sets the real clock).
func NewWindow(opt WindowOptions) (*Window, error) {
	length := int64(opt.Length / time.Second)
	if length < 1 {
		return nil, errors.New("core: WindowOptions.Length must be at least one second")
	}
	if err := opt.Config.validate(); err != nil {
		return nil, err
	}
	w := &Window{
		opt:          opt,
		length:       length,
		buckets:      make(map[int64][]windowEntry),
		adjCount:     make(map[trace.Adjacency]int),
		allCount:     make(map[inet.Addr]int),
		retCount:     make(map[inet.Addr]int),
		links:        make(map[uint64]struct{}),
		ifacePresent: make(map[inet.Addr]struct{}),
		ifaceDied:    make(map[inet.Addr]struct{}),
	}
	if opt.TrackMonitors {
		w.mon = make(map[string]*monWindow)
	}
	return w, nil
}

// Now returns the window's right edge (the argument of the last
// Advance; zero before the first).
func (w *Window) Now() int64 { return w.now }

// Traces returns how many traces are currently resident.
func (w *Window) Traces() int { return w.total }

// Stats snapshots the lifetime counters.
func (w *Window) Stats() WindowStats {
	s := w.wstats
	s.TracesActive = w.total
	s.ActiveLinks = len(w.links)
	return s
}

// Observe folds one trace into the window. A trace stamped at or
// before now-Length is already expired — the Remove of a trace never
// Added — and is dropped and counted (TracesLate) without touching the
// evidence. Observe reports whether the trace entered the window and
// survived sanitisation.
func (w *Window) Observe(t trace.Trace) bool {
	w.wstats.TracesObserved++
	if t.Time <= w.now-w.length {
		w.wstats.TracesLate++
		return false
	}
	e := windowEntry{monitor: t.Monitor}
	for _, h := range t.Hops {
		if h.Responded() {
			e.allAddrs = append(e.allAddrs, h.Addr)
		}
	}
	clean, res := trace.Sanitize(t)
	e.discarded = res.Discarded
	e.removedHops = res.RemovedHops
	if !res.Discarded {
		e.adjs = trace.Adjacencies(clean, nil)
		for _, h := range clean.Hops {
			if h.Responded() {
				e.retAddrs = append(e.retAddrs, h.Addr)
			}
		}
	}
	w.apply(e, +1)
	w.buckets[t.Time] = append(w.buckets[t.Time], e)
	w.dirty = true
	return !e.discarded
}

// apply counts one entry's contributions in (delta=+1) or out (-1).
// The two directions are exactly symmetric, which is the whole
// correctness argument: presence in the materialised evidence is
// count>0, so any Observe/expire interleaving lands on the same state
// as a fresh collector over the surviving traces.
func (w *Window) apply(e windowEntry, delta int) {
	w.total += delta
	w.removedHops += delta * e.removedHops
	if e.discarded {
		w.discarded += delta
	}
	for _, a := range e.allAddrs {
		bumpCount(w.allCount, a, delta)
	}
	for _, a := range e.retAddrs {
		bumpCount(w.retCount, a, delta)
	}
	for _, adj := range e.adjs {
		bumpCount(w.adjCount, adj, delta)
	}
	if w.mon != nil && !e.discarded {
		acc := w.mon[e.monitor]
		if acc == nil {
			acc = &monWindow{adjs: make(map[trace.Adjacency]int)}
			w.mon[e.monitor] = acc
		}
		acc.traces += delta
		for _, adj := range e.adjs {
			bumpCount(acc.adjs, adj, delta)
		}
		if acc.traces == 0 {
			delete(w.mon, e.monitor)
		}
	}
}

// bumpCount adjusts a refcount, deleting the key at zero so map sizes
// track distinct live entries.
func bumpCount[K comparable](m map[K]int, k K, delta int) {
	if n := m[k] + delta; n == 0 {
		delete(m, k)
	} else {
		m[k] = n
	}
}

// Advance moves the window's right edge to now, expires every entry
// stamped at or before now-Length, reruns inference if the contents
// changed (reusing the previous Result otherwise), and returns the
// Result with Diag.Window stamped. now must not move backwards.
func (w *Window) Advance(now int64) (*Result, error) {
	if now < w.now {
		return nil, fmt.Errorf("core: window Advance moved backwards (%d after %d)", now, w.now)
	}
	w.now = now
	cutoff := now - w.length
	var expired []int64
	for ts := range w.buckets {
		if ts <= cutoff {
			expired = append(expired, ts)
		}
	}
	slices.Sort(expired)
	for _, ts := range expired {
		for _, e := range w.buckets[ts] {
			w.apply(e, -1)
			w.wstats.TracesExpired++
		}
		delete(w.buckets, ts)
		w.dirty = true
	}
	w.wstats.Advances++
	if w.dirty || w.last == nil {
		res, err := RunEvidence(w.Evidence(), w.opt.Config)
		if err != nil {
			return nil, err
		}
		w.wstats.Recomputes++
		w.observeChurn(res)
		w.last = res
		w.dirty = false
	}
	w.wstats.TracesActive = w.total
	w.wstats.ActiveLinks = len(w.links)
	w.wstats.FlapRate = float64(w.wstats.IfaceFlaps) / float64(w.wstats.Advances)
	out := *w.last
	out.Diag.Window = w.wstats
	return &out, nil
}

// Evidence materialises the current contents as a fresh *Evidence,
// byte-identical to a new Collector fed only the resident traces. The
// returned value shares no storage with the window.
func (w *Window) Evidence() *Evidence {
	adjs := make([]trace.Adjacency, 0, len(w.adjCount))
	for adj := range w.adjCount {
		adjs = append(adjs, adj)
	}
	slices.SortFunc(adjs, adjacencyCmp)
	all := make(inet.AddrSet, len(w.allCount))
	for a := range w.allCount {
		all.Add(a)
	}
	ev := &Evidence{
		AllAddrs:    all,
		Adjacencies: adjs,
		Stats: trace.Stats{
			TotalTraces:     w.total,
			DiscardedTraces: w.discarded,
			RemovedHops:     w.removedHops,
			DistinctAddrs:   len(w.allCount),
			RetainedAddrs:   len(w.retCount),
		},
	}
	if w.mon != nil {
		out := make([]MonitorEvidence, 0, len(w.mon))
		for name, acc := range w.mon {
			me := MonitorEvidence{Monitor: name, Traces: acc.traces,
				Adjacencies: make([]trace.Adjacency, 0, len(acc.adjs))}
			for adj := range acc.adjs {
				me.Adjacencies = append(me.Adjacencies, adj)
			}
			slices.SortFunc(me.Adjacencies, adjacencyCmp)
			out = append(out, me)
		}
		slices.SortFunc(out, func(a, b MonitorEvidence) int {
			return strings.Compare(a.Monitor, b.Monitor)
		})
		ev.Monitors = out
	}
	return ev
}

// observeChurn diffs a recompute's high-confidence output against the
// previous one: link births/deaths over canonical AS pairs, and
// interface flaps (an address regaining an inference it lost).
func (w *Window) observeChurn(res *Result) {
	cur := make(map[uint64]struct{})
	curIfaces := make(map[inet.Addr]struct{}, len(w.ifacePresent))
	for i := range res.Inferences {
		inf := &res.Inferences[i]
		if inf.Indirect || inf.Uncertain {
			continue
		}
		curIfaces[inf.Addr] = struct{}{}
		if inf.Local.IsZero() || inf.Connected.IsZero() {
			continue
		}
		a, b := inf.Link()
		cur[uint64(a)<<32|uint64(b)] = struct{}{}
	}
	for k := range cur {
		if _, ok := w.links[k]; !ok {
			w.wstats.LinkBirths++
		}
	}
	for k := range w.links {
		if _, ok := cur[k]; !ok {
			w.wstats.LinkDeaths++
		}
	}
	w.links = cur
	for a := range curIfaces {
		if _, died := w.ifaceDied[a]; died {
			w.wstats.IfaceFlaps++
			delete(w.ifaceDied, a)
		}
	}
	for a := range w.ifacePresent {
		if _, ok := curIfaces[a]; !ok {
			w.ifaceDied[a] = struct{}{}
		}
	}
	w.ifacePresent = curIfaces
}
