package core

import (
	"mapit/internal/trace"
)

// Run executes MAP-IT (Alg 1) over a sanitised trace dataset:
//
//  1. build other sides (§4.2) and neighbour sets (§4.3)
//  2. repeat { add inferences (§4.4); remove inferences (§4.5) }
//     until the post-remove state repeats (§4.6)
//  3. infer links to low-visibility and NAT stubs (§4.8)
func Run(s *trace.Sanitized, cfg Config) (*Result, error) {
	return RunEvidence(EvidenceFrom(s), cfg)
}

// RunEvidence executes MAP-IT over pre-collected evidence (see
// Collector for streaming corpora that never fit in memory).
func RunEvidence(ev *Evidence, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Compile the lookup sources before any parallel resolution: the
	// state build resolves every observed address (plus putative other
	// sides) through IP2AS and the IXP directory, and the compiled
	// engines answer in a few flat array reads. Idempotent — sweeps
	// that reuse one Config across runs compile once.
	cfg.freeze()
	st := newRunState(&cfg, ev)
	st.fixpoint()
	st.auditFinish()
	r := st.result()
	if st.auditor != nil {
		r.Audit = st.auditor.report
	}
	r.ProbeSuggestions = st.suggestProbes()
	if cfg.DecodeStats != nil {
		r.Diag.Decode = *cfg.DecodeStats
	}
	if cfg.SpillStats != nil {
		r.Diag.Spill = *cfg.SpillStats
	}
	return r, nil
}

// fixpoint runs the §4.4–§4.6 add/remove loop to the repeated-state
// stopping rule, then the §4.8 stub heuristic. Separated from
// RunEvidence so the fixpoint benchmarks can time it without the state
// build.
func (st *runState) fixpoint() {
	cfg := st.cfg
	seen := append(st.seenHashes[:0], st.stateHash())
	if st.seenSet == nil {
		st.seenSet = make(map[uint64]struct{}, cfg.maxIterations()+1)
	} else {
		clear(st.seenSet)
	}
	st.seenSet[seen[0]] = struct{}{}
	for iter := 1; iter <= cfg.maxIterations(); iter++ {
		st.diag.Iterations = iter
		st.resetInferredOnce()
		st.addStep(iter == 1)
		st.auditCheckpoint(auditStageAdd, iter)
		if iter == 1 {
			st.fireStage(StageAddConverged, 0)
		}
		if cfg.SinglePass {
			break
		}
		st.removeStep()
		st.auditCheckpoint(auditStageRemove, iter)
		st.fireStage(StageIteration, iter)
		h := st.stateHash()
		if _, repeated := st.seenSet[h]; repeated {
			break
		}
		st.seenSet[h] = struct{}{}
		seen = append(seen, h)
	}
	st.seenHashes = seen

	st.stubHeuristic()
	st.auditCheckpoint(auditStageFinal, 0)
	st.fireStage(StageStub, 0)
}

// fireStage invokes the configured snapshot hook.
func (st *runState) fireStage(stage Stage, iteration int) {
	if st.cfg.OnStage == nil {
		return
	}
	st.cfg.OnStage(stage, iteration, st.result())
}
