package core

import (
	"mapit/internal/trace"
)

// Run executes MAP-IT (Alg 1) over a sanitised trace dataset:
//
//  1. build other sides (§4.2) and neighbour sets (§4.3)
//  2. repeat { add inferences (§4.4); remove inferences (§4.5) }
//     until the post-remove state repeats (§4.6)
//  3. infer links to low-visibility and NAT stubs (§4.8)
func Run(s *trace.Sanitized, cfg Config) (*Result, error) {
	return RunEvidence(EvidenceFrom(s), cfg)
}

// RunEvidence executes MAP-IT over pre-collected evidence (see
// Collector for streaming corpora that never fit in memory).
//
// When the evidence decomposes into more than one closed inference
// component, the add/remove fixpoint runs per component across
// Config.Workers goroutines and the outputs are merged — byte-identical
// to the monolithic engine (DESIGN.md §12; escape hatch
// Config.DisablePartition).
func RunEvidence(ev *Evidence, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Compile the lookup sources before any parallel resolution: the
	// state build resolves every observed address (plus putative other
	// sides) through IP2AS and the IXP directory, and the compiled
	// engines answer in a few flat array reads. Idempotent — sweeps
	// that reuse one Config across runs compile once.
	cfg.freeze()
	r, pinfo := runPartitioned(&cfg, ev)
	if r == nil {
		st := newRunState(&cfg, ev)
		st.fixpoint()
		st.auditFinish()
		r = st.result()
		if st.auditor != nil {
			r.Audit = st.auditor.report
		}
		r.ProbeSuggestions = st.suggestProbes()
		r.Partition = pinfo
	}
	if cfg.DecodeStats != nil {
		r.Diag.Decode = *cfg.DecodeStats
	}
	if cfg.SpillStats != nil {
		r.Diag.Spill = *cfg.SpillStats
	}
	return r, nil
}

// fixpoint runs the §4.4–§4.6 add/remove loop to the repeated-state
// stopping rule, then the §4.8 stub heuristic. Separated from
// RunEvidence so the fixpoint benchmarks can time it without the state
// build.
func (st *runState) fixpoint() {
	cfg := st.cfg
	if st.seenSet == nil {
		st.seenSet = make(map[uint64]struct{}, cfg.maxIterations()+1)
	} else {
		clear(st.seenSet)
	}
	st.seenSet[st.stateHash()] = struct{}{}
	for iter := 1; iter <= cfg.maxIterations(); iter++ {
		st.diag.Iterations = iter
		st.resetInferredOnce()
		st.addStep(iter == 1)
		st.auditCheckpoint(auditStageAdd, iter)
		if iter == 1 {
			st.fireStage(StageAddConverged, 0)
		}
		if cfg.SinglePass {
			break
		}
		st.removeStep()
		st.auditCheckpoint(auditStageRemove, iter)
		st.fireStage(StageIteration, iter)
		h := st.stateHash()
		if _, repeated := st.seenSet[h]; repeated {
			break
		}
		st.seenSet[h] = struct{}{}
	}

	st.stubHeuristic()
	st.auditCheckpoint(auditStageFinal, 0)
	st.fireStage(StageStub, 0)
}

// StageSnapshot hands a stage hook lazy access to the run state at the
// moment the stage fired. Materialising a full Result used to happen
// unconditionally per stage — hooks that only record the stage name
// (or sample a few stages) paid a sorted rebuild of the whole
// inference list every iteration. Now nothing is built until Result is
// called, the build is memoised per fire, and consecutive fires
// between which the state did not move share one inference list.
//
// The snapshot is only valid during the hook invocation; Result's
// return value may be retained, but treat its Inferences slice as
// read-only — unchanged-state fires share it.
type StageSnapshot struct {
	st *runState
	r  *Result
}

// Result materialises the snapshot (memoised per fire).
func (s *StageSnapshot) Result() *Result {
	if s.r == nil {
		s.r = s.st.snapshotResult()
	}
	return s.r
}

// snapshotResult builds a stage-hook Result, reusing the previous
// snapshot's inference list when the state fingerprint and the severed
// set (which the fingerprint does not cover but the output does, via
// other-side gating) are both unchanged. Diagnostics are copied fresh
// either way — counters move even when the inference state does not.
func (st *runState) snapshotResult() *Result {
	if st.snapInf != nil && st.snapHash == st.hashSum && st.snapSevered == len(st.severed) {
		return &Result{Inferences: st.snapInf, Diag: st.diag}
	}
	r := st.result()
	st.snapInf = r.Inferences
	st.snapHash = st.hashSum
	st.snapSevered = len(st.severed)
	return r
}

// fireStage invokes the configured snapshot hook.
func (st *runState) fireStage(stage Stage, iteration int) {
	if st.cfg.OnStage == nil {
		return
	}
	st.cfg.OnStage(stage, iteration, &StageSnapshot{st: st})
}
