package core

import (
	"bufio"
	"io"

	"mapit/internal/trace"
)

// IngestOptions configures an Ingestor.
type IngestOptions struct {
	// Workers parallelises sanitisation and adjacency deduplication;
	// results are identical for any value. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Workers int

	// Strict aborts on any binary-input corruption instead of skipping
	// corrupt v3 blocks and counting them in the decode stats.
	Strict bool

	// Spill bounds the collector's evidence memory for out-of-core
	// ingest. The zero value keeps everything in memory.
	Spill SpillConfig

	// TrackMonitors enables per-vantage-point evidence attribution
	// (Evidence.Monitors), the input of the snapshot package's
	// monitor→evidence query index.
	TrackMonitors bool
}

// Ingestor is the sniffing ingest pipeline shared by the mapit CLI and
// the mapitd daemon. It reads trace corpora in any supported format —
// text, JSONL, or binary MTRC v2/v3/v4, sniffed from the first bytes of
// each stream, so pipes and request bodies work (no seeking) — and
// feeds every trace into one retained parallel collector. Because the
// collector survives finalisation, an Ingestor supports incremental
// corpus growth: Ingest more batches after Finish and finalise again;
// each Finish returns the evidence of everything ingested so far.
//
// An Ingestor is not safe for concurrent use; callers that ingest from
// multiple goroutines must serialise (the serve package holds its own
// ingest lock).
type Ingestor struct {
	opt   IngestOptions
	coll  *ParallelCollector
	stats trace.DecodeStats
}

// NewIngestor returns an empty ingest pipeline.
func NewIngestor(opt IngestOptions) *Ingestor {
	coll := NewParallelCollectorSpill(opt.Workers, opt.Spill)
	if opt.TrackMonitors {
		coll.TrackMonitors()
	}
	return &Ingestor{opt: opt, coll: coll}
}

// Ingest sniffs the trace format of r from its first bytes and feeds
// every trace into the collector, returning how many traces the stream
// carried. Binary inputs stream record-at-a-time (corpora larger than
// memory work, and the spill budget applies); text and JSONL inputs are
// parsed whole. Unless Strict, corrupt binary v3 blocks are skipped and
// tallied into DecodeStats. On error the evidence already collected
// remains intact — a failed batch never corrupts the pipeline.
func (g *Ingestor) Ingest(r io.Reader) (int, error) {
	return DecodeTraces(r, trace.DecodeOptions{
		Permissive: !g.opt.Strict,
		Stats:      &g.stats,
	}, func(t trace.Trace) error {
		g.coll.Add(t)
		return nil
	})
}

// DecodeTraces sniffs the trace format of r from its first bytes —
// text, JSONL, or binary MTRC v2/v3/v4 — and delivers every decoded
// trace to fn in stream order, returning how many traces fn received.
// Binary inputs stream record-at-a-time; text and JSONL inputs are
// parsed whole. A non-nil error from fn aborts the decode and is
// returned verbatim. This is the one sniffing decode loop: the
// Ingestor's batch path and the sliding-window paths (cmd/mapit replay,
// mapitd windowed ingest) all sit on top of it.
func DecodeTraces(r io.Reader, opt trace.DecodeOptions, fn func(trace.Trace) error) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	// Peek returns whatever is available on short inputs along with an
	// error we deliberately ignore: a 3-byte file is still valid text.
	head, _ := br.Peek(5)
	switch {
	case len(head) == 5 && (string(head) == "MTRC\x02" || string(head) == "MTRC\x03" || string(head) == "MTRC\x04"):
		stream, err := trace.NewBinaryReaderOpts(br, opt)
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			t, err := stream.Next()
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			if err := fn(t); err != nil {
				return n, err
			}
			n++
		}
	case len(head) > 0 && head[0] == '{':
		ds, err := trace.ReadJSON(br)
		if err != nil {
			return 0, err
		}
		return feedDataset(ds, fn)
	default:
		ds, err := trace.Read(br)
		if err != nil {
			return 0, err
		}
		return feedDataset(ds, fn)
	}
}

// feedDataset delivers a parsed in-memory dataset to fn.
func feedDataset(ds *trace.Dataset, fn func(trace.Trace) error) (int, error) {
	for i, t := range ds.Traces {
		if err := fn(t); err != nil {
			return i, err
		}
	}
	return len(ds.Traces), nil
}

// Finish finalises everything ingested so far into evidence. The
// ingestor remains usable: later Ingest calls accumulate on top, and
// the next Finish covers the union. Errors are only possible in
// out-of-core mode (spill write or merge failure).
func (g *Ingestor) Finish() (*Evidence, error) { return g.coll.Finish() }

// Traces returns how many traces have been ingested across every
// Ingest so far (retained or not; sanitisation outcomes are in the
// evidence stats).
func (g *Ingestor) Traces() int { return g.coll.Traces() }

// DecodeStats exposes the cumulative binary decode-health counters, for
// wiring into Config.DecodeStats. Zero for text/JSONL-only ingests.
// The pointer stays valid (and accumulating) for the ingestor's life.
func (g *Ingestor) DecodeStats() *trace.DecodeStats { return &g.stats }

// SpillStats snapshots the out-of-core counters; zero without a budget.
func (g *Ingestor) SpillStats() SpillStats { return g.coll.SpillStats() }

// Close releases any spill segment files. The ingestor must not be
// used afterwards.
func (g *Ingestor) Close() error { return g.coll.Close() }
