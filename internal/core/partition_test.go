package core

import (
	"fmt"
	"reflect"
	"testing"

	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// evidence builds an Evidence directly from address strings and
// (first, second) adjacency pairs.
func evidence(addrs []string, adjs ...[2]string) *Evidence {
	ev := &Evidence{AllAddrs: make(inet.AddrSet)}
	for _, a := range addrs {
		ev.AllAddrs.Add(ip(a))
	}
	for _, adj := range adjs {
		ev.Adjacencies = append(ev.Adjacencies, trace.Adjacency{First: ip(adj[0]), Second: ip(adj[1])})
	}
	return ev
}

// compAddrs renders a component's observed addresses as a sorted set for
// comparison.
func compAddrs(ev *Evidence) map[string]bool {
	m := make(map[string]bool, len(ev.AllAddrs))
	for a := range ev.AllAddrs {
		m[a.String()] = true
	}
	return m
}

func TestPartitionEvidenceClosure(t *testing.T) {
	set := func(addrs ...string) map[string]bool {
		m := make(map[string]bool, len(addrs))
		for _, a := range addrs {
			m[a] = true
		}
		return m
	}
	cases := []struct {
		name string
		ev   *Evidence
		// want lists the expected components as observed-address sets, in
		// scheduling order (largest first, min address on ties).
		want []map[string]bool
	}{
		{
			// Two adjacency chains with no shared /30 block stay apart.
			name: "disjoint-chains-split",
			ev: evidence(
				[]string{"10.0.0.1", "10.0.4.1", "10.1.0.1", "10.1.4.1"},
				[2]string{"10.0.0.1", "10.0.4.1"},
				[2]string{"10.1.0.1", "10.1.4.1"},
			),
			want: []map[string]bool{
				set("10.0.0.1", "10.0.4.1"),
				set("10.1.0.1", "10.1.4.1"),
			},
		},
		{
			// §4.2: two addresses of one aligned /30 block are one
			// component even with no adjacency between them —
			// InferOtherSide couples them.
			name: "block-mates-merge",
			ev: evidence(
				[]string{"10.0.0.1", "10.0.0.2", "10.0.4.1"},
			),
			want: []map[string]bool{
				set("10.0.0.1", "10.0.0.2"),
				set("10.0.4.1"),
			},
		},
		{
			// The phantom shared other side: .1 and .3 both claim the
			// unobserved .2 as their /30 mate, so their (otherwise
			// disjoint) neighbourhoods must merge.
			name: "phantom-other-side-merges-neighbourhoods",
			ev: evidence(
				[]string{"10.0.0.1", "10.0.0.3", "10.8.0.1", "10.9.0.1"},
				[2]string{"10.0.0.1", "10.9.0.1"},
				[2]string{"10.0.0.3", "10.8.0.1"},
			),
			want: []map[string]bool{
				set("10.0.0.1", "10.0.0.3", "10.8.0.1", "10.9.0.1"),
			},
		},
		{
			// §4.2 p2p subnet mates: a /31 pair and a /30 pair each land
			// in one component.
			name: "p2p-subnet-mates",
			ev: evidence(
				[]string{"10.0.0.0", "10.0.0.1", "10.1.0.1", "10.1.0.2"},
			),
			want: []map[string]bool{
				set("10.0.0.0", "10.0.0.1"),
				set("10.1.0.1", "10.1.0.2"),
			},
		},
		{
			// An IXP LAN address observed between two member routers
			// bridges them into one component (the multipoint fabric is
			// plain adjacency transitivity).
			name: "ixp-lan-bridges",
			ev: evidence(
				[]string{"10.0.0.1", "185.1.0.10", "10.1.0.1"},
				[2]string{"10.0.0.1", "185.1.0.10"},
				[2]string{"185.1.0.10", "10.1.0.1"},
			),
			want: []map[string]bool{
				set("10.0.0.1", "185.1.0.10", "10.1.0.1"),
			},
		},
		{
			// Org-merged sibling ASes trade traffic across a shared
			// border interface; the adjacency chain keeps all their
			// addresses together.
			name: "org-siblings-one-component",
			ev: evidence(
				[]string{"20.0.0.1", "20.1.0.1", "20.2.0.1"},
				[2]string{"20.0.0.1", "20.1.0.1"},
				[2]string{"20.1.0.1", "20.2.0.1"},
			),
			want: []map[string]bool{
				set("20.0.0.1", "20.1.0.1", "20.2.0.1"),
			},
		},
		{
			// An adjacency endpoint outside the observed universe still
			// glues: 10.0.4.1 (unobserved) chains 10.0.0.1 to its block
			// mate 10.0.4.2.
			name: "external-endpoint-glues",
			ev: evidence(
				[]string{"10.0.0.1", "10.0.4.2", "10.3.0.1"},
				[2]string{"10.0.0.1", "10.0.4.1"},
			),
			want: []map[string]bool{
				set("10.0.0.1", "10.0.4.2"),
				set("10.3.0.1"),
			},
		},
		{
			// Scheduling order: sizes descending, minimum address
			// ascending on equal sizes.
			name: "largest-first-min-addr-ties",
			ev: evidence(
				[]string{"10.0.0.1", "10.4.0.1", "10.4.4.1", "10.2.0.1", "10.2.4.1", "10.4.8.1"},
				[2]string{"10.4.0.1", "10.4.4.1"},
				[2]string{"10.4.4.1", "10.4.8.1"},
				[2]string{"10.2.0.1", "10.2.4.1"},
			),
			want: []map[string]bool{
				set("10.4.0.1", "10.4.4.1", "10.4.8.1"),
				set("10.2.0.1", "10.2.4.1"),
				set("10.0.0.1"),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comps := partitionEvidence(tc.ev)
			if len(tc.want) == 1 {
				// A single component is reported as nil: everything
				// merged, and the caller would fall back without
				// materialising sub-evidence.
				if comps != nil {
					t.Fatalf("got %d components, want the single-component nil", len(comps))
				}
				return
			}
			if len(comps) != len(tc.want) {
				t.Fatalf("got %d components, want %d", len(comps), len(tc.want))
			}
			adjTotal := 0
			for i, comp := range comps {
				if got := compAddrs(comp); !reflect.DeepEqual(got, tc.want[i]) {
					t.Errorf("component %d: got %v, want %v", i, got, tc.want[i])
				}
				adjTotal += len(comp.Adjacencies)
				for _, adj := range comp.Adjacencies {
					for _, a := range [2]inet.Addr{adj.First, adj.Second} {
						if tc.ev.AllAddrs.Contains(a) && !comp.AllAddrs.Contains(a) {
							t.Errorf("component %d: adjacency endpoint %v crosses the boundary", i, a)
						}
					}
				}
			}
			if adjTotal != len(tc.ev.Adjacencies) {
				t.Errorf("components hold %d adjacencies, evidence has %d", adjTotal, len(tc.ev.Adjacencies))
			}
		})
	}
}

// islandEvidence merges nIslands disjoint small worlds into one corpus
// (see topo.GenConfig.Island) and returns the evidence plus a config
// over the merged origin table.
func islandEvidence(t testing.TB, seed int64, nIslands int) (*Evidence, Config) {
	var traces []trace.Trace
	var anns []bgp.Announcement
	for k := 0; k < nIslands; k++ {
		gen := topo.SmallGenConfig()
		gen.Seed = seed + int64(k)
		gen.Island = k
		w := topo.Generate(gen)
		tc := topo.DefaultTraceConfig()
		tc.Seed = seed + 100 + int64(k)
		tc.DestsPerMonitor = 150
		traces = append(traces, w.GenTraces(tc).Traces...)
		anns = append(anns, w.Announcements...)
	}
	d := &trace.Dataset{Traces: traces}
	return EvidenceFrom(d.Sanitize()), Config{IP2AS: bgp.NewTable(anns), F: 0.5}
}

// TestComponentElectionInputsMatchGlobal is the closure quickcheck: for
// every observed address of every component, the component-local run
// state must present exactly the election inputs the global state does —
// neighbour sets, other side, base mapping, IXP flag. If any input
// crossed a component boundary the restriction would differ.
func TestComponentElectionInputsMatchGlobal(t *testing.T) {
	ev, cfg := islandEvidence(t, 11, 2)
	cfg.freeze()
	global := newRunState(&cfg, ev)
	comps := partitionEvidence(ev)
	if len(comps) < 2 {
		t.Fatalf("island evidence produced %d components, want >= 2", len(comps))
	}
	for ci, comp := range comps {
		st := newRunState(&cfg, comp)
		for _, a := range st.addrs {
			if !reflect.DeepEqual(st.nbrF[a], global.nbrF[a]) {
				t.Fatalf("component %d: N_F(%v) diverges from global", ci, a)
			}
			if !reflect.DeepEqual(st.nbrB[a], global.nbrB[a]) {
				t.Fatalf("component %d: N_B(%v) diverges from global", ci, a)
			}
			if st.otherSide[a] != global.otherSide[a] {
				t.Fatalf("component %d: otherSide(%v) = %v, global %v",
					ci, a, st.otherSide[a], global.otherSide[a])
			}
			if st.baseAS[a] != global.baseAS[a] {
				t.Fatalf("component %d: baseAS(%v) diverges from global", ci, a)
			}
			if st.ixpAddr[a] != global.ixpAddr[a] {
				t.Fatalf("component %d: ixpAddr(%v) diverges from global", ci, a)
			}
		}
	}
}

// TestPartitionSingleGiantFallback is the adversarial case: evidence
// that is one connected chain must fall back to the monolithic engine
// (there is nothing to schedule) and produce the same result as an
// explicit DisablePartition run.
func TestPartitionSingleGiantFallback(t *testing.T) {
	var addrs []string
	var adjs [][2]string
	for i := 0; i < 40; i++ {
		addrs = append(addrs, fmt.Sprintf("10.%d.0.1", i))
		if i > 0 {
			adjs = append(adjs, [2]string{addrs[i-1], addrs[i]})
		}
	}
	ev := evidence(addrs, adjs...)
	cfg := Config{IP2AS: table("10.0.0.0/8=100"), F: 0.5}

	r, err := RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partition == nil || r.Partition.Fallback != "single-component" {
		t.Fatalf("Partition = %s, want single-component fallback", r.Partition.String())
	}
	if r.Partition.Components != 1 || r.Partition.GiantShare != 1 {
		t.Errorf("Partition = %+v, want one component holding everything", r.Partition)
	}

	cfg.DisablePartition = true
	mono, err := RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Partition != nil {
		t.Errorf("DisablePartition run carries PartitionInfo %+v", mono.Partition)
	}
	assertSameResult(t, "giant vs DisablePartition", mono, r)
}

// assertSameResult compares the differential-visible fields of two
// Results (Partition and Audit are schedule observability, not output).
func assertSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Inferences, b.Inferences) {
		t.Errorf("%s: inferences diverge (%d vs %d)", label, len(a.Inferences), len(b.Inferences))
	}
	if a.Diag != b.Diag {
		t.Errorf("%s: diagnostics diverge:\n  %+v\n  %+v", label, a.Diag, b.Diag)
	}
	if !reflect.DeepEqual(a.ProbeSuggestions, b.ProbeSuggestions) {
		t.Errorf("%s: probe suggestions diverge", label)
	}
}

// TestPartitionedMultiIslandByteIdentical is the headline property: a
// merged multi-island corpus must decompose, run partitioned at every
// worker count, and reproduce the monolithic result byte for byte.
func TestPartitionedMultiIslandByteIdentical(t *testing.T) {
	ev, cfg := islandEvidence(t, 3, 2)

	mono := cfg
	mono.DisablePartition = true
	want, err := RunEvidence(ev, mono)
	if err != nil {
		t.Fatal(err)
	}
	if want.Partition != nil {
		t.Errorf("DisablePartition run carries PartitionInfo %+v", want.Partition)
	}

	for _, workers := range []int{1, 2, 4} {
		pcfg := cfg
		pcfg.Workers = workers
		r, err := RunEvidence(ev, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Partition == nil || r.Partition.Fallback != "" {
			t.Fatalf("workers=%d: partitioned run fell back: %s", workers, r.Partition.String())
		}
		if r.Partition.Components < 2 {
			t.Fatalf("workers=%d: %d components, want >= 2", workers, r.Partition.Components)
		}
		if r.Partition.Replays != 0 {
			t.Errorf("workers=%d: %d replays on a plain corpus", workers, r.Partition.Replays)
		}
		if len(r.Partition.Sizes) != r.Partition.Components ||
			len(r.Partition.Iterations) != r.Partition.Components {
			t.Errorf("workers=%d: ragged PartitionInfo %+v", workers, r.Partition)
		}
		assertSameResult(t, fmt.Sprintf("workers=%d", workers), want, r)
	}
}

// TestPartitionedStubAndProbeMerge drives the partitioned engine with
// the full input set — orgs, relationships, IXP directory — so the stub
// heuristic and probe suggestions run per component and merge.
func TestPartitionedStubAndProbeMerge(t *testing.T) {
	var traces []trace.Trace
	var anns []bgp.Announcement
	var cfgs []Config
	for k := 0; k < 2; k++ {
		gen := topo.SmallGenConfig()
		gen.Seed = 21 + int64(k)
		gen.Island = k
		w := topo.Generate(gen)
		tc := topo.DefaultTraceConfig()
		tc.Seed = 121 + int64(k)
		tc.DestsPerMonitor = 150
		traces = append(traces, w.GenTraces(tc).Traces...)
		anns = append(anns, w.Announcements...)
		orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
		cfgs = append(cfgs, Config{Orgs: orgs, Rels: rels, IXP: dir})
	}
	// Orgs/Rels/IXP directories cannot be merged across worlds, so this
	// test runs with island 0's datasets: wrong values for island 1's
	// ASes are fine — both engines see the same wrong values.
	d := &trace.Dataset{Traces: traces}
	ev := EvidenceFrom(d.Sanitize())
	cfg := cfgs[0]
	cfg.IP2AS = bgp.NewTable(anns)
	cfg.F = 0.5
	cfg.Workers = 4

	r, err := RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partition == nil || r.Partition.Fallback != "" {
		t.Fatalf("partitioned run fell back: %s", r.Partition.String())
	}
	cfg.DisablePartition = true
	mono, err := RunEvidence(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "stub+probes", mono, r)
	if mono.Diag.StubInferences == 0 {
		t.Log("note: corpus produced no stub inferences (merge path still compared)")
	}
}

func TestHashAtAndRecAt(t *testing.T) {
	c := &compRun{
		hash0:   10,
		settled: true,
		recs: []iterRec{
			{hash: 20, addPasses: 3, removePasses: 2, quietDual: 5, dualSame: 12},
			{hash: 20, addPasses: 1, removePasses: 1, quietDual: 5, dualSame: 5},
		},
	}
	for k, want := range map[int]uint64{0: 10, 1: 20, 2: 20, 3: 20, 9: 20} {
		if got := c.hashAt(k); got != want {
			t.Errorf("hashAt(%d) = %d, want %d", k, got, want)
		}
	}
	ext := c.recAt(5)
	want := iterRec{hash: 20, addPasses: 1, removePasses: 1, quietDual: 5, dualSame: 5}
	if ext != want {
		t.Errorf("recAt(5) = %+v, want %+v", ext, want)
	}
	if got := c.recAt(1); got != c.recs[0] {
		t.Errorf("recAt(1) = %+v, want the recorded iteration", got)
	}
	// DisableRemoveStep components settle with removePasses 0 and the
	// extension must carry that through.
	c2 := &compRun{hash0: 1, settled: true, recs: []iterRec{{hash: 2, addPasses: 1, removePasses: 0}}}
	if got := c2.recAt(3).removePasses; got != 0 {
		t.Errorf("extension removePasses = %d, want 0 under DisableRemoveStep", got)
	}

	if !c.stateAligned(1) || !c.stateAligned(2) || !c.stateAligned(5) {
		t.Error("settled component must align with any T at or past its settle point")
	}
	if c.stateAligned(0) {
		t.Error("settled component aligned with T before its settle point")
	}
	capped := &compRun{hash0: 1, recs: []iterRec{{hash: 2}, {hash: 3}}}
	if !capped.stateAligned(2) || capped.stateAligned(1) || capped.stateAligned(3) {
		t.Error("capped component must align only with its exact stop iteration")
	}
}

func TestAlignIterations(t *testing.T) {
	// A settles after iteration 3 (its no-op), B after iteration 2. The
	// summed fingerprint first repeats at k=3 — exactly where the
	// monolithic run would stop.
	a := &compRun{hash0: 10, settled: true, recs: []iterRec{{hash: 20}, {hash: 30}, {hash: 30}}}
	b := &compRun{hash0: 1, settled: true, recs: []iterRec{{hash: 2}, {hash: 2}}}
	if T := alignIterations([]*compRun{a, b}, 50); T != 3 {
		t.Errorf("T = %d, want 3", T)
	}
	// A component oscillating between two states makes the global sum
	// cycle: B settles after iteration 2, so the sum at k=3 (osc back at
	// 6, B frozen) first repeats the k=1 sum.
	osc := &compRun{hash0: 5, recs: []iterRec{{hash: 6}, {hash: 5}, {hash: 6}}}
	if T := alignIterations([]*compRun{osc, b}, 50); T != 3 {
		t.Errorf("oscillating T = %d, want 3", T)
	}
	// No repeat within the bound: the cap wins.
	grow := &compRun{hash0: 0, recs: []iterRec{{hash: 1}, {hash: 2}, {hash: 3}, {hash: 4}}}
	if T := alignIterations([]*compRun{grow}, 3); T != 3 {
		t.Errorf("capped T = %d, want 3", T)
	}
}

func TestMergeDiagnosticsQuietDualTopUp(t *testing.T) {
	// Component A runs 3 add passes in iteration 1; component B runs 1
	// and holds 2 stable same-org duals. The monolithic engine would
	// re-count B's duals on each of A's surplus passes: 2 + 2*2 = 6,
	// plus A's own 4.
	a := &compRun{
		st:      &runState{diag: Diagnostics{Interfaces: 7}, n31: 3},
		settled: true,
		recs: []iterRec{
			{hash: 1, addPasses: 3, removePasses: 1, dualSame: 4, quietDual: 0},
			{hash: 1, addPasses: 1, removePasses: 1}, // the settling no-op
		},
	}
	b := &compRun{
		st:      &runState{diag: Diagnostics{Interfaces: 5}, n31: 1},
		settled: true,
		recs:    []iterRec{{hash: 2, addPasses: 1, removePasses: 1, dualSame: 2, quietDual: 2}},
	}
	d := mergeDiagnostics([]*compRun{a, b}, 1, 16)
	if d.AddPasses != 3 || d.RemovePasses != 1 {
		t.Errorf("passes = (%d, %d), want (3, 1)", d.AddPasses, d.RemovePasses)
	}
	if d.DualSameAS != 10 {
		t.Errorf("DualSameAS = %d, want 10 (4 + 2 + 2 surplus passes x 2 quiet duals)", d.DualSameAS)
	}
	if d.Interfaces != 12 {
		t.Errorf("Interfaces = %d, want 12", d.Interfaces)
	}
	if d.Slash31Fraction != 0.25 {
		t.Errorf("Slash31Fraction = %v, want 0.25 (4 of 16)", d.Slash31Fraction)
	}
	if d.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", d.Iterations)
	}

	// Extending past both settle points: every further iteration is two
	// quiet passes, topping up only B's stable duals.
	d2 := mergeDiagnostics([]*compRun{a, b}, 3, 16)
	if d2.AddPasses != 5 || d2.RemovePasses != 3 {
		t.Errorf("extended passes = (%d, %d), want (5, 3)", d2.AddPasses, d2.RemovePasses)
	}
	if d2.DualSameAS != 14 {
		t.Errorf("extended DualSameAS = %d, want 14", d2.DualSameAS)
	}
}

func TestReplayComponent(t *testing.T) {
	ev := evidence(
		[]string{"10.0.0.1", "10.0.0.2", "10.0.4.1", "10.0.4.2"},
		[2]string{"10.0.0.1", "10.0.4.1"},
		[2]string{"10.0.4.1", "10.0.0.1"},
	)
	cfg := Config{IP2AS: table("10.0.0.0/16=100", "10.0.4.0/24=200"), F: 0.5}
	cfg.freeze()
	c := &compRun{ev: ev, cfg: cfg}
	c.st = newRunState(&c.cfg, c.ev)
	c.hash0, c.recs, c.settled = c.st.fixpointTraced()
	if len(c.recs) == 0 {
		t.Fatal("no iterations traced")
	}
	final := c.st.stateHash()

	replayComponent(c, len(c.recs))
	if !c.replayed {
		t.Error("replayed flag not set")
	}
	if got := c.st.stateHash(); got != final {
		t.Errorf("replayed state hash %d, want %d", got, final)
	}
}

func TestForEachComponent(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var hits [100]int32
		forEachComponent(workers, len(hits), func(i int) { hits[i]++ })
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, n)
			}
		}
	}
	forEachComponent(4, 0, func(int) { t.Fatal("callback on empty range") })
}

func TestPartitionInfoString(t *testing.T) {
	var nilInfo *PartitionInfo
	if got := nilInfo.String(); got != "off" {
		t.Errorf("nil String() = %q, want off", got)
	}
	if got := (&PartitionInfo{Fallback: "single-component"}).String(); got != "fallback=single-component" {
		t.Errorf("fallback String() = %q", got)
	}
	info := &PartitionInfo{
		Components: 3, GiantShare: 0.5, Iterations: []int{3, 2, 2},
		SizeHistogram: []int{0, 1, 2},
	}
	want := "components=3 giant_share=0.500 replays=0 iterations=[3 2 2] size_hist=[2^0:0 2^1:1 2^2:2]"
	if got := info.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
