// Package core implements the MAP-IT algorithm (Marder & Smith, IMC
// 2016): multipass passive inference of the interface addresses used on
// point-to-point inter-AS links, and of the pair of ASes each link
// connects, from sanitised traceroute data plus a BGP-derived IP-to-AS
// mapping.
//
// The package follows the paper's structure: §4.2 other sides, §4.3
// neighbour sets, §4.4 add step (direct inferences, other-side updates,
// contradiction fixes, inverse-inference resolution), §4.5 remove step,
// §4.6 repeated-state convergence, §4.8 stub heuristic.
package core

import (
	"cmp"

	"mapit/internal/inet"
)

// Direction selects one of an interface's two halves (§3.2).
type Direction uint8

const (
	// Forward is the half that sees only the forward neighbours N_F.
	Forward Direction = iota
	// Backward is the half that sees only the backward neighbours N_B.
	Backward
)

// String names the direction.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction { return 1 - d }

// Half identifies one interface half: an interface address looking in one
// direction. All algorithm state — IP2AS overrides, direct and indirect
// inference records — is keyed by Half, never by bare address: §4.4.1 is
// explicit that an update to one half must not leak to the other.
type Half struct {
	Addr inet.Addr
	Dir  Direction
}

// String renders the half in the paper's subscript notation, e.g.
// "198.71.46.180_f".
func (h Half) String() string {
	if h.Dir == Forward {
		return h.Addr.String() + "_f"
	}
	return h.Addr.String() + "_b"
}

// Opposite returns the same interface looking the other way.
func (h Half) Opposite() Half { return Half{Addr: h.Addr, Dir: h.Dir.Opposite()} }

// halfSlot packs an address index and a direction into the dense half
// index the intern index and dirty set are keyed by (see internIndex).
// Sorting slots sorts by (address, direction), matching halfCmp.
func halfSlot(addrIdx int32, d Direction) int32 { return addrIdx*2 + int32(d) }

// halfLess orders halves deterministically (address, then forward before
// backward); every pass iterates in this order so runs are reproducible
// byte-for-byte regardless of map iteration order.
func halfLess(a, b Half) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Dir < b.Dir
}

// halfCmp is halfLess as a three-way comparison for slices.SortFunc.
func halfCmp(a, b Half) int {
	if c := cmp.Compare(a.Addr, b.Addr); c != 0 {
		return c
	}
	return cmp.Compare(a.Dir, b.Dir)
}
