package core

import (
	"cmp"
	"maps"
	"slices"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Evidence is the distilled input MAP-IT actually consumes: the set of
// observed addresses (for the §4.2 other-side heuristic), the unique
// adjacencies (for the §4.3 neighbour sets) and the sanitisation
// statistics. A month of Ark data is ~733M traces but only millions of
// unique adjacencies, so Evidence is what should be held in memory —
// not the traces.
type Evidence struct {
	AllAddrs    inet.AddrSet
	Adjacencies []trace.Adjacency
	Stats       trace.Stats
}

// EvidenceFrom distils a sanitised in-memory dataset.
func EvidenceFrom(s *trace.Sanitized) *Evidence {
	c := NewCollector()
	c.addSanitized(s)
	return c.Evidence()
}

// Collector accumulates Evidence incrementally: feed it traces one at a
// time (Add sanitises per §4.1) and it never retains them. Use it to
// stream arbitrarily large corpora from disk.
type Collector struct {
	allAddrs      inet.AddrSet
	retainedAddrs inet.AddrSet
	adjacencies   map[trace.Adjacency]struct{}
	stats         trace.Stats
	scratch       []trace.Adjacency
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		allAddrs:      make(inet.AddrSet),
		retainedAddrs: make(inet.AddrSet),
		adjacencies:   make(map[trace.Adjacency]struct{}),
	}
}

// Add sanitises one trace (§4.1) and accumulates its evidence. It
// reports whether the trace was retained.
func (c *Collector) Add(t trace.Trace) bool {
	c.stats.TotalTraces++
	for _, h := range t.Hops {
		if h.Responded() {
			c.allAddrs.Add(h.Addr)
		}
	}
	clean, res := trace.Sanitize(t)
	c.stats.RemovedHops += res.RemovedHops
	if res.Discarded {
		c.stats.DiscardedTraces++
		return false
	}
	c.scratch = trace.Adjacencies(clean, c.scratch[:0])
	for _, adj := range c.scratch {
		c.adjacencies[adj] = struct{}{}
	}
	for _, h := range clean.Hops {
		if h.Responded() {
			c.retainedAddrs.Add(h.Addr)
		}
	}
	return true
}

// addSanitized ingests an already-sanitised dataset without re-running
// the sanitiser.
func (c *Collector) addSanitized(s *trace.Sanitized) {
	for a := range s.AllAddrs {
		c.allAddrs.Add(a)
	}
	for _, t := range s.Retained {
		c.scratch = trace.Adjacencies(t, c.scratch[:0])
		for _, adj := range c.scratch {
			c.adjacencies[adj] = struct{}{}
		}
		for _, h := range t.Hops {
			if h.Responded() {
				c.retainedAddrs.Add(h.Addr)
			}
		}
	}
	c.stats = s.Stats
}

// Traces returns how many traces the collector has seen.
func (c *Collector) Traces() int { return c.stats.TotalTraces }

// Evidence finalises the collector. The collector remains usable; the
// returned adjacency slice is sorted for determinism, and the address
// set is a snapshot copy so later Adds cannot mutate returned evidence.
func (c *Collector) Evidence() *Evidence {
	adjs := make([]trace.Adjacency, 0, len(c.adjacencies))
	for adj := range c.adjacencies {
		adjs = append(adjs, adj)
	}
	slices.SortFunc(adjs, adjacencyCmp)
	stats := c.stats
	stats.DistinctAddrs = len(c.allAddrs)
	stats.RetainedAddrs = len(c.retainedAddrs)
	return &Evidence{AllAddrs: maps.Clone(c.allAddrs), Adjacencies: adjs, Stats: stats}
}

// adjacencyCmp orders adjacencies by (First, Second) — the canonical
// order of Evidence.Adjacencies.
func adjacencyCmp(a, b trace.Adjacency) int {
	if c := cmp.Compare(a.First, b.First); c != 0 {
		return c
	}
	return cmp.Compare(a.Second, b.Second)
}
