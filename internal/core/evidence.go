package core

import (
	"cmp"
	"maps"
	"slices"
	"strings"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Evidence is the distilled input MAP-IT actually consumes: the set of
// observed addresses (for the §4.2 other-side heuristic), the unique
// adjacencies (for the §4.3 neighbour sets) and the sanitisation
// statistics. A month of Ark data is ~733M traces but only millions of
// unique adjacencies, so Evidence is what should be held in memory —
// not the traces.
type Evidence struct {
	AllAddrs    inet.AddrSet
	Adjacencies []trace.Adjacency
	Stats       trace.Stats

	// Monitors is the optional per-vantage-point attribution of the
	// evidence, sorted by monitor name. Nil unless the collector had
	// TrackMonitors enabled — the algorithm never reads it; it feeds
	// the snapshot package's monitor→evidence query index.
	Monitors []MonitorEvidence
}

// MonitorEvidence is one vantage point's slice of the evidence: how many
// of its traces survived sanitisation and the unique adjacencies they
// contributed (sorted in the canonical (First, Second) order).
type MonitorEvidence struct {
	Monitor     string
	Traces      int
	Adjacencies []trace.Adjacency
}

// monitorAcc accumulates one monitor's attribution during collection.
type monitorAcc struct {
	traces int
	adjs   map[trace.Adjacency]struct{}
}

// monitorEvidence finalises an attribution map into the sorted exported
// form; nil in, nil out.
func monitorEvidence(m map[string]*monitorAcc) []MonitorEvidence {
	if m == nil {
		return nil
	}
	out := make([]MonitorEvidence, 0, len(m))
	for name, acc := range m {
		adjs := make([]trace.Adjacency, 0, len(acc.adjs))
		for adj := range acc.adjs {
			adjs = append(adjs, adj)
		}
		slices.SortFunc(adjs, adjacencyCmp)
		out = append(out, MonitorEvidence{Monitor: name, Traces: acc.traces, Adjacencies: adjs})
	}
	slices.SortFunc(out, func(a, b MonitorEvidence) int {
		return strings.Compare(a.Monitor, b.Monitor)
	})
	return out
}

// recordMonitor files one retained trace's adjacencies under its
// monitor.
func recordMonitor(m map[string]*monitorAcc, monitor string, adjs []trace.Adjacency) {
	acc := m[monitor]
	if acc == nil {
		acc = &monitorAcc{adjs: make(map[trace.Adjacency]struct{})}
		m[monitor] = acc
	}
	acc.traces++
	for _, adj := range adjs {
		acc.adjs[adj] = struct{}{}
	}
}

// EvidenceFrom distils a sanitised in-memory dataset.
func EvidenceFrom(s *trace.Sanitized) *Evidence {
	c := NewCollector()
	c.addSanitized(s)
	return c.Evidence()
}

// Collector accumulates Evidence incrementally: feed it traces one at a
// time (Add sanitises per §4.1) and it never retains them. Use it to
// stream arbitrarily large corpora from disk. With a SpillConfig (see
// NewCollectorSpill) the dedup structures spill to columnar disk
// segments under a memory budget and Finish merges them back —
// byte-identical to the in-memory result.
type Collector struct {
	allAddrs      inet.AddrSet
	retainedAddrs inet.AddrSet
	adjacencies   map[trace.Adjacency]struct{}
	stats         trace.Stats
	scratch       []trace.Adjacency

	// sortScratch is the reusable key-extraction/sort buffer of the
	// in-memory Evidence path; the returned evidence never aliases it.
	sortScratch []trace.Adjacency

	// monitors is the opt-in per-vantage-point attribution (see
	// TrackMonitors); nil when tracking is off. Attribution never
	// spills: it is bounded by monitors × their unique adjacencies and
	// exists to feed a query index, not the algorithm.
	monitors map[string]*monitorAcc

	// spill is non-nil when out-of-core mode is enabled.
	spill *spiller
}

// NewCollector returns an empty in-memory collector.
func NewCollector() *Collector {
	return &Collector{
		allAddrs:      make(inet.AddrSet),
		retainedAddrs: make(inet.AddrSet),
		adjacencies:   make(map[trace.Adjacency]struct{}),
	}
}

// NewCollectorSpill returns a collector that keeps its resident dedup
// state under cfg's budget by spilling sorted columnar runs to disk
// (DESIGN.md §11). Finish (or Evidence) merges the runs back with
// bounded memory; Close removes the spill files. A disabled cfg (zero
// value) yields a plain in-memory collector.
func NewCollectorSpill(cfg SpillConfig) *Collector {
	c := NewCollector()
	if cfg.enabled() {
		c.spill = newSpiller(newSpillSink(cfg))
	}
	return c
}

// TrackMonitors enables per-monitor evidence attribution: finalised
// evidence carries Evidence.Monitors, the sorted per-vantage-point view
// the snapshot query index is built from. Call it before the first Add;
// attribution stays in memory even on a spilling collector.
func (c *Collector) TrackMonitors() {
	if c.monitors == nil {
		c.monitors = make(map[string]*monitorAcc)
	}
}

// Add sanitises one trace (§4.1) and accumulates its evidence. It
// reports whether the trace was retained.
func (c *Collector) Add(t trace.Trace) bool {
	c.stats.TotalTraces++
	for _, h := range t.Hops {
		if h.Responded() {
			c.allAddrs.Add(h.Addr)
		}
	}
	clean, res := trace.Sanitize(t)
	c.stats.RemovedHops += res.RemovedHops
	if res.Discarded {
		c.stats.DiscardedTraces++
		return false
	}
	c.scratch = trace.Adjacencies(clean, c.scratch[:0])
	for _, adj := range c.scratch {
		c.adjacencies[adj] = struct{}{}
	}
	if c.monitors != nil {
		recordMonitor(c.monitors, t.Monitor, c.scratch)
	}
	for _, h := range clean.Hops {
		if h.Responded() {
			c.retainedAddrs.Add(h.Addr)
		}
	}
	c.maybeSpill()
	return true
}

// maybeSpill flushes dedup structures to disk when the configured
// budget is crossed. Flushed structures restart empty (fresh maps, so
// the buckets are actually released); anything unflushed — including
// after a write failure — stays in memory and correctness is
// unaffected.
func (c *Collector) maybeSpill() {
	sp := c.spill
	if sp == nil {
		return
	}
	cfg := sp.sink.cfg
	if n := cfg.RunEntries; n > 0 {
		if len(c.adjacencies) >= n && sp.flushAdjSet(c.adjacencies) {
			c.adjacencies = make(map[trace.Adjacency]struct{})
		}
		if len(c.allAddrs) >= n && sp.flushAddrSet(c.allAddrs, streamAll) {
			c.allAddrs = make(inet.AddrSet)
		}
		if len(c.retainedAddrs) >= n && sp.flushAddrSet(c.retainedAddrs, streamRet) {
			c.retainedAddrs = make(inet.AddrSet)
		}
		return
	}
	est := int64(len(c.adjacencies))*adjEntryCost +
		int64(len(c.allAddrs)+len(c.retainedAddrs))*addrEntryCost
	if est <= cfg.MemBudget {
		return
	}
	if sp.flushAdjSet(c.adjacencies) {
		c.adjacencies = make(map[trace.Adjacency]struct{})
	}
	if sp.flushAddrSet(c.allAddrs, streamAll) {
		c.allAddrs = make(inet.AddrSet)
	}
	if sp.flushAddrSet(c.retainedAddrs, streamRet) {
		c.retainedAddrs = make(inet.AddrSet)
	}
}

// addSanitized ingests an already-sanitised dataset without re-running
// the sanitiser.
func (c *Collector) addSanitized(s *trace.Sanitized) {
	for a := range s.AllAddrs {
		c.allAddrs.Add(a)
	}
	for _, t := range s.Retained {
		c.scratch = trace.Adjacencies(t, c.scratch[:0])
		for _, adj := range c.scratch {
			c.adjacencies[adj] = struct{}{}
		}
		if c.monitors != nil {
			recordMonitor(c.monitors, t.Monitor, c.scratch)
		}
		for _, h := range t.Hops {
			if h.Responded() {
				c.retainedAddrs.Add(h.Addr)
			}
		}
	}
	c.stats = s.Stats
}

// Traces returns how many traces the collector has seen.
func (c *Collector) Traces() int { return c.stats.TotalTraces }

// Evidence finalises the collector. The collector remains usable; the
// returned adjacency slice is sorted for determinism, and the address
// set is a snapshot copy so later Adds cannot mutate returned evidence.
// On a spilling collector prefer Finish — Evidence panics if the
// external merge fails (the in-memory path cannot fail).
func (c *Collector) Evidence() *Evidence {
	ev, err := c.Finish()
	if err != nil {
		panic("core: spill merge failed: " + err.Error())
	}
	return ev
}

// Finish finalises the collector, merging any spilled runs with the
// in-memory residue. The collector remains usable afterwards (spilled
// runs stay on disk and rejoin later merges); the returned evidence
// shares no storage with the collector. Errors are only possible in
// out-of-core mode: a spill write that failed during ingest, or an
// unreadable/corrupt segment at merge time.
func (c *Collector) Finish() (*Evidence, error) {
	if c.spill == nil || !c.spill.sink.spilled() {
		if c.spill != nil {
			if err := c.spill.sink.failed(); err != nil {
				return nil, err
			}
		}
		return c.evidenceInMemory(), nil
	}
	adjRes := c.sortedAdjResidue()
	ev, err := c.spill.sink.mergeEvidence(
		[][]trace.Adjacency{adjRes},
		[][]inet.Addr{sortedAddrs(c.allAddrs)},
		[][]inet.Addr{sortedAddrs(c.retainedAddrs)},
		c.stats)
	if err != nil {
		return nil, err
	}
	ev.Monitors = monitorEvidence(c.monitors)
	return ev, nil
}

// SpillStats snapshots the out-of-core counters; zero for an in-memory
// collector.
func (c *Collector) SpillStats() SpillStats {
	if c.spill == nil {
		return SpillStats{}
	}
	return c.spill.sink.Stats()
}

// Close releases the collector's spill files. Only needed in
// out-of-core mode; the collector must not be used afterwards.
func (c *Collector) Close() error {
	if c.spill == nil {
		return nil
	}
	return c.spill.sink.close()
}

// evidenceInMemory is the spill-free finalisation. The key extraction
// and sort run in a scratch buffer reused across calls; the returned
// slice is a fresh exact-size copy, preserving the no-aliasing
// contract.
func (c *Collector) evidenceInMemory() *Evidence {
	c.sortScratch = c.sortScratch[:0]
	for adj := range c.adjacencies {
		c.sortScratch = append(c.sortScratch, adj)
	}
	slices.SortFunc(c.sortScratch, adjacencyCmp)
	adjs := make([]trace.Adjacency, len(c.sortScratch))
	copy(adjs, c.sortScratch)
	stats := c.stats
	stats.DistinctAddrs = len(c.allAddrs)
	stats.RetainedAddrs = len(c.retainedAddrs)
	return &Evidence{
		AllAddrs:    maps.Clone(c.allAddrs),
		Adjacencies: adjs,
		Stats:       stats,
		Monitors:    monitorEvidence(c.monitors),
	}
}

// sortedAdjResidue snapshots the in-memory adjacency residue as a
// sorted slice for the external merge, through the reused scratch.
func (c *Collector) sortedAdjResidue() []trace.Adjacency {
	c.sortScratch = c.sortScratch[:0]
	for adj := range c.adjacencies {
		c.sortScratch = append(c.sortScratch, adj)
	}
	slices.SortFunc(c.sortScratch, adjacencyCmp)
	return c.sortScratch
}

// adjacencyCmp orders adjacencies by (First, Second) — the canonical
// order of Evidence.Adjacencies.
func adjacencyCmp(a, b trace.Adjacency) int {
	if c := cmp.Compare(a.First, b.First); c != 0 {
		return c
	}
	return cmp.Compare(a.Second, b.Second)
}

// addrCmp orders addresses numerically — the order of spilled address
// runs.
func addrCmp(a, b inet.Addr) int { return cmp.Compare(a, b) }
