package core

import "sync"

// minChunkFactor gates parallel fan-out: below 4 items per worker the
// goroutine overhead dominates and the serial path wins.
const minChunkFactor = 4

// numChunks reports how many contiguous chunks parallelChunks will split
// n items into for the given worker count (1 when the work stays serial).
func numChunks(n, workers int) int {
	if workers <= 1 || n < minChunkFactor*workers {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// parallelChunks splits [0, n) into one contiguous range per worker and
// runs fn(w, lo, hi) on each concurrently, where w is the chunk index
// (dense, in range order). Small inputs run serially as chunk 0. Callers
// that accumulate output per chunk and concatenate in chunk order get
// results identical to a serial left-to-right scan.
// resetShards grows *bufs to at least n per-chunk buffers, truncates
// the first n to length zero, and returns them as a view. Keeping the
// backing arrays on the caller (runState) means the per-worker output
// buffers of a sharded scan are reused across passes instead of
// reallocated each pass.
func resetShards[T any](bufs *[][]T, n int) [][]T {
	for len(*bufs) < n {
		*bufs = append(*bufs, nil)
	}
	view := (*bufs)[:n]
	for i := range view {
		view[i] = view[i][:0]
	}
	return view
}

func parallelChunks(n, workers int, fn func(w, lo, hi int)) {
	if numChunks(n, workers) == 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
