package core

import (
	"errors"

	"mapit/internal/as2org"
	"mapit/internal/audit"
	"mapit/internal/inet"
	"mapit/internal/ixp"
	"mapit/internal/relation"
	"mapit/internal/trace"
)

// IP2AS resolves an address to its BGP origin AS via longest prefix
// match. bgp.Table and bgp.Chain implement it.
type IP2AS interface {
	Lookup(inet.Addr) (inet.ASN, bool)
}

// Stage identifies a point in the algorithm at which a snapshot hook can
// fire; the §5.5 per-stage evaluation (Fig 7) is built on these.
type Stage string

// Stages, in firing order.
const (
	// StageDirect fires after the very first direct-inference pass
	// (plus its other-side updates) of the first add step.
	StageDirect Stage = "direct"
	// StageP2P fires after the first point-to-point contradiction fix.
	StageP2P Stage = "p2p"
	// StageInverse fires after the first inverse-inference resolution.
	StageInverse Stage = "inverse"
	// StageAddConverged fires when the first add step reaches fixpoint.
	StageAddConverged Stage = "add-converged"
	// StageIteration fires after each remove step (end of iteration n);
	// the hook receives "iteration" with the iteration number in n.
	StageIteration Stage = "iteration"
	// StageStub fires after the stub heuristic.
	StageStub Stage = "stub"
)

// Config carries the inputs and knobs of a MAP-IT run.
type Config struct {
	// IP2AS is the BGP-derived origin mapping (required). The paper
	// merges 40 collectors and chains a Team Cymru fallback; any
	// longest-prefix-match source works.
	IP2AS IP2AS

	// Orgs merges sibling ASes (§4.9). Optional; nil means every AS is
	// its own organisation.
	Orgs *as2org.Orgs

	// Rels is the AS relationship dataset; required only for the stub
	// heuristic (§4.8), which is skipped when nil.
	Rels *relation.Dataset

	// IXP flags exchange-point address space (§4.4.2 fn7, §4.9).
	// Optional.
	IXP *ixp.Directory

	// F is the §4.4.1 evidence threshold: the plurality AS must account
	// for at least F×|N| of a neighbour set. The paper sweeps 0..1 and
	// settles on 0.5 (§5.3).
	F float64

	// MaxIterations bounds the outer add/remove loop as a safety net on
	// top of repeated-state detection (§4.6). Zero means the default.
	MaxIterations int

	// Workers parallelises the fixpoint itself: independent inference
	// components run concurrently across this many goroutines (see
	// DisablePartition), the largest component additionally fans its
	// read-only election scans out over the same count, and the ingest
	// and state-build phases shard likewise. Results are bit-identical
	// for any value (updates are double-buffered, §4.4.5, per-shard
	// outputs are merged in deterministic order, and the component
	// merge is order-independent). Zero or one means serial.
	Workers int

	// DisablePartition forces the monolithic single-loop fixpoint even
	// when the evidence decomposes into several closed inference
	// components. A/B escape hatch: results are byte-identical either
	// way, the partitioned default is just faster on fragmented
	// topologies. See DESIGN.md §12.
	DisablePartition bool

	// DisableIncremental forces every pass of the add and remove steps
	// to rescan all eligible halves instead of only the dirty set
	// (halves whose election inputs changed since their last scan).
	// A/B escape hatch: results are byte-identical either way, the
	// incremental default is just faster. See DESIGN.md §6.
	DisableIncremental bool

	// DisableStubHeuristic turns off §4.8 even when Rels is present.
	DisableStubHeuristic bool

	// DisableRemoveStep turns off §4.5 (ablation only).
	DisableRemoveStep bool

	// DisableInverseResolution turns off §4.4.4 (ablation only).
	DisableInverseResolution bool

	// DisableDualResolution turns off the §4.4.3 dual-inference fix
	// (ablation only).
	DisableDualResolution bool

	// SinglePass stops after the first direct-inference pass without
	// refinement (ablation: what a one-shot heuristic would get).
	SinglePass bool

	// WholeInterfaceUpdates applies IP2AS updates to both halves of an
	// interface instead of only the inferred half (ablation: the paper
	// argues per-half updates are required; see the 199.109.5.1
	// discussion in §4.4.1).
	WholeInterfaceUpdates bool

	// OnStage, when set, is called at each Stage with a lazy snapshot:
	// nothing is materialised until StageSnapshot.Result is called, so
	// hooks that only count stages (or sample a few) cost almost
	// nothing. Iteration snapshots pass the iteration number. Setting
	// OnStage pins the run to the monolithic fixpoint (stage firing
	// order is a property of the single global loop); results are
	// still byte-identical.
	OnStage func(stage Stage, iteration int, s *StageSnapshot)

	// DecodeStats, when non-nil, is copied into Result.Diag.Decode
	// after the run, so the ingest decode-health counters a permissive
	// binary decode accumulated (see trace.DecodeOptions) travel with
	// the run diagnostics. The engine only reads through the pointer.
	DecodeStats *trace.DecodeStats

	// SpillStats, when non-nil, is copied into Result.Diag.Spill after
	// the run, so the out-of-core ingest counters of a spilling
	// collector (see SpillConfig) travel with the run diagnostics. The
	// engine only reads through the pointer.
	SpillStats *SpillStats

	// Audit, when enabled, runs the runtime invariant auditor at every
	// fixpoint step boundary: the incremental machinery (dirty set,
	// election memo, maintained state fingerprint, IP→AS memo, intern
	// index and flat mirrors) is cross-checked against first-principles
	// recomputation. Violations are collected into Result.Audit and
	// counted in Result.Diag.AuditViolations; a clean audited run is
	// byte-identical to an unaudited one. See DESIGN.md §10.
	Audit *audit.Checker
}

const defaultMaxIterations = 50

func (c *Config) maxIterations() int {
	if c.MaxIterations > 0 {
		return c.MaxIterations
	}
	return defaultMaxIterations
}

func (c *Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// validate checks the configuration.
func (c *Config) validate() error {
	if c.IP2AS == nil {
		return errors.New("core: Config.IP2AS is required")
	}
	if c.F < 0 || c.F > 1 {
		return errors.New("core: Config.F must be in [0,1]")
	}
	return nil
}
