package core

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"mapit/internal/topo"
)

// Equivalence proofs for the incremental dirty-set engine: for any
// input, the incremental default must produce byte-identical Results —
// inferences, probe suggestions, and every diagnostic counter
// (including Add/RemovePasses) — to the full-rescan engine
// (DisableIncremental). These run under -race in CI, so they double as
// data-race canaries for the sharded remove-step scan.

// runBoth executes the same evidence under both engines and reports any
// divergence.
func runBoth(t *testing.T, ev *Evidence, cfg Config, label string) {
	t.Helper()
	inc := cfg
	inc.DisableIncremental = false
	full := cfg
	full.DisableIncremental = true
	rI, err := RunEvidence(ev, inc)
	if err != nil {
		t.Fatalf("%s: incremental: %v", label, err)
	}
	rF, err := RunEvidence(ev, full)
	if err != nil {
		t.Fatalf("%s: full: %v", label, err)
	}
	if !reflect.DeepEqual(rI.Inferences, rF.Inferences) {
		t.Fatalf("%s: inferences diverge (%d incremental vs %d full)",
			label, len(rI.Inferences), len(rF.Inferences))
	}
	if rI.Diag != rF.Diag {
		t.Fatalf("%s: diagnostics diverge:\nincremental %+v\nfull        %+v",
			label, rI.Diag, rF.Diag)
	}
	if !reflect.DeepEqual(rI.ProbeSuggestions, rF.ProbeSuggestions) {
		t.Fatalf("%s: probe suggestions diverge", label)
	}
}

// TestIncrementalEquivalenceTopo sweeps synthetic topology sizes, world
// seeds, f values, and worker counts.
func TestIncrementalEquivalenceTopo(t *testing.T) {
	type tcase struct {
		gen     topo.GenConfig
		dests   int
		f       float64
		workers int
	}
	var cases []tcase
	for seed := int64(1); seed <= 3; seed++ {
		gen := topo.SmallGenConfig()
		gen.Seed = seed
		cases = append(cases,
			tcase{gen, 400, 0.5, 1},
			tcase{gen, 400, 0.25, 4},
			tcase{gen, 400, 0.75, 4},
		)
	}
	if !testing.Short() {
		cases = append(cases, tcase{topo.DefaultGenConfig(), 0, 0.5, 8})
	}
	for i, c := range cases {
		w := topo.Generate(c.gen)
		tc := topo.DefaultTraceConfig()
		if c.dests > 0 {
			tc.DestsPerMonitor = c.dests
		}
		ds := w.GenTraces(tc)
		orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
		ev := EvidenceFrom(ds.Sanitize())
		cfg := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir,
			F: c.f, Workers: c.workers}
		runBoth(t, ev, cfg,
			fmt.Sprintf("case %d (seed=%d f=%.2f workers=%d)", i, c.gen.Seed, c.f, c.workers))
	}
}

// TestQuickIncrementalEquivalence is the quick-check variant: arbitrary
// random evidence, f values, and the WholeInterfaceUpdates ablation.
func TestQuickIncrementalEquivalence(t *testing.T) {
	f := func(hops []uint16, fRaw uint8, wiu bool, workers uint8) bool {
		s := randEvidence(hops)
		cfg := Config{
			IP2AS:                 quickIP2AS(),
			F:                     float64(fRaw%11) / 10,
			WholeInterfaceUpdates: wiu,
			Workers:               int(workers % 5),
		}
		full := cfg
		full.DisableIncremental = true
		rI, err := Run(s, cfg)
		if err != nil {
			return false
		}
		rF, err := Run(s, full)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(rI, rF)
	}
	if err := quick.Check(f, quickCfg(80)); err != nil {
		t.Fatal(err)
	}
}

// unbackedOverrides returns the committed overrides with no surviving
// inference record to justify them. After a converged run the list must
// be empty: §4.4.2/§4.5 tie every IP2AS update to a live direct
// inference (directly, via an indirect association, or — under the
// WholeInterfaceUpdates ablation — via the opposite half's direct
// inference).
func unbackedOverrides(st *runState) []Half {
	var out []Half
	for h := range st.overrides {
		if st.hasInference(h) {
			continue
		}
		if st.cfg.WholeInterfaceUpdates {
			if _, ok := st.direct[h.Opposite()]; ok {
				continue
			}
		}
		out = append(out, h)
	}
	return out
}

// TestWholeInterfaceNoPhantomOverride reproduces the Fig 4 dual-
// inference discard under the WholeInterfaceUpdates ablation and
// asserts the discarded backward inference's mirrored override is
// cleared along with it (regression: recomputeOverride/discardDirect
// used to leave the opposite half's override in place forever).
func TestWholeInterfaceNoPhantomOverride(t *testing.T) {
	ip2as := table(
		"62.115.0.0/16=1299",
		"4.68.0.0/16=3356",
		"91.200.0.0/16=51159",
	)
	x := "4.68.110.186"
	s := sanitized(
		tr("62.115.0.1", x, "91.200.0.1"),
		tr("62.115.0.5", x, "91.200.0.5"),
	)
	cfg := Config{IP2AS: ip2as, F: 0.5, WholeInterfaceUpdates: true}
	st := newRunState(&cfg, EvidenceFrom(s))
	st.fixpoint()
	if st.diag.DualResolved < 1 {
		t.Fatalf("fixture no longer triggers dual resolution (DualResolved=%d)",
			st.diag.DualResolved)
	}
	if phantoms := unbackedOverrides(st); len(phantoms) != 0 {
		t.Errorf("phantom overrides survive the discard: %v", phantoms)
	}
}

// TestQuickNoPhantomOverrides asserts the override-backing invariant on
// arbitrary random evidence, with and without the ablation.
func TestQuickNoPhantomOverrides(t *testing.T) {
	f := func(hops []uint16, fRaw uint8, wiu bool) bool {
		s := randEvidence(hops)
		cfg := Config{IP2AS: quickIP2AS(), F: float64(fRaw%11) / 10,
			WholeInterfaceUpdates: wiu}
		st := newRunState(&cfg, EvidenceFrom(s))
		st.fixpoint()
		return len(unbackedOverrides(st)) == 0
	}
	if err := quick.Check(f, quickCfg(60)); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMapIDConsistency: after a converged run, the flat
// committed-mapping view the elections read (mapID) must agree with the
// authoritative overrides-map view (mapping()) on every indexed half —
// the two are maintained in lockstep by setOverride/clearOverride.
func TestIncrementalMapIDConsistency(t *testing.T) {
	f := func(hops []uint16, fRaw uint8) bool {
		s := randEvidence(hops)
		cfg := Config{IP2AS: quickIP2AS(), F: float64(fRaw%11) / 10}
		st := newRunState(&cfg, EvidenceFrom(s))
		st.fixpoint()
		// The incrementally maintained §4.6 fingerprint must equal the
		// from-scratch recompute: every mutation funnel kept it in step.
		if st.stateHash() != st.stateHashRecompute() {
			return false
		}
		for i, a := range st.addrs {
			for _, d := range [2]Direction{Forward, Backward} {
				h := Half{Addr: a, Dir: d}
				want := st.mapping(h)
				id := st.idx.mapID[halfSlot(int32(i), d)]
				if id < 0 {
					if !want.IsZero() {
						return false
					}
				} else if st.idx.asnOf[id] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}
