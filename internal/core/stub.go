package core

import "mapit/internal/inet"

// stubHeuristic is Alg 4 (§4.8): after the main loop converges, infer
// links to low-visibility stub ASes and NAT'd stubs from forward halves
// with a single neighbour. The conditions guard against third-party
// addresses: only forward halves qualify; the interface's backward half
// and the neighbour's backward half must carry no inference; the
// neighbour's AS must differ from the interface's and be a stub
// (an AS with no non-sibling customers, or absent from the relationship
// dataset entirely). A third-party reply from a stub would name one of
// its providers, which by definition is not a stub, so no inference
// results.
//
// The candidate filter runs on the flat index: soleFwdNbr pre-selects
// the |N_F| == 1 interfaces, and the inference/mapping/organisation
// tests are array reads. Only actual stub candidates touch the
// relationship dataset.
func (st *runState) stubHeuristic() {
	if st.cfg.Rels == nil || st.cfg.DisableStubHeuristic {
		return
	}
	ix := &st.idx
	for ai, ni := range ix.soleFwdNbr {
		if ni < 0 {
			continue
		}
		hfIdx := halfSlot(int32(ai), Forward)
		nbIdx := halfSlot(ni, Backward)
		if st.hasInferenceIdx(hfIdx) || st.hasInferenceIdx(hfIdx+1) || st.hasInferenceIdx(nbIdx) {
			continue
		}
		if ix.ixpA[ai] || ix.ixpA[ni] {
			continue
		}
		asHID := ix.mapID[hfIdx] // committed mapping of the forward half
		asNID := ix.mapID[nbIdx]
		if asNID < 0 {
			continue
		}
		if asHID >= 0 && ix.orgOfASN[asHID] == ix.orgOfASN[asNID] {
			continue
		}
		asN := ix.asnOf[asNID]
		if !st.cfg.Rels.IsStub(asN, st.cfg.Orgs) {
			continue
		}
		var asH inet.ASN
		if asHID >= 0 {
			asH = ix.asnOf[asHID]
		}
		hf := Half{Addr: st.addrs[ai], Dir: Forward}
		st.setDirect(hf, hfIdx, st.newDirectInf(directInf{local: asH, localID: asHID,
			connected: asN, connectedID: asNID, stub: true}))
		st.setOverrideIdx(hf, hfIdx, asN, asNID)
		st.diag.StubInferences++
		if oh, ok := st.otherHalf(hf); ok {
			if _, selfDirect := st.direct[oh]; !selfDirect {
				st.setIndirect(oh, hf)
				st.setOverride(oh, asN)
			}
		}
	}
}

// hasInference reports whether the half carries any inference record.
func (st *runState) hasInference(h Half) bool {
	if _, ok := st.direct[h]; ok {
		return true
	}
	if src, ok := st.indirect[h]; ok {
		if _, ok := st.direct[src]; ok {
			return true
		}
	}
	return false
}
