package core

// stubHeuristic is Alg 4 (§4.8): after the main loop converges, infer
// links to low-visibility stub ASes and NAT'd stubs from forward halves
// with a single neighbour. The conditions guard against third-party
// addresses: only forward halves qualify; the interface's backward half
// and the neighbour's backward half must carry no inference; the
// neighbour's AS must differ from the interface's and be a stub
// (an AS with no non-sibling customers, or absent from the relationship
// dataset entirely). A third-party reply from a stub would name one of
// its providers, which by definition is not a stub, so no inference
// results.
func (st *runState) stubHeuristic() {
	if st.cfg.Rels == nil || st.cfg.DisableStubHeuristic {
		return
	}
	for _, a := range st.addrs {
		nbrs := st.nbrF[a]
		if len(nbrs) != 1 {
			continue
		}
		hf := Half{Addr: a, Dir: Forward}
		hb := Half{Addr: a, Dir: Backward}
		nb := Half{Addr: nbrs[0], Dir: Backward}
		if st.hasInference(hf) || st.hasInference(hb) || st.hasInference(nb) {
			continue
		}
		if st.ixpAddr[a] || st.ixpAddr[nbrs[0]] {
			continue
		}
		asH := st.mapping(hf)
		asN := st.mapping(nb)
		if asN.IsZero() {
			continue
		}
		if !asH.IsZero() && st.cfg.Orgs.SameOrg(asH, asN) {
			continue
		}
		if !st.cfg.Rels.IsStub(asN, st.cfg.Orgs) {
			continue
		}
		d := directInf{local: asH, connected: asN, stub: true}
		st.direct[hf] = &d
		st.overrides[hf] = asN
		st.diag.StubInferences++
		if oh, ok := st.otherHalf(hf); ok {
			if _, selfDirect := st.direct[oh]; !selfDirect {
				st.indirect[oh] = hf
				st.overrides[oh] = asN
			}
		}
	}
}

// hasInference reports whether the half carries any inference record.
func (st *runState) hasInference(h Half) bool {
	if _, ok := st.direct[h]; ok {
		return true
	}
	if src, ok := st.indirect[h]; ok {
		if _, ok := st.direct[src]; ok {
			return true
		}
	}
	return false
}
