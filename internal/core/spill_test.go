package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// equalSpillEvidence requires byte-identical evidence: same sorted
// adjacency slice, same address set, same stats.
func equalSpillEvidence(t *testing.T, label string, want, got *Evidence) {
	t.Helper()
	if !reflect.DeepEqual(want.Adjacencies, got.Adjacencies) {
		t.Fatalf("%s: adjacency slices differ (%d vs %d entries)",
			label, len(want.Adjacencies), len(got.Adjacencies))
	}
	if !reflect.DeepEqual(want.AllAddrs, got.AllAddrs) {
		t.Fatalf("%s: address sets differ (%d vs %d addrs)",
			label, len(want.AllAddrs), len(got.AllAddrs))
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats differ:\n want %+v\n got  %+v", label, want.Stats, got.Stats)
	}
}

// TestCollectorSpillEquivalence: the serial spill path must be
// byte-identical to the in-memory path for every threshold, including
// degenerate ones that spill on nearly every Add.
func TestCollectorSpillEquivalence(t *testing.T) {
	traces := synthTraces(2500)
	want := func() *Evidence {
		c := NewCollector()
		for _, tc := range traces {
			c.Add(tc)
		}
		return c.Evidence()
	}()

	cases := []SpillConfig{
		{RunEntries: 1},
		{RunEntries: 7},
		{RunEntries: 100},
		{RunEntries: 5000},
		{MemBudget: 1},
		{MemBudget: 32 << 10},
		{MemBudget: 1 << 20},
		{MemBudget: 1 << 30}, // never spills
	}
	for _, cfg := range cases {
		cfg.Dir = t.TempDir()
		c := NewCollectorSpill(cfg)
		for _, tc := range traces {
			c.Add(tc)
		}
		got, err := c.Finish()
		if err != nil {
			t.Fatalf("cfg=%+v: Finish: %v", cfg, err)
		}
		equalSpillEvidence(t, fmt.Sprintf("budget=%d entries=%d", cfg.MemBudget, cfg.RunEntries), want, got)
		if cfg.MemBudget == 1 && c.SpillStats().AdjRuns == 0 {
			t.Fatalf("cfg=%+v: expected spilling, stats %+v", cfg, c.SpillStats())
		}
		if err := c.Close(); err != nil {
			t.Fatalf("cfg=%+v: Close: %v", cfg, err)
		}
	}
}

// TestParallelCollectorSpillEquivalence sweeps worker counts ×
// thresholds; every combination must reproduce the serial in-memory
// evidence exactly.
func TestParallelCollectorSpillEquivalence(t *testing.T) {
	traces := synthTraces(3000)
	serial := NewCollector()
	for _, tc := range traces {
		serial.Add(tc)
	}
	want := serial.Evidence()

	for _, workers := range []int{1, 2, 4} {
		for _, cfg := range []SpillConfig{
			{RunEntries: 3},
			{RunEntries: 64},
			{MemBudget: 1},
			{MemBudget: 256 << 10},
		} {
			cfg.Dir = t.TempDir()
			par := NewParallelCollectorSpill(workers, cfg)
			for _, tc := range traces {
				par.Add(tc)
			}
			got, err := par.Finish()
			if err != nil {
				t.Fatalf("workers=%d cfg=%+v: Finish: %v", workers, cfg, err)
			}
			equalSpillEvidence(t, fmt.Sprintf("workers=%d budget=%d entries=%d",
				workers, cfg.MemBudget, cfg.RunEntries), want, got)
			if par.SpillStats().AdjRuns+par.SpillStats().AddrRuns == 0 {
				t.Fatalf("workers=%d cfg=%+v: nothing spilled", workers, cfg)
			}
			if err := par.Close(); err != nil {
				t.Fatalf("workers=%d: Close: %v", workers, err)
			}
		}
	}
}

// TestCollectorSpillIncremental: a spilling collector stays usable
// after Finish — later Adds extend the evidence, and repeated merges
// over the same on-disk runs stay correct.
func TestCollectorSpillIncremental(t *testing.T) {
	traces := synthTraces(1600)
	oracle := NewCollector()
	c := NewCollectorSpill(SpillConfig{Dir: t.TempDir(), RunEntries: 50})
	defer c.Close()
	par := NewParallelCollectorSpill(3, SpillConfig{Dir: t.TempDir(), RunEntries: 37})
	defer par.Close()

	for _, tc := range traces[:800] {
		oracle.Add(tc)
		c.Add(tc)
		par.Add(tc)
	}
	want := oracle.Evidence()
	got, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	equalSpillEvidence(t, "serial/first", want, got)
	pgot, err := par.Finish()
	if err != nil {
		t.Fatal(err)
	}
	equalSpillEvidence(t, "parallel/first", want, pgot)

	for _, tc := range traces[800:] {
		oracle.Add(tc)
		c.Add(tc)
		par.Add(tc)
	}
	want = oracle.Evidence()
	got, err = c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	equalSpillEvidence(t, "serial/second", want, got)
	pgot, err = par.Finish()
	if err != nil {
		t.Fatal(err)
	}
	equalSpillEvidence(t, "parallel/second", want, pgot)
}

// TestCollectorSpillSnapshotInsulation: evidence returned before more
// Adds must not change.
func TestCollectorSpillSnapshotInsulation(t *testing.T) {
	traces := synthTraces(1000)
	c := NewCollectorSpill(SpillConfig{Dir: t.TempDir(), RunEntries: 40})
	defer c.Close()
	for _, tc := range traces[:500] {
		c.Add(tc)
	}
	first, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	adjs := len(first.Adjacencies)
	addrs := len(first.AllAddrs)
	stats := first.Stats
	for _, tc := range traces[500:] {
		c.Add(tc)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(first.Adjacencies) != adjs || len(first.AllAddrs) != addrs || first.Stats != stats {
		t.Fatal("first snapshot mutated by later Adds")
	}
}

// TestCollectorSpillClose: Close removes every spill file.
func TestCollectorSpillClose(t *testing.T) {
	dir := t.TempDir()
	c := NewCollectorSpill(SpillConfig{Dir: dir, RunEntries: 10})
	for _, tc := range synthTraces(500) {
		c.Add(tc)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if c.SpillStats().Files == 0 {
		t.Fatal("expected spill files")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no spill files on disk before Close")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files left after Close", len(ents))
	}
}

// TestCollectorSpillWriteError: an unwritable spill directory must
// surface from Finish as an error (and panic from Evidence), never
// corrupt the evidence silently.
func TestCollectorSpillWriteError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing-subdir")
	c := NewCollectorSpill(SpillConfig{Dir: dir, RunEntries: 5})
	for _, tc := range synthTraces(300) {
		c.Add(tc)
	}
	if _, err := c.Finish(); err == nil {
		t.Fatal("Finish succeeded with an unwritable spill dir")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Evidence did not panic on spill failure")
		}
	}()
	c.Evidence()
}

// TestCollectorSpillCorruptSegment: damaging a spill file between
// ingest and merge must surface as a typed CorruptError from Finish.
func TestCollectorSpillCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	c := NewCollectorSpill(SpillConfig{Dir: dir, RunEntries: 25})
	defer c.Close()
	for _, tc := range synthTraces(800) {
		c.Add(tc)
	}
	// A first merge forces the segment writers to flush, so the files on
	// disk are complete before we damage them.
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of every spill segment.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("spill files: %v (%d)", err, len(ents))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "mapit-spill-") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 32 {
			continue
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = c.Finish()
	if err == nil {
		t.Fatal("Finish succeeded on a corrupted spill segment")
	}
	var ce *trace.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *trace.CorruptError", err)
	}
}

// TestSpillStatsString pins the -stats rendering.
func TestSpillStatsString(t *testing.T) {
	s := SpillStats{Files: 2, AdjRuns: 3, AddrRuns: 4, SpilledEntries: 500, SpilledBytes: 6000, Merges: 1}
	want := "files=2 adj_runs=3 addr_runs=4 spilled_entries=500 spilled_bytes=6000 merges=1"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestCollectorNoSpillAccessors: the spill accessors are safe no-ops on
// plain in-memory collectors.
func TestCollectorNoSpillAccessors(t *testing.T) {
	c := NewCollector()
	if st := c.SpillStats(); st != (SpillStats{}) {
		t.Errorf("in-memory Collector SpillStats = %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Errorf("in-memory Collector Close: %v", err)
	}
	p := NewParallelCollector(2)
	if st := p.SpillStats(); st != (SpillStats{}) {
		t.Errorf("in-memory ParallelCollector SpillStats = %+v", st)
	}
	if err := p.Close(); err != nil {
		t.Errorf("in-memory ParallelCollector Close: %v", err)
	}

	// Spilling collectors with nothing ever spilled still report stats
	// and close cleanly. An empty Dir defaults to the system temp dir.
	s := NewCollectorSpill(SpillConfig{MemBudget: 1 << 40})
	for _, tc := range synthTraces(20) {
		s.Add(tc)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if st := s.SpillStats(); st.SpilledEntries != 0 {
		t.Errorf("unspilled collector reports spilled entries: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestParallelCollectorSpillWriteError mirrors the serial write-error
// test: an unusable spill directory surfaces from Finish as an error
// and from Evidence as a panic, while Close stays clean.
func TestParallelCollectorSpillWriteError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	c := NewParallelCollectorSpill(2, SpillConfig{Dir: dir, RunEntries: 1})
	for _, tc := range synthTraces(200) {
		c.Add(tc)
	}
	if _, err := c.Finish(); err == nil {
		t.Fatal("Finish succeeded with an unusable spill dir")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Evidence did not panic on spill error")
			}
		}()
		c.Evidence()
	}()
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestRunEvidenceSpillStats: Config.SpillStats travels into
// Result.Diag.Spill.
func TestRunEvidenceSpillStats(t *testing.T) {
	c := NewCollector()
	for _, tc := range synthTraces(20) {
		c.Add(tc)
	}
	st := SpillStats{Files: 1, AdjRuns: 2, SpilledEntries: 7, Merges: 1}
	cfg := Config{IP2AS: table("8.0.0.0/8=64500"), F: 0.5, SpillStats: &st}
	r, err := RunEvidence(c.Evidence(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag.Spill != st {
		t.Errorf("Diag.Spill = %+v, want %+v", r.Diag.Spill, st)
	}
}

// TestSpillSegmentDamage drives mergeEvidence's error propagation for
// each stream and the file-lifecycle error paths that the end-to-end
// corruption test cannot reach deterministically.
func TestSpillSegmentDamage(t *testing.T) {
	newParty := func(t *testing.T) (*spillSink, *spiller) {
		sink := newSpillSink(SpillConfig{Dir: t.TempDir(), RunEntries: 1})
		return sink, newSpiller(sink)
	}
	adjSet := map[trace.Adjacency]struct{}{
		{First: 10, Second: 11}: {}, {First: 12, Second: 13}: {},
	}
	addrSet := inet.AddrSet{21: {}, 22: {}, 23: {}}

	t.Run("adj-run-truncated", func(t *testing.T) {
		sink, sp := newParty(t)
		if !sp.flushAdjSet(adjSet) {
			t.Fatal("flush failed")
		}
		if err := sp.file.sw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := sp.file.f.Truncate(6); err != nil {
			t.Fatal(err)
		}
		if _, err := sink.mergeEvidence(nil, nil, nil, trace.Stats{}); err == nil {
			t.Error("merge over a truncated adjacency run succeeded")
		}
		if err := sink.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})

	t.Run("addr-run-truncated", func(t *testing.T) {
		for _, stream := range []int{streamAll, streamRet} {
			sink, sp := newParty(t)
			if !sp.flushAddrSet(addrSet, stream) {
				t.Fatal("flush failed")
			}
			if err := sp.file.sw.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := sp.file.f.Truncate(6); err != nil {
				t.Fatal(err)
			}
			if _, err := sink.mergeEvidence(nil, nil, nil, trace.Stats{}); err == nil {
				t.Errorf("stream %d: merge over a truncated address run succeeded", stream)
			}
			if err := sink.close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	})

	t.Run("writer-flush-failure", func(t *testing.T) {
		sink, sp := newParty(t)
		if !sp.flushAdjSet(adjSet) {
			t.Fatal("flush failed")
		}
		// Closing the descriptor under the writer makes the merge's
		// flush fail before any cursor opens.
		if err := sp.file.f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := sink.mergeEvidence(nil, nil, nil, trace.Stats{}); err == nil {
			t.Error("merge flushed through a closed file")
		}
		// close reports the double-close but removes the file.
		if err := sink.close(); err == nil {
			t.Error("close on a closed file reported no error")
		}
	})

	t.Run("close-missing-file", func(t *testing.T) {
		sink, sp := newParty(t)
		if !sp.flushAdjSet(adjSet) {
			t.Fatal("flush failed")
		}
		if err := os.Remove(sp.file.f.Name()); err != nil {
			t.Fatal(err)
		}
		if err := sink.close(); err == nil {
			t.Error("close with the segment file already removed reported no error")
		}
	})

	t.Run("flush-after-failure-is-noop", func(t *testing.T) {
		sink, sp := newParty(t)
		sink.fail(errors.New("boom"))
		if sp.flushAdjSet(adjSet) || sp.flushAddrSet(addrSet, streamAll) {
			t.Error("flush reported success on a failed sink")
		}
		if sink.spilled() {
			t.Error("failed sink recorded runs")
		}
	})
}
