package core

import (
	"runtime"
	"testing"
	"time"

	"mapit/internal/topo"
)

// BenchmarkWindowAdvance times steady-state sliding-window advances: a
// synthetic corpus replayed in fixed steps through a prefilled window,
// each iteration observing one step's arrivals and advancing (expiry +
// recompute). Churn totals ride along as extra metrics so the snapshot
// (BENCH_window.json) also pins that the workload exercises real link
// birth/death, not an idle window.
//
// CI runs this with -benchtime=1x as a smoke test and snapshots the
// numbers to BENCH_window.json (see internal/tools/benchjson).
func BenchmarkWindowAdvance(b *testing.B) {
	const (
		stepSec   = 60
		windowSec = 600
	)
	w := topo.Generate(topo.SmallGenConfig())
	tc := topo.DefaultTraceConfig()
	tc.DestsPerMonitor = 200
	ds := w.GenTraces(tc)
	orgs, rels, dir := w.PublicInputs(topo.DefaultNoiseConfig())
	cfg := Config{IP2AS: w.Table(), Orgs: orgs, Rels: rels, IXP: dir,
		F: 0.5, Workers: runtime.GOMAXPROCS(0)}
	win, err := NewWindow(WindowOptions{Length: windowSec * time.Second, Config: cfg})
	if err != nil {
		b.Fatal(err)
	}

	traces := ds.Traces
	perStep := len(traces)/(windowSec/stepSec) + 1
	now := int64(0)
	idx := 0
	feed := func() {
		for j := 0; j < perStep; j++ {
			t := traces[idx%len(traces)]
			t.Time = now
			win.Observe(t)
			idx++
		}
	}
	// Prefill one full window span so every timed advance both expires
	// and admits a step's worth of traces.
	for i := 0; i < windowSec/stepSec; i++ {
		now += stepSec
		feed()
		if _, err := win.Advance(now); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += stepSec
		feed()
		if _, err := win.Advance(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := win.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "advances/s")
	b.ReportMetric(float64(st.LinkBirths), "link_births")
	b.ReportMetric(float64(st.LinkDeaths), "link_deaths")
	b.ReportMetric(float64(st.IfaceFlaps), "iface_flaps")
}
