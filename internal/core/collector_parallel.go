package core

import (
	"maps"
	"runtime"
	"slices"
	"sync"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Batch sizes for the parallel ingest pipeline: traces travel to the
// sanitise workers in batches (amortising channel overhead across the
// per-trace work) and adjacencies travel to the shard owners in batches
// (amortising it across the per-adjacency work).
const (
	traceBatchSize = 256
	adjBatchSize   = 512
)

// ParallelCollector is a sharded, concurrent Collector: traces fan out
// to sanitise workers, each worker routes the surviving adjacencies by
// hash to per-shard deduplication sets, and Evidence() sorts the shards
// in parallel and k-way merges them. Because the shards partition the
// adjacency space and each is sorted before the merge, the merged slice
// — and every Stats field — is byte-identical to what the serial
// Collector produces for the same traces, in any worker configuration.
//
// With a SpillConfig (NewParallelCollectorSpill), shard owners spill
// their adjacency sets and workers spill their address sets to columnar
// disk segments under the shared budget, and finalisation becomes a
// bounded-memory external merge — still byte-identical, for any spill
// threshold, worker count, or segment size (DESIGN.md §11).
//
// Add and Evidence must be called from a single goroutine; the
// concurrency is internal. Like Collector, the collector remains usable
// after Evidence (the pipeline restarts lazily on the next Add).
type ParallelCollector struct {
	workers int
	added   int

	// Persistent state, merged under mu when workers retire.
	mu            sync.Mutex
	shards        []map[trace.Adjacency]struct{}
	allAddrs      inet.AddrSet
	retainedAddrs inet.AddrSet
	stats         trace.Stats
	// monitors is the opt-in per-vantage-point attribution (see
	// TrackMonitors): workers accumulate locally and merge here at
	// retirement. Nil when tracking is off. Never spills.
	monitors map[string]*monitorAcc

	// Out-of-core state; spill is nil for an in-memory collector.
	// shardSpillers persist across pipeline restarts so each shard keeps
	// appending runs to its own segment file. shardLimit / workerLimit
	// are the per-party shares of the byte budget.
	spill         *spillSink
	shardSpillers []*spiller
	shardLimit    int64
	workerLimit   int64

	// sortScratch holds the per-shard sorted runs between Evidence
	// calls; the merged output never aliases it.
	sortScratch [][]trace.Adjacency

	// Live pipeline; nil between Evidence() and the next Add.
	tracesCh chan []trace.Trace
	shardCh  []chan []trace.Adjacency
	sanWG    sync.WaitGroup
	shardWG  sync.WaitGroup
	batch    []trace.Trace
}

// NewParallelCollector returns an empty sharded collector with the given
// concurrency; workers < 1 means runtime.GOMAXPROCS(0).
func NewParallelCollector(workers int) *ParallelCollector {
	return NewParallelCollectorSpill(workers, SpillConfig{})
}

// NewParallelCollectorSpill returns a sharded collector that keeps its
// resident dedup state under cfg's budget by spilling columnar runs to
// disk. A disabled cfg (zero value) yields the plain in-memory
// collector.
func NewParallelCollectorSpill(workers int, cfg SpillConfig) *ParallelCollector {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &ParallelCollector{
		workers:       workers,
		shards:        make([]map[trace.Adjacency]struct{}, workers),
		allAddrs:      make(inet.AddrSet),
		retainedAddrs: make(inet.AddrSet),
		sortScratch:   make([][]trace.Adjacency, workers),
	}
	for i := range c.shards {
		c.shards[i] = make(map[trace.Adjacency]struct{})
	}
	if cfg.enabled() {
		c.spill = newSpillSink(cfg)
		c.shardSpillers = make([]*spiller, len(c.shards))
		for i := range c.shardSpillers {
			c.shardSpillers[i] = newSpiller(c.spill)
		}
		// Split the byte budget half to the adjacency shards, half to
		// the workers' address sets, evenly within each side.
		c.shardLimit = cfg.MemBudget / 2 / int64(len(c.shards))
		c.workerLimit = cfg.MemBudget / 2 / int64(workers)
	}
	return c
}

// TrackMonitors enables per-monitor evidence attribution (see
// Collector.TrackMonitors). It must be called before the first Add of a
// pipeline run — workers snapshot the setting when they start.
func (c *ParallelCollector) TrackMonitors() {
	if c.tracesCh != nil {
		panic("core: TrackMonitors called on a running ParallelCollector")
	}
	if c.monitors == nil {
		c.monitors = make(map[string]*monitorAcc)
	}
}

// Add enqueues one trace for sanitisation (§4.1) and evidence
// accumulation. Unlike Collector.Add it does not report retention — the
// trace may still be in flight; Evidence().Stats carries the counts.
func (c *ParallelCollector) Add(t trace.Trace) {
	c.start()
	c.added++
	c.batch = append(c.batch, t)
	if len(c.batch) >= traceBatchSize {
		c.tracesCh <- c.batch
		c.batch = make([]trace.Trace, 0, traceBatchSize)
	}
}

// Traces returns how many traces have been enqueued.
func (c *ParallelCollector) Traces() int { return c.added }

// start spins up the pipeline if it is not already running.
func (c *ParallelCollector) start() {
	if c.tracesCh != nil {
		return
	}
	c.tracesCh = make(chan []trace.Trace, 2*c.workers)
	c.shardCh = make([]chan []trace.Adjacency, len(c.shards))
	for i := range c.shardCh {
		c.shardCh[i] = make(chan []trace.Adjacency, 2*c.workers)
		c.shardWG.Add(1)
		go c.shardOwner(i)
	}
	for w := 0; w < c.workers; w++ {
		c.sanWG.Add(1)
		go c.sanitizeWorker()
	}
}

// drain flushes the pending batch and retires the pipeline, leaving the
// accumulated shard sets and statistics ready to merge.
func (c *ParallelCollector) drain() {
	if c.tracesCh == nil {
		return
	}
	if len(c.batch) > 0 {
		c.tracesCh <- c.batch
		c.batch = nil
	}
	close(c.tracesCh)
	c.sanWG.Wait()
	for _, ch := range c.shardCh {
		close(ch)
	}
	c.shardWG.Wait()
	c.tracesCh = nil
	c.shardCh = nil
}

// sanitizeWorker consumes trace batches, sanitises each trace, and
// routes its adjacencies to the owning shard. Address sets and
// statistics accumulate worker-locally; at retirement they merge into
// the globals, or — in out-of-core mode — flush to the worker's own
// spill segment so the resident set stays bounded.
func (c *ParallelCollector) sanitizeWorker() {
	defer c.sanWG.Done()
	allAddrs := make(inet.AddrSet)
	retainedAddrs := make(inet.AddrSet)
	var stats trace.Stats
	var monitors map[string]*monitorAcc
	if c.monitors != nil {
		monitors = make(map[string]*monitorAcc)
	}
	bufs := make([][]trace.Adjacency, len(c.shardCh))
	var scratch []trace.Adjacency
	var sp *spiller
	if c.spill != nil {
		sp = newSpiller(c.spill)
	}
	for batch := range c.tracesCh {
		for _, t := range batch {
			stats.TotalTraces++
			for _, h := range t.Hops {
				if h.Responded() {
					allAddrs.Add(h.Addr)
				}
			}
			clean, res := trace.Sanitize(t)
			stats.RemovedHops += res.RemovedHops
			if res.Discarded {
				stats.DiscardedTraces++
				continue
			}
			scratch = trace.Adjacencies(clean, scratch[:0])
			if monitors != nil {
				recordMonitor(monitors, t.Monitor, scratch)
			}
			for _, adj := range scratch {
				s := adjShard(adj, len(bufs))
				bufs[s] = append(bufs[s], adj)
				if len(bufs[s]) >= adjBatchSize {
					c.shardCh[s] <- bufs[s]
					bufs[s] = make([]trace.Adjacency, 0, adjBatchSize)
				}
			}
			for _, h := range clean.Hops {
				if h.Responded() {
					retainedAddrs.Add(h.Addr)
				}
			}
		}
		if sp != nil && c.addrsOverLimit(allAddrs, retainedAddrs) {
			if sp.flushAddrSet(allAddrs, streamAll) {
				allAddrs = make(inet.AddrSet)
			}
			if sp.flushAddrSet(retainedAddrs, streamRet) {
				retainedAddrs = make(inet.AddrSet)
			}
		}
	}
	for s, buf := range bufs {
		if len(buf) > 0 {
			c.shardCh[s] <- buf
		}
	}
	if sp != nil {
		// Retirement flush: in out-of-core mode the globals must not
		// accumulate per-worker sets. A failed flush (sticky sink error)
		// falls through to the global merge — finalisation will report
		// the error, and the data is not silently lost meanwhile.
		if sp.flushAddrSet(allAddrs, streamAll) {
			allAddrs = nil
		}
		if sp.flushAddrSet(retainedAddrs, streamRet) {
			retainedAddrs = nil
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for a := range allAddrs {
		c.allAddrs.Add(a)
	}
	for a := range retainedAddrs {
		c.retainedAddrs.Add(a)
	}
	for name, acc := range monitors {
		dst := c.monitors[name]
		if dst == nil {
			c.monitors[name] = acc
			continue
		}
		dst.traces += acc.traces
		for adj := range acc.adjs {
			dst.adjs[adj] = struct{}{}
		}
	}
	c.stats.TotalTraces += stats.TotalTraces
	c.stats.DiscardedTraces += stats.DiscardedTraces
	c.stats.RemovedHops += stats.RemovedHops
}

// addrsOverLimit applies the worker-share budget (or the RunEntries
// testing knob) to a worker's address sets.
func (c *ParallelCollector) addrsOverLimit(all, ret inet.AddrSet) bool {
	if n := c.spill.cfg.RunEntries; n > 0 {
		return len(all) >= n || len(ret) >= n
	}
	return int64(len(all)+len(ret))*addrEntryCost > c.workerLimit
}

// shardOwner deduplicates the adjacency batches routed to shard i. Each
// shard is owned by exactly one goroutine, so no locking is needed; in
// out-of-core mode the owner flushes its set as a sorted run whenever
// it crosses the shard's budget share.
func (c *ParallelCollector) shardOwner(i int) {
	defer c.shardWG.Done()
	set := c.shards[i]
	var sp *spiller
	var limit int
	if c.spill != nil {
		sp = c.shardSpillers[i]
		if n := c.spill.cfg.RunEntries; n > 0 {
			limit = n
		} else {
			limit = int(c.shardLimit / adjEntryCost)
		}
		limit = max(limit, 1)
	}
	for batch := range c.shardCh[i] {
		for _, adj := range batch {
			set[adj] = struct{}{}
		}
		if sp != nil && len(set) >= limit && sp.flushAdjSet(set) {
			set = make(map[trace.Adjacency]struct{})
			c.shards[i] = set
		}
	}
}

// Evidence drains the pipeline and finalises the collected evidence.
// On a spilling collector prefer Finish — Evidence panics if the
// external merge fails (the in-memory path cannot fail).
func (c *ParallelCollector) Evidence() *Evidence {
	ev, err := c.Finish()
	if err != nil {
		panic("core: spill merge failed: " + err.Error())
	}
	return ev
}

// Finish drains the pipeline and finalises the collected evidence:
// per-shard parallel sorts followed by a k-way loser-tree merge of the
// sorted shard runs — plus, in out-of-core mode, every spilled run —
// yielding the globally sorted unique adjacency slice. The collector
// remains usable afterwards.
func (c *ParallelCollector) Finish() (*Evidence, error) {
	c.drain()
	sorted := c.sortShards()
	if c.spill == nil || !c.spill.spilled() {
		if c.spill != nil {
			if err := c.spill.failed(); err != nil {
				return nil, err
			}
		}
		return c.evidenceInMemory(sorted), nil
	}
	ev, err := c.spill.mergeEvidence(sorted,
		[][]inet.Addr{sortedAddrs(c.allAddrs)},
		[][]inet.Addr{sortedAddrs(c.retainedAddrs)},
		c.stats)
	if err != nil {
		return nil, err
	}
	ev.Monitors = monitorEvidence(c.monitors)
	return ev, nil
}

// SpillStats snapshots the out-of-core counters; zero for an in-memory
// collector.
func (c *ParallelCollector) SpillStats() SpillStats {
	if c.spill == nil {
		return SpillStats{}
	}
	return c.spill.Stats()
}

// Close releases the collector's spill files. Only needed in
// out-of-core mode; the collector must not be used afterwards.
func (c *ParallelCollector) Close() error {
	if c.spill == nil {
		return nil
	}
	return c.spill.close()
}

// sortShards extracts and sorts every shard's residue in parallel into
// the reused scratch runs.
func (c *ParallelCollector) sortShards() [][]trace.Adjacency {
	var wg sync.WaitGroup
	for i, shard := range c.shards {
		wg.Add(1)
		go func(i int, shard map[trace.Adjacency]struct{}) {
			defer wg.Done()
			adjs := c.sortScratch[i][:0]
			for adj := range shard {
				adjs = append(adjs, adj)
			}
			slices.SortFunc(adjs, adjacencyCmp)
			c.sortScratch[i] = adjs
		}(i, shard)
	}
	wg.Wait()
	return c.sortScratch
}

// evidenceInMemory merges the sorted shard runs without touching disk.
// Shards partition the adjacency space, so the dedup in the shared
// merge is a no-op here and the output matches the serial Collector
// exactly.
func (c *ParallelCollector) evidenceInMemory(sorted [][]trace.Adjacency) *Evidence {
	total := 0
	for _, r := range sorted {
		total += len(r)
	}
	srcs := make([]mergeSource[trace.Adjacency], len(sorted))
	for i, r := range sorted {
		srcs[i] = sliceSource(r)
	}
	adjs := make([]trace.Adjacency, 0, total)
	// Slice sources cannot fail, so the merge cannot either.
	if err := mergeDedup(srcs, adjacencyCmp, func(a trace.Adjacency) { adjs = append(adjs, a) }); err != nil {
		panic("core: in-memory merge failed: " + err.Error())
	}
	stats := c.stats
	stats.DistinctAddrs = len(c.allAddrs)
	stats.RetainedAddrs = len(c.retainedAddrs)
	return &Evidence{
		AllAddrs:    maps.Clone(c.allAddrs),
		Adjacencies: adjs,
		Stats:       stats,
		Monitors:    monitorEvidence(c.monitors),
	}
}

// adjShard routes an adjacency to its owning shard. The multiplier is
// the SplitMix64 finaliser constant, mixing both addresses into the
// shard index so shards stay balanced even on structured corpora.
func adjShard(a trace.Adjacency, n int) int {
	h := uint64(a.First)<<32 | uint64(a.Second)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}
