package core

import (
	"maps"
	"runtime"
	"slices"
	"sync"

	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Batch sizes for the parallel ingest pipeline: traces travel to the
// sanitise workers in batches (amortising channel overhead across the
// per-trace work) and adjacencies travel to the shard owners in batches
// (amortising it across the per-adjacency work).
const (
	traceBatchSize = 256
	adjBatchSize   = 512
)

// ParallelCollector is a sharded, concurrent Collector: traces fan out
// to sanitise workers, each worker routes the surviving adjacencies by
// hash to per-shard deduplication sets, and Evidence() sorts the shards
// in parallel and k-way merges them. Because the shards partition the
// adjacency space and each is sorted before the merge, the merged slice
// — and every Stats field — is byte-identical to what the serial
// Collector produces for the same traces, in any worker configuration.
//
// Add and Evidence must be called from a single goroutine; the
// concurrency is internal. Like Collector, the collector remains usable
// after Evidence (the pipeline restarts lazily on the next Add).
type ParallelCollector struct {
	workers int
	added   int

	// Persistent state, merged under mu when workers retire.
	mu            sync.Mutex
	shards        []map[trace.Adjacency]struct{}
	allAddrs      inet.AddrSet
	retainedAddrs inet.AddrSet
	stats         trace.Stats

	// Live pipeline; nil between Evidence() and the next Add.
	tracesCh chan []trace.Trace
	shardCh  []chan []trace.Adjacency
	sanWG    sync.WaitGroup
	shardWG  sync.WaitGroup
	batch    []trace.Trace
}

// NewParallelCollector returns an empty sharded collector with the given
// concurrency; workers < 1 means runtime.GOMAXPROCS(0).
func NewParallelCollector(workers int) *ParallelCollector {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &ParallelCollector{
		workers:       workers,
		shards:        make([]map[trace.Adjacency]struct{}, workers),
		allAddrs:      make(inet.AddrSet),
		retainedAddrs: make(inet.AddrSet),
	}
	for i := range c.shards {
		c.shards[i] = make(map[trace.Adjacency]struct{})
	}
	return c
}

// Add enqueues one trace for sanitisation (§4.1) and evidence
// accumulation. Unlike Collector.Add it does not report retention — the
// trace may still be in flight; Evidence().Stats carries the counts.
func (c *ParallelCollector) Add(t trace.Trace) {
	c.start()
	c.added++
	c.batch = append(c.batch, t)
	if len(c.batch) >= traceBatchSize {
		c.tracesCh <- c.batch
		c.batch = make([]trace.Trace, 0, traceBatchSize)
	}
}

// Traces returns how many traces have been enqueued.
func (c *ParallelCollector) Traces() int { return c.added }

// start spins up the pipeline if it is not already running.
func (c *ParallelCollector) start() {
	if c.tracesCh != nil {
		return
	}
	c.tracesCh = make(chan []trace.Trace, 2*c.workers)
	c.shardCh = make([]chan []trace.Adjacency, len(c.shards))
	for i := range c.shardCh {
		c.shardCh[i] = make(chan []trace.Adjacency, 2*c.workers)
		c.shardWG.Add(1)
		go c.shardOwner(i)
	}
	for w := 0; w < c.workers; w++ {
		c.sanWG.Add(1)
		go c.sanitizeWorker()
	}
}

// drain flushes the pending batch and retires the pipeline, leaving the
// accumulated shard sets and statistics ready to merge.
func (c *ParallelCollector) drain() {
	if c.tracesCh == nil {
		return
	}
	if len(c.batch) > 0 {
		c.tracesCh <- c.batch
		c.batch = nil
	}
	close(c.tracesCh)
	c.sanWG.Wait()
	for _, ch := range c.shardCh {
		close(ch)
	}
	c.shardWG.Wait()
	c.tracesCh = nil
	c.shardCh = nil
}

// sanitizeWorker consumes trace batches, sanitises each trace, and
// routes its adjacencies to the owning shard. Address sets and
// statistics accumulate worker-locally and merge once on retirement.
func (c *ParallelCollector) sanitizeWorker() {
	defer c.sanWG.Done()
	allAddrs := make(inet.AddrSet)
	retainedAddrs := make(inet.AddrSet)
	var stats trace.Stats
	bufs := make([][]trace.Adjacency, len(c.shardCh))
	var scratch []trace.Adjacency
	for batch := range c.tracesCh {
		for _, t := range batch {
			stats.TotalTraces++
			for _, h := range t.Hops {
				if h.Responded() {
					allAddrs.Add(h.Addr)
				}
			}
			clean, res := trace.Sanitize(t)
			stats.RemovedHops += res.RemovedHops
			if res.Discarded {
				stats.DiscardedTraces++
				continue
			}
			scratch = trace.Adjacencies(clean, scratch[:0])
			for _, adj := range scratch {
				s := adjShard(adj, len(bufs))
				bufs[s] = append(bufs[s], adj)
				if len(bufs[s]) >= adjBatchSize {
					c.shardCh[s] <- bufs[s]
					bufs[s] = make([]trace.Adjacency, 0, adjBatchSize)
				}
			}
			for _, h := range clean.Hops {
				if h.Responded() {
					retainedAddrs.Add(h.Addr)
				}
			}
		}
	}
	for s, buf := range bufs {
		if len(buf) > 0 {
			c.shardCh[s] <- buf
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for a := range allAddrs {
		c.allAddrs.Add(a)
	}
	for a := range retainedAddrs {
		c.retainedAddrs.Add(a)
	}
	c.stats.TotalTraces += stats.TotalTraces
	c.stats.DiscardedTraces += stats.DiscardedTraces
	c.stats.RemovedHops += stats.RemovedHops
}

// shardOwner deduplicates the adjacency batches routed to shard i. Each
// shard is owned by exactly one goroutine, so no locking is needed.
func (c *ParallelCollector) shardOwner(i int) {
	defer c.shardWG.Done()
	set := c.shards[i]
	for batch := range c.shardCh[i] {
		for _, adj := range batch {
			set[adj] = struct{}{}
		}
	}
}

// Evidence drains the pipeline and finalises the collected evidence:
// per-shard parallel sorts followed by a k-way merge of the disjoint
// sorted shards, yielding the globally sorted unique adjacency slice.
func (c *ParallelCollector) Evidence() *Evidence {
	c.drain()
	sorted := make([][]trace.Adjacency, len(c.shards))
	var wg sync.WaitGroup
	for i, shard := range c.shards {
		wg.Add(1)
		go func(i int, shard map[trace.Adjacency]struct{}) {
			defer wg.Done()
			adjs := make([]trace.Adjacency, 0, len(shard))
			for adj := range shard {
				adjs = append(adjs, adj)
			}
			slices.SortFunc(adjs, adjacencyCmp)
			sorted[i] = adjs
		}(i, shard)
	}
	wg.Wait()
	stats := c.stats
	stats.DistinctAddrs = len(c.allAddrs)
	stats.RetainedAddrs = len(c.retainedAddrs)
	return &Evidence{
		AllAddrs:    maps.Clone(c.allAddrs),
		Adjacencies: mergeSortedAdjacencies(sorted),
		Stats:       stats,
	}
}

// adjShard routes an adjacency to its owning shard. The multiplier is
// the SplitMix64 finaliser constant, mixing both addresses into the
// shard index so shards stay balanced even on structured corpora.
func adjShard(a trace.Adjacency, n int) int {
	h := uint64(a.First)<<32 | uint64(a.Second)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// mergeSortedAdjacencies k-way merges disjoint sorted runs into one
// sorted slice. The run count is the worker count, so the linear
// min-scan per output element stays cheap.
func mergeSortedAdjacencies(runs [][]trace.Adjacency) []trace.Adjacency {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]trace.Adjacency, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || adjacencyCmp(r[heads[i]], runs[best][heads[best]]) < 0 {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}
