package core

import (
	"runtime"
	"testing"

	"mapit/internal/bgp"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// BenchmarkFixpointPartitioned times the component-partitioned engine
// against the monolithic loop (DisablePartition) on two corpus shapes:
// islands (several disjoint worlds merged — the decomposition's best
// case, components run concurrently across the worker pool) and giant
// (one connected world — the adversarial case, where partitioning must
// cost no more than a union-find sweep before falling back). Unlike the
// BenchmarkFixpoint pair above, the timed region is the whole engine
// (state build included): the partitioned path builds per-component
// states, so a fixpoint-only timing would not compare like with like.
//
// CI runs these with -benchtime=1x as a smoke test and snapshots the
// numbers to BENCH_fixpoint.json (see internal/tools/benchjson).

func BenchmarkFixpointPartitioned(b *testing.B) {
	shapes := []struct {
		name    string
		islands int
	}{
		{"islands", 6},
		{"giant", 1},
	}
	for _, shape := range shapes {
		for _, tc := range []struct {
			name    string
			disable bool
		}{
			{"partitioned", false},
			{"monolithic", true},
		} {
			b.Run(shape.name+"/"+tc.name, func(b *testing.B) {
				ev, cfg := benchIslandEvidence(shape.islands)
				cfg.Workers = runtime.GOMAXPROCS(0)
				cfg.DisablePartition = tc.disable
				cfg.freeze()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := RunEvidence(ev, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchIslandEvidence merges n disjoint default-sized worlds (see
// topo.GenConfig.Island) into one corpus.
func benchIslandEvidence(n int) (*Evidence, Config) {
	var traces []trace.Trace
	var anns []bgp.Announcement
	for k := 0; k < n; k++ {
		gen := topo.SmallGenConfig()
		gen.Seed = 41 + int64(k)
		gen.Island = k
		w := topo.Generate(gen)
		tcfg := topo.DefaultTraceConfig()
		tcfg.Seed = 141 + int64(k)
		tcfg.DestsPerMonitor = 600
		traces = append(traces, w.GenTraces(tcfg).Traces...)
		anns = append(anns, w.Announcements...)
	}
	d := &trace.Dataset{Traces: traces}
	return EvidenceFrom(d.Sanitize()), Config{IP2AS: bgp.NewTable(anns), F: 0.5}
}
