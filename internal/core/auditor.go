package core

import (
	"fmt"
	"slices"

	"mapit/internal/audit"
	"mapit/internal/inet"
)

// Audit checkpoint stages (audit.Violation.Stage values).
const (
	auditStageAdd    = "add-step"
	auditStageRemove = "remove-step"
	auditStageFinal  = "final"
)

// runAuditor executes the runtime invariant audit at fixpoint step
// boundaries, cross-checking the incremental machinery against first
// principles. Every checkpoint runs from serial fixpoint code between
// steps, so the checks may read any state freely; none of them mutate
// anything the algorithm observes (sortedDirectIdxs compaction is the
// one state-touching call, and it is semantically idempotent).
//
// See DESIGN.md §10 for the invariant catalogue.
type runAuditor struct {
	checker *audit.Checker
	report  *audit.Report
	sc      electScratch // private election scratch, never shared with scan workers
}

func newRunAuditor(c *audit.Checker) *runAuditor {
	return &runAuditor{checker: c, report: audit.NewReport(c.Mode)}
}

// check counts one evaluated assertion.
func (a *runAuditor) check() { a.report.Checks++ }

// violate records one failed assertion.
func (a *runAuditor) violate(check, stage string, iter int, format string, args ...any) {
	a.report.Record(audit.Violation{
		Check:     check,
		Stage:     stage,
		Iteration: iter,
		Detail:    fmt.Sprintf(format, args...),
	}, a.checker.Cap())
}

// stride returns the sampling stride and this checkpoint's offset. The
// offset rotates with the checkpoint counter so repeated Sampled-mode
// checkpoints cover different residue classes of each structure.
func (a *runAuditor) stride() (stride, offset int32) {
	s := int32(a.checker.Stride())
	return s, int32(a.report.Steps) % s
}

// auditCheckpoint runs every applicable invariant check for the stage.
// No-op unless Config.Audit enabled auditing.
func (st *runState) auditCheckpoint(stage string, iter int) {
	a := st.auditor
	if a == nil {
		return
	}
	a.report.Steps++
	if a.report.Steps == 1 {
		st.auditIndexSymmetry(stage, iter)
	}
	st.auditStateHash(stage, iter)
	st.auditInterning(stage, iter)
	st.auditDirtyDrained(stage, iter)
	st.auditMirrors(stage, iter)
	st.auditMemoIP2AS(stage, iter)
	st.auditBacking(stage, iter)
	st.auditElections(stage, iter)
}

// auditFinish finalises the report for attachment to the Result.
func (st *runState) auditFinish() {
	a := st.auditor
	if a == nil {
		return
	}
	a.report.Sort()
	st.diag.AuditViolations = a.report.Total()
}

// auditIndexSymmetry verifies the half-election symmetry of the static
// intern index, once per run (the index is immutable after build): for
// every eligible half h, each non-IXP entry n in h's flat neighbour
// range must list h among its reverse dependents — h's election reads
// n's mapping, so a commit to n must be able to find h — and every
// reverse dependent recorded for a half must actually read it.
func (st *runState) auditIndexSymmetry(stage string, iter int) {
	a, ix := st.auditor, &st.idx
	stride, off := a.stride()
	contains := func(list []int32, x int32) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	for k := off; k < int32(len(ix.halvesIdx)); k += stride {
		hi := ix.halvesIdx[k]
		for _, ni := range ix.nbrFlat[ix.nbrOff[hi]:ix.nbrOff[hi+1]] {
			if ni < 0 {
				continue // IXP member: no votes, no dependency edge
			}
			a.check()
			deps := ix.depFlat[ix.depOff[ni]:ix.depOff[ni+1]]
			if !contains(deps, hi) {
				a.violate("index-symmetry", stage, iter,
					"half %v reads %v but is missing from its dependents",
					st.halfAt(hi), st.halfAt(ni))
			}
		}
	}
	// Reverse direction: every dependency edge corresponds to a read.
	for x := off; x < int32(len(st.addrs))*2; x += stride {
		for _, dep := range ix.depFlat[ix.depOff[x]:ix.depOff[x+1]] {
			a.check()
			nbrs := ix.nbrFlat[ix.nbrOff[dep]:ix.nbrOff[dep+1]]
			if !contains(nbrs, x) {
				a.violate("index-symmetry", stage, iter,
					"half %v listed as dependent of %v but never reads it",
					st.halfAt(dep), st.halfAt(x))
			}
		}
	}
}

// auditStateHash checks the O(1) group-sum fingerprint every mutation
// funnel maintains against a from-scratch rebuild over the
// authoritative maps (§4.6 stopping rule input).
func (st *runState) auditStateHash(stage string, iter int) {
	a := st.auditor
	a.check()
	if got, want := st.stateHash(), st.stateHashRecompute(); got != want {
		a.violate("state-hash", stage, iter,
			"maintained fingerprint %#x != recomputed %#x", got, want)
	}
}

// auditInterning checks ASN/org interning bijectivity: asnOf and
// idOfASN invert each other, every interned ASN's organisation id
// matches the canonical-ASN table, and the org id space is dense.
func (st *runState) auditInterning(stage string, iter int) {
	a, ix := st.auditor, &st.idx
	a.check()
	if len(ix.idOfASN) != len(ix.asnOf) {
		a.violate("interning", stage, iter,
			"idOfASN has %d entries, asnOf %d", len(ix.idOfASN), len(ix.asnOf))
	}
	a.check()
	if len(ix.orgIDOf) != ix.orgCount {
		a.violate("interning", stage, iter,
			"orgIDOf has %d entries, orgCount %d", len(ix.orgIDOf), ix.orgCount)
	}
	for id, asn := range ix.asnOf {
		a.check()
		if back, ok := ix.idOfASN[asn]; !ok || back != int32(id) {
			a.violate("interning", stage, iter,
				"asnOf[%d] = %d but idOfASN[%d] = %d (present=%v)", id, asn, asn, back, ok)
			continue
		}
		oid := ix.orgOfASN[id]
		if oid < 0 || int(oid) >= ix.orgCount {
			a.violate("interning", stage, iter,
				"ASN %d has out-of-range org id %d (orgCount %d)", asn, oid, ix.orgCount)
			continue
		}
		if want, ok := ix.orgIDOf[st.cfg.Orgs.Canonical(asn)]; !ok || want != oid {
			a.violate("interning", stage, iter,
				"ASN %d interned with org id %d, canonical table says %d (present=%v)",
				asn, oid, want, ok)
		}
	}
}

// auditDirtyDrained checks dirty-set bookkeeping: the mark array and
// the list agree exactly, and — at add/remove step boundaries, where
// the step just ran its internal loop to fixpoint — the set is empty
// (the final, non-mutating pass of a converged step marks nothing).
// The final checkpoint runs after the stub heuristic, whose commits
// legitimately mark readers dirty, so only internal consistency is
// checked there; SinglePass aborts the add step mid-flight, so its
// boundary check is skipped too.
func (st *runState) auditDirtyDrained(stage string, iter int) {
	a, ds := st.auditor, &st.dirty
	a.check()
	marked := 0
	for _, m := range ds.mark {
		if m {
			marked++
		}
	}
	listed := 0
	for _, idx := range ds.list {
		if ds.mark[idx] {
			listed++
		} else {
			a.violate("dirty-set", stage, iter,
				"half %v listed dirty but not marked", st.halfAt(idx))
		}
	}
	if marked != listed {
		a.violate("dirty-set", stage, iter,
			"%d halves marked dirty but only %d listed", marked, listed)
	}
	if stage != auditStageFinal && !st.cfg.SinglePass {
		a.check()
		if len(ds.list) != 0 {
			a.violate("dirty-set", stage, iter,
				"dirty set holds %d halves at a converged step boundary", len(ds.list))
		}
	}
}

// auditMirrors checks the flat inference-state mirrors against the
// authoritative Half-keyed maps, the committed-mapping view against
// mapping(), and the maintained sorted direct index against a
// from-scratch collection.
func (st *runState) auditMirrors(stage string, iter int) {
	a, ix := st.auditor, &st.idx
	stride, off := a.stride()
	n := int32(len(st.addrs))
	for hi := off; hi < 2*n; hi += stride {
		h := st.halfAt(hi)
		a.check()
		d, ok := st.direct[h]
		if ok != (st.dirConnID[hi] >= 0) {
			a.violate("mirror", stage, iter,
				"half %v: direct map present=%v but dirConnID=%d", h, ok, st.dirConnID[hi])
		} else if ok {
			if d.connectedID != st.dirConnID[hi] || d.localID != st.dirLocalID[hi] ||
				d.uncertain != st.dirUnc[hi] || d.stub != st.dirStub[hi] {
				a.violate("mirror", stage, iter,
					"half %v: record (conn=%d local=%d unc=%v stub=%v) != mirrors (%d %d %v %v)",
					h, d.connectedID, d.localID, d.uncertain, d.stub,
					st.dirConnID[hi], st.dirLocalID[hi], st.dirUnc[hi], st.dirStub[hi])
			}
			if d.connectedID < 0 || ix.asnOf[d.connectedID] != d.connected {
				a.violate("mirror", stage, iter,
					"half %v: connected %d not interned as id %d", h, d.connected, d.connectedID)
			}
			if (d.localID >= 0) != !d.local.IsZero() ||
				(d.localID >= 0 && ix.asnOf[d.localID] != d.local) {
				a.violate("mirror", stage, iter,
					"half %v: local %d vs intern id %d", h, d.local, d.localID)
			}
		}
		a.check()
		src, iok := st.indirect[h]
		if si := st.indirectSrc[hi]; iok != (si >= 0) {
			a.violate("mirror", stage, iter,
				"half %v: indirect map present=%v but indirectSrc=%d", h, iok, si)
		} else if iok && si != st.halfIdx(src) {
			a.violate("mirror", stage, iter,
				"half %v: indirectSrc=%d but association names %v (idx %d)",
				h, si, src, st.halfIdx(src))
		}
		// Committed-mapping mirror: mapID must agree with mapping().
		a.check()
		var got inet.ASN
		if id := ix.mapID[hi]; id >= 0 {
			got = ix.asnOf[id]
		}
		if want := st.mapping(h); got != want {
			a.violate("mirror", stage, iter,
				"half %v: mapID view says %d, mapping() says %d", h, got, want)
		}
		if hi&1 == 0 {
			ai := hi >> 1
			a.check()
			if st.severedIdx[ai] != st.severed[st.addrs[ai]] {
				a.violate("mirror", stage, iter,
					"addr %v: severedIdx=%v but severed map says %v",
					st.addrs[ai], st.severedIdx[ai], st.severed[st.addrs[ai]])
			}
		}
	}
	// Maintained sorted direct index vs a from-scratch collection.
	if !st.cfg.DisableIncremental {
		a.check()
		got := st.sortedDirectIdxs()
		want := make([]int32, 0, len(st.direct))
		for h := range st.direct {
			want = append(want, st.halfIdx(h))
		}
		slices.Sort(want)
		if !slices.Equal(got, want) {
			a.violate("mirror", stage, iter,
				"maintained direct index has %d entries, authoritative map %d (or order diverges)",
				len(got), len(want))
		}
	}
}

// auditMemoIP2AS re-resolves memoised IP→AS entries through the
// underlying lookup source: a memo hit must be exactly what a direct
// Chain/Table lookup returns. The sources are frozen for the run, so
// divergence means the memo was corrupted, not that the source moved.
func (st *runState) auditMemoIP2AS(stage string, iter int) {
	a := st.auditor
	stride, off := a.stride()
	keys := make([]inet.Addr, 0, len(st.ip2as.m))
	for addr := range st.ip2as.m {
		keys = append(keys, addr)
	}
	slices.Sort(keys)
	for i := int(off); i < len(keys); i += int(stride) {
		addr := keys[i]
		a.check()
		hit := st.ip2as.m[addr]
		asn, ok := st.ip2as.src.Lookup(addr)
		if hit.asn != asn || hit.ok != ok {
			a.violate("ip2as-memo", stage, iter,
				"addr %v memoised as (%d,%v), source says (%d,%v)", addr, hit.asn, hit.ok, asn, ok)
		}
	}
}

// auditBacking checks that every surviving indirect association and
// every committed override is backed by a live inference record, and —
// outside the WholeInterfaceUpdates ablation, whose mirrored commits
// deliberately overwrite across halves — that override values equal the
// backing inference's connected AS. These are whole-map walks; they are
// cheap relative to elections, so Sampled mode runs them in full.
func (st *runState) auditBacking(stage string, iter int) {
	a := st.auditor
	for h, src := range st.indirect {
		a.check()
		if si := st.halfIdx(src); si < 0 || st.dirConnID[si] < 0 {
			a.violate("backing", stage, iter,
				"indirect record on %v names source %v, which carries no direct inference", h, src)
		}
	}
	for h, asn := range st.overrides {
		a.check()
		if d, ok := st.direct[h]; ok {
			if !st.cfg.WholeInterfaceUpdates && asn != d.connected {
				a.violate("backing", stage, iter,
					"override on %v is %d but its direct inference says %d", h, asn, d.connected)
			}
			continue
		}
		if src, ok := st.indirect[h]; ok {
			if d, ok := st.direct[src]; ok {
				if !st.cfg.WholeInterfaceUpdates && asn != d.connected {
					a.violate("backing", stage, iter,
						"override on %v is %d but its backing inference says %d", h, asn, d.connected)
				}
				continue
			}
		}
		if st.cfg.WholeInterfaceUpdates {
			if _, ok := st.direct[h.Opposite()]; ok {
				continue
			}
		}
		a.violate("backing", stage, iter,
			"override on %v (%d) survives with no backing inference record", h, asn)
	}
}

// auditElections is the first-principles re-election sweep: for each
// (sampled) eligible half it recounts the §4.4.1 election from the
// committed mappings — bypassing the memo — and checks
//
//   - election-memo: a memo entry still marked valid must equal the
//     fresh election (a stale-valid entry is exactly a missed
//     markDirtyReaders, i.e. a dirty-set soundness hole);
//   - add-fixpoint (add-step boundaries): no half the step left
//     uninferred would pass the direct-inference test — the dirty-set
//     scan really did reach every half whose inputs changed;
//   - retention (remove-step boundaries): every surviving non-stub
//     direct inference still satisfies the §4.5 criterion.
func (st *runState) auditElections(stage string, iter int) {
	a, ix := st.auditor, &st.idx
	stride, off := a.stride()
	for k := off; k < int32(len(ix.halvesIdx)); k += stride {
		hi := ix.halvesIdx[k]
		fresh := st.electNeighborAS(hi, &a.sc)
		if !st.cfg.DisableIncremental && ix.electValid[hi] {
			a.check()
			if cached := ix.electCache[hi]; cached != fresh {
				a.violate("election-memo", stage, iter,
					"half %v: memo (org=%d conn=%d votes=%d) != fresh (org=%d conn=%d votes=%d)",
					st.halfAt(hi), cached.winnerOrg, cached.connected, cached.votes,
					fresh.winnerOrg, fresh.connected, fresh.votes)
			}
		}
		switch {
		case stage == auditStageAdd && !st.cfg.SinglePass:
			if st.dirConnID[hi] < 0 && !st.inferredOnce[hi] {
				a.check()
				if d, ok := st.scanHalfElect(hi, fresh); ok {
					a.violate("add-fixpoint", stage, iter,
						"half %v would still be inferred (connected %d) after the add step converged",
						st.halfAt(hi), d.connected)
				}
			}
		case stage == auditStageRemove && !st.cfg.DisableRemoveStep:
			if connID := st.dirConnID[hi]; connID >= 0 && !st.dirStub[hi] {
				a.check()
				if !st.stillSupportedElect(fresh, connID) {
					a.violate("retention", stage, iter,
						"half %v retains a direct inference (connected %d) that fails the §4.5 criterion",
						st.halfAt(hi), ix.asnOf[connID])
				}
			}
		}
	}
}

// auditPartitionInvariants cross-checks the component decomposition of
// a partitioned run (DESIGN.md §12) on a standalone auditor whose
// report is merged with the per-component reports:
//
//   - partition-cover: the component address sets are an exhaustive,
//     disjoint cover of the observed universe, and every global
//     adjacency landed in exactly one component — with disjointness,
//     equal totals prove each component's neighbour sets (every
//     election input and reverse dependency) are exactly the global
//     ones restricted to the component, i.e. no election input crosses
//     a component boundary.
//   - partition-closure: the §4.2 other-side heuristic computed inside
//     a component equals the global computation for every (sampled)
//     observed address — the component universe contains every /30
//     blockmate the heuristic can consult.
//   - partition-hash: the per-component state fingerprints recompose to
//     the global fingerprint the monolithic stopping rule would have
//     seen at the stop iteration — for replayed components this doubles
//     as the replay-determinism check.
func auditPartitionInvariants(pa *runAuditor, ev *Evidence, runs []*compRun) {
	pa.report.Steps++

	covered := 0
	adjTotal := 0
	multi := make(map[inet.Addr]bool)
	for ci, c := range runs {
		adjTotal += len(c.ev.Adjacencies)
		for a := range c.ev.AllAddrs {
			pa.check()
			if !ev.AllAddrs.Contains(a) {
				pa.violate("partition-cover", auditStageFinal, 0,
					"component %d contains %v, which is not in the observed universe", ci, a)
				continue
			}
			if multi[a] {
				pa.violate("partition-cover", auditStageFinal, 0,
					"address %v appears in more than one component", a)
				continue
			}
			multi[a] = true
			covered++
		}
	}
	pa.check()
	if covered != len(ev.AllAddrs) {
		pa.violate("partition-cover", auditStageFinal, 0,
			"components cover %d of %d observed addresses", covered, len(ev.AllAddrs))
	}
	pa.check()
	if adjTotal != len(ev.Adjacencies) {
		pa.violate("partition-cover", auditStageFinal, 0,
			"components hold %d of %d adjacencies", adjTotal, len(ev.Adjacencies))
	}

	stride, off := pa.stride()
	for ci, c := range runs {
		for k := off; k < int32(len(c.st.addrs)); k += stride {
			a := c.st.addrs[k]
			local, observed := c.st.otherSide[a]
			if !observed {
				continue // universe node outside the observed set: no §4.2 pairing
			}
			pa.check()
			if global := inet.InferOtherSide(a, ev.AllAddrs); global.Other != local {
				pa.violate("partition-closure", auditStageFinal, 0,
					"component %d other side of %v is %v locally, %v globally",
					ci, a, local, global.Other)
			}
		}
	}

	var sum, want uint64
	for ci, c := range runs {
		pa.check()
		if c.preStub != c.wantAtT {
			pa.violate("partition-hash", auditStageFinal, 0,
				"component %d fingerprint %#x diverges from its traced stop-state %#x (replayed=%v)",
				ci, c.preStub, c.wantAtT, c.replayed)
		}
		sum += c.preStub
		want += c.wantAtT
	}
	pa.check()
	if sum != want {
		pa.violate("partition-hash", auditStageFinal, 0,
			"component fingerprints sum to %#x, global stopping rule saw %#x", sum, want)
	}
}
