package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"mapit/internal/audit"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Component-partitioned parallel fixpoint (DESIGN.md §12).
//
// The §4.4–§4.6 add/remove loop only couples interface halves through
// two channels: the §4.3 neighbour sets (every election input and every
// reverse dependency follows a trace adjacency) and the §4.2 other-side
// pairing (InferOtherSide consults and returns only addresses inside
// the queried address's aligned four-address /30 block). Organisations
// and IXP membership pool *values* (ASNs, flags), never addresses, so
// they create no coupling between halves. Unioning addresses that (a)
// appear in one adjacency or (b) share an aligned /30 block therefore
// yields components that are provably closed under every read and
// write the fixpoint performs: each component can run its own add/
// remove loop on its own sub-evidence and the union of the final
// states is exactly the monolithic final state.
//
// The only global entanglement is the §4.6 stopping rule, which hashes
// the whole state. The per-entry fingerprints are value-space (halves,
// ASNs, addresses — never intern ids), so the monolithic fingerprint
// is the sum of the component fingerprints; the driver replays the
// monolithic rule over the recorded per-component hash traces to find
// the global stop iteration T, then reconstructs the monolithic
// diagnostics from per-iteration deltas (see mergeDiagnostics).

// PartitionInfo describes the component decomposition of a run.
// Attached to Result.Partition; excluded from differential comparison
// (it describes the schedule, not the inference).
type PartitionInfo struct {
	// Components is the number of closed inference components the
	// evidence split into (0 when the decomposition was skipped; see
	// Fallback).
	Components int
	// Sizes is the per-component observed-address count in execution
	// priority order (largest first).
	Sizes []int
	// Iterations is the per-component executed iteration count, aligned
	// with Sizes. Components stop at their own settle point, so entries
	// differ from the global Diagnostics.Iterations.
	Iterations []int
	// GiantShare is the fraction of observed addresses in the largest
	// component.
	GiantShare float64
	// SizeHistogram buckets components by size: entry k counts
	// components with 2^k ≤ observed addresses < 2^(k+1).
	SizeHistogram []int
	// Replays counts components re-executed from scratch to align with
	// the global stopping rule — reachable only through a hash-sum
	// collision or a cycling (never-settling) component.
	Replays int
	// Fallback names why the monolithic engine ran instead: "" when the
	// partitioned scheduler ran, "stage-hooks" when Config.OnStage
	// forced global snapshots, "single-component" when the evidence did
	// not decompose. (A DisablePartition run carries no PartitionInfo.)
	Fallback string
}

// unionFind is a classic weighted union-find with path halving.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// partitionEvidence splits the evidence into closed inference
// components: addresses are unioned along every trace adjacency (the
// §4.3 channel) and across every shared aligned /30 block (the §4.2
// channel — InferOtherSide never consults or returns an address
// outside the queried block, so same-block union also captures two
// observed addresses claiming one unobserved other side). The node
// universe is the observed set plus any adjacency endpoint, so
// caller-built Evidence with endpoints outside AllAddrs still
// partitions soundly. Returns one sub-Evidence per component in
// scheduling order: observed-address count descending, minimum address
// ascending on ties. Component adjacency slices preserve the global
// (sorted) order, so every per-component derived structure is the
// restriction of its global counterpart. Returns nil when the evidence
// is fewer than two components — the caller falls back to the
// monolithic engine, so no sub-evidence is materialised.
func partitionEvidence(ev *Evidence) []*Evidence {
	nodes := make([]inet.Addr, 0, len(ev.AllAddrs))
	for a := range ev.AllAddrs {
		nodes = append(nodes, a)
	}
	for _, adj := range ev.Adjacencies {
		if !ev.AllAddrs.Contains(adj.First) {
			nodes = append(nodes, adj.First)
		}
		if !ev.AllAddrs.Contains(adj.Second) {
			nodes = append(nodes, adj.Second)
		}
	}
	slices.Sort(nodes)
	nodes = slices.Compact(nodes)
	// Nodes are sorted and unique, so binary search stands in for an
	// address→index map — the map's build cost used to dominate the
	// whole sweep on single-component evidence.
	index := func(a inet.Addr) int32 {
		i, _ := slices.BinarySearch(nodes, a)
		return int32(i)
	}

	uf := newUnionFind(len(nodes))
	// §4.2 closure: all universe addresses in one aligned /30 block.
	// Consecutive entries of the sorted slice suffice — block members
	// are adjacent in address order.
	for i := 1; i < len(nodes); i++ {
		if nodes[i]>>2 == nodes[i-1]>>2 {
			uf.union(int32(i-1), int32(i))
		}
	}
	// §4.3 closure: both endpoints of every adjacency.
	for _, adj := range ev.Adjacencies {
		uf.union(index(adj.First), index(adj.Second))
	}

	// Dense component ids, assigned in sorted-node order so component 0
	// holds the smallest root address (deterministic regardless of the
	// union order above).
	compOf := make([]int32, len(nodes))
	rootComp := make(map[int32]int32)
	nComp := 0
	for i := range nodes {
		r := uf.find(int32(i))
		c, ok := rootComp[r]
		if !ok {
			c = int32(nComp)
			rootComp[r] = c
			nComp++
		}
		compOf[i] = c
	}
	// The common adversarial shape — one giant connected component —
	// exits here, before any sub-evidence is materialised: a fallback
	// run pays only the union-find sweep, never an evidence copy.
	if nComp < 2 {
		return nil
	}

	comps := make([]*Evidence, nComp)
	adjCount := make([]int, nComp)
	adjComp := make([]int32, len(ev.Adjacencies))
	for i, adj := range ev.Adjacencies {
		c := compOf[index(adj.First)] // == compOf of Second: they are unioned
		adjComp[i] = c
		adjCount[c]++
	}
	for c := range comps {
		comps[c] = &Evidence{
			AllAddrs:    make(inet.AddrSet),
			Adjacencies: make([]trace.Adjacency, 0, adjCount[c]),
		}
	}
	for i, a := range nodes {
		if ev.AllAddrs.Contains(a) {
			comps[compOf[i]].AllAddrs.Add(a)
		}
	}
	for i, adj := range ev.Adjacencies {
		comps[adjComp[i]].Adjacencies = append(comps[adjComp[i]].Adjacencies, adj)
	}

	// Scheduling order: largest observed-address count first, minimum
	// address breaking ties. Component ids were assigned in ascending
	// min-address order, so a stable sort on size alone is exactly that
	// tie-break.
	slices.SortStableFunc(comps, func(a, b *Evidence) int {
		switch {
		case len(a.AllAddrs) > len(b.AllAddrs):
			return -1
		case len(a.AllAddrs) < len(b.AllAddrs):
			return 1
		}
		return 0
	})
	return comps
}

// iterRec records the externally observable deltas of one component
// iteration: the post-iteration state fingerprint plus every
// pass-count and resolution-counter delta mergeDiagnostics needs to
// reconstruct the monolithic diagnostics.
type iterRec struct {
	hash                    uint64
	addPasses, removePasses int
	// quietDual is the DualSameAS delta of the iteration's final
	// (quiet) add pass — the component's stable same-organisation dual
	// count, which the monolithic run re-counts once per global add
	// pass even after this component stops changing.
	quietDual int
	dualSame, dualResolved, divergent int
	inverse, uncertain, demoted       int
}

// compRun is one component's execution.
type compRun struct {
	ev      *Evidence
	cfg     Config
	st      *runState
	hash0   uint64
	recs    []iterRec
	settled bool
	// preStub / wantAtT support the partition-hash audit invariant:
	// the component fingerprint before the stub phase, and the traced
	// fingerprint at the global stop iteration it must equal.
	preStub  uint64
	wantAtT  uint64
	replayed bool
}

// fixpointTraced runs the component's own add/remove loop, recording
// one iterRec per iteration, until the component settles, MaxIterations
// is reached, or — under SinglePass — after the single add step. The
// settle test is the one-step case of the monolithic §4.6 rule: when an
// iteration's post-state fingerprint equals its pre-state fingerprint,
// the state did not move, and since an iteration is a deterministic
// function of the state it starts from, every subsequent iteration
// repeats the last one verbatim — covering both the plain no-op (one
// quiet add pass, one quiet remove pass) and the busy period-1 cycle
// where the add step keeps installing an inference the remove step
// keeps taking back. Longer cycles (state repeats a non-adjacent
// predecessor) do not settle; they run to the cap and are aligned by
// replay if the global stop lands mid-cycle.
func (st *runState) fixpointTraced() (hash0 uint64, recs []iterRec, settled bool) {
	cfg := st.cfg
	hash0 = st.stateHash()
	prev := hash0
	for iter := 1; iter <= cfg.maxIterations(); iter++ {
		st.diag.Iterations = iter
		before := st.diag
		st.resetInferredOnce()
		st.addStep(false)
		st.auditCheckpoint(auditStageAdd, iter)
		if !cfg.SinglePass {
			st.removeStep()
			st.auditCheckpoint(auditStageRemove, iter)
		}
		rec := iterRec{
			hash:         st.stateHash(),
			addPasses:    st.diag.AddPasses - before.AddPasses,
			removePasses: st.diag.RemovePasses - before.RemovePasses,
			quietDual:    st.lastPassDual,
			dualSame:     st.diag.DualSameAS - before.DualSameAS,
			dualResolved: st.diag.DualResolved - before.DualResolved,
			divergent:    st.diag.DivergentOtherSides - before.DivergentOtherSides,
			inverse:      st.diag.InverseDiscarded - before.InverseDiscarded,
			uncertain:    st.diag.UncertainPairs - before.UncertainPairs,
			demoted:      st.diag.Demoted - before.Demoted,
		}
		recs = append(recs, rec)
		if cfg.SinglePass {
			return hash0, recs, true
		}
		if rec.hash == prev {
			return hash0, recs, true
		}
		prev = rec.hash
	}
	return hash0, recs, false
}

// hashAt returns the component fingerprint after k global iterations:
// the recorded hash while the component was active, the (constant)
// settle-point hash afterwards.
func (c *compRun) hashAt(k int) uint64 {
	switch {
	case k <= 0:
		return c.hash0
	case k <= len(c.recs):
		return c.recs[k-1].hash
	default:
		return c.recs[len(c.recs)-1].hash
	}
}

// recAt returns the component's iteration-k record. Past the settle
// point the last iteration repeats verbatim (settling means the state
// stopped moving, and an iteration is a deterministic function of its
// start state), so the extension record is simply the last one: for a
// plain no-op that is one quiet add pass whose dual count equals
// quietDual; for a busy period-1 cycle it is the full recurring
// mutation-and-revert iteration.
func (c *compRun) recAt(k int) iterRec {
	if k <= len(c.recs) {
		return c.recs[k-1]
	}
	return c.recs[len(c.recs)-1]
}

// stateAligned reports whether the component's current state is the
// state after T global iterations: settled components froze at their
// settle point (their state covers every T from one before it), capped
// or cycling components are only aligned if T is exactly where they
// stopped.
func (c *compRun) stateAligned(T int) bool {
	if c.settled {
		return T >= len(c.recs)-1
	}
	return T == len(c.recs)
}

// alignIterations replays the monolithic §4.6 stopping rule over the
// component hash traces: the global fingerprint after k iterations is
// the sum of the component fingerprints (entry hashes are value-space
// and the components' entry sets are disjoint), so the monolithic run
// would stop at the first k whose sum repeats a previous sum.
func alignIterations(runs []*compRun, maxIter int) int {
	seen := make(map[uint64]struct{}, maxIter+1)
	var s uint64
	for _, c := range runs {
		s += c.hash0
	}
	seen[s] = struct{}{}
	for k := 1; k <= maxIter; k++ {
		s = 0
		for _, c := range runs {
			s += c.hashAt(k)
		}
		if _, repeated := seen[s]; repeated {
			return k
		}
		seen[s] = struct{}{}
	}
	return maxIter
}

// replayComponent re-executes a component from scratch for exactly T
// iterations. Only needed when the global stop iteration T falls
// before the component's recorded trajectory covers it — a hash-sum
// collision or a cycling component — so this path is pathological, not
// a steady-state cost. The replayed state carries the component's
// audit report (it audited the execution that produced the output).
func replayComponent(c *compRun, T int) {
	st := newRunState(&c.cfg, c.ev)
	for iter := 1; iter <= T; iter++ {
		st.diag.Iterations = iter
		st.resetInferredOnce()
		st.addStep(false)
		st.auditCheckpoint(auditStageAdd, iter)
		if c.cfg.SinglePass {
			break
		}
		st.removeStep()
		st.auditCheckpoint(auditStageRemove, iter)
	}
	c.st = st
	c.replayed = true
}

// mergeDiagnostics reconstructs the monolithic diagnostics from the
// component traces. Build-time counters are plain sums over disjoint
// address sets. Loop counters follow from how a monolithic iteration k
// interleaves the components: its add step runs max_i a_i(k) passes
// (a settled or early-converged component simply has an empty dirty
// set for the surplus passes), its remove step max_i r_i(k) passes,
// and every resolution counter is a sum of per-component deltas —
// except DualSameAS, which re-counts each component's stable
// same-organisation duals once per surplus global pass (the rule
// counts retained duals every pass, changed or not), hence the
// quietDual top-up.
func mergeDiagnostics(runs []*compRun, T int, totalAddrs int) Diagnostics {
	var d Diagnostics
	n31 := 0
	for _, c := range runs {
		d.Interfaces += c.st.diag.Interfaces
		d.EligibleForward += c.st.diag.EligibleForward
		d.EligibleBackward += c.st.diag.EligibleBackward
		d.BothNsOverlap += c.st.diag.BothNsOverlap
		n31 += c.st.n31
	}
	if totalAddrs > 0 {
		d.Slash31Fraction = float64(n31) / float64(totalAddrs)
	}
	d.Iterations = T
	for k := 1; k <= T; k++ {
		maxA, maxR := 0, 0
		for _, c := range runs {
			r := c.recAt(k)
			maxA = max(maxA, r.addPasses)
			maxR = max(maxR, r.removePasses)
		}
		d.AddPasses += maxA
		d.RemovePasses += maxR
		for _, c := range runs {
			r := c.recAt(k)
			d.DualSameAS += r.dualSame + (maxA-r.addPasses)*r.quietDual
			d.DualResolved += r.dualResolved
			d.DivergentOtherSides += r.divergent
			d.InverseDiscarded += r.inverse
			d.UncertainPairs += r.uncertain
			d.Demoted += r.demoted
		}
	}
	return d
}

// forEachComponent drains [0, n) across a pool of worker goroutines
// pulling from a shared atomic queue: the next idle worker takes the
// next component, so islands backfill while large components are still
// running. Indexes are handed out in order, which with the largest-
// first component ordering is the scheduling policy of DESIGN.md §12.
func forEachComponent(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// runPartitioned executes the component-partitioned engine over the
// evidence. It returns (nil, info) when the run must fall back to the
// monolithic engine: partitioning disabled, stage hooks requested
// (snapshots are defined on the global interleaving), or fewer than
// two components. Outputs are byte-identical to the monolithic engine
// for every worker count.
func runPartitioned(cfg *Config, ev *Evidence) (*Result, *PartitionInfo) {
	if cfg.DisablePartition {
		return nil, nil
	}
	if cfg.OnStage != nil {
		return nil, &PartitionInfo{Fallback: "stage-hooks"}
	}

	ctx := context.Background()
	var comps []*Evidence
	pprof.Do(ctx, pprof.Labels("mapit_phase", "partition"), func(context.Context) {
		comps = partitionEvidence(ev)
	})
	if comps == nil {
		info := &PartitionInfo{Fallback: "single-component"}
		if n := len(ev.AllAddrs); n > 0 {
			info.Components = 1
			info.Sizes = []int{n}
			info.GiantShare = 1
		}
		return nil, info
	}

	// Execute every component to its own stopping rule. The largest
	// component keeps the configured worker count for its internal
	// parallelChunks fan-out (it dominates the wall clock); islands run
	// their scans serially and instead fill the scheduler's workers.
	runs := make([]*compRun, len(comps))
	var (
		T       int
		replays int
		results []*Result
		probes  [][]ProbeSuggestion
	)
	pprof.Do(ctx, pprof.Labels("mapit_phase", "fixpoint"), func(context.Context) {
		forEachComponent(cfg.workers(), len(comps), func(i int) {
			c := &compRun{ev: comps[i], cfg: *cfg}
			if i > 0 {
				c.cfg.Workers = 1
			}
			c.st = newRunState(&c.cfg, c.ev)
			c.hash0, c.recs, c.settled = c.st.fixpointTraced()
			runs[i] = c
		})

		// Align with the global stopping rule, replaying the (in
		// practice nonexistent) components whose state ran past it.
		T = 1
		if !cfg.SinglePass {
			T = alignIterations(runs, cfg.maxIterations())
		}
		for _, c := range runs {
			c.wantAtT = c.hashAt(T)
			if !c.stateAligned(T) {
				replayComponent(c, T)
				replays++
			}
			c.preStub = c.st.stateHash()
		}

		// §4.8 stub heuristic and per-component output, overlapped the
		// same way as the main loop.
		results = make([]*Result, len(runs))
		probes = make([][]ProbeSuggestion, len(runs))
		forEachComponent(cfg.workers(), len(runs), func(i int) {
			st := runs[i].st
			st.stubHeuristic()
			st.auditCheckpoint(auditStageFinal, 0)
			results[i] = st.result()
			probes[i] = st.suggestProbes()
		})
	})

	r := &Result{}
	pprof.Do(ctx, pprof.Labels("mapit_phase", "merge"), func(context.Context) {
		mergeResults(cfg, ev, runs, results, probes, r, T)
	})
	r.Partition = partitionInfo(ev, runs, replays)
	return r, nil
}

// mergeResults combines the per-component outputs into the monolithic
// Result: concatenate and re-sort the disjoint inference and probe
// lists with the engine's own comparators (addresses are disjoint
// across components, so the order is total and deterministic),
// reconstruct the diagnostics, and merge the audit reports.
func mergeResults(cfg *Config, ev *Evidence, runs []*compRun,
	results []*Result, probes [][]ProbeSuggestion, r *Result, T int) {
	total, ptotal := 0, 0
	for i := range results {
		total += len(results[i].Inferences)
		ptotal += len(probes[i])
	}
	r.Inferences = make([]Inference, 0, total)
	for _, res := range results {
		r.Inferences = append(r.Inferences, res.Inferences...)
	}
	slices.SortFunc(r.Inferences, inferenceCmp)
	if ptotal > 0 {
		r.ProbeSuggestions = make([]ProbeSuggestion, 0, ptotal)
		for _, p := range probes {
			r.ProbeSuggestions = append(r.ProbeSuggestions, p...)
		}
		slices.SortFunc(r.ProbeSuggestions, probeCmp)
	}
	r.Diag = mergeDiagnostics(runs, T, len(ev.AllAddrs))
	for _, c := range runs {
		r.Diag.StubInferences += c.st.diag.StubInferences
	}
	if cfg.Audit.Enabled() {
		rep := audit.NewReport(cfg.Audit.Mode)
		pa := newRunAuditor(cfg.Audit)
		auditPartitionInvariants(pa, ev, runs)
		for _, c := range runs {
			rep.Merge(c.st.auditor.report, cfg.Audit.Cap())
		}
		rep.Merge(pa.report, cfg.Audit.Cap())
		rep.Sort()
		r.Audit = rep
		r.Diag.AuditViolations = rep.Total()
	}
}

// partitionInfo assembles the decomposition observability record.
func partitionInfo(ev *Evidence, runs []*compRun, replays int) *PartitionInfo {
	info := &PartitionInfo{Components: len(runs), Replays: replays}
	for _, c := range runs {
		sz := len(c.ev.AllAddrs)
		info.Sizes = append(info.Sizes, sz)
		info.Iterations = append(info.Iterations, len(c.recs))
		bucket := bits.Len(uint(sz)) // size 0 → bucket 0
		if bucket > 0 {
			bucket--
		}
		for len(info.SizeHistogram) <= bucket {
			info.SizeHistogram = append(info.SizeHistogram, 0)
		}
		info.SizeHistogram[bucket]++
	}
	if len(ev.AllAddrs) > 0 {
		info.GiantShare = float64(info.Sizes[0]) / float64(len(ev.AllAddrs))
	}
	return info
}

// String renders the one-line schedule summary mapit -stats prints.
func (p *PartitionInfo) String() string {
	if p == nil {
		return "off"
	}
	if p.Fallback != "" {
		return "fallback=" + p.Fallback
	}
	var b strings.Builder
	fmt.Fprintf(&b, "components=%d giant_share=%.3f replays=%d iterations=%v size_hist=[",
		p.Components, p.GiantShare, p.Replays, p.Iterations)
	for k, n := range p.SizeHistogram {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "2^%d:%d", k, n)
	}
	b.WriteByte(']')
	return b.String()
}
