package core

import (
	"fmt"
	"testing"

	"mapit/internal/trace"
)

// TestArtifactResilience reproduces the paper's §5.7 anecdote: the
// interface 4.68.110.186 (AS3356 space) has 141 forward neighbours, 113
// from AS701, 5 anomalously from AS3356 itself (transient routing or
// load balancing), and the rest elsewhere; the overwhelming evidence
// still yields the correct AS3356<->AS701 inference.
func TestArtifactResilience(t *testing.T) {
	ip2as := table(
		"4.0.0.0/8=3356",    // Level 3
		"137.0.0.0/8=701",   // Verizon/MCI
		"198.71.0.0/16=702", // bystander
	)
	x := "4.68.110.186"
	var traces []trace.Trace
	mk := func(octet3, octet4 int, prefix string) string {
		return fmt.Sprintf("%s.%d.%d", prefix, octet3, octet4)
	}
	n := 0
	for i := 0; i < 113; i++ { // AS701 neighbours
		traces = append(traces, tr(mk(i/200, 1+i%200, "137.0"), x, mk(1+i/200, 1+i%200, "137.1")))
		n++
	}
	for i := 0; i < 5; i++ { // anomalous AS3356 neighbours
		traces = append(traces, tr(mk(i, 9, "4.69"), x, mk(i, 21, "4.70")))
	}
	for i := 0; i < 23; i++ { // scattering of other/bystander addresses
		traces = append(traces, tr(mk(i, 5, "198.71"), x, mk(i, 33, "198.71")))
	}
	r, err := Run(sanitized(traces...), Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := findDirect(r, x, Forward)
	if !ok {
		t.Fatal("no forward inference despite overwhelming evidence")
	}
	if inf.Local != 3356 || inf.Connected != 701 {
		t.Errorf("link = %v<->%v; want 3356<->701", inf.Local, inf.Connected)
	}
}

// TestRemoveCascade: discarding a direct inference must drop the
// indirect inference it induced on its other side, including its IP2AS
// update, so downstream elections revert (§4.4.2, Alg 3).
func TestRemoveCascade(t *testing.T) {
	ip2as := table(
		"20.100.0.0/16=100",
		"20.101.0.0/16=200",
		"20.102.0.0/16=300",
	)
	// i gets a forward inference supported by two AS300-space
	// neighbours; those neighbours' backward halves are later re-mapped
	// (different orgs), the inference is retracted, and with it the
	// other-side record of i.
	i := "20.100.0.9" // /30 host, other side .10
	os := "20.100.0.10"
	s := sanitized(
		tr(i, "20.102.1.1"),
		tr(i, "20.102.2.1"),
		// Re-map 20.102.1.1_b toward AS200 and 20.102.2.1_b toward an
		// unannounced org, killing the plurality on i_f.
		tr("20.101.0.1", "20.102.1.1"),
		tr("20.101.0.2", "20.102.1.1"),
		tr("21.0.0.1", "20.102.2.1"),
		tr("21.0.0.2", "20.102.2.1"),
		// Observe the other side so its record would be emitted if the
		// inference survived.
		tr(os, "20.100.5.1"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDirect(r, i, Forward); ok {
		t.Error("retracted inference still present")
	}
	for _, inf := range r.Inferences {
		if inf.Addr == ip(os) && inf.Indirect {
			t.Errorf("orphaned indirect record: %+v", inf)
		}
	}
}

// TestOscillationTerminates: an inference that is removed and re-added
// every iteration (the §4.6 scenario) must still terminate via
// repeated-state detection, well under the iteration cap.
func TestOscillationTerminates(t *testing.T) {
	ip2as := table(
		"62.115.0.0/16=1299",
		"4.68.0.0/16=3356",
		"91.200.0.0/16=51159",
	)
	// The Fig 4 dual-inference scenario oscillates: the backward
	// inference is re-made each add step and re-dropped each dual fix.
	x := "4.68.110.186"
	s := sanitized(
		tr("62.115.0.1", x, "91.200.0.1"),
		tr("62.115.0.5", x, "91.200.0.5"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag.Iterations >= 10 {
		t.Errorf("oscillation not detected: %d iterations", r.Diag.Iterations)
	}
	if _, ok := findDirect(r, x, Backward); ok {
		t.Error("final state must exclude the oscillating backward inference")
	}
}

// TestIndirectSurvivesDemotion: a demoted direct inference backed by a
// direct inference on its other side survives as an indirect record
// (§4.5: "initially change the inference from a direct inference to an
// indirect inference").
func TestIndirectSurvivesDemotion(t *testing.T) {
	ip2as := table(
		"198.71.0.0/16=11537",
		"192.73.48.0/24=3807",
	)
	a1 := "198.71.46.196"
	b1 := "192.73.48.124"
	ob1 := "192.73.48.125"
	s := sanitized(
		tr("198.71.45.1", a1, b1),
		tr("198.71.45.2", a1, "192.73.48.120"),
		tr("198.71.45.3", "198.71.46.217", b1),
		// ob1 (other side of b1) gets its own forward inference.
		tr(ob1, "198.71.44.1"),
		tr(ob1, "198.71.44.2"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever happened to b1's own backward inference under the
	// remove/inverse machinery, ob1's forward inference must stand and
	// must carry b1 as an indirect record or direct inference.
	if _, ok := findDirect(r, ob1, Forward); !ok {
		t.Fatal("ob1 forward inference missing")
	}
	foundB1 := false
	for _, inf := range r.Inferences {
		if inf.Addr == ip(b1) {
			foundB1 = true
		}
	}
	if !foundB1 {
		t.Error("b1 lost entirely despite the surviving other-side inference")
	}
}

// TestNoInferenceOnSpecialAddrs: private/shared addresses never receive
// inferences, and never count as neighbours (§4.3).
func TestNoInferenceOnSpecialAddrs(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200", "192.168.0.0/16=999")
	s := sanitized(
		tr("192.168.1.1", "20.100.0.9"),
		tr("192.168.1.2", "20.100.0.9"),
		tr("20.100.0.9", "192.168.2.1"),
		tr("20.100.0.9", "192.168.2.2"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Inferences) != 0 {
		t.Errorf("inferences from private-only adjacency: %v", r.Inferences)
	}
}

// TestMaxIterationsCap: the safety cap bounds pathological inputs.
func TestMaxIterationsCap(t *testing.T) {
	ip2as := table("62.115.0.0/16=1299", "4.68.0.0/16=3356", "91.200.0.0/16=51159")
	s := sanitized(
		tr("62.115.0.1", "4.68.110.186", "91.200.0.1"),
		tr("62.115.0.5", "4.68.110.186", "91.200.0.5"),
	)
	r, err := Run(s, Config{IP2AS: ip2as, F: 0.5, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag.Iterations != 1 {
		t.Errorf("iterations = %d; want capped at 1", r.Diag.Iterations)
	}
}
