// Package baseline implements the comparison approaches of §5.6: the
// Simple heuristic (first address in a new AS is the link interface),
// the Convention heuristic (transit links are numbered from the
// provider), and the ITDK router-graph method (alias resolution +
// router-to-AS election). All three emit core.Inference records so the
// eval verifiers score them exactly like MAP-IT.
package baseline

import (
	"cmp"
	"slices"

	"mapit/internal/alias"
	"mapit/internal/as2org"
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/relation"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// dedupKey identifies one (interface, AS pair) claim.
type dedupKey struct {
	addr inet.Addr
	a, b inet.ASN
}

func key(addr inet.Addr, a, b inet.ASN) dedupKey {
	if a > b {
		a, b = b, a
	}
	return dedupKey{addr: addr, a: a, b: b}
}

type claimSet struct {
	seen map[dedupKey]bool
	out  []core.Inference
}

func newClaimSet() *claimSet { return &claimSet{seen: make(map[dedupKey]bool)} }

func (c *claimSet) add(addr inet.Addr, local, connected inet.ASN) {
	k := key(addr, local, connected)
	if c.seen[k] {
		return
	}
	c.seen[k] = true
	c.out = append(c.out, core.Inference{
		Addr:      addr,
		Local:     local,
		Connected: connected,
	})
}

func (c *claimSet) sorted() []core.Inference {
	slices.SortFunc(c.out, func(a, b core.Inference) int {
		if n := cmp.Compare(a.Addr, b.Addr); n != 0 {
			return n
		}
		if n := cmp.Compare(a.Local, b.Local); n != 0 {
			return n
		}
		return cmp.Compare(a.Connected, b.Connected)
	})
	return c.out
}

// resolver prepares an IP2AS source for a baseline pass: freeze it into
// its compiled form when it knows how, then memoise — every baseline
// resolves per adjacency, so each interface address recurs once per
// trace crossing it and all but the first resolution become map hits.
func resolver(ip2as core.IP2AS) core.IP2AS {
	if f, ok := ip2as.(core.Freezer); ok {
		f.Freeze()
	}
	return core.MemoIP2AS(ip2as)
}

// Simple implements the Simple heuristic: walk each trace; whenever two
// adjacent addresses map to different ASes, the first address in the new
// AS is declared the inter-AS link interface.
func Simple(s *trace.Sanitized, ip2as core.IP2AS) []core.Inference {
	ip2as = resolver(ip2as)
	claims := newClaimSet()
	for _, t := range s.Retained {
		for _, adj := range trace.Adjacencies(t, nil) {
			asA, okA := ip2as.Lookup(adj.First)
			asB, okB := ip2as.Lookup(adj.Second)
			if !okA || !okB || asA == asB {
				continue
			}
			claims.add(adj.Second, asB, asA)
		}
	}
	return claims.sorted()
}

// Convention refines Simple with the provider-address convention: when
// the two ASes have a transit relationship, the interface mapping to the
// provider is the link interface; peerings (and unknown pairs) fall back
// to Simple (§5.6: "there is no known heuristic for assigning addresses
// used on peering links").
func Convention(s *trace.Sanitized, ip2as core.IP2AS, rels *relation.Dataset,
	orgs *as2org.Orgs) []core.Inference {

	ip2as = resolver(ip2as)
	claims := newClaimSet()
	for _, t := range s.Retained {
		for _, adj := range trace.Adjacencies(t, nil) {
			asA, okA := ip2as.Lookup(adj.First)
			asB, okB := ip2as.Lookup(adj.Second)
			if !okA || !okB || asA == asB || orgs.SameOrg(asA, asB) {
				continue
			}
			switch rels.Rel(asA, asB) {
			case relation.Provider:
				// First address maps to the provider: the link is
				// numbered from its space, so the provider-space
				// address is the interface on the link.
				claims.add(adj.First, asA, asB)
			default:
				claims.add(adj.Second, asB, asA)
			}
		}
	}
	return claims.sorted()
}

// ITDKVariant selects the alias-resolution pipeline.
type ITDKVariant uint8

const (
	// ITDKMidar is the MIDAR+iffinder topology (the paper's more
	// accurate variant).
	ITDKMidar ITDKVariant = iota
	// ITDKKapar adds kapar's analytical completion (the paper's less
	// accurate variant).
	ITDKKapar
)

// String names the variant as in Fig 8.
func (v ITDKVariant) String() string {
	if v == ITDKKapar {
		return "ITDK-Kapar"
	}
	return "ITDK-MIDAR"
}

// ITDK implements the router-graph comparison: resolve aliases over the
// observed addresses, elect a router-to-AS assignment, then declare
// every traced adjacency crossing two routers in different ASes an
// inter-AS link, with the far ingress as the link interface.
func ITDK(w *topo.World, s *trace.Sanitized, ip2as core.IP2AS,
	variant ITDKVariant, seed int64) []core.Inference {

	techniques := []alias.Technique{alias.MIDAR, alias.IFFinder}
	if variant == ITDKKapar {
		techniques = append(techniques, alias.Kapar)
	}
	g := alias.Resolve(w, s.AllAddrs, seed, techniques...)
	routerAS := g.AssignAS(resolver(ip2as))

	claims := newClaimSet()
	for _, t := range s.Retained {
		for _, adj := range trace.Adjacencies(t, nil) {
			if g.SameRouter(adj.First, adj.Second) {
				continue
			}
			asA := routerAS[g.Find(adj.First)]
			asB := routerAS[g.Find(adj.Second)]
			if asA.IsZero() || asB.IsZero() || asA == asB {
				continue
			}
			claims.add(adj.Second, asB, asA)
		}
	}
	return claims.sorted()
}
