package baseline

import (
	"cmp"
	"slices"

	"mapit/internal/as2org"
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/relation"
	"mapit/internal/trace"
)

// BdrmapLite is a simplified reimplementation of the border-mapping
// approach of bdrmap (Luckie et al., IMC 2016), the contemporaneous
// system the paper names as head-to-head future work (§6). bdrmap infers
// the borders of the network hosting a traceroute vantage point: every
// outbound trace leaves the host network exactly once, so the last
// own-network hop and the first foreign hop bracket a border. This
// implementation keeps bdrmap's load-bearing ideas at interface
// granularity —
//
//   - anchor on traces from monitors inside the target network only;
//   - take the first hop mapping outside the target's organisation after
//     the last hop inside it as the far side of a border link;
//   - require corroboration (two distinct far-side sightings, or the
//     relationship data vouching that the neighbour is a customer);
//
// — and inherits its structural limitation: it says nothing about
// networks without a vantage point, which is exactly the gap MAP-IT
// closes (§2: "MAP-IT, unlike bdrmap, tries to identify inter-AS link
// interfaces between all connected ASes ... not just for directly
// connected networks").
func BdrmapLite(target inet.ASN, monitors map[string]bool, s *trace.Sanitized,
	ip2as core.IP2AS, rels *relation.Dataset, orgs *as2org.Orgs) []core.Inference {

	ip2as = resolver(ip2as)
	// First pass over the monitor traces: successor organisations per
	// address. bdrmap decides which router owns a boundary address with
	// alias resolution; the equivalent passive signal is whether an
	// address's successors all belong to one foreign organisation (then
	// it sits on the *neighbour's* router — a customer-space link) or
	// mix in own-organisation hops (then it is an internal interface and
	// the foreign hop after it is the border).
	succOrgs := make(map[inet.Addr]map[inet.ASN]bool)
	canonical := func(asn inet.ASN) inet.ASN { return orgs.Canonical(asn) }
	for _, t := range s.Retained {
		if !monitors[t.Monitor] {
			continue
		}
		for _, adj := range trace.Adjacencies(t, nil) {
			asn, ok := ip2as.Lookup(adj.Second)
			if !ok {
				continue
			}
			set := succOrgs[adj.First]
			if set == nil {
				set = make(map[inet.ASN]bool)
				succOrgs[adj.First] = set
			}
			set[canonical(asn)] = true
		}
	}
	targetOrg := canonical(target)
	onNeighbourRouter := func(a inet.Addr, far inet.ASN) bool {
		set := succOrgs[a]
		if len(set) == 0 {
			return false
		}
		for org := range set {
			if org != canonical(far) {
				return false
			}
		}
		return true
	}

	type claim struct {
		addr inet.Addr
		far  inet.ASN
	}
	votes := make(map[claim]int)
	for _, t := range s.Retained {
		if !monitors[t.Monitor] {
			continue
		}
		// Locate the boundary: the last responding hop inside the
		// target organisation followed by a responding hop outside it.
		lastInside := -1
		var lastInsideAddr inet.Addr
		for i, h := range t.Hops {
			if !h.Responded() {
				continue
			}
			asn, ok := ip2as.Lookup(h.Addr)
			if !ok {
				continue
			}
			if canonical(asn) == targetOrg {
				lastInside = i
				lastInsideAddr = h.Addr
				continue
			}
			if lastInside >= 0 && i == lastInside+1 {
				if onNeighbourRouter(lastInsideAddr, asn) {
					// Customer-space link: the target-mapped hop is the
					// neighbour's ingress interface on the border link.
					votes[claim{addr: lastInsideAddr, far: asn}]++
				} else {
					votes[claim{addr: h.Addr, far: asn}]++
				}
			}
			if lastInside >= 0 && i > lastInside+1 {
				break // past the border; later hops are beyond the neighbour
			}
		}
	}

	claims := newClaimSet()
	for c, n := range votes {
		// Corroboration: two sightings, or a relationship-confirmed
		// customer (bdrmap leans on the relationship graph to accept
		// single-path customer links).
		if n < 2 && rels.Rel(target, c.far) != relation.Provider {
			continue
		}
		claims.add(c.addr, c.far, target)
	}
	out := claims.sorted()
	slices.SortStableFunc(out, func(a, b core.Inference) int { return cmp.Compare(a.Addr, b.Addr) })
	return out
}
