package baseline

import (
	"strings"
	"testing"

	"mapit/internal/as2org"
	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/relation"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

func table(entries ...string) *bgp.Table {
	t := bgp.EmptyTable()
	for _, e := range entries {
		parts := strings.SplitN(e, "=", 2)
		t.Add(inet.MustParsePrefix(parts[0]), inet.MustParseASN(parts[1]))
	}
	return t
}

func sanitized(traces ...trace.Trace) *trace.Sanitized {
	d := &trace.Dataset{Traces: traces}
	return d.Sanitize()
}

func tr(addrs ...string) trace.Trace {
	ips := make([]inet.Addr, len(addrs))
	for i, a := range addrs {
		ips[i] = ip(a)
	}
	return trace.NewTrace("m", ip("192.0.3.255"), ips...)
}

func TestSimple(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200")
	s := sanitized(
		tr("20.100.0.1", "20.100.0.5", "20.101.0.1", "20.101.0.9"),
		tr("20.100.0.1", "20.100.0.5", "20.101.0.1"), // duplicate claim
	)
	infs := Simple(s, ip2as)
	if len(infs) != 1 {
		t.Fatalf("inferences = %v", infs)
	}
	inf := infs[0]
	if inf.Addr != ip("20.101.0.1") || inf.Local != 200 || inf.Connected != 100 {
		t.Errorf("inference = %+v", inf)
	}
}

func TestSimpleSkipsUnmapped(t *testing.T) {
	ip2as := table("20.100.0.0/16=100")
	s := sanitized(tr("20.100.0.1", "21.0.0.1"))
	if infs := Simple(s, ip2as); len(infs) != 0 {
		t.Errorf("unmapped adjacency produced claims: %v", infs)
	}
}

func TestConvention(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200", "20.102.0.0/16=300")
	rels := relation.New()
	rels.AddTransit(100, 200) // 100 provides transit to 200
	orgs := as2org.New()

	// Trace crosses provider(100) -> customer(200): the provider-side
	// address is the link interface.
	s := sanitized(tr("20.100.0.9", "20.101.0.1"))
	infs := Convention(s, ip2as, rels, orgs)
	if len(infs) != 1 || infs[0].Addr != ip("20.100.0.9") || infs[0].Local != 100 {
		t.Fatalf("provider convention: %+v", infs)
	}

	// Peering (no transit): falls back to Simple (second address).
	s2 := sanitized(tr("20.100.0.9", "20.102.0.1"))
	infs2 := Convention(s2, ip2as, rels, orgs)
	if len(infs2) != 1 || infs2[0].Addr != ip("20.102.0.1") || infs2[0].Local != 300 {
		t.Fatalf("peer fallback: %+v", infs2)
	}

	// Customer -> provider direction: second address maps to provider.
	s3 := sanitized(tr("20.101.0.1", "20.100.0.9"))
	infs3 := Convention(s3, ip2as, rels, orgs)
	if len(infs3) != 1 || infs3[0].Addr != ip("20.100.0.9") {
		t.Fatalf("reverse transit: %+v", infs3)
	}

	// Sibling boundaries yield nothing.
	orgs.AddSiblingPair(100, 300)
	if infs4 := Convention(s2, ip2as, rels, orgs); len(infs4) != 0 {
		t.Errorf("sibling boundary produced claims: %v", infs4)
	}
}

func TestITDKVariants(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	cfg := topo.DefaultTraceConfig()
	cfg.DestsPerMonitor = 200
	s := w.GenTraces(cfg).Sanitize()
	tbl := w.Table()

	midar := ITDK(w, s, tbl, ITDKMidar, 11)
	kapar := ITDK(w, s, tbl, ITDKKapar, 11)
	if len(midar) == 0 || len(kapar) == 0 {
		t.Fatal("no ITDK inferences")
	}
	// Determinism.
	again := ITDK(w, s, tbl, ITDKMidar, 11)
	if len(again) != len(midar) {
		t.Fatal("ITDK not deterministic")
	}
	for i := range midar {
		if midar[i] != again[i] {
			t.Fatal("ITDK not deterministic")
		}
	}
	if ITDKMidar.String() != "ITDK-MIDAR" || ITDKKapar.String() != "ITDK-Kapar" {
		t.Error("variant names")
	}
}

func TestBaselinesAreSorted(t *testing.T) {
	ip2as := table("20.100.0.0/16=100", "20.101.0.0/16=200")
	s := sanitized(
		tr("20.101.0.9", "20.100.0.1"),
		tr("20.100.0.5", "20.101.0.1"),
	)
	infs := Simple(s, ip2as)
	for i := 1; i < len(infs); i++ {
		if infs[i].Addr < infs[i-1].Addr {
			t.Fatal("output not sorted")
		}
	}
}

func TestBdrmapLite(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	ren := w.Special[topo.SpecialREN]
	cfg := topo.DefaultTraceConfig()
	cfg.DestsPerMonitor = 500
	s := w.GenTraces(cfg).Sanitize()
	monitors := map[string]bool{}
	for _, m := range w.Monitors {
		if m.AS == ren {
			monitors[m.Name] = true
		}
	}
	if len(monitors) == 0 {
		t.Fatal("REN hosts no monitor")
	}
	claims := BdrmapLite(ren.ASN, monitors, s, w.Table(), w.Rels, w.Orgs)
	if len(claims) == 0 {
		t.Fatal("no bdrmap claims")
	}
	// Every claim involves the target network — bdrmap cannot speak
	// about other networks' borders.
	for _, c := range claims {
		a, b := c.Link()
		if a != ren.ASN && b != ren.ASN {
			t.Fatalf("claim beyond the monitor network: %+v", c)
		}
	}
	// A useful share of the claims are real border interfaces of the
	// REN with the right neighbour.
	truth := w.Truth()
	correct := 0
	for _, c := range claims {
		tr, ok := truth[c.Addr]
		if !ok || !tr.InterAS {
			continue
		}
		a, b := c.Link()
		far := a
		if far == ren.ASN {
			far = b
		}
		// The claimed pair {REN, far} matches truth when the interface
		// sits on the far AS's router connecting to the REN, or on the
		// REN's router connecting to the far AS.
		if (tr.RouterAS == far && tr.ConnectsTo(ren.ASN)) ||
			(tr.RouterAS == ren.ASN && tr.ConnectsTo(far)) {
			correct++
		}
	}
	if correct*2 < len(claims) {
		t.Errorf("only %d of %d bdrmap claims correct", correct, len(claims))
	}
	// Determinism.
	again := BdrmapLite(ren.ASN, monitors, s, w.Table(), w.Rels, w.Orgs)
	if len(again) != len(claims) {
		t.Fatal("bdrmap-lite not deterministic")
	}
}
