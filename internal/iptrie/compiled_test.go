package iptrie

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"mapit/internal/inet"
)

// randIn returns a uniform random address inside p (handles the /0
// default route, whose size overflows uint32).
func randIn(rng *rand.Rand, p inet.Prefix) inet.Addr {
	if p.Len == 0 {
		return inet.Addr(rng.Uint32())
	}
	return p.Base + inet.Addr(rng.Uint32())%inet.Addr(p.NumAddrs())
}

// probeAddrs returns a probe set biased at the interesting places of a
// prefix set: bases, lasts, one-off neighbours, plus uniform noise
// (which covers unannounced space).
func probeAddrs(rng *rand.Rand, prefixes []inet.Prefix, n int) []inet.Addr {
	addrs := make([]inet.Addr, 0, n+4*len(prefixes))
	for _, p := range prefixes {
		addrs = append(addrs, p.Base, p.Last(), p.Base-1, p.Last()+1)
	}
	for i := 0; i < n; i++ {
		a := inet.Addr(rng.Uint32())
		if len(prefixes) > 0 && rng.Intn(2) == 0 {
			a = randIn(rng, prefixes[rng.Intn(len(prefixes))])
		}
		addrs = append(addrs, a)
	}
	return addrs
}

// assertEquivalent checks that compiled answers are byte-identical to
// trie answers for every probe.
func assertEquivalent[V comparable](t *testing.T, tr *Trie[V], c *Compiled[V], addrs []inet.Addr) {
	t.Helper()
	if tr.Len() != c.Len() {
		t.Fatalf("Len: trie %d, compiled %d", tr.Len(), c.Len())
	}
	for _, a := range addrs {
		wantV, wantOK := tr.Lookup(a)
		gotV, gotOK := c.Lookup(a)
		if wantOK != gotOK || wantV != gotV {
			t.Fatalf("Lookup(%v): trie (%v,%v) compiled (%v,%v)", a, wantV, wantOK, gotV, gotOK)
		}
		wantP, wantPV, wantPOK := tr.LookupPrefix(a)
		gotP, gotPV, gotPOK := c.LookupPrefix(a)
		if wantPOK != gotPOK || wantP != gotP || wantPV != gotPV {
			t.Fatalf("LookupPrefix(%v): trie (%v,%v,%v) compiled (%v,%v,%v)",
				a, wantP, wantPV, wantPOK, gotP, gotPV, gotPOK)
		}
	}
}

// TestCompiledEquivalenceRandom cross-checks compiled lookups against
// the trie over randomized prefix sets spanning every address class:
// with and without a default route, dense covering/covered chains, host
// routes, and plenty of unannounced space in the probes.
func TestCompiledEquivalenceRandom(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			tr := New[int]()
			var prefixes []inet.Prefix
			if trial%3 == 0 {
				// Default route: every probe must resolve.
				p := inet.MustParsePrefix("0.0.0.0/0")
				tr.Insert(p, -100)
				prefixes = append(prefixes, p)
			}
			n := 50 + rng.Intn(400)
			for i := 0; i < n; i++ {
				p := inet.PrefixFrom(inet.Addr(rng.Uint32()), 1+rng.Intn(32))
				if tr.Insert(p, i) {
					prefixes = append(prefixes, p)
				}
				// Covering/covered chains: half the time, nest a longer
				// prefix inside the one just inserted so stride
				// boundaries (16, 24) get crossed in both directions.
				if rng.Intn(2) == 0 && p.Len < 32 {
					longer := p.Len + 1 + rng.Intn(32-p.Len)
					q := inet.PrefixFrom(randIn(rng, p), longer)
					if tr.Insert(q, 1000+i) {
						prefixes = append(prefixes, q)
					}
				}
			}
			assertEquivalent(t, tr, tr.Compile(), probeAddrs(rng, prefixes, 500))
		})
	}
}

// TestCompiledStrideBoundaries pins the hand-picked cases at the 16/24
// stride seams where leaf pushing has to get inheritance right.
func TestCompiledStrideBoundaries(t *testing.T) {
	tr := New[string]()
	for p, v := range map[string]string{
		"0.0.0.0/0":       "default",
		"10.0.0.0/8":      "ten",
		"10.1.0.0/16":     "ten-one",
		"10.1.128.0/17":   "ten-one-high",
		"10.1.2.0/24":     "ten-one-two",
		"10.1.2.128/25":   "ten-one-two-high",
		"10.1.2.255/32":   "host",
		"192.168.0.0/15":  "wide",
		"203.0.113.96/27": "small",
	} {
		tr.Insert(inet.MustParsePrefix(p), v)
	}
	c := tr.Compile()
	for addr, want := range map[string]string{
		"10.1.2.255":    "host",
		"10.1.2.254":    "ten-one-two-high",
		"10.1.2.1":      "ten-one-two",
		"10.1.3.1":      "ten-one",
		"10.1.200.1":    "ten-one-high",
		"10.2.0.1":      "ten",
		"11.0.0.1":      "default",
		"192.169.12.1":  "wide",
		"203.0.113.100": "small",
		"203.0.113.95":  "default",
	} {
		got, ok := c.Lookup(inet.MustParseAddr(addr))
		if !ok || got != want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", addr, got, ok, want)
		}
	}
	// Full sweep of a /16's worth of addresses across the seams.
	base := inet.MustParseAddr("10.1.0.0")
	var probes []inet.Addr
	for i := 0; i < 1<<16; i += 37 {
		probes = append(probes, base+inet.Addr(i))
	}
	assertEquivalent(t, tr, c, probes)
}

// TestCompiledEmpty confirms an empty trie compiles to an all-miss
// table.
func TestCompiledEmpty(t *testing.T) {
	c := New[int]().Compile()
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	for _, s := range []string{"0.0.0.0", "10.0.0.1", "255.255.255.255"} {
		if _, ok := c.Lookup(inet.MustParseAddr(s)); ok {
			t.Errorf("Lookup(%s) resolved in empty table", s)
		}
		if _, _, ok := c.LookupPrefix(inet.MustParseAddr(s)); ok {
			t.Errorf("LookupPrefix(%s) resolved in empty table", s)
		}
	}
}

// TestCompiledWalk checks the compiled walk visits every prefix exactly
// once (in length-then-base order) and honours early stop.
func TestCompiledWalk(t *testing.T) {
	tr := New[int]()
	for i, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "9.0.0.0/8", "10.1.0.0/24"} {
		tr.Insert(inet.MustParsePrefix(s), i)
	}
	c := tr.Compile()
	seen := make(map[inet.Prefix]bool)
	lastLen := -1
	c.Walk(func(p inet.Prefix, _ int) bool {
		if seen[p] {
			t.Errorf("prefix %v visited twice", p)
		}
		seen[p] = true
		if p.Len < lastLen {
			t.Errorf("walk order regressed at %v", p)
		}
		lastLen = p.Len
		return true
	})
	if len(seen) != tr.Len() {
		t.Errorf("walk visited %d prefixes; want %d", len(seen), tr.Len())
	}
	n := 0
	c.Walk(func(inet.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop walk visited %d", n)
	}
}

// TestCompiledConcurrentLookups hammers one compiled table from many
// goroutines under the race detector: the immutability argument in the
// type's doc comment, made checkable.
func TestCompiledConcurrentLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	var prefixes []inet.Prefix
	for i := 0; i < 500; i++ {
		p := inet.PrefixFrom(inet.Addr(rng.Uint32()), 4+rng.Intn(29))
		if tr.Insert(p, i) {
			prefixes = append(prefixes, p)
		}
	}
	c := tr.Compile()
	probes := probeAddrs(rng, prefixes, 2000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, a := range probes {
				wantV, wantOK := tr.Lookup(a)
				gotV, gotOK := c.Lookup(a)
				if wantOK != gotOK || wantV != gotV {
					t.Errorf("Lookup(%v): trie (%v,%v) compiled (%v,%v)", a, wantV, wantOK, gotV, gotOK)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCompileLeavesTrieUsable confirms compiling is non-destructive and
// later trie inserts do not leak into the snapshot.
func TestCompileLeavesTrieUsable(t *testing.T) {
	tr := New[int]()
	tr.Insert(inet.MustParsePrefix("10.0.0.0/8"), 1)
	c := tr.Compile()
	tr.Insert(inet.MustParsePrefix("10.1.0.0/16"), 2)
	if v, _ := tr.Lookup(inet.MustParseAddr("10.1.0.1")); v != 2 {
		t.Errorf("trie lost post-compile insert: %d", v)
	}
	if v, _ := c.Lookup(inet.MustParseAddr("10.1.0.1")); v != 1 {
		t.Errorf("compiled snapshot saw post-compile insert: %d", v)
	}
}

// TestCompileHostsEquivalence: the direct host-route builder must be
// indistinguishable from inserting every /32 into a trie and compiling —
// same lookups, same walk order, same leaf count — across random sorted
// address sets including stride-seam neighbours.
func TestCompileHostsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 100, 5000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			seen := map[inet.Addr]bool{}
			var addrs []inet.Addr
			// Cluster half the addresses so /16 and /24 blocks are shared,
			// and sprinkle stride seams (x.y.255.255, x.y.z.0).
			for len(addrs) < n {
				var a inet.Addr
				switch rng.Intn(4) {
				case 0:
					a = inet.Addr(rng.Uint32())
				case 1:
					a = inet.Addr(0x0a000000 | rng.Uint32()&0xffff) // 10.0.x.y
				case 2:
					a = inet.Addr(rng.Uint32()&0xffff0000 | 0xffff) // seam: .255.255
				default:
					a = inet.Addr(rng.Uint32() &^ 0xff) // seam: .0
				}
				if !seen[a] {
					seen[a] = true
					addrs = append(addrs, a)
				}
			}
			slices.Sort(addrs)
			vals := make([]int32, len(addrs))
			tr := New[int32]()
			for i, a := range addrs {
				vals[i] = int32(i)
				tr.Insert(inet.Prefix{Base: a, Len: 32}, int32(i))
			}
			want := tr.Compile()
			got := CompileHosts(addrs, vals)
			probes := make([]inet.Addr, 0, 3*len(addrs)+200)
			for _, a := range addrs {
				probes = append(probes, a, a-1, a+1)
			}
			for i := 0; i < 200; i++ {
				probes = append(probes, inet.Addr(rng.Uint32()))
			}
			assertEquivalent(t, tr, got, probes)
			// Walk order must match the generic compiler's exactly.
			type entry struct {
				p inet.Prefix
				v int32
			}
			var we, ge []entry
			want.Walk(func(p inet.Prefix, v int32) bool { we = append(we, entry{p, v}); return true })
			got.Walk(func(p inet.Prefix, v int32) bool { ge = append(ge, entry{p, v}); return true })
			if !slices.Equal(we, ge) {
				t.Fatalf("walk orders diverge: %d vs %d entries", len(we), len(ge))
			}
		})
	}
}

// CompileHosts must reject malformed input loudly rather than build a
// corrupt table.
func TestCompileHostsRejectsUnsorted(t *testing.T) {
	for name, addrs := range map[string][]inet.Addr{
		"descending": {2, 1},
		"duplicate":  {5, 5},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on bad input")
				}
			}()
			CompileHosts(addrs, []int32{0, 0})
		})
	}
	t.Run("length-mismatch", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on length mismatch")
			}
		}()
		CompileHosts([]inet.Addr{1}, []int32{})
	})
}
