package iptrie

import (
	"math/rand"
	"testing"

	"mapit/internal/inet"
)

// routingTablePrefixes synthesises a routing-table-scale prefix set
// with a realistic length mix (dominated by /24s and /16–/23
// aggregates, a thin tail of short prefixes and host routes), plus a
// default route. Deterministic in the seed.
func routingTablePrefixes(n int) []inet.Prefix {
	rng := rand.New(rand.NewSource(1))
	out := make([]inet.Prefix, 0, n)
	out = append(out, inet.MustParsePrefix("0.0.0.0/0"))
	seen := map[inet.Prefix]bool{out[0]: true}
	for len(out) < n {
		var l int
		switch r := rng.Intn(100); {
		case r < 55:
			l = 24
		case r < 85:
			l = 16 + rng.Intn(8) // /16../23
		case r < 95:
			l = 8 + rng.Intn(8) // /8../15
		default:
			l = 25 + rng.Intn(8) // /25../32
		}
		p := inet.PrefixFrom(inet.Addr(rng.Uint32()), l)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// benchProbes is the shared lookup workload: half the probes land
// inside stored prefixes, half are uniform (mostly unannounced space).
func benchProbes(prefixes []inet.Prefix, n int) []inet.Addr {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]inet.Addr, n)
	for i := range addrs {
		if p := prefixes[rng.Intn(len(prefixes))]; rng.Intn(2) == 0 && p.Len > 0 {
			addrs[i] = p.Base + inet.Addr(rng.Uint32())%inet.Addr(p.NumAddrs())
		} else {
			addrs[i] = inet.Addr(rng.Uint32())
		}
	}
	return addrs
}

const benchTableSize = 200_000

// buildBenchTrie builds the shared benchmark trie once.
var benchTrie = func() *Trie[int32] {
	tr := New[int32]()
	for i, p := range routingTablePrefixes(benchTableSize) {
		tr.Insert(p, int32(i))
	}
	return tr
}

// BenchmarkLPMTrie measures the pointer-chasing binary trie on a
// routing-table-scale prefix set: the pre-compile baseline.
func BenchmarkLPMTrie(b *testing.B) {
	tr := benchTrie()
	probes := benchProbes(tr.Prefixes(), 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probes[i&(1<<16-1)])
	}
}

// BenchmarkLPMCompiled measures the same workload against the compiled
// multibit stride table: at most three flat array reads per lookup.
func BenchmarkLPMCompiled(b *testing.B) {
	tr := benchTrie()
	c := tr.Compile()
	probes := benchProbes(tr.Prefixes(), 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(probes[i&(1<<16-1)])
	}
}

// BenchmarkLPMCompile measures the one-off compile step itself, so the
// break-even point against per-lookup savings is visible.
func BenchmarkLPMCompile(b *testing.B) {
	tr := benchTrie()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := tr.Compile(); c.Len() != tr.Len() {
			b.Fatal("compile lost prefixes")
		}
	}
}
