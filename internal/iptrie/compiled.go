package iptrie

import (
	"cmp"
	"slices"

	"mapit/internal/inet"
)

// Compiled is the read-only, cache-friendly form of a Trie: the binary
// trie flattened into a multibit stride table (16-8-8 direct indexing,
// in the Luleå / Poptrie family). A lookup reads at most three flat
// []int32 slots — one per stride level — instead of chasing up to 32
// heap pointers, and never allocates.
//
// Layout. Level 0 is a 65536-entry array indexed by the address's top
// 16 bits; levels 1 and 2 are pools of 256-entry blocks indexed by the
// next and last 8 bits. Every slot holds one of:
//
//	e >= 0   terminal: leaf index into prefixes/vals — the final answer
//	e == -1  miss: no stored prefix contains the address
//	e <= -2  internal: descend into block -e-2 of the next level
//
// Longest-prefix-match is precomputed by leaf pushing: when a block is
// carved out under a slot, every child slot is seeded with the best
// match the parent slot held, and longer prefixes then overwrite their
// narrower ranges. A lookup therefore never tracks best-so-far — the
// first terminal slot it reads is the answer.
//
// Compiled is immutable after Compile returns: nothing ever writes the
// arrays again, so any number of goroutines may call Lookup and
// LookupPrefix concurrently with no synchronisation.
type Compiled[V any] struct {
	l0 []int32 // 1<<16 slots
	l1 []int32 // level-1 block pool, 256 slots per block
	l2 []int32 // level-2 block pool, 256 slots per block

	// Leaf storage, parallel arrays: leaf i is prefixes[i] → vals[i].
	// One leaf per stored prefix, shared by every slot it covers.
	prefixes []inet.Prefix
	vals     []V
}

const (
	compiledMiss = -1
	stride0Bits  = 16
	blockSize    = 256
)

// Compile flattens the trie into its multibit form. The trie itself is
// untouched and remains usable; the two answer identical Lookup and
// LookupPrefix queries for every address.
func (t *Trie[V]) Compile() *Compiled[V] {
	type entry struct {
		p inet.Prefix
		v V
	}
	entries := make([]entry, 0, t.size)
	t.Walk(func(p inet.Prefix, v V) bool {
		entries = append(entries, entry{p, v})
		return true
	})
	// Shorter prefixes first so longer ones overwrite their slot
	// ranges; equal-length prefixes cover disjoint ranges, so their
	// relative order is immaterial — (Len, Base) keeps the leaf array
	// layout deterministic anyway.
	slices.SortFunc(entries, func(a, b entry) int {
		if c := cmp.Compare(a.p.Len, b.p.Len); c != 0 {
			return c
		}
		return cmp.Compare(a.p.Base, b.p.Base)
	})

	c := &Compiled[V]{
		l0:       make([]int32, 1<<stride0Bits),
		prefixes: make([]inet.Prefix, 0, len(entries)),
		vals:     make([]V, 0, len(entries)),
	}
	for i := range c.l0 {
		c.l0[i] = compiledMiss
	}

	for _, e := range entries {
		leaf := int32(len(c.prefixes))
		c.prefixes = append(c.prefixes, e.p)
		c.vals = append(c.vals, e.v)
		switch {
		case e.p.Len <= 16:
			lo := int(e.p.Base >> 16)
			hi := lo + 1<<(16-e.p.Len)
			for s := lo; s < hi; s++ {
				c.l0[s] = leaf
			}
		case e.p.Len <= 24:
			b := c.ensureL1(int(e.p.Base >> 16))
			lo := b*blockSize + int(e.p.Base>>8&0xff)
			hi := lo + 1<<(24-e.p.Len)
			for s := lo; s < hi; s++ {
				c.l1[s] = leaf
			}
		default:
			b1 := c.ensureL1(int(e.p.Base >> 16))
			b2 := c.ensureL2(b1*blockSize + int(e.p.Base>>8&0xff))
			lo := b2*blockSize + int(e.p.Base&0xff)
			hi := lo + 1<<(32-e.p.Len)
			for s := lo; s < hi; s++ {
				c.l2[s] = leaf
			}
		}
	}
	return c
}

// CompileHosts builds the compiled stride table directly from host
// routes: addrs must be strictly ascending (distinct, sorted) and vals
// parallel to it; entry i becomes the /32 prefix addrs[i] → vals[i].
// The output is identical to inserting every /32 into a Trie and
// calling Compile, but skips the per-bit binary trie entirely — host
// routes need no leaf pushing (nothing is wider than them), so each
// address is three block carves at worst. This is the builder behind
// exact-address query indexes (internal/snapshot), where the key set is
// already a sorted column.
func CompileHosts[V any](addrs []inet.Addr, vals []V) *Compiled[V] {
	if len(addrs) != len(vals) {
		panic("iptrie: CompileHosts slices disagree in length")
	}
	c := &Compiled[V]{
		l0:       make([]int32, 1<<stride0Bits),
		prefixes: make([]inet.Prefix, 0, len(addrs)),
		vals:     make([]V, 0, len(addrs)),
	}
	for i := range c.l0 {
		c.l0[i] = compiledMiss
	}
	for i, a := range addrs {
		if i > 0 && addrs[i-1] >= a {
			panic("iptrie: CompileHosts addresses not strictly ascending")
		}
		b1 := c.ensureL1(int(a >> 16))
		b2 := c.ensureL2(b1*blockSize + int(a>>8&0xff))
		c.l2[b2*blockSize+int(a&0xff)] = int32(len(c.prefixes))
		c.prefixes = append(c.prefixes, inet.Prefix{Base: a, Len: 32})
		c.vals = append(c.vals, vals[i])
	}
	return c
}

// ensureL1 returns the level-1 block index under level-0 slot s,
// carving a new block if the slot is still terminal. New slots inherit
// the slot's current best match (leaf pushing), which is correct
// because entries are processed shortest-first: everything already
// written is no longer than the prefix being inserted.
func (c *Compiled[V]) ensureL1(s int) int {
	if e := c.l0[s]; e <= -2 {
		return int(-e - 2)
	}
	b := len(c.l1) / blockSize
	c.appendBlock(&c.l1, c.l0[s])
	c.l0[s] = int32(-b - 2)
	return b
}

// ensureL2 is ensureL1 one level down; s indexes the level-1 pool.
func (c *Compiled[V]) ensureL2(s int) int {
	if e := c.l1[s]; e <= -2 {
		return int(-e - 2)
	}
	b := len(c.l2) / blockSize
	c.appendBlock(&c.l2, c.l1[s])
	c.l1[s] = int32(-b - 2)
	return b
}

// appendBlock grows a level pool by one block filled with fill.
func (c *Compiled[V]) appendBlock(pool *[]int32, fill int32) {
	for i := 0; i < blockSize; i++ {
		*pool = append(*pool, fill)
	}
}

// Len returns the number of stored prefixes.
func (c *Compiled[V]) Len() int { return len(c.prefixes) }

// slot resolves the address to its terminal slot value: a leaf index,
// or compiledMiss.
func (c *Compiled[V]) slot(a inet.Addr) int32 {
	e := c.l0[a>>16]
	if e <= -2 {
		e = c.l1[int(-e-2)*blockSize+int(a>>8&0xff)]
		if e <= -2 {
			e = c.l2[int(-e-2)*blockSize+int(a&0xff)]
		}
	}
	return e
}

// Lookup returns the value of the longest stored prefix containing a.
func (c *Compiled[V]) Lookup(a inet.Addr) (V, bool) {
	e := c.slot(a)
	if e < 0 {
		var zero V
		return zero, false
	}
	return c.vals[e], true
}

// LookupPrefix returns both the longest matching prefix and its value.
func (c *Compiled[V]) LookupPrefix(a inet.Addr) (inet.Prefix, V, bool) {
	e := c.slot(a)
	if e < 0 {
		var zero V
		return inet.Prefix{}, zero, false
	}
	return c.prefixes[e], c.vals[e], true
}

// Walk visits every stored prefix in (length, base) order — the compile
// order, not the trie's lexicographic order.
func (c *Compiled[V]) Walk(fn func(p inet.Prefix, val V) bool) {
	for i, p := range c.prefixes {
		if !fn(p, c.vals[i]) {
			return
		}
	}
}
