package iptrie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mapit/internal/inet"
)

func TestInsertLookup(t *testing.T) {
	tr := New[int]()
	tr.Insert(inet.MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(inet.MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(inet.MustParsePrefix("10.1.2.0/24"), 24)
	tr.Insert(inet.MustParsePrefix("0.0.0.0/0"), 0)

	cases := []struct {
		addr string
		want int
	}{
		{"10.1.2.3", 24},
		{"10.1.3.4", 16},
		{"10.2.0.1", 8},
		{"11.0.0.1", 0},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(inet.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d, %v; want %d", c.addr, got, ok, c.want)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	tr := New[int]()
	tr.Insert(inet.MustParsePrefix("10.0.0.0/8"), 8)
	if _, ok := tr.Lookup(inet.MustParseAddr("11.0.0.1")); ok {
		t.Error("expected miss outside 10/8")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[string]()
	p := inet.MustParsePrefix("192.0.2.0/24")
	if !tr.Insert(p, "a") {
		t.Error("first insert should be fresh")
	}
	if tr.Insert(p, "b") {
		t.Error("second insert should replace")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	v, ok := tr.Get(p)
	if !ok || v != "b" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	p8 := inet.MustParsePrefix("10.0.0.0/8")
	p16 := inet.MustParsePrefix("10.1.0.0/16")
	tr.Insert(p8, 8)
	tr.Insert(p16, 16)
	if !tr.Delete(p16) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(p16) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	got, ok := tr.Lookup(inet.MustParseAddr("10.1.2.3"))
	if !ok || got != 8 {
		t.Errorf("after delete Lookup = %d, %v; want 8", got, ok)
	}
	if tr.Delete(inet.MustParsePrefix("172.16.0.0/12")) {
		t.Error("delete of absent prefix succeeded")
	}
}

func TestLookupPrefix(t *testing.T) {
	tr := New[int]()
	tr.Insert(inet.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(inet.MustParsePrefix("10.64.0.0/10"), 2)
	p, v, ok := tr.LookupPrefix(inet.MustParseAddr("10.65.1.1"))
	if !ok || v != 2 || p.String() != "10.64.0.0/10" {
		t.Errorf("got %v %d %v", p, v, ok)
	}
	if _, _, ok := tr.LookupPrefix(inet.MustParseAddr("12.0.0.1")); ok {
		t.Error("expected miss")
	}
}

func TestHostRoutes(t *testing.T) {
	tr := New[int]()
	a := inet.MustParseAddr("203.0.113.7")
	tr.Insert(inet.PrefixFrom(a, 32), 99)
	got, ok := tr.Lookup(a)
	if !ok || got != 99 {
		t.Errorf("host route lookup = %d, %v", got, ok)
	}
	if _, ok := tr.Lookup(a + 1); ok {
		t.Error("host route should not match neighbour")
	}
}

func TestWalkAndPrefixes(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "9.0.0.0/8", "10.1.0.0/24"}
	for i, s := range ps {
		tr.Insert(inet.MustParsePrefix(s), i)
	}
	var n int
	tr.Walk(func(inet.Prefix, int) bool { n++; return true })
	if n != len(ps) {
		t.Errorf("walk visited %d; want %d", n, len(ps))
	}
	got := tr.Prefixes()
	if len(got) != len(ps) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	if got[0].String() != "9.0.0.0/8" || got[1].String() != "10.0.0.0/8" {
		t.Errorf("sort order wrong: %v", got)
	}
	// Early stop.
	n = 0
	tr.Walk(func(inet.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop walk visited %d", n)
	}
}

// TestAgainstLinearScan cross-checks trie lookups against a brute-force
// longest-match over random prefix sets.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tr := New[int]()
		var prefixes []inet.Prefix
		for i := 0; i < 200; i++ {
			p := inet.PrefixFrom(inet.Addr(rng.Uint32()), 8+rng.Intn(25))
			if tr.Insert(p, i) {
				prefixes = append(prefixes, p)
			}
		}
		for i := 0; i < 200; i++ {
			a := inet.Addr(rng.Uint32())
			if rng.Intn(2) == 0 && len(prefixes) > 0 {
				// Bias half the probes inside a stored prefix.
				p := prefixes[rng.Intn(len(prefixes))]
				a = p.Base + inet.Addr(rng.Uint32())%inet.Addr(p.NumAddrs())
			}
			bestLen := -1
			for _, p := range prefixes {
				if p.Contains(a) && p.Len > bestLen {
					bestLen = p.Len
				}
			}
			gotP, _, ok := tr.LookupPrefix(a)
			if (bestLen >= 0) != ok {
				t.Fatalf("addr %v: found=%v want %v", a, ok, bestLen >= 0)
			}
			if ok && gotP.Len != bestLen {
				t.Fatalf("addr %v: len=%d want %d", a, gotP.Len, bestLen)
			}
		}
	}
}

func TestQuickInsertGet(t *testing.T) {
	f := func(addr uint32, l uint8, v int) bool {
		tr := New[int]()
		p := inet.PrefixFrom(inet.Addr(addr), int(l%33))
		tr.Insert(p, v)
		got, ok := tr.Get(p)
		if !ok || got != v {
			return false
		}
		lv, ok := tr.Lookup(p.Base)
		return ok && lv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
