// Package iptrie implements a longest-prefix-match trie over IPv4
// prefixes. It is the lookup engine underneath every IP-to-AS table in the
// repository (BGP origin tables, IXP prefix sets, special-purpose
// registries).
//
// The trie is a plain binary trie with one node per prefix bit. For the
// prefix densities seen in routing tables (hundreds of thousands of
// prefixes, depth ≤ 32) this is compact enough and makes inserts,
// replacements and ordered walks trivial; lookups are a handful of
// cache-resident pointer chases.
package iptrie

import (
	"cmp"
	"slices"

	"mapit/internal/inet"
)

// Trie is a longest-prefix-match map from inet.Prefix to a value of type
// V. The zero value is not usable; call New.
type Trie[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: &node[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func bit(a inet.Addr, i int) int {
	return int(a>>(31-uint(i))) & 1
}

// Insert stores val under p, replacing any existing value for exactly p.
// It reports whether the prefix was newly inserted (false means replaced).
func (t *Trie[V]) Insert(p inet.Prefix, val V) bool {
	n := t.root
	for i := 0; i < p.Len; i++ {
		b := bit(p.Base, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.set
	n.val = val
	n.set = true
	if fresh {
		t.size++
	}
	return fresh
}

// Get returns the value stored for exactly p.
func (t *Trie[V]) Get(p inet.Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Len; i++ {
		n = n.child[bit(p.Base, i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored for exactly p and reports whether it was
// present. Interior nodes are left in place; tries in this repository are
// built once and queried many times, so reclaiming them is not worth the
// bookkeeping.
func (t *Trie[V]) Delete(p inet.Prefix) bool {
	n := t.root
	for i := 0; i < p.Len; i++ {
		n = n.child[bit(p.Base, i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	n.set = false
	var zero V
	n.val = zero
	t.size--
	return true
}

// Lookup returns the value of the longest prefix containing a.
func (t *Trie[V]) Lookup(a inet.Addr) (V, bool) {
	var best V
	found := false
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			best = n.val
			found = true
		}
		if i == 32 {
			break
		}
		n = n.child[bit(a, i)]
		if n == nil {
			break
		}
	}
	return best, found
}

// LookupPrefix returns both the longest matching prefix and its value.
func (t *Trie[V]) LookupPrefix(a inet.Addr) (inet.Prefix, V, bool) {
	var (
		bestVal V
		bestLen = -1
	)
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			bestVal = n.val
			bestLen = i
		}
		if i == 32 {
			break
		}
		n = n.child[bit(a, i)]
		if n == nil {
			break
		}
	}
	if bestLen < 0 {
		var zero V
		return inet.Prefix{}, zero, false
	}
	return inet.PrefixFrom(a, bestLen), bestVal, true
}

// Walk visits every stored prefix in lexicographic (base, length) trie
// order. Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p inet.Prefix, val V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *node[V], base inet.Addr, depth int, fn func(inet.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(inet.Prefix{Base: base, Len: depth}, n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], base, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], base|1<<(31-uint(depth)), depth+1, fn)
}

// Prefixes returns all stored prefixes sorted by (base, length).
func (t *Trie[V]) Prefixes() []inet.Prefix {
	out := make([]inet.Prefix, 0, t.size)
	t.Walk(func(p inet.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	slices.SortFunc(out, func(a, b inet.Prefix) int {
		if c := cmp.Compare(a.Base, b.Base); c != 0 {
			return c
		}
		return cmp.Compare(a.Len, b.Len)
	})
	return out
}
