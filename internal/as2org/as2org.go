// Package as2org maps autonomous systems to the organisations that
// operate them, reproducing the role of CAIDA's AS2ORG dataset in the
// paper (§4.9): MAP-IT treats sibling ASes — distinct ASNs under one
// organisation — as a single AS when counting neighbours, and never
// infers inter-AS links between siblings.
//
// The dataset is a union-find over ASNs, seeded from an AS→org file and
// optionally extended with extra sibling pairs (the paper adds 140 pairs
// gathered from independent research on top of WHOIS-derived data).
package as2org

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"mapit/internal/inet"
)

// Orgs is the sibling-equivalence structure. The zero value is not
// usable; call New.
type Orgs struct {
	parent  map[inet.ASN]inet.ASN
	rank    map[inet.ASN]int
	orgName map[inet.ASN]string // seeded names, keyed by original ASN
}

// New returns an empty dataset in which every AS is its own organisation.
func New() *Orgs {
	return &Orgs{
		parent:  make(map[inet.ASN]inet.ASN),
		rank:    make(map[inet.ASN]int),
		orgName: make(map[inet.ASN]string),
	}
}

// AddMember records that asn belongs to the named organisation. All ASes
// added under the same (non-empty) organisation name become siblings.
type orgSeed struct {
	first map[string]inet.ASN
}

// Parse reads the repository's AS2ORG line format:
//
//	# comment
//	as|<asn>|<org id>
//	sibling|<asn>|<asn>
//
// "as" lines assign an AS to an organisation (all members become
// siblings); "sibling" lines merge two ASes directly, whatever their org
// assignments, mirroring the paper's 140 manually curated pairs.
func Parse(r io.Reader) (*Orgs, error) {
	o := New()
	seed := &orgSeed{first: make(map[string]inet.ASN)}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		switch {
		case len(parts) == 3 && parts[0] == "as":
			asn, err := inet.ParseASN(parts[1])
			if err != nil {
				return nil, fmt.Errorf("as2org: line %d: %v", lineno, err)
			}
			o.addToOrg(seed, asn, parts[2])
		case len(parts) == 3 && parts[0] == "sibling":
			a, err := inet.ParseASN(parts[1])
			if err != nil {
				return nil, fmt.Errorf("as2org: line %d: %v", lineno, err)
			}
			b, err := inet.ParseASN(parts[2])
			if err != nil {
				return nil, fmt.Errorf("as2org: line %d: %v", lineno, err)
			}
			o.AddSiblingPair(a, b)
		default:
			return nil, fmt.Errorf("as2org: line %d: unrecognised record %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return o, nil
}

// Write emits the dataset in the format Parse reads. Organisation
// membership is written as sibling pairs against each group's canonical
// (lowest) ASN, which round-trips the equivalence exactly.
func (o *Orgs) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	groups := o.Groups()
	for _, g := range groups {
		for _, asn := range g[1:] {
			if _, err := fmt.Fprintf(bw, "sibling|%d|%d\n", uint32(g[0]), uint32(asn)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func (o *Orgs) addToOrg(seed *orgSeed, asn inet.ASN, org string) {
	o.ensure(asn)
	if org == "" {
		return
	}
	o.orgName[asn] = org
	if first, ok := seed.first[org]; ok {
		o.union(first, asn)
	} else {
		seed.first[org] = asn
	}
}

// AddOrgMember assigns asn to the named organisation outside of Parse
// (used by generators). Unlike Parse it scans existing members, so it is
// O(n) per call; generators batch via Parse-compatible seeding instead
// where it matters.
func (o *Orgs) AddOrgMember(asn inet.ASN, org string) {
	o.ensure(asn)
	if org == "" {
		return
	}
	o.orgName[asn] = org
	for other, name := range o.orgName {
		if name == org && other != asn {
			o.union(asn, other)
			break
		}
	}
}

// AddSiblingPair merges the organisations of a and b.
func (o *Orgs) AddSiblingPair(a, b inet.ASN) {
	o.ensure(a)
	o.ensure(b)
	o.union(a, b)
}

func (o *Orgs) ensure(a inet.ASN) {
	if _, ok := o.parent[a]; !ok {
		o.parent[a] = a
		o.rank[a] = 0
	}
}

// find returns the root of a's tree without mutating: queries run
// concurrently from parallel scan workers, so path compression is
// reserved for build time (findCompress, via union). Union by rank
// keeps the walk logarithmic.
func (o *Orgs) find(a inet.ASN) inet.ASN {
	for {
		p, ok := o.parent[a]
		if !ok || p == a {
			return a
		}
		a = p
	}
}

func (o *Orgs) findCompress(a inet.ASN) inet.ASN {
	p, ok := o.parent[a]
	if !ok || p == a {
		return a
	}
	root := o.findCompress(p)
	o.parent[a] = root
	return root
}

func (o *Orgs) union(a, b inet.ASN) {
	ra, rb := o.findCompress(a), o.findCompress(b)
	if ra == rb {
		return
	}
	if o.rank[ra] < o.rank[rb] {
		ra, rb = rb, ra
	}
	o.parent[rb] = ra
	if o.rank[ra] == o.rank[rb] {
		o.rank[ra]++
	}
}

// Canonical returns a stable representative ASN for a's organisation.
// ASes never added to the dataset are their own organisation. The
// representative is the same for all siblings, making it usable as a map
// key when counting neighbour ASes at the organisation level (§4.4.1).
func (o *Orgs) Canonical(a inet.ASN) inet.ASN {
	if o == nil {
		return a
	}
	return o.find(a)
}

// SameOrg reports whether a and b are operated by the same organisation
// (including a == b).
func (o *Orgs) SameOrg(a, b inet.ASN) bool {
	if a == b {
		return true
	}
	if o == nil {
		return false
	}
	return o.find(a) == o.find(b)
}

// Siblings returns all known siblings of a including a itself, sorted.
func (o *Orgs) Siblings(a inet.ASN) []inet.ASN {
	root := o.Canonical(a)
	var out []inet.ASN
	for asn := range o.parent {
		if o.find(asn) == root {
			out = append(out, asn)
		}
	}
	if len(out) == 0 {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// Groups returns every multi-AS organisation as a sorted slice of ASNs,
// with groups ordered by their lowest member.
func (o *Orgs) Groups() [][]inet.ASN {
	members := make(map[inet.ASN][]inet.ASN)
	for asn := range o.parent {
		root := o.find(asn)
		members[root] = append(members[root], asn)
	}
	var out [][]inet.ASN
	for _, g := range members {
		if len(g) < 2 {
			continue
		}
		slices.Sort(g)
		out = append(out, g)
	}
	slices.SortFunc(out, func(a, b []inet.ASN) int { return cmp.Compare(a[0], b[0]) })
	return out
}

// OrgName returns the seeded organisation name for a, if any.
func (o *Orgs) OrgName(a inet.ASN) string { return o.orgName[a] }
