package as2org

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mapit/internal/inet"
)

const sample = `# example dataset
as|3356|LEVEL3
as|3549|LEVEL3
as|1|GBLX-LEGACY
as|11537|INTERNET2
as|11164|INTERNET2
as|701|VZ
sibling|1|3356
`

func parse(t *testing.T, s string) *Orgs {
	t.Helper()
	o, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSameOrg(t *testing.T) {
	o := parse(t, sample)
	cases := []struct {
		a, b inet.ASN
		want bool
	}{
		{3356, 3549, true}, // same org name
		{3356, 1, true},    // explicit sibling pair
		{3549, 1, true},    // transitive
		{11537, 11164, true},
		{3356, 11537, false},
		{701, 701, true},   // identity
		{9999, 9999, true}, // unknown AS is its own org
		{9999, 3356, false},
	}
	for _, c := range cases {
		if got := o.SameOrg(c.a, c.b); got != c.want {
			t.Errorf("SameOrg(%v,%v) = %v; want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCanonicalConsistency(t *testing.T) {
	o := parse(t, sample)
	if o.Canonical(3356) != o.Canonical(3549) || o.Canonical(3356) != o.Canonical(1) {
		t.Error("siblings must share a canonical representative")
	}
	if o.Canonical(3356) == o.Canonical(701) {
		t.Error("distinct orgs must not share a representative")
	}
	// Unknown ASes canonicalise to themselves.
	if o.Canonical(424242) != 424242 {
		t.Error("unknown AS canonical != itself")
	}
	// Nil receiver is safe (sibling data optional).
	var nilOrgs *Orgs
	if nilOrgs.Canonical(5) != 5 || nilOrgs.SameOrg(5, 6) {
		t.Error("nil Orgs misbehaves")
	}
	if !nilOrgs.SameOrg(5, 5) {
		t.Error("nil Orgs identity")
	}
}

func TestSiblingsAndGroups(t *testing.T) {
	o := parse(t, sample)
	sib := o.Siblings(3549)
	want := []inet.ASN{1, 3356, 3549}
	if len(sib) != len(want) {
		t.Fatalf("Siblings = %v", sib)
	}
	for i := range want {
		if sib[i] != want[i] {
			t.Fatalf("Siblings = %v; want %v", sib, want)
		}
	}
	if got := o.Siblings(31337); len(got) != 1 || got[0] != 31337 {
		t.Errorf("unknown Siblings = %v", got)
	}
	groups := o.Groups()
	if len(groups) != 2 {
		t.Fatalf("Groups = %v", groups)
	}
	if groups[0][0] != 1 || groups[1][0] != 11164 {
		t.Errorf("group order = %v", groups)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	o := parse(t, sample)
	var buf bytes.Buffer
	if err := o.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]inet.ASN{{3356, 3549}, {3356, 1}, {11537, 11164}} {
		if !back.SameOrg(pair[0], pair[1]) {
			t.Errorf("round trip lost sibling %v", pair)
		}
	}
	if back.SameOrg(3356, 11537) {
		t.Error("round trip invented sibling")
	}
}

func TestAddOrgMemberAndName(t *testing.T) {
	o := New()
	o.AddOrgMember(10, "ACME")
	o.AddOrgMember(20, "ACME")
	o.AddOrgMember(30, "")
	if !o.SameOrg(10, 20) {
		t.Error("AddOrgMember should merge same-name orgs")
	}
	if o.SameOrg(10, 30) {
		t.Error("empty org must not merge")
	}
	if o.OrgName(10) != "ACME" {
		t.Errorf("OrgName = %q", o.OrgName(10))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"as|x|ORG",
		"sibling|1|y",
		"bogus|1|2",
		"as|1",
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

// SameOrg must be an equivalence relation no matter what merge sequence
// built it.
func TestQuickEquivalence(t *testing.T) {
	f := func(pairs []uint16) bool {
		o := New()
		var members []inet.ASN
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := inet.ASN(pairs[i]%64+1), inet.ASN(pairs[i+1]%64+1)
			o.AddSiblingPair(a, b)
			members = append(members, a, b)
		}
		for _, a := range members {
			if !o.SameOrg(a, a) { // reflexive
				return false
			}
			for _, b := range members {
				if o.SameOrg(a, b) != o.SameOrg(b, a) { // symmetric
					return false
				}
				// Canonical consistency: same org iff same representative.
				if o.SameOrg(a, b) != (o.Canonical(a) == o.Canonical(b)) {
					return false
				}
				for _, c := range members {
					if o.SameOrg(a, b) && o.SameOrg(b, c) && !o.SameOrg(a, c) { // transitive
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// Groups partition: every AS appears in at most one group, and all group
// members share an organisation.
func TestQuickGroupsPartition(t *testing.T) {
	f := func(pairs []uint16) bool {
		o := New()
		for i := 0; i+1 < len(pairs); i += 2 {
			o.AddSiblingPair(inet.ASN(pairs[i]%64+1), inet.ASN(pairs[i+1]%64+1))
		}
		seen := map[inet.ASN]bool{}
		for _, g := range o.Groups() {
			for _, a := range g {
				if seen[a] {
					return false
				}
				seen[a] = true
				if !o.SameOrg(g[0], a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// quickCfg pins the property-test RNG for reproducibility.
func quickCfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(1234))}
}
