package serve

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestCursorRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		version uint64
		offset  int
	}{
		{1, 0},
		{1, 7},
		{42, 1 << 20},
		{^uint64(0), 0},
	} {
		tok := encodeCursor(tc.version, tc.offset)
		v, off, err := decodeCursor(tok)
		if err != nil {
			t.Errorf("decodeCursor(encodeCursor(%d, %d)): %v", tc.version, tc.offset, err)
			continue
		}
		if v != tc.version || off != tc.offset {
			t.Errorf("round trip (%d, %d) = (%d, %d)", tc.version, tc.offset, v, off)
		}
	}
}

func TestDecodeCursorMalformed(t *testing.T) {
	for _, tok := range []string{
		"",
		"garbage!!!", // not base64url
		"aGVsbG8",    // "hello": no v prefix
		"djE",        // "v1": no dot
		"di54LjA",    // "v.x.0": empty version
		"djEuLTU",    // "v1.-5": negative offset
		"djEuYWJj",   // "v1.abc": non-numeric offset
	} {
		if _, _, err := decodeCursor(tok); err == nil {
			t.Errorf("decodeCursor(%q) accepted malformed token", tok)
		}
	}
	// A valid token must still decode — guard against the loop above
	// passing vacuously.
	if _, _, err := decodeCursor(encodeCursor(3, 9)); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
}

func TestEtagMatches(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{`"v7"`, true},
		{`W/"v7"`, true},
		{`*`, true},
		{`"v6"`, false},
		{`"v6", "v7"`, true},
		{` "v7" `, true},
		{`v7`, false}, // unquoted is not the same ETag
		{``, false},
	} {
		if got := etagMatches(tc.header, `"v7"`); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestRouteMetricsObserve(t *testing.T) {
	var rm routeMetrics
	rm.observe(0, 200)
	rm.observe(3*time.Microsecond, 200)
	rm.observe(10*time.Millisecond, 404)
	rm.observe(time.Hour, 500) // lands in the catch-all bucket

	rs := rm.snapshot()
	if rs.Requests != 4 {
		t.Errorf("Requests = %d, want 4", rs.Requests)
	}
	if rs.Errors != 2 {
		t.Errorf("Errors = %d, want 2", rs.Errors)
	}
	var total int64
	sawCatchAll := false
	for _, b := range rs.Latency {
		total += b.N
		if b.Le == 0 {
			sawCatchAll = true
		}
	}
	if total != 4 {
		t.Errorf("histogram total = %d, want 4", total)
	}
	if !sawCatchAll {
		t.Error("one-hour observation missing from the catch-all bucket")
	}
}

func TestStatusWriterCapturesStatus(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: 200}
	sw.WriteHeader(418)
	if sw.status != 418 || rec.Code != 418 {
		t.Errorf("status = %d / %d, want 418", sw.status, rec.Code)
	}
}
