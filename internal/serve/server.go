// Package serve implements mapitd's resident HTTP/JSON query service
// over the compiled snapshot engine. A Server owns one cumulative
// evidence collector and one snapshot.Handle: corpus batches (the
// startup load and every POST /v1/ingest) fold into the collector,
// rerun inference, and atomically publish a fresh immutable snapshot,
// while query handlers resolve against whatever snapshot was current
// when their request arrived. Publication is copy-on-write — in-flight
// readers keep the old snapshot until they finish, so a query never
// observes torn state and never blocks an ingest (or vice versa).
//
// Every data response carries the snapshot version as a strong ETag
// ("v<N>"); If-None-Match short-circuits to 304, and pagination cursors
// pin the version so a republish invalidates them detectably (410)
// instead of silently skewing a walk.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mapit/internal/core"
	"mapit/internal/snapshot"
	"mapit/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Config supplies the inference inputs (IP2AS is required; Orgs,
	// Rels, IXP, F and Workers behave as in a batch run). The server
	// copies it per run and wires decode/spill health in itself.
	Config core.Config
	// Workers is the ingest parallelism (0 → GOMAXPROCS).
	Workers int
	// Strict aborts an ingest on the first corrupt input instead of
	// skipping damaged v3 blocks.
	Strict bool
	// Spill bounds collector memory during ingest.
	Spill core.SpillConfig
	// RequestTimeout bounds every query handler (default 10s).
	RequestTimeout time.Duration
	// IngestTimeout bounds POST /v1/ingest end to end (default 5m).
	IngestTimeout time.Duration
	// MaxBodyBytes caps a POST /v1/ingest body (default 256 MiB).
	MaxBodyBytes int64
	// PageSize is the default page length for paginated endpoints and
	// MaxPageSize the largest client-requestable limit (100 / 1000).
	PageSize, MaxPageSize int
	// Window, when positive, runs the server in sliding-window mode:
	// ingested traces carry timestamps (MTRC v4 or JSONL "time") and
	// only those within this trailing span stay in the evidence. Every
	// ingest advances the window to the batch's newest timestamp and
	// republishes; POST /v1/advance moves the clock without new traces
	// (expiry only). Must be a whole number of seconds, at least one.
	Window time.Duration
}

func (o *Options) setDefaults() {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.IngestTimeout == 0 {
		o.IngestTimeout = 5 * time.Minute
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 256 << 20
	}
	if o.PageSize == 0 {
		o.PageSize = 100
	}
	if o.MaxPageSize == 0 {
		o.MaxPageSize = 1000
	}
}

// runInfo is the immutable record of the last completed inference run,
// swapped in atomically alongside the snapshot so /v1/stats never reads
// a half-updated diagnostic.
type runInfo struct {
	diag       core.Diagnostics
	partition  *core.PartitionInfo
	inferences int
	traces     int
}

// Server is the mapitd query service. Construct with NewServer, mount
// Handler() on an http.Server, feed corpora through Ingest (directly
// for the startup load, or via POST /v1/ingest), and Close when done.
type Server struct {
	opt     Options
	handle  snapshot.Handle
	mux     *http.ServeMux
	metrics *metrics
	started time.Time

	// ingestMu serialises writers — the startup load and every
	// POST /v1/ingest (and, in window mode, /v1/advance). Readers go
	// through handle and never take it.
	ingestMu sync.Mutex
	// Exactly one of ing (batch mode) and win (sliding-window mode) is
	// non-nil; winDecode is the window path's decode-health counter.
	ing       *core.Ingestor
	win       *core.Window
	winDecode trace.DecodeStats
	ingests   atomic.Int64

	run  atomic.Pointer[runInfo]
	etag atomic.Pointer[etagEntry]
}

// etagEntry caches the rendered `"v<N>"` validator for the current
// version — versions change once per ingest but are stamped on every
// response, so formatting per request is pure waste.
type etagEntry struct {
	version uint64
	tag     string
}

// NewServer builds a server with no snapshot published; data endpoints
// answer 503 until the first successful Ingest. The only construction
// error is an invalid sliding-window configuration (Options.Window).
func NewServer(opt Options) (*Server, error) {
	opt.setDefaults()
	s := &Server{opt: opt, started: time.Now()}
	if opt.Window != 0 {
		if opt.Window < time.Second || opt.Window%time.Second != 0 {
			return nil, fmt.Errorf("serve: Options.Window must be a whole number of seconds, at least 1s (got %v)", opt.Window)
		}
		cfg := opt.Config
		cfg.DecodeStats = &s.winDecode
		win, err := core.NewWindow(core.WindowOptions{
			Length:        opt.Window,
			Config:        cfg,
			TrackMonitors: true,
		})
		if err != nil {
			return nil, err
		}
		s.win = win
	} else {
		s.ing = core.NewIngestor(core.IngestOptions{
			Workers:       opt.Workers,
			Strict:        opt.Strict,
			Spill:         opt.Spill,
			TrackMonitors: true,
		})
	}
	s.buildMux()
	return s, nil
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Version reports the currently published snapshot version (0 before
// the first publish).
func (s *Server) Version() uint64 { return s.handle.Version() }

// Close releases ingest resources (spill segment files). The published
// snapshot stays readable.
func (s *Server) Close() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ing == nil {
		return nil
	}
	return s.ing.Close()
}

// IngestSummary reports one completed ingest-and-publish cycle.
type IngestSummary struct {
	Version     uint64 `json:"version"`
	TracesAdded int    `json:"traces_added"`
	TracesTotal int    `json:"traces_total"`
	Inferences  int    `json:"inferences"`
	Addresses   int    `json:"addresses"`
	Links       int    `json:"links"`
}

// errBadCorpus wraps decode-phase ingest failures — the client sent a
// corpus the sniffing decoder rejected — so the handler can answer 400
// instead of 500.
var errBadCorpus = errors.New("bad corpus")

// Ingest decodes one corpus batch (MTRC v2/v3 binary, JSONL, or text —
// sniffed from the first bytes), folds it into the server's cumulative
// evidence, reruns inference over everything seen so far, and
// atomically publishes the resulting snapshot. In-flight readers keep
// the previous snapshot; the swap never blocks them. Concurrent
// ingests serialise. On a decode error nothing is published: traces
// added before the failure stay in the collector and ride along with
// the next successful batch — so callers must hand Ingest only readers
// that can run to EOF, never one that may be cut off mid-stream by a
// condition Ingest can't see (the HTTP handler spools request bodies
// to completion first for exactly this reason).
func (s *Server) Ingest(r io.Reader) (IngestSummary, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.win != nil {
		return s.ingestWindowLocked(r)
	}
	added, err := s.ing.Ingest(r)
	if err != nil {
		return IngestSummary{}, fmt.Errorf("%w: %w", errBadCorpus, err)
	}
	return s.publishLocked(added)
}

// errNotWindowed marks window-only operations invoked on a batch-mode
// server, so the handler can answer 409 instead of 500.
var errNotWindowed = errors.New("server is not in sliding-window mode")

// Advance moves the sliding window's right edge to now (seconds since
// the corpus epoch) without ingesting traces — expiring everything that
// fell out of the span — and republishes. Window mode only; moving the
// clock backwards is an error.
func (s *Server) Advance(now int64) (IngestSummary, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.win == nil {
		return IngestSummary{}, errNotWindowed
	}
	return s.publishWindowLocked(0, now)
}

// WindowStats snapshots the sliding window's lifetime and churn
// counters; nil in batch mode.
func (s *Server) WindowStats() *core.WindowStats {
	if s.win == nil {
		return nil
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	st := s.win.Stats()
	return &st
}

// ingestWindowLocked is the sliding-window ingest path: every decoded
// trace is observed into the window (late ones counted, not folded),
// then the window advances to the newest timestamp the batch carried —
// expiring old evidence — and republishes. Caller holds ingestMu.
func (s *Server) ingestWindowLocked(r io.Reader) (IngestSummary, error) {
	advanceTo := s.win.Now()
	added, err := core.DecodeTraces(r, trace.DecodeOptions{
		Permissive: !s.opt.Strict,
		Stats:      &s.winDecode,
	}, func(t trace.Trace) error {
		s.win.Observe(t)
		if t.Time > advanceTo {
			advanceTo = t.Time
		}
		return nil
	})
	if err != nil {
		return IngestSummary{}, fmt.Errorf("%w: %w", errBadCorpus, err)
	}
	return s.publishWindowLocked(added, advanceTo)
}

// publishWindowLocked advances the window, reruns inference over the
// residents, and swaps the snapshot in — bumping the version, so every
// advance invalidates version-pinned cursors and ETags like a batch
// republish does. Caller holds ingestMu.
func (s *Server) publishWindowLocked(added int, now int64) (IngestSummary, error) {
	res, err := s.win.Advance(now)
	if err != nil {
		return IngestSummary{}, fmt.Errorf("%w: %w", errBadCorpus, err)
	}
	snap := snapshot.Build(res, s.win.Evidence())
	s.run.Store(&runInfo{
		diag:       res.Diag,
		partition:  res.Partition,
		inferences: len(res.Inferences),
		traces:     s.win.Traces(),
	})
	s.handle.Swap(snap)
	s.ingests.Add(1)
	return IngestSummary{
		Version:     s.handle.Version(),
		TracesAdded: added,
		TracesTotal: s.win.Traces(),
		Inferences:  len(res.Inferences),
		Addresses:   snap.AddrCount(),
		Links:       snap.LinkCount(),
	}, nil
}

// publishLocked finishes the collector, reruns inference and swaps the
// snapshot in. Caller holds ingestMu.
func (s *Server) publishLocked(added int) (IngestSummary, error) {
	ev, err := s.ing.Finish()
	if err != nil {
		return IngestSummary{}, fmt.Errorf("finish evidence: %w", err)
	}
	cfg := s.opt.Config
	cfg.DecodeStats = s.ing.DecodeStats()
	sp := s.ing.SpillStats()
	cfg.SpillStats = &sp
	res, err := core.RunEvidence(ev, cfg)
	if err != nil {
		return IngestSummary{}, fmt.Errorf("inference: %w", err)
	}
	snap := snapshot.Build(res, ev)
	s.run.Store(&runInfo{
		diag:       res.Diag,
		partition:  res.Partition,
		inferences: len(res.Inferences),
		traces:     s.ing.Traces(),
	})
	s.handle.Swap(snap)
	s.ingests.Add(1)
	return IngestSummary{
		Version:     s.handle.Version(),
		TracesAdded: added,
		TracesTotal: s.ing.Traces(),
		Inferences:  len(res.Inferences),
		Addresses:   snap.AddrCount(),
		Links:       snap.LinkCount(),
	}, nil
}

// buildMux wires routes, per-route metrics and per-route timeouts.
// Query routes are bounded with a connection write deadline rather
// than http.TimeoutHandler: they do bounded CPU work over an immutable
// in-memory snapshot (no I/O, no locks), so the per-request watchdog
// goroutine, response buffer and context timer TimeoutHandler spends
// would guard against a hang that cannot happen while tripling the
// cost of the hot path. The deadline covers the real risk — a slow or
// stalled client draining the response. Ingest keeps TimeoutHandler:
// it decodes an arbitrary body and reruns inference, which genuinely
// needs an end-to-end bound.
func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.metrics = newMetrics()
	query := func(pattern, route string, h http.HandlerFunc) {
		s.mux.Handle(pattern, instrument(s.metrics.route(route),
			deadlineHandler(s.opt.RequestTimeout, h)))
	}
	query("GET /v1/lookup", "lookup", s.handleLookup)
	query("GET /v1/links", "links", s.handleLinks)
	query("GET /v1/monitors/{monitor}/evidence", "monitor-evidence", s.handleMonitor)
	query("GET /v1/healthz", "healthz", s.handleHealthz)
	query("GET /v1/stats", "stats", s.handleStats)
	// Ingest also runs under deadlineHandler, with its own (much longer)
	// bound, for two reasons: TimeoutHandler bounds only the handler,
	// not the post-handler write of the buffered response to a stalled
	// client, and setting the route's own deadline means an ingest never
	// depends on net/http clearing the previous request's (query-length)
	// deadline between keep-alive requests — current toolchains do
	// (conn.serve resets the write deadline after each response), older
	// ones leave it to leak. The extra RequestTimeout of headroom past
	// the TimeoutHandler bound covers draining the summary.
	s.mux.Handle("POST /v1/ingest", instrument(s.metrics.route("ingest"),
		deadlineHandler(s.opt.IngestTimeout+s.opt.RequestTimeout,
			http.TimeoutHandler(http.HandlerFunc(s.handleIngest), s.opt.IngestTimeout,
				`{"error":"request timed out"}`))))
	// Advance reruns inference (over fewer traces than an ingest), so it
	// gets the ingest route's end-to-end bound, and exists only on
	// windowed servers — batch servers 404 it.
	if s.win != nil {
		s.mux.Handle("POST /v1/advance", instrument(s.metrics.route("advance"),
			deadlineHandler(s.opt.IngestTimeout+s.opt.RequestTimeout,
				http.TimeoutHandler(http.HandlerFunc(s.handleAdvance), s.opt.IngestTimeout,
					`{"error":"request timed out"}`))))
	}
}

// deadlineHandler bounds how long a response may take to drain by
// setting the connection write deadline before the handler runs. Each
// route sets its own deadline, which also replaces whatever a previous
// request on the same keep-alive connection left behind. The error is
// deliberately dropped: on a real server the set succeeds (statusWriter
// unwraps to the connection — TestWriteDeadlineReachesConnection pins
// that), while httptest recorders legitimately don't support deadlines.
func deadlineHandler(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d))
		h.ServeHTTP(w, r)
	})
}

// instrument records count, error count and latency for one route.
func instrument(rm *routeMetrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		rm.observe(time.Since(start), sw.status)
	})
}
