package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
	"mapit/internal/trace"
)

// maxLookupAddrs caps how many addresses one /v1/lookup may resolve.
const maxLookupAddrs = 256

// writeJSON encodes v with the same two-space indentation the CLI uses,
// so /v1/lookup bodies are byte-identical to `mapit -lookup` output.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone; nothing useful to do with the error
}

type errorBody struct {
	Error string `json:"error"`
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// etagFor renders (with one-entry caching — the version only moves on
// ingest) the strong validator for a snapshot version.
func (s *Server) etagFor(version uint64) string {
	if e := s.etag.Load(); e != nil && e.version == version {
		return e.tag
	}
	tag := `"v` + strconv.FormatUint(version, 10) + `"`
	s.etag.Store(&etagEntry{version: version, tag: tag})
	return tag
}

// etagMatches evaluates an If-None-Match header against the current
// strong ETag.
func etagMatches(header, etag string) bool {
	if header == etag || header == "*" {
		return true
	}
	if !strings.ContainsAny(header, ",W ") {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// snapshotFor loads the published snapshot for a data endpoint, stamps
// the version ETag, and short-circuits the not-ready (503) and
// conditional-request (304) cases. ok=false means the response has
// already been written.
func (s *Server) snapshotFor(w http.ResponseWriter, r *http.Request) (snap *snapshot.Snapshot, version uint64, ok bool) {
	snap, version = s.handle.LoadVersion()
	if snap == nil {
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return nil, 0, false
	}
	etag := s.etagFor(version)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil, 0, false
	}
	return snap, version, true
}

// pageParams resolves limit and cursor for a paginated endpoint.
// ok=false means an error response has been written (400 for a bad
// limit or malformed cursor, 410 for a cursor minted against a
// superseded snapshot).
func (s *Server) pageParams(w http.ResponseWriter, q url.Values, version uint64) (limit, offset int, ok bool) {
	limit = s.opt.PageSize
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 || n > s.opt.MaxPageSize {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("limit must be an integer in 1..%d", s.opt.MaxPageSize))
			return 0, 0, false
		}
		limit = n
	}
	if tok := q.Get("cursor"); tok != "" {
		cv, off, err := decodeCursor(tok)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "malformed cursor")
			return 0, 0, false
		}
		if cv != version {
			jsonError(w, http.StatusGone, "cursor expired: a newer snapshot has been published")
			return 0, 0, false
		}
		offset = off
	}
	return limit, offset, true
}

// parseAddrParams flattens repeated and comma-separated addr values.
func parseAddrParams(params []string) ([]inet.Addr, error) {
	var addrs []inet.Addr
	for _, p := range params {
		for _, f := range strings.Split(p, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			a, err := inet.ParseAddr(f)
			if err != nil {
				return nil, fmt.Errorf("bad addr %q", f)
			}
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("missing addr parameter")
	}
	if len(addrs) > maxLookupAddrs {
		return nil, fmt.Errorf("too many addresses (max %d per request)", maxLookupAddrs)
	}
	return addrs, nil
}

// parseASParams flattens repeated and comma-separated as values; at
// most two are meaningful (a link endpoint pair).
func parseASParams(params []string) ([]inet.ASN, error) {
	var ases []inet.ASN
	for _, p := range params {
		for _, f := range strings.Split(p, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			a, err := inet.ParseASN(f)
			if err != nil {
				return nil, fmt.Errorf("bad as %q", f)
			}
			ases = append(ases, a)
		}
	}
	if len(ases) > 2 {
		return nil, errors.New("at most two as parameters")
	}
	return ases, nil
}

// handleLookup answers GET /v1/lookup?addr=A[,B][&addr=C] with the
// exact JSON array `mapit -lookup` prints.
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	snap, _, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	addrs, err := parseAddrParams(r.URL.Query()["addr"])
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	recs := make([]LookupRecord, 0, len(addrs))
	for _, a := range addrs {
		recs = append(recs, NewLookupRecord(snap, a))
	}
	writeJSON(w, http.StatusOK, recs)
}

type linksResponse struct {
	Version    uint64       `json:"version"`
	Links      []LinkRecord `json:"links"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// handleLinks answers GET /v1/links[?as=A[&as=B]] — the full link
// enumeration, one AS's links, or one AS pair — with cursor pagination.
func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	snap, version, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	ases, err := parseASParams(q["as"])
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit, offset, ok := s.pageParams(w, q, version)
	if !ok {
		return
	}
	resp := linksResponse{Version: version, Links: []LinkRecord{}}
	if len(ases) == 2 {
		// A single pair needs no walk: at most one record, on page one.
		if offset == 0 {
			if l := snap.Links(ases[0], ases[1]); l.Len() > 0 {
				resp.Links = append(resp.Links, NewLinkRecordView(ases[0], ases[1], l))
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	match := func(a, b inet.ASN) bool { return true }
	if len(ases) == 1 {
		want := ases[0]
		match = func(a, b inet.ASN) bool { return a == want || b == want }
	}
	seen := 0
	snap.EachLink(func(a, b inet.ASN, l snapshot.Link) bool {
		if !match(a, b) {
			return true
		}
		if seen < offset {
			seen++
			return true
		}
		if len(resp.Links) == limit {
			resp.NextCursor = encodeCursor(version, seen)
			return false
		}
		resp.Links = append(resp.Links, NewLinkRecordView(a, b, l))
		seen++
		return true
	})
	writeJSON(w, http.StatusOK, resp)
}

type monitorResponse struct {
	Version uint64 `json:"version"`
	MonitorRecord
	NextCursor string `json:"next_cursor,omitempty"`
}

// handleMonitor answers GET /v1/monitors/{monitor}/evidence with the
// vantage point's contributed adjacencies, cursor-paginated.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	snap, version, ok := s.snapshotFor(w, r)
	if !ok {
		return
	}
	name := r.PathValue("monitor")
	mon, found := snap.MonitorEvidence(name)
	if !found {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown monitor %q", name))
		return
	}
	limit, offset, ok := s.pageParams(w, r.URL.Query(), version)
	if !ok {
		return
	}
	resp := monitorResponse{
		Version: version,
		MonitorRecord: MonitorRecord{
			Monitor:     name,
			Traces:      mon.Traces(),
			Adjacencies: []AdjacencyRecord{},
		},
	}
	for i := offset; i < mon.Len(); i++ {
		if len(resp.Adjacencies) == limit {
			resp.NextCursor = encodeCursor(version, i)
			break
		}
		adj := mon.At(i)
		resp.Adjacencies = append(resp.Adjacencies, AdjacencyRecord{
			First:  adj.First.String(),
			Second: adj.Second.String(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthResponse struct {
	Status  string  `json:"status"`
	Ready   bool    `json:"ready"`
	Version uint64  `json:"version"`
	UptimeS float64 `json:"uptime_s"`
}

// handleHealthz answers GET /v1/healthz. Always 200 while the process
// serves; Ready reports whether a snapshot has been published.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap, version := s.handle.LoadVersion()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:  "ok",
		Ready:   snap != nil,
		Version: version,
		UptimeS: time.Since(s.started).Seconds(),
	})
}

type statsResponse struct {
	Version    uint64                `json:"version"`
	Ready      bool                  `json:"ready"`
	UptimeS    float64               `json:"uptime_s"`
	Ingests    int64                 `json:"ingests"`
	Traces     int                   `json:"traces"`
	Inferences int                   `json:"inferences"`
	Addresses  int                   `json:"addresses"`
	Links      int                   `json:"links"`
	Monitors   int                   `json:"monitors"`
	Diag       *core.Diagnostics     `json:"diag,omitempty"`
	Partition  *core.PartitionInfo   `json:"partition,omitempty"`
	Decode     *trace.DecodeStats    `json:"decode,omitempty"`
	Spill      *core.SpillStats      `json:"spill,omitempty"`
	Window     *core.WindowStats     `json:"window,omitempty"`
	HTTP       map[string]RouteStats `json:"http"`
}

// handleStats answers GET /v1/stats: snapshot dimensions, the last
// run's diagnostics (including decode and spill health), partition
// info, and per-route HTTP counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap, version := s.handle.LoadVersion()
	resp := statsResponse{
		Version: version,
		Ready:   snap != nil,
		UptimeS: time.Since(s.started).Seconds(),
		Ingests: s.ingests.Load(),
		HTTP:    s.metrics.report(),
	}
	if snap != nil {
		resp.Addresses = snap.AddrCount()
		resp.Links = snap.LinkCount()
		resp.Monitors = snap.MonitorCount()
	}
	if ri := s.run.Load(); ri != nil {
		resp.Traces = ri.traces
		resp.Inferences = ri.inferences
		diag := ri.diag
		resp.Diag = &diag
		resp.Partition = ri.partition
		decode := diag.Decode
		resp.Decode = &decode
		spill := diag.Spill
		resp.Spill = &spill
	}
	resp.Window = s.WindowStats()
	writeJSON(w, http.StatusOK, resp)
}

// handleAdvance answers POST /v1/advance?now=N on sliding-window
// servers: the window's right edge moves to N seconds, expired
// evidence drops out, and the republished snapshot's summary is
// returned. Moving backwards is a 400.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	now, err := strconv.ParseInt(r.URL.Query().Get("now"), 10, 64)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "missing or malformed ?now=<seconds>")
		return
	}
	sum, err := s.Advance(now)
	if err != nil {
		switch {
		case errors.Is(err, errNotWindowed):
			jsonError(w, http.StatusConflict, err.Error())
		case errors.Is(err, errBadCorpus):
			jsonError(w, http.StatusBadRequest, err.Error())
		default:
			jsonError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleIngest answers POST /v1/ingest: the body is one corpus batch
// (MTRC v2/v3 binary, JSONL, or text). On success the new snapshot is
// already published and the summary reports its version.
//
// The body is spooled to completion before a byte of it is decoded.
// The permissive binary decoder deliberately survives truncation (it
// skips damaged tails and reports success), and the server's collector
// is cumulative — traces it accepts cannot be taken back. Decoding
// while reading would therefore fold the intact prefix of an
// over-limit body into the evidence even though the request is
// answered 413, and the clipped batch would ride along with the next
// successful publish. Spooling first means a MaxBytesReader trip is a
// clean rejection: the collector never sees the batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tooLarge := func() {
		jsonError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", s.opt.MaxBodyBytes))
	}
	if r.ContentLength > s.opt.MaxBodyBytes {
		tooLarge() // declared oversized: reject without reading
		return
	}
	body, cleanup, err := spoolBody(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	defer cleanup()
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			tooLarge()
		} else {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		}
		return
	}
	sum, err := s.Ingest(body)
	if err != nil {
		if errors.Is(err, errBadCorpus) {
			jsonError(w, http.StatusBadRequest, err.Error())
		} else {
			jsonError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, sum)
}
