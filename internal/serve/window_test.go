package serve_test

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"mapit"
	"mapit/internal/serve"
)

// timedCorpusV4 returns the five-trace test corpus stamped with the
// given times and encoded as MTRC v4 (times must be non-decreasing).
func timedCorpusV4(t *testing.T, times []int64) []byte {
	t.Helper()
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) != len(times) {
		t.Fatalf("corpus has %d traces, fixture expects %d", len(ds.Traces), len(times))
	}
	for i := range ds.Traces {
		ds.Traces[i].Time = times[i]
	}
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocksV4(&buf, ds, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newWindowServer(t *testing.T, window time.Duration) *serve.Server {
	t.Helper()
	return newServer(t, serve.Options{Window: window})
}

// TestWindowServerValidation: a bad window length must fail server
// construction, not surface later.
func TestWindowServerValidation(t *testing.T) {
	_, err := serve.NewServer(serve.Options{Window: -time.Second})
	if err == nil {
		t.Fatal("NewServer accepted a negative window")
	}
	_, err = serve.NewServer(serve.Options{Window: 1500 * time.Millisecond})
	if err == nil {
		t.Fatal("NewServer accepted a fractional-second window")
	}
}

// TestAdvanceExpiresCursorsAndETags is the windowed-republish
// regression test: a POST /v1/advance that expires evidence must bump
// the snapshot version — invalidating cached ETags — and answer 410
// for /v1/links cursors pinned to the pre-advance snapshot.
func TestAdvanceExpiresCursorsAndETags(t *testing.T) {
	srv := newWindowServer(t, 300*time.Second)

	// Ingest the timestamped corpus; the window advances to t=250.
	sum, err := srv.Ingest(bytes.NewReader(timedCorpusV4(t, []int64{100, 110, 120, 130, 250})))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TracesAdded != 5 || sum.TracesTotal != 5 {
		t.Fatalf("ingest summary = %+v, want 5 added, 5 resident", sum)
	}
	if sum.Version != srv.Version() {
		t.Fatalf("summary version %d != server version %d", sum.Version, srv.Version())
	}

	// Pin a links cursor and an ETag to the current snapshot.
	var page linksResponse
	rec := get(t, srv, "/v1/links?limit=1")
	decode(t, rec, &page)
	if page.NextCursor == "" {
		t.Fatal("first page returned no cursor; corpus too small")
	}
	v1 := etagVersion(t, rec)

	// Advance far enough that the four t<=130 traces expire: only the
	// t=250 trace stays resident in (200, 500].
	adv := do(t, srv, http.MethodPost, "/v1/advance?now=500", nil, nil)
	if adv.Code != http.StatusOK {
		t.Fatalf("advance: status = %d (body %s)", adv.Code, adv.Body)
	}
	var advSum serve.IngestSummary
	decode(t, adv, &advSum)
	if advSum.TracesAdded != 0 || advSum.TracesTotal != 1 {
		t.Fatalf("advance summary = %+v, want 0 added, 1 resident", advSum)
	}
	if advSum.Version <= v1 {
		t.Fatalf("advance did not bump the version: %d -> %d", v1, advSum.Version)
	}

	// The pinned cursor is gone, and the fresh ETag differs.
	rec = get(t, srv, "/v1/links?limit=1&cursor="+page.NextCursor)
	if rec.Code != http.StatusGone {
		t.Errorf("stale cursor after advance: status = %d, want 410 (body %s)", rec.Code, rec.Body)
	}
	rec = get(t, srv, "/v1/links?limit=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("links after advance: status = %d (body %s)", rec.Code, rec.Body)
	}
	if v2 := etagVersion(t, rec); v2 == v1 {
		t.Errorf("ETag version unchanged across advance: v%d", v2)
	}

	// Only ark3's intra-AS trace survived, so the published snapshot
	// must no longer know the inter-AS addresses from the expired part
	// of the corpus.
	var lookup []lookupRecord
	decode(t, get(t, srv, "/v1/lookup?addr=109.105.98.10"), &lookup)
	if n := len(lookup[0].Inferences); n != 0 {
		t.Errorf("expired address still carries %d inferences", n)
	}
}

// TestWindowStatsEndpoint: /v1/stats grows a "window" section with the
// churn counters in windowed mode.
func TestWindowStatsEndpoint(t *testing.T) {
	srv := newWindowServer(t, 300*time.Second)
	if _, err := srv.Ingest(bytes.NewReader(timedCorpusV4(t, []int64{100, 110, 120, 130, 250}))); err != nil {
		t.Fatal(err)
	}
	// The whole corpus was resident after ingest; advancing past
	// t=250+300 expires everything, so every born link also dies.
	if _, err := srv.Advance(600); err != nil {
		t.Fatal(err)
	}

	var stats struct {
		Window *struct {
			Advances       int   `json:"advances"`
			Recomputes     int   `json:"recomputes"`
			TracesObserved int64 `json:"traces_observed"`
			TracesExpired  int64 `json:"traces_expired"`
			TracesActive   int   `json:"traces_active"`
			LinkBirths     int   `json:"link_births"`
			LinkDeaths     int   `json:"link_deaths"`
		} `json:"window"`
	}
	decode(t, get(t, srv, "/v1/stats"), &stats)
	if stats.Window == nil {
		t.Fatal("/v1/stats has no window section on a windowed server")
	}
	w := stats.Window
	if w.Advances != 2 || w.TracesObserved != 5 || w.TracesExpired != 5 || w.TracesActive != 0 {
		t.Errorf("window stats = %+v, want advances=2 observed=5 expired=5 active=0", *w)
	}
	if w.LinkBirths == 0 || w.LinkDeaths != w.LinkBirths {
		t.Errorf("churn counters = births %d deaths %d, want equal and nonzero after full expiry",
			w.LinkBirths, w.LinkDeaths)
	}

	// Batch servers must not grow the section.
	batch := newIngestedServer(t)
	var batchStats struct {
		Window any `json:"window"`
	}
	decode(t, get(t, batch, "/v1/stats"), &batchStats)
	if batchStats.Window != nil {
		t.Errorf("batch /v1/stats carries a window section: %v", batchStats.Window)
	}
}

// TestAdvanceErrors pins the /v1/advance failure contract: malformed
// and backwards clocks answer 400, and the route does not exist at all
// on a batch-mode server.
func TestAdvanceErrors(t *testing.T) {
	srv := newWindowServer(t, 60*time.Second)
	if _, err := srv.Ingest(bytes.NewReader(timedCorpusV4(t, []int64{100, 110, 120, 130, 250}))); err != nil {
		t.Fatal(err)
	}

	for _, target := range []string{"/v1/advance", "/v1/advance?now=abc"} {
		if rec := do(t, srv, http.MethodPost, target, nil, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s: status = %d, want 400", target, rec.Code)
		}
	}
	if rec := do(t, srv, http.MethodPost, "/v1/advance?now=10", nil, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("backwards advance: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	if _, err := srv.Advance(10); err == nil {
		t.Error("Advance(10) after now=250 succeeded")
	}

	batch := newIngestedServer(t)
	if rec := do(t, batch, http.MethodPost, "/v1/advance?now=100", nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("batch /v1/advance: status = %d, want 404 (route unregistered)", rec.Code)
	}
	if _, err := batch.Advance(100); err == nil {
		t.Error("batch-mode Advance succeeded")
	}
}

// TestWindowIngestLateTraces: traces already expired on arrival are
// counted, not folded in, and do not move the clock backwards.
func TestWindowIngestLateTraces(t *testing.T) {
	srv := newWindowServer(t, 60*time.Second)
	if _, err := srv.Ingest(bytes.NewReader(timedCorpusV4(t, []int64{200, 210, 220, 230, 300}))); err != nil {
		t.Fatal(err)
	}
	// All five stamped inside (240, 300] minus the four already
	// expired: t in {200..230} are late on arrival next batch.
	sum, err := srv.Ingest(bytes.NewReader(timedCorpusV4(t, []int64{100, 110, 120, 130, 150})))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TracesTotal != 1 {
		t.Fatalf("late batch changed residency: %+v, want 1 resident", sum)
	}
	st := srv.WindowStats()
	if st == nil {
		t.Fatal("WindowStats nil on windowed server")
	}
	if st.TracesLate != 5 {
		t.Errorf("TracesLate = %d, want 5", st.TracesLate)
	}
	if got := srv.WindowStats().TracesActive; got != 1 {
		t.Errorf("TracesActive = %d, want 1", got)
	}
}
