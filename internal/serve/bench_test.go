package serve_test

import (
	"bytes"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"

	"mapit"
	"mapit/internal/core"
	"mapit/internal/eval"
	"mapit/internal/serve"
)

// httpBenchWorld builds the serving fixture once per process: a
// synthetic topology's trace sweep ingested into a live server (so the
// measured path is exactly production's — mux, timeout middleware,
// metrics, snapshot resolve, JSON encode), plus the query mix.
var httpBenchWorld = struct {
	once  sync.Once
	srv   *serve.Server
	paths []string   // pre-rendered /v1/lookup targets, hits plus a miss tail
	urls  []*url.URL // the same targets pre-parsed for the lean client
}{}

func httpBenchSetup(b *testing.B) (*serve.Server, []string) {
	httpBenchWorld.once.Do(func() {
		env := eval.NewEnv(eval.SmallEnvConfig())

		// Serialize the dataset and feed it through the real ingest
		// path, exactly as mapitd's startup load or POST /v1/ingest
		// would.
		var buf bytes.Buffer
		if err := mapit.WriteTracesBinaryBlocks(&buf, env.Dataset, 256); err != nil {
			panic(err)
		}
		srv, err := serve.NewServer(serve.Options{Config: env.Config(0.5)})
		if err != nil {
			panic(err)
		}
		if _, err := srv.Ingest(&buf); err != nil {
			panic(err)
		}
		httpBenchWorld.srv = srv

		// The query mix: every inferred address (computed independently
		// of the server so the fixture doesn't lean on the code under
		// test), with one miss per eight hits.
		c := core.NewCollector()
		for _, tr := range env.Dataset.Traces {
			c.Add(tr)
		}
		res, err := core.RunEvidence(c.Evidence(), env.Config(0.5))
		if err != nil {
			panic(err)
		}
		seen := make(map[string]bool, len(res.Inferences))
		for _, inf := range res.Inferences {
			a := inf.Addr.String()
			if !seen[a] {
				seen[a] = true
				httpBenchWorld.paths = append(httpBenchWorld.paths, "/v1/lookup?addr="+a)
			}
		}
		misses := len(httpBenchWorld.paths)/8 + 1
		for i := 0; i < misses; i++ {
			httpBenchWorld.paths = append(httpBenchWorld.paths,
				"/v1/lookup?addr=254.0."+itoa(i/256)+"."+itoa(i%256))
		}
		for _, p := range httpBenchWorld.paths {
			u, err := url.Parse(p)
			if err != nil {
				panic(err)
			}
			httpBenchWorld.urls = append(httpBenchWorld.urls, u)
		}
	})
	if len(httpBenchWorld.paths) == 0 {
		b.Fatal("bench corpus produced no lookup targets")
	}
	return httpBenchWorld.srv, httpBenchWorld.paths
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d [3]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d[i:])
}

// benchWriter is the lean load-generator sink: it captures status and
// headers and counts (but discards) body bytes, so the benchmark
// measures the server's cost per request, not httptest's recorder.
type benchWriter struct {
	hdr    http.Header
	status int
	n      int
}

func (w *benchWriter) Header() http.Header { return w.hdr }
func (w *benchWriter) WriteHeader(s int)   { w.status = s }
func (w *benchWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// benchHeader is the shared (read-only) request header.
var benchHeader = http.Header{}

// BenchmarkServeHTTP is the daemon's headline load benchmark: parallel
// clients resolving addresses through the full HTTP stack — route
// match, deadline middleware, metrics, ETag stamp, snapshot resolve,
// indented JSON encode. Reports http_lookups/s; the committed
// BENCH_serve.json snapshot requires it ≥ 100k/s.
func BenchmarkServeHTTP(b *testing.B) {
	srv, _ := httpBenchSetup(b)
	urls := httpBenchWorld.urls
	h := srv.Handler()
	b.ReportAllocs()
	var cursor atomic.Uint64
	var failures atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 0x9e3779b9 // decorrelate goroutine start points
		for pb.Next() {
			u := urls[i%uint64(len(urls))]
			i++
			req := &http.Request{
				Method:     http.MethodGet,
				URL:        u,
				Proto:      "HTTP/1.1",
				ProtoMajor: 1,
				ProtoMinor: 1,
				Host:       "bench.local",
				RequestURI: u.RequestURI(),
				Header:     benchHeader,
			}
			w := &benchWriter{hdr: make(http.Header, 4), status: http.StatusOK}
			h.ServeHTTP(w, req)
			if w.status != http.StatusOK || w.n == 0 {
				failures.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := failures.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "http_lookups/s")
}
