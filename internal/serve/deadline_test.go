package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"
	"time"
)

// statusWriter must unwrap for http.NewResponseController to reach the
// connection through it; losing this method silently turns every
// deadlineHandler into a no-op.
var _ interface{ Unwrap() http.ResponseWriter } = (*statusWriter)(nil)

// TestWriteDeadlineReachesConnection proves the deadline middleware is
// not a no-op against a real net/http server: SetWriteDeadline issued
// beneath the full instrument → deadlineHandler chain (i.e. through
// the statusWriter wrapper) must reach the underlying connection.
func TestWriteDeadlineReachesConnection(t *testing.T) {
	errc := make(chan error, 1)
	h := instrument(newMetrics().route("probe"),
		deadlineHandler(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			errc <- http.NewResponseController(w).SetWriteDeadline(time.Now().Add(time.Second))
		})))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := <-errc; err != nil {
		t.Fatalf("SetWriteDeadline through the middleware chain: %v", err)
	}
}

// TestDeadlineDoesNotLeakAcrossKeepAlive pins the keep-alive
// sequence the ingest route must survive: a slow route served on a
// reused connection right after a fast query route must not be killed
// by the query's short write deadline. Current net/http clears the
// write deadline between requests, and every route here sets its own
// deadline besides (so the property holds on toolchains that don't
// clear); this test holds the combination together.
func TestDeadlineDoesNotLeakAcrossKeepAlive(t *testing.T) {
	m := newMetrics()
	mux := http.NewServeMux()
	mux.Handle("/query", instrument(m.route("query"),
		deadlineHandler(50*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "ok")
		}))))
	mux.Handle("/slow", instrument(m.route("slow"),
		deadlineHandler(time.Minute, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(200 * time.Millisecond) // outlives /query's deadline
			io.WriteString(w, "slow ok")
		}))))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client := ts.Client()

	var reused atomic.Bool
	ct := &httptrace.ClientTrace{
		GotConn: func(ci httptrace.GotConnInfo) { reused.Store(ci.Reused) },
	}
	get := func(path string) (string, error) {
		req, err := http.NewRequestWithContext(
			httptrace.WithClientTrace(context.Background(), ct), http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if _, err := get("/query"); err != nil {
		t.Fatal(err)
	}
	body, err := get("/slow")
	if err != nil {
		t.Fatalf("slow route after a query on the same connection: %v", err)
	}
	if body != "slow ok" {
		t.Fatalf("slow route body = %q, want %q", body, "slow ok")
	}
	if !reused.Load() {
		t.Skip("connection was not reused; the keep-alive sequence was not exercised")
	}
}

func TestSpoolBody(t *testing.T) {
	for _, tc := range []struct {
		name string
		size int
	}{
		{"in-memory", 64},
		{"overflows-to-disk", spoolMemLimit + 1234},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := bytes.Repeat([]byte{'x'}, tc.size)
			body, cleanup, err := spoolBody(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			got, err := io.ReadAll(body)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("spool round-trip lost data: %d bytes in, %d out", len(want), len(got))
			}
		})
	}
}

// TestSpoolBodyPropagatesReadError pins the veto contract: a reader
// that fails mid-stream (the MaxBytesReader trip, in production) must
// surface its error from spoolBody — before any decoding could start.
func TestSpoolBodyPropagatesReadError(t *testing.T) {
	failing := io.MultiReader(bytes.NewReader([]byte("MTRC\x03partial")), failReader{})
	if _, cleanup, err := spoolBody(failing); err == nil {
		cleanup()
		t.Fatal("spoolBody swallowed a mid-stream read error")
	}
}

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }
