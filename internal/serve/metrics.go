package serve

import (
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"
)

// bucketCount is the number of log2 latency buckets: bucket i counts
// requests that finished in [2^(i-1), 2^i) microseconds (bucket 0 is
// <1µs), and the last bucket is a catch-all for everything slower than
// ~262ms.
const bucketCount = 19

// metrics holds per-route request counters and latency histograms,
// surfaced on /v1/stats. The route map is fixed at mux construction and
// read-only afterwards; every counter is atomic, so recording a request
// costs a few atomic adds and no locks — the serving hot path never
// contends.
type metrics struct {
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64 // responses with status >= 400
	buckets [bucketCount]atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

// route registers (or returns) the metrics slot for a route name. Only
// called during mux construction.
func (m *metrics) route(name string) *routeMetrics {
	rm := m.routes[name]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[name] = rm
	}
	return rm
}

// observe records one finished request.
func (rm *routeMetrics) observe(d time.Duration, status int) {
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	us := d.Microseconds()
	b := bits.Len64(uint64(us)) // 0 → bucket 0, 1µs → 1, 2-3µs → 2, ...
	if b >= bucketCount {
		b = bucketCount - 1
	}
	rm.buckets[b].Add(1)
}

// LatencyBucket is one non-empty histogram bucket of a route's latency
// distribution: N requests finished in at most Le microseconds (the
// last bucket reports Le 0, meaning "slower than every bounded
// bucket").
type LatencyBucket struct {
	Le int64 `json:"le_us"`
	N  int64 `json:"n"`
}

// RouteStats is one route's counters as reported by /v1/stats.
type RouteStats struct {
	Requests int64           `json:"requests"`
	Errors   int64           `json:"errors"`
	Latency  []LatencyBucket `json:"latency_us,omitempty"`
}

// snapshot flattens the histogram, dropping empty buckets.
func (rm *routeMetrics) snapshot() RouteStats {
	rs := RouteStats{Requests: rm.count.Load(), Errors: rm.errors.Load()}
	for i := 0; i < bucketCount; i++ {
		n := rm.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0) // catch-all
		if i < bucketCount-1 {
			le = int64(1) << i
		}
		rs.Latency = append(rs.Latency, LatencyBucket{Le: le, N: n})
	}
	return rs
}

// report snapshots every route, keyed by route name.
func (m *metrics) report() map[string]RouteStats {
	out := make(map[string]RouteStats, len(m.routes))
	for name, rm := range m.routes {
		out[name] = rm.snapshot()
	}
	return out
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the wrapped writer so http.NewResponseController can
// reach the connection's deadline controls through this wrapper —
// without it, deadlineHandler's SetWriteDeadline silently fails with
// ErrNotSupported.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
