package serve

import (
	"bytes"
	"io"
	"os"
)

// spoolMemLimit is how much of a request body spoolBody holds in
// memory before overflowing the whole stream to a temp file — the same
// bounded-memory discipline the spill collector applies to evidence.
const spoolMemLimit = 4 << 20

// spoolBody reads r to EOF and returns a reader over the complete
// bytes, buffering small bodies in memory and large ones in an
// unnamed-after-cleanup temp file. Reading to completion up front is
// what lets the ingest handler observe a body-limit (or transport)
// error before any decoding starts; cleanup is always non-nil and must
// be called once the returned reader is no longer needed.
func spoolBody(r io.Reader) (body io.Reader, cleanup func(), err error) {
	noop := func() {}
	var head bytes.Buffer
	if _, err := io.CopyN(&head, r, spoolMemLimit); err != nil {
		if err == io.EOF {
			return &head, noop, nil
		}
		return nil, noop, err
	}
	// The body outgrew the memory budget: restart the spool on disk so
	// the decoder still sees one contiguous stream.
	f, err := os.CreateTemp("", "mapitd-ingest-*")
	if err != nil {
		return nil, noop, err
	}
	cleanup = func() {
		f.Close()
		os.Remove(f.Name())
	}
	if _, err := f.Write(head.Bytes()); err != nil {
		cleanup()
		return nil, noop, err
	}
	if _, err := io.Copy(f, r); err != nil {
		cleanup()
		return nil, noop, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		cleanup()
		return nil, noop, err
	}
	return f, cleanup, nil
}
