package serve

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Pagination cursors are stateless and snapshot-pinned: the opaque
// token encodes the snapshot version it was minted against plus the
// next element offset. Because a snapshot is immutable, an offset into
// its (stable) enumeration order is exactly reproducible as long as the
// version still matches; when an ingest publishes a new snapshot, every
// outstanding cursor is detectably stale and the client restarts the
// walk instead of silently skipping or repeating elements. A stale
// cursor answers 410 Gone, a malformed one 400.

var errCursorSyntax = errors.New("malformed cursor")

// encodeCursor mints the opaque token.
func encodeCursor(version uint64, offset int) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte("v" + strconv.FormatUint(version, 10) + "." + strconv.Itoa(offset)))
}

// decodeCursor parses a client-supplied token. The version is validated
// by the caller against the current snapshot.
func decodeCursor(tok string) (version uint64, offset int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", errCursorSyntax, err)
	}
	s := string(raw)
	rest, ok := strings.CutPrefix(s, "v")
	if !ok {
		return 0, 0, errCursorSyntax
	}
	vs, os, ok := strings.Cut(rest, ".")
	if !ok {
		return 0, 0, errCursorSyntax
	}
	version, err = strconv.ParseUint(vs, 10, 64)
	if err != nil {
		return 0, 0, errCursorSyntax
	}
	offset, err = strconv.Atoi(os)
	if err != nil || offset < 0 {
		return 0, 0, errCursorSyntax
	}
	return version, offset, nil
}
