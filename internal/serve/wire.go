package serve

import (
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
)

// The wire shapes of every JSON record the project emits — shared by
// the mapit CLI (-format json, -links, -lookup) and the mapitd query
// endpoints, so the two surfaces encode byte-identical records and a
// differential test can hold them together. Every slice field is
// initialised by its constructor: an empty list encodes as [], never
// null.

// InferenceRecord is one inference record.
type InferenceRecord struct {
	Addr      string `json:"addr"`
	Direction string `json:"direction"`
	Local     uint32 `json:"local_as"`
	Connected uint32 `json:"connected_as"`
	OtherSide string `json:"other_side,omitempty"`
	Uncertain bool   `json:"uncertain,omitempty"`
	Stub      bool   `json:"stub_heuristic,omitempty"`
	Indirect  bool   `json:"indirect,omitempty"`
}

// NewInferenceRecord encodes one inference.
func NewInferenceRecord(inf core.Inference) InferenceRecord {
	r := InferenceRecord{
		Addr:      inf.Addr.String(),
		Direction: inf.Dir.String(),
		Local:     uint32(inf.Local),
		Connected: uint32(inf.Connected),
		Uncertain: inf.Uncertain,
		Stub:      inf.Stub,
		Indirect:  inf.Indirect,
	}
	if !inf.OtherSide.IsZero() {
		r.OtherSide = inf.OtherSide.String()
	}
	return r
}

// LookupRecord is one requested address with every matching inference
// record (empty, not null, for addresses the run made no inference
// about).
type LookupRecord struct {
	Addr       string            `json:"addr"`
	Inferences []InferenceRecord `json:"inferences"`
}

// NewLookupRecord resolves one address against a compiled snapshot.
func NewLookupRecord(s *snapshot.Snapshot, a inet.Addr) LookupRecord {
	rows := s.Lookup(a)
	rec := LookupRecord{Addr: a.String(), Inferences: make([]InferenceRecord, 0, rows.Len())}
	for i := 0; i < rows.Len(); i++ {
		rec.Inferences = append(rec.Inferences, NewInferenceRecord(rows.At(i)))
	}
	return rec
}

// LinkRecord is one aggregated AS-pair link with its evidencing
// interface addresses.
type LinkRecord struct {
	A          uint32   `json:"as_a"`
	B          uint32   `json:"as_b"`
	Interfaces []string `json:"interfaces"`
}

// NewLinkRecord encodes one aggregated link from a result.
func NewLinkRecord(l core.ASLink) LinkRecord {
	r := LinkRecord{
		A:          uint32(l.A),
		B:          uint32(l.B),
		Interfaces: make([]string, 0, len(l.Addrs)),
	}
	for _, a := range l.Addrs {
		r.Interfaces = append(r.Interfaces, a.String())
	}
	return r
}

// NewLinkRecordView encodes one AS pair's link from a snapshot view —
// identical to NewLinkRecord over the equivalent Result.Links entry.
func NewLinkRecordView(a, b inet.ASN, l snapshot.Link) LinkRecord {
	r := LinkRecord{
		A:          uint32(a),
		B:          uint32(b),
		Interfaces: make([]string, 0, l.Len()),
	}
	for i := 0; i < l.Len(); i++ {
		r.Interfaces = append(r.Interfaces, l.Addr(i).String())
	}
	return r
}

// AdjacencyRecord is one observed adjacency of a monitor's contributed
// evidence.
type AdjacencyRecord struct {
	First  string `json:"first"`
	Second string `json:"second"`
}

// MonitorRecord is one vantage point's contributed evidence (or a page
// of it).
type MonitorRecord struct {
	Monitor     string            `json:"monitor"`
	Traces      int               `json:"traces"`
	Adjacencies []AdjacencyRecord `json:"adjacencies"`
}
