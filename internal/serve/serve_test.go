package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mapit"
	"mapit/internal/serve"
)

const testTraces = `# Fig 2 style scenario
ark1|199.109.200.1|109.105.98.10 198.71.45.2
ark1|199.109.200.2|109.105.98.10 198.71.46.180
ark1|199.109.200.3|109.105.98.10 199.109.5.1
ark2|199.109.200.4|64.57.28.1 199.109.5.1
ark3|109.105.200.1|109.105.98.9 109.105.80.1
`

const testRIB = `rc00|109.105.0.0/16|2603
rc00|198.71.0.0/16|11537
rc00|64.57.0.0/16|11537
rc00|199.109.0.0/16|3754
`

func testConfig(t *testing.T) mapit.Config {
	t.Helper()
	table, err := mapit.ReadRIB(strings.NewReader(testRIB))
	if err != nil {
		t.Fatal(err)
	}
	return mapit.Config{IP2AS: table, F: 0.5, Workers: 2}
}

func binaryCorpus(t *testing.T) []byte {
	t.Helper()
	ds, err := mapit.ReadTraces(strings.NewReader(testTraces))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocks(&buf, ds, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newServer(t *testing.T, opt serve.Options) *serve.Server {
	t.Helper()
	if opt.Config.IP2AS == nil {
		opt.Config = testConfig(t)
	}
	srv, err := serve.NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// newIngestedServer returns a server with the test corpus published as
// snapshot v1.
func newIngestedServer(t *testing.T) *serve.Server {
	t.Helper()
	srv := newServer(t, serve.Options{})
	sum, err := srv.Ingest(bytes.NewReader(binaryCorpus(t)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Version != 1 || sum.TracesTotal != 5 {
		t.Fatalf("initial ingest summary = %+v, want version 1, 5 traces", sum)
	}
	return srv
}

func do(t *testing.T, srv *serve.Server, method, target string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, r)
	return rec
}

func get(t *testing.T, srv *serve.Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	return do(t, srv, http.MethodGet, target, nil, nil)
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
}

// etagVersion parses the `"v<N>"` strong ETag.
func etagVersion(t *testing.T, rec *httptest.ResponseRecorder) uint64 {
	t.Helper()
	tag := rec.Header().Get("ETag")
	s := strings.TrimSuffix(strings.TrimPrefix(tag, `"v`), `"`)
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("unparseable ETag %q", tag)
	}
	return v
}

type lookupRecord struct {
	Addr       string `json:"addr"`
	Inferences []struct {
		Addr      string `json:"addr"`
		Direction string `json:"direction"`
		Local     uint32 `json:"local_as"`
		Connected uint32 `json:"connected_as"`
	} `json:"inferences"`
}

func TestLookupEndpoint(t *testing.T) {
	srv := newIngestedServer(t)
	rec := get(t, srv, "/v1/lookup?addr=109.105.98.10,198.71.45.2&addr=203.0.113.9")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if v := etagVersion(t, rec); v != 1 {
		t.Errorf("ETag version = %d, want 1", v)
	}
	if bytes.Contains(rec.Body.Bytes(), []byte("null")) {
		t.Errorf("lookup body leaks null: %s", rec.Body)
	}
	var recs []lookupRecord
	decode(t, rec, &recs)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Addr != "109.105.98.10" || recs[2].Addr != "203.0.113.9" {
		t.Errorf("records out of request order: %+v", recs)
	}
	total := 0
	for _, r := range recs {
		total += len(r.Inferences)
	}
	if total == 0 {
		t.Error("corpus addresses produced no inference records; the test corpus is vacuous")
	}
	if len(recs[2].Inferences) != 0 {
		t.Errorf("unknown address produced inferences: %+v", recs[2].Inferences)
	}
}

func TestLookupErrors(t *testing.T) {
	empty := newServer(t, serve.Options{})
	if rec := get(t, empty, "/v1/lookup?addr=1.2.3.4"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("before first publish: status = %d, want 503", rec.Code)
	}

	srv := newIngestedServer(t)
	for _, target := range []string{
		"/v1/lookup",                   // missing addr
		"/v1/lookup?addr=",             // empty addr
		"/v1/lookup?addr=not-an-ip",    // malformed
		"/v1/lookup?addr=1.2.3.4,zzz",  // one malformed in a list
		"/v1/lookup?addr=1.2.3.4.5",    // malformed
		"/v1/lookup?addr=" + manyAddrs, // over the per-request cap
	} {
		rec := get(t, srv, target)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status = %d, want 400 (body %s)", target, rec.Code, rec.Body)
		}
		var eb struct {
			Error string `json:"error"`
		}
		decode(t, rec, &eb)
		if eb.Error == "" {
			t.Errorf("GET %s: error body missing message", target)
		}
	}
}

// manyAddrs is 300 comma-separated valid addresses — over the 256 cap.
var manyAddrs = func() string {
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "10.0.%d.%d", i/256, i%256)
	}
	return sb.String()
}()

func TestETagConditionalRequests(t *testing.T) {
	srv := newIngestedServer(t)
	rec := get(t, srv, "/v1/lookup?addr=109.105.98.10")
	etag := rec.Header().Get("ETag")
	if etag != `"v1"` {
		t.Fatalf("ETag = %q, want \"v1\"", etag)
	}

	// Matching If-None-Match answers 304 with no body.
	rec = do(t, srv, http.MethodGet, "/v1/lookup?addr=109.105.98.10", nil,
		map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Errorf("matching If-None-Match: status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("304 carried a body: %s", rec.Body)
	}

	// A stale validator answers the full 200.
	rec = do(t, srv, http.MethodGet, "/v1/lookup?addr=109.105.98.10", nil,
		map[string]string{"If-None-Match": `"v0"`})
	if rec.Code != http.StatusOK {
		t.Errorf("stale If-None-Match: status = %d, want 200", rec.Code)
	}

	// After a republish the old validator no longer matches.
	if _, err := srv.Ingest(bytes.NewReader(binaryCorpus(t))); err != nil {
		t.Fatal(err)
	}
	rec = do(t, srv, http.MethodGet, "/v1/lookup?addr=109.105.98.10", nil,
		map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Errorf("after republish: status = %d, want 200", rec.Code)
	}
	if v := etagVersion(t, rec); v != 2 {
		t.Errorf("ETag version after republish = %d, want 2", v)
	}
}

type linkRecord struct {
	A          uint32   `json:"as_a"`
	B          uint32   `json:"as_b"`
	Interfaces []string `json:"interfaces"`
}

type linksResponse struct {
	Version    uint64       `json:"version"`
	Links      []linkRecord `json:"links"`
	NextCursor string       `json:"next_cursor"`
}

func TestLinksEndpoint(t *testing.T) {
	srv := newIngestedServer(t)

	rec := get(t, srv, "/v1/links")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var all linksResponse
	decode(t, rec, &all)
	if all.Version != 1 || len(all.Links) == 0 {
		t.Fatalf("unfiltered links = %+v, want version 1 and at least one link", all)
	}
	for _, l := range all.Links {
		if len(l.Interfaces) == 0 {
			t.Errorf("link %d-%d has no interfaces", l.A, l.B)
		}
	}

	// Filter by one endpoint: every returned link touches it, and it
	// appears at least once (it came from the unfiltered enumeration).
	want := all.Links[0].A
	var one linksResponse
	decode(t, get(t, srv, fmt.Sprintf("/v1/links?as=%d", want)), &one)
	if len(one.Links) == 0 {
		t.Fatalf("as=%d matched nothing", want)
	}
	for _, l := range one.Links {
		if l.A != want && l.B != want {
			t.Errorf("as=%d returned unrelated link %d-%d", want, l.A, l.B)
		}
	}

	// An exact pair returns exactly the one aggregated record.
	first := all.Links[0]
	var pair linksResponse
	decode(t, get(t, srv, fmt.Sprintf("/v1/links?as=%d&as=%d", first.A, first.B)), &pair)
	if len(pair.Links) != 1 {
		t.Fatalf("pair query returned %d links, want 1", len(pair.Links))
	}
	if pair.Links[0].A != first.A || pair.Links[0].B != first.B ||
		len(pair.Links[0].Interfaces) != len(first.Interfaces) {
		t.Errorf("pair record %+v diverges from enumerated %+v", pair.Links[0], first)
	}

	// An absent pair is an empty list, not null and not an error.
	var none linksResponse
	rec = get(t, srv, "/v1/links?as=64999&as=65000")
	if rec.Code != http.StatusOK {
		t.Fatalf("absent pair: status = %d", rec.Code)
	}
	if bytes.Contains(rec.Body.Bytes(), []byte("null")) {
		t.Errorf("absent pair leaks null: %s", rec.Body)
	}
	decode(t, rec, &none)
	if len(none.Links) != 0 {
		t.Errorf("absent pair returned links: %+v", none.Links)
	}

	// Parameter validation.
	for _, target := range []string{
		"/v1/links?as=banana",
		"/v1/links?as=1&as=2&as=3",
		"/v1/links?limit=0",
		"/v1/links?limit=-3",
		"/v1/links?limit=99999999",
		"/v1/links?limit=x",
		"/v1/links?cursor=!!!",
	} {
		if rec := get(t, srv, target); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status = %d, want 400", target, rec.Code)
		}
	}
}

func TestLinksPagination(t *testing.T) {
	srv := newIngestedServer(t)
	var full linksResponse
	decode(t, get(t, srv, "/v1/links"), &full)
	if len(full.Links) < 2 {
		t.Fatalf("corpus yields %d links; pagination test needs at least 2", len(full.Links))
	}

	// Walk one record at a time and reassemble the full enumeration.
	var walked []linkRecord
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(full.Links)+1 {
			t.Fatal("pagination did not terminate")
		}
		target := "/v1/links?limit=1"
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		rec := get(t, srv, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status = %d, body %s", pages, rec.Code, rec.Body)
		}
		var page linksResponse
		decode(t, rec, &page)
		if len(page.Links) > 1 {
			t.Fatalf("page %d holds %d records, limit was 1", pages, len(page.Links))
		}
		walked = append(walked, page.Links...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(full.Links) {
		t.Fatalf("walked %d records, enumeration has %d", len(walked), len(full.Links))
	}
	for i := range walked {
		if walked[i].A != full.Links[i].A || walked[i].B != full.Links[i].B {
			t.Errorf("page order diverges at %d: %+v vs %+v", i, walked[i], full.Links[i])
		}
	}
}

func TestCursorExpiresOnRepublish(t *testing.T) {
	srv := newIngestedServer(t)
	var page linksResponse
	decode(t, get(t, srv, "/v1/links?limit=1"), &page)
	if page.NextCursor == "" {
		t.Fatal("first page returned no cursor; corpus too small")
	}

	if _, err := srv.Ingest(bytes.NewReader(binaryCorpus(t))); err != nil {
		t.Fatal(err)
	}
	rec := get(t, srv, "/v1/links?limit=1&cursor="+page.NextCursor)
	if rec.Code != http.StatusGone {
		t.Errorf("stale cursor: status = %d, want 410 (body %s)", rec.Code, rec.Body)
	}
}

type monitorResponse struct {
	Version     uint64 `json:"version"`
	Monitor     string `json:"monitor"`
	Traces      int    `json:"traces"`
	Adjacencies []struct {
		First  string `json:"first"`
		Second string `json:"second"`
	} `json:"adjacencies"`
	NextCursor string `json:"next_cursor"`
}

func TestMonitorEvidence(t *testing.T) {
	srv := newIngestedServer(t)
	rec := get(t, srv, "/v1/monitors/ark1/evidence")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var mon monitorResponse
	decode(t, rec, &mon)
	if mon.Monitor != "ark1" || mon.Traces != 3 {
		t.Errorf("monitor = %q traces = %d, want ark1 / 3", mon.Monitor, mon.Traces)
	}
	if len(mon.Adjacencies) == 0 {
		t.Fatal("ark1 contributed no adjacencies")
	}

	// Paginate one adjacency at a time and reassemble.
	var walked int
	cursor := ""
	for {
		target := "/v1/monitors/ark1/evidence?limit=1"
		if cursor != "" {
			target += "&cursor=" + cursor
		}
		var page monitorResponse
		decode(t, get(t, srv, target), &page)
		walked += len(page.Adjacencies)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if walked != len(mon.Adjacencies) {
		t.Errorf("paginated walk saw %d adjacencies, full response %d", walked, len(mon.Adjacencies))
	}

	if rec := get(t, srv, "/v1/monitors/nonesuch/evidence"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown monitor: status = %d, want 404", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	srv := newServer(t, serve.Options{})
	var hz struct {
		Status  string `json:"status"`
		Ready   bool   `json:"ready"`
		Version uint64 `json:"version"`
	}
	decode(t, get(t, srv, "/v1/healthz"), &hz)
	if hz.Status != "ok" || hz.Ready || hz.Version != 0 {
		t.Errorf("empty server healthz = %+v", hz)
	}

	if _, err := srv.Ingest(bytes.NewReader(binaryCorpus(t))); err != nil {
		t.Fatal(err)
	}
	decode(t, get(t, srv, "/v1/healthz"), &hz)
	if !hz.Ready || hz.Version != 1 {
		t.Errorf("post-ingest healthz = %+v, want ready v1", hz)
	}

	var st struct {
		Version   uint64 `json:"version"`
		Ready     bool   `json:"ready"`
		Ingests   int64  `json:"ingests"`
		Traces    int    `json:"traces"`
		Addresses int    `json:"addresses"`
		Links     int    `json:"links"`
		Monitors  int    `json:"monitors"`
		Diag      *struct {
			Iterations int `json:"Iterations"`
		} `json:"diag"`
		Decode *struct {
			TracesDecoded int64 `json:"TracesDecoded"`
		} `json:"decode"`
		Spill *struct{} `json:"spill"`
		HTTP  map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"http"`
	}
	decode(t, get(t, srv, "/v1/stats"), &st)
	if !st.Ready || st.Version != 1 || st.Ingests != 1 || st.Traces != 5 {
		t.Errorf("stats = %+v, want ready v1, 1 ingest, 5 traces", st)
	}
	if st.Addresses == 0 || st.Links == 0 || st.Monitors != 3 {
		t.Errorf("snapshot dims = %d addrs %d links %d monitors", st.Addresses, st.Links, st.Monitors)
	}
	if st.Diag == nil || st.Diag.Iterations == 0 {
		t.Errorf("stats missing run diagnostics: %+v", st.Diag)
	}
	if st.Decode == nil || st.Decode.TracesDecoded != 5 {
		t.Errorf("stats missing decode health: %+v", st.Decode)
	}
	if st.Spill == nil {
		t.Error("stats missing spill health")
	}
	// The two healthz probes above are on the books by the time stats
	// renders its own route counters.
	if st.HTTP["healthz"].Requests < 2 {
		t.Errorf("healthz route counter = %+v, want >= 2 requests", st.HTTP["healthz"])
	}
}

func TestIngestEndpoint(t *testing.T) {
	srv := newServer(t, serve.Options{})
	rec := do(t, srv, http.MethodPost, "/v1/ingest", binaryCorpus(t), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST binary: status = %d, body %s", rec.Code, rec.Body)
	}
	var sum struct {
		Version     uint64 `json:"version"`
		TracesAdded int    `json:"traces_added"`
		TracesTotal int    `json:"traces_total"`
		Inferences  int    `json:"inferences"`
	}
	decode(t, rec, &sum)
	if sum.Version != 1 || sum.TracesAdded != 5 || sum.TracesTotal != 5 {
		t.Errorf("first ingest summary = %+v", sum)
	}

	// A second batch in a different format (text) accumulates and
	// republishes.
	rec = do(t, srv, http.MethodPost, "/v1/ingest", []byte(testTraces), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST text: status = %d, body %s", rec.Code, rec.Body)
	}
	decode(t, rec, &sum)
	if sum.Version != 2 || sum.TracesTotal != 10 {
		t.Errorf("second ingest summary = %+v, want version 2, 10 traces", sum)
	}
	if v := srv.Version(); v != 2 {
		t.Errorf("server version = %d, want 2", v)
	}
}

func TestIngestRejectsCorruptAndOversized(t *testing.T) {
	strict := newServer(t, serve.Options{Strict: true})
	corrupt := append([]byte("MTRC\x03"), bytes.Repeat([]byte{0xff}, 64)...)
	rec := do(t, strict, http.MethodPost, "/v1/ingest", corrupt, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("corrupt body: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	if strict.Version() != 0 {
		t.Errorf("corrupt ingest published a snapshot (v%d)", strict.Version())
	}

	tiny := newServer(t, serve.Options{MaxBodyBytes: 16})
	rec = do(t, tiny, http.MethodPost, "/v1/ingest", binaryCorpus(t), nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413 (body %s)", rec.Code, rec.Body)
	}
	if tiny.Version() != 0 {
		t.Errorf("oversized ingest published a snapshot (v%d)", tiny.Version())
	}
}

// bigBinaryCorpus is many copies of the test scenario in many small
// binary blocks, so a byte-limit clip leaves a long, cleanly decodable
// prefix — the worst case for the 413 veto.
func bigBinaryCorpus(t *testing.T) []byte {
	t.Helper()
	var text strings.Builder
	const copies = 100
	for i := 0; i < copies; i++ {
		text.WriteString(testTraces)
	}
	ds, err := mapit.ReadTraces(strings.NewReader(text.String()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mapit.WriteTracesBinaryBlocks(&buf, ds, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOversizedIngestLeavesNoResidue is the regression test for the
// body-limit veto actually keeping clipped corpora out of the
// evidence. The permissive binary decoder survives truncation, so if
// any of an over-limit body is decoded before the 413, its intact
// prefix lands in the cumulative collector and rides along with the
// next successful batch. After a 413, a follow-up valid ingest must
// publish exactly its own traces.
func TestOversizedIngestLeavesNoResidue(t *testing.T) {
	big := bigBinaryCorpus(t)
	run := func(t *testing.T, contentLength int64) {
		srv := newServer(t, serve.Options{MaxBodyBytes: int64(len(big) / 2)})
		r := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(big))
		r.ContentLength = contentLength
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, r)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body: status = %d, want 413 (body %s)", rec.Code, rec.Body)
		}
		if srv.Version() != 0 {
			t.Fatalf("oversized ingest published a snapshot (v%d)", srv.Version())
		}

		rec = do(t, srv, http.MethodPost, "/v1/ingest", binaryCorpus(t), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("follow-up ingest: status = %d, body %s", rec.Code, rec.Body)
		}
		var sum struct {
			Version     uint64 `json:"version"`
			TracesAdded int    `json:"traces_added"`
			TracesTotal int    `json:"traces_total"`
		}
		decode(t, rec, &sum)
		if sum.Version != 1 || sum.TracesAdded != 5 || sum.TracesTotal != 5 {
			t.Errorf("follow-up summary = %+v, want v1 with exactly 5 traces; the clipped batch leaked into the evidence", sum)
		}
	}
	// Declared length: rejected up front by the Content-Length check.
	t.Run("content-length", func(t *testing.T) { run(t, int64(len(big))) })
	// Unknown length (chunked transfer): only the spool catches it.
	t.Run("chunked", func(t *testing.T) { run(t, -1) })
}

// TestConcurrentSwapDuringQuery hammers the read endpoints from several
// goroutines while the writer republishes repeatedly. Run under -race
// this is the proof that POST /v1/ingest publishes copy-on-write
// without blocking or tearing readers: every response is well-formed
// and the versions each reader observes never go backwards.
func TestConcurrentSwapDuringQuery(t *testing.T) {
	srv := newIngestedServer(t)
	corpus := binaryCorpus(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			target := "/v1/lookup?addr=109.105.98.10"
			if g%2 == 1 {
				target = "/v1/links"
			}
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := get(t, srv, target)
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: status = %d, body %s", g, rec.Code, rec.Body)
					return
				}
				v := etagVersion(t, rec)
				if v < last {
					t.Errorf("reader %d: version went backwards (%d after %d)", g, v, last)
					return
				}
				last = v
				if !json.Valid(rec.Body.Bytes()) {
					t.Errorf("reader %d: torn body: %s", g, rec.Body)
					return
				}
			}
		}(g)
	}

	const republishes = 5
	for i := 0; i < republishes; i++ {
		if _, err := srv.Ingest(bytes.NewReader(corpus)); err != nil {
			t.Errorf("republish %d: %v", i, err)
			break
		}
	}
	close(done)
	wg.Wait()
	if v := srv.Version(); v != 1+republishes {
		t.Errorf("final version = %d, want %d", v, 1+republishes)
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	srv := newIngestedServer(t)
	if rec := do(t, srv, http.MethodPost, "/v1/lookup?addr=1.2.3.4", nil, nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/lookup: status = %d, want 405", rec.Code)
	}
	if rec := get(t, srv, "/v1/ingest"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest: status = %d, want 405", rec.Code)
	}
	if rec := get(t, srv, "/v1/nonesuch"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route: status = %d, want 404", rec.Code)
	}
}
