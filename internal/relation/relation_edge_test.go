package relation

import (
	"strings"
	"testing"

	"mapit/internal/inet"
)

// TestRelPerspective pins the sign convention of Rel for every query
// orientation, including identity and absent pairs.
func TestRelPerspective(t *testing.T) {
	d := New()
	d.AddTransit(10, 20) // 10 provides transit to 20
	d.AddPeering(30, 40)
	cases := []struct {
		name string
		a, b inet.ASN
		want Rel
	}{
		{"provider side", 10, 20, Provider},
		{"customer side", 20, 10, Customer},
		{"peer canonical", 30, 40, Peer},
		{"peer reversed stays peer", 40, 30, Peer},
		{"absent pair", 10, 30, None},
		{"self query", 10, 10, None},
		{"unknown ASes", 77, 88, None},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := d.Rel(tc.a, tc.b); got != tc.want {
				t.Fatalf("Rel(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestConflictingRecordsFirstWins: once a pair has a relationship,
// later contradictory records are ignored — dataset order decides.
func TestConflictingRecordsFirstWins(t *testing.T) {
	cases := []struct {
		name  string
		build func(d *Dataset)
		want  Rel // from 1's perspective toward 2
	}{
		{
			name:  "transit then reversed transit",
			build: func(d *Dataset) { d.AddTransit(1, 2); d.AddTransit(2, 1) },
			want:  Provider,
		},
		{
			name:  "transit then peering",
			build: func(d *Dataset) { d.AddTransit(1, 2); d.AddPeering(1, 2) },
			want:  Provider,
		},
		{
			name:  "peering then transit",
			build: func(d *Dataset) { d.AddPeering(1, 2); d.AddTransit(1, 2) },
			want:  Peer,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New()
			tc.build(d)
			if got := d.Rel(1, 2); got != tc.want {
				t.Fatalf("Rel(1,2) = %v, want %v", got, tc.want)
			}
			if got := len(d.Edges()); got != 1 {
				t.Fatalf("got %d edges, want 1", got)
			}
			// The losing record must not leave a half-registered
			// neighbour entry behind.
			total := len(d.Customers(1)) + len(d.Providers(1)) + len(d.Peers(1))
			if total != 1 {
				t.Fatalf("AS1 has %d neighbour entries, want 1", total)
			}
		})
	}
}

// TestParseEdgeCases drives the serial-1 parser through tolerated and
// rejected inputs line by line.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		input string
		ok    bool
		want  Rel // Rel(1,2) when ok
	}{
		{"AS-prefixed numbers", "AS1|AS2|-1\n", true, Provider},
		{"comments and blanks", "# serial-1\n\n1|2|0\n", true, Peer},
		{"whitespace around line", "  1|2|-1  \n", true, Provider},
		{"whitespace inside fields tolerated", "1 |2|-1\n", true, Provider},
		{"missing field", "1|2\n", false, None},
		{"extra field", "1|2|-1|x\n", false, None},
		{"bad relationship code", "1|2|2\n", false, None},
		{"non-numeric ASN", "one|2|0\n", false, None},
		{"empty input", "", true, None},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(tc.input))
			if tc.ok != (err == nil) {
				t.Fatalf("err = %v, want ok=%v", err, tc.ok)
			}
			if err == nil {
				if got := d.Rel(1, 2); got != tc.want {
					t.Fatalf("Rel(1,2) = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestEdgesOrientation: transit edges come back provider-first no
// matter which internal orientation the pair was stored under.
func TestEdgesOrientation(t *testing.T) {
	d := New()
	d.AddTransit(9, 4) // stored swapped (4 < 9) as Customer
	d.AddTransit(2, 8) // stored in order as Provider
	d.AddPeering(7, 3) // canonicalised to 3 < 7
	edges := d.Edges()
	want := []Edge{{2, 8, Provider}, {3, 7, Peer}, {9, 4, Provider}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i, e := range edges {
		if e != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, e, want[i])
		}
	}
	// And the swapped orientation survives a Write round-trip.
	var sb strings.Builder
	if err := d.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "9|4|-1") {
		t.Fatalf("round-trip lost provider orientation:\n%s", sb.String())
	}
}

// TestClassifyEdgeCases pins the Table 1 grouping on its boundary
// inputs: unknown ASes, stub customers in both query orientations, and
// known-but-unrelated pairs.
func TestClassifyEdgeCases(t *testing.T) {
	d := New()
	d.AddTransit(1, 2) // 1 provides to ISP 2
	d.AddTransit(2, 3) // 2 provides to stub 3
	d.AddPeering(1, 4) // 4 is known but has no customers
	cases := []struct {
		name string
		a, b inet.ASN
		want LinkClass
	}{
		{"transit to ISP customer", 1, 2, ISPTransit},
		{"transit to ISP, customer first", 2, 1, ISPTransit},
		{"transit to stub customer", 2, 3, StubTransit},
		{"transit to stub, customer first", 3, 2, StubTransit},
		{"settlement-free peering", 1, 4, PeerLink},
		{"known pair with no relationship", 3, 4, PeerLink},
		{"one side unknown", 1, 999, StubTransit},
		{"both sides unknown", 998, 999, StubTransit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := d.Classify(tc.a, tc.b, nil); got != tc.want {
				t.Fatalf("Classify(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestLinkClassString covers the Table 1 labels.
func TestLinkClassString(t *testing.T) {
	for class, want := range map[LinkClass]string{
		ISPTransit:   "ISP Transit",
		PeerLink:     "Peer",
		StubTransit:  "Stub Transit",
		LinkClass(9): "Stub Transit",
	} {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", class, got, want)
		}
	}
}
