// Package relation models the CAIDA AS Relationships dataset the paper
// uses (§5) to identify ISP ASes (at least one non-sibling customer), to
// drive the stub-AS heuristic (§4.8), to power the Convention baseline
// (§5.6), and to break results down by relationship type (Table 1).
//
// The file format is CAIDA serial-1: "provider|customer|-1" for transit
// and "peer|peer|0" for settlement-free peering.
package relation

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"mapit/internal/as2org"
	"mapit/internal/inet"
)

// Rel is the relationship between an ordered pair of ASes.
type Rel int8

const (
	// None means the pair does not appear in the dataset.
	None Rel = 0
	// Provider means the first AS is a transit provider of the second.
	Provider Rel = -1
	// Customer means the first AS is a transit customer of the second.
	Customer Rel = 1
	// Peer means the ASes peer settlement-free.
	Peer Rel = 2
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case Provider:
		return "provider"
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	default:
		return "none"
	}
}

type pair struct{ a, b inet.ASN }

// Dataset is an immutable-after-build relationship database.
type Dataset struct {
	rels      map[pair]Rel // keyed with a < b; Rel from a's perspective
	customers map[inet.ASN][]inet.ASN
	providers map[inet.ASN][]inet.ASN
	peers     map[inet.ASN][]inet.ASN
	known     map[inet.ASN]bool
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{
		rels:      make(map[pair]Rel),
		customers: make(map[inet.ASN][]inet.ASN),
		providers: make(map[inet.ASN][]inet.ASN),
		peers:     make(map[inet.ASN][]inet.ASN),
		known:     make(map[inet.ASN]bool),
	}
}

// Parse reads a serial-1 relationship file.
func Parse(r io.Reader) (*Dataset, error) {
	d := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("relation: line %d: want 3 fields", lineno)
		}
		a, err := inet.ParseASN(parts[0])
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %v", lineno, err)
		}
		b, err := inet.ParseASN(parts[1])
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %v", lineno, err)
		}
		switch strings.TrimSpace(parts[2]) {
		case "-1":
			d.AddTransit(a, b)
		case "0":
			d.AddPeering(a, b)
		default:
			return nil, fmt.Errorf("relation: line %d: bad relationship %q", lineno, parts[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Write emits the dataset in serial-1 format, sorted for determinism.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	type line struct {
		a, b inet.ASN
		rel  string
	}
	var lines []line
	for p, r := range d.rels {
		switch r {
		case Provider:
			lines = append(lines, line{p.a, p.b, "-1"})
		case Customer:
			lines = append(lines, line{p.b, p.a, "-1"})
		case Peer:
			lines = append(lines, line{p.a, p.b, "0"})
		}
	}
	slices.SortFunc(lines, func(x, y line) int {
		if n := cmp.Compare(x.a, y.a); n != 0 {
			return n
		}
		return cmp.Compare(x.b, y.b)
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(bw, "%d|%d|%s\n", uint32(l.a), uint32(l.b), l.rel); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func ordered(a, b inet.ASN) (pair, bool) {
	if a <= b {
		return pair{a, b}, false
	}
	return pair{b, a}, true
}

// AddTransit records provider→customer transit.
func (d *Dataset) AddTransit(provider, customer inet.ASN) {
	if provider == customer {
		return
	}
	p, swapped := ordered(provider, customer)
	r := Provider
	if swapped {
		r = Customer
	}
	if _, dup := d.rels[p]; dup {
		return
	}
	d.rels[p] = r
	d.customers[provider] = append(d.customers[provider], customer)
	d.providers[customer] = append(d.providers[customer], provider)
	d.known[provider] = true
	d.known[customer] = true
}

// AddPeering records a settlement-free peering.
func (d *Dataset) AddPeering(a, b inet.ASN) {
	if a == b {
		return
	}
	p, _ := ordered(a, b)
	if _, dup := d.rels[p]; dup {
		return
	}
	d.rels[p] = Peer
	d.peers[a] = append(d.peers[a], b)
	d.peers[b] = append(d.peers[b], a)
	d.known[a] = true
	d.known[b] = true
}

// Edge is one relationship record: A is the provider for transit edges;
// order is canonical (A < B) for peerings.
type Edge struct {
	A, B inet.ASN
	Rel  Rel // Provider or Peer
}

// Edges returns every relationship, sorted, with transit edges oriented
// provider-first.
func (d *Dataset) Edges() []Edge {
	out := make([]Edge, 0, len(d.rels))
	for p, r := range d.rels {
		switch r {
		case Provider:
			out = append(out, Edge{A: p.a, B: p.b, Rel: Provider})
		case Customer:
			out = append(out, Edge{A: p.b, B: p.a, Rel: Provider})
		case Peer:
			out = append(out, Edge{A: p.a, B: p.b, Rel: Peer})
		}
	}
	slices.SortFunc(out, func(x, y Edge) int {
		if n := cmp.Compare(x.A, y.A); n != 0 {
			return n
		}
		return cmp.Compare(x.B, y.B)
	})
	return out
}

// Rel returns the relationship of a to b (Provider means a provides
// transit to b).
func (d *Dataset) Rel(a, b inet.ASN) Rel {
	p, swapped := ordered(a, b)
	r, ok := d.rels[p]
	if !ok {
		return None
	}
	if swapped && r != Peer {
		r = -r
	}
	return r
}

// Known reports whether the AS appears anywhere in the dataset.
func (d *Dataset) Known(a inet.ASN) bool { return d.known[a] }

// Customers returns a's customers (unsorted, shared slice — do not
// mutate).
func (d *Dataset) Customers(a inet.ASN) []inet.ASN { return d.customers[a] }

// Providers returns a's providers.
func (d *Dataset) Providers(a inet.ASN) []inet.ASN { return d.providers[a] }

// Peers returns a's peers.
func (d *Dataset) Peers(a inet.ASN) []inet.ASN { return d.peers[a] }

// IsISP reports whether a has at least one non-sibling customer — the
// paper's definition of an ISP AS (§5). orgs may be nil.
func (d *Dataset) IsISP(a inet.ASN, orgs *as2org.Orgs) bool {
	for _, c := range d.customers[a] {
		if orgs == nil || !orgs.SameOrg(a, c) {
			return true
		}
	}
	return false
}

// IsStub reports the complement of IsISP. ASes absent from the dataset
// are stubs, matching the stub-heuristic usage (§4.8) and the Table 1
// classification ("if an AS does not appear in the relationship dataset
// we classify the relationship as Stub Transit").
func (d *Dataset) IsStub(a inet.ASN, orgs *as2org.Orgs) bool {
	return !d.IsISP(a, orgs)
}

// LinkClass is the Table 1 grouping for an inferred inter-AS link.
type LinkClass uint8

const (
	// ISPTransit is a transit link whose customer is itself an ISP.
	ISPTransit LinkClass = iota
	// PeerLink is a link between ASes with no transit relationship.
	PeerLink
	// StubTransit is a transit link to a stub AS, or a link involving an
	// AS absent from the relationship dataset.
	StubTransit
)

// String names the class as in Table 1.
func (c LinkClass) String() string {
	switch c {
	case ISPTransit:
		return "ISP Transit"
	case PeerLink:
		return "Peer"
	default:
		return "Stub Transit"
	}
}

// Classify assigns the Table 1 class to a link between a and b (§5.4):
// links involving an AS unknown to the dataset are Stub Transit; transit
// links are ISP or Stub Transit depending on the customer; everything
// else is Peer.
func (d *Dataset) Classify(a, b inet.ASN, orgs *as2org.Orgs) LinkClass {
	if !d.Known(a) || !d.Known(b) {
		return StubTransit
	}
	switch d.Rel(a, b) {
	case Provider:
		if d.IsStub(b, orgs) {
			return StubTransit
		}
		return ISPTransit
	case Customer:
		if d.IsStub(a, orgs) {
			return StubTransit
		}
		return ISPTransit
	default:
		return PeerLink
	}
}
