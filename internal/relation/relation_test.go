package relation

import (
	"bytes"
	"strings"
	"testing"

	"mapit/internal/as2org"
	"mapit/internal/inet"
)

const sample = `# provider|customer|-1 ; peer|peer|0
3356|11537|-1
1299|11537|-1
3356|64500|-1
11537|64501|-1
3356|1299|0
11537|20965|0
`

func parse(t *testing.T, s string) *Dataset {
	t.Helper()
	d, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRelQueries(t *testing.T) {
	d := parse(t, sample)
	cases := []struct {
		a, b inet.ASN
		want Rel
	}{
		{3356, 11537, Provider},
		{11537, 3356, Customer},
		{3356, 1299, Peer},
		{1299, 3356, Peer},
		{3356, 9999, None},
		{64500, 64501, None},
	}
	for _, c := range cases {
		if got := d.Rel(c.a, c.b); got != c.want {
			t.Errorf("Rel(%v,%v) = %v; want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestISPAndStub(t *testing.T) {
	d := parse(t, sample)
	if !d.IsISP(3356, nil) || !d.IsISP(11537, nil) {
		t.Error("providers with customers must be ISPs")
	}
	if d.IsISP(64500, nil) || d.IsISP(20965, nil) {
		t.Error("customer-only / peer-only ASes are stubs")
	}
	if !d.IsStub(31337, nil) {
		t.Error("AS absent from dataset is a stub")
	}
	if d.Known(31337) || !d.Known(20965) {
		t.Error("Known wrong")
	}

	// Sibling-only customers do not make an ISP.
	orgs := as2org.New()
	orgs.AddSiblingPair(100, 200)
	d2 := New()
	d2.AddTransit(100, 200)
	if d2.IsISP(100, orgs) {
		t.Error("sibling customer should not count")
	}
	if !d2.IsISP(100, nil) {
		t.Error("without org data the customer counts")
	}
}

func TestClassify(t *testing.T) {
	d := parse(t, sample)
	cases := []struct {
		a, b inet.ASN
		want LinkClass
	}{
		{3356, 11537, ISPTransit},  // customer 11537 is an ISP
		{11537, 3356, ISPTransit},  // order independent
		{3356, 64500, StubTransit}, // customer is a stub
		{3356, 1299, PeerLink},
		{11537, 20965, PeerLink},
		{3356, 31337, StubTransit}, // unknown AS
		{64500, 64501, PeerLink},   // both known, no transit between them
	}
	for _, c := range cases {
		if got := d.Classify(c.a, c.b, nil); got != c.want {
			t.Errorf("Classify(%v,%v) = %v; want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNeighborLists(t *testing.T) {
	d := parse(t, sample)
	if len(d.Customers(3356)) != 2 {
		t.Errorf("Customers(3356) = %v", d.Customers(3356))
	}
	if len(d.Providers(11537)) != 2 {
		t.Errorf("Providers(11537) = %v", d.Providers(11537))
	}
	if len(d.Peers(3356)) != 1 || d.Peers(3356)[0] != 1299 {
		t.Errorf("Peers(3356) = %v", d.Peers(3356))
	}
}

func TestDuplicatesAndSelf(t *testing.T) {
	d := New()
	d.AddTransit(1, 2)
	d.AddTransit(1, 2) // duplicate ignored
	d.AddPeering(3, 4)
	d.AddPeering(4, 3) // duplicate ignored
	d.AddTransit(5, 5) // self ignored
	d.AddPeering(6, 6) // self ignored
	if len(d.Customers(1)) != 1 || len(d.Peers(3)) != 1 {
		t.Error("duplicates not ignored")
	}
	if d.Known(5) || d.Known(6) {
		t.Error("self relationships must be ignored")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d := parse(t, sample)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ a, b inet.ASN }{{3356, 11537}, {3356, 1299}, {11537, 20965}} {
		if back.Rel(c.a, c.b) != d.Rel(c.a, c.b) {
			t.Errorf("round trip changed Rel(%v,%v)", c.a, c.b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"1|2", "x|2|-1", "1|y|0", "1|2|7"}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestRelString(t *testing.T) {
	if Provider.String() != "provider" || Customer.String() != "customer" ||
		Peer.String() != "peer" || None.String() != "none" {
		t.Error("Rel.String broken")
	}
	if ISPTransit.String() != "ISP Transit" || PeerLink.String() != "Peer" ||
		StubTransit.String() != "Stub Transit" {
		t.Error("LinkClass.String broken")
	}
}

func TestEdges(t *testing.T) {
	d := parse(t, sample)
	edges := d.Edges()
	if len(edges) != 6 {
		t.Fatalf("edges = %d", len(edges))
	}
	seenTransit, seenPeer := false, false
	for i, e := range edges {
		if i > 0 {
			prev := edges[i-1]
			if e.A < prev.A || (e.A == prev.A && e.B < prev.B) {
				t.Fatal("edges not sorted")
			}
		}
		switch e.Rel {
		case Provider:
			seenTransit = true
			if d.Rel(e.A, e.B) != Provider {
				t.Fatalf("transit edge %v not provider-first", e)
			}
		case Peer:
			seenPeer = true
		default:
			t.Fatalf("unexpected edge rel %v", e.Rel)
		}
	}
	if !seenTransit || !seenPeer {
		t.Error("edge kinds missing")
	}
	// Round trip through a new dataset.
	d2 := New()
	for _, e := range edges {
		if e.Rel == Provider {
			d2.AddTransit(e.A, e.B)
		} else {
			d2.AddPeering(e.A, e.B)
		}
	}
	if len(d2.Edges()) != len(edges) {
		t.Error("edge round trip changed size")
	}
}
