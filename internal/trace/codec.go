package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mapit/internal/inet"
)

// Text codec. One trace per line:
//
//	monitor|dst|hop hop hop ...
//
// where each hop is "*" (no reply), a dotted quad, or a dotted quad with
// a "!q<ttl>" suffix carrying an anomalous quoted TTL ("1.2.3.4!q0").
// Lines starting with '#' and blank lines are ignored. The format is
// line-oriented and append-friendly so large datasets stream.

// ParseHop parses a single hop token.
func ParseHop(tok string) (Hop, error) {
	if tok == "*" {
		return Hop{QuotedTTL: 1}, nil
	}
	q := int8(1)
	if i := strings.Index(tok, "!q"); i >= 0 {
		var n int
		if _, err := fmt.Sscanf(tok[i+2:], "%d", &n); err != nil || n < 0 || n > 127 {
			return Hop{}, fmt.Errorf("trace: bad quoted TTL in %q", tok)
		}
		q = int8(n)
		tok = tok[:i]
	}
	a, err := inet.ParseAddr(tok)
	if err != nil {
		return Hop{}, err
	}
	return Hop{Addr: a, QuotedTTL: q}, nil
}

func formatHop(h Hop) string {
	if !h.Responded() {
		return "*"
	}
	if h.QuotedTTL != 1 {
		return fmt.Sprintf("%s!q%d", h.Addr, h.QuotedTTL)
	}
	return h.Addr.String()
}

// ParseLine parses one text-format trace line.
func ParseLine(line string) (Trace, error) {
	parts := strings.SplitN(line, "|", 3)
	if len(parts) != 3 {
		return Trace{}, fmt.Errorf("trace: want 3 fields, got %d", len(parts))
	}
	dst, err := inet.ParseAddr(parts[1])
	if err != nil {
		return Trace{}, err
	}
	t := Trace{Monitor: parts[0], Dst: dst}
	for _, tok := range strings.Fields(parts[2]) {
		h, err := ParseHop(tok)
		if err != nil {
			return Trace{}, err
		}
		t.Hops = append(t.Hops, h)
	}
	return t, nil
}

// Read parses a whole text-format dataset.
func Read(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		d.Traces = append(d.Traces, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// Write emits the dataset in the text format Read parses.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range d.Traces {
		if err := WriteTrace(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTrace emits one trace line.
func WriteTrace(w io.Writer, t Trace) error {
	sb := strings.Builder{}
	sb.WriteString(t.Monitor)
	sb.WriteByte('|')
	sb.WriteString(t.Dst.String())
	sb.WriteByte('|')
	for i, h := range t.Hops {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(formatHop(h))
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
