package trace

import "fmt"

// Corrupt-input taxonomy. The binary decoder treats every length field,
// count, and interned index it reads as hostile: real measurement feeds
// carry truncated transfers, flipped bits, and malformed records (see
// "Detection, Understanding, and Prevention of Traceroute Measurement
// Artifacts"), and a month-scale ingest must not panic or balloon its
// heap because one block of one file went bad. Every decode failure is
// a *CorruptError carrying enough context — absolute byte offset, v3
// block index, record kind, failure class — to locate the damage in a
// multi-GB corpus, and DecodeStats aggregates what a permissive decode
// survived. See DESIGN.md §9.

// CorruptClass classifies a decode failure for aggregation: the -stats
// decode-health counters bucket errors by class.
type CorruptClass uint8

const (
	// CorruptTruncated: the stream ended inside a record, block header,
	// or block payload.
	CorruptTruncated CorruptClass = iota
	// CorruptBadMagic: the 5-byte stream header is not a known version.
	CorruptBadMagic
	// CorruptBadKind: an unknown record kind byte where a record or
	// block frame was expected.
	CorruptBadKind
	// CorruptBadVarint: a malformed or overflowing uvarint field.
	CorruptBadVarint
	// CorruptOversizedLen: a length or count field exceeds its bound
	// (monitor name length, hop count, block payload bytes).
	CorruptOversizedLen
	// CorruptBadMonitorID: a trace record references a monitor id that
	// was never defined.
	CorruptBadMonitorID
	// CorruptCountMismatch: a v3 block's traceCount disagrees with its
	// payload (more traces claimed than the bytes could hold, or a
	// clean payload decoding to a different count).
	CorruptCountMismatch
	// CorruptChecksum: a spill segment run's payload failed its CRC-32C
	// integrity check (a flipped bit that still decodes as well-formed
	// varint columns).
	CorruptChecksum
	// CorruptUnsorted: a spill segment run violated its ordering or
	// value-range contract (entries must be strictly increasing and fit
	// 32 bits; the bounded-memory k-way merge depends on it).
	CorruptUnsorted
	// CorruptBadTimestamp: a v4 block's timestamp column is malformed —
	// exhausted before traceCount entries, trailing bytes after them, a
	// negative delta (timestamps within a block must be non-decreasing),
	// or a value past the format's overflow bound.
	CorruptBadTimestamp

	numCorruptClasses
)

var corruptClassNames = [numCorruptClasses]string{
	CorruptTruncated:     "truncated",
	CorruptBadMagic:      "bad_magic",
	CorruptBadKind:       "bad_kind",
	CorruptBadVarint:     "bad_varint",
	CorruptOversizedLen:  "oversized_len",
	CorruptBadMonitorID:  "bad_monitor_id",
	CorruptCountMismatch: "count_mismatch",
	CorruptChecksum:      "checksum",
	CorruptUnsorted:      "unsorted",
	CorruptBadTimestamp:  "bad_timestamp",
}

func (c CorruptClass) String() string {
	if int(c) < len(corruptClassNames) {
		return corruptClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// CorruptError is a structured decode failure on untrusted binary
// input. It pins the failure to an absolute byte offset in the stream
// (through bufio read-ahead and block framing) so a bad region of a
// multi-GB corpus can be located and excised.
type CorruptError struct {
	// Offset is the absolute byte offset in the stream at which the
	// corruption was detected.
	Offset int64
	// Block is the v3 block index the failure occurred in, or -1 when
	// the stream has no block framing (v2) or the failure precedes the
	// first block.
	Block int
	// Kind names what was being decoded: "magic", "monitor", "trace",
	// "block", or "segment".
	Kind string
	// Class buckets the failure for the decode-health counters.
	Class CorruptClass
	// Cause is the underlying error, when one exists (io errors,
	// varint overflow); may be nil for pure validation failures.
	Cause error
}

func (e *CorruptError) Error() string {
	where := fmt.Sprintf("byte %d", e.Offset)
	if e.Block >= 0 {
		where += fmt.Sprintf(", block %d", e.Block)
	}
	msg := fmt.Sprintf("trace: corrupt input at %s (%s record, %s)", where, e.Kind, e.Class)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *CorruptError) Unwrap() error { return e.Cause }

// DecodeStats aggregates decode-health counters across one binary
// ingest. A permissive decode (DecodeOptions.Permissive) survives
// corrupt v3 blocks by skipping them; these counters are how the
// caller learns what was lost. All fields are plain values so the
// struct is comparable and travels inside core.Diagnostics; readers
// only mutate it from the goroutine that owns the decode, and parallel
// decodes tally into it after the workers join.
type DecodeStats struct {
	// BlocksDecoded counts v3 blocks that decoded cleanly.
	BlocksDecoded int64
	// BlocksSkipped counts corrupt v3 blocks dropped by a permissive
	// decode.
	BlocksSkipped int64
	// TracesDecoded counts traces delivered to the caller.
	TracesDecoded int64
	// TracesDropped counts traces lost inside skipped blocks, per the
	// skipped blocks' traceCount headers.
	TracesDropped int64
	// BytesConsumed counts bytes consumed from the underlying stream.
	BytesConsumed int64
	// Errors counts decode failures by CorruptClass, including ones a
	// permissive decode recovered from.
	Errors [numCorruptClasses]int64
}

// TotalErrors sums the per-class error counters.
func (s *DecodeStats) TotalErrors() int64 {
	var n int64
	for _, c := range s.Errors {
		n += c
	}
	return n
}

// ErrorsByClass returns the non-zero error counters keyed by class
// name, for reporting.
func (s *DecodeStats) ErrorsByClass() map[string]int64 {
	out := make(map[string]int64)
	for c, n := range s.Errors {
		if n != 0 {
			out[CorruptClass(c).String()] = n
		}
	}
	return out
}

// String renders the counters as a compact key=value line (the shape
// cmd/mapit -stats prints).
func (s *DecodeStats) String() string {
	msg := fmt.Sprintf("blocks=%d skipped=%d traces=%d dropped=%d bytes=%d errors=%d",
		s.BlocksDecoded, s.BlocksSkipped, s.TracesDecoded, s.TracesDropped,
		s.BytesConsumed, s.TotalErrors())
	for c, n := range s.Errors {
		if n != 0 {
			msg += fmt.Sprintf(" %s=%d", CorruptClass(c), n)
		}
	}
	return msg
}

// record notes one decode failure.
func (s *DecodeStats) record(class CorruptClass) { s.Errors[class]++ }

// DecodeOptions configures the binary decoders' handling of untrusted
// input. The zero value is the strict, backwards-compatible behaviour:
// any corruption aborts the decode with a *CorruptError.
type DecodeOptions struct {
	// Permissive makes v3 block decoding skip a corrupt block — blocks
	// are self-contained by design — count it, and resynchronise on the
	// next block frame instead of aborting. Corruption outside block
	// payloads (bad magic, a damaged block header, a flat v2 stream)
	// still fails hard: without an intact length-prefixed frame there
	// is no boundary to resynchronise on.
	Permissive bool
	// Stats, when non-nil, accumulates decode-health counters for the
	// run. Read it only after the decode completes.
	Stats *DecodeStats
}

// sink returns the stats collector to write to, substituting a private
// discard sink so decode paths never branch on nil.
func (o DecodeOptions) sink() *DecodeStats {
	if o.Stats != nil {
		return o.Stats
	}
	return &DecodeStats{}
}
