package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mapit/internal/inet"
)

// Spill segment codec: the on-disk form of the out-of-core evidence
// store (DESIGN.md §11). When a collector's memory budget is exceeded it
// flushes each in-memory dedup structure as one *run* — a sorted, unique
// snapshot of that structure — and later k-way merges the runs back
// under a fixed memory ceiling. Runs are columnar (struct-of-arrays in
// fixed-size pages) with delta + varint encoding, so a sorted adjacency
// costs ~2–4 bytes on disk instead of ~50 in a Go map.
//
// Layout, mirroring the MTRC v3 block framing (kind byte, length
// prefix, entry count) with an added integrity checksum:
//
//	magic   "MTRS" '\x01'                       (once per spill file)
//	run     kind byte:
//	          3: adjacency run   4: address run
//	        count      uvarint  (entries in the run)
//	        payloadLen uvarint  (payload bytes)
//	        crc        4 bytes little endian — CRC-32C of the payload
//	        payload    — pages, decoded strictly sequentially:
//	          n uvarint (1..SegmentPageEntries, ≤ remaining entries)
//	          adjacency page: n × uvarint   First-column deltas
//	                          n × zigzag    Second-column deltas
//	          address page:   n × uvarint   deltas
//
// Delta chains continue across page boundaries. An adjacency run must
// be strictly increasing in (First, Second); an address run strictly
// increasing. The unsigned First/address deltas make the primary order
// non-decreasing by construction; the explicit strictness checks and
// the CRC catch everything else, surfacing as *CorruptError with the
// PR 4 taxonomy (classes CorruptChecksum and CorruptUnsorted are the
// segment-specific additions).
var segmentMagic = [5]byte{'M', 'T', 'R', 'S', 1}

// Run kinds continue the MTRC record-kind numbering (0 monitor, 1
// trace, 2 v3 block).
const (
	// AdjRunKind frames a sorted unique adjacency run.
	AdjRunKind = 3
	// AddrRunKind frames a sorted unique address run.
	AddrRunKind = 4
)

// SegmentPageEntries is the page granularity of the columnar payload: a
// cursor decodes one page of each column into fixed buffers at a time,
// so its working memory is O(page), never O(run).
const SegmentPageEntries = 4096

// segHeaderMax bounds the decoded run-frame header (kind + two uvarints
// + crc).
const segHeaderMax = 1 + 2*binary.MaxVarintLen64 + 4

// crcTable is the Castagnoli polynomial table shared by writer and
// cursors.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SegmentRun locates one run inside a spill segment file. The collector
// records it at write time and hands it back to Open*Run; the cursor
// cross-checks the frame against it, so corruption of the header is
// detected even though the metadata never leaves the process.
type SegmentRun struct {
	// Kind is AdjRunKind or AddrRunKind.
	Kind byte
	// Count is the number of entries in the run.
	Count int
	// Offset is the absolute byte offset of the run's kind byte.
	Offset int64
	// Size is the total frame size in bytes (header + payload).
	Size int64
}

// SegmentWriter appends runs to one spill segment file. Not safe for
// concurrent use; every spilling party (collector, shard owner, worker)
// owns its own writer.
type SegmentWriter struct {
	bw  *bufio.Writer
	off int64
	// payload is the reusable run-payload staging buffer; a run is the
	// flush of an in-memory structure, so staging it whole costs no
	// more than the structure it replaces.
	payload bytes.Buffer
}

// NewSegmentWriter writes the segment magic and returns a writer.
func NewSegmentWriter(w io.Writer) (*SegmentWriter, error) {
	sw := &SegmentWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := sw.bw.Write(segmentMagic[:]); err != nil {
		return nil, err
	}
	sw.off = int64(len(segmentMagic))
	return sw, nil
}

// Offset returns the file offset the next run would start at.
func (sw *SegmentWriter) Offset() int64 { return sw.off }

// Flush flushes buffered frames to the underlying writer. Call it
// before opening cursors on the runs written so far.
func (sw *SegmentWriter) Flush() error { return sw.bw.Flush() }

// AppendAdjacencyRun encodes one sorted, duplicate-free adjacency run.
func (sw *SegmentWriter) AppendAdjacencyRun(adjs []Adjacency) (SegmentRun, error) {
	sw.payload.Reset()
	var scratch [binary.MaxVarintLen64]byte
	var prevFirst, prevSecond uint32
	for lo := 0; lo < len(adjs); lo += SegmentPageEntries {
		page := adjs[lo:min(lo+SegmentPageEntries, len(adjs))]
		n := binary.PutUvarint(scratch[:], uint64(len(page)))
		sw.payload.Write(scratch[:n])
		pf := prevFirst
		for _, a := range page {
			n := binary.PutUvarint(scratch[:], uint64(uint32(a.First)-pf))
			sw.payload.Write(scratch[:n])
			pf = uint32(a.First)
		}
		for _, a := range page {
			d := int64(uint32(a.Second)) - int64(prevSecond)
			n := binary.PutUvarint(scratch[:], zigzag(d))
			sw.payload.Write(scratch[:n])
			prevSecond = uint32(a.Second)
		}
		prevFirst = pf
	}
	return sw.appendRun(AdjRunKind, len(adjs))
}

// AppendAddrRun encodes one sorted, duplicate-free address run.
func (sw *SegmentWriter) AppendAddrRun(addrs []inet.Addr) (SegmentRun, error) {
	sw.payload.Reset()
	var scratch [binary.MaxVarintLen64]byte
	var prev uint32
	for lo := 0; lo < len(addrs); lo += SegmentPageEntries {
		page := addrs[lo:min(lo+SegmentPageEntries, len(addrs))]
		n := binary.PutUvarint(scratch[:], uint64(len(page)))
		sw.payload.Write(scratch[:n])
		for _, a := range page {
			n := binary.PutUvarint(scratch[:], uint64(uint32(a)-prev))
			sw.payload.Write(scratch[:n])
			prev = uint32(a)
		}
	}
	return sw.appendRun(AddrRunKind, len(addrs))
}

// appendRun frames the staged payload.
func (sw *SegmentWriter) appendRun(kind byte, count int) (SegmentRun, error) {
	run := SegmentRun{Kind: kind, Count: count, Offset: sw.off}
	var scratch [binary.MaxVarintLen64]byte
	if err := sw.bw.WriteByte(kind); err != nil {
		return SegmentRun{}, err
	}
	written := int64(1)
	n := binary.PutUvarint(scratch[:], uint64(count))
	if _, err := sw.bw.Write(scratch[:n]); err != nil {
		return SegmentRun{}, err
	}
	written += int64(n)
	n = binary.PutUvarint(scratch[:], uint64(sw.payload.Len()))
	if _, err := sw.bw.Write(scratch[:n]); err != nil {
		return SegmentRun{}, err
	}
	written += int64(n)
	binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(sw.payload.Bytes(), crcTable))
	if _, err := sw.bw.Write(scratch[:4]); err != nil {
		return SegmentRun{}, err
	}
	written += 4
	if _, err := sw.bw.Write(sw.payload.Bytes()); err != nil {
		return SegmentRun{}, err
	}
	written += int64(sw.payload.Len())
	run.Size = written
	sw.off += written
	return run, nil
}

// zigzag maps a signed delta onto the unsigned varint space.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// segCursor is the shared streaming frame decoder under both cursor
// types: it validates the header against the expected SegmentRun,
// maintains the running CRC over the payload, and hands out page entry
// counts. All reads are sequential through one fixed-size buffer.
type segCursor struct {
	br      *bufio.Reader
	run     SegmentRun
	crc     uint32
	wantCRC uint32
	// remain counts undecoded payload bytes; entries counts undecoded
	// run entries. Both must hit zero together.
	remain  int64
	entries int
	// pageLeft counts entries still buffered from the current page.
	pageIdx  int
	consumed int64
	one      [1]byte
	err      error
}

// openSegCursor validates the frame header at run.Offset.
func openSegCursor(ra io.ReaderAt, run SegmentRun) (*segCursor, error) {
	if run.Size <= 0 || run.Count < 0 {
		return nil, &CorruptError{Offset: run.Offset, Block: -1, Kind: "segment", Class: CorruptCountMismatch,
			Cause: fmt.Errorf("impossible run metadata (count %d, size %d)", run.Count, run.Size)}
	}
	// Buffer sizes scale down to the run so a merge over thousands of
	// tiny runs does not pay a full page of memory per cursor.
	bufSize := int(min(run.Size, 1<<15))
	c := &segCursor{
		br:  bufio.NewReaderSize(io.NewSectionReader(ra, run.Offset, run.Size), bufSize),
		run: run,
	}
	kind, err := c.br.ReadByte()
	if err != nil {
		return nil, c.corrupt(CorruptTruncated, noEOF(err))
	}
	c.consumed++
	if kind != run.Kind {
		return nil, c.corrupt(CorruptBadKind, fmt.Errorf("run kind %d, expected %d", kind, run.Kind))
	}
	count, err := c.readHeaderUvarint()
	if err != nil {
		return nil, err
	}
	if count != uint64(run.Count) {
		return nil, c.corrupt(CorruptCountMismatch, fmt.Errorf("run claims %d entries, expected %d", count, run.Count))
	}
	plen, err := c.readHeaderUvarint()
	if err != nil {
		return nil, err
	}
	if plen > maxBlockBytes {
		return nil, c.corrupt(CorruptOversizedLen, fmt.Errorf("run payload %d bytes exceeds %d", plen, maxBlockBytes))
	}
	var crcb [4]byte
	if _, err := io.ReadFull(c.br, crcb[:]); err != nil {
		return nil, c.corrupt(CorruptTruncated, noEOF(err))
	}
	c.consumed += 4
	c.wantCRC = binary.LittleEndian.Uint32(crcb[:])
	if c.consumed+int64(plen) != run.Size {
		return nil, c.corrupt(CorruptCountMismatch,
			fmt.Errorf("header %d + payload %d bytes disagree with run size %d", c.consumed, plen, run.Size))
	}
	c.remain = int64(plen)
	c.entries = run.Count
	return c, nil
}

// readHeaderUvarint decodes a pre-payload uvarint (not CRC-covered).
func (c *segCursor) readHeaderUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(headerByteReader{c})
	if err != nil {
		return 0, c.corrupt(varintClass(err), err)
	}
	return v, nil
}

// headerByteReader reads header bytes, counting but not checksumming.
type headerByteReader struct{ c *segCursor }

func (h headerByteReader) ReadByte() (byte, error) {
	b, err := h.c.br.ReadByte()
	if err == nil {
		h.c.consumed++
	}
	return b, noEOF(err)
}

// ReadByte reads one payload byte, folding it into the running CRC.
// binary.ReadUvarint consumes the columns through this.
func (c *segCursor) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return 0, noEOF(err)
	}
	c.consumed++
	c.remain--
	c.one[0] = b
	c.crc = crc32.Update(c.crc, crcTable, c.one[:])
	return b, nil
}

// corrupt builds the typed failure and makes it sticky.
func (c *segCursor) corrupt(class CorruptClass, cause error) error {
	e := &CorruptError{Offset: c.run.Offset + c.consumed, Block: -1, Kind: "segment", Class: class, Cause: cause}
	c.err = e
	return e
}

// payloadUvarint decodes one CRC-covered uvarint, guarding the payload
// boundary.
func (c *segCursor) payloadUvarint() (uint64, error) {
	before := c.remain
	v, err := binary.ReadUvarint(c)
	if err != nil {
		if before <= 0 {
			return 0, c.corrupt(CorruptCountMismatch, fmt.Errorf("column data runs past the payload length"))
		}
		return 0, c.corrupt(varintClass(err), err)
	}
	if c.remain < 0 {
		return 0, c.corrupt(CorruptCountMismatch, fmt.Errorf("column data runs past the payload length"))
	}
	return v, nil
}

// nextPage returns the entry count of the next page, or 0 when the run
// is complete — at which point the byte count and CRC are settled.
func (c *segCursor) nextPage() (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.entries == 0 {
		if c.remain != 0 {
			return 0, c.corrupt(CorruptCountMismatch,
				fmt.Errorf("%d payload bytes left after the last entry", c.remain))
		}
		if c.crc != c.wantCRC {
			return 0, c.corrupt(CorruptChecksum,
				fmt.Errorf("payload crc %08x, header says %08x", c.crc, c.wantCRC))
		}
		return 0, nil
	}
	n, err := c.payloadUvarint()
	if err != nil {
		return 0, err
	}
	if n == 0 || n > SegmentPageEntries || n > uint64(c.entries) {
		return 0, c.corrupt(CorruptOversizedLen,
			fmt.Errorf("page of %d entries (max %d, %d left in run)", n, SegmentPageEntries, c.entries))
	}
	c.entries -= int(n)
	return int(n), nil
}

// AdjacencyCursor streams one adjacency run back in sorted order with
// O(page) memory.
type AdjacencyCursor struct {
	c       *segCursor
	firsts  []uint32
	seconds []uint32
	idx     int
	n       int
	prevF   uint32
	prevS   uint32
	started bool
	done    bool
}

// OpenAdjacencyRun opens a cursor over an adjacency run.
func OpenAdjacencyRun(ra io.ReaderAt, run SegmentRun) (*AdjacencyCursor, error) {
	if run.Kind != AdjRunKind {
		return nil, &CorruptError{Offset: run.Offset, Block: -1, Kind: "segment", Class: CorruptBadKind,
			Cause: fmt.Errorf("run kind %d is not an adjacency run", run.Kind)}
	}
	c, err := openSegCursor(ra, run)
	if err != nil {
		return nil, err
	}
	page := min(SegmentPageEntries, max(run.Count, 1))
	return &AdjacencyCursor{
		c:       c,
		firsts:  make([]uint32, page),
		seconds: make([]uint32, page),
	}, nil
}

// Next returns the next adjacency, or io.EOF at the clean end of the
// run. Corruption surfaces as *CorruptError and is sticky.
func (ac *AdjacencyCursor) Next() (Adjacency, error) {
	for ac.idx >= ac.n {
		if ac.done {
			return Adjacency{}, io.EOF
		}
		if err := ac.fillPage(); err != nil {
			return Adjacency{}, err
		}
	}
	a := Adjacency{First: inet.Addr(ac.firsts[ac.idx]), Second: inet.Addr(ac.seconds[ac.idx])}
	ac.idx++
	return a, nil
}

// fillPage decodes the next page of both columns into the cursor's
// buffers, enforcing the strict (First, Second) ordering.
func (ac *AdjacencyCursor) fillPage() error {
	n, err := ac.c.nextPage()
	if err != nil {
		return err
	}
	if n == 0 {
		ac.done = true
		return nil
	}
	prev := ac.prevF
	for i := 0; i < n; i++ {
		d, err := ac.c.payloadUvarint()
		if err != nil {
			return err
		}
		v := uint64(prev) + d
		if v > 0xffffffff {
			return ac.c.corrupt(CorruptUnsorted, fmt.Errorf("First column overflows 32 bits"))
		}
		prev = uint32(v)
		ac.firsts[i] = prev
	}
	for i := 0; i < n; i++ {
		u, err := ac.c.payloadUvarint()
		if err != nil {
			return err
		}
		d := unzigzag(u)
		v := int64(ac.prevS) + d
		if v < 0 || v > 0xffffffff {
			return ac.c.corrupt(CorruptUnsorted, fmt.Errorf("Second column leaves 32 bits"))
		}
		var sameFirst bool
		if i > 0 {
			sameFirst = ac.firsts[i] == ac.firsts[i-1]
		} else if ac.started {
			sameFirst = ac.firsts[0] == ac.prevF
		}
		if sameFirst && d <= 0 {
			return ac.c.corrupt(CorruptUnsorted, fmt.Errorf("adjacency run not strictly increasing"))
		}
		ac.prevS = uint32(v)
		ac.seconds[i] = ac.prevS
	}
	ac.prevF = prev
	ac.started = true
	ac.idx, ac.n = 0, n
	return nil
}

// AddrCursor streams one address run back in sorted order with O(page)
// memory.
type AddrCursor struct {
	c       *segCursor
	addrs   []uint32
	idx     int
	n       int
	prev    uint32
	started bool
	done    bool
}

// OpenAddrRun opens a cursor over an address run.
func OpenAddrRun(ra io.ReaderAt, run SegmentRun) (*AddrCursor, error) {
	if run.Kind != AddrRunKind {
		return nil, &CorruptError{Offset: run.Offset, Block: -1, Kind: "segment", Class: CorruptBadKind,
			Cause: fmt.Errorf("run kind %d is not an address run", run.Kind)}
	}
	c, err := openSegCursor(ra, run)
	if err != nil {
		return nil, err
	}
	return &AddrCursor{c: c, addrs: make([]uint32, min(SegmentPageEntries, max(run.Count, 1)))}, nil
}

// Next returns the next address, or io.EOF at the clean end of the run.
func (ac *AddrCursor) Next() (inet.Addr, error) {
	for ac.idx >= ac.n {
		if ac.done {
			return 0, io.EOF
		}
		n, err := ac.c.nextPage()
		if err != nil {
			return 0, err
		}
		if n == 0 {
			ac.done = true
			continue
		}
		for i := 0; i < n; i++ {
			d, err := ac.c.payloadUvarint()
			if err != nil {
				return 0, err
			}
			if ac.started && d == 0 {
				return 0, ac.c.corrupt(CorruptUnsorted, fmt.Errorf("address run not strictly increasing"))
			}
			v := uint64(ac.prev) + d
			if v > 0xffffffff {
				return 0, ac.c.corrupt(CorruptUnsorted, fmt.Errorf("address column overflows 32 bits"))
			}
			ac.prev = uint32(v)
			ac.started = true
			ac.addrs[i] = ac.prev
		}
		ac.idx, ac.n = 0, n
	}
	a := inet.Addr(ac.addrs[ac.idx])
	ac.idx++
	return a, nil
}
