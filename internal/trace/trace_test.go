package trace

import (
	"testing"

	"mapit/internal/inet"
)

func ip(s string) inet.Addr { return inet.MustParseAddr(s) }

func TestHasCycle(t *testing.T) {
	cases := []struct {
		name  string
		addrs []string
		want  bool
	}{
		{"no cycle", []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}, false},
		{"cycle separated by one", []string{"1.1.1.1", "2.2.2.2", "1.1.1.1"}, true},
		{"cycle separated by two", []string{"1.1.1.1", "2.2.2.2", "3.3.3.3", "1.1.1.1"}, true},
		{"immediate repeat is not a cycle", []string{"1.1.1.1", "1.1.1.1", "2.2.2.2"}, false},
		{"trailing repeats not a cycle", []string{"1.1.1.1", "2.2.2.2", "2.2.2.2", "2.2.2.2"}, false},
		{"null hop between repeats not a separator", []string{"1.1.1.1", "", "1.1.1.1"}, false},
		{"null hop plus real separator", []string{"1.1.1.1", "", "2.2.2.2", "1.1.1.1"}, true},
		{"empty", nil, false},
	}
	for _, c := range cases {
		var addrs []inet.Addr
		for _, s := range c.addrs {
			if s == "" {
				addrs = append(addrs, 0)
			} else {
				addrs = append(addrs, ip(s))
			}
		}
		tr := NewTrace("m", ip("9.9.9.9"), addrs...)
		if got := HasCycle(tr); got != c.want {
			t.Errorf("%s: HasCycle = %v; want %v", c.name, got, c.want)
		}
	}
}

func TestSanitizeQuotedTTL(t *testing.T) {
	tr := NewTrace("m", ip("9.9.9.9"), ip("1.1.1.1"), ip("2.2.2.2"), ip("3.3.3.3"))
	tr.Hops[1].QuotedTTL = 0
	clean, res := Sanitize(tr)
	if res.Discarded || res.RemovedHops != 1 {
		t.Fatalf("res = %+v", res)
	}
	if clean.Hops[1].Responded() {
		t.Error("quoted-TTL=0 hop should become a null hop")
	}
	// Original trace untouched (copy-on-write).
	if !tr.Hops[1].Responded() {
		t.Error("input trace mutated")
	}
	// No adjacency across the removed hop.
	adj := Adjacencies(clean, nil)
	if len(adj) != 0 {
		t.Errorf("adjacencies across removed hop: %v", adj)
	}
}

func TestSanitizeDiscardsCycles(t *testing.T) {
	tr := NewTrace("m", ip("9.9.9.9"), ip("1.1.1.1"), ip("2.2.2.2"), ip("1.1.1.1"))
	_, res := Sanitize(tr)
	if !res.Discarded {
		t.Error("cycle trace not discarded")
	}
	// Removing a quoted-TTL=0 hop can eliminate the cycle.
	tr2 := NewTrace("m", ip("9.9.9.9"), ip("1.1.1.1"), ip("2.2.2.2"), ip("1.1.1.1"))
	tr2.Hops[2].QuotedTTL = 0
	clean, res := Sanitize(tr2)
	if res.Discarded {
		t.Error("cycle formed only by a removed hop should not discard")
	}
	if len(clean.Hops) != 3 {
		t.Errorf("hops = %d", len(clean.Hops))
	}
}

func TestAdjacencies(t *testing.T) {
	tr := NewTrace("m", ip("9.9.9.9"),
		ip("1.1.1.1"), ip("2.2.2.2"), 0, ip("3.3.3.3"), ip("3.3.3.3"), ip("4.4.4.4"),
		ip("10.0.0.1"), ip("5.5.5.5"))
	adj := Adjacencies(tr, nil)
	want := []Adjacency{
		{ip("1.1.1.1"), ip("2.2.2.2")},
		{ip("3.3.3.3"), ip("4.4.4.4")},
		// 4.4.4.4 -> 10.0.0.1 skipped (private), 10.0.0.1 -> 5.5.5.5 skipped.
	}
	if len(adj) != len(want) {
		t.Fatalf("adjacencies = %v", adj)
	}
	for i := range want {
		if adj[i] != want[i] {
			t.Errorf("adj[%d] = %v; want %v", i, adj[i], want[i])
		}
	}
}

func TestDatasetSanitizeStats(t *testing.T) {
	d := &Dataset{Traces: []Trace{
		NewTrace("m1", ip("9.9.9.1"), ip("1.1.1.1"), ip("2.2.2.2")),
		NewTrace("m1", ip("9.9.9.2"), ip("1.1.1.1"), ip("3.3.3.3"), ip("1.1.1.1")), // cycle
		NewTrace("m2", ip("9.9.9.3"), ip("2.2.2.2"), ip("4.4.4.4")),
	}}
	s := d.Sanitize()
	if s.Stats.TotalTraces != 3 || s.Stats.DiscardedTraces != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	if len(s.Retained) != 2 {
		t.Fatalf("retained = %d", len(s.Retained))
	}
	// 3.3.3.3 appears only in the discarded trace: counted in AllAddrs
	// (needed for the §4.2 heuristic) but not in RetainedAddrs.
	if !s.AllAddrs.Contains(ip("3.3.3.3")) {
		t.Error("AllAddrs must include discarded-trace addresses")
	}
	if s.Stats.DistinctAddrs != 4 || s.Stats.RetainedAddrs != 3 {
		t.Errorf("addr stats = %+v", s.Stats)
	}
	if f := s.Stats.RetainedAddrFraction(); f != 0.75 {
		t.Errorf("RetainedAddrFraction = %v", f)
	}
	if f := s.Stats.RetainedTraceFraction(); f < 0.66 || f > 0.67 {
		t.Errorf("RetainedTraceFraction = %v", f)
	}
	if got := len(s.Adjacencies()); got != 2 {
		t.Errorf("adjacencies = %d", got)
	}
	var zero Stats
	if zero.RetainedAddrFraction() != 0 || zero.RetainedTraceFraction() != 0 {
		t.Error("zero stats fractions should be 0")
	}
}

func TestTraceAddrs(t *testing.T) {
	tr := NewTrace("m", ip("9.9.9.9"), ip("1.1.1.1"), 0, ip("2.2.2.2"))
	addrs := tr.Addrs()
	if len(addrs) != 3 || addrs[0] != ip("1.1.1.1") || addrs[1] != 0 || addrs[2] != ip("2.2.2.2") {
		t.Errorf("Addrs = %v", addrs)
	}
}
