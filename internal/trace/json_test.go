package trace

import (
	"bytes"
	"strings"
	"testing"
)

const sampleJSON = `{"monitor":"ams3-nl","dst":"8.8.8.8","hops":["192.0.2.1","198.51.100.1!q0","*","8.8.8.8"]}
{"monitor":"sjc2-us","dst":"1.2.3.4","hops":["203.0.113.9"]}
`

func TestReadJSON(t *testing.T) {
	d, err := ReadJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 2 {
		t.Fatalf("traces = %d", len(d.Traces))
	}
	tr := d.Traces[0]
	if tr.Monitor != "ams3-nl" || tr.Dst != ip("8.8.8.8") || len(tr.Hops) != 4 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Hops[1].QuotedTTL != 0 || tr.Hops[2].Responded() {
		t.Error("hop parsing wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, err := ReadJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != len(d.Traces) {
		t.Fatal("length mismatch")
	}
	for i := range d.Traces {
		a, b := d.Traces[i], back.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d differs", i)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] {
				t.Fatalf("hop %d differs", j)
			}
		}
	}
}

func TestJSONAndTextEquivalence(t *testing.T) {
	dText, err := Read(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, dText); err != nil {
		t.Fatal(err)
	}
	dJSON, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dText.Traces {
		a, b := dText.Traces[i], dJSON.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("codec mismatch at %d", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	bad := []string{
		`{"monitor":"m"`,                                 // truncated
		`{"monitor":"m","dst":"x","hops":[]}`,            // bad dst
		`{"monitor":"m","dst":"1.2.3.4","hops":["bad"]}`, // bad hop
	}
	for _, s := range bad {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded", s)
		}
	}
}
