package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"mapit/internal/inet"
)

func TestBinaryRoundTrip(t *testing.T) {
	d, err := Read(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != len(d.Traces) {
		t.Fatalf("lengths differ")
	}
	for i := range d.Traces {
		a, b := d.Traces[i], back.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] {
				t.Fatalf("hop %d differs: %+v vs %+v", j, a.Hops[j], b.Hops[j])
			}
		}
	}
}

func TestBinaryStreamReader(t *testing.T) {
	d := &Dataset{Traces: []Trace{
		NewTrace("m1", ip("9.9.9.1"), ip("1.1.1.1"), 0, ip("2.2.2.2")),
		NewTrace("m2", ip("9.9.9.2"), ip("3.3.3.3")),
	}}
	d.Traces[0].Hops[2].QuotedTTL = 0
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	r, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Trace
	for {
		tr, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr)
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d traces", len(got))
	}
	if got[0].Hops[2].QuotedTTL != 0 || got[0].Hops[1].Responded() {
		t.Error("hop metadata lost")
	}
	// After EOF, Next keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("post-EOF Next = %v", err)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("not a trace file")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	d := &Dataset{Traces: []Trace{NewTrace("monitor", ip("9.9.9.1"), ip("1.1.1.1"))}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewBinaryReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated stream Next = %v; want hard error", err)
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(monitor string, dst uint32, addrs []uint32, quoted []byte) bool {
		if len(monitor) > 100 {
			monitor = monitor[:100]
		}
		tr := Trace{Monitor: monitor, Dst: inet.Addr(dst)}
		for i, a := range addrs {
			if len(tr.Hops) == 64 {
				break
			}
			q := int8(1)
			if i < len(quoted) {
				q = int8(quoted[i] % 64)
			}
			tr.Hops = append(tr.Hops, Hop{Addr: inet.Addr(a), QuotedTTL: q})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, &Dataset{Traces: []Trace{tr}}); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil || len(back.Traces) != 1 {
			return false
		}
		b := back.Traces[0]
		if b.Monitor != tr.Monitor || b.Dst != tr.Dst || len(b.Hops) != len(tr.Hops) {
			return false
		}
		for i := range tr.Hops {
			// A zero address round-trips as a null hop with default
			// quoted TTL; everything else must be exact.
			if tr.Hops[i].Addr == 0 {
				if b.Hops[i].Responded() {
					return false
				}
				continue
			}
			if b.Hops[i] != tr.Hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// The binary form must be several times smaller than the text form.
	var traces []Trace
	for i := 0; i < 200; i++ {
		traces = append(traces, NewTrace("monitor-name-xx", ip("9.9.9.9"),
			ip("10.0.0.1")+inet.Addr(i), ip("10.0.1.1")+inet.Addr(i),
			ip("10.0.2.1")+inet.Addr(i), ip("10.0.3.1")+inet.Addr(i)))
	}
	d := &Dataset{Traces: traces}
	var text, bin bytes.Buffer
	if err := Write(&text, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*2 >= text.Len() {
		t.Errorf("binary %d bytes not compact vs text %d", bin.Len(), text.Len())
	}
}

func TestBlockWriterMatchesBatch(t *testing.T) {
	var traces []Trace
	for i := 0; i < 300; i++ {
		m := "mon-a"
		if i%3 == 0 {
			m = "mon-b"
		}
		traces = append(traces, NewTrace(m, ip("9.9.9.9")+inet.Addr(i),
			ip("10.0.0.1")+inet.Addr(i*7), ip("10.0.1.1")+inet.Addr(i)))
	}
	d := &Dataset{Traces: traces}
	for _, perBlock := range []int{1, 7, 128, 300, 1000, 0} {
		var batch bytes.Buffer
		if err := WriteBinaryBlocks(&batch, d, perBlock); err != nil {
			t.Fatal(err)
		}
		var stream bytes.Buffer
		bw, err := NewBlockWriter(&stream, perBlock)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range d.Traces {
			if err := bw.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if bw.Traces() != int64(len(d.Traces)) {
			t.Errorf("perBlock=%d: Traces()=%d, want %d", perBlock, bw.Traces(), len(d.Traces))
		}
		if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
			t.Errorf("perBlock=%d: streamed bytes differ from batch (%d vs %d bytes)",
				perBlock, stream.Len(), batch.Len())
		}
		back, err := ReadBinary(bytes.NewReader(stream.Bytes()))
		if err != nil {
			t.Fatalf("perBlock=%d: decode: %v", perBlock, err)
		}
		if len(back.Traces) != len(d.Traces) {
			t.Fatalf("perBlock=%d: got %d traces, want %d", perBlock, len(back.Traces), len(d.Traces))
		}
	}
}

func TestBlockWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 0 {
		t.Fatalf("got %d traces from empty stream", len(d.Traces))
	}
}
