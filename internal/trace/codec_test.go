package trace

import (
	"bytes"
	"strings"
	"testing"
)

const sampleText = `# two traces
ams3-nl|8.8.8.8|192.0.2.1 198.51.100.1!q0 * 8.8.8.8
sjc2-us|1.2.3.4|203.0.113.9
`

func TestReadText(t *testing.T) {
	d, err := Read(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 2 {
		t.Fatalf("traces = %d", len(d.Traces))
	}
	tr := d.Traces[0]
	if tr.Monitor != "ams3-nl" || tr.Dst != ip("8.8.8.8") || len(tr.Hops) != 4 {
		t.Fatalf("trace 0 = %+v", tr)
	}
	if tr.Hops[1].QuotedTTL != 0 {
		t.Error("quoted TTL not parsed")
	}
	if tr.Hops[2].Responded() {
		t.Error("* should be a null hop")
	}
}

func TestRoundTrip(t *testing.T) {
	d, err := Read(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != len(d.Traces) {
		t.Fatalf("lengths differ")
	}
	for i := range d.Traces {
		a, b := d.Traces[i], back.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Hops {
			if a.Hops[j] != b.Hops[j] {
				t.Errorf("trace %d hop %d: %+v vs %+v", i, j, a.Hops[j], b.Hops[j])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"m|8.8.8.8",              // missing hops field
		"m|nonsense|1.1.1.1",     // bad dst
		"m|8.8.8.8|1.1.1",        // bad hop
		"m|8.8.8.8|1.1.1.1!qx",   // bad quoted TTL
		"m|8.8.8.8|1.1.1.1!q200", // out of range
	}
	for _, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("Read(%q) succeeded", s)
		}
	}
}

func TestParseHopForms(t *testing.T) {
	h, err := ParseHop("1.2.3.4!q3")
	if err != nil || h.QuotedTTL != 3 || h.Addr != ip("1.2.3.4") {
		t.Errorf("ParseHop = %+v, %v", h, err)
	}
	if formatHop(h) != "1.2.3.4!q3" {
		t.Errorf("formatHop = %q", formatHop(h))
	}
	if formatHop(Hop{QuotedTTL: 1}) != "*" {
		t.Error("null hop format")
	}
}

func TestEmptyHopsLine(t *testing.T) {
	d, err := Read(strings.NewReader("m|8.8.8.8| \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 1 || len(d.Traces[0].Hops) != 0 {
		t.Errorf("empty-hops trace parsed wrong: %+v", d.Traces)
	}
}
