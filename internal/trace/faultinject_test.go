package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
)

// Fault-injection harness: takes a valid v2/v3 corpus, applies every
// corruption mode systematically (truncation at each frame-boundary
// class, bit flips, oversized uvarints, bad magic, out-of-range monitor
// ids, payload/traceCount mismatches), and asserts the decoders —
// serial and parallel, strict and permissive — either return a typed
// *CorruptError with offset context or skip-and-count, and never
// panic or trust a hostile length field. CI runs this under -race.

// faultCorpus is a valid corpus in one binary version.
type faultCorpus struct {
	name string
	raw  []byte
	d    *Dataset
}

func buildFaultCorpora(t *testing.T) []faultCorpus {
	t.Helper()
	d := genDataset(150)
	var v2, v3, v4 bytes.Buffer
	if err := WriteBinary(&v2, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryBlocks(&v3, d, 16); err != nil {
		t.Fatal(err)
	}
	td := timestampDataset(d)
	if err := WriteBinaryBlocksV4(&v4, td, 16); err != nil {
		t.Fatal(err)
	}
	return []faultCorpus{
		{name: "v2", raw: v2.Bytes(), d: d},
		{name: "v3", raw: v3.Bytes(), d: d},
		{name: "v4", raw: v4.Bytes(), d: td},
	}
}

// timestampDataset clones a dataset and stamps deterministic
// non-decreasing timestamps (with duplicates) onto the clone.
func timestampDataset(d *Dataset) *Dataset {
	td := &Dataset{Traces: append([]Trace(nil), d.Traces...)}
	base := int64(1_700_000_000)
	for i := range td.Traces {
		td.Traces[i].Time = base + int64(i/3)*17
	}
	return td
}

// frameInfo locates one v3/v4 block frame within a valid stream.
type frameInfo struct {
	kindOff    int // offset of the frame's kind byte
	tsOff      int // offset of the v4 timestamp column (0 for v3)
	tsLen      int
	payloadOff int
	payloadLen int
	count      int
}

// walkFrames parses the frame boundaries of a valid v3/v4 stream
// (version sniffed from the magic).
func walkFrames(t *testing.T, raw []byte) []frameInfo {
	t.Helper()
	version := raw[4]
	var frames []frameInfo
	pos := 5 // skip magic
	for pos < len(raw) {
		fi := frameInfo{kindOff: pos}
		if raw[pos] != blockRecordKind {
			t.Fatalf("frame walk: kind %d at %d", raw[pos], pos)
		}
		pos++
		plen, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			t.Fatalf("frame walk: bad payloadLen at %d", pos)
		}
		pos += n
		count, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			t.Fatalf("frame walk: bad traceCount at %d", pos)
		}
		pos += n
		if version >= 4 {
			tsLen, n := binary.Uvarint(raw[pos:])
			if n <= 0 {
				t.Fatalf("frame walk: bad tsLen at %d", pos)
			}
			pos += n
			fi.tsOff, fi.tsLen = pos, int(tsLen)
			pos += int(tsLen)
		}
		fi.payloadOff, fi.payloadLen, fi.count = pos, int(plen), int(count)
		pos += int(plen)
		frames = append(frames, fi)
	}
	return frames
}

// variant is one corrupted input.
type variant struct {
	name string
	data []byte
}

// corruptions generates every corruption mode's variants for a corpus.
func corruptions(t *testing.T, c faultCorpus) []variant {
	t.Helper()
	var out []variant
	add := func(name string, data []byte) { out = append(out, variant{name, data}) }
	clone := func() []byte { return bytes.Clone(c.raw) }

	// Mode 1: truncation at every frame-boundary class.
	cuts := []int{0, 1, 4, 5} // mid-magic and right after it
	if c.name != "v2" {
		for _, f := range walkFrames(t, c.raw) {
			cuts = append(cuts,
				f.kindOff,                   // before a frame
				f.kindOff+1,                 // mid block header
				f.payloadOff,                // before the payload
				f.payloadOff+f.payloadLen/2, // mid payload
			)
			if f.tsLen > 0 {
				cuts = append(cuts, f.tsOff, f.tsOff+f.tsLen/2) // mid timestamp column
			}
		}
	} else {
		cuts = append(cuts, 6, len(c.raw)/3, len(c.raw)/2)
	}
	cuts = append(cuts, len(c.raw)-1)
	for _, cut := range cuts {
		if cut < 0 || cut > len(c.raw) {
			continue
		}
		add(fmt.Sprintf("truncate@%d", cut), c.raw[:cut])
	}

	// Mode 2: single bit flips across the stream.
	for pos := 0; pos < len(c.raw); pos += 37 {
		b := clone()
		b[pos] ^= 1 << (pos % 8)
		add(fmt.Sprintf("bitflip@%d", pos), b)
	}

	// Mode 3: bad magic (each byte mutated).
	for i := 0; i < 5; i++ {
		b := clone()
		b[i] ^= 0xff
		add(fmt.Sprintf("badmagic@%d", i), b)
	}

	return out
}

// checkDecodeErr asserts a decode outcome is either success or a typed
// *CorruptError with sane context — never any other error kind.
func checkDecodeErr(t *testing.T, label string, err error, inputLen int) {
	t.Helper()
	if err == nil {
		return
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: untyped decode error %T: %v", label, err, err)
	}
	if ce.Offset < 0 || ce.Offset > int64(inputLen) {
		t.Errorf("%s: offset %d outside input of %d bytes", label, ce.Offset, inputLen)
	}
	if ce.Block < -1 {
		t.Errorf("%s: bad block index %d", label, ce.Block)
	}
	if ce.Kind == "" {
		t.Errorf("%s: empty record kind", label)
	}
}

// TestFaultInjectionMatrix drives every corruption mode through the
// serial and parallel readers in strict and permissive modes: no
// panics, every failure a *CorruptError, and strict serial/parallel
// agreeing on success (with identical datasets) or failure.
func TestFaultInjectionMatrix(t *testing.T) {
	for _, c := range buildFaultCorpora(t) {
		t.Run(c.name, func(t *testing.T) {
			for _, v := range corruptions(t, c) {
				serial, serr := ReadBinaryOpts(bytes.NewReader(v.data), DecodeOptions{})
				checkDecodeErr(t, v.name+"/serial-strict", serr, len(v.data))

				par, perr := ReadBinaryParallelOpts(bytes.NewReader(v.data), 3, DecodeOptions{})
				checkDecodeErr(t, v.name+"/parallel-strict", perr, len(v.data))

				if (serr == nil) != (perr == nil) {
					t.Fatalf("%s: strict serial err=%v, parallel err=%v", v.name, serr, perr)
				}
				if serr == nil {
					sameDataset(t, serial, par, v.name+"/strict-equivalence")
				}

				var stats DecodeStats
				ds, err := ReadBinaryOpts(bytes.NewReader(v.data), DecodeOptions{Permissive: true, Stats: &stats})
				checkDecodeErr(t, v.name+"/serial-permissive", err, len(v.data))
				if err == nil {
					if got := int64(len(ds.Traces)); got != stats.TracesDecoded {
						t.Errorf("%s: stats.TracesDecoded=%d but %d traces", v.name, stats.TracesDecoded, got)
					}
					if stats.BlocksSkipped > 0 && stats.TotalErrors() == 0 {
						t.Errorf("%s: blocks skipped without recorded errors", v.name)
					}
				}

				var pstats DecodeStats
				pds, err := ReadBinaryParallelOpts(bytes.NewReader(v.data), 3, DecodeOptions{Permissive: true, Stats: &pstats})
				checkDecodeErr(t, v.name+"/parallel-permissive", err, len(v.data))
				if err == nil && ds != nil {
					sameDataset(t, ds, pds, v.name+"/permissive-equivalence")
					if stats.BlocksSkipped != pstats.BlocksSkipped || stats.TracesDropped != pstats.TracesDropped {
						t.Errorf("%s: permissive stats diverge: serial %+v parallel %+v", v.name, stats, pstats)
					}
				}
			}
		})
	}
}

// TestFaultInjectionPermissiveSkip corrupts exactly one block's payload
// per trial and asserts permissive decoding yields exactly the traces
// of the untouched blocks, with the skip counted and classified.
func TestFaultInjectionPermissiveSkip(t *testing.T) {
	d := genDataset(150)
	var buf bytes.Buffer
	if err := WriteBinaryBlocks(&buf, d, 16); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	frames := walkFrames(t, raw)
	if len(frames) < 3 {
		t.Fatalf("want several blocks, got %d", len(frames))
	}

	// Traces of each block, decoded from the pristine stream.
	perBlock := make([][]Trace, len(frames))
	for i, f := range frames {
		traces, cerr := decodeBlockPayload(raw[f.payloadOff:f.payloadOff+f.payloadLen], int64(f.payloadOff), i, f.count)
		if cerr != nil {
			t.Fatal(cerr)
		}
		perBlock[i] = traces
	}

	for k := range frames {
		bad := bytes.Clone(raw)
		bad[frames[k].payloadOff] = 0xee // invalid record kind inside block k

		want := &Dataset{}
		for i, traces := range perBlock {
			if i != k {
				want.Traces = append(want.Traces, traces...)
			}
		}

		for _, readerCase := range []struct {
			name   string
			decode func(opt DecodeOptions) (*Dataset, error)
		}{
			{"serial", func(opt DecodeOptions) (*Dataset, error) {
				return ReadBinaryOpts(bytes.NewReader(bad), opt)
			}},
			{"parallel", func(opt DecodeOptions) (*Dataset, error) {
				return ReadBinaryParallelOpts(bytes.NewReader(bad), 4, opt)
			}},
		} {
			label := fmt.Sprintf("block%d/%s", k, readerCase.name)

			// Strict: typed hard error naming the corrupt block.
			if _, err := readerCase.decode(DecodeOptions{}); err == nil {
				t.Fatalf("%s: strict decode accepted corrupt block", label)
			} else {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("%s: strict error untyped: %v", label, err)
				}
				if ce.Block != k {
					t.Errorf("%s: error names block %d", label, ce.Block)
				}
				if ce.Class != CorruptBadKind {
					t.Errorf("%s: class = %v, want %v", label, ce.Class, CorruptBadKind)
				}
			}

			// Permissive: the decoded set equals the uncorrupted
			// blocks' traces exactly, and the loss is counted.
			var stats DecodeStats
			got, err := readerCase.decode(DecodeOptions{Permissive: true, Stats: &stats})
			if err != nil {
				t.Fatalf("%s: permissive decode failed: %v", label, err)
			}
			sameDataset(t, want, got, label+"/permissive")
			if stats.BlocksSkipped != 1 {
				t.Errorf("%s: BlocksSkipped = %d, want 1", label, stats.BlocksSkipped)
			}
			if stats.TracesDropped != int64(frames[k].count) {
				t.Errorf("%s: TracesDropped = %d, want %d", label, stats.TracesDropped, frames[k].count)
			}
			if stats.Errors[CorruptBadKind] == 0 {
				t.Errorf("%s: bad_kind error not recorded: %+v", label, stats.ErrorsByClass())
			}
			if stats.BlocksDecoded != int64(len(frames)-1) {
				t.Errorf("%s: BlocksDecoded = %d, want %d", label, stats.BlocksDecoded, len(frames)-1)
			}
		}
	}
}

// TestFaultInjectionTruncatedTail cuts the stream mid-payload of the
// final block: permissive decoding keeps everything before it.
func TestFaultInjectionTruncatedTail(t *testing.T) {
	d := genDataset(150)
	var buf bytes.Buffer
	if err := WriteBinaryBlocks(&buf, d, 16); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	frames := walkFrames(t, raw)
	last := frames[len(frames)-1]
	cut := raw[:last.payloadOff+last.payloadLen/2]

	var want Dataset
	for _, f := range frames[:len(frames)-1] {
		traces, cerr := decodeBlockPayload(raw[f.payloadOff:f.payloadOff+f.payloadLen], 0, 0, f.count)
		if cerr != nil {
			t.Fatal(cerr)
		}
		want.Traces = append(want.Traces, traces...)
	}

	for _, workers := range []int{1, 4} {
		var stats DecodeStats
		got, err := ReadBinaryParallelOpts(bytes.NewReader(cut), workers, DecodeOptions{Permissive: true, Stats: &stats})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameDataset(t, &want, got, fmt.Sprintf("truncated-tail workers=%d", workers))
		if stats.BlocksSkipped != 1 || stats.Errors[CorruptTruncated] == 0 {
			t.Errorf("workers=%d: skip not counted: %+v", workers, stats)
		}
	}
}

// TestFaultInjectionOversizedFields crafts streams whose length fields
// lie: every one must be rejected by a bound check (typed error, no
// unbounded allocation), and the lying traceCount must be skippable.
func TestFaultInjectionOversizedFields(t *testing.T) {
	uv := func(v uint64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutUvarint(b[:], v)]
	}
	concat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

	cases := []struct {
		name  string
		data  []byte
		class CorruptClass
	}{
		{
			name:  "v3 payloadLen over maxBlockBytes",
			data:  concat([]byte("MTRC\x03"), []byte{blockRecordKind}, uv(maxBlockBytes+1), uv(1)),
			class: CorruptOversizedLen,
		},
		{
			name:  "v3 traceCount impossible for payload",
			data:  concat([]byte("MTRC\x03"), []byte{blockRecordKind}, uv(8), uv(1<<40), make([]byte, 8)),
			class: CorruptCountMismatch,
		},
		{
			name:  "v2 monitor name length oversized",
			data:  concat([]byte("MTRC\x02"), []byte{0}, uv(1<<30)),
			class: CorruptOversizedLen,
		},
		{
			name:  "v2 hop count oversized",
			data:  concat([]byte("MTRC\x02"), []byte{0}, uv(1), []byte("m"), []byte{1}, uv(0), []byte{9, 9, 9, 9}, uv(1<<20)),
			class: CorruptOversizedLen,
		},
		{
			name:  "v2 monitor id out of range",
			data:  concat([]byte("MTRC\x02"), []byte{1}, uv(7), []byte{9, 9, 9, 9}, uv(0)),
			class: CorruptBadMonitorID,
		},
		{
			name: "v3 monitor id out of range inside block",
			// payload: trace record with undefined monitor id 7
			data: concat([]byte("MTRC\x03"), []byte{blockRecordKind}, uv(7), uv(1),
				[]byte{1}, uv(7), []byte{9, 9, 9, 9}, uv(0)),
			class: CorruptBadMonitorID,
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3} {
			_, err := ReadBinaryParallelOpts(bytes.NewReader(tc.data), workers, DecodeOptions{})
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("%s workers=%d: err = %v, want CorruptError", tc.name, workers, err)
			}
			if ce.Class != tc.class {
				t.Errorf("%s workers=%d: class = %v, want %v", tc.name, workers, ce.Class, tc.class)
			}
		}
	}

	// The lying traceCount and the in-block bad monitor id are
	// block-payload or header-vs-payload inconsistencies with intact
	// framing, so permissive mode skips and counts them.
	for _, name := range []string{"v3 traceCount impossible for payload", "v3 monitor id out of range inside block"} {
		for _, tc := range cases {
			if tc.name != name {
				continue
			}
			var stats DecodeStats
			ds, err := ReadBinaryParallelOpts(bytes.NewReader(tc.data), 2, DecodeOptions{Permissive: true, Stats: &stats})
			if err != nil {
				t.Fatalf("%s permissive: %v", tc.name, err)
			}
			if len(ds.Traces) != 0 || stats.BlocksSkipped != 1 || stats.Errors[tc.class] == 0 {
				t.Errorf("%s permissive: traces=%d stats=%+v", tc.name, len(ds.Traces), stats)
			}
		}
	}
}

// TestFaultInjectionCountMismatch rewrites a valid v3 stream's first
// frame header to claim one more trace than the payload holds: strict
// errors with CorruptCountMismatch, permissive skips only that block.
func TestFaultInjectionCountMismatch(t *testing.T) {
	d := genDataset(150)
	var buf bytes.Buffer
	if err := WriteBinaryBlocks(&buf, d, 16); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	frames := walkFrames(t, raw)

	// Reassemble the stream with frame 0's count bumped.
	uv := func(v uint64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutUvarint(b[:], v)]
	}
	var bad bytes.Buffer
	bad.WriteString("MTRC\x03")
	for i, f := range frames {
		count := f.count
		if i == 0 {
			count++
		}
		bad.WriteByte(blockRecordKind)
		bad.Write(uv(uint64(f.payloadLen)))
		bad.Write(uv(uint64(count)))
		bad.Write(raw[f.payloadOff : f.payloadOff+f.payloadLen])
	}

	for _, workers := range []int{1, 4} {
		_, err := ReadBinaryParallelOpts(bytes.NewReader(bad.Bytes()), workers, DecodeOptions{})
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Class != CorruptCountMismatch {
			t.Fatalf("workers=%d: err = %v, want count_mismatch CorruptError", workers, err)
		}

		var stats DecodeStats
		got, err := ReadBinaryParallelOpts(bytes.NewReader(bad.Bytes()), workers, DecodeOptions{Permissive: true, Stats: &stats})
		if err != nil {
			t.Fatalf("workers=%d permissive: %v", workers, err)
		}
		var want Dataset
		for i, f := range frames {
			if i == 0 {
				continue
			}
			traces, cerr := decodeBlockPayload(raw[f.payloadOff:f.payloadOff+f.payloadLen], 0, 0, f.count)
			if cerr != nil {
				t.Fatal(cerr)
			}
			want.Traces = append(want.Traces, traces...)
		}
		sameDataset(t, &want, got, fmt.Sprintf("count-mismatch workers=%d", workers))
		if stats.BlocksSkipped != 1 || stats.TracesDropped != int64(frames[0].count+1) {
			t.Errorf("workers=%d: stats = %+v", workers, stats)
		}
	}
}

// TestFaultInjectionStreamingReader drives the corruption matrix
// through the one-trace-at-a-time streaming interface (the path
// cmd/mapit's collector ingest uses): bounded iteration, typed or
// counted failures, sticky errors after the first failure.
func TestFaultInjectionStreamingReader(t *testing.T) {
	for _, c := range buildFaultCorpora(t) {
		for _, v := range corruptions(t, c) {
			for _, permissive := range []bool{false, true} {
				label := fmt.Sprintf("%s/%s/permissive=%v", c.name, v.name, permissive)
				var stats DecodeStats
				r, err := NewBinaryReaderOpts(bytes.NewReader(v.data), DecodeOptions{Permissive: permissive, Stats: &stats})
				if err != nil {
					checkDecodeErr(t, label, err, len(v.data))
					continue
				}
				decoded := 0
				for i := 0; ; i++ {
					if i > len(v.data)+1000 {
						t.Fatalf("%s: reader did not terminate", label)
					}
					_, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						checkDecodeErr(t, label, err, len(v.data))
						// Errors are sticky.
						if _, err2 := r.Next(); err2 != err {
							t.Fatalf("%s: error not sticky: %v then %v", label, err, err2)
						}
						break
					}
					decoded++
				}
				if int64(decoded) != stats.TracesDecoded {
					t.Errorf("%s: decoded %d but stats say %d", label, decoded, stats.TracesDecoded)
				}
			}
		}
	}
}

// TestCorruptErrorRendering pins the error text contract: offset, block
// and class all appear, and Unwrap exposes the cause.
func TestCorruptErrorRendering(t *testing.T) {
	cause := errors.New("boom")
	e := &CorruptError{Offset: 1234, Block: 7, Kind: "block", Class: CorruptCountMismatch, Cause: cause}
	msg := e.Error()
	for _, want := range []string{"byte 1234", "block 7", "count_mismatch", "boom"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if !errors.Is(e, cause) {
		t.Error("Unwrap does not expose cause")
	}
	v2 := &CorruptError{Offset: 9, Block: -1, Kind: "trace", Class: CorruptBadMonitorID}
	if bytes.Contains([]byte(v2.Error()), []byte("block")) {
		t.Errorf("v2 error %q mentions a block", v2.Error())
	}
}
