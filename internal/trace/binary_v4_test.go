package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// v4 format tests: the timestamp column must round-trip exactly through
// every reader, degrade to Time-zero through the timestampless formats,
// and turn every way a column can be damaged — truncation, bit flips,
// regressions, overflow, trailing bytes — into a typed *CorruptError
// (skippable in permissive mode, since the framing survives).

func TestBinaryV4RoundTrip(t *testing.T) {
	d := timestampDataset(genDataset(300))
	for _, perBlock := range []int{1, 7, 64, 0 /* default */} {
		var buf bytes.Buffer
		if err := WriteBinaryBlocksV4(&buf, d, perBlock); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if !bytes.HasPrefix(raw, []byte("MTRC\x04")) {
			t.Fatalf("perBlock=%d: magic %q", perBlock, raw[:5])
		}

		back, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		sameDataset(t, d, back, fmt.Sprintf("serial perBlock=%d", perBlock))

		for _, workers := range []int{2, 5} {
			par, err := ReadBinaryParallel(bytes.NewReader(raw), workers)
			if err != nil {
				t.Fatal(err)
			}
			sameDataset(t, d, par, fmt.Sprintf("parallel perBlock=%d workers=%d", perBlock, workers))
		}

		// Streaming reader parity, with decode stats accounted.
		var stats DecodeStats
		sr, err := NewBinaryReaderOpts(bytes.NewReader(raw), DecodeOptions{Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		stream := &Dataset{}
		for {
			tr, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			stream.Traces = append(stream.Traces, tr)
		}
		sameDataset(t, d, stream, fmt.Sprintf("stream perBlock=%d", perBlock))
		if stats.TracesDecoded != int64(len(d.Traces)) || stats.TotalErrors() != 0 {
			t.Fatalf("perBlock=%d: stats %+v", perBlock, stats)
		}
	}
}

// TestBlockWriterV4MatchesBatch pins that the streaming v4 writer and
// WriteBinaryBlocksV4 produce identical bytes (the latter is built on
// the former, so this guards the layering).
func TestBlockWriterV4MatchesBatch(t *testing.T) {
	d := timestampDataset(genDataset(100))
	var batch, stream bytes.Buffer
	if err := WriteBinaryBlocksV4(&batch, d, 16); err != nil {
		t.Fatal(err)
	}
	bw, err := NewBlockWriterV4(&stream, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range d.Traces {
		if err := bw.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatal("streaming v4 writer diverges from batch writer")
	}
}

// TestBinaryV4TimestamplessCompat: a timestamped dataset written through
// the v2/v3 writers reads back with Time zero (timestamps silently
// dropped), and a v4 stream of all-zero times round-trips.
func TestBinaryV4TimestamplessCompat(t *testing.T) {
	d := timestampDataset(genDataset(60))
	want := &Dataset{Traces: append([]Trace(nil), d.Traces...)}
	for i := range want.Traces {
		want.Traces[i].Time = 0
	}

	var v2, v3 bytes.Buffer
	if err := WriteBinary(&v2, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryBlocks(&v3, d, 16); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"v2": v2.Bytes(), "v3": v3.Bytes()} {
		back, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		sameDataset(t, want, back, name+" drops timestamps")
	}

	var v4 bytes.Buffer
	if err := WriteBinaryBlocksV4(&v4, want, 16); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(v4.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, want, back, "v4 zero times")
}

// TestBlockWriterV4Contract: the writer rejects timestamp regressions
// and out-of-range values, and the error sticks.
func TestBlockWriterV4Contract(t *testing.T) {
	mk := func() *BlockWriter {
		bw, err := NewBlockWriterV4(io.Discard, 16)
		if err != nil {
			t.Fatal(err)
		}
		return bw
	}
	tr := func(ts int64) Trace {
		return Trace{Monitor: "m", Dst: 0x08080808, Time: ts}
	}

	bw := mk()
	if err := bw.Add(tr(100)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Add(tr(100)); err != nil { // duplicates are fine
		t.Fatal(err)
	}
	if err := bw.Add(tr(99)); err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("regression accepted: %v", err)
	}
	if err := bw.Add(tr(500)); err == nil {
		t.Fatal("error did not stick")
	}

	for _, ts := range []int64{-1, maxV4Time + 1} {
		bw := mk()
		if err := bw.Add(tr(ts)); err == nil {
			t.Fatalf("out-of-range timestamp %d accepted", ts)
		}
	}
}

// v4Frame assembles one raw v4 block frame from its parts.
func v4Frame(payload []byte, count int, col []byte) []byte {
	uv := func(v uint64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutUvarint(b[:], v)]
	}
	frame := []byte{blockRecordKind}
	frame = append(frame, uv(uint64(len(payload)))...)
	frame = append(frame, uv(uint64(count))...)
	frame = append(frame, uv(uint64(len(col)))...)
	frame = append(frame, col...)
	frame = append(frame, payload...)
	return frame
}

// validV4Payload encodes one single-trace block payload.
func validV4Payload(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encodeTraces(&buf, []Trace{{Monitor: "m", Dst: 0x08080808}}, map[string]uint64{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultInjectionV4Timestamps crafts every way a timestamp column
// can lie and asserts the typed class, for both readers, plus the
// permissive skip-and-count path.
func TestFaultInjectionV4Timestamps(t *testing.T) {
	uv := func(v uint64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutUvarint(b[:], v)]
	}
	sv := func(v int64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutVarint(b[:], v)]
	}
	cat := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }
	payload := validV4Payload(t)
	// A two-trace payload for multi-entry columns.
	payload2 := cat(payload, []byte{1}, uv(0), []byte{9, 9, 9, 9}, uv(0))

	cases := []struct {
		name  string
		frame []byte
		class CorruptClass
	}{
		{
			name:  "column exhausted before count",
			frame: v4Frame(payload2, 2, uv(100)), // base only, delta missing
			class: CorruptBadTimestamp,
		},
		{
			name:  "trailing column bytes",
			frame: v4Frame(payload, 1, cat(uv(100), sv(5))),
			class: CorruptBadTimestamp,
		},
		{
			name:  "negative delta",
			frame: v4Frame(payload2, 2, cat(uv(100), sv(-3))),
			class: CorruptBadTimestamp,
		},
		{
			name:  "base past overflow bound",
			frame: v4Frame(payload, 1, uv(maxV4Time+1)),
			class: CorruptBadTimestamp,
		},
		{
			name:  "delta past overflow bound",
			frame: v4Frame(payload2, 2, cat(uv(maxV4Time-1), sv(2))),
			class: CorruptBadTimestamp,
		},
		{
			name:  "column bytes for empty block",
			frame: v4Frame(nil, 0, uv(100)),
			class: CorruptBadTimestamp,
		},
		{
			name:  "malformed base varint",
			frame: v4Frame(payload, 1, bytes.Repeat([]byte{0x80}, 3)),
			class: CorruptBadTimestamp,
		},
		{
			name: "oversized tsLen",
			frame: cat([]byte{blockRecordKind}, uv(uint64(len(payload))), uv(1),
				uv(maxBlockBytes+1)),
			class: CorruptOversizedLen,
		},
		{
			name: "truncated column",
			frame: cat([]byte{blockRecordKind}, uv(uint64(len(payload))), uv(1),
				uv(10), uv(100)), // claims 10 column bytes, stream ends after 1-2
			class: CorruptTruncated,
		},
	}

	// A trailing valid frame proves permissive mode resynchronises.
	goodTail := v4Frame(payload, 1, uv(200))

	for _, tc := range cases {
		stream := cat([]byte("MTRC\x04"), tc.frame, goodTail)
		if tc.class == CorruptTruncated {
			// The truncation case needs the stream to really end inside
			// the column; a trailing frame would feed it bytes instead.
			stream = cat([]byte("MTRC\x04"), tc.frame)
		}
		for _, workers := range []int{1, 3} {
			label := fmt.Sprintf("%s/workers=%d", tc.name, workers)
			_, err := ReadBinaryParallelOpts(bytes.NewReader(stream), workers, DecodeOptions{})
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("%s: err = %v, want CorruptError", label, err)
			}
			if ce.Class != tc.class {
				t.Errorf("%s: class = %v, want %v", label, ce.Class, tc.class)
			}

			var stats DecodeStats
			ds, perr := ReadBinaryParallelOpts(bytes.NewReader(stream), workers,
				DecodeOptions{Permissive: true, Stats: &stats})
			switch tc.class {
			case CorruptBadTimestamp:
				// Framing survives: the bad block is skipped, the tail
				// decodes, and the loss is counted.
				if perr != nil {
					t.Fatalf("%s permissive: %v", label, perr)
				}
				if len(ds.Traces) != 1 || ds.Traces[0].Time != 200 {
					t.Errorf("%s permissive: got %d traces", label, len(ds.Traces))
				}
				if stats.BlocksSkipped != 1 || stats.Errors[CorruptBadTimestamp] == 0 {
					t.Errorf("%s permissive: stats %+v", label, stats)
				}
			case CorruptOversizedLen:
				// Framing itself is gone: fatal in both modes.
				if perr == nil {
					t.Errorf("%s permissive: oversized tsLen not fatal", label)
				}
			case CorruptTruncated:
				// The column read hit EOF (the "tail" bytes were consumed
				// as column): permissive keeps what came before — nothing.
				if perr != nil {
					t.Fatalf("%s permissive: %v", label, perr)
				}
				if len(ds.Traces) != 0 {
					t.Errorf("%s permissive: got %d traces, want 0", label, len(ds.Traces))
				}
			}
		}
	}
}

// TestBinaryV4BitFlippedColumn flips every bit position across a real
// column and asserts decode either succeeds (some flips keep the column
// well-formed — e.g. a smaller base) or fails typed, and that flips the
// strict decoder accepts never corrupt the payload's trace data.
func TestBinaryV4BitFlippedColumn(t *testing.T) {
	d := timestampDataset(genDataset(64))
	var buf bytes.Buffer
	if err := WriteBinaryBlocksV4(&buf, d, 16); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	frames := walkFrames(t, raw)
	f := frames[1]
	if f.tsLen == 0 {
		t.Fatal("frame 1 has no timestamp column")
	}
	for pos := f.tsOff; pos < f.tsOff+f.tsLen; pos++ {
		for bit := 0; bit < 8; bit++ {
			bad := bytes.Clone(raw)
			bad[pos] ^= 1 << bit
			ds, err := ReadBinary(bytes.NewReader(bad))
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("flip %d.%d: untyped error %v", pos, bit, err)
				}
				continue
			}
			// Accepted flips must only perturb times, never trace content.
			if len(ds.Traces) != len(d.Traces) {
				t.Fatalf("flip %d.%d: %d traces, want %d", pos, bit, len(ds.Traces), len(d.Traces))
			}
			for i := range ds.Traces {
				if ds.Traces[i].Monitor != d.Traces[i].Monitor || ds.Traces[i].Dst != d.Traces[i].Dst {
					t.Fatalf("flip %d.%d: trace %d content corrupted", pos, bit, i)
				}
			}
		}
	}
}
