package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func FuzzParseLine(f *testing.F) {
	f.Add("m|8.8.8.8|1.2.3.4 * 5.6.7.8!q0")
	f.Add("m|8.8.8.8|")
	f.Add("|||")
	f.Add("m|x|y")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseLine(line)
		if err != nil {
			return
		}
		// Whatever parses must serialise and re-parse identically.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := ParseLine(strings.TrimSuffix(buf.String(), "\n"))
		if err != nil {
			t.Fatalf("reserialised line unparseable: %q (%v)", buf.String(), err)
		}
		if back.Dst != tr.Dst || len(back.Hops) != len(tr.Hops) {
			t.Fatalf("round trip broke: %+v vs %+v", tr, back)
		}
	})
}

// FuzzBinaryReader feeds arbitrary bytes to the binary stream reader: it
// must reject or terminate, never panic or loop.
func FuzzBinaryReader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, &Dataset{Traces: []Trace{
		NewTrace("m", 0x08080808, 0x01010101, 0, 0x02020202),
	}})
	f.Add(seed.Bytes())
	f.Add([]byte("MTRC\x02"))
	f.Add([]byte("MTRC\x02\x00\x05mon"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate on bounded input")
	})
}
