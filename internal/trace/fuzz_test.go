package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func FuzzParseLine(f *testing.F) {
	f.Add("m|8.8.8.8|1.2.3.4 * 5.6.7.8!q0")
	f.Add("m|8.8.8.8|")
	f.Add("|||")
	f.Add("m|x|y")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseLine(line)
		if err != nil {
			return
		}
		// Whatever parses must serialise and re-parse identically.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := ParseLine(strings.TrimSuffix(buf.String(), "\n"))
		if err != nil {
			t.Fatalf("reserialised line unparseable: %q (%v)", buf.String(), err)
		}
		if back.Dst != tr.Dst || len(back.Hops) != len(tr.Hops) {
			t.Fatalf("round trip broke: %+v vs %+v", tr, back)
		}
	})
}

// FuzzBinaryReader feeds arbitrary bytes to the binary stream reader: it
// must reject or terminate, never panic or loop.
func FuzzBinaryReader(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, &Dataset{Traces: []Trace{
		NewTrace("m", 0x08080808, 0x01010101, 0, 0x02020202),
	}})
	f.Add(seed.Bytes())
	f.Add([]byte("MTRC\x02"))
	f.Add([]byte("MTRC\x02\x00\x05mon"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate on bounded input")
	})
}

// fuzzSeedBlocks builds a small valid v3 stream for the block fuzzers.
func fuzzSeedBlocks() []byte {
	var seed bytes.Buffer
	_ = WriteBinaryBlocks(&seed, &Dataset{Traces: []Trace{
		NewTrace("m", 0x08080808, 0x01010101, 0, 0x02020202),
		NewTrace("n", 0x08080404, 0x01010102, 0x03030303),
	}}, 1)
	return seed.Bytes()
}

// FuzzBinaryBlockReader feeds arbitrary bytes to the parallel block
// reader in strict mode: every failure must be a typed *CorruptError —
// never a panic, never an unbounded allocation — and serial and
// parallel decodes must agree on the result.
func FuzzBinaryBlockReader(f *testing.F) {
	seed := fuzzSeedBlocks()
	f.Add(seed)
	f.Add([]byte("MTRC\x03"))
	f.Add([]byte("MTRC\x03\x02\x07\x01\x01\x00\t\t\t\t\x00"))                             // one well-formed block
	f.Add([]byte("MTRC\x03\x02\xff\xff\xff\xff\xff\xff\xff\xff\x7f\x01"))                 // oversized payloadLen
	f.Add([]byte("MTRC\x03\x02\x08\xff\xff\xff\xff\x7f\x00\x00\x00\x00\x00\x00\x00\x00")) // lying traceCount
	f.Add([]byte("MTRC\x03\x02\x07\x01\x01\x07\t\t\t\t\x00"))                             // monitor id out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, workers := range []int{1, 3} {
			ds, err := ReadBinaryParallelOpts(bytes.NewReader(data), workers, DecodeOptions{})
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("workers=%d: untyped error %T: %v", workers, err, err)
				}
				continue
			}
			serial, serr := ReadBinaryOpts(bytes.NewReader(data), DecodeOptions{})
			if serr != nil {
				t.Fatalf("workers=%d accepted input the serial reader rejects: %v", workers, serr)
			}
			if len(ds.Traces) != len(serial.Traces) {
				t.Fatalf("workers=%d decoded %d traces, serial %d", workers, len(ds.Traces), len(serial.Traces))
			}
		}
	})
}

// FuzzV4Decode feeds arbitrary bytes to the v4 decoders in strict and
// permissive modes: every failure must be a typed *CorruptError, serial
// and parallel decodes must agree, decoded timestamps must respect the
// format's bounds and per-block ordering contract, and whatever decodes
// cleanly must re-encode and decode back identically (timestamps
// included).
func FuzzV4Decode(f *testing.F) {
	var seed bytes.Buffer
	t1 := NewTrace("m", 0x08080808, 0x01010101, 0, 0x02020202)
	t1.Time = 1_700_000_000
	t2 := NewTrace("n", 0x08080404, 0x01010102, 0x03030303)
	t2.Time = 1_700_000_060
	_ = WriteBinaryBlocksV4(&seed, &Dataset{Traces: []Trace{t1, t2}}, 1)
	f.Add(seed.Bytes())
	f.Add([]byte("MTRC\x04"))
	f.Add([]byte("MTRC\x04\x02\x07\x01\x01\x64\x01\x00\t\t\t\t\x00"))     // one well-formed timestamped block
	f.Add([]byte("MTRC\x04\x02\x07\x01\x02\x64\x05\x01\x00\t\t\t\t\x00")) // negative delta (zigzag 5)
	f.Add([]byte("MTRC\x04\x02\x07\x01\x00\x01\x00\t\t\t\t\x00"))         // column bytes for claimed count
	f.Fuzz(func(t *testing.T, data []byte) {
		var serial *Dataset
		for _, workers := range []int{1, 3} {
			ds, err := ReadBinaryParallelOpts(bytes.NewReader(data), workers, DecodeOptions{})
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("workers=%d: untyped error %T: %v", workers, err, err)
				}
				if serial != nil {
					t.Fatalf("workers=%d rejected input the serial reader accepts: %v", workers, err)
				}
				continue
			}
			if workers == 1 {
				serial = ds
			} else if serial == nil {
				t.Fatal("parallel accepted input the serial reader rejects")
			} else if len(ds.Traces) != len(serial.Traces) {
				t.Fatalf("workers=%d decoded %d traces, serial %d", workers, len(ds.Traces), len(serial.Traces))
			}
			for i, tr := range ds.Traces {
				if tr.Time < 0 || tr.Time > maxV4Time {
					t.Fatalf("trace %d: decoded time %d outside format bounds", i, tr.Time)
				}
			}
		}
		if serial == nil {
			// Permissive decode of rejected input must still terminate
			// with typed-or-nil errors and consistent counters.
			var stats DecodeStats
			ds, err := ReadBinaryParallelOpts(bytes.NewReader(data), 2, DecodeOptions{Permissive: true, Stats: &stats})
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("permissive: untyped error %T: %v", err, err)
				}
				return
			}
			if int64(len(ds.Traces)) != stats.TracesDecoded {
				t.Fatalf("permissive: %d traces but stats say %d", len(ds.Traces), stats.TracesDecoded)
			}
			if stats.BlocksSkipped > 0 && stats.TotalErrors() == 0 {
				t.Fatal("permissive: blocks skipped without recorded errors")
			}
			return
		}
		// Clean decodes re-encode: v4 needs stream-wide sorted times, so
		// only assert the writer round-trips when the decode order is
		// already non-decreasing (per-block ordering is guaranteed, the
		// cross-block base can regress in crafted streams).
		sorted := true
		for i := 1; i < len(serial.Traces); i++ {
			if serial.Traces[i].Time < serial.Traces[i-1].Time {
				sorted = false
				break
			}
		}
		if !sorted {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinaryBlocksV4(&buf, serial, 2); err != nil {
			t.Fatalf("re-encode of clean decode failed: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Traces) != len(serial.Traces) {
			t.Fatalf("round trip: %d traces, want %d", len(back.Traces), len(serial.Traces))
		}
		for i := range back.Traces {
			if back.Traces[i].Time != serial.Traces[i].Time {
				t.Fatalf("round trip: trace %d time %d, want %d", i, back.Traces[i].Time, serial.Traces[i].Time)
			}
		}
	})
}

// FuzzPermissiveDecode feeds arbitrary bytes through permissive
// decoding — parallel and streaming — and checks the decode-health
// invariants: trace counts match the stats, and nothing is skipped
// without a recorded error.
func FuzzPermissiveDecode(f *testing.F) {
	seed := fuzzSeedBlocks()
	f.Add(seed)
	if len(seed) > 8 {
		clobbered := bytes.Clone(seed)
		clobbered[8] ^= 0xee
		f.Add(clobbered)
		f.Add(seed[:len(seed)/2]) // truncated mid-stream
	}
	f.Add([]byte("MTRC\x03\x02\x08\xff\xff\xff\xff\x7f\x00\x00\x00\x00\x00\x00\x00\x00")) // lying traceCount
	f.Fuzz(func(t *testing.T, data []byte) {
		var pstats DecodeStats
		ds, err := ReadBinaryParallelOpts(bytes.NewReader(data), 2, DecodeOptions{Permissive: true, Stats: &pstats})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("parallel: untyped error %T: %v", err, err)
			}
		} else {
			if int64(len(ds.Traces)) != pstats.TracesDecoded {
				t.Fatalf("parallel: %d traces but stats say %d", len(ds.Traces), pstats.TracesDecoded)
			}
			if pstats.BlocksSkipped > 0 && pstats.TotalErrors() == 0 {
				t.Fatal("parallel: blocks skipped without recorded errors")
			}
		}

		var sstats DecodeStats
		r, rerr := NewBinaryReaderOpts(bytes.NewReader(data), DecodeOptions{Permissive: true, Stats: &sstats})
		if rerr != nil {
			return
		}
		decoded := int64(0)
		for i := 0; i < 1<<20; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
			decoded++
		}
		if decoded != sstats.TracesDecoded {
			t.Fatalf("streaming: decoded %d but stats say %d", decoded, sstats.TracesDecoded)
		}
		// A clean permissive parallel decode and the streaming reader
		// must agree on the surviving trace count.
		if err == nil && rerr == nil && decoded != int64(len(ds.Traces)) {
			t.Fatalf("streaming decoded %d traces, parallel %d", decoded, len(ds.Traces))
		}
	})
}
