package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mapit/internal/inet"
)

// Binary codec: a compact record stream for month-scale corpora (the
// text form of the paper's 733M-trace dataset would be hundreds of GB;
// this format stores a hop in ~5 bytes and interns monitor names, of
// which Ark has ~110). Layout:
//
//	magic   "MTRC" '\x02'                               (once)
//	record  kind byte:
//	          0: define monitor — nameLen uvarint, name bytes
//	             (assigned the next sequential id, starting at 0)
//	          1: trace — monitorID uvarint
//	             dst       4 bytes big endian
//	             hopCount  uvarint
//	             hops      hopCount × (flag, [addr 4B], [qttl byte])
//
// hop flag bits: 0x01 = responded (addr follows), 0x02 = anomalous
// quoted TTL (byte follows).
var binaryMagic = [5]byte{'M', 'T', 'R', 'C', 2}

// WriteBinary emits the dataset in the binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	var a4 [4]byte
	monitorID := make(map[string]uint64)
	for _, t := range d.Traces {
		id, ok := monitorID[t.Monitor]
		if !ok {
			id = uint64(len(monitorID))
			monitorID[t.Monitor] = id
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			n := binary.PutUvarint(scratch[:], uint64(len(t.Monitor)))
			if _, err := bw.Write(scratch[:n]); err != nil {
				return err
			}
			if _, err := bw.WriteString(t.Monitor); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		n := binary.PutUvarint(scratch[:], id)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(a4[:], uint32(t.Dst))
		if _, err := bw.Write(a4[:]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(len(t.Hops)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		for _, h := range t.Hops {
			var flag byte
			if h.Responded() {
				flag |= 0x01
			}
			if h.QuotedTTL != 1 {
				flag |= 0x02
			}
			if err := bw.WriteByte(flag); err != nil {
				return err
			}
			if flag&0x01 != 0 {
				binary.BigEndian.PutUint32(a4[:], uint32(h.Addr))
				if _, err := bw.Write(a4[:]); err != nil {
					return err
				}
			}
			if flag&0x02 != 0 {
				if err := bw.WriteByte(byte(h.QuotedTTL)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// BinaryReader streams traces from the binary format one at a time, so
// corpora larger than memory can feed a core.Collector directly.
type BinaryReader struct {
	br       *bufio.Reader
	monitors []string
	err      error
}

// NewBinaryReader validates the magic and returns a streaming reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	return &BinaryReader{br: br}, nil
}

// Next returns the next trace, or io.EOF when the stream ends cleanly.
func (r *BinaryReader) Next() (Trace, error) {
	if r.err != nil {
		return Trace{}, r.err
	}
	var kind byte
	for {
		var err error
		kind, err = r.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				r.err = io.EOF
				return Trace{}, io.EOF
			}
			return Trace{}, r.fail(err)
		}
		if kind != 0 {
			break
		}
		// Monitor definition record.
		mlen, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Trace{}, r.fail(err)
		}
		if mlen > 1<<16 {
			return Trace{}, r.fail(fmt.Errorf("monitor name length %d too large", mlen))
		}
		name := make([]byte, mlen)
		if _, err := io.ReadFull(r.br, name); err != nil {
			return Trace{}, r.fail(err)
		}
		r.monitors = append(r.monitors, string(name))
	}
	if kind != 1 {
		return Trace{}, r.fail(fmt.Errorf("unknown record kind %d", kind))
	}
	id, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fail(err)
	}
	if id >= uint64(len(r.monitors)) {
		return Trace{}, r.fail(fmt.Errorf("undefined monitor id %d", id))
	}
	var a4 [4]byte
	if _, err := io.ReadFull(r.br, a4[:]); err != nil {
		return Trace{}, r.fail(err)
	}
	t := Trace{Monitor: r.monitors[id], Dst: inet.Addr(binary.BigEndian.Uint32(a4[:]))}
	hops, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fail(err)
	}
	if hops > 1024 {
		return Trace{}, r.fail(fmt.Errorf("hop count %d too large", hops))
	}
	t.Hops = make([]Hop, hops)
	for i := range t.Hops {
		flag, err := r.br.ReadByte()
		if err != nil {
			return Trace{}, r.fail(err)
		}
		h := Hop{QuotedTTL: 1}
		if flag&0x01 != 0 {
			if _, err := io.ReadFull(r.br, a4[:]); err != nil {
				return Trace{}, r.fail(err)
			}
			h.Addr = inet.Addr(binary.BigEndian.Uint32(a4[:]))
		}
		if flag&0x02 != 0 {
			q, err := r.br.ReadByte()
			if err != nil {
				return Trace{}, r.fail(err)
			}
			h.QuotedTTL = int8(q)
		}
		t.Hops[i] = h
	}
	return t, nil
}

func (r *BinaryReader) fail(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	r.err = fmt.Errorf("trace: binary stream: %w", err)
	return r.err
}

// ReadBinary reads a whole binary dataset into memory.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	d := &Dataset{}
	for {
		t, err := br.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		d.Traces = append(d.Traces, t)
	}
}
