package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"mapit/internal/inet"
)

// Binary codec: a compact record stream for month-scale corpora (the
// text form of the paper's 733M-trace dataset would be hundreds of GB;
// this format stores a hop in ~5 bytes and interns monitor names, of
// which Ark has ~110). Layout:
//
//	magic   "MTRC" '\x02'                               (once)
//	record  kind byte:
//	          0: define monitor — nameLen uvarint, name bytes
//	             (assigned the next sequential id, starting at 0)
//	          1: trace — monitorID uvarint
//	             dst       4 bytes big endian
//	             hopCount  uvarint
//	             hops      hopCount × (flag, [addr 4B], [qttl byte])
//
// hop flag bits: 0x01 = responded (addr follows), 0x02 = anomalous
// quoted TTL (byte follows).
//
// Version 3 ("MTRC" '\x03') wraps the same records in length-prefixed
// blocks so decode can shard across cores:
//
//	block   kind byte 2
//	        payloadLen uvarint (bytes)
//	        traceCount uvarint
//	        payload    — a self-contained v2 record stream: monitor
//	                     ids restart at 0 in every block
//
// Self-contained blocks cost re-emitting the ~110 monitor definitions
// per block (noise next to thousands of traces) and buy fully
// independent block decode. Readers of either version accept both.
var binaryMagic = [5]byte{'M', 'T', 'R', 'C', 2}

var binaryMagicV3 = [5]byte{'M', 'T', 'R', 'C', 3}

// blockRecordKind frames a v3 trace block.
const blockRecordKind = 2

// DefaultBlockTraces is the default traces-per-block for v3 writers:
// large enough that block framing and per-block monitor tables are
// noise, small enough that a corpus splits into many parallel units.
const DefaultBlockTraces = 4096

// maxBlockBytes bounds a single block allocation when decoding
// untrusted input.
const maxBlockBytes = 1 << 28

// recordWriter is the sink for record encoding; *bufio.Writer (streams)
// and *bytes.Buffer (in-memory blocks) both satisfy it.
type recordWriter interface {
	io.Writer
	io.StringWriter
	WriteByte(byte) error
}

// WriteBinary emits the dataset in the v2 binary format: one flat
// record stream with stream-global monitor interning.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := encodeTraces(bw, d.Traces, make(map[string]uint64)); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryBlocks emits the dataset in the v3 block format, framing
// every tracesPerBlock traces as an independently decodable block
// (tracesPerBlock <= 0 selects DefaultBlockTraces). ReadBinaryParallel
// decodes these blocks across cores.
func WriteBinaryBlocks(w io.Writer, d *Dataset, tracesPerBlock int) error {
	if tracesPerBlock <= 0 {
		tracesPerBlock = DefaultBlockTraces
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagicV3[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	var buf bytes.Buffer
	for lo := 0; lo < len(d.Traces); lo += tracesPerBlock {
		hi := min(lo+tracesPerBlock, len(d.Traces))
		buf.Reset()
		if err := encodeTraces(&buf, d.Traces[lo:hi], make(map[string]uint64)); err != nil {
			return err
		}
		if err := bw.WriteByte(blockRecordKind); err != nil {
			return err
		}
		n := binary.PutUvarint(scratch[:], uint64(buf.Len()))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(hi-lo))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeTraces writes the record stream for the given traces, interning
// monitor names into monitorID (ids continue from its current size).
func encodeTraces(bw recordWriter, traces []Trace, monitorID map[string]uint64) error {
	var scratch [binary.MaxVarintLen64]byte
	var a4 [4]byte
	for _, t := range traces {
		id, ok := monitorID[t.Monitor]
		if !ok {
			id = uint64(len(monitorID))
			monitorID[t.Monitor] = id
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			n := binary.PutUvarint(scratch[:], uint64(len(t.Monitor)))
			if _, err := bw.Write(scratch[:n]); err != nil {
				return err
			}
			if _, err := bw.WriteString(t.Monitor); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		n := binary.PutUvarint(scratch[:], id)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(a4[:], uint32(t.Dst))
		if _, err := bw.Write(a4[:]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(len(t.Hops)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		for _, h := range t.Hops {
			var flag byte
			if h.Responded() {
				flag |= 0x01
			}
			if h.QuotedTTL != 1 {
				flag |= 0x02
			}
			if err := bw.WriteByte(flag); err != nil {
				return err
			}
			if flag&0x01 != 0 {
				binary.BigEndian.PutUint32(a4[:], uint32(h.Addr))
				if _, err := bw.Write(a4[:]); err != nil {
					return err
				}
			}
			if flag&0x02 != 0 {
				if err := bw.WriteByte(byte(h.QuotedTTL)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// BinaryReader streams traces from the binary format (either version)
// one at a time, so corpora larger than memory can feed a
// core.Collector directly.
type BinaryReader struct {
	br       *bufio.Reader
	version  byte
	monitors []string
	err      error
}

// NewBinaryReader validates the magic and returns a streaming reader
// for either binary format version.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	version, err := readBinaryMagic(br)
	if err != nil {
		return nil, err
	}
	return &BinaryReader{br: br, version: version}, nil
}

// readBinaryMagic consumes and validates the 5-byte magic, returning
// the format version.
func readBinaryMagic(br *bufio.Reader) (byte, error) {
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic && magic != binaryMagicV3 {
		return 0, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	return magic[4], nil
}

// Next returns the next trace, or io.EOF when the stream ends cleanly.
func (r *BinaryReader) Next() (Trace, error) {
	if r.err != nil {
		return Trace{}, r.err
	}
	var kind byte
loop:
	for {
		var err error
		kind, err = r.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				r.err = io.EOF
				return Trace{}, io.EOF
			}
			return Trace{}, r.fail(err)
		}
		switch {
		case kind == 0:
			// Monitor definition record.
			mlen, err := binary.ReadUvarint(r.br)
			if err != nil {
				return Trace{}, r.fail(err)
			}
			if mlen > 1<<16 {
				return Trace{}, r.fail(fmt.Errorf("monitor name length %d too large", mlen))
			}
			name := make([]byte, mlen)
			if _, err := io.ReadFull(r.br, name); err != nil {
				return Trace{}, r.fail(err)
			}
			r.monitors = append(r.monitors, string(name))
		case kind == blockRecordKind && r.version >= 3:
			// Block boundary: the framing exists for parallel readers;
			// the streaming reader skips the header and resets the
			// monitor table (blocks are self-contained).
			if _, err := binary.ReadUvarint(r.br); err != nil {
				return Trace{}, r.fail(err)
			}
			if _, err := binary.ReadUvarint(r.br); err != nil {
				return Trace{}, r.fail(err)
			}
			r.monitors = r.monitors[:0]
		default:
			break loop
		}
	}
	if kind != 1 {
		return Trace{}, r.fail(fmt.Errorf("unknown record kind %d", kind))
	}
	id, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fail(err)
	}
	if id >= uint64(len(r.monitors)) {
		return Trace{}, r.fail(fmt.Errorf("undefined monitor id %d", id))
	}
	var a4 [4]byte
	if _, err := io.ReadFull(r.br, a4[:]); err != nil {
		return Trace{}, r.fail(err)
	}
	t := Trace{Monitor: r.monitors[id], Dst: inet.Addr(binary.BigEndian.Uint32(a4[:]))}
	hops, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fail(err)
	}
	if hops > 1024 {
		return Trace{}, r.fail(fmt.Errorf("hop count %d too large", hops))
	}
	t.Hops = make([]Hop, hops)
	for i := range t.Hops {
		flag, err := r.br.ReadByte()
		if err != nil {
			return Trace{}, r.fail(err)
		}
		h := Hop{QuotedTTL: 1}
		if flag&0x01 != 0 {
			if _, err := io.ReadFull(r.br, a4[:]); err != nil {
				return Trace{}, r.fail(err)
			}
			h.Addr = inet.Addr(binary.BigEndian.Uint32(a4[:]))
		}
		if flag&0x02 != 0 {
			q, err := r.br.ReadByte()
			if err != nil {
				return Trace{}, r.fail(err)
			}
			h.QuotedTTL = int8(q)
		}
		t.Hops[i] = h
	}
	return t, nil
}

func (r *BinaryReader) fail(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	r.err = fmt.Errorf("trace: binary stream: %w", err)
	return r.err
}

// ReadBinary reads a whole binary dataset (either version) into memory
// on one core. Use ReadBinaryParallel to decode v3 blocks across cores.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return readAll(br)
}

// readAll drains a streaming reader into a dataset.
func readAll(br *BinaryReader) (*Dataset, error) {
	d := &Dataset{}
	for {
		t, err := br.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		d.Traces = append(d.Traces, t)
	}
}

// ReadBinaryParallel reads a whole binary dataset, decoding v3 blocks
// concurrently on the given number of workers: one goroutine reads and
// frames blocks off the stream, workers decode payloads, and blocks
// reassemble in stream order — so the trace order (and therefore the
// dataset) is identical to ReadBinary. A v2 stream has no block framing
// and falls back to the serial decode, as does workers <= 1.
func ReadBinaryParallel(r io.Reader, workers int) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	version, err := readBinaryMagic(br)
	if err != nil {
		return nil, err
	}
	if version < 3 || workers <= 1 {
		return readAll(&BinaryReader{br: br, version: version})
	}

	type job struct {
		idx     int
		count   int
		payload []byte
	}
	jobs := make(chan job, workers)
	var (
		mu        sync.Mutex
		decodeErr error
		results   [][]Trace
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				traces, err := decodeBlock(j.payload, j.count)
				mu.Lock()
				if err != nil && decodeErr == nil {
					decodeErr = err
				}
				for len(results) <= j.idx {
					results = append(results, nil)
				}
				results[j.idx] = traces
				mu.Unlock()
			}
		}()
	}

	readErr := func() error {
		for idx := 0; ; idx++ {
			kind, err := br.ReadByte()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("trace: binary stream: %w", err)
			}
			if kind != blockRecordKind {
				return fmt.Errorf("trace: binary stream: unknown record kind %d at block boundary", kind)
			}
			plen, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: binary stream: %w", err)
			}
			if plen > maxBlockBytes {
				return fmt.Errorf("trace: binary stream: block of %d bytes too large", plen)
			}
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: binary stream: %w", err)
			}
			payload := make([]byte, plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return fmt.Errorf("trace: binary stream: %w", err)
			}
			jobs <- job{idx: idx, count: int(count), payload: payload}
		}
	}()
	close(jobs)
	wg.Wait()
	if readErr != nil {
		return nil, readErr
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	total := 0
	for _, ts := range results {
		total += len(ts)
	}
	d := &Dataset{Traces: make([]Trace, 0, total)}
	for _, ts := range results {
		d.Traces = append(d.Traces, ts...)
	}
	return d, nil
}

// decodeBlock decodes one self-contained v3 block payload.
func decodeBlock(payload []byte, count int) ([]Trace, error) {
	rd := &BinaryReader{br: bufio.NewReader(bytes.NewReader(payload)), version: 2}
	out := make([]Trace, 0, count)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}
