package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"mapit/internal/inet"
)

// Binary codec: a compact record stream for month-scale corpora (the
// text form of the paper's 733M-trace dataset would be hundreds of GB;
// this format stores a hop in ~5 bytes and interns monitor names, of
// which Ark has ~110). Layout:
//
//	magic   "MTRC" '\x02'                               (once)
//	record  kind byte:
//	          0: define monitor — nameLen uvarint, name bytes
//	             (assigned the next sequential id, starting at 0)
//	          1: trace — monitorID uvarint
//	             dst       4 bytes big endian
//	             hopCount  uvarint
//	             hops      hopCount × (flag, [addr 4B], [qttl byte])
//
// hop flag bits: 0x01 = responded (addr follows), 0x02 = anomalous
// quoted TTL (byte follows).
//
// Version 3 ("MTRC" '\x03') wraps the same records in length-prefixed
// blocks so decode can shard across cores:
//
//	block   kind byte 2
//	        payloadLen uvarint (bytes)
//	        traceCount uvarint
//	        payload    — a self-contained v2 record stream: monitor
//	                     ids restart at 0 in every block
//
// Self-contained blocks cost re-emitting the ~110 monitor definitions
// per block (noise next to thousands of traces) and buy fully
// independent block decode.
//
// Version 4 ("MTRC" '\x04') is the v3 block format plus a per-block
// timestamp column, so sliding-window streaming inference (core.Window)
// can expire old evidence. Each block frame becomes:
//
//	block   kind byte 2
//	        payloadLen uvarint (bytes)
//	        traceCount uvarint
//	        tsLen      uvarint (bytes of the timestamp column)
//	        tsColumn   — base uvarint: the first trace's Unix seconds;
//	                     then traceCount-1 signed (zigzag) varint deltas
//	        payload    — a self-contained v2 record stream, as in v3
//
// Timestamps within a block must be non-decreasing (writers emit
// time-sorted corpora; BlockWriter enforces it across its whole
// stream), so the deltas are non-negative in any well-formed stream —
// the signed encoding exists so that a flipped bit shows up as a
// typed CorruptBadTimestamp instead of a silently huge timestamp.
// Values are bounded by maxV4Time; anything past it is corruption.
// Readers of any version accept all of them: v2/v3 streams decode with
// Time zero, and a v4 corpus written through a v2/v3 writer silently
// drops its timestamps.
var binaryMagic = [5]byte{'M', 'T', 'R', 'C', 2}

var binaryMagicV3 = [5]byte{'M', 'T', 'R', 'C', 3}

var binaryMagicV4 = [5]byte{'M', 'T', 'R', 'C', 4}

// blockRecordKind frames a v3 trace block.
const blockRecordKind = 2

// DefaultBlockTraces is the default traces-per-block for v3 writers:
// large enough that block framing and per-block monitor tables are
// noise, small enough that a corpus splits into many parallel units.
const DefaultBlockTraces = 4096

// maxBlockBytes bounds a single block allocation when decoding
// untrusted input.
const maxBlockBytes = 1 << 28

// maxV4Time bounds a v4 timestamp (Unix seconds). 1<<36 is roughly the
// year 4147 — far past any plausible measurement — so a corrupted
// column surfaces as a typed error instead of silently decoding to an
// absurd time, and checking each delta against the bound before adding
// keeps the running sum from overflowing int64.
const maxV4Time = 1 << 36

// recordWriter is the sink for record encoding; *bufio.Writer (streams)
// and *bytes.Buffer (in-memory blocks) both satisfy it.
type recordWriter interface {
	io.Writer
	io.StringWriter
	WriteByte(byte) error
}

// WriteBinary emits the dataset in the v2 binary format: one flat
// record stream with stream-global monitor interning.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := encodeTraces(bw, d.Traces, make(map[string]uint64)); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryBlocks emits the dataset in the v3 block format, framing
// every tracesPerBlock traces as an independently decodable block
// (tracesPerBlock <= 0 selects DefaultBlockTraces). ReadBinaryParallel
// decodes these blocks across cores.
func WriteBinaryBlocks(w io.Writer, d *Dataset, tracesPerBlock int) error {
	bw, err := NewBlockWriter(w, tracesPerBlock)
	if err != nil {
		return err
	}
	return writeAll(bw, d)
}

// WriteBinaryBlocksV4 emits the dataset in the timestamped v4 block
// format. Traces must carry non-negative, non-decreasing Time values
// (sort the dataset by Time first); a regression fails the write.
func WriteBinaryBlocksV4(w io.Writer, d *Dataset, tracesPerBlock int) error {
	bw, err := NewBlockWriterV4(w, tracesPerBlock)
	if err != nil {
		return err
	}
	return writeAll(bw, d)
}

func writeAll(bw *BlockWriter, d *Dataset) error {
	for _, t := range d.Traces {
		if err := bw.Add(t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BlockWriter streams traces into the v3 block format one at a time,
// holding only the current block — so a generator (or a relay) can
// write corpora of any size with a fixed footprint. The bytes are
// identical to WriteBinaryBlocks over the same trace sequence (which is
// implemented on top of it).
type BlockWriter struct {
	bw             *bufio.Writer
	tracesPerBlock int
	buf            bytes.Buffer
	monitorID      map[string]uint64
	pending        int
	total          int64
	err            error
	version        byte
	// times buffers the pending block's timestamps (v4 only) and
	// lastTime enforces the stream-wide non-decreasing contract.
	times    []int64
	lastTime int64
}

// NewBlockWriter writes the v3 magic and returns a streaming writer.
// tracesPerBlock <= 0 selects DefaultBlockTraces.
func NewBlockWriter(w io.Writer, tracesPerBlock int) (*BlockWriter, error) {
	return newBlockWriter(w, tracesPerBlock, 3)
}

// NewBlockWriterV4 writes the v4 magic and returns a streaming writer
// that persists each trace's Time in per-block timestamp columns.
// Traces must arrive with non-negative, non-decreasing Time values; a
// violation fails the Add (and sticks).
func NewBlockWriterV4(w io.Writer, tracesPerBlock int) (*BlockWriter, error) {
	return newBlockWriter(w, tracesPerBlock, 4)
}

func newBlockWriter(w io.Writer, tracesPerBlock int, version byte) (*BlockWriter, error) {
	if tracesPerBlock <= 0 {
		tracesPerBlock = DefaultBlockTraces
	}
	magic := binaryMagicV3
	if version >= 4 {
		magic = binaryMagicV4
	}
	bw := &BlockWriter{
		bw:             bufio.NewWriterSize(w, 1<<16),
		tracesPerBlock: tracesPerBlock,
		monitorID:      make(map[string]uint64),
		version:        version,
	}
	if _, err := bw.bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Add appends one trace to the current block, emitting the block when
// it reaches tracesPerBlock traces. Errors are sticky.
func (w *BlockWriter) Add(t Trace) error {
	if w.err != nil {
		return w.err
	}
	if w.version >= 4 {
		if t.Time < 0 || t.Time > maxV4Time {
			w.err = fmt.Errorf("trace: v4 timestamp %d outside [0, %d]", t.Time, int64(maxV4Time))
			return w.err
		}
		if w.total > 0 && t.Time < w.lastTime {
			w.err = fmt.Errorf("trace: v4 timestamps must be non-decreasing (%d after %d)", t.Time, w.lastTime)
			return w.err
		}
		w.lastTime = t.Time
		w.times = append(w.times, t.Time)
	}
	if err := encodeTraces(&w.buf, []Trace{t}, w.monitorID); err != nil {
		w.err = err
		return err
	}
	w.pending++
	w.total++
	if w.pending >= w.tracesPerBlock {
		return w.emitBlock()
	}
	return nil
}

// Traces returns how many traces have been added.
func (w *BlockWriter) Traces() int64 { return w.total }

// emitBlock frames and writes the buffered block, then resets the
// block-local monitor interning (v3 blocks are self-contained).
func (w *BlockWriter) emitBlock() error {
	var scratch [binary.MaxVarintLen64]byte
	if err := w.bw.WriteByte(blockRecordKind); err != nil {
		w.err = err
		return err
	}
	n := binary.PutUvarint(scratch[:], uint64(w.buf.Len()))
	if _, err := w.bw.Write(scratch[:n]); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(scratch[:], uint64(w.pending))
	if _, err := w.bw.Write(scratch[:n]); err != nil {
		w.err = err
		return err
	}
	if w.version >= 4 {
		col := encodeTimestampColumn(w.times)
		n = binary.PutUvarint(scratch[:], uint64(len(col)))
		if _, err := w.bw.Write(scratch[:n]); err != nil {
			w.err = err
			return err
		}
		if _, err := w.bw.Write(col); err != nil {
			w.err = err
			return err
		}
		w.times = w.times[:0]
	}
	if _, err := w.bw.Write(w.buf.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.buf.Reset()
	clear(w.monitorID)
	w.pending = 0
	return nil
}

// encodeTimestampColumn renders a v4 block's timestamp column: the
// first value as a uvarint base, the rest as signed (zigzag) varint
// deltas from their predecessor. Add already validated the values.
func encodeTimestampColumn(times []int64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	col := make([]byte, 0, len(times)*2)
	for i, t := range times {
		var n int
		if i == 0 {
			n = binary.PutUvarint(scratch[:], uint64(t))
		} else {
			n = binary.PutVarint(scratch[:], t-times[i-1])
		}
		col = append(col, scratch[:n]...)
	}
	return col
}

// Flush emits any partial final block and flushes the stream. Call it
// exactly once, after the last Add.
func (w *BlockWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.pending > 0 {
		if err := w.emitBlock(); err != nil {
			return err
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// encodeTraces writes the record stream for the given traces, interning
// monitor names into monitorID (ids continue from its current size).
func encodeTraces(bw recordWriter, traces []Trace, monitorID map[string]uint64) error {
	var scratch [binary.MaxVarintLen64]byte
	var a4 [4]byte
	for _, t := range traces {
		id, ok := monitorID[t.Monitor]
		if !ok {
			id = uint64(len(monitorID))
			monitorID[t.Monitor] = id
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			n := binary.PutUvarint(scratch[:], uint64(len(t.Monitor)))
			if _, err := bw.Write(scratch[:n]); err != nil {
				return err
			}
			if _, err := bw.WriteString(t.Monitor); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		n := binary.PutUvarint(scratch[:], id)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(a4[:], uint32(t.Dst))
		if _, err := bw.Write(a4[:]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(len(t.Hops)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		for _, h := range t.Hops {
			var flag byte
			if h.Responded() {
				flag |= 0x01
			}
			if h.QuotedTTL != 1 {
				flag |= 0x02
			}
			if err := bw.WriteByte(flag); err != nil {
				return err
			}
			if flag&0x01 != 0 {
				binary.BigEndian.PutUint32(a4[:], uint32(h.Addr))
				if _, err := bw.Write(a4[:]); err != nil {
					return err
				}
			}
			if flag&0x02 != 0 {
				if err := bw.WriteByte(byte(h.QuotedTTL)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Decode bounds on untrusted length fields: each caps the allocation a
// single corrupt field can trigger.
const (
	// maxMonitorNameLen bounds an interned monitor name (Ark names are
	// tens of bytes).
	maxMonitorNameLen = 1 << 16
	// maxHopCount bounds hops per trace (traceroute gap limits stop two
	// orders of magnitude earlier).
	maxHopCount = 1024
	// minTraceRecordBytes is the smallest encodable trace record (kind +
	// monitor id + dst + hop count), used to sanity-check a v3 block's
	// claimed traceCount against its payload size.
	minTraceRecordBytes = 7
	// maxTraceCapHint caps the slice capacity pre-allocated from a v3
	// block's traceCount header, so a lying header cannot balloon the
	// heap before the payload disproves it.
	maxTraceCapHint = 1 << 16
)

// countReader counts bytes consumed from the underlying stream, so a
// decoder can report absolute byte offsets through bufio read-ahead
// (offset = consumed - buffered).
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// BinaryReader streams traces from the binary format (either version)
// one at a time, so corpora larger than memory can feed a
// core.Collector directly. Every length field, count, and interned
// index is validated before use; failures surface as *CorruptError
// with byte-offset context, and DecodeOptions.Permissive lets v3
// streams skip corrupt blocks instead of aborting.
type BinaryReader struct {
	br *bufio.Reader
	cr *countReader
	// base is the offset of this reader's first byte within the outer
	// stream — non-zero for the nested readers that decode v3 block
	// payloads, so their errors still report absolute offsets.
	base     int64
	version  byte
	opt      DecodeOptions
	stats    *DecodeStats
	monitors []string
	err      error
	// blockIdx is the index of the v3 block being decoded (-1 before
	// the first block and for flat v2 streams).
	blockIdx int
	// pending holds the remaining traces of the current v3 block.
	pending []Trace
	pendIdx int
}

// NewBinaryReader validates the magic and returns a streaming reader
// for either binary format version with strict (abort-on-corruption)
// decoding.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	return NewBinaryReaderOpts(r, DecodeOptions{})
}

// NewBinaryReaderOpts is NewBinaryReader with explicit corrupt-input
// handling options.
func NewBinaryReaderOpts(r io.Reader, opt DecodeOptions) (*BinaryReader, error) {
	cr := &countReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	stats := opt.sink()
	version, cerr := decodeMagic(br)
	if cerr != nil {
		stats.record(cerr.Class)
		return nil, cerr
	}
	return &BinaryReader{br: br, cr: cr, version: version, opt: opt, stats: stats, blockIdx: -1}, nil
}

// decodeMagic consumes and validates the 5-byte magic, returning the
// format version.
func decodeMagic(br *bufio.Reader) (byte, *CorruptError) {
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, &CorruptError{Block: -1, Kind: "magic", Class: CorruptTruncated, Cause: noEOF(err)}
	}
	if magic != binaryMagic && magic != binaryMagicV3 && magic != binaryMagicV4 {
		return 0, &CorruptError{Block: -1, Kind: "magic", Class: CorruptBadMagic, Cause: fmt.Errorf("bad magic %q", magic[:])}
	}
	return magic[4], nil
}

// offset is the absolute position of the next undecoded byte.
func (r *BinaryReader) offset() int64 {
	return r.base + r.cr.n - int64(r.br.Buffered())
}

// corruptErr builds a typed decode failure at the current offset and
// counts its class; callers decide whether it is fatal or skippable.
func (r *BinaryReader) corruptErr(class CorruptClass, kind string, cause error) *CorruptError {
	r.stats.record(class)
	return &CorruptError{Offset: r.offset(), Block: r.blockIdx, Kind: kind, Class: class, Cause: cause}
}

// fatal makes the error sticky and settles the consumed-bytes counter.
func (r *BinaryReader) fatal(e *CorruptError) error {
	r.err = e
	r.stats.BytesConsumed = r.offset() - r.base
	return e
}

// finishEOF marks the clean end of the stream.
func (r *BinaryReader) finishEOF() {
	r.err = io.EOF
	r.stats.BytesConsumed = r.offset() - r.base
}

// varintClass separates truncation from malformed-varint failures.
func varintClass(err error) CorruptClass {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return CorruptTruncated
	}
	return CorruptBadVarint
}

// noEOF upgrades a bare EOF inside a record to ErrUnexpectedEOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next trace, or io.EOF when the stream ends cleanly.
// Decode failures are *CorruptError; once one is returned (or EOF), the
// reader keeps returning it.
func (r *BinaryReader) Next() (Trace, error) {
	if r.err != nil {
		return Trace{}, r.err
	}
	if r.version >= 3 {
		for r.pendIdx >= len(r.pending) {
			if err := r.fillBlock(); err != nil {
				return Trace{}, err
			}
		}
		t := r.pending[r.pendIdx]
		r.pendIdx++
		r.stats.TracesDecoded++
		return t, nil
	}
	t, err := r.nextRecord()
	if err != nil {
		return Trace{}, err
	}
	r.stats.TracesDecoded++
	return t, nil
}

// nextRecord decodes the next trace from a flat v2 record stream
// (also the inside of a v3 block payload).
func (r *BinaryReader) nextRecord() (Trace, error) {
	for {
		kind, err := r.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				r.finishEOF()
				return Trace{}, io.EOF
			}
			return Trace{}, r.fatal(r.corruptErr(CorruptTruncated, "trace", err))
		}
		switch kind {
		case 0:
			if err := r.readMonitorDef(); err != nil {
				return Trace{}, err
			}
		case 1:
			return r.readTraceRecord()
		default:
			return Trace{}, r.fatal(r.corruptErr(CorruptBadKind, "trace",
				fmt.Errorf("unknown record kind %d", kind)))
		}
	}
}

// readMonitorDef decodes a monitor definition record, interning the
// name as the next sequential id.
func (r *BinaryReader) readMonitorDef() error {
	mlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.fatal(r.corruptErr(varintClass(err), "monitor", err))
	}
	if mlen > maxMonitorNameLen {
		return r.fatal(r.corruptErr(CorruptOversizedLen, "monitor",
			fmt.Errorf("monitor name length %d exceeds %d", mlen, maxMonitorNameLen)))
	}
	name := make([]byte, mlen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return r.fatal(r.corruptErr(CorruptTruncated, "monitor", noEOF(err)))
	}
	r.monitors = append(r.monitors, string(name))
	return nil
}

// readTraceRecord decodes a trace record body (after its kind byte).
func (r *BinaryReader) readTraceRecord() (Trace, error) {
	id, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fatal(r.corruptErr(varintClass(err), "trace", err))
	}
	// Bounds-check the interned id: corrupt input must not index the
	// monitor table blind.
	if id >= uint64(len(r.monitors)) {
		return Trace{}, r.fatal(r.corruptErr(CorruptBadMonitorID, "trace",
			fmt.Errorf("monitor id %d with %d defined", id, len(r.monitors))))
	}
	var a4 [4]byte
	if _, err := io.ReadFull(r.br, a4[:]); err != nil {
		return Trace{}, r.fatal(r.corruptErr(CorruptTruncated, "trace", noEOF(err)))
	}
	t := Trace{Monitor: r.monitors[id], Dst: inet.Addr(binary.BigEndian.Uint32(a4[:]))}
	hops, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Trace{}, r.fatal(r.corruptErr(varintClass(err), "trace", err))
	}
	if hops > maxHopCount {
		return Trace{}, r.fatal(r.corruptErr(CorruptOversizedLen, "trace",
			fmt.Errorf("hop count %d exceeds %d", hops, maxHopCount)))
	}
	t.Hops = make([]Hop, hops)
	for i := range t.Hops {
		flag, err := r.br.ReadByte()
		if err != nil {
			return Trace{}, r.fatal(r.corruptErr(CorruptTruncated, "trace", noEOF(err)))
		}
		h := Hop{QuotedTTL: 1}
		if flag&0x01 != 0 {
			if _, err := io.ReadFull(r.br, a4[:]); err != nil {
				return Trace{}, r.fatal(r.corruptErr(CorruptTruncated, "trace", noEOF(err)))
			}
			h.Addr = inet.Addr(binary.BigEndian.Uint32(a4[:]))
		}
		if flag&0x02 != 0 {
			q, err := r.br.ReadByte()
			if err != nil {
				return Trace{}, r.fatal(r.corruptErr(CorruptTruncated, "trace", noEOF(err)))
			}
			h.QuotedTTL = int8(q)
		}
		t.Hops[i] = h
	}
	return t, nil
}

// blockFrame is one length-prefixed v3/v4 block lifted off the stream.
type blockFrame struct {
	idx     int
	count   int
	off     int64 // absolute offset of the payload's first byte
	payload []byte
	// times is the decoded v4 timestamp column (len == count), nil for
	// v3 frames.
	times []int64
}

// readFrame reads the next v3 block frame, returning io.EOF at the
// clean end of the stream. In permissive mode, frames whose headers are
// self-inconsistent (traceCount impossible for the payload size) or
// whose payloads are truncated are counted, skipped, and the next frame
// is tried — the payload length gives the boundary to resynchronise on.
// Corruption that destroys the framing itself (bad kind byte, malformed
// or oversized length varints) is fatal in either mode: without an
// intact length prefix there is no next frame to find.
func (r *BinaryReader) readFrame() (blockFrame, error) {
	for {
		kind, err := r.br.ReadByte()
		if err == io.EOF {
			r.finishEOF()
			return blockFrame{}, io.EOF
		}
		if err != nil {
			return blockFrame{}, r.fatal(r.corruptErr(CorruptTruncated, "block", err))
		}
		r.blockIdx++
		if kind != blockRecordKind {
			return blockFrame{}, r.fatal(r.corruptErr(CorruptBadKind, "block",
				fmt.Errorf("record kind %d at block frame", kind)))
		}
		plen, err := binary.ReadUvarint(r.br)
		if err != nil {
			return blockFrame{}, r.fatal(r.corruptErr(varintClass(err), "block", err))
		}
		if plen > maxBlockBytes {
			return blockFrame{}, r.fatal(r.corruptErr(CorruptOversizedLen, "block",
				fmt.Errorf("block payload %d bytes exceeds %d", plen, maxBlockBytes)))
		}
		count, err := binary.ReadUvarint(r.br)
		if err != nil {
			return blockFrame{}, r.fatal(r.corruptErr(varintClass(err), "block", err))
		}
		// v4 frames carry the timestamp column length next; it is part of
		// the framing, so a malformed or oversized value is fatal in either
		// mode (there is no boundary left to resynchronise on without it).
		var tsLen uint64
		if r.version >= 4 {
			tsLen, err = binary.ReadUvarint(r.br)
			if err != nil {
				return blockFrame{}, r.fatal(r.corruptErr(varintClass(err), "block", err))
			}
			if tsLen > maxBlockBytes {
				return blockFrame{}, r.fatal(r.corruptErr(CorruptOversizedLen, "block",
					fmt.Errorf("timestamp column %d bytes exceeds %d", tsLen, maxBlockBytes)))
			}
		}
		if count > plen/minTraceRecordBytes {
			e := r.corruptErr(CorruptCountMismatch, "block",
				fmt.Errorf("%d traces cannot fit in %d payload bytes", count, plen))
			if !r.opt.Permissive {
				return blockFrame{}, r.fatal(e)
			}
			r.stats.BlocksSkipped++
			r.stats.TracesDropped += int64(count)
			if _, err := r.br.Discard(int(tsLen) + int(plen)); err != nil {
				r.finishEOF()
				return blockFrame{}, io.EOF
			}
			continue
		}
		var times []int64
		if r.version >= 4 {
			tsOff := r.offset()
			tsBuf := make([]byte, tsLen)
			if _, err := io.ReadFull(r.br, tsBuf); err != nil {
				e := r.corruptErr(CorruptTruncated, "block", noEOF(err))
				if !r.opt.Permissive {
					return blockFrame{}, r.fatal(e)
				}
				r.stats.BlocksSkipped++
				r.stats.TracesDropped += int64(count)
				r.finishEOF()
				return blockFrame{}, io.EOF
			}
			var cerr *CorruptError
			times, cerr = decodeTimestampColumn(tsBuf, tsOff, r.blockIdx, int(count))
			if cerr != nil {
				r.stats.record(cerr.Class)
				if !r.opt.Permissive {
					return blockFrame{}, r.fatal(cerr)
				}
				// The column is damaged but the framing survives: skip
				// this block's payload and resynchronise on the next frame.
				r.stats.BlocksSkipped++
				r.stats.TracesDropped += int64(count)
				if _, err := r.br.Discard(int(plen)); err != nil {
					r.finishEOF()
					return blockFrame{}, io.EOF
				}
				continue
			}
		}
		off := r.offset()
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r.br, payload); err != nil {
			e := r.corruptErr(CorruptTruncated, "block", noEOF(err))
			if !r.opt.Permissive {
				return blockFrame{}, r.fatal(e)
			}
			r.stats.BlocksSkipped++
			r.stats.TracesDropped += int64(count)
			r.finishEOF()
			return blockFrame{}, io.EOF
		}
		return blockFrame{idx: r.blockIdx, count: int(count), off: off, payload: payload, times: times}, nil
	}
}

// decodeTimestampColumn parses a v4 timestamp column into absolute Unix
// seconds. Every failure mode — column exhausted before count entries,
// trailing bytes after them, a negative delta (regressions cannot occur
// in a well-formed stream), or a value past maxV4Time — is
// CorruptBadTimestamp; base locates the column's first byte in the
// outer stream.
func decodeTimestampColumn(buf []byte, base int64, blockIdx, count int) ([]int64, *CorruptError) {
	bad := func(off int, cause error) *CorruptError {
		return &CorruptError{Offset: base + int64(off), Block: blockIdx, Kind: "block",
			Class: CorruptBadTimestamp, Cause: cause}
	}
	if count == 0 {
		if len(buf) != 0 {
			return nil, bad(0, fmt.Errorf("%d column bytes for an empty block", len(buf)))
		}
		return nil, nil
	}
	times := make([]int64, count)
	first, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, bad(0, fmt.Errorf("malformed timestamp base"))
	}
	if first > maxV4Time {
		return nil, bad(0, fmt.Errorf("timestamp %d exceeds %d", first, int64(maxV4Time)))
	}
	pos := n
	t := int64(first)
	times[0] = t
	for i := 1; i < count; i++ {
		d, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return nil, bad(pos, fmt.Errorf("column exhausted at entry %d of %d", i, count))
		}
		pos += n
		if d < 0 {
			return nil, bad(pos, fmt.Errorf("negative delta %d at entry %d (timestamps must be non-decreasing)", d, i))
		}
		if d > maxV4Time-t {
			return nil, bad(pos, fmt.Errorf("timestamp exceeds %d at entry %d", int64(maxV4Time), i))
		}
		t += d
		times[i] = t
	}
	if pos != len(buf) {
		return nil, bad(pos, fmt.Errorf("%d trailing column bytes after %d entries", len(buf)-pos, count))
	}
	return times, nil
}

// fillBlock lifts and decodes the next v3 block into pending. A corrupt
// payload is skipped and counted in permissive mode (blocks are
// self-contained, so dropping one loses only its own traces) and fatal
// otherwise.
func (r *BinaryReader) fillBlock() error {
	fr, err := r.readFrame()
	if err != nil {
		return err
	}
	traces, derr := decodeBlockPayload(fr.payload, fr.off, fr.idx, fr.count)
	if derr == nil && len(traces) != fr.count {
		derr = &CorruptError{Offset: fr.off, Block: fr.idx, Kind: "block", Class: CorruptCountMismatch,
			Cause: fmt.Errorf("header claims %d traces, payload holds %d", fr.count, len(traces))}
	}
	if derr != nil {
		r.stats.record(derr.Class)
		if r.opt.Permissive {
			r.stats.BlocksSkipped++
			r.stats.TracesDropped += int64(fr.count)
			r.pending, r.pendIdx = nil, 0
			return nil
		}
		return r.fatal(derr)
	}
	applyTimes(traces, fr.times)
	r.stats.BlocksDecoded++
	r.pending, r.pendIdx = traces, 0
	return nil
}

// applyTimes stamps a decoded v4 block's timestamp column onto its
// traces; a nil column (v3) is a no-op. Callers have already verified
// len(traces) == the frame's count == len(times).
func applyTimes(traces []Trace, times []int64) {
	if times == nil {
		return
	}
	for i := range traces {
		traces[i].Time = times[i]
	}
}

// ReadBinary reads a whole binary dataset (either version) into memory
// on one core. Use ReadBinaryParallel to decode v3 blocks across cores.
func ReadBinary(r io.Reader) (*Dataset, error) {
	return ReadBinaryOpts(r, DecodeOptions{})
}

// ReadBinaryOpts is ReadBinary with explicit corrupt-input handling
// options.
func ReadBinaryOpts(r io.Reader, opt DecodeOptions) (*Dataset, error) {
	br, err := NewBinaryReaderOpts(r, opt)
	if err != nil {
		return nil, err
	}
	return readAll(br)
}

// readAll drains a streaming reader into a dataset.
func readAll(br *BinaryReader) (*Dataset, error) {
	d := &Dataset{}
	for {
		t, err := br.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		d.Traces = append(d.Traces, t)
	}
}

// ReadBinaryParallel reads a whole binary dataset, decoding v3 blocks
// concurrently on the given number of workers: one goroutine reads and
// frames blocks off the stream, workers decode payloads, and blocks
// reassemble in stream order — so the trace order (and therefore the
// dataset) is identical to ReadBinary. A v2 stream has no block framing
// and falls back to the serial decode, as does workers <= 1.
func ReadBinaryParallel(r io.Reader, workers int) (*Dataset, error) {
	return ReadBinaryParallelOpts(r, workers, DecodeOptions{})
}

// ReadBinaryParallelOpts is ReadBinaryParallel with explicit
// corrupt-input handling options. In permissive mode, corrupt blocks
// are dropped and counted; the decoded dataset is exactly the traces of
// the blocks that decoded cleanly, in stream order. In strict mode the
// earliest corruption in stream order is reported, so failures are
// deterministic for any worker count.
func ReadBinaryParallelOpts(r io.Reader, workers int, opt DecodeOptions) (*Dataset, error) {
	cr := &countReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	stats := opt.sink()
	version, cerr := decodeMagic(br)
	if cerr != nil {
		stats.record(cerr.Class)
		return nil, cerr
	}
	rd := &BinaryReader{br: br, cr: cr, version: version, opt: opt, stats: stats, blockIdx: -1}
	if version < 3 || workers <= 1 {
		return readAll(rd)
	}

	// Workers fill in the traces/err of the job they received; the main
	// goroutine reads them only after wg.Wait, so no lock is needed.
	type block struct {
		frame  blockFrame
		traces []Trace
		err    *CorruptError
	}
	jobs := make(chan *block, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				b.traces, b.err = decodeBlockPayload(b.frame.payload, b.frame.off, b.frame.idx, b.frame.count)
				if b.err == nil && len(b.traces) != b.frame.count {
					b.err = &CorruptError{Offset: b.frame.off, Block: b.frame.idx, Kind: "block",
						Class: CorruptCountMismatch,
						Cause: fmt.Errorf("header claims %d traces, payload holds %d", b.frame.count, len(b.traces))}
				}
				if b.err == nil {
					applyTimes(b.traces, b.frame.times)
				}
				b.frame.payload = nil
			}
		}()
	}

	var blocks []*block
	var frameErr error
	for {
		fr, err := rd.readFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			frameErr = err
			break
		}
		b := &block{frame: fr}
		blocks = append(blocks, b)
		jobs <- b
	}
	close(jobs)
	wg.Wait()

	// Settle per-block outcomes in stream order: strict mode reports the
	// earliest corruption; permissive mode counts skips.
	var firstErr *CorruptError
	total := 0
	for _, b := range blocks {
		if b.err == nil {
			stats.BlocksDecoded++
			stats.TracesDecoded += int64(len(b.traces))
			total += len(b.traces)
			continue
		}
		stats.record(b.err.Class)
		if opt.Permissive {
			stats.BlocksSkipped++
			stats.TracesDropped += int64(b.frame.count)
		} else if firstErr == nil {
			firstErr = b.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if frameErr != nil {
		return nil, frameErr
	}
	d := &Dataset{Traces: make([]Trace, 0, total)}
	for _, b := range blocks {
		if b.err == nil {
			d.Traces = append(d.Traces, b.traces...)
		}
	}
	return d, nil
}

// decodeBlockPayload decodes one self-contained v3 block payload with a
// nested strict reader; base and blockIdx locate its errors in the
// outer stream. It does not touch shared decode stats — callers settle
// outcomes — so block decodes can run concurrently.
func decodeBlockPayload(payload []byte, base int64, blockIdx, count int) ([]Trace, *CorruptError) {
	cr := &countReader{r: bytes.NewReader(payload)}
	rd := &BinaryReader{
		br:       bufio.NewReaderSize(cr, max(16, min(len(payload), 1<<16))),
		cr:       cr,
		base:     base,
		version:  2,
		stats:    DecodeOptions{}.sink(),
		blockIdx: blockIdx,
	}
	out := make([]Trace, 0, min(count, maxTraceCapHint))
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			if ce, ok := err.(*CorruptError); ok {
				return nil, ce
			}
			return nil, &CorruptError{Offset: base, Block: blockIdx, Kind: "block", Cause: err}
		}
		out = append(out, t)
	}
}
