package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"mapit/internal/inet"
)

// genDataset builds a deterministic corpus with null hops, quoted-TTL-0
// hops, immediate repeats and interface cycles, so sanitisation has real
// work to do in every chunk.
func genDataset(n int) *Dataset {
	rng := rand.New(rand.NewSource(7))
	addr := func() inet.Addr { return inet.Addr(0x08000000 + rng.Intn(1<<14)) }
	d := &Dataset{Traces: make([]Trace, 0, n)}
	for i := 0; i < n; i++ {
		hops := make([]Hop, 0, 8)
		for j := 0; j < 2+rng.Intn(6); j++ {
			h := Hop{Addr: addr(), QuotedTTL: 1}
			switch rng.Intn(10) {
			case 0:
				h.Addr = 0
			case 1:
				h.QuotedTTL = 0
			case 2:
				if len(hops) > 1 {
					h.Addr = hops[0].Addr
				}
			}
			hops = append(hops, h)
		}
		d.Traces = append(d.Traces, Trace{
			Monitor: fmt.Sprintf("monitor-%02d", rng.Intn(20)),
			Dst:     addr(),
			Hops:    hops,
		})
	}
	return d
}

func sameSanitized(a, b *Sanitized) bool {
	return a.Stats == b.Stats && reflect.DeepEqual(a.Retained, b.Retained)
}

// SanitizeParallel must reproduce the serial result — same retained
// traces in the same order, same statistics — for any worker count,
// including counts that don't divide the trace count and counts larger
// than the corpus.
func TestSanitizeParallelEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64*4 + 17, 3000} {
		d := genDataset(n)
		want := d.Sanitize()
		for _, workers := range []int{0, 1, 2, 3, 7, 64} {
			got := d.SanitizeParallel(workers)
			if !sameSanitized(want, got) {
				t.Fatalf("n=%d workers=%d: parallel sanitise diverges: stats %+v vs %+v",
					n, workers, want.Stats, got.Stats)
			}
		}
	}
}

func sameDataset(t *testing.T, want, got *Dataset, label string) {
	t.Helper()
	if len(want.Traces) != len(got.Traces) {
		t.Fatalf("%s: %d traces, want %d", label, len(got.Traces), len(want.Traces))
	}
	for i := range want.Traces {
		a, b := want.Traces[i], got.Traces[i]
		if a.Monitor != b.Monitor || a.Dst != b.Dst || a.Time != b.Time || !reflect.DeepEqual(a.Hops, b.Hops) {
			t.Fatalf("%s: trace %d differs: %+v vs %+v", label, i, a, b)
		}
	}
}

// The block format (v3) must survive a round trip through every reader:
// the one-shot serial reader, the streaming reader, and the parallel
// block decoder, all yielding the exact input dataset. Small block sizes
// force multiple blocks so the per-block monitor-table reset is
// exercised.
func TestBinaryBlocksRoundTrip(t *testing.T) {
	d := genDataset(500)
	for _, perBlock := range []int{1, 7, 64, 0 /* default */} {
		var buf bytes.Buffer
		if err := WriteBinaryBlocks(&buf, d, perBlock); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()

		back, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		sameDataset(t, d, back, fmt.Sprintf("serial perBlock=%d", perBlock))

		r, err := NewBinaryReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var streamed Dataset
		for {
			tr, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			streamed.Traces = append(streamed.Traces, tr)
		}
		sameDataset(t, d, &streamed, fmt.Sprintf("stream perBlock=%d", perBlock))

		for _, workers := range []int{0, 1, 2, 8} {
			par, err := ReadBinaryParallel(bytes.NewReader(raw), workers)
			if err != nil {
				t.Fatal(err)
			}
			sameDataset(t, d, par, fmt.Sprintf("parallel perBlock=%d workers=%d", perBlock, workers))
		}
	}
}

// ReadBinaryParallel must also accept flat v2 streams (serial fallback),
// so one reader entry point works for both formats on disk.
func TestReadBinaryParallelV2Fallback(t *testing.T) {
	d := genDataset(200)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryParallel(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameDataset(t, d, got, "v2 fallback")
}

// Corrupted block streams must fail loudly, not hang or panic.
func TestBinaryBlocksErrors(t *testing.T) {
	d := genDataset(50)
	var buf bytes.Buffer
	if err := WriteBinaryBlocks(&buf, d, 16); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Truncated mid-block.
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 6} {
		if _, err := ReadBinaryParallel(bytes.NewReader(raw[:cut]), 2); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Corrupted record kind at the first block boundary.
	bad := bytes.Clone(raw)
	bad[5] = 0xee
	if _, err := ReadBinaryParallel(bytes.NewReader(bad), 2); err == nil {
		t.Fatal("corrupt record kind not detected")
	}
}
