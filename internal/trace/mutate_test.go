package trace

import (
	"reflect"
	"testing"

	"mapit/internal/inet"
)

func mutFixture() *Dataset {
	mk := func(m string, last uint8) Trace {
		return NewTrace(m, inet.MustParseAddr("10.9.9.9"),
			inet.MustParseAddr("10.0.0.1"),
			inet.MustParseAddr("10.0.1.1"),
			inet.Addr(0x0a000200)+inet.Addr(last))
	}
	return &Dataset{Traces: []Trace{
		mk("m1", 1), mk("m1", 2), mk("m2", 3), mk("m2", 4), mk("m3", 5),
	}}
}

func TestPermute(t *testing.T) {
	d := mutFixture()
	orig := append([]Trace(nil), d.Traces...)
	p1 := Permute(d, 42)
	p2 := Permute(d, 42)
	if !reflect.DeepEqual(d.Traces, orig) {
		t.Fatal("Permute mutated its input")
	}
	if !reflect.DeepEqual(p1.Traces, p2.Traces) {
		t.Fatal("Permute is not deterministic for a fixed seed")
	}
	if len(p1.Traces) != len(d.Traces) {
		t.Fatalf("Permute changed the trace count: %d != %d", len(p1.Traces), len(d.Traces))
	}
	// Same multiset: every original trace appears exactly once.
	used := make([]bool, len(orig))
outer:
	for _, tr := range p1.Traces {
		for i, o := range orig {
			if !used[i] && reflect.DeepEqual(tr, o) {
				used[i] = true
				continue outer
			}
		}
		t.Fatalf("permuted trace %v not in the original dataset", tr)
	}
	if p3 := Permute(d, 43); reflect.DeepEqual(p3.Traces, p1.Traces) {
		// Not guaranteed in general, but with 5! orders and distinct
		// seeds a collision here almost certainly means a seed bug.
		t.Log("warning: seeds 42 and 43 produced the same order")
	}
}

func TestDuplicate(t *testing.T) {
	d := mutFixture()
	for _, n := range []int{-1, 0, 1} {
		if got := Duplicate(d, n); !reflect.DeepEqual(got.Traces, d.Traces) {
			t.Fatalf("Duplicate(%d) should be a plain copy", n)
		}
	}
	d3 := Duplicate(d, 3)
	if len(d3.Traces) != 3*len(d.Traces) {
		t.Fatalf("Duplicate(3): %d traces, want %d", len(d3.Traces), 3*len(d.Traces))
	}
	for i, tr := range d3.Traces {
		if !reflect.DeepEqual(tr, d.Traces[i%len(d.Traces)]) {
			t.Fatalf("Duplicate(3): trace %d diverges from source", i)
		}
	}
}

func TestRelabelMonitors(t *testing.T) {
	d := mutFixture()
	got := RelabelMonitors(d, func(m string) string { return "vp-" + m })
	if d.Traces[0].Monitor != "m1" {
		t.Fatal("RelabelMonitors mutated its input")
	}
	for i, tr := range got.Traces {
		if want := "vp-" + d.Traces[i].Monitor; tr.Monitor != want {
			t.Fatalf("trace %d: monitor %q, want %q", i, tr.Monitor, want)
		}
		if !reflect.DeepEqual(tr.Hops, d.Traces[i].Hops) {
			t.Fatalf("trace %d: hops changed", i)
		}
	}
}

func TestSubsample(t *testing.T) {
	d := mutFixture()
	if got := Subsample(d, 1, 0); !reflect.DeepEqual(got.Traces, d.Traces) {
		t.Fatal("stride 1 should be a full copy")
	}
	got := Subsample(d, 2, 1)
	want := []Trace{d.Traces[1], d.Traces[3]}
	if !reflect.DeepEqual(got.Traces, want) {
		t.Fatalf("Subsample(2,1): got %d traces, want %d", len(got.Traces), len(want))
	}
	if got := Subsample(d, 2, -3); !reflect.DeepEqual(got.Traces, []Trace{d.Traces[0], d.Traces[2], d.Traces[4]}) {
		t.Fatal("negative offset should clamp to 0")
	}
	if got := Subsample(d, 3, 5); !reflect.DeepEqual(got.Traces, []Trace{d.Traces[2]}) {
		t.Fatalf("offset wraps modulo stride: got %v", got.Traces)
	}
}
