// Package trace holds the traceroute data model MAP-IT consumes: traces
// as sequences of replying interface addresses with reply metadata, the
// §4.1 sanitisation pipeline (quoted-TTL=0 hop removal, interface-cycle
// discard), and adjacency extraction feeding the neighbour sets of §4.3.
//
// The model is deliberately minimal — MAP-IT is passive and only needs
// (monitor, ordered hop addresses, quoted TTL) — so traces from any
// tool (scamper/Ark, Paris traceroute, plain traceroute) map onto it.
package trace

import (
	"mapit/internal/inet"
)

// Hop is one probe's reply within a trace.
type Hop struct {
	// Addr is the replying interface address; zero means no reply
	// (a "null hop", rendered as * by traceroute).
	Addr inet.Addr
	// QuotedTTL is the TTL of the probe packet as quoted in the ICMP
	// reply. Normally 1. Zero flags the buggy-forwarder artifact of
	// §4.1: a router forwarded a TTL=1 packet instead of answering, and
	// the next router replied quoting TTL 0. Negative means unknown
	// (treated as normal).
	QuotedTTL int8
}

// Responded reports whether the hop carries a reply.
func (h Hop) Responded() bool { return !h.Addr.IsZero() }

// Trace is one traceroute: the ordered replies to probes with increasing
// TTL from a monitor toward a destination.
type Trace struct {
	// Monitor identifies the vantage point that ran the trace.
	Monitor string
	// Dst is the probed destination address.
	Dst inet.Addr
	// Time is the Unix timestamp (seconds) at which the trace was run;
	// zero means untimed. The inference algorithm never reads it — it
	// feeds the sliding-window streaming mode (core.Window), travels in
	// the MTRC v4 binary format and the JSONL "time" field, and is
	// silently dropped by the timestampless v2/v3 formats.
	Time int64
	// Hops are the replies in TTL order, starting at TTL=1. A trace may
	// stop early (destination reached or gap limit) — incomplete paths
	// still contribute adjacencies (§3.2).
	Hops []Hop
}

// NewTrace builds a trace from plain addresses with default reply
// metadata (QuotedTTL=1); zero addresses become null hops.
func NewTrace(monitor string, dst inet.Addr, addrs ...inet.Addr) Trace {
	hops := make([]Hop, len(addrs))
	for i, a := range addrs {
		hops[i] = Hop{Addr: a, QuotedTTL: 1}
	}
	return Trace{Monitor: monitor, Dst: dst, Hops: hops}
}

// Addrs returns the responding addresses of the trace in order,
// preserving position with zero entries for null hops.
func (t Trace) Addrs() []inet.Addr {
	out := make([]inet.Addr, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.Addr
	}
	return out
}

// SanitizeResult describes what Sanitize did to one trace.
type SanitizeResult struct {
	// Discarded is true when the whole trace must be dropped (an
	// interface cycle was found, §4.1).
	Discarded bool
	// RemovedHops counts hops removed for quoting TTL 0.
	RemovedHops int
}

// Sanitize applies §4.1 to a single trace, in order:
//
//  1. Hops whose reply quotes TTL=0 (buggy routers forwarding TTL=1
//     packets) are removed; to avoid manufacturing a false adjacency
//     across the unseen router, the removed hop is replaced by a null
//     hop rather than spliced out.
//  2. If the remaining responding addresses contain an interface cycle —
//     the same address twice, separated by at least one other address
//     (per-packet load balancing or a transient route change) — the
//     whole trace is discarded.
//
// Sanitize returns the cleaned trace (sharing no hop storage with the
// input when hops were removed) and a result describing the actions.
func Sanitize(t Trace) (Trace, SanitizeResult) {
	var res SanitizeResult
	clean := t
	for i, h := range t.Hops {
		if h.Responded() && h.QuotedTTL == 0 {
			if clean.Hops != nil && &clean.Hops[0] == &t.Hops[0] {
				clean.Hops = append([]Hop(nil), t.Hops...)
			}
			clean.Hops[i] = Hop{QuotedTTL: 1}
			res.RemovedHops++
		}
	}
	if HasCycle(clean) {
		res.Discarded = true
		return Trace{}, res
	}
	return clean, res
}

// HasCycle reports whether the trace contains an interface cycle: the
// same responding address at two positions with at least one other
// responding address strictly between them (§4.1 fn5, after Viger et
// al.). Immediate repeats (the same address at consecutive responding
// positions) are not cycles — they are the NAT/rate-limit signature the
// stub heuristic relies on.
func HasCycle(t Trace) bool {
	lastSeen := make(map[inet.Addr]int, len(t.Hops))
	// respIdx numbers only the responding hops so that null hops do not
	// count as separators (an unresponsive router between two sightings
	// of the same address tells us nothing).
	respIdx := 0
	for _, h := range t.Hops {
		if !h.Responded() {
			continue
		}
		if prev, ok := lastSeen[h.Addr]; ok && respIdx-prev > 1 {
			return true
		}
		lastSeen[h.Addr] = respIdx
		respIdx++
	}
	return false
}

// Adjacency is an ordered pair of interface addresses observed at
// consecutive responding hops in some trace: Second was seen exactly one
// hop after First.
type Adjacency struct {
	First, Second inet.Addr
}

// Adjacencies appends the trace's adjacent address pairs to dst and
// returns it. Pairs are produced only for consecutive hops that both
// responded (null hops break adjacency, §4.3), skipping self-pairs
// (immediate repeats carry no topology) and pairs involving
// special-purpose (private/shared) addresses, which the paper excludes
// from neighbour sets.
func Adjacencies(t Trace, dst []Adjacency) []Adjacency {
	for i := 0; i+1 < len(t.Hops); i++ {
		a, b := t.Hops[i], t.Hops[i+1]
		if !a.Responded() || !b.Responded() || a.Addr == b.Addr {
			continue
		}
		if inet.IsSpecial(a.Addr) || inet.IsSpecial(b.Addr) {
			continue
		}
		dst = append(dst, Adjacency{First: a.Addr, Second: b.Addr})
	}
	return dst
}
