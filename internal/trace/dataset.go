package trace

import (
	"sync"

	"mapit/internal/inet"
)

// Dataset is an in-memory traceroute collection.
type Dataset struct {
	Traces []Trace
}

// Stats summarises a sanitisation run, mirroring the dataset statistics
// the paper reports (§4.1, §5): how many traces were discarded for
// cycles, and what fraction of distinct addresses survived.
type Stats struct {
	TotalTraces     int
	DiscardedTraces int
	RemovedHops     int
	// DistinctAddrs counts distinct responding addresses across all
	// traces, including discarded ones.
	DistinctAddrs int
	// RetainedAddrs counts distinct responding addresses across retained
	// traces only. The paper retains 89.1% of distinct addresses.
	RetainedAddrs int
}

// RetainedTraceFraction is the share of traces kept (97.3% in the paper).
func (s Stats) RetainedTraceFraction() float64 {
	if s.TotalTraces == 0 {
		return 0
	}
	return float64(s.TotalTraces-s.DiscardedTraces) / float64(s.TotalTraces)
}

// RetainedAddrFraction is the share of distinct addresses kept.
func (s Stats) RetainedAddrFraction() float64 {
	if s.DistinctAddrs == 0 {
		return 0
	}
	return float64(s.RetainedAddrs) / float64(s.DistinctAddrs)
}

// Sanitized is the output of Dataset.Sanitize.
type Sanitized struct {
	// Retained holds the cleaned traces that survived.
	Retained []Trace
	// AllAddrs is every responding address seen in any trace, including
	// discarded ones — §4.2 runs the other-side heuristic over this set.
	AllAddrs inet.AddrSet
	Stats    Stats
}

// Sanitize runs §4.1 over the whole dataset serially. Equivalent to
// SanitizeParallel(1).
func (d *Dataset) Sanitize() *Sanitized {
	out := &Sanitized{
		Retained: make([]Trace, 0, len(d.Traces)),
		AllAddrs: make(inet.AddrSet),
	}
	retainedAddrs := make(inet.AddrSet)
	out.Stats.TotalTraces = len(d.Traces)
	for _, t := range d.Traces {
		for _, h := range t.Hops {
			if h.Responded() {
				out.AllAddrs.Add(h.Addr)
			}
		}
		clean, res := Sanitize(t)
		out.Stats.RemovedHops += res.RemovedHops
		if res.Discarded {
			out.Stats.DiscardedTraces++
			continue
		}
		for _, h := range clean.Hops {
			if h.Responded() {
				retainedAddrs.Add(h.Addr)
			}
		}
		out.Retained = append(out.Retained, clean)
	}
	out.Stats.DistinctAddrs = len(out.AllAddrs)
	out.Stats.RetainedAddrs = len(retainedAddrs)
	return out
}

// sanitizeParallelMin gates the parallel path: below this many traces
// per worker the goroutine and merge overhead beats the win.
const sanitizeParallelMin = 64

// SanitizeParallel runs §4.1 over the dataset chunked across the given
// number of worker goroutines. Each worker sanitises a contiguous range
// of traces into a private partial (retained slice, address sets,
// counters); partials are merged in chunk order, so Retained preserves
// dataset order and the result — traces, sets and statistics — is
// identical to the serial Sanitize for any worker count. workers <= 1
// selects the serial path.
func (d *Dataset) SanitizeParallel(workers int) *Sanitized {
	if workers <= 1 || len(d.Traces) < sanitizeParallelMin*workers {
		return d.Sanitize()
	}
	type partial struct {
		retained      []Trace
		allAddrs      inet.AddrSet
		retainedAddrs inet.AddrSet
		discarded     int
		removedHops   int
	}
	chunk := (len(d.Traces) + workers - 1) / workers
	parts := make([]partial, (len(d.Traces)+chunk-1)/chunk)
	var wg sync.WaitGroup
	for w := range parts {
		lo := w * chunk
		hi := min(lo+chunk, len(d.Traces))
		wg.Add(1)
		go func(p *partial, traces []Trace) {
			defer wg.Done()
			p.allAddrs = make(inet.AddrSet)
			p.retainedAddrs = make(inet.AddrSet)
			p.retained = make([]Trace, 0, len(traces))
			for _, t := range traces {
				for _, h := range t.Hops {
					if h.Responded() {
						p.allAddrs.Add(h.Addr)
					}
				}
				clean, res := Sanitize(t)
				p.removedHops += res.RemovedHops
				if res.Discarded {
					p.discarded++
					continue
				}
				for _, h := range clean.Hops {
					if h.Responded() {
						p.retainedAddrs.Add(h.Addr)
					}
				}
				p.retained = append(p.retained, clean)
			}
		}(&parts[w], d.Traces[lo:hi])
	}
	wg.Wait()

	out := &Sanitized{AllAddrs: make(inet.AddrSet)}
	out.Stats.TotalTraces = len(d.Traces)
	retainedAddrs := make(inet.AddrSet)
	total := 0
	for i := range parts {
		total += len(parts[i].retained)
	}
	out.Retained = make([]Trace, 0, total)
	for i := range parts {
		p := &parts[i]
		out.Retained = append(out.Retained, p.retained...)
		for a := range p.allAddrs {
			out.AllAddrs.Add(a)
		}
		for a := range p.retainedAddrs {
			retainedAddrs.Add(a)
		}
		out.Stats.DiscardedTraces += p.discarded
		out.Stats.RemovedHops += p.removedHops
	}
	out.Stats.DistinctAddrs = len(out.AllAddrs)
	out.Stats.RetainedAddrs = len(retainedAddrs)
	return out
}

// Adjacencies extracts every adjacency from the retained traces.
func (s *Sanitized) Adjacencies() []Adjacency {
	var out []Adjacency
	for _, t := range s.Retained {
		out = Adjacencies(t, out)
	}
	return out
}
