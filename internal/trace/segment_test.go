package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"slices"
	"testing"

	"mapit/internal/inet"
)

// segBuf adapts a bytes.Buffer's contents for cursor reads.
type segBuf struct{ bytes.Buffer }

func (b *segBuf) readerAt() io.ReaderAt { return bytes.NewReader(b.Bytes()) }

// genSortedAdjs makes n strictly increasing (First, Second) pairs.
func genSortedAdjs(rng *rand.Rand, n int) []Adjacency {
	set := make(map[Adjacency]struct{}, n)
	for len(set) < n {
		a := Adjacency{
			First:  inet.Addr(rng.Uint32N(uint32(n)*4 + 16)),
			Second: inet.Addr(rng.Uint32()),
		}
		set[a] = struct{}{}
	}
	out := make([]Adjacency, 0, n)
	for a := range set {
		out = append(out, a)
	}
	slices.SortFunc(out, func(a, b Adjacency) int {
		if a.First != b.First {
			if a.First < b.First {
				return -1
			}
			return 1
		}
		if a.Second < b.Second {
			return -1
		}
		if a.Second > b.Second {
			return 1
		}
		return 0
	})
	return out
}

// genSortedAddrs makes n strictly increasing addresses.
func genSortedAddrs(rng *rand.Rand, n int) []inet.Addr {
	set := make(map[inet.Addr]struct{}, n)
	for len(set) < n {
		set[inet.Addr(rng.Uint32())] = struct{}{}
	}
	out := make([]inet.Addr, 0, n)
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

func drainAdjRun(t *testing.T, ra io.ReaderAt, run SegmentRun) []Adjacency {
	t.Helper()
	cur, err := OpenAdjacencyRun(ra, run)
	if err != nil {
		t.Fatalf("OpenAdjacencyRun: %v", err)
	}
	var out []Adjacency
	for {
		a, err := cur.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("AdjacencyCursor.Next after %d entries: %v", len(out), err)
		}
		out = append(out, a)
	}
}

func drainAddrRun(t *testing.T, ra io.ReaderAt, run SegmentRun) []inet.Addr {
	t.Helper()
	cur, err := OpenAddrRun(ra, run)
	if err != nil {
		t.Fatalf("OpenAddrRun: %v", err)
	}
	var out []inet.Addr
	for {
		a, err := cur.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("AddrCursor.Next after %d entries: %v", len(out), err)
		}
		out = append(out, a)
	}
}

// TestSegmentRoundTrip round-trips runs across the page-size boundaries
// and checks multiple runs coexist in one file.
func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 6))
	sizes := []int{0, 1, 2, SegmentPageEntries - 1, SegmentPageEntries,
		SegmentPageEntries + 1, 3*SegmentPageEntries + 17}
	var buf segBuf
	sw, err := NewSegmentWriter(&buf)
	if err != nil {
		t.Fatalf("NewSegmentWriter: %v", err)
	}
	var adjRuns []SegmentRun
	var addrRuns []SegmentRun
	var wantAdjs [][]Adjacency
	var wantAddrs [][]inet.Addr
	for _, n := range sizes {
		adjs := genSortedAdjs(rng, n)
		run, err := sw.AppendAdjacencyRun(adjs)
		if err != nil {
			t.Fatalf("AppendAdjacencyRun(%d): %v", n, err)
		}
		if run.Count != n || run.Kind != AdjRunKind {
			t.Fatalf("run metadata %+v for %d adjacencies", run, n)
		}
		adjRuns = append(adjRuns, run)
		wantAdjs = append(wantAdjs, adjs)

		addrs := genSortedAddrs(rng, n)
		arun, err := sw.AppendAddrRun(addrs)
		if err != nil {
			t.Fatalf("AppendAddrRun(%d): %v", n, err)
		}
		addrRuns = append(addrRuns, arun)
		wantAddrs = append(wantAddrs, addrs)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := sw.Offset(); got != int64(buf.Len()) {
		t.Fatalf("writer offset %d, file is %d bytes", got, buf.Len())
	}
	ra := buf.readerAt()
	for i, run := range adjRuns {
		got := drainAdjRun(t, ra, run)
		if !slices.Equal(got, wantAdjs[i]) {
			t.Fatalf("adjacency run %d: got %d entries, want %d (size %d)",
				i, len(got), len(wantAdjs[i]), sizes[i])
		}
		// Re-open and drain again: runs are re-readable.
		if again := drainAdjRun(t, ra, run); !slices.Equal(again, wantAdjs[i]) {
			t.Fatalf("adjacency run %d: second read differs", i)
		}
	}
	for i, run := range addrRuns {
		got := drainAddrRun(t, ra, run)
		if !slices.Equal(got, wantAddrs[i]) {
			t.Fatalf("address run %d: got %d entries, want %d", i, len(got), len(wantAddrs[i]))
		}
	}
}

// TestSegmentCompression sanity-checks the columnar encoding actually
// compresses: dense sorted runs must land well under the in-memory cost.
func TestSegmentCompression(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 6))
	const n = 100_000
	adjs := genSortedAdjs(rng, n)
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	run, err := sw.AppendAdjacencyRun(adjs)
	if err != nil {
		t.Fatalf("AppendAdjacencyRun: %v", err)
	}
	perEntry := float64(run.Size) / n
	if perEntry > 8 {
		t.Fatalf("adjacency run costs %.1f bytes/entry on disk, want <= 8", perEntry)
	}
}

// anyCorruptClass accepts any failure class in corruptCheck.
const anyCorruptClass = -1

// corruptCheck opens + drains a run and requires a *CorruptError of the
// given class (or any class if want < 0). It must never panic.
func corruptCheck(t *testing.T, name string, data []byte, run SegmentRun, want int) {
	t.Helper()
	ra := bytes.NewReader(data)
	var err error
	switch run.Kind {
	case AdjRunKind:
		var cur *AdjacencyCursor
		cur, err = OpenAdjacencyRun(ra, run)
		for err == nil {
			_, err = cur.Next()
		}
	default:
		var cur *AddrCursor
		cur, err = OpenAddrRun(ra, run)
		for err == nil {
			_, err = cur.Next()
		}
	}
	if err == io.EOF {
		t.Fatalf("%s: corruption went undetected", name)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("%s: got %v, want *CorruptError", name, err)
	}
	if ce.Kind != "segment" {
		t.Fatalf("%s: error kind %q, want \"segment\"", name, ce.Kind)
	}
	if want >= 0 && ce.Class != CorruptClass(want) {
		t.Fatalf("%s: class %v, want %v", name, ce.Class, want)
	}
}

// TestSegmentTruncation truncates the file at every byte boundary; every
// prefix must fail with a typed error, never panic or succeed.
func TestSegmentTruncation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 6))
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	run, err := sw.AppendAdjacencyRun(genSortedAdjs(rng, 300))
	if err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	data := buf.Bytes()
	for cut := int(run.Offset); cut < len(data); cut++ {
		corruptCheck(t, "truncate", data[:cut], run, anyCorruptClass)
	}
}

// TestSegmentBitFlips flips bits across the frame; every flip must
// surface as a typed error — the CRC backstops any flip the structural
// validation cannot see.
func TestSegmentBitFlips(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 6))
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	adjRun, err := sw.AppendAdjacencyRun(genSortedAdjs(rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	addrRun, err := sw.AppendAddrRun(genSortedAddrs(rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	clean := buf.Bytes()
	for _, run := range []SegmentRun{adjRun, addrRun} {
		for off := run.Offset; off < run.Offset+run.Size; off++ {
			for bit := 0; bit < 8; bit++ {
				data := slices.Clone(clean)
				data[off] ^= 1 << bit
				corruptCheck(t, "bitflip", data, run, anyCorruptClass)
			}
		}
	}
}

// TestSegmentChecksumClass verifies a pure payload value flip that stays
// structurally valid is caught by the CRC specifically.
func TestSegmentChecksumClass(t *testing.T) {
	// A single-page address run of small deltas: flipping the low bit of
	// a mid-payload one-byte varint keeps the structure valid (counts,
	// lengths, ordering all fine) so only the checksum can catch it.
	addrs := []inet.Addr{10, 20, 30, 40, 50, 60, 70, 80}
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	run, err := sw.AppendAddrRun(addrs)
	if err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	data := buf.Bytes()
	// Header = kind(1) + count(1) + plen(1) + crc(4); page header n(1).
	// Flip delta of the 4th entry (10 -> 8: still positive, still
	// strictly increasing, same byte length).
	idx := int(run.Offset) + 7 + 1 + 3
	data[idx] ^= 2
	corruptCheck(t, "payload-flip", data, run, int(CorruptChecksum))
}

// TestSegmentUnsortedClass verifies the ordering contract is enforced.
func TestSegmentUnsortedClass(t *testing.T) {
	// Zero delta after the first entry = duplicate address. Build the
	// frame by hand so the writer's own invariants don't get in the way:
	// the writer would encode this, and the cursor must reject it.
	addrs := []inet.Addr{10, 10}
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	run, err := sw.AppendAddrRun(addrs)
	if err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	corruptCheck(t, "dup-addr", buf.Bytes(), run, int(CorruptUnsorted))

	buf.Reset()
	sw, _ = NewSegmentWriter(&buf)
	adjs := []Adjacency{{First: 1, Second: 9}, {First: 1, Second: 9}}
	arun, err := sw.AppendAdjacencyRun(adjs)
	if err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	corruptCheck(t, "dup-adj", buf.Bytes(), arun, int(CorruptUnsorted))
}

// TestSegmentWrongRunMetadata checks the cursor cross-validates the
// caller's SegmentRun against the frame.
func TestSegmentWrongRunMetadata(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var buf segBuf
	sw, _ := NewSegmentWriter(&buf)
	adjRun, _ := sw.AppendAdjacencyRun(genSortedAdjs(rng, 64))
	addrRun, _ := sw.AppendAddrRun(genSortedAddrs(rng, 64))
	sw.Flush()
	ra := buf.readerAt()

	// Kind mismatch at the API boundary.
	if _, err := OpenAdjacencyRun(ra, addrRun); err == nil {
		t.Fatal("OpenAdjacencyRun accepted an address run")
	}
	if _, err := OpenAddrRun(ra, adjRun); err == nil {
		t.Fatal("OpenAddrRun accepted an adjacency run")
	}
	// Count mismatch.
	bad := adjRun
	bad.Count++
	corruptCheck(t, "count", buf.Bytes(), bad, int(CorruptCountMismatch))
	// Degenerate size.
	bad = adjRun
	bad.Size = 0
	if _, err := OpenAdjacencyRun(ra, bad); err == nil {
		t.Fatal("accepted zero-size run")
	}
}
