package trace

import "math/rand"

// Dataset mutations for the metamorphic verification harness (see
// DESIGN.md §10): transformations under which MAP-IT's inferences are
// provably invariant. Each returns a new Dataset whose Trace headers
// are fresh copies; the Hop slices are shared with the input, which
// is safe because nothing in the pipeline mutates hops in place.

// Permute returns a copy of the dataset with the trace order shuffled
// deterministically from seed. Evidence collection is order-independent
// (§4.3 neighbour sets are sets), so inference must not change.
func Permute(d *Dataset, seed int64) *Dataset {
	out := &Dataset{Traces: make([]Trace, len(d.Traces))}
	copy(out.Traces, d.Traces)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Traces), func(i, j int) {
		out.Traces[i], out.Traces[j] = out.Traces[j], out.Traces[i]
	})
	return out
}

// Duplicate returns a copy of the dataset with every trace repeated n
// times (n ≤ 0 is treated as 1). Adjacency evidence deduplicates, so
// inference must be idempotent under duplication.
func Duplicate(d *Dataset, n int) *Dataset {
	if n < 1 {
		n = 1
	}
	out := &Dataset{Traces: make([]Trace, 0, n*len(d.Traces))}
	for i := 0; i < n; i++ {
		out.Traces = append(out.Traces, d.Traces...)
	}
	return out
}

// RelabelMonitors returns a copy of the dataset with every trace's
// Monitor replaced by fn(monitor). Monitor identity never feeds the
// algorithm (only addresses and adjacency do), so any relabeling —
// injective or not — must leave inference unchanged.
func RelabelMonitors(d *Dataset, fn func(string) string) *Dataset {
	out := &Dataset{Traces: make([]Trace, len(d.Traces))}
	copy(out.Traces, d.Traces)
	for i := range out.Traces {
		out.Traces[i].Monitor = fn(out.Traces[i].Monitor)
	}
	return out
}

// Subsample returns a copy of the dataset keeping every stride-th trace
// starting at offset (stride ≤ 1 returns a full copy). Used by the
// evidence-monotonicity property: a subset of traces can only yield a
// subset of addresses and adjacencies.
func Subsample(d *Dataset, stride, offset int) *Dataset {
	if stride <= 1 {
		return &Dataset{Traces: append([]Trace(nil), d.Traces...)}
	}
	if offset < 0 {
		offset = 0
	}
	out := &Dataset{Traces: make([]Trace, 0, len(d.Traces)/stride+1)}
	for i := offset % stride; i < len(d.Traces); i += stride {
		out.Traces = append(out.Traces, d.Traces[i])
	}
	return out
}
