package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mapit/internal/inet"
)

// JSON codec: one JSON object per line (JSONL), the shape most modern
// traceroute tooling (scamper's warts2json, RIPE Atlas exports) is
// converted through. Hops are strings in the same syntax as the text
// codec ("1.2.3.4", "*", "1.2.3.4!q0").
//
//	{"monitor":"ams3-nl","dst":"8.8.8.8","hops":["192.0.2.1","*","8.8.8.8"]}
//
// An optional "time" field carries the trace's Unix timestamp in
// seconds for the sliding-window mode; untimed traces omit it.

type jsonTrace struct {
	Monitor string   `json:"monitor"`
	Dst     string   `json:"dst"`
	Time    int64    `json:"time,omitempty"`
	Hops    []string `json:"hops"`
}

// ReadJSON parses a JSONL trace dataset.
func ReadJSON(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var jt jsonTrace
		if err := json.Unmarshal(line, &jt); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
		}
		dst, err := inet.ParseAddr(jt.Dst)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
		}
		t := Trace{Monitor: jt.Monitor, Dst: dst, Time: jt.Time}
		for _, tok := range jt.Hops {
			h, err := ParseHop(tok)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
			}
			t.Hops = append(t.Hops, h)
		}
		d.Traces = append(d.Traces, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteJSON emits the dataset as JSONL.
func WriteJSON(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range d.Traces {
		jt := jsonTrace{Monitor: t.Monitor, Dst: t.Dst.String(), Time: t.Time, Hops: make([]string, len(t.Hops))}
		for i, h := range t.Hops {
			jt.Hops[i] = formatHop(h)
		}
		if err := enc.Encode(&jt); err != nil {
			return err
		}
	}
	return bw.Flush()
}
