package audit

import (
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", Off, true},
		{"sampled", Sampled, true},
		{"exhaustive", Exhaustive, true},
		{"", Off, false},
		{"OFF", Off, false},
		{"full", Off, false},
		{"sampled ", Off, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseMode(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// String round-trips through ParseMode for every real mode.
	for _, m := range []Mode{Off, Sampled, Exhaustive} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%v.String()) = %v, %v", m, back, err)
		}
	}
}

func TestCheckerDefaults(t *testing.T) {
	var nilChecker *Checker
	if nilChecker.Enabled() {
		t.Error("nil checker reports enabled")
	}
	if (&Checker{}).Enabled() {
		t.Error("zero checker reports enabled")
	}
	c := &Checker{Mode: Sampled}
	if !c.Enabled() {
		t.Error("sampled checker reports disabled")
	}
	if got := c.Stride(); got != DefaultSampleStride {
		t.Errorf("default stride = %d, want %d", got, DefaultSampleStride)
	}
	if got := c.Cap(); got != DefaultMaxViolations {
		t.Errorf("default cap = %d, want %d", got, DefaultMaxViolations)
	}
	c = &Checker{Mode: Exhaustive, SampleStride: 8, MaxViolations: 3}
	if got := c.Stride(); got != 1 {
		t.Errorf("exhaustive stride = %d, want 1 (SampleStride must be ignored)", got)
	}
	if got := c.Cap(); got != 3 {
		t.Errorf("cap = %d, want 3", got)
	}
}

func TestReportCapAndSort(t *testing.T) {
	r := NewReport(Sampled)
	vs := []Violation{
		{Check: "z", Stage: "remove-step", Iteration: 2, Detail: "b"},
		{Check: "a", Stage: "add-step", Iteration: 1, Detail: "d"},
		{Check: "a", Stage: "add-step", Iteration: 1, Detail: "c"},
	}
	for _, v := range vs {
		r.Record(v, 2)
	}
	if len(r.Violations) != 2 || r.Dropped != 1 {
		t.Fatalf("retained %d dropped %d, want 2/1", len(r.Violations), r.Dropped)
	}
	if r.Total() != 3 || r.Ok() {
		t.Errorf("Total = %d Ok = %v, want 3/false", r.Total(), r.Ok())
	}
	r.Sort()
	// add-step sorts before remove-step regardless of record order.
	if r.Violations[0].Check != "a" || r.Violations[1].Check != "z" {
		t.Errorf("sort order wrong: %+v", r.Violations)
	}
	if !strings.Contains(r.String(), "3 violations") {
		t.Errorf("String() = %q, want violation count", r.String())
	}

	clean := NewReport(Exhaustive)
	clean.Steps, clean.Checks = 4, 100
	if !clean.Ok() || !strings.Contains(clean.String(), "ok") {
		t.Errorf("clean report: Ok=%v String=%q", clean.Ok(), clean.String())
	}
	if !strings.Contains(clean.String(), "exhaustive") {
		t.Errorf("String() = %q, want mode name", clean.String())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: "state-hash", Stage: "add-step", Iteration: 2, Detail: "0x1 != 0x2"}
	got := v.String()
	for _, want := range []string{"state-hash", "add-step", "2", "0x1 != 0x2"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
