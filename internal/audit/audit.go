// Package audit defines the runtime invariant auditor's contract: the
// Checker a caller plugs into core.Config.Audit, the structured
// Violation records the engine emits when an invariant fails, and the
// Report that travels with the run result.
//
// The auditor cross-checks the incremental fixpoint machinery against
// first principles at every step boundary — the maintained state
// fingerprint against a from-scratch recomputation, memoised elections
// and IP→AS resolutions against fresh ones, the dense intern index
// against the authoritative maps, and the add/remove fixpoints against
// a full re-election. The checks themselves live in internal/core
// (they need the run state); this package is dependency-free so the
// core, the command, and the test harness can all share the types.
package audit

import (
	"fmt"
	"sort"
	"strings"
)

// Mode selects how much of the state each audit checkpoint examines.
type Mode uint8

const (
	// Off disables auditing entirely; the engine pays nothing.
	Off Mode = iota
	// Sampled checks a deterministic stride of each indexed structure
	// per checkpoint (rotating the offset so repeated checkpoints cover
	// different residues) plus every O(state) cheap invariant. Suitable
	// for always-on use.
	Sampled
	// Exhaustive checks everything at every checkpoint: every eligible
	// half is re-elected from scratch, every memo entry re-resolved.
	// Each checkpoint costs about one full non-incremental pass.
	Exhaustive
)

// ParseMode parses the -audit flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "sampled":
		return Sampled, nil
	case "exhaustive":
		return Exhaustive, nil
	}
	return Off, fmt.Errorf("audit: unknown mode %q (want off, sampled or exhaustive)", s)
}

// String names the mode as ParseMode reads it.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Sampled:
		return "sampled"
	case Exhaustive:
		return "exhaustive"
	}
	return fmt.Sprintf("audit.Mode(%d)", uint8(m))
}

// Checker configures the runtime invariant auditor. The zero value is
// disabled; a nil *Checker is also disabled, so core.Config.Audit can
// simply be left unset.
type Checker struct {
	// Mode selects the audit depth.
	Mode Mode
	// SampleStride is the stride Sampled mode walks indexed structures
	// with. Zero means DefaultSampleStride. Exhaustive mode ignores it.
	SampleStride int
	// MaxViolations caps how many violations a report retains (the rest
	// are counted in Report.Dropped). Zero means DefaultMaxViolations.
	MaxViolations int
}

// DefaultSampleStride is the Sampled-mode stride when
// Checker.SampleStride is zero: 1 in every 16 entries per checkpoint.
const DefaultSampleStride = 16

// DefaultMaxViolations is the retained-violation cap when
// Checker.MaxViolations is zero.
const DefaultMaxViolations = 100

// Enabled reports whether the checker asks for any auditing at all.
func (c *Checker) Enabled() bool { return c != nil && c.Mode != Off }

// Stride returns the effective sampling stride: 1 for Exhaustive mode,
// the configured (or default) stride for Sampled.
func (c *Checker) Stride() int {
	if c.Mode == Exhaustive {
		return 1
	}
	if c.SampleStride > 0 {
		return c.SampleStride
	}
	return DefaultSampleStride
}

// Cap returns the effective retained-violation cap.
func (c *Checker) Cap() int {
	if c.MaxViolations > 0 {
		return c.MaxViolations
	}
	return DefaultMaxViolations
}

// Violation is one failed invariant check.
type Violation struct {
	// Check names the invariant (e.g. "state-hash", "election-memo",
	// "retention"); DESIGN.md §10 catalogues them.
	Check string
	// Stage is the fixpoint boundary the checkpoint ran at:
	// "add-step", "remove-step" or "final".
	Stage string
	// Iteration is the outer add/remove iteration (0 for "final").
	Iteration int
	// Detail describes the specific divergence.
	Detail string
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s@%s[%d]: %s", v.Check, v.Stage, v.Iteration, v.Detail)
}

// Report accumulates the outcome of a run's audit checkpoints.
type Report struct {
	// Mode echoes the checker mode the run used.
	Mode Mode
	// Steps counts audit checkpoints executed.
	Steps int
	// Checks counts individual invariant assertions evaluated.
	Checks int
	// Violations holds the retained failures, sorted by (Stage,
	// Iteration, Check, Detail) once the run finalises the report.
	Violations []Violation
	// Dropped counts violations discarded past the retention cap.
	Dropped int
}

// NewReport returns an empty report for a run under mode.
func NewReport(mode Mode) *Report { return &Report{Mode: mode} }

// Record appends a violation, honouring the retention cap limit.
func (r *Report) Record(v Violation, limit int) {
	if len(r.Violations) >= limit {
		r.Dropped++
		return
	}
	r.Violations = append(r.Violations, v)
}

// Merge folds another report into r. Partitioned runs audit each
// inference component independently and combine the reports at the
// merge stage: steps, check counts and dropped counts add, retained
// violations concatenate up to limit (overflow counts as dropped).
// Call Sort afterwards to restore the deterministic order.
func (r *Report) Merge(o *Report, limit int) {
	r.Steps += o.Steps
	r.Checks += o.Checks
	r.Dropped += o.Dropped
	for _, v := range o.Violations {
		r.Record(v, limit)
	}
}

// Total is the number of violations detected, including dropped ones.
func (r *Report) Total() int { return len(r.Violations) + r.Dropped }

// Ok reports whether every evaluated check passed.
func (r *Report) Ok() bool { return r.Total() == 0 }

// Sort orders the retained violations deterministically. Map-walk
// checks discover violations in nondeterministic order; sorting keeps
// failing runs diffable.
func (r *Report) Sort() {
	sort.Slice(r.Violations, func(i, j int) bool {
		a, b := r.Violations[i], r.Violations[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Detail < b.Detail
	})
}

// String summarises the report in one line.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit %s: %d checkpoints, %d checks", r.Mode, r.Steps, r.Checks)
	if r.Ok() {
		b.WriteString(", ok")
	} else {
		fmt.Fprintf(&b, ", %d violations", r.Total())
	}
	return b.String()
}
