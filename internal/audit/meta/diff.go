package meta

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"slices"

	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/trace"
)

// Differential oracles: independent implementations of one pipeline
// stage fed identical input, whose downstream Results must be
// byte-identical. Each returns nil when the implementations agree.

// equalEvidence compares two evidence distillations field by field.
func equalEvidence(label string, a, b *core.Evidence) error {
	if len(a.AllAddrs) != len(b.AllAddrs) {
		return fmt.Errorf("%s: address universes diverge (%d vs %d)",
			label, len(a.AllAddrs), len(b.AllAddrs))
	}
	for addr := range a.AllAddrs {
		if !b.AllAddrs.Contains(addr) {
			return fmt.Errorf("%s: address %v missing from second evidence", label, addr)
		}
	}
	if !slices.Equal(a.Adjacencies, b.Adjacencies) {
		return fmt.Errorf("%s: adjacencies diverge (%d vs %d)",
			label, len(a.Adjacencies), len(b.Adjacencies))
	}
	return nil
}

// DiffIngest runs the three ingest paths — streaming serial collector,
// sharded parallel collector, and batch sanitise-then-distil — over the
// same raw traces and requires identical evidence and identical
// downstream Results.
func DiffIngest(pl *Pipeline) error {
	d := pl.Env.Dataset

	serial := core.NewCollector()
	for _, tr := range d.Traces {
		serial.Add(tr)
	}
	evSerial := serial.Evidence()

	par := core.NewParallelCollector(8)
	for _, tr := range d.Traces {
		par.Add(tr)
	}
	evPar := par.Evidence()

	evBatch := core.EvidenceFrom(d.SanitizeParallel(4))

	if err := equalEvidence("serial vs parallel collector", evSerial, evPar); err != nil {
		return err
	}
	if err := equalEvidence("collector vs batch sanitise", evSerial, evBatch); err != nil {
		return err
	}

	cfg := pl.Config()
	rs, err := core.RunEvidence(evSerial, cfg)
	if err != nil {
		return err
	}
	rp, err := core.RunEvidence(evPar, cfg)
	if err != nil {
		return err
	}
	rb, err := core.RunEvidence(evBatch, cfg)
	if err != nil {
		return err
	}
	if err := EqualResults(rs, rp); err != nil {
		return fmt.Errorf("serial vs parallel collector: %w", err)
	}
	if err := EqualResults(rs, rb); err != nil {
		return fmt.Errorf("collector vs batch sanitise: %w", err)
	}
	return nil
}

// DiffSpill runs the out-of-core ingest against the in-memory reference
// over the same raw traces: every (budget, run-granularity, workers)
// configuration — drawn from a seeded rng so the matrix wanders across
// runs of the harness — must reproduce the in-memory evidence exactly,
// and the downstream Results must be byte-identical. The most
// aggressive configuration is additionally required to have actually
// spilled, so the oracle cannot pass vacuously through the in-memory
// fast path.
func DiffSpill(pl *Pipeline) error {
	d := pl.Env.Dataset

	mem := core.NewCollector()
	for _, tr := range d.Traces {
		mem.Add(tr)
	}
	evMem := mem.Evidence()
	base, err := core.RunEvidence(evMem, pl.Config())
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "mapit-diffspill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(pl.Seed ^ 0x5b1ca7))
	configs := []struct {
		label     string
		spill     core.SpillConfig
		mustSpill bool
	}{
		{"budget=1B", core.SpillConfig{Dir: dir, MemBudget: 1}, true},
		{"random-run-entries", core.SpillConfig{Dir: dir, RunEntries: 1 + rng.Intn(64)}, true},
		{"random-budget", core.SpillConfig{Dir: dir, MemBudget: 1 << (10 + rng.Intn(11))}, false},
	}
	workerCounts := []int{0, 1, 2 + rng.Intn(6)} // 0 = serial collector

	for _, tc := range configs {
		for _, workers := range workerCounts {
			label := fmt.Sprintf("spill %s workers=%d", tc.label, workers)
			var (
				add    func(trace.Trace)
				finish func() (*core.Evidence, error)
				stats  func() core.SpillStats
				close  func() error
			)
			if workers == 0 {
				c := core.NewCollectorSpill(tc.spill)
				add = func(t trace.Trace) { c.Add(t) }
				finish, stats, close = c.Finish, c.SpillStats, c.Close
			} else {
				c := core.NewParallelCollectorSpill(workers, tc.spill)
				add = func(t trace.Trace) { c.Add(t) }
				finish, stats, close = c.Finish, c.SpillStats, c.Close
			}
			for _, tr := range d.Traces {
				add(tr)
			}
			ev, err := finish()
			if err != nil {
				close()
				return fmt.Errorf("%s: %w", label, err)
			}
			if tc.mustSpill && stats().SpilledEntries == 0 {
				close()
				return fmt.Errorf("%s: configuration spilled nothing — oracle is vacuous", label)
			}
			if err := equalEvidence(label, evMem, ev); err != nil {
				close()
				return err
			}
			r, err := core.RunEvidence(ev, pl.Config())
			if err != nil {
				close()
				return err
			}
			if err := close(); err != nil {
				return fmt.Errorf("%s: close: %w", label, err)
			}
			if err := EqualResults(base, r); err != nil {
				return fmt.Errorf("%s: %w", label, err)
			}
		}
	}
	return nil
}

// DiffIncremental runs the incremental dirty-set engine against the
// full-rescan engine (DisableIncremental) and requires identical
// Results — the dirty set changes what is scanned, never what is
// inferred.
func DiffIncremental(pl *Pipeline) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	cfg := pl.Config()
	cfg.DisableIncremental = true
	full, err := core.Run(pl.Env.Sanitized, cfg)
	if err != nil {
		return err
	}
	if err := EqualResults(base, full); err != nil {
		return fmt.Errorf("incremental vs full rescan: %w", err)
	}
	return nil
}

// DiffPartition runs the component-partitioned fixpoint against the
// monolithic engine (DisablePartition) across worker counts (serial,
// two, NumCPU) and requires identical Results — partitioning changes
// the schedule, never the inference. The pipeline's own world is
// usually one connected component (an immediate fallback), so the
// oracle additionally drives a merged multi-island corpus (see
// IslandCorpus) and requires that the partitioned runs actually
// decomposed it into at least as many components as islands, keeping
// the check non-vacuous.
func DiffPartition(pl *Pipeline) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, w := range workerCounts {
		for _, disable := range []bool{false, true} {
			cfg := pl.Config()
			cfg.Workers = w
			cfg.DisablePartition = disable
			r, err := core.Run(pl.Env.Sanitized, cfg)
			if err != nil {
				return err
			}
			if err := EqualResults(base, r); err != nil {
				return fmt.Errorf("partitioned=%v workers=%d vs baseline: %w", !disable, w, err)
			}
		}
	}

	const islands = 3
	ds, icfg := IslandCorpus(pl.Seed, islands)
	s := ds.Sanitize()
	var iBase *core.Result
	for _, w := range workerCounts {
		for _, disable := range []bool{false, true} {
			cfg := icfg
			cfg.Workers = w
			cfg.DisablePartition = disable
			r, err := core.Run(s, cfg)
			if err != nil {
				return err
			}
			if !disable {
				switch {
				case r.Partition == nil || r.Partition.Fallback != "":
					return fmt.Errorf("islands workers=%d: partitioned run fell back (%s) — oracle is vacuous",
						w, r.Partition.String())
				case r.Partition.Components < islands:
					return fmt.Errorf("islands workers=%d: %d components for %d islands — oracle is vacuous",
						w, r.Partition.Components, islands)
				}
			}
			if iBase == nil {
				iBase = r
			} else if err := EqualResults(iBase, r); err != nil {
				return fmt.Errorf("islands partitioned=%v workers=%d: %w", !disable, w, err)
			}
		}
	}
	return nil
}

// noFreeze hides the Freeze method of a bgp.Table so the engine cannot
// compile it: every lookup goes through the binary trie instead of the
// flat multibit form.
type noFreeze struct {
	t *bgp.Table
}

func (n noFreeze) Lookup(a inet.Addr) (inet.ASN, bool) { return n.t.Lookup(a) }

// DiffLPM answers every IP→AS resolution through the uncompiled binary
// trie and through the compiled multibit engine, and requires identical
// Results. Fresh tables are built from the world's announcements so the
// frozen Env table cannot leak into the trie arm.
func DiffLPM(pl *Pipeline) error {
	trie := bgp.NewTable(pl.Env.World.Announcements)
	compiled := bgp.NewTable(pl.Env.World.Announcements)
	compiled.Freeze()

	cfgTrie := pl.Config()
	cfgTrie.IP2AS = noFreeze{t: trie}
	cfgComp := pl.Config()
	cfgComp.IP2AS = compiled

	rt, err := core.Run(pl.Env.Sanitized, cfgTrie)
	if err != nil {
		return err
	}
	rc, err := core.Run(pl.Env.Sanitized, cfgComp)
	if err != nil {
		return err
	}
	if err := EqualResults(rt, rc); err != nil {
		return fmt.Errorf("trie vs compiled LPM: %w", err)
	}
	return nil
}

// DiffBinaryRoundTrip serialises the dataset through both binary
// layouts (monolithic v2 stream and blocked v3), reads each back
// serially and in parallel, and requires the decoded datasets and
// their downstream Results to match the in-memory original exactly.
func DiffBinaryRoundTrip(pl *Pipeline) error {
	d := pl.Env.Dataset
	base, err := pl.Baseline()
	if err != nil {
		return err
	}

	var mono, blocked bytes.Buffer
	if err := trace.WriteBinary(&mono, d); err != nil {
		return fmt.Errorf("write monolithic: %w", err)
	}
	if err := trace.WriteBinaryBlocks(&blocked, d, 64); err != nil {
		return fmt.Errorf("write blocked: %w", err)
	}

	decoded := map[string]*trace.Dataset{}
	if decoded["monolithic/serial"], err = trace.ReadBinary(bytes.NewReader(mono.Bytes())); err != nil {
		return fmt.Errorf("read monolithic: %w", err)
	}
	if decoded["blocked/serial"], err = trace.ReadBinary(bytes.NewReader(blocked.Bytes())); err != nil {
		return fmt.Errorf("read blocked: %w", err)
	}
	if decoded["blocked/parallel"], err = trace.ReadBinaryParallel(bytes.NewReader(blocked.Bytes()), 4); err != nil {
		return fmt.Errorf("read blocked parallel: %w", err)
	}

	for _, label := range []string{"monolithic/serial", "blocked/serial", "blocked/parallel"} {
		rd := decoded[label]
		if !reflect.DeepEqual(rd.Traces, d.Traces) {
			return fmt.Errorf("%s: decoded dataset diverges from original (%d vs %d traces)",
				label, len(rd.Traces), len(d.Traces))
		}
		r, err := core.Run(rd.Sanitize(), pl.Config())
		if err != nil {
			return err
		}
		if err := EqualResults(base, r); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
	}
	return nil
}
