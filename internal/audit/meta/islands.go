package meta

import (
	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// IslandCorpus builds a deliberately fragmented corpus: n small worlds
// generated in disjoint identifier bands (topo.GenConfig.Island), their
// traces concatenated into one dataset and their announcements merged
// into one origin table. No trace ever crosses two islands — the bands
// share no addresses and no ASes — so the evidence decomposes into at
// least n closed inference components. These are the non-vacuous seeds
// of the partitioned-fixpoint oracle: a corpus where the component
// scheduler genuinely runs several sub-fixpoints.
func IslandCorpus(seed int64, n int) (*trace.Dataset, core.Config) {
	ds := &trace.Dataset{}
	var anns []bgp.Announcement
	for k := 0; k < n; k++ {
		gc := topo.SmallGenConfig()
		gc.Seed = seed + int64(k)
		gc.Island = k
		w := topo.Generate(gc)
		tc := topo.DefaultTraceConfig()
		tc.Seed = seed + 100 + int64(k)
		tc.DestsPerMonitor = 200
		d := w.GenTraces(tc)
		ds.Traces = append(ds.Traces, d.Traces...)
		anns = append(anns, w.Announcements...)
	}
	return ds, core.Config{IP2AS: bgp.NewTable(anns), F: 0.5}
}
