package meta

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mapit/internal/audit"
)

var update = flag.Bool("update", false, "rewrite the golden snapshots under testdata/")

// TestGoldenCorpus pins the end-to-end pipeline output for three seeded
// worlds. Each case runs under the exhaustive auditor (so the corpus
// doubles as an invariant regression net) and its Snapshot must match
// the checked-in golden byte for byte. Regenerate intentionally with
//
//	go test ./internal/audit/meta -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		name    string
		profile Profile
		seed    int64
	}{
		{"clean", Clean, 11},
		{"artifact", ArtifactHeavy, 12},
		{"ixp", IXPDense, 13},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := NewPipeline(c.profile, c.seed)
			r, err := pl.RunAudited(audit.Exhaustive)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Audit.Ok() {
				t.Fatalf("audit violations on golden world:\n%v", r.Audit.Violations)
			}
			got := fmt.Sprintf("# golden snapshot: profile=%s seed=%d\n%s",
				c.profile, c.seed, Snapshot(r))
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("snapshot diverges from %s\n%s", path, snapshotDiff(string(want), got))
			}
		})
	}
}

// snapshotDiff renders the first few differing lines of two snapshots.
func snapshotDiff(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	out := ""
	shown := 0
	for i := 0; i < max(len(wl), len(gl)) && shown < 5; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			out += fmt.Sprintf("line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
			shown++
		}
	}
	if out == "" {
		out = fmt.Sprintf("lengths differ: want %d lines, got %d", len(wl), len(gl))
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
