package meta

import (
	"cmp"
	"fmt"
	"reflect"
	"slices"

	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
	"mapit/internal/trace"
)

// DiffSnapshot compiles the pipeline's inference result into a query
// snapshot and answers every query family through both the compiled
// indexes and independent linear reference scans:
//
//   - address lookups through the 16-8-8 stride table vs Result.ByAddr,
//     for every inferred address and its ±1 neighbours (near-miss
//     aliasing is the classic stride-table bug);
//   - the prebuilt high-confidence slab vs Result.HighConfidence;
//   - AS-pair postings (both argument orders, an absent pair, and the
//     full EachLink walk) vs Result.Links;
//   - the monitor evidence index vs a from-scratch re-sanitisation of
//     the raw dataset grouped by monitor, and the parallel collector's
//     attribution vs the serial one.
//
// Any disagreement is an indexing bug: compilation must change lookup
// cost, never lookup answers.
func DiffSnapshot(pl *Pipeline) error {
	d := pl.Env.Dataset

	c := core.NewCollector()
	c.TrackMonitors()
	for _, tr := range d.Traces {
		c.Add(tr)
	}
	ev := c.Evidence()
	res, err := core.RunEvidence(ev, pl.Config())
	if err != nil {
		return err
	}
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	if err := EqualResults(base, res); err != nil {
		return fmt.Errorf("tracked collector vs baseline: %w", err)
	}
	if len(res.Inferences) == 0 {
		return fmt.Errorf("snapshot oracle is vacuous: pipeline produced no inferences")
	}
	snap := snapshot.Build(res, ev)

	if err := diffSnapshotAddrs(snap, res); err != nil {
		return err
	}
	if err := diffSnapshotLinks(snap, res); err != nil {
		return err
	}
	return diffSnapshotMonitors(snap, ev, d)
}

// diffSnapshotAddrs checks the address index and high-confidence slab.
func diffSnapshotAddrs(snap *snapshot.Snapshot, res *core.Result) error {
	if snap.Len() != len(res.Inferences) {
		return fmt.Errorf("snapshot holds %d records, result %d", snap.Len(), len(res.Inferences))
	}
	seen := make(map[inet.Addr]bool, len(res.Inferences))
	for _, inf := range res.Inferences {
		seen[inf.Addr] = true
	}
	if snap.AddrCount() != len(seen) {
		return fmt.Errorf("snapshot indexes %d addresses, result has %d", snap.AddrCount(), len(seen))
	}
	for a := range seen {
		if err := equalRows(snap.Lookup(a), res.ByAddr(a)); err != nil {
			return fmt.Errorf("lookup %v: %w", a, err)
		}
		for _, miss := range []inet.Addr{a - 1, a + 1} {
			if !seen[miss] && snap.Lookup(miss).Len() != 0 {
				return fmt.Errorf("lookup %v: hit on an uninferred neighbour of %v", miss, a)
			}
		}
	}
	if !slices.Equal(snap.HighConfidence(), res.HighConfidence()) {
		return fmt.Errorf("high-confidence slab diverges from Result.HighConfidence")
	}
	return nil
}

// equalRows compares a zero-copy row span against a reference slice.
func equalRows(rows snapshot.Rows, want []core.Inference) error {
	if rows.Len() != len(want) {
		return fmt.Errorf("%d rows, want %d", rows.Len(), len(want))
	}
	for i := range want {
		if got := rows.At(i); got != want[i] {
			return fmt.Errorf("row %d = %+v, want %+v", i, got, want[i])
		}
	}
	return nil
}

// diffSnapshotLinks checks the AS-pair postings against Result.Links.
func diffSnapshotLinks(snap *snapshot.Snapshot, res *core.Result) error {
	links := res.Links()
	if snap.LinkCount() != len(links) {
		return fmt.Errorf("snapshot has %d AS pairs, result %d", snap.LinkCount(), len(links))
	}
	for _, l := range links {
		for _, order := range [][2]inet.ASN{{l.A, l.B}, {l.B, l.A}} {
			v := snap.Links(order[0], order[1])
			if v.Len() != len(l.Addrs) {
				return fmt.Errorf("links(%v,%v): %d interfaces, want %d",
					order[0], order[1], v.Len(), len(l.Addrs))
			}
			for i, want := range l.Addrs {
				if got := v.Addr(i); got != want {
					return fmt.Errorf("links(%v,%v)[%d] = %v, want %v",
						order[0], order[1], i, got, want)
				}
				a, b := v.At(i).Link()
				if a != l.A || b != l.B {
					return fmt.Errorf("links(%v,%v)[%d]: record claims pair (%v,%v)",
						order[0], order[1], i, a, b)
				}
			}
		}
	}
	if n := snap.Links(inet.ASN(0xfffffff0), inet.ASN(0xfffffff1)).Len(); n != 0 {
		return fmt.Errorf("absent AS pair resolved to %d interfaces", n)
	}
	i := 0
	var walkErr error
	snap.EachLink(func(a, b inet.ASN, v snapshot.Link) bool {
		if i >= len(links) || a != links[i].A || b != links[i].B || v.Len() != len(links[i].Addrs) {
			walkErr = fmt.Errorf("EachLink[%d] = (%v,%v,%d) diverges from Result.Links", i, a, b, v.Len())
			return false
		}
		i++
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	if i != len(links) {
		return fmt.Errorf("EachLink visited %d pairs, want %d", i, len(links))
	}
	return nil
}

// diffSnapshotMonitors checks the monitor index against a from-scratch
// reference attribution and against the parallel collector.
func diffSnapshotMonitors(snap *snapshot.Snapshot, ev *core.Evidence, d *trace.Dataset) error {
	ref := referenceMonitors(d)
	if len(ref) == 0 {
		return fmt.Errorf("monitor oracle is vacuous: no retained traces")
	}
	if !reflect.DeepEqual(ev.Monitors, ref) {
		return fmt.Errorf("collector attribution diverges from re-sanitised reference (%d vs %d monitors)",
			len(ev.Monitors), len(ref))
	}
	par := core.NewParallelCollector(4)
	par.TrackMonitors()
	for _, tr := range d.Traces {
		par.Add(tr)
	}
	if evPar := par.Evidence(); !reflect.DeepEqual(evPar.Monitors, ev.Monitors) {
		return fmt.Errorf("parallel collector attribution diverges from serial (%d vs %d monitors)",
			len(evPar.Monitors), len(ev.Monitors))
	}
	if snap.MonitorCount() != len(ref) {
		return fmt.Errorf("snapshot indexes %d monitors, want %d", snap.MonitorCount(), len(ref))
	}
	for i, want := range ref {
		if name := snap.MonitorName(i); name != want.Monitor {
			return fmt.Errorf("monitor[%d] named %q, want %q", i, name, want.Monitor)
		}
		m, ok := snap.MonitorEvidence(want.Monitor)
		if !ok {
			return fmt.Errorf("monitor %q missing from snapshot", want.Monitor)
		}
		if m.Traces() != want.Traces || m.Len() != len(want.Adjacencies) {
			return fmt.Errorf("monitor %q: (%d traces, %d adjacencies), want (%d, %d)",
				want.Monitor, m.Traces(), m.Len(), want.Traces, len(want.Adjacencies))
		}
		for j := range want.Adjacencies {
			if m.At(j) != want.Adjacencies[j] {
				return fmt.Errorf("monitor %q adjacency[%d] = %v, want %v",
					want.Monitor, j, m.At(j), want.Adjacencies[j])
			}
		}
	}
	if _, ok := snap.MonitorEvidence("\x00no-such-monitor"); ok {
		return fmt.Errorf("unknown monitor resolved")
	}
	return nil
}

// referenceMonitors re-derives per-monitor attribution from the raw
// dataset, independently of the collector: sanitise each trace, group
// retained ones by monitor, dedup adjacencies per monitor, and emit in
// the evidence order (monitors by name, adjacencies by value).
func referenceMonitors(d *trace.Dataset) []core.MonitorEvidence {
	type acc struct {
		traces int
		adjs   map[trace.Adjacency]struct{}
	}
	byMon := map[string]*acc{}
	for _, t := range d.Traces {
		clean, res := trace.Sanitize(t)
		if res.Discarded {
			continue
		}
		a := byMon[t.Monitor]
		if a == nil {
			a = &acc{adjs: map[trace.Adjacency]struct{}{}}
			byMon[t.Monitor] = a
		}
		a.traces++
		for _, adj := range trace.Adjacencies(clean, nil) {
			a.adjs[adj] = struct{}{}
		}
	}
	out := make([]core.MonitorEvidence, 0, len(byMon))
	for name, a := range byMon {
		adjs := make([]trace.Adjacency, 0, len(a.adjs))
		for adj := range a.adjs {
			adjs = append(adjs, adj)
		}
		slices.SortFunc(adjs, func(x, y trace.Adjacency) int {
			if c := cmp.Compare(x.First, y.First); c != 0 {
				return c
			}
			return cmp.Compare(x.Second, y.Second)
		})
		out = append(out, core.MonitorEvidence{Monitor: name, Traces: a.traces, Adjacencies: adjs})
	}
	slices.SortFunc(out, func(x, y core.MonitorEvidence) int {
		return cmp.Compare(x.Monitor, y.Monitor)
	})
	return out
}
