package meta

import (
	"fmt"
	"strings"

	"mapit/internal/core"
)

// Snapshot renders a Result in the stable line-oriented text format the
// golden corpus under testdata/ is stored in. The format is exhaustive
// — every inference record, probe suggestion, aggregated AS link, and
// diagnostic counter — so any behavioural drift in the pipeline shows
// up as a golden diff, and ordered, so two identical Results always
// render identically.
func Snapshot(r *core.Result) string {
	var b strings.Builder
	d := r.Diag
	fmt.Fprintf(&b, "diag iterations=%d add_passes=%d remove_passes=%d interfaces=%d\n",
		d.Iterations, d.AddPasses, d.RemovePasses, d.Interfaces)
	fmt.Fprintf(&b, "diag eligible_f=%d eligible_b=%d overlap=%d slash31=%.6f\n",
		d.EligibleForward, d.EligibleBackward, d.BothNsOverlap, d.Slash31Fraction)
	fmt.Fprintf(&b, "diag dual=%d dual_same_as=%d divergent=%d inverse_discarded=%d uncertain_pairs=%d\n",
		d.DualResolved, d.DualSameAS, d.DivergentOtherSides, d.InverseDiscarded, d.UncertainPairs)
	fmt.Fprintf(&b, "diag demoted=%d stubs=%d audit_violations=%d\n",
		d.Demoted, d.StubInferences, d.AuditViolations)
	for _, inf := range r.Inferences {
		fmt.Fprintf(&b, "inference %s_%c local=%d connected=%d other=%s",
			inf.Addr, dirChar(inf.Dir), uint32(inf.Local), uint32(inf.Connected), inf.OtherSide)
		if inf.Uncertain {
			b.WriteString(" uncertain")
		}
		if inf.Stub {
			b.WriteString(" stub")
		}
		if inf.Indirect {
			b.WriteString(" indirect")
		}
		b.WriteByte('\n')
	}
	for _, l := range r.Links() {
		fmt.Fprintf(&b, "link %d-%d addrs=%d\n", uint32(l.A), uint32(l.B), len(l.Addrs))
	}
	for _, s := range r.ProbeSuggestions {
		fmt.Fprintf(&b, "suggest %s_%c neighbor=%s local=%d neighbor_as=%d\n",
			s.Addr, dirChar(s.Dir), s.Neighbor, uint32(s.LocalAS), uint32(s.NeighborAS))
	}
	return b.String()
}

func dirChar(d core.Direction) byte {
	if d == core.Forward {
		return 'f'
	}
	return 'b'
}
