package meta

import (
	"fmt"
	"slices"

	"mapit/internal/bgp"
	"mapit/internal/core"
	"mapit/internal/topo"
	"mapit/internal/trace"
)

// Metamorphic property drivers. Each takes a prepared Pipeline, applies
// one input transformation, reruns the full inference, and returns an
// error describing the first divergence from the expected relation
// (nil = property holds).

// CheckTraceOrderInvariance: shuffling the trace order changes nothing —
// evidence collection builds sets and the engine is deterministic in
// the evidence.
func CheckTraceOrderInvariance(pl *Pipeline, seed int64) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	perm := trace.Permute(pl.Env.Dataset, seed)
	got, err := core.Run(perm.Sanitize(), pl.Config())
	if err != nil {
		return err
	}
	if err := EqualResults(base, got); err != nil {
		return fmt.Errorf("trace-order permutation (seed %d): %w", seed, err)
	}
	return nil
}

// CheckMonitorRelabelInvariance: monitor names never feed the
// algorithm, so renaming every vantage point changes nothing.
func CheckMonitorRelabelInvariance(pl *Pipeline) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	relabeled := trace.RelabelMonitors(pl.Env.Dataset, func(m string) string {
		return "renamed-" + m + "-vp"
	})
	got, err := core.Run(relabeled.Sanitize(), pl.Config())
	if err != nil {
		return err
	}
	if err := EqualResults(base, got); err != nil {
		return fmt.Errorf("monitor relabeling: %w", err)
	}
	return nil
}

// CheckDuplicateIdempotence: ingesting every trace n times changes
// nothing — adjacency evidence deduplicates. Sanitisation statistics DO
// scale with the duplication, so the comparison reruns the baseline
// evidence through the same path and compares inference output plus
// the evidence itself rather than Stats-bearing diagnostics.
func CheckDuplicateIdempotence(pl *Pipeline, n int) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	dup := trace.Duplicate(pl.Env.Dataset, n)
	s := dup.Sanitize()
	evBase := core.EvidenceFrom(pl.Env.Sanitized)
	evDup := core.EvidenceFrom(s)
	if !slices.Equal(evBase.Adjacencies, evDup.Adjacencies) {
		return fmt.Errorf("duplicate x%d: adjacency evidence diverges (%d vs %d)",
			n, len(evBase.Adjacencies), len(evDup.Adjacencies))
	}
	if len(evBase.AllAddrs) != len(evDup.AllAddrs) {
		return fmt.Errorf("duplicate x%d: address universe diverges (%d vs %d)",
			n, len(evBase.AllAddrs), len(evDup.AllAddrs))
	}
	got, err := core.Run(s, pl.Config())
	if err != nil {
		return err
	}
	if !slices.Equal(base.Inferences, got.Inferences) ||
		!slices.Equal(base.ProbeSuggestions, got.ProbeSuggestions) {
		return fmt.Errorf("duplicate x%d: inference output diverges", n)
	}
	return nil
}

// CheckSubsetEvidenceMonotone: a trace subset yields an evidence subset
// — every address and adjacency distilled from a subsample must appear
// in the full dataset's evidence. (Inference-level monotonicity does
// NOT hold — removing evidence can flip elections either way — which is
// precisely why the property is stated at the evidence layer.)
func CheckSubsetEvidenceMonotone(pl *Pipeline, stride int) error {
	full := core.EvidenceFrom(pl.Env.Sanitized)
	for offset := 0; offset < stride; offset++ {
		sub := trace.Subsample(pl.Env.Dataset, stride, offset)
		ev := core.EvidenceFrom(sub.Sanitize())
		for a := range ev.AllAddrs {
			if !full.AllAddrs.Contains(a) {
				return fmt.Errorf("subset 1/%d+%d: address %v not in full evidence", stride, offset, a)
			}
		}
		i := 0
		for _, adj := range ev.Adjacencies {
			// Both lists are sorted: a linear merge proves containment.
			for i < len(full.Adjacencies) && full.Adjacencies[i] != adj {
				i++
			}
			if i == len(full.Adjacencies) {
				return fmt.Errorf("subset 1/%d+%d: adjacency %v not in full evidence",
					stride, offset, adj)
			}
			i++
		}
	}
	return nil
}

// CheckASNRenumbering: applying one order-preserving ASN bijection to
// every public input (BGP paths, siblings, relationships, IXP ASNs)
// renumbers the output through the same bijection and changes nothing
// else. Order preservation matters: the election tie-break and the
// intern order both compare ASN values.
func CheckASNRenumbering(pl *Pipeline, seed int64) error {
	base, err := pl.Baseline()
	if err != nil {
		return err
	}
	w := pl.Env.World
	m := topo.MonotoneASNMap(w.AllASNs(), seed)
	cfg := pl.Config()
	cfg.IP2AS = bgp.NewTable(topo.RemapAnnouncements(w.Announcements, m))
	cfg.Orgs = topo.RemapOrgs(pl.Env.Orgs, m)
	cfg.Rels = topo.RemapRels(pl.Env.Rels, m)
	cfg.IXP = topo.RemapIXP(pl.Env.IXP, m)
	got, err := core.Run(pl.Env.Sanitized, cfg)
	if err != nil {
		return err
	}

	want := make([]core.Inference, len(base.Inferences))
	for i, inf := range base.Inferences {
		if v, ok := m[inf.Local]; ok {
			inf.Local = v
		}
		if v, ok := m[inf.Connected]; ok {
			inf.Connected = v
		}
		want[i] = inf
	}
	if !slices.Equal(want, got.Inferences) {
		return fmt.Errorf("ASN renumbering (seed %d): inferences diverge (first mismatch %s)",
			seed, firstInferenceDiff(want, got.Inferences))
	}
	wantSug := make([]core.ProbeSuggestion, len(base.ProbeSuggestions))
	for i, s := range base.ProbeSuggestions {
		if v, ok := m[s.LocalAS]; ok {
			s.LocalAS = v
		}
		if v, ok := m[s.NeighborAS]; ok {
			s.NeighborAS = v
		}
		wantSug[i] = s
	}
	if !slices.Equal(wantSug, got.ProbeSuggestions) {
		return fmt.Errorf("ASN renumbering (seed %d): probe suggestions diverge", seed)
	}
	if base.Diag != got.Diag {
		return fmt.Errorf("ASN renumbering (seed %d): diagnostics diverge:\n  base: %+v\n  got:  %+v",
			seed, base.Diag, got.Diag)
	}
	return nil
}
