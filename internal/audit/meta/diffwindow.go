package meta

import (
	"fmt"
	"slices"
	"time"

	"mapit/internal/audit"
	"mapit/internal/core"
	"mapit/internal/trace"
)

// Window replay geometry: traces are stamped across [0, windowSpan)
// and the window slides from the first step boundary until every trace
// has expired, so the oracle visits growing, full, shrinking and empty
// window positions.
const (
	windowLength = 100 // seconds retained
	windowSpan   = 300 // seconds the corpus covers
	windowStep   = 50  // seconds between compared positions
)

// DiffWindow is the sliding-window differential oracle: the pipeline's
// raw traces are deterministically timestamped, replayed through a
// core.Window — with the exhaustive runtime auditor attached to every
// recompute — and at every step boundary the windowed Result and
// materialised Evidence must be byte-identical to a from-scratch batch
// run over exactly the traces resident at that position. The refcounted
// add/remove evidence maintenance is the implementation under test; the
// fresh Collector per position is the independent reference.
func DiffWindow(pl *Pipeline) error {
	d := pl.Env.Dataset
	traces := slices.Clone(d.Traces)
	n := int64(len(traces))
	if n == 0 {
		return fmt.Errorf("window oracle: empty dataset")
	}
	for i := range traces {
		traces[i].Time = int64(i) * windowSpan / n
	}

	cfg := pl.Config()
	winCfg := cfg
	winCfg.Audit = &audit.Checker{Mode: audit.Exhaustive}
	win, err := core.NewWindow(core.WindowOptions{
		Length:        windowLength * time.Second,
		Config:        winCfg,
		TrackMonitors: true,
	})
	if err != nil {
		return err
	}

	next := 0 // first not-yet-observed trace (times are non-decreasing)
	for now := int64(windowStep); now <= windowSpan+windowLength; now += windowStep {
		for next < len(traces) && traces[next].Time <= now {
			win.Observe(traces[next])
			next++
		}
		res, err := win.Advance(now)
		if err != nil {
			return fmt.Errorf("window oracle: advance to %d: %w", now, err)
		}
		if res.Audit == nil || res.Audit.Checks == 0 {
			return fmt.Errorf("window oracle: now=%d: auditor did not run", now)
		}
		if !res.Audit.Ok() {
			return fmt.Errorf("window oracle: now=%d: audit violations:\n%s\n%v",
				now, res.Audit, res.Audit.Violations)
		}
		if err := diffWindowPosition(win, res, traces, now, cfg); err != nil {
			return fmt.Errorf("window oracle: now=%d: %w", now, err)
		}
	}

	st := win.Stats()
	if st.TracesObserved != n || st.TracesExpired != n || st.TracesActive != 0 {
		return fmt.Errorf("window oracle: lifetime counters inconsistent: %s", st)
	}
	if st.LinkBirths != st.LinkDeaths || st.ActiveLinks != 0 {
		return fmt.Errorf("window oracle: link churn did not return to empty: %s", st)
	}
	return nil
}

// diffWindowPosition checks one window position against the batch
// reference: a fresh Collector fed only the resident traces.
func diffWindowPosition(win *core.Window, res *core.Result, traces []trace.Trace, now int64, cfg core.Config) error {
	ref := core.NewCollector()
	ref.TrackMonitors()
	resident := 0
	for _, tr := range traces {
		if tr.Time > now-windowLength && tr.Time <= now {
			ref.Add(tr)
			resident++
		}
	}
	evRef := ref.Evidence()
	ev := win.Evidence()

	if win.Traces() != resident {
		return fmt.Errorf("residency diverges: window holds %d, reference %d", win.Traces(), resident)
	}
	if err := equalEvidence("window vs batch collector", ev, evRef); err != nil {
		return err
	}
	if ev.Stats != evRef.Stats {
		return fmt.Errorf("evidence stats diverge:\n  window: %+v\n  batch: %+v", ev.Stats, evRef.Stats)
	}
	if err := equalMonitorEvidence(ev.Monitors, evRef.Monitors); err != nil {
		return err
	}

	refRes, err := core.RunEvidence(evRef, cfg)
	if err != nil {
		return err
	}
	// Diag.Window is the streaming engine's own telemetry; the batch
	// reference cannot carry it, so it is zeroed on a copy before the
	// byte-identity comparison.
	cmp := *res
	cmp.Diag.Window = core.WindowStats{}
	if err := EqualResults(&cmp, refRes); err != nil {
		return fmt.Errorf("windowed vs batch result: %w", err)
	}
	return nil
}

// equalMonitorEvidence compares per-vantage-point attribution lists in
// their canonical (sorted) order.
func equalMonitorEvidence(a, b []core.MonitorEvidence) error {
	if len(a) != len(b) {
		return fmt.Errorf("monitor evidence diverges: %d vs %d monitors", len(a), len(b))
	}
	for i := range a {
		if a[i].Monitor != b[i].Monitor || a[i].Traces != b[i].Traces ||
			!slices.Equal(a[i].Adjacencies, b[i].Adjacencies) {
			return fmt.Errorf("monitor evidence diverges at %q: %d traces / %d adjs vs %q: %d traces / %d adjs",
				a[i].Monitor, a[i].Traces, len(a[i].Adjacencies),
				b[i].Monitor, b[i].Traces, len(b[i].Adjacencies))
		}
	}
	return nil
}
