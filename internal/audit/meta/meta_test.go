package meta

import (
	"testing"

	"mapit/internal/audit"
)

// matrixSeeds returns the seed list for the full matrices, trimmed
// under -short so the harness stays cheap in quick CI passes.
func matrixSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// TestExhaustiveAuditMatrix is the headline invariant sweep: every seed
// × profile pipeline runs under the exhaustive runtime auditor and must
// come back violation-free. Run under -race in CI.
func TestExhaustiveAuditMatrix(t *testing.T) {
	for _, profile := range []Profile{Clean, ArtifactHeavy} {
		for _, seed := range matrixSeeds(t) {
			pl := NewPipeline(profile, seed)
			t.Run(pl.Name(), func(t *testing.T) {
				r, err := pl.RunAudited(audit.Exhaustive)
				if err != nil {
					t.Fatal(err)
				}
				if r.Audit == nil || r.Audit.Checks == 0 {
					t.Fatal("audit did not run")
				}
				if !r.Audit.Ok() {
					t.Fatalf("audit violations:\n%s\n%v", r.Audit, r.Audit.Violations)
				}
			})
		}
	}
	// IXP-dense worlds are slower to generate; audit a couple of seeds.
	for _, seed := range []int64{1, 2} {
		pl := NewPipeline(IXPDense, seed)
		t.Run(pl.Name(), func(t *testing.T) {
			r, err := pl.RunAudited(audit.Exhaustive)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Audit.Ok() {
				t.Fatalf("audit violations:\n%s\n%v", r.Audit, r.Audit.Violations)
			}
		})
	}
}

// TestMetamorphicProperties runs every metamorphic driver over the seed
// × profile matrix.
func TestMetamorphicProperties(t *testing.T) {
	seeds := matrixSeeds(t)
	if !testing.Short() {
		seeds = seeds[:4] // 4 seeds × 3 profiles × 5 properties is plenty
	}
	for _, profile := range Profiles {
		for _, seed := range seeds {
			pl := NewPipeline(profile, seed)
			t.Run(pl.Name(), func(t *testing.T) {
				checks := []struct {
					name string
					fn   func() error
				}{
					{"trace-order", func() error { return CheckTraceOrderInvariance(pl, seed+77) }},
					{"monitor-relabel", func() error { return CheckMonitorRelabelInvariance(pl) }},
					{"duplicate", func() error { return CheckDuplicateIdempotence(pl, 3) }},
					{"subset-monotone", func() error { return CheckSubsetEvidenceMonotone(pl, 4) }},
					{"asn-renumbering", func() error { return CheckASNRenumbering(pl, seed+177) }},
				}
				for _, c := range checks {
					t.Run(c.name, func(t *testing.T) {
						if err := c.fn(); err != nil {
							t.Fatal(err)
						}
					})
				}
			})
		}
	}
}

// TestDifferentialOracles runs the implementation-pair oracles over the
// seed × profile matrix.
func TestDifferentialOracles(t *testing.T) {
	seeds := matrixSeeds(t)
	if !testing.Short() {
		seeds = seeds[:4]
	}
	for _, profile := range Profiles {
		for _, seed := range seeds {
			pl := NewPipeline(profile, seed)
			t.Run(pl.Name(), func(t *testing.T) {
				oracles := []struct {
					name string
					fn   func(*Pipeline) error
				}{
					{"ingest", DiffIngest},
					{"spill", DiffSpill},
					{"incremental", DiffIncremental},
					{"lpm", DiffLPM},
					{"binary-roundtrip", DiffBinaryRoundTrip},
					{"partition", DiffPartition},
					{"snapshot", DiffSnapshot},
					{"window", DiffWindow},
				}
				for _, o := range oracles {
					t.Run(o.name, func(t *testing.T) {
						if err := o.fn(pl); err != nil {
							t.Fatal(err)
						}
					})
				}
			})
		}
	}
}

// TestProfilesDiffer guards the profile knobs: the three profiles must
// actually generate different worlds (identical outputs would mean the
// matrix multiplies cost without multiplying coverage).
func TestProfilesDiffer(t *testing.T) {
	snaps := map[Profile]string{}
	for _, p := range Profiles {
		pl := NewPipeline(p, 1)
		r, err := pl.Baseline()
		if err != nil {
			t.Fatal(err)
		}
		snaps[p] = Snapshot(r)
	}
	if snaps[Clean] == snaps[ArtifactHeavy] || snaps[Clean] == snaps[IXPDense] ||
		snaps[ArtifactHeavy] == snaps[IXPDense] {
		t.Fatal("two profiles produced identical snapshots")
	}
}
