// Package meta is the metamorphic and differential verification harness
// (DESIGN.md §10). It drives full MAP-IT pipelines over seeded synthetic
// worlds and asserts two kinds of oracle-free correctness evidence:
//
//   - metamorphic properties: input transformations under which the
//     inference output is provably invariant (trace-order permutation,
//     monitor relabeling, duplicate ingestion, order-preserving ASN
//     renumbering) or related by a known containment (trace subsetting);
//
//   - differential oracles: independent implementations of the same
//     pipeline stage (serial vs parallel ingest, out-of-core spilling
//     vs in-memory collection, incremental vs full-rescan fixpoint,
//     trie vs compiled LPM, binary format round-trips, sliding-window
//     streaming vs from-scratch batch runs) whose Results must be
//     byte-identical.
//
// The harness complements the runtime invariant auditor (package audit,
// wired through core.Config.Audit): the auditor cross-checks internal
// machinery while a run executes; this package cross-checks whole runs
// against each other.
package meta

import (
	"fmt"

	"mapit/internal/audit"
	"mapit/internal/core"
	"mapit/internal/eval"
)

// Profile selects a world family for the seed matrix. The three
// profiles stress different code paths: Clean exercises the pure
// algorithm with every artifact knob zeroed, ArtifactHeavy saturates
// the §4.1 sanitisation and §4.4 resolution machinery, and IXPDense
// routes a large share of inter-AS links through exchange fabrics
// (§4.4.2 fn7 handling).
type Profile string

const (
	Clean         Profile = "clean"
	ArtifactHeavy Profile = "artifact"
	IXPDense      Profile = "ixp"
)

// Profiles lists every profile in matrix order.
var Profiles = []Profile{Clean, ArtifactHeavy, IXPDense}

// EnvConfig builds the eval environment configuration for a profile and
// seed. Worlds are small enough that a full pipeline runs in tens of
// milliseconds, so matrices of them stay cheap under -race.
func (p Profile) EnvConfig(seed int64) eval.EnvConfig {
	c := eval.SmallEnvConfig()
	c.Workers = 4
	c.Gen.Seed = seed
	c.Trace.Seed = seed + 1000
	c.Meta.Seed = seed + 2000
	c.Trace.DestsPerMonitor = 250
	switch p {
	case Clean:
		c.Gen.UnresponsiveRouterProb = 0
		c.Gen.BuggyRouterProb = 0
		c.Gen.SilentBorderASFrac = 0
		c.Gen.NATStubFrac = 0
		c.Gen.UnannouncedASFrac = 0
		c.Gen.MOASFrac = 0
		c.Trace.PerPacketLBProb = 0
		c.Trace.RouteChangeProb = 0
		c.Trace.ThirdPartyProb = 0
		c.Meta.MissingSiblingFrac = 0
		c.Meta.MissingRelFrac = 0
		c.Meta.MissingIXPPrefixFrac = 0
	case ArtifactHeavy:
		c.Gen.UnresponsiveRouterProb = 0.06
		c.Gen.BuggyRouterProb = 0.04
		c.Gen.SilentBorderASFrac = 0.08
		c.Gen.NATStubFrac = 0.25
		c.Gen.MOASFrac = 0.08
		c.Trace.PerPacketLBProb = 0.05
		c.Trace.RouteChangeProb = 0.04
		c.Trace.ThirdPartyProb = 0.015
		c.Meta.MissingSiblingFrac = 0.3
		c.Meta.MissingRelFrac = 0.15
		c.Meta.MissingIXPPrefixFrac = 0.25
	case IXPDense:
		c.Gen.IXPs = 5
		c.Gen.IXPPeeringFrac = 0.85
	}
	return c
}

// Pipeline is one fully prepared world plus the run parameters every
// driver in this package shares. Baseline results are memoised so a
// test exercising several properties over one world runs the reference
// inference once.
type Pipeline struct {
	Seed    int64
	Profile Profile
	Env     *eval.Env
	F       float64

	baseline *core.Result
}

// NewPipeline generates the world for (profile, seed).
func NewPipeline(p Profile, seed int64) *Pipeline {
	return &Pipeline{
		Seed:    seed,
		Profile: p,
		Env:     eval.NewEnv(p.EnvConfig(seed)),
		F:       0.5,
	}
}

// Name labels the pipeline in test output.
func (pl *Pipeline) Name() string {
	return fmt.Sprintf("%s/seed=%d", pl.Profile, pl.Seed)
}

// Config returns the core configuration for this pipeline's runs.
func (pl *Pipeline) Config() core.Config {
	return pl.Env.Config(pl.F)
}

// Run executes MAP-IT over the pipeline's sanitised dataset.
func (pl *Pipeline) Run() (*core.Result, error) {
	return core.Run(pl.Env.Sanitized, pl.Config())
}

// RunAudited executes the pipeline under the runtime invariant auditor.
func (pl *Pipeline) RunAudited(mode audit.Mode) (*core.Result, error) {
	cfg := pl.Config()
	cfg.Audit = &audit.Checker{Mode: mode}
	return core.Run(pl.Env.Sanitized, cfg)
}

// Baseline returns the memoised reference result.
func (pl *Pipeline) Baseline() (*core.Result, error) {
	if pl.baseline != nil {
		return pl.baseline, nil
	}
	r, err := pl.Run()
	if err != nil {
		return nil, err
	}
	pl.baseline = r
	return r, nil
}
