package meta

import (
	"fmt"
	"slices"

	"mapit/internal/core"
)

// EqualResults reports whether two runs produced byte-identical output:
// the full inference list, every diagnostic counter, and the probe
// suggestions. The attached audit report (if any) is deliberately
// excluded — it describes the run, not the inference.
func EqualResults(a, b *core.Result) error {
	if !slices.Equal(a.Inferences, b.Inferences) {
		return fmt.Errorf("inferences diverge: %d vs %d records (first mismatch %v)",
			len(a.Inferences), len(b.Inferences), firstInferenceDiff(a.Inferences, b.Inferences))
	}
	if a.Diag != b.Diag {
		return fmt.Errorf("diagnostics diverge:\n  a: %+v\n  b: %+v", a.Diag, b.Diag)
	}
	if !slices.Equal(a.ProbeSuggestions, b.ProbeSuggestions) {
		return fmt.Errorf("probe suggestions diverge: %d vs %d",
			len(a.ProbeSuggestions), len(b.ProbeSuggestions))
	}
	return nil
}

// firstInferenceDiff pinpoints the first record where the lists differ,
// for readable failure output.
func firstInferenceDiff(a, b []core.Inference) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("at %d (length)", n)
}
