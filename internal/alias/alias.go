// Package alias simulates the alias-resolution pipelines behind CAIDA's
// Internet Topology Data Kit, which the paper compares against (§5.6):
// iffinder (common source address), MIDAR (monotonic IP-ID velocity) and
// kapar (analytical subnet/graph inference). Real alias resolution is a
// measurement campaign against live routers; here each technique is
// modelled by its empirically reported behaviour — a per-pair chance of
// discovering a true alias and a per-link chance of falsely merging
// interfaces of adjacent routers — applied to the world's ground truth.
// That preserves exactly what the comparison needs: router graphs whose
// aggregation quality matches each tool's published character, feeding
// the same router-to-AS election heuristics (Huffaker et al.) the ITDK
// uses.
package alias

import (
	"cmp"
	"math/rand"
	"slices"

	"mapit/internal/inet"
	"mapit/internal/topo"
)

// Technique models one alias-resolution tool.
type Technique struct {
	Name string
	// PairRecall is the probability a true alias pair (two observed
	// interfaces on one router) is discovered.
	PairRecall float64
	// FalseMerge is the per-link probability that the two endpoint
	// interfaces of a link are wrongly declared aliases (they sit on
	// adjacent routers, the classic analytical-resolution mistake).
	FalseMerge float64
}

// The modelled tool suite. MIDAR is precise but partial; iffinder adds a
// little recall at high precision; kapar aggressively completes the graph
// analytically and pays for it in false merges — matching the paper's
// observation that ITDK-Kapar is less accurate than ITDK-MIDAR.
var (
	MIDAR    = Technique{Name: "midar", PairRecall: 0.55, FalseMerge: 0.01}
	IFFinder = Technique{Name: "iffinder", PairRecall: 0.25, FalseMerge: 0.005}
	Kapar    = Technique{Name: "kapar", PairRecall: 0.80, FalseMerge: 0.10}
)

// RouterGraph is an inferred partition of observed interface addresses
// into routers.
type RouterGraph struct {
	parent map[inet.Addr]inet.Addr
	rank   map[inet.Addr]int
}

func newRouterGraph() *RouterGraph {
	return &RouterGraph{
		parent: make(map[inet.Addr]inet.Addr),
		rank:   make(map[inet.Addr]int),
	}
}

func (g *RouterGraph) ensure(a inet.Addr) {
	if _, ok := g.parent[a]; !ok {
		g.parent[a] = a
	}
}

// Find returns the canonical representative of a's inferred router.
func (g *RouterGraph) Find(a inet.Addr) inet.Addr {
	p, ok := g.parent[a]
	if !ok || p == a {
		return a
	}
	root := g.Find(p)
	g.parent[a] = root
	return root
}

// Merge declares two addresses aliases.
func (g *RouterGraph) Merge(a, b inet.Addr) {
	g.ensure(a)
	g.ensure(b)
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return
	}
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
}

// SameRouter reports whether two addresses were resolved to one router.
func (g *RouterGraph) SameRouter(a, b inet.Addr) bool {
	return g.Find(a) == g.Find(b)
}

// Routers returns the inferred routers as sorted member lists.
func (g *RouterGraph) Routers() [][]inet.Addr {
	members := make(map[inet.Addr][]inet.Addr)
	for a := range g.parent {
		members[g.Find(a)] = append(members[g.Find(a)], a)
	}
	out := make([][]inet.Addr, 0, len(members))
	for _, m := range members {
		slices.Sort(m)
		out = append(out, m)
	}
	slices.SortFunc(out, func(a, b []inet.Addr) int { return cmp.Compare(a[0], b[0]) })
	return out
}

// Resolve runs the given techniques over the observed addresses of the
// world and returns the inferred router graph. Deterministic in seed.
func Resolve(w *topo.World, observed inet.AddrSet, seed int64, techniques ...Technique) *RouterGraph {
	g := newRouterGraph()
	rng := rand.New(rand.NewSource(seed))

	// Deterministic iteration: routers in ID order, interfaces in
	// address order.
	type routerIfaces struct {
		id    int
		addrs []inet.Addr
	}
	var routers []routerIfaces
	for _, as := range w.ASes {
		for _, r := range as.Routers {
			ri := routerIfaces{id: r.ID}
			for _, i := range r.Ifaces {
				if observed.Contains(i.Addr) {
					ri.addrs = append(ri.addrs, i.Addr)
				}
			}
			if len(ri.addrs) > 0 {
				slices.Sort(ri.addrs)
				routers = append(routers, ri)
			}
		}
	}
	slices.SortFunc(routers, func(a, b routerIfaces) int { return cmp.Compare(a.id, b.id) })

	for _, tq := range techniques {
		// True alias discovery.
		for _, r := range routers {
			for i := 0; i < len(r.addrs); i++ {
				for j := i + 1; j < len(r.addrs); j++ {
					if rng.Float64() < tq.PairRecall {
						g.Merge(r.addrs[i], r.addrs[j])
					}
				}
			}
		}
		// False merges across links.
		for _, l := range w.Links {
			if !observed.Contains(l.A.Addr) || !observed.Contains(l.B.Addr) {
				continue
			}
			if rng.Float64() < tq.FalseMerge {
				g.Merge(l.A.Addr, l.B.Addr)
			}
		}
	}
	// Every observed address is at least a singleton node.
	for a := range observed {
		g.ensure(a)
	}
	return g
}

// IP2AS resolves an address to an origin AS (the bgp.Table shape).
type IP2AS interface {
	Lookup(inet.Addr) (inet.ASN, bool)
}

// AssignAS elects an AS per inferred router: the origin announcing the
// plurality of its interface addresses wins, ties to the lowest ASN —
// the single-origin election at the heart of the Huffaker et al.
// router-to-AS heuristics the ITDK uses.
func (g *RouterGraph) AssignAS(ip2as IP2AS) map[inet.Addr]inet.ASN {
	out := make(map[inet.Addr]inet.ASN)
	for _, members := range g.Routers() {
		votes := make(map[inet.ASN]int)
		for _, a := range members {
			if asn, ok := ip2as.Lookup(a); ok {
				votes[asn]++
			}
		}
		var asns []inet.ASN
		for a := range votes {
			asns = append(asns, a)
		}
		slices.Sort(asns)
		best, bestVotes := inet.ASN(0), 0
		for _, a := range asns {
			if votes[a] > bestVotes {
				best, bestVotes = a, votes[a]
			}
		}
		if best.IsZero() {
			continue
		}
		out[g.Find(members[0])] = best
	}
	return out
}
