package alias

import (
	"testing"

	"mapit/internal/bgp"
	"mapit/internal/inet"
	"mapit/internal/topo"
)

func observedAll(w *topo.World) inet.AddrSet {
	s := make(inet.AddrSet)
	for a := range w.Ifaces {
		s.Add(a)
	}
	return s
}

func TestResolveDeterminism(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	obs := observedAll(w)
	g1 := Resolve(w, obs, 7, MIDAR, IFFinder)
	g2 := Resolve(w, obs, 7, MIDAR, IFFinder)
	r1, r2 := g1.Routers(), g2.Routers()
	if len(r1) != len(r2) {
		t.Fatalf("router counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if len(r1[i]) != len(r2[i]) || r1[i][0] != r2[i][0] {
			t.Fatalf("router %d differs", i)
		}
	}
}

func TestResolveQuality(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	obs := observedAll(w)
	midar := Resolve(w, obs, 7, MIDAR, IFFinder)
	kapar := Resolve(w, obs, 7, MIDAR, IFFinder, Kapar)

	// Count alias pairs found (same true router) and false merges
	// (addresses of different routers).
	quality := func(g *RouterGraph) (truePairs, falsePairs int) {
		for _, members := range g.Routers() {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					ia, ib := w.Ifaces[members[i]], w.Ifaces[members[j]]
					if ia.Router == ib.Router {
						truePairs++
					} else {
						falsePairs++
					}
				}
			}
		}
		return
	}
	mt, mf := quality(midar)
	kt, kf := quality(kapar)
	if mt == 0 {
		t.Fatal("MIDAR found no aliases")
	}
	if kt <= mt {
		t.Errorf("kapar should complete more aliases: %d <= %d", kt, mt)
	}
	if kf <= mf {
		t.Errorf("kapar should make more false merges: %d <= %d", kf, mf)
	}
	// MIDAR's precision must be high.
	if p := float64(mt) / float64(mt+mf); p < 0.9 {
		t.Errorf("MIDAR pair precision %.3f", p)
	}
	// Transitive closure sanity: routers partition the address set.
	total := 0
	for _, m := range midar.Routers() {
		total += len(m)
	}
	if total != len(obs) {
		t.Errorf("partition covers %d of %d", total, len(obs))
	}
}

func TestAssignAS(t *testing.T) {
	g := newRouterGraph()
	a1 := inet.MustParseAddr("10.0.0.1")
	a2 := inet.MustParseAddr("20.0.0.1")
	a3 := inet.MustParseAddr("20.0.0.5")
	g.Merge(a1, a2)
	g.Merge(a2, a3)
	tbl := bgp.EmptyTable()
	tbl.Add(inet.MustParsePrefix("10.0.0.0/8"), 100)
	tbl.Add(inet.MustParsePrefix("20.0.0.0/8"), 200)
	asn := g.AssignAS(tbl)
	if got := asn[g.Find(a1)]; got != 200 {
		t.Errorf("election = %v; want 200 (2 of 3 votes)", got)
	}
	// Tie: lowest ASN wins.
	g2 := newRouterGraph()
	g2.Merge(a1, a2)
	asn2 := g2.AssignAS(tbl)
	if got := asn2[g2.Find(a1)]; got != 100 {
		t.Errorf("tie election = %v; want 100", got)
	}
	// Unmapped-only router gets no assignment.
	g3 := newRouterGraph()
	x := inet.MustParseAddr("99.0.0.1")
	g3.ensure(x)
	if got := g3.AssignAS(tbl); len(got) != 0 {
		t.Errorf("unmapped router assigned: %v", got)
	}
}

func TestSameRouter(t *testing.T) {
	g := newRouterGraph()
	a := inet.MustParseAddr("1.1.1.1")
	b := inet.MustParseAddr("2.2.2.2")
	c := inet.MustParseAddr("3.3.3.3")
	g.Merge(a, b)
	g.ensure(c)
	if !g.SameRouter(a, b) || g.SameRouter(a, c) {
		t.Error("SameRouter wrong")
	}
	// Unknown addresses are their own singletons.
	if g.SameRouter(inet.MustParseAddr("4.4.4.4"), a) {
		t.Error("unknown address merged")
	}
}
