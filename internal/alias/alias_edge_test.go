package alias

import (
	"testing"

	"mapit/internal/inet"
	"mapit/internal/topo"
)

// TestResolveTechniqueExtremes pins Resolve's behaviour at the two
// degenerate technique corners: perfect recall with no false merges
// reconstructs the true router partition exactly, and a zero technique
// leaves every observed address a singleton.
func TestResolveTechniqueExtremes(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	obs := observedAll(w)
	cases := []struct {
		name string
		tq   Technique
		// exact: every inferred router matches a true router exactly.
		exact bool
		// singletons: no merges at all.
		singletons bool
	}{
		{name: "perfect", tq: Technique{Name: "oracle", PairRecall: 1, FalseMerge: 0}, exact: true},
		{name: "inert", tq: Technique{Name: "nothing", PairRecall: 0, FalseMerge: 0}, singletons: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Resolve(w, obs, 1, tc.tq)
			routers := g.Routers()
			total := 0
			for _, members := range routers {
				total += len(members)
				if tc.singletons && len(members) != 1 {
					t.Fatalf("inert technique merged %v", members)
				}
				if tc.exact {
					for _, m := range members[1:] {
						if w.Ifaces[m].Router != w.Ifaces[members[0]].Router {
							t.Fatalf("oracle merged across routers: %v", members)
						}
					}
				}
			}
			if total != len(obs) {
				t.Fatalf("partition covers %d of %d addresses", total, len(obs))
			}
			if tc.exact {
				// Count true multi-interface routers among observed
				// addresses; the oracle must reunite each of them.
				byRouter := make(map[int]int)
				for a := range obs {
					byRouter[w.Ifaces[a].Router.ID]++
				}
				want := 0
				for _, n := range byRouter {
					if n > 1 {
						want++
					}
				}
				got := 0
				for _, members := range routers {
					if len(members) > 1 {
						got++
					}
				}
				if got != want {
					t.Fatalf("oracle rebuilt %d multi-interface routers, truth has %d", got, want)
				}
			}
		})
	}
}

// TestResolveEmptyObserved: with nothing observed the graph is empty —
// no phantom routers appear.
func TestResolveEmptyObserved(t *testing.T) {
	w := topo.Generate(topo.SmallGenConfig())
	g := Resolve(w, make(inet.AddrSet), 1, Kapar)
	if n := len(g.Routers()); n != 0 {
		t.Fatalf("empty observation produced %d routers", n)
	}
}

// TestMergeEdgeCases exercises the union-find corners: self-merge,
// repeated merge, and rank-based chains staying transitive.
func TestMergeEdgeCases(t *testing.T) {
	a := inet.MustParseAddr("1.0.0.1")
	b := inet.MustParseAddr("1.0.0.2")
	c := inet.MustParseAddr("1.0.0.3")
	d := inet.MustParseAddr("1.0.0.4")

	g := newRouterGraph()
	g.Merge(a, a) // self-merge is a no-op, not a crash
	g.Merge(a, b)
	g.Merge(a, b) // repeated merge is idempotent
	g.Merge(c, d)
	g.Merge(b, c) // union of two existing trees
	for _, x := range []inet.Addr{b, c, d} {
		if !g.SameRouter(a, x) {
			t.Fatalf("transitivity broken: %v not with %v", x, a)
		}
	}
	if got := len(g.Routers()); got != 1 {
		t.Fatalf("got %d routers, want 1", got)
	}
	if members := g.Routers()[0]; len(members) != 4 || members[0] != a {
		t.Fatalf("members = %v, want sorted [a b c d]", members)
	}
}

// TestFindUnknownAddr: Find on a never-seen address returns the address
// itself and does not invent graph state.
func TestFindUnknownAddr(t *testing.T) {
	g := newRouterGraph()
	x := inet.MustParseAddr("9.9.9.9")
	if got := g.Find(x); got != x {
		t.Fatalf("Find(unknown) = %v, want identity", got)
	}
	if len(g.parent) != 0 {
		t.Fatal("Find mutated the graph")
	}
}

// mapIP2AS is a minimal IP2AS for election tests.
type mapIP2AS map[inet.Addr]inet.ASN

func (m mapIP2AS) Lookup(a inet.Addr) (inet.ASN, bool) {
	asn, ok := m[a]
	return asn, ok
}

// TestAssignASEdgeCases drives the plurality election through its tie
// and partial-resolution branches with a precise vote table.
func TestAssignASEdgeCases(t *testing.T) {
	a1 := inet.MustParseAddr("1.0.0.1")
	a2 := inet.MustParseAddr("1.0.0.2")
	a3 := inet.MustParseAddr("1.0.0.3")
	a4 := inet.MustParseAddr("1.0.0.4")
	cases := []struct {
		name  string
		votes mapIP2AS
		want  inet.ASN // 0 = no assignment
	}{
		{
			name:  "clear plurality",
			votes: mapIP2AS{a1: 7, a2: 7, a3: 7, a4: 9},
			want:  7,
		},
		{
			name:  "two-two tie goes to lowest ASN",
			votes: mapIP2AS{a1: 9, a2: 9, a3: 7, a4: 7},
			want:  7,
		},
		{
			name:  "unresolved members do not vote",
			votes: mapIP2AS{a1: 9},
			want:  9,
		},
		{
			name:  "no member resolves, router skipped",
			votes: mapIP2AS{},
			want:  0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := newRouterGraph()
			g.Merge(a1, a2)
			g.Merge(a2, a3)
			g.Merge(a3, a4)
			out := g.AssignAS(tc.votes)
			got := out[g.Find(a1)]
			if got != tc.want {
				t.Fatalf("election = %v, want %v", got, tc.want)
			}
			if tc.want == 0 && len(out) != 0 {
				t.Fatalf("vote-free router assigned: %v", out)
			}
		})
	}
}
