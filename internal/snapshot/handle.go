package snapshot

import (
	"sync/atomic"

	"mapit/internal/core"
)

// Handle is an atomic copy-on-write publication point for snapshots: a
// writer builds a new snapshot off to the side and Swaps it in; readers
// Load whatever is current and keep querying it unperturbed — a loaded
// snapshot is immutable, so nothing a reader holds is ever written
// again. The zero value is an empty handle (Load returns nil until the
// first publication).
type Handle struct {
	p atomic.Pointer[Snapshot]
}

// Load returns the currently published snapshot, or nil before the
// first Swap. Safe to call concurrently with Swap; never blocks.
func (h *Handle) Load() *Snapshot { return h.p.Load() }

// Swap publishes s (which may be nil, unpublishing) and returns the
// previous snapshot. Readers that loaded the previous snapshot keep a
// consistent view; new Loads see s.
func (h *Handle) Swap(s *Snapshot) *Snapshot { return h.p.Swap(s) }

// PublishOnStage returns a Config.OnStage hook that compiles the run
// state into a snapshot at the end of every add/remove iteration and
// after the final (stub) stage, publishing each into h — the wiring for
// a query service that follows a converging or live-ingesting run
// without ever blocking it. ev may be nil (no monitor index). Compose
// manually if another hook is also needed; setting OnStage pins the run
// to the monolithic fixpoint (see core.Config.OnStage).
func PublishOnStage(h *Handle, ev *core.Evidence) func(core.Stage, int, *core.StageSnapshot) {
	return func(stage core.Stage, _ int, ss *core.StageSnapshot) {
		if stage != core.StageIteration && stage != core.StageStub {
			return
		}
		h.Swap(Build(ss.Result(), ev))
	}
}
