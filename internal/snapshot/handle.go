package snapshot

import (
	"sync"
	"sync/atomic"

	"mapit/internal/core"
)

// published pairs a snapshot with the version its publication was
// assigned. The pair is immutable and swapped atomically, so a reader
// always observes a snapshot together with its own version — never the
// version of a concurrent publication.
type published struct {
	s       *Snapshot
	version uint64
}

// Handle is an atomic copy-on-write publication point for snapshots: a
// writer builds a new snapshot off to the side and Swaps it in; readers
// Load whatever is current and keep querying it unperturbed — a loaded
// snapshot is immutable, so nothing a reader holds is ever written
// again. Every Swap is assigned a version from a monotonically
// increasing counter (starting at 1), the cache-validation token of the
// serving layer: an HTTP response tagged with the version it was
// computed from stays provably consistent, and a paginating client can
// detect that the snapshot changed under its cursor. The zero value is
// an empty handle (Load returns nil and version 0 until the first
// publication).
type Handle struct {
	p atomic.Pointer[published]
	// mu serialises writers only: it makes version assignment and
	// pointer publication one step, so versions observed through
	// LoadVersion are monotone even under concurrent Swaps. Readers
	// never take it.
	mu  sync.Mutex
	ver uint64
}

// Load returns the currently published snapshot, or nil before the
// first Swap. Safe to call concurrently with Swap; never blocks.
func (h *Handle) Load() *Snapshot {
	s, _ := h.LoadVersion()
	return s
}

// LoadVersion returns the currently published snapshot together with
// the version its publication was assigned, or (nil, 0) before the
// first Swap. The pair is consistent: the version is the one assigned
// when exactly this snapshot was swapped in.
func (h *Handle) LoadVersion() (*Snapshot, uint64) {
	pub := h.p.Load()
	if pub == nil {
		return nil, 0
	}
	return pub.s, pub.version
}

// Swap publishes s (which may be nil, unpublishing) and returns the
// previous snapshot. Readers that loaded the previous snapshot keep a
// consistent view; new Loads see s under a freshly assigned version.
func (h *Handle) Swap(s *Snapshot) *Snapshot {
	h.mu.Lock()
	h.ver++
	prev := h.p.Swap(&published{s: s, version: h.ver})
	h.mu.Unlock()
	if prev == nil {
		return nil
	}
	return prev.s
}

// Version returns the version of the current publication, or 0 before
// the first Swap. Equivalent to the second return of LoadVersion.
func (h *Handle) Version() uint64 {
	_, v := h.LoadVersion()
	return v
}

// PublishOnStage returns a Config.OnStage hook that compiles the run
// state into a snapshot at the end of every add/remove iteration and
// after the final (stub) stage, publishing each into h — the wiring for
// a query service that follows a converging or live-ingesting run
// without ever blocking it. ev may be nil (no monitor index). Compose
// manually if another hook is also needed; setting OnStage pins the run
// to the monolithic fixpoint (see core.Config.OnStage).
func PublishOnStage(h *Handle, ev *core.Evidence) func(core.Stage, int, *core.StageSnapshot) {
	return func(stage core.Stage, _ int, ss *core.StageSnapshot) {
		if stage != core.StageIteration && stage != core.StageStub {
			return
		}
		h.Swap(Build(ss.Result(), ev))
	}
}
