package snapshot_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"mapit/internal/core"
	"mapit/internal/eval"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
)

// benchWorld generates a realistic serving corpus once per process: a
// synthetic topology's trace sweep, evidence with monitor attribution,
// the finished inference result, and its compiled snapshot.
var benchWorld = struct {
	once  sync.Once
	res   *core.Result
	ev    *core.Evidence
	snap  *snapshot.Snapshot
	addrs []inet.Addr // every inferred address plus a miss tail
}{}

func benchSetup(b *testing.B) (*snapshot.Snapshot, *core.Result, []inet.Addr) {
	benchWorld.once.Do(func() {
		env := eval.NewEnv(eval.SmallEnvConfig())
		c := core.NewCollector()
		c.TrackMonitors()
		for _, tr := range env.Dataset.Traces {
			c.Add(tr)
		}
		ev := c.Evidence()
		res, err := core.RunEvidence(ev, env.Config(0.5))
		if err != nil {
			panic(err)
		}
		benchWorld.res = res
		benchWorld.ev = ev
		benchWorld.snap = snapshot.Build(res, ev)
		seen := make(map[inet.Addr]bool, len(res.Inferences))
		for _, inf := range res.Inferences {
			if !seen[inf.Addr] {
				seen[inf.Addr] = true
				benchWorld.addrs = append(benchWorld.addrs, inf.Addr)
			}
		}
		// One miss per eight hits keeps the mix honest without
		// dominating the distribution.
		for i := 0; i < len(benchWorld.addrs)/8+1; i++ {
			benchWorld.addrs = append(benchWorld.addrs, inet.Addr(0xfe000000+uint32(i)))
		}
	})
	if len(benchWorld.res.Inferences) == 0 {
		b.Fatal("bench corpus produced no inferences")
	}
	return benchWorld.snap, benchWorld.res, benchWorld.addrs
}

// BenchmarkServe is the headline serving benchmark: parallel readers
// resolving addresses against the compiled snapshot, touching every row
// in each hit span. Reports lookups/s alongside the standard metrics;
// the allocs/op column is the zero-allocation claim.
func BenchmarkServe(b *testing.B) {
	s, _, addrs := benchSetup(b)
	b.ReportAllocs()
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 0x9e3779b9 // decorrelate goroutine start points
		var sink uint32
		for pb.Next() {
			a := addrs[i%uint64(len(addrs))]
			i++
			rows := s.Lookup(a)
			for j := 0; j < rows.Len(); j++ {
				inf := rows.At(j)
				sink += uint32(inf.Connected) + uint32(inf.OtherSide)
			}
		}
		_ = sink
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServeResultScan is the contrast baseline: the same query mix
// answered by Result.ByAddr, which allocates a fresh slice per hit.
func BenchmarkServeResultScan(b *testing.B) {
	_, res, addrs := benchSetup(b)
	b.ReportAllocs()
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 0x9e3779b9
		var sink uint32
		for pb.Next() {
			a := addrs[i%uint64(len(addrs))]
			i++
			for _, inf := range res.ByAddr(a) {
				sink += uint32(inf.Connected) + uint32(inf.OtherSide)
			}
		}
		_ = sink
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServeLinks measures the AS-pair postings index under
// parallel readers.
func BenchmarkServeLinks(b *testing.B) {
	s, res, _ := benchSetup(b)
	links := res.Links()
	if len(links) == 0 {
		b.Fatal("bench corpus produced no links")
	}
	b.ReportAllocs()
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 0x9e3779b9
		var sink uint32
		for pb.Next() {
			l := links[i%uint64(len(links))]
			i++
			v := s.Links(l.A, l.B)
			for j := 0; j < v.Len(); j++ {
				sink += uint32(v.Addr(j))
			}
		}
		_ = sink
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkSnapshotBuild measures full compilation cost — the write
// side of the copy-on-write protocol, paid once per publication.
func BenchmarkSnapshotBuild(b *testing.B) {
	_, res, _ := benchSetup(b)
	ev := benchWorld.ev
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := snapshot.Build(res, ev)
		if s.Len() != len(res.Inferences) {
			b.Fatal("bad build")
		}
	}
}
