package snapshot_test

import (
	"reflect"
	"sync"
	"testing"

	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/snapshot"
)

// fuzzWorld is a hand-built result dense around stride-table seams: runs
// sharing a /16, runs sharing a /24, adjacent /24 and /16 boundaries,
// the zero address and the all-ones address, plus duplicate-address
// records (one address, both directions).
var fuzzWorld = func() *core.Result {
	mk := func(a inet.Addr, dir core.Direction) core.Inference {
		return core.Inference{
			Addr: a, Dir: dir,
			Local:     inet.ASN(a%7 + 1),
			Connected: inet.ASN(a%11 + 1),
			Uncertain: a%3 == 0,
			Indirect:  a%5 == 0,
		}
	}
	addrs := []inet.Addr{
		0x00000000, 0x00000001, 0x000000ff, 0x00000100,
		0x0000ffff, 0x00010000, 0x00010001,
		0x0a0a0a00, 0x0a0a0a01, 0x0a0a0aff, 0x0a0a0b00,
		0x0a0aff00, 0x0a0b0000,
		0xc6336401, 0xc6336402, 0xc63364fe,
		0xfffffffe, 0xffffffff,
	}
	r := &core.Result{}
	for _, a := range addrs {
		r.Inferences = append(r.Inferences, mk(a, core.Forward))
		if a%2 == 0 {
			r.Inferences = append(r.Inferences, mk(a, core.Backward))
		}
	}
	return r
}()

var (
	fuzzOnce sync.Once
	fuzzSnap *snapshot.Snapshot
)

func fuzzSnapshot() *snapshot.Snapshot {
	fuzzOnce.Do(func() { fuzzSnap = snapshot.Build(fuzzWorld, nil) })
	return fuzzSnap
}

// refLookup is the linear reference the compiled index must agree with:
// every record whose address matches, in record order.
func refLookup(r *core.Result, a inet.Addr) []core.Inference {
	var out []core.Inference
	for _, inf := range r.Inferences {
		if inf.Addr == a {
			out = append(out, inf)
		}
	}
	return out
}

// FuzzLookup checks the compiled 16-8-8 stride index against a linear
// scan for arbitrary addresses — seams, hits, near misses and garbage
// alike must agree exactly.
func FuzzLookup(f *testing.F) {
	for _, inf := range fuzzWorld.Inferences {
		f.Add(uint32(inf.Addr))
		f.Add(uint32(inf.Addr + 1))
		f.Add(uint32(inf.Addr - 1))
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0x00010000))
	f.Add(uint32(0x0a0a0a80))
	f.Fuzz(func(t *testing.T, raw uint32) {
		a := inet.Addr(raw)
		s := fuzzSnapshot()
		got := rowsSlice(s.Lookup(a))
		if len(got) == 0 {
			got = nil
		}
		want := refLookup(fuzzWorld, a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v):\n got  %+v\n want %+v", a, got, want)
		}
	})
}
