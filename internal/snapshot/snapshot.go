// Package snapshot compiles a finished MAP-IT run into an immutable,
// cache-friendly query engine. A *core.Result answers "which ASes does
// this interface connect" by linear scan; operational topology work
// (per-address, per-AS-pair, per-monitor queries at service volume)
// needs the read path to be as compiled as the write path already is.
//
// Build flattens the inference list into columnar slabs — parallel
// arrays of addresses, interned int32 ASN ids, and packed flag bytes —
// and precomputes three indexes over them:
//
//   - address → inference rows, through the same 16-8-8 multibit stride
//     table the LPM engine uses (iptrie.CompileHosts): at most three
//     flat array reads to the row span, zero allocations;
//   - AS pair → link interfaces, as sorted uint64-keyed postings with
//     binary-search range lookup;
//   - monitor → contributed evidence, as name-sorted adjacency postings
//     fed from Evidence.Monitors (collected under
//     Collector.TrackMonitors).
//
// A Snapshot is immutable after Build: any number of goroutines may
// query it concurrently with no synchronisation. Handle adds the
// copy-on-write publication protocol — a live ingest loop builds a new
// snapshot off to the side and Swaps it in while readers keep draining
// the old one — and PublishOnStage wires that into a run's
// Config.OnStage hook. See DESIGN.md §13.
package snapshot

import (
	"slices"

	"mapit/internal/core"
	"mapit/internal/inet"
	"mapit/internal/iptrie"
	"mapit/internal/trace"
)

// Snapshot is the compiled read-only view of one run's result and
// (optionally) its evidence. The zero value is not usable; call Build.
type Snapshot struct {
	// Columnar inference slabs, one row per Result.Inferences record.
	// Rows are grouped by address (stably preserving the result's
	// record order within an address), so every per-address answer is
	// one contiguous span.
	addr    []inet.Addr
	other   []inet.Addr
	localID []int32
	connID  []int32
	flags   []uint8

	// asns is the dense ASN intern table; localID/connID index it.
	asns []inet.ASN

	// Address index: addrIndex maps an address to its dense id i (the
	// /32 stride table answers in ≤3 array reads); rows
	// [spanStart[i], spanStart[i+1]) are that address's records.
	addrIndex *iptrie.Compiled[int32]
	spanStart []int32

	// High-confidence view, prebuilt: the non-indirect, non-uncertain
	// records in result order.
	hc []core.Inference

	// AS-pair link index: linkKeys holds every distinct unordered pair
	// (packed a<<32|b with a ≤ b, both nonzero) sorted ascending;
	// postings [linkStart[k], linkStart[k+1]) of linkRows are the row
	// ids of the high-confidence inferences evidencing pair k, in
	// ascending address order.
	linkKeys  []uint64
	linkStart []int32
	linkRows  []int32

	// Monitor index: names sorted ascending; monitor m contributed
	// monTraces[m] retained traces and the adjacencies
	// [monStart[m], monStart[m+1]) of monAdj.
	monitors  []string
	monTraces []int32
	monStart  []int32
	monAdj    []trace.Adjacency
}

// Flag bits of the flags column; bit 0 is the direction.
const (
	flagBackward  = 1 << 0
	flagUncertain = 1 << 1
	flagStub      = 1 << 2
	flagIndirect  = 1 << 3
)

// Build compiles a result (and, optionally, the evidence it was run
// from) into a snapshot. The inputs are only read; ev may be nil, in
// which case the monitor index is empty. Inference rows are grouped by
// address with the result's own record order preserved inside each
// group, so for the sorted lists Result produces every lookup answers
// in Result.ByAddr order.
func Build(r *core.Result, ev *core.Evidence) *Snapshot {
	n := len(r.Inferences)
	s := &Snapshot{
		addr:    make([]inet.Addr, n),
		other:   make([]inet.Addr, n),
		localID: make([]int32, n),
		connID:  make([]int32, n),
		flags:   make([]uint8, n),
	}

	// Group rows by address, stably: row order within one address is
	// the result's record order. Result.Inferences is already sorted by
	// (addr, dir), making this a no-op pass, but Build does not rely on
	// it — stage-hook snapshots and hand-built results compile too.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		x, y := r.Inferences[a].Addr, r.Inferences[b].Addr
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	})

	intern := make(map[inet.ASN]int32)
	internID := func(a inet.ASN) int32 {
		id, ok := intern[a]
		if !ok {
			id = int32(len(s.asns))
			s.asns = append(s.asns, a)
			intern[a] = id
		}
		return id
	}

	hcCount := 0
	for row, src := range order {
		inf := &r.Inferences[src]
		s.addr[row] = inf.Addr
		s.other[row] = inf.OtherSide
		s.localID[row] = internID(inf.Local)
		s.connID[row] = internID(inf.Connected)
		var f uint8
		if inf.Dir == core.Backward {
			f |= flagBackward
		}
		if inf.Uncertain {
			f |= flagUncertain
		}
		if inf.Stub {
			f |= flagStub
		}
		if inf.Indirect {
			f |= flagIndirect
		}
		s.flags[row] = f
		if f&(flagUncertain|flagIndirect) == 0 {
			hcCount++
		}
	}

	s.buildAddrIndex()
	s.buildHighConfidence(hcCount)
	s.buildLinkIndex()
	s.buildMonitorIndex(ev)
	return s
}

// buildAddrIndex compiles the distinct-address stride table and the
// per-address row spans from the grouped addr column.
func (s *Snapshot) buildAddrIndex() {
	distinct := 0
	for i, a := range s.addr {
		if i == 0 || s.addr[i-1] != a {
			distinct++
		}
	}
	addrs := make([]inet.Addr, 0, distinct)
	ids := make([]int32, 0, distinct)
	s.spanStart = make([]int32, 0, distinct+1)
	for i, a := range s.addr {
		if i == 0 || s.addr[i-1] != a {
			ids = append(ids, int32(len(addrs)))
			addrs = append(addrs, a)
			s.spanStart = append(s.spanStart, int32(i))
		}
	}
	s.spanStart = append(s.spanStart, int32(len(s.addr)))
	s.addrIndex = iptrie.CompileHosts(addrs, ids)
}

// buildHighConfidence materialises the prebuilt headline list.
func (s *Snapshot) buildHighConfidence(count int) {
	s.hc = make([]core.Inference, 0, count)
	for row := range s.addr {
		if s.flags[row]&(flagUncertain|flagIndirect) == 0 {
			s.hc = append(s.hc, s.inference(int32(row)))
		}
	}
}

// buildLinkIndex compacts the high-confidence rows with two known
// endpoints into sorted per-pair postings.
func (s *Snapshot) buildLinkIndex() {
	type posting struct {
		key uint64
		row int32
	}
	var postings []posting
	for row := range s.addr {
		if s.flags[row]&(flagUncertain|flagIndirect) != 0 {
			continue
		}
		local, conn := s.asns[s.localID[row]], s.asns[s.connID[row]]
		if local.IsZero() || conn.IsZero() {
			continue
		}
		postings = append(postings, posting{linkKey(local, conn), int32(row)})
	}
	// Rows are already in ascending address order, so a stable sort by
	// key keeps each pair's interfaces sorted by address — the order
	// Result.Links reports.
	slices.SortStableFunc(postings, func(a, b posting) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	for i, p := range postings {
		if i == 0 || postings[i-1].key != p.key {
			s.linkKeys = append(s.linkKeys, p.key)
			s.linkStart = append(s.linkStart, int32(i))
		}
		s.linkRows = append(s.linkRows, p.row)
	}
	s.linkStart = append(s.linkStart, int32(len(postings)))
}

// buildMonitorIndex flattens Evidence.Monitors (already sorted by name
// with sorted adjacency sets) into postings.
func (s *Snapshot) buildMonitorIndex(ev *core.Evidence) {
	if ev == nil || len(ev.Monitors) == 0 {
		s.monStart = []int32{0}
		return
	}
	s.monitors = make([]string, len(ev.Monitors))
	s.monTraces = make([]int32, len(ev.Monitors))
	s.monStart = make([]int32, 0, len(ev.Monitors)+1)
	total := 0
	for _, m := range ev.Monitors {
		total += len(m.Adjacencies)
	}
	s.monAdj = make([]trace.Adjacency, 0, total)
	for i, m := range ev.Monitors {
		s.monitors[i] = m.Monitor
		s.monTraces[i] = int32(m.Traces)
		s.monStart = append(s.monStart, int32(len(s.monAdj)))
		s.monAdj = append(s.monAdj, m.Adjacencies...)
	}
	s.monStart = append(s.monStart, int32(len(s.monAdj)))
}

// linkKey packs an unordered AS pair into its sort key.
func linkKey(a, b inet.ASN) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// inference materialises one row back into the exported record form.
func (s *Snapshot) inference(row int32) core.Inference {
	f := s.flags[row]
	return core.Inference{
		Addr:      s.addr[row],
		Dir:       core.Direction(f & flagBackward),
		Local:     s.asns[s.localID[row]],
		Connected: s.asns[s.connID[row]],
		OtherSide: s.other[row],
		Uncertain: f&flagUncertain != 0,
		Stub:      f&flagStub != 0,
		Indirect:  f&flagIndirect != 0,
	}
}

// Len returns the number of inference rows.
func (s *Snapshot) Len() int { return len(s.addr) }

// AddrCount returns the number of distinct inferred interface addresses.
func (s *Snapshot) AddrCount() int { return len(s.spanStart) - 1 }

// LinkCount returns the number of distinct high-confidence AS pairs.
func (s *Snapshot) LinkCount() int { return len(s.linkKeys) }

// MonitorCount returns the number of monitors in the evidence index.
func (s *Snapshot) MonitorCount() int { return len(s.monitors) }

// Rows is a zero-allocation view of the consecutive inference rows one
// address lookup resolved to. The zero value is an empty view.
type Rows struct {
	s      *Snapshot
	lo, hi int32
}

// Len returns the number of records in the view.
func (r Rows) Len() int { return int(r.hi - r.lo) }

// At materialises record i of the view.
func (r Rows) At(i int) core.Inference { return r.s.inference(r.lo + int32(i)) }

// Lookup resolves an address to its inference records — the compiled
// form of Result.ByAddr. The hot path is three flat array reads and
// never allocates; a miss returns an empty view.
func (s *Snapshot) Lookup(a inet.Addr) Rows {
	id, ok := s.addrIndex.Lookup(a)
	if !ok {
		return Rows{}
	}
	return Rows{s: s, lo: s.spanStart[id], hi: s.spanStart[id+1]}
}

// HighConfidence returns the prebuilt non-uncertain direct inference
// list — Result.HighConfidence without the per-call copy. The slice is
// shared by every caller: treat it as read-only.
func (s *Snapshot) HighConfidence() []core.Inference { return s.hc }

// Link is a zero-allocation view of one AS pair's link interfaces. The
// zero value is an empty view.
type Link struct {
	s      *Snapshot
	lo, hi int32
}

// Len returns the number of evidencing interfaces.
func (l Link) Len() int { return int(l.hi - l.lo) }

// Addr returns the address of interface i, in ascending order.
func (l Link) Addr(i int) inet.Addr { return l.s.addr[l.s.linkRows[l.lo+int32(i)]] }

// At materialises the full inference record behind interface i.
func (l Link) At(i int) core.Inference { return l.s.inference(l.s.linkRows[l.lo+int32(i)]) }

// Links resolves an AS pair (in either order) to the high-confidence
// link interfaces connecting them — the compiled, single-pair form of
// Result.Links. Binary search over the packed key column; no
// allocations. An unknown pair returns an empty view.
func (s *Snapshot) Links(a, b inet.ASN) Link {
	k, ok := slices.BinarySearch(s.linkKeys, linkKey(a, b))
	if !ok {
		return Link{}
	}
	return Link{s: s, lo: s.linkStart[k], hi: s.linkStart[k+1]}
}

// EachLink visits every distinct AS pair in ascending (A, B) order.
// Returning false stops the walk.
func (s *Snapshot) EachLink(fn func(a, b inet.ASN, l Link) bool) {
	for k, key := range s.linkKeys {
		l := Link{s: s, lo: s.linkStart[k], hi: s.linkStart[k+1]}
		if !fn(inet.ASN(key>>32), inet.ASN(key&0xffffffff), l) {
			return
		}
	}
}

// Monitor is a zero-allocation view of one vantage point's contributed
// evidence. The zero value reports nothing.
type Monitor struct {
	s      *Snapshot
	lo, hi int32
	traces int32
}

// Traces returns how many of the monitor's traces survived sanitisation.
func (m Monitor) Traces() int { return int(m.traces) }

// Len returns the number of unique adjacencies the monitor contributed.
func (m Monitor) Len() int { return int(m.hi - m.lo) }

// At returns contributed adjacency i, in (First, Second) order.
func (m Monitor) At(i int) trace.Adjacency { return m.s.monAdj[m.lo+int32(i)] }

// MonitorEvidence resolves a monitor name to its contributed evidence.
// Binary search over the sorted name column; no allocations. The second
// return is false when the monitor is unknown (or the snapshot was
// built without monitor-tracked evidence).
func (s *Snapshot) MonitorEvidence(name string) (Monitor, bool) {
	i, ok := slices.BinarySearch(s.monitors, name)
	if !ok {
		return Monitor{}, false
	}
	return Monitor{s: s, lo: s.monStart[i], hi: s.monStart[i+1], traces: s.monTraces[i]}, true
}

// MonitorName returns the name of monitor i in index (ascending) order,
// for enumerating the index alongside MonitorCount.
func (s *Snapshot) MonitorName(i int) string { return s.monitors[i] }
